#!/usr/bin/env bash
# Multi-process cluster integration check: three dwserve peers and a
# dwcoord coordinator on loopback, one peer killed mid-run. The job
# must fail over and complete, and the coordinator must keep serving
# predictions through the ring survivors. Coordinator and peer logs
# land in $LOGDIR (uploaded as a CI artifact on the workflow side).
set -euo pipefail

LOGDIR="${LOGDIR:-/tmp/dw-cluster-ci}"
mkdir -p "$LOGDIR"
rm -f "$LOGDIR"/*.log

echo "building binaries..."
go build -o "$LOGDIR/dwserve" ./cmd/dwserve
go build -o "$LOGDIR/dwcoord" ./cmd/dwcoord

declare -A PEER_PID
cleanup() {
  for pid in "${PEER_PID[@]:-}" "${COORD_PID:-}"; do
    kill "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

wait_http() {
  for _ in $(seq 1 150); do
    curl -fsS "$1" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "timed out waiting for $1" >&2
  return 1
}
json_field() { # json_field <key> — first string value of "key"
  grep -o "\"$1\":\"[^\"]*\"" | head -1 | cut -d'"' -f4
}
json_int() { # json_int <key> — first integer value of "key"
  grep -o "\"$1\":[0-9-]*" | head -1 | cut -d: -f2
}

for port in 18081 18082 18083; do
  "$LOGDIR/dwserve" -addr 127.0.0.1:$port -machine local2 \
    >"$LOGDIR/peer-$port.log" 2>&1 &
  PEER_PID[$port]=$!
done
# Peers must be listening before the coordinator joins them at startup.
for port in 18081 18082 18083; do
  wait_http "http://127.0.0.1:$port/v1/stats"
done
"$LOGDIR/dwcoord" -addr 127.0.0.1:18090 \
  -peers 127.0.0.1:18081,127.0.0.1:18082,127.0.0.1:18083 \
  >"$LOGDIR/dwcoord.log" 2>&1 &
COORD_PID=$!
wait_http http://127.0.0.1:18090/v1/cluster/peers

alive=$(curl -fsS http://127.0.0.1:18090/v1/cluster/peers | grep -o '"alive":true' | wc -l)
if [ "$alive" -ne 3 ]; then
  echo "expected 3 live peers, coordinator reports $alive" >&2
  exit 1
fi

echo "submitting cluster job..."
job=$(curl -fsS http://127.0.0.1:18090/v1/train \
  -d '{"model":"svm","dataset":"reuters","max_epochs":40,"fixed_order":true}' \
  | json_field job_id)
if [ -z "$job" ]; then
  echo "train submission returned no job id" >&2
  exit 1
fi
echo "job: $job"

# Kill one peer once the job is demonstrably mid-run (round >= 2), so
# the failover path — not a clean start — is what completes it.
killed=0
for _ in $(seq 1 600); do
  status=$(curl -fsS "http://127.0.0.1:18090/v1/jobs/$job")
  state=$(echo "$status" | json_field state)
  round=$(echo "$status" | json_int round)
  if [ "$killed" -eq 0 ] && [ "${round:-0}" -ge 2 ]; then
    echo "round $round reached; killing peer 18082"
    kill -9 "${PEER_PID[18082]}"
    killed=1
  fi
  case "$state" in
    done) break ;;
    failed)
      echo "cluster job failed: $status" >&2
      exit 1 ;;
  esac
  sleep 0.1
done
if [ "$state" != "done" ]; then
  echo "job still $state after timeout: $status" >&2
  exit 1
fi
if [ "$killed" -ne 1 ]; then
  echo "job finished before a peer could be killed; raise max_epochs" >&2
  exit 1
fi

failovers=$(echo "$status" | json_int failovers)
if [ "${failovers:-0}" -lt 1 ]; then
  echo "peer was killed but the job recorded no failover: $status" >&2
  exit 1
fi
echo "job done with $failovers failover(s)"

# Serving must survive the dead peer: predict through the coordinator.
pred=$(curl -fsS http://127.0.0.1:18090/v1/predict \
  -d "{\"model\":\"$job\",\"examples\":[{\"indices\":[3,17],\"values\":[1,0.5]}]}")
count=$(echo "$pred" | json_int count)
if [ "${count:-0}" -ne 1 ]; then
  echo "predict after peer death returned: $pred" >&2
  exit 1
fi
echo "predict answered via $(echo "$pred" | json_field peer)"

curl -fsS http://127.0.0.1:18090/metrics | grep -E 'dwcoord_peer_failovers_total|dwcoord_peers_alive' || true
echo "cluster integration OK"
