package numa

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTopologyCatalog(t *testing.T) {
	ms := Machines()
	if len(ms) != 5 {
		t.Fatalf("Machines() returned %d topologies, want 5", len(ms))
	}
	for _, top := range ms {
		if err := top.Validate(); err != nil {
			t.Errorf("topology %s invalid: %v", top.Name, err)
		}
	}
}

func TestTopologyFigure3Values(t *testing.T) {
	// Spot-check against Figure 3 of the paper.
	cases := []struct {
		top   Topology
		nodes int
		cores int
		llc   int
	}{
		{Local2, 2, 6, 12},
		{Local4, 4, 10, 24},
		{Local8, 8, 8, 24},
		{EC21, 2, 8, 20},
		{EC22, 2, 8, 20},
	}
	for _, c := range cases {
		if c.top.Nodes != c.nodes || c.top.CoresPerNode != c.cores || c.top.LLCMB != c.llc {
			t.Errorf("%s = (%d nodes, %d cores, %d MB), want (%d, %d, %d)",
				c.top.Name, c.top.Nodes, c.top.CoresPerNode, c.top.LLCMB, c.nodes, c.cores, c.llc)
		}
	}
}

func TestTotalCores(t *testing.T) {
	if got := Local2.TotalCores(); got != 12 {
		t.Errorf("local2 TotalCores = %d, want 12", got)
	}
	if got := Local4.TotalCores(); got != 40 {
		t.Errorf("local4 TotalCores = %d, want 40", got)
	}
	if got := Local8.TotalCores(); got != 64 {
		t.Errorf("local8 TotalCores = %d, want 64", got)
	}
}

func TestByName(t *testing.T) {
	top, err := ByName("local4")
	if err != nil {
		t.Fatalf("ByName(local4): %v", err)
	}
	if top.Nodes != 4 {
		t.Errorf("local4 nodes = %d, want 4", top.Nodes)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) succeeded, want error")
	}
}

func TestAlphaGrowsWithSockets(t *testing.T) {
	// Section 3.2: alpha ~ 4 on local2, ~ 12 on local8, growing with
	// the socket count.
	a2, a4, a8 := Local2.Alpha(), Local4.Alpha(), Local8.Alpha()
	if a2 != 4 {
		t.Errorf("local2 alpha = %v, want 4", a2)
	}
	if a8 != 12 {
		t.Errorf("local8 alpha = %v, want 12", a8)
	}
	if !(a2 < a4 && a4 < a8) {
		t.Errorf("alpha not increasing: %v, %v, %v", a2, a4, a8)
	}
}

func TestValidateRejectsBadTopologies(t *testing.T) {
	bad := []Topology{
		{Name: "zero-nodes", Nodes: 0, CoresPerNode: 4, ClockGHz: 2, LLCMB: 8},
		{Name: "zero-cores", Nodes: 2, CoresPerNode: 0, ClockGHz: 2, LLCMB: 8},
		{Name: "zero-clock", Nodes: 2, CoresPerNode: 4, ClockGHz: 0, LLCMB: 8},
		{Name: "zero-llc", Nodes: 2, CoresPerNode: 4, ClockGHz: 2, LLCMB: 0},
	}
	for _, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("Validate(%s) = nil, want error", b.Name)
		}
	}
}

func TestCoreNodeAssignment(t *testing.T) {
	m := New(Local2)
	for i, c := range m.Cores() {
		wantNode := i / Local2.CoresPerNode
		if c.Node != wantNode {
			t.Errorf("core %d on node %d, want %d", i, c.Node, wantNode)
		}
	}
	if got := len(m.NodeCores(1)); got != Local2.CoresPerNode {
		t.Errorf("NodeCores(1) has %d cores, want %d", got, Local2.CoresPerNode)
	}
	for _, c := range m.NodeCores(1) {
		if c.Node != 1 {
			t.Errorf("NodeCores(1) returned core %d on node %d", c.ID, c.Node)
		}
	}
}

func TestReadStreamLocalVsRemote(t *testing.T) {
	m := New(Local2)
	local := m.NewRegion("local", 1<<30, 0, Private)
	remote := m.NewRegion("remote", 1<<30, 1, Private)

	c := m.Core(0) // node 0
	c.ReadStream(local, 1000)
	localCycles := c.Cycles
	if c.Ctr.LocalDRAM != 1000 || c.Ctr.RemoteDRAM != 0 {
		t.Errorf("local read counters = %+v", c.Ctr)
	}

	m.Reset()
	c.ReadStream(remote, 1000)
	remoteCycles := c.Cycles
	if c.Ctr.RemoteDRAM != 1000 || c.Ctr.LocalDRAM != 0 {
		t.Errorf("remote read counters = %+v", c.Ctr)
	}
	if c.Ctr.QPIWords != 1000 {
		t.Errorf("remote read QPIWords = %d, want 1000", c.Ctr.QPIWords)
	}
	if remoteCycles <= localCycles {
		t.Errorf("remote read (%v cycles) not more expensive than local (%v)", remoteCycles, localCycles)
	}
}

func TestInterleavedRegionSplitsTraffic(t *testing.T) {
	m := New(Local4) // 4 nodes => 1/4 local
	r := m.NewInterleavedRegion("data", 1<<30, Private)
	c := m.Core(0)
	c.ReadStream(r, 4000)
	if c.Ctr.LocalDRAM != 1000 {
		t.Errorf("interleaved LocalDRAM = %d, want 1000", c.Ctr.LocalDRAM)
	}
	if c.Ctr.RemoteDRAM != 3000 {
		t.Errorf("interleaved RemoteDRAM = %d, want 3000", c.Ctr.RemoteDRAM)
	}
}

func TestReadCachedHitsLLCWhenFits(t *testing.T) {
	m := New(Local2)
	small := m.NewRegion("model", 1<<20, 0, NodeShared) // 1 MB < 12 MB LLC
	big := m.NewRegion("data", 1<<30, 0, Private)       // 1 GB > LLC

	c := m.Core(0)
	c.ReadCached(small, 100)
	if c.Ctr.LocalLLC != 100 || c.Ctr.LocalDRAM != 0 {
		t.Errorf("small cached read counters = %+v", c.Ctr)
	}
	llcCycles := c.Cycles

	m.Reset()
	c.ReadCached(big, 100)
	if c.Ctr.LocalDRAM != 100 || c.Ctr.LocalLLC != 0 {
		t.Errorf("big cached read fell back wrong: %+v", c.Ctr)
	}
	if c.Cycles <= llcCycles {
		t.Errorf("DRAM fallback (%v) not more expensive than LLC hit (%v)", c.Cycles, llcCycles)
	}
}

func TestReadCachedRemoteLLC(t *testing.T) {
	m := New(Local2)
	// Node-shared replica homed on node 1, read by a node-0 core.
	r := m.NewRegion("replica1", 1<<20, 1, NodeShared)
	c := m.Core(0)
	c.ReadCached(r, 50)
	if c.Ctr.RemoteLLC != 50 {
		t.Errorf("RemoteLLC = %d, want 50", c.Ctr.RemoteLLC)
	}
	if c.Ctr.QPIWords != 50 {
		t.Errorf("QPIWords = %d, want 50", c.Ctr.QPIWords)
	}
}

func TestWriteCostOrdering(t *testing.T) {
	// The heart of the model-replication tradeoff: private writes <
	// node-shared writes < machine-shared writes, and machine-shared
	// writes are more expensive on machines with more sockets.
	cost := func(top Topology, s Sharing, collision float64) float64 {
		m := New(top)
		r := m.NewRegion("x", 1<<20, 0, s)
		r.WriteCollisionProb = collision
		c := m.Core(0)
		c.Write(r, 1000)
		return c.Cycles
	}
	p := cost(Local2, Private, 0)
	n := cost(Local2, NodeShared, 0)
	g2 := cost(Local2, MachineShared, 0.3)
	g8 := cost(Local8, MachineShared, 0.3)
	if !(p < n && n < g2) {
		t.Errorf("write cost ordering violated: private=%v nodeShared=%v machineShared=%v", p, n, g2)
	}
	if g8 <= g2 {
		t.Errorf("8-socket contended write (%v) not more expensive than 2-socket (%v)", g8, g2)
	}
	// An uncontended machine-shared write costs the same as a
	// node-shared one: single-threaded DimmWitted "has the same
	// implementation as Hogwild!" (Section 4.2).
	if got := cost(Local2, MachineShared, 0); got != n {
		t.Errorf("uncontended machine-shared write = %v, want %v", got, n)
	}
	// Sparse updates (low collision) are barely penalised relative to
	// dense ones (Figure 16b's mechanism).
	sparse := cost(Local2, MachineShared, 0.01)
	dense := cost(Local2, MachineShared, 0.5)
	if dense < 10*sparse {
		t.Errorf("dense contended write (%v) should dwarf sparse (%v)", dense, sparse)
	}
}

func TestMachineSharedWritesEmitInvalidations(t *testing.T) {
	m := New(Local2)
	r := m.NewRegion("shared", 1<<20, 0, MachineShared)
	r.WriteCollisionProb = 0.5
	c := m.Core(7) // node 1
	c.Write(r, 42)
	if c.Ctr.Invalidations != 21 {
		t.Errorf("Invalidations = %d, want 21 (collision-scaled)", c.Ctr.Invalidations)
	}
	if c.Ctr.QPIWords != 42 {
		t.Errorf("QPIWords = %d, want 42", c.Ctr.QPIWords)
	}
}

func TestWriteToRemoteHomedReplicaCrossesQPI(t *testing.T) {
	m := New(Local2)
	r := m.NewRegion("replica", 1<<20, 1, NodeShared)
	c := m.Core(0) // node 0 writing to node-1-homed replica
	c.Write(r, 10)
	if c.Ctr.QPIWords != 10 {
		t.Errorf("QPIWords = %d, want 10", c.Ctr.QPIWords)
	}
}

func TestMaxCyclesAndSimTime(t *testing.T) {
	m := New(Local2)
	r := m.NewRegion("d", 1<<30, 0, Private)
	m.Core(0).ReadStream(r, 100)
	m.Core(1).ReadStream(r, 300)
	want := m.Core(1).Cycles
	if got := m.MaxCycles(); got != want {
		t.Errorf("MaxCycles = %v, want %v", got, want)
	}
	if m.SimTime() <= 0 {
		t.Error("SimTime not positive after work")
	}
	m.Reset()
	if m.MaxCycles() != 0 {
		t.Error("MaxCycles nonzero after Reset")
	}
}

func TestBackgroundCoreOffCriticalPathButCounted(t *testing.T) {
	m := New(Local2)
	bg := m.NewBackgroundCore(0)
	if bg.ID >= 0 {
		t.Errorf("background core ID = %d, want negative", bg.ID)
	}
	// Background (asynchronous helper) work never gates an epoch...
	bg.Compute(1e6)
	if m.MaxCycles() != 0 {
		t.Errorf("MaxCycles = %v, want 0: background cores must not gate the critical path", m.MaxCycles())
	}
	// ...but its memory traffic still shows up in the counters.
	r := m.NewRegion("x", 8, 1, Private)
	bg.Write(r, 1)
	if got := m.Counters().WriteWords; got != 1 {
		t.Errorf("background write not counted: %d", got)
	}
	m.Reset()
	if bg.Cycles != 0 {
		t.Error("Reset skipped background core")
	}
}

func TestCountersAddAndReset(t *testing.T) {
	a := Counters{LocalDRAM: 1, RemoteDRAM: 2, LocalLLC: 3, RemoteLLC: 4, QPIWords: 5, Invalidations: 6, WriteWords: 7, ReadWords: 8}
	var b Counters
	b.Add(a)
	b.Add(a)
	if b.LocalDRAM != 2 || b.RemoteDRAM != 4 || b.QPIWords != 10 || b.ReadWords != 16 {
		t.Errorf("Add wrong: %+v", b)
	}
	b.Reset()
	if b != (Counters{}) {
		t.Errorf("Reset left %+v", b)
	}
}

func TestCrossNodeDRAMRatio(t *testing.T) {
	c := Counters{LocalDRAM: 10, RemoteDRAM: 110}
	if got := c.CrossNodeDRAMRatio(); math.Abs(got-11) > 1e-12 {
		t.Errorf("ratio = %v, want 11", got)
	}
	zero := Counters{}
	if zero.CrossNodeDRAMRatio() != 0 {
		t.Error("zero counters ratio should be 0")
	}
}

func TestThroughputGBps(t *testing.T) {
	got := ThroughputGBps(2e9, time.Second)
	if math.Abs(got-2.0) > 1e-9 {
		t.Errorf("ThroughputGBps = %v, want 2", got)
	}
	if ThroughputGBps(1, 0) != 0 {
		t.Error("zero duration should yield 0 throughput")
	}
}

func TestWords(t *testing.T) {
	cases := []struct{ bytes, want int64 }{
		{0, 0}, {-5, 0}, {1, 1}, {8, 1}, {9, 2}, {16, 2}, {17, 3},
	}
	for _, c := range cases {
		if got := Words(c.bytes); got != c.want {
			t.Errorf("Words(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestSharingString(t *testing.T) {
	if Private.String() != "private" || NodeShared.String() != "node-shared" || MachineShared.String() != "machine-shared" {
		t.Error("Sharing.String wrong")
	}
	if Sharing(99).String() == "" {
		t.Error("unknown sharing should still stringify")
	}
}

func TestNewRegionPanicsOnBadHome(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRegion with bad home did not panic")
		}
	}()
	m := New(Local2)
	m.NewRegion("bad", 8, 5, Private)
}

// Property: streaming-read cycle cost is additive and monotone in the
// number of words, for any placement.
func TestReadStreamAdditiveProperty(t *testing.T) {
	f := func(w1, w2 uint16, homeSel uint8) bool {
		m := New(Local2)
		home := int(homeSel) % 2
		r := m.NewRegion("r", 1<<30, home, Private)
		c := m.Core(0)
		c.ReadStream(r, int64(w1))
		c.ReadStream(r, int64(w2))
		split := c.Cycles
		m.Reset()
		c.ReadStream(r, int64(w1)+int64(w2))
		joint := c.Cycles
		return math.Abs(split-joint) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: counters never go negative and reads+writes are conserved.
func TestCounterConservationProperty(t *testing.T) {
	f := func(reads, writes uint16) bool {
		m := New(Local4)
		r := m.NewInterleavedRegion("r", 1<<30, MachineShared)
		c := m.Core(3)
		c.ReadStream(r, int64(reads))
		c.Write(r, int64(writes))
		ctr := c.Ctr
		if ctr.ReadWords != int64(reads) || ctr.WriteWords != int64(writes) {
			return false
		}
		return ctr.LocalDRAM+ctr.RemoteDRAM == int64(reads)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
