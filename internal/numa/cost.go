package numa

// CostModel holds the synthetic per-access costs, expressed in cycles
// per 8-byte word. The defaults are chosen so that the ratios the paper
// reports fall out of the model:
//
//   - an LLC hit is ~4x cheaper than a local DRAM stream,
//   - a remote DRAM stream over the QPI is ~2x a local one
//     (Figure 3 measures 6 GB/s node-local vs 11 GB/s QPI shared by
//     all cores of a socket),
//   - a write to machine-shared state costs Alpha() times a read
//     because the cache-coherence protocol stalls the writer
//     (Section 3.2 estimates alpha in 4..12, growing with sockets),
//   - a write to node-shared state pays a small intra-socket coherence
//     premium but never crosses the QPI.
type CostModel struct {
	// ReadLocal is the cost of streaming one word from node-local DRAM.
	ReadLocal float64
	// ReadRemote is the cost of streaming one word from another node's
	// DRAM across the interconnect.
	ReadRemote float64
	// ReadLLC is the cost of reading one word that hits the local LLC.
	ReadLLC float64
	// ReadLLCRemote is the cost of reading one word from a remote
	// socket's LLC (coherence traffic over the QPI).
	ReadLLCRemote float64
	// WritePrivate is the cost of writing one word to core-private state.
	WritePrivate float64
	// WriteNodeShared is the cost of writing one word to state shared
	// by the cores of one socket (L3-mediated coherence).
	WriteNodeShared float64
	// WriteMachineShared is the baseline cost of writing one word to
	// state shared across sockets when no other socket is writing
	// concurrently (coherence-light).
	WriteMachineShared float64
	// ContentionPenalty scales the extra cost of a machine-shared
	// write when it collides with a concurrent writer on another
	// socket: cost += Alpha() * ContentionPenalty * p per word, where
	// p is the engine's estimated collision probability. Collisions
	// stall the processor for the full coherence round trip, which is
	// one to two orders of magnitude beyond a streaming read — this is
	// what makes PerMachine replication 23x slower per epoch than
	// PerNode on dense-update workloads (Figure 8b) while leaving
	// sparse-update workloads (LP/QP) nearly unaffected (Figure 16b).
	ContentionPenalty float64
	// SyncPerWord is the cost charged to the averaging worker per word
	// it ships across sockets when averaging model replicas.
	SyncPerWord float64
}

// DefaultCostModel returns the cost model used by all experiments.
func DefaultCostModel() CostModel {
	return CostModel{
		ReadLocal:          1.0,
		ReadRemote:         2.0,
		ReadLLC:            0.25,
		ReadLLCRemote:      1.5,
		WritePrivate:       1.0,
		WriteNodeShared:    1.6,
		WriteMachineShared: 1.6,
		ContentionPenalty:  50,
		SyncPerWord:        2.0,
	}
}

// WordBytes is the size of the unit every cost is charged per: one
// float64 model/data element.
const WordBytes = 8

// Words converts a byte count to whole words, rounding up.
func Words(bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	return (bytes + WordBytes - 1) / WordBytes
}
