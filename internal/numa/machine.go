package numa

import (
	"fmt"
	"time"
)

// Sharing describes who may mutate a memory region, which determines
// the coherence cost of writes. It corresponds to the granularities of
// model replication in the paper (Section 3.3): core-private replicas
// (PerCore), a replica shared by one socket (PerNode), and a single
// machine-wide replica (PerMachine).
type Sharing int

const (
	// Private state is written by exactly one core; writes are cheap.
	Private Sharing = iota
	// NodeShared state is written by the cores of one socket; writes
	// pay an intra-socket (L3) coherence premium.
	NodeShared
	// MachineShared state is written by cores on several sockets;
	// every write pays the alpha contention factor and generates
	// cross-socket invalidation traffic.
	MachineShared
)

// String implements fmt.Stringer.
func (s Sharing) String() string {
	switch s {
	case Private:
		return "private"
	case NodeShared:
		return "node-shared"
	case MachineShared:
		return "machine-shared"
	default:
		return fmt.Sprintf("Sharing(%d)", int(s))
	}
}

// InterleavedHome is the Home value of a region whose pages are
// interleaved round-robin across all nodes (the OS default for large
// shared allocations).
const InterleavedHome = -1

// Region is a simulated memory allocation: a size, a home node (or
// InterleavedHome), and a sharing level. Regions do not hold data —
// real Go slices hold the data — they only exist so that accesses can
// be charged placement-dependent costs.
type Region struct {
	// Name labels the region in diagnostics.
	Name string
	// Home is the node whose DRAM holds the region, or InterleavedHome.
	Home int
	// Bytes is the allocation size, used to decide LLC residency.
	Bytes int64
	// Sharing is the mutation scope; see the Sharing constants.
	Sharing Sharing
	// WriteCollisionProb is the estimated probability that a write to
	// this region collides with a concurrent write from another
	// socket. Only meaningful for MachineShared regions; the engine
	// sets it from the number of concurrent writers and the update
	// footprint relative to the region size.
	WriteCollisionProb float64
}

// FitsLLC reports whether the region fits in one socket's last-level
// cache, in which case repeated (cached) reads are served from the LLC.
func (r *Region) FitsLLC(t Topology) bool { return r.Bytes <= t.LLCBytes() }

// Machine is a simulated NUMA machine: a topology, a cost model, and a
// set of logical cores that accumulate synthetic cycles and PMU-style
// counters as the engine charges memory accesses to them.
//
// A Machine is not safe for concurrent use by multiple goroutines
// except that distinct cores may be charged concurrently as long as
// each core is driven by a single goroutine.
type Machine struct {
	// Top is the machine shape.
	Top Topology
	// Cost is the per-access cost table.
	Cost CostModel

	cores      []*Core
	background []*Core
}

// Core is one logical core of a simulated machine. Accesses charged to
// the core accumulate cycles (converted to synthetic time) and PMU
// counters. Each Core must be driven by at most one goroutine.
type Core struct {
	// ID is the core index in [0, Top.TotalCores()), or negative for
	// background (helper-thread) cores.
	ID int
	// Node is the socket the core belongs to.
	Node int
	// Cycles is the synthetic cycle count accumulated so far.
	Cycles float64
	// Ctr holds the PMU-style counters for this core.
	Ctr Counters

	m *Machine
}

// New creates a simulated machine with the given topology and the
// default cost model. Cores are numbered node-major: core i lives on
// node i / CoresPerNode.
func New(top Topology) *Machine {
	return NewWithCost(top, DefaultCostModel())
}

// NewWithCost creates a simulated machine with an explicit cost model.
func NewWithCost(top Topology, cost CostModel) *Machine {
	m := &Machine{Top: top, Cost: cost}
	m.cores = make([]*Core, top.TotalCores())
	for i := range m.cores {
		m.cores[i] = &Core{ID: i, Node: i / top.CoresPerNode, m: m}
	}
	return m
}

// Core returns core i. It panics if i is out of range, as that is
// always a programming error in the engine.
func (m *Machine) Core(i int) *Core { return m.cores[i] }

// Cores returns all foreground cores in ID order. The returned slice
// must not be modified.
func (m *Machine) Cores() []*Core { return m.cores }

// NodeCores returns the foreground cores of one node in ID order.
func (m *Machine) NodeCores(node int) []*Core {
	per := m.Top.CoresPerNode
	return m.cores[node*per : (node+1)*per]
}

// NewBackgroundCore allocates an extra core on the given node that does
// not occupy a foreground worker slot. The paper's asynchronous model-
// averaging runs on such a helper thread. Background cores participate
// in MaxCycles/SimTime like foreground cores.
func (m *Machine) NewBackgroundCore(node int) *Core {
	c := &Core{ID: -(len(m.background) + 1), Node: node, m: m}
	m.background = append(m.background, c)
	return c
}

// NewRegion allocates a simulated region homed on one node.
func (m *Machine) NewRegion(name string, bytes int64, home int, sharing Sharing) *Region {
	if home != InterleavedHome && (home < 0 || home >= m.Top.Nodes) {
		panic(fmt.Sprintf("numa: region %q homed on node %d of %d", name, home, m.Top.Nodes))
	}
	return &Region{Name: name, Home: home, Bytes: bytes, Sharing: sharing}
}

// NewInterleavedRegion allocates a simulated region whose pages are
// spread round-robin across all nodes, like the OS default placement
// the paper's appendix calls the "OS" protocol.
func (m *Machine) NewInterleavedRegion(name string, bytes int64, sharing Sharing) *Region {
	return &Region{Name: name, Home: InterleavedHome, Bytes: bytes, Sharing: sharing}
}

// Reset zeroes all core cycles and counters, so the next accesses are
// measured from a clean slate (used between epochs).
func (m *Machine) Reset() {
	for _, c := range m.cores {
		c.Cycles = 0
		c.Ctr.Reset()
	}
	for _, c := range m.background {
		c.Cycles = 0
		c.Ctr.Reset()
	}
}

// MaxCycles returns the largest cycle count over the foreground cores,
// i.e. the critical path of a phase in which all workers run in
// parallel. Background cores are excluded: they model asynchronous
// helpers (the model-averaging thread) that overlap with the workers
// and never gate an epoch — the precise point of the paper's
// "batch writes across sockets without impeding throughput" design.
// Their traffic still lands in Counters.
func (m *Machine) MaxCycles() float64 {
	var max float64
	for _, c := range m.cores {
		if c.Cycles > max {
			max = c.Cycles
		}
	}
	return max
}

// SimTime converts MaxCycles to synthetic wall-clock time using the
// topology's core clock.
func (m *Machine) SimTime() time.Duration {
	ns := m.MaxCycles() / m.Top.ClockGHz
	return time.Duration(ns * float64(time.Nanosecond))
}

// Counters returns the sum of all cores' counters.
func (m *Machine) Counters() Counters {
	var total Counters
	for _, c := range m.cores {
		total.Add(c.Ctr)
	}
	for _, c := range m.background {
		total.Add(c.Ctr)
	}
	return total
}

// local reports whether the region's DRAM is on the core's node for a
// given access; for interleaved regions a 1/Nodes fraction is local.
func (c *Core) localFraction(r *Region) float64 {
	if r.Home == InterleavedHome {
		return 1.0 / float64(c.m.Top.Nodes)
	}
	if r.Home == c.Node {
		return 1
	}
	return 0
}

// ReadStream charges a streaming read of the given number of words,
// served from DRAM (it never hits the LLC; use ReadCached for state
// small and hot enough to be cache-resident).
func (c *Core) ReadStream(r *Region, words int64) {
	if words <= 0 {
		return
	}
	f := c.localFraction(r)
	localWords := int64(f * float64(words))
	remoteWords := words - localWords
	c.Cycles += float64(localWords)*c.m.Cost.ReadLocal + float64(remoteWords)*c.m.Cost.ReadRemote
	c.Ctr.LocalDRAM += localWords
	c.Ctr.RemoteDRAM += remoteWords
	c.Ctr.QPIWords += remoteWords
	c.Ctr.ReadWords += words
}

// ReadCached charges a read of hot state: if the region fits in one
// socket's LLC it is served from cache (local or remote depending on
// the region's home), otherwise it degrades to a DRAM stream.
func (c *Core) ReadCached(r *Region, words int64) {
	if words <= 0 {
		return
	}
	if !r.FitsLLC(c.m.Top) {
		c.ReadStream(r, words)
		return
	}
	// Machine-shared cached state migrates between sockets; reads by a
	// core whose socket is not the region's home go across the QPI.
	homeLocal := r.Home == c.Node || (r.Home == InterleavedHome && c.m.Top.Nodes == 1)
	if r.Sharing == NodeShared {
		// A node-shared replica is cached in its own socket's LLC.
		homeLocal = r.Home == c.Node
	}
	if homeLocal {
		c.Cycles += float64(words) * c.m.Cost.ReadLLC
		c.Ctr.LocalLLC += words
	} else {
		c.Cycles += float64(words) * c.m.Cost.ReadLLCRemote
		c.Ctr.RemoteLLC += words
		c.Ctr.QPIWords += words
	}
	c.Ctr.ReadWords += words
}

// Write charges a write of the given number of words. Cost depends on
// the region's sharing level: machine-shared writes pay the topology's
// alpha contention factor and emit cross-socket invalidations.
func (c *Core) Write(r *Region, words int64) {
	if words <= 0 {
		return
	}
	cost := &c.m.Cost
	switch r.Sharing {
	case Private:
		c.Cycles += float64(words) * cost.WritePrivate
	case NodeShared:
		c.Cycles += float64(words) * cost.WriteNodeShared
	case MachineShared:
		alpha := c.m.Top.Alpha()
		perWord := cost.WriteMachineShared +
			alpha*cost.ContentionPenalty*r.WriteCollisionProb
		c.Cycles += float64(words) * perWord
		c.Ctr.Invalidations += int64(float64(words)*r.WriteCollisionProb + 0.5)
		c.Ctr.QPIWords += words
	}
	if r.Home != InterleavedHome && r.Home != c.Node && r.Sharing != MachineShared {
		// Writing to a replica homed on another socket still crosses
		// the interconnect even without multi-writer contention.
		c.Ctr.QPIWords += words
	}
	c.Ctr.WriteWords += words
}

// Compute charges pure ALU work (gradient arithmetic) that involves no
// memory placement effects.
func (c *Core) Compute(cycles float64) {
	if cycles > 0 {
		c.Cycles += cycles
	}
}

// ThroughputGBps converts bytes processed during a simulated duration
// into the GB/s figure the paper's Figure 13 reports.
func ThroughputGBps(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds() / 1e9
}
