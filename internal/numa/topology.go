// Package numa simulates a non-uniform memory access (NUMA) machine.
//
// The DimmWitted paper's hardware-efficiency results depend on pinning
// workers to cores, placing memory on specific sockets, and reading PMU
// counters. None of that is controllable from portable Go, so this
// package provides a deterministic cost simulator instead: logical
// cores accumulate synthetic cycles for every memory access, charged
// according to where the accessed region lives (same node, remote node,
// last-level cache) and how it is shared (private, node-shared,
// machine-shared). The per-access costs follow the paper's own cost
// model (Figure 6): reads are proportional to bytes moved, writes to
// shared state carry a contention factor alpha that grows with the
// number of sockets (alpha ~ 4 on a 2-socket box, ~ 12 on 8 sockets).
//
// Simulated time is reported in nanoseconds of a synthetic clock; the
// absolute values are meaningless, but ratios between strategies
// reproduce the shape of the paper's measurements.
package numa

import "fmt"

// Topology describes the static shape of a NUMA machine: how many
// sockets (nodes), how many cores each socket carries, and the sizes
// that matter for the cost model. The five predefined topologies mirror
// Figure 3 of the paper.
type Topology struct {
	// Name is the short machine name used throughout the paper
	// (local2, local4, local8, ec2.1, ec2.2).
	Name string
	// Nodes is the number of NUMA nodes (sockets).
	Nodes int
	// CoresPerNode is the number of physical cores on each socket.
	CoresPerNode int
	// RAMPerNodeGB is the DRAM directly attached to each socket.
	RAMPerNodeGB int
	// ClockGHz is the core clock; simulated cycles are divided by it
	// to produce synthetic nanoseconds.
	ClockGHz float64
	// LLCMB is the size of the shared last-level cache per socket.
	LLCMB int
}

// TotalCores returns the number of cores across all nodes.
func (t Topology) TotalCores() int { return t.Nodes * t.CoresPerNode }

// LLCBytes returns the last-level cache capacity of one socket in bytes.
func (t Topology) LLCBytes() int64 { return int64(t.LLCMB) << 20 }

// Alpha is the write-contention cost factor of the paper's cost model
// (Section 3.2): the average ratio between the cost of a contended
// write to machine-shared state and a streaming read. The paper reports
// alpha ~= 4 for two sockets growing to ~= 12 for eight; we interpolate
// linearly at 1.33 per additional socket beyond two.
func (t Topology) Alpha() float64 {
	if t.Nodes <= 2 {
		return 4
	}
	a := 4 + float64(t.Nodes-2)*8.0/6.0
	if a > 12 {
		return 12
	}
	return a
}

// String implements fmt.Stringer.
func (t Topology) String() string {
	return fmt.Sprintf("%s(%dx%d cores, %dMB LLC, %.1fGHz)",
		t.Name, t.Nodes, t.CoresPerNode, t.LLCMB, t.ClockGHz)
}

// Validate reports an error if the topology is not usable.
func (t Topology) Validate() error {
	switch {
	case t.Nodes <= 0:
		return fmt.Errorf("numa: topology %q has %d nodes", t.Name, t.Nodes)
	case t.CoresPerNode <= 0:
		return fmt.Errorf("numa: topology %q has %d cores/node", t.Name, t.CoresPerNode)
	case t.ClockGHz <= 0:
		return fmt.Errorf("numa: topology %q has clock %.2f GHz", t.Name, t.ClockGHz)
	case t.LLCMB <= 0:
		return fmt.Errorf("numa: topology %q has %d MB LLC", t.Name, t.LLCMB)
	}
	return nil
}

// The five machine configurations evaluated in the paper (Figure 3).
var (
	// Local2 is the paper's local2: 2 nodes x 6 cores, 32 GB/node,
	// 2.6 GHz, 12 MB LLC. End-to-end numbers (Figure 11) use it.
	Local2 = Topology{Name: "local2", Nodes: 2, CoresPerNode: 6, RAMPerNodeGB: 32, ClockGHz: 2.6, LLCMB: 12}
	// Local4 is the paper's local4: 4 nodes x 10 cores.
	Local4 = Topology{Name: "local4", Nodes: 4, CoresPerNode: 10, RAMPerNodeGB: 64, ClockGHz: 2.0, LLCMB: 24}
	// Local8 is the paper's local8: 8 nodes x 8 cores.
	Local8 = Topology{Name: "local8", Nodes: 8, CoresPerNode: 8, RAMPerNodeGB: 128, ClockGHz: 2.6, LLCMB: 24}
	// EC21 is the paper's ec2.1 Amazon configuration.
	EC21 = Topology{Name: "ec2.1", Nodes: 2, CoresPerNode: 8, RAMPerNodeGB: 122, ClockGHz: 2.6, LLCMB: 20}
	// EC22 is the paper's ec2.2 Amazon configuration.
	EC22 = Topology{Name: "ec2.2", Nodes: 2, CoresPerNode: 8, RAMPerNodeGB: 30, ClockGHz: 2.6, LLCMB: 20}
)

// Machines returns the paper's five topologies in Figure 3 order.
func Machines() []Topology {
	return []Topology{Local2, Local4, Local8, EC21, EC22}
}

// ByName looks a predefined topology up by its paper name.
func ByName(name string) (Topology, error) {
	for _, t := range Machines() {
		if t.Name == name {
			return t, nil
		}
	}
	return Topology{}, fmt.Errorf("numa: unknown machine %q (want one of local2, local4, local8, ec2.1, ec2.2)", name)
}
