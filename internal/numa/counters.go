package numa

import "fmt"

// Counters mirrors the Intel PMU events the paper measures to explain
// its results (Section 4.1): local and remote LLC requests, local and
// remote DRAM requests, plus QPI traffic and coherence invalidations,
// which the paper discusses qualitatively. All values count 8-byte
// words (or events, for Invalidations).
type Counters struct {
	// LocalDRAM counts words streamed from the accessing core's own
	// node DRAM.
	LocalDRAM int64
	// RemoteDRAM counts words streamed from another node's DRAM.
	RemoteDRAM int64
	// LocalLLC counts words served by the accessing core's socket LLC.
	LocalLLC int64
	// RemoteLLC counts words served by another socket's LLC.
	RemoteLLC int64
	// QPIWords counts words that crossed the inter-socket interconnect
	// for any reason (remote reads, coherence, model averaging).
	QPIWords int64
	// Invalidations counts cacheline-invalidation events caused by
	// writes to state shared across sockets.
	Invalidations int64
	// WriteWords counts all words written, regardless of placement.
	WriteWords int64
	// ReadWords counts all words read, regardless of placement.
	ReadWords int64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.LocalDRAM += other.LocalDRAM
	c.RemoteDRAM += other.RemoteDRAM
	c.LocalLLC += other.LocalLLC
	c.RemoteLLC += other.RemoteLLC
	c.QPIWords += other.QPIWords
	c.Invalidations += other.Invalidations
	c.WriteWords += other.WriteWords
	c.ReadWords += other.ReadWords
}

// Reset zeroes every counter.
func (c *Counters) Reset() { *c = Counters{} }

// CrossNodeDRAMRatio returns RemoteDRAM / LocalDRAM, the statistic
// behind the paper's "11x more cross-node DRAM requests" observation.
// It returns 0 when no local DRAM traffic was recorded.
func (c *Counters) CrossNodeDRAMRatio() float64 {
	if c.LocalDRAM == 0 {
		return 0
	}
	return float64(c.RemoteDRAM) / float64(c.LocalDRAM)
}

// String implements fmt.Stringer with a compact one-line summary.
func (c Counters) String() string {
	return fmt.Sprintf("dram(local=%d remote=%d) llc(local=%d remote=%d) qpi=%d inval=%d rw=(%d/%d)",
		c.LocalDRAM, c.RemoteDRAM, c.LocalLLC, c.RemoteLLC, c.QPIWords, c.Invalidations, c.ReadWords, c.WriteWords)
}
