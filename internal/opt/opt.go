// Package opt implements the remaining row-wise first-order methods
// the paper names alongside SGD (Section 2.1: "gradient descent, and
// higher-order methods (such as l-BFGS)" all use the row-wise access
// method): full-batch gradient descent, L-BFGS with backtracking line
// search, and mini-batch SGD (the MLlib execution model, exposed here
// as a library method rather than a baseline emulation).
//
// All methods drive the same model specifications as the engine, so
// they apply to any spec whose row step is linear in the step size
// (SVM, LR, LS — the supervised models). Their per-epoch data traffic
// is identical to an SGD epoch (one row-wise pass), so the engine's
// hardware-efficiency analysis carries over unchanged; what differs is
// statistical efficiency, which these implementations measure in
// epochs.
package opt

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"dimmwitted/internal/data"
	"dimmwitted/internal/metrics"
	"dimmwitted/internal/model"
	"dimmwitted/internal/vec"
)

// gradientCapable lists the specs whose RowStep displacement equals
// −step·∇loss on the example's support (linear in step, no
// projection). LP/QP clamp their iterates, so the trick is invalid.
func gradientCapable(spec model.Spec) error {
	switch spec.Name() {
	case "svm", "lr", "ls":
		return nil
	default:
		return fmt.Errorf("opt: %s's row step is not linear in the step size", spec.Name())
	}
}

// Gradient accumulates the batch gradient of the spec's loss at x over
// the given rows into grad (which it zeroes first): grad = (1/|rows|)
// Σ ∇loss_i(x). It extracts per-example gradients by applying one
// unit-step row update to a scratch replica and reading the
// displacement, then restoring the support.
func Gradient(spec model.Spec, ds *data.Dataset, x []float64, rows []int, grad []float64) error {
	if err := gradientCapable(spec); err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("opt: empty row set")
	}
	for j := range grad {
		grad[j] = 0
	}
	scratch := spec.NewReplica(ds)
	copy(scratch.X, x)
	saved := make([]float64, 0, 256)
	for _, i := range rows {
		idx, _ := ds.A.Row(i)
		saved = saved[:0]
		for _, j := range idx {
			saved = append(saved, scratch.X[j])
		}
		spec.RowStep(ds, i, scratch, 1.0)
		for k, j := range idx {
			// displacement = -gradient component
			grad[j] -= scratch.X[j] - saved[k]
			scratch.X[j] = saved[k]
		}
	}
	inv := 1 / float64(len(rows))
	for j := range grad {
		grad[j] *= inv
	}
	return nil
}

// allRows returns [0, n).
func allRows(n int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

// Result is the outcome of an optimizer run.
type Result struct {
	// X is the final model.
	X []float64
	// Curve is the loss trajectory (one point per epoch).
	Curve *metrics.Curve
}

// GD is full-batch gradient descent with a fixed step size.
type GD struct {
	// Step is the step size; 0 means 1.0.
	Step float64
}

// Run performs epochs full-gradient steps and returns the trajectory.
func (g *GD) Run(spec model.Spec, ds *data.Dataset, epochs int) (*Result, error) {
	if err := gradientCapable(spec); err != nil {
		return nil, err
	}
	step := g.Step
	if step == 0 {
		step = 1.0
	}
	x := spec.NewReplica(ds).X
	grad := make([]float64, len(x))
	rows := allRows(ds.Rows())
	curve := &metrics.Curve{Name: "gd"}
	for e := 1; e <= epochs; e++ {
		if err := Gradient(spec, ds, x, rows, grad); err != nil {
			return nil, err
		}
		vec.AXPY(-step, grad, x)
		if err := curve.Append(metrics.Point{Epoch: e, Time: time.Duration(e), Loss: spec.Loss(ds, x)}); err != nil {
			return nil, err
		}
	}
	return &Result{X: x, Curve: curve}, nil
}

// LBFGS is the limited-memory BFGS quasi-Newton method with an Armijo
// backtracking line search. One iteration costs one full gradient pass
// plus a handful of loss evaluations — all row-wise scans.
type LBFGS struct {
	// M is the history length; 0 means 5.
	M int
	// Step0 is the initial line-search step; 0 means 1.0.
	Step0 float64
}

// Run performs epochs L-BFGS iterations and returns the trajectory.
func (l *LBFGS) Run(spec model.Spec, ds *data.Dataset, epochs int) (*Result, error) {
	if err := gradientCapable(spec); err != nil {
		return nil, err
	}
	m := l.M
	if m == 0 {
		m = 5
	}
	step0 := l.Step0
	if step0 == 0 {
		step0 = 1.0
	}
	dim := ds.Cols()
	x := spec.NewReplica(ds).X
	grad := make([]float64, dim)
	rows := allRows(ds.Rows())
	if err := Gradient(spec, ds, x, rows, grad); err != nil {
		return nil, err
	}

	var sHist, yHist [][]float64
	var rhoHist []float64
	dir := make([]float64, dim)
	alpha := make([]float64, m)
	curve := &metrics.Curve{Name: "lbfgs"}
	loss := spec.Loss(ds, x)

	for e := 1; e <= epochs; e++ {
		// Two-loop recursion: dir = -H·grad.
		copy(dir, grad)
		for i := len(sHist) - 1; i >= 0; i-- {
			alpha[i] = rhoHist[i] * vec.Dot(sHist[i], dir)
			vec.AXPY(-alpha[i], yHist[i], dir)
		}
		if n := len(sHist); n > 0 {
			gammaDen := vec.Dot(yHist[n-1], yHist[n-1])
			if gammaDen > 0 {
				vec.Scale(vec.Dot(sHist[n-1], yHist[n-1])/gammaDen, dir)
			}
		}
		for i := 0; i < len(sHist); i++ {
			beta := rhoHist[i] * vec.Dot(yHist[i], dir)
			vec.AXPY(alpha[i]-beta, sHist[i], dir)
		}
		vec.Scale(-1, dir)

		// Armijo backtracking.
		descent := vec.Dot(grad, dir)
		if descent >= 0 {
			// Not a descent direction (can happen on nonsmooth hinge);
			// fall back to steepest descent.
			copy(dir, grad)
			vec.Scale(-1, dir)
			descent = -vec.Dot(grad, grad)
		}
		step := step0
		var xNew []float64
		var lossNew float64
		for tries := 0; tries < 20; tries++ {
			xNew = vec.Clone(x)
			vec.AXPY(step, dir, xNew)
			lossNew = spec.Loss(ds, xNew)
			if lossNew <= loss+1e-4*step*descent {
				break
			}
			step *= 0.5
		}

		gradNew := make([]float64, dim)
		if err := Gradient(spec, ds, xNew, rows, gradNew); err != nil {
			return nil, err
		}
		s := make([]float64, dim)
		y := make([]float64, dim)
		for j := range s {
			s[j] = xNew[j] - x[j]
			y[j] = gradNew[j] - grad[j]
		}
		if sy := vec.Dot(s, y); sy > 1e-12 {
			sHist = append(sHist, s)
			yHist = append(yHist, y)
			rhoHist = append(rhoHist, 1/sy)
			if len(sHist) > m {
				sHist, yHist, rhoHist = sHist[1:], yHist[1:], rhoHist[1:]
			}
		}
		x, grad, loss = xNew, gradNew, lossNew
		if err := curve.Append(metrics.Point{Epoch: e, Time: time.Duration(e), Loss: loss}); err != nil {
			return nil, err
		}
	}
	return &Result{X: x, Curve: curve}, nil
}

// MiniBatch is mini-batch SGD: each update averages the gradient of a
// sampled batch, the execution model of MLlib (Section 4.2).
type MiniBatch struct {
	// Fraction is the batch size as a fraction of the dataset; 0
	// means 0.1.
	Fraction float64
	// Step is the initial step size; 0 means 1.0.
	Step float64
	// Decay multiplies Step per epoch; 0 means 0.95.
	Decay float64
	// Seed drives batch sampling.
	Seed int64
}

// Run performs epochs passes (each pass applies ceil(1/Fraction)
// batch updates) and returns the trajectory.
func (mb *MiniBatch) Run(spec model.Spec, ds *data.Dataset, epochs int) (*Result, error) {
	if err := gradientCapable(spec); err != nil {
		return nil, err
	}
	frac := mb.Fraction
	if frac == 0 {
		frac = 0.1
	}
	if frac < 0 || frac > 1 {
		return nil, fmt.Errorf("opt: batch fraction %v outside (0,1]", frac)
	}
	step := mb.Step
	if step == 0 {
		step = 1.0
	}
	decay := mb.Decay
	if decay == 0 {
		decay = 0.95
	}
	rng := rand.New(rand.NewSource(mb.Seed))
	x := spec.NewReplica(ds).X
	grad := make([]float64, len(x))
	batch := int(math.Ceil(frac * float64(ds.Rows())))
	updates := int(math.Ceil(1 / frac))
	curve := &metrics.Curve{Name: fmt.Sprintf("minibatch-%.2g", frac)}
	for e := 1; e <= epochs; e++ {
		for u := 0; u < updates; u++ {
			rows := rng.Perm(ds.Rows())[:batch]
			if err := Gradient(spec, ds, x, rows, grad); err != nil {
				return nil, err
			}
			vec.AXPY(-step, grad, x)
		}
		step *= decay
		if err := curve.Append(metrics.Point{Epoch: e, Time: time.Duration(e), Loss: spec.Loss(ds, x)}); err != nil {
			return nil, err
		}
	}
	return &Result{X: x, Curve: curve}, nil
}
