package opt

import (
	"math"
	"testing"

	"dimmwitted/internal/data"
	"dimmwitted/internal/model"
)

func TestGradientMatchesFiniteDifference(t *testing.T) {
	// For the smooth LS loss, the extracted batch gradient must match
	// a central finite difference of spec.Loss.
	ds := data.MusicRegression()
	spec := model.NewLS()
	x := make([]float64, ds.Cols())
	for j := range x {
		x[j] = 0.1 * float64(j%7)
	}
	grad := make([]float64, ds.Cols())
	if err := Gradient(spec, ds, x, allRows(ds.Rows()), grad); err != nil {
		t.Fatal(err)
	}
	const h = 1e-6
	for _, j := range []int{0, 17, 90} {
		xp := append([]float64(nil), x...)
		xm := append([]float64(nil), x...)
		xp[j] += h
		xm[j] -= h
		fd := (spec.Loss(ds, xp) - spec.Loss(ds, xm)) / (2 * h)
		if math.Abs(fd-grad[j]) > 1e-4*math.Max(1, math.Abs(fd)) {
			t.Errorf("grad[%d] = %v, finite difference %v", j, grad[j], fd)
		}
	}
}

func TestGradientRejectsProjectedSpecs(t *testing.T) {
	ds := data.AmazonLP()
	grad := make([]float64, ds.Cols())
	if err := Gradient(model.NewLP(), ds, make([]float64, ds.Cols()), []int{0}, grad); err == nil {
		t.Error("LP gradient extraction accepted")
	}
	if err := Gradient(model.NewLS(), data.MusicRegression(), grad[:91], nil, grad[:91]); err == nil {
		t.Error("empty row set accepted")
	}
}

func TestGDConverges(t *testing.T) {
	ds := data.MusicRegression()
	spec := model.NewLS()
	init := spec.Loss(ds, spec.NewReplica(ds).X)
	res, err := (&GD{Step: 0.5}).Run(spec, ds, 40)
	if err != nil {
		t.Fatal(err)
	}
	if final := res.Curve.Best(); final >= init/5 {
		t.Errorf("GD loss %v -> %v", init, final)
	}
}

func TestLBFGSConvergesFasterThanGD(t *testing.T) {
	// The classic result: on a smooth strongly convex problem, L-BFGS
	// reaches a given loss in far fewer epochs than gradient descent.
	ds := data.MusicRegression()
	spec := model.NewLS()
	gd, err := (&GD{Step: 0.5}).Run(spec, ds, 30)
	if err != nil {
		t.Fatal(err)
	}
	lbfgs, err := (&LBFGS{}).Run(spec, ds, 30)
	if err != nil {
		t.Fatal(err)
	}
	target := gd.Curve.Best()
	le, lok := lbfgs.Curve.EpochsTo(target)
	if !lok {
		t.Fatalf("L-BFGS never reached GD's best loss %v (got %v)", target, lbfgs.Curve.Best())
	}
	if le > 15 {
		t.Errorf("L-BFGS took %d epochs to reach GD's 30-epoch loss", le)
	}
}

func TestLBFGSOnLogisticLoss(t *testing.T) {
	ds := data.Reuters()
	spec := model.NewLR()
	init := spec.Loss(ds, spec.NewReplica(ds).X)
	res, err := (&LBFGS{M: 7, Step0: 1}).Run(spec, ds, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Curve.Best() >= init/3 {
		t.Errorf("L-BFGS on LR: %v -> %v", init, res.Curve.Best())
	}
}

func TestLBFGSHandlesNonsmoothHinge(t *testing.T) {
	// The hinge is nonsmooth; the steepest-descent fallback must keep
	// the method stable and still improving.
	ds := data.Reuters()
	spec := model.NewSVM()
	init := spec.Loss(ds, spec.NewReplica(ds).X)
	res, err := (&LBFGS{}).Run(spec, ds, 15)
	if err != nil {
		t.Fatal(err)
	}
	if res.Curve.Best() >= init {
		t.Errorf("L-BFGS on SVM did not improve: %v -> %v", init, res.Curve.Best())
	}
	for _, p := range res.Curve.Points {
		if math.IsNaN(p.Loss) || math.IsInf(p.Loss, 0) {
			t.Fatalf("loss diverged: %v", p.Loss)
		}
	}
}

func TestMiniBatchConverges(t *testing.T) {
	ds := data.Forest()
	spec := model.NewSVM()
	init := spec.Loss(ds, spec.NewReplica(ds).X)
	res, err := (&MiniBatch{Fraction: 0.1, Step: 0.5, Seed: 3}).Run(spec, ds, 15)
	if err != nil {
		t.Fatal(err)
	}
	if res.Curve.Best() >= init/2 {
		t.Errorf("mini-batch: %v -> %v", init, res.Curve.Best())
	}
}

func TestMiniBatchValidation(t *testing.T) {
	if _, err := (&MiniBatch{Fraction: 2}).Run(model.NewSVM(), data.Reuters(), 1); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := (&MiniBatch{}).Run(model.NewLP(), data.AmazonLP(), 1); err == nil {
		t.Error("LP accepted")
	}
}

func TestSGDBeatsBatchMethodsInEpochs(t *testing.T) {
	// The paper's MLlib comparison in microcosm: SGD needs far fewer
	// epochs than batch gradient to the same loss (60x on Forest in
	// the paper).
	ds := data.Forest()
	spec := model.NewSVM()
	// One-worker SGD via the spec directly.
	r := spec.NewReplica(ds)
	step := 0.1
	sgdEpochs := 0
	target := 0.15
	for e := 0; e < 50; e++ {
		for i := 0; i < ds.Rows(); i++ {
			spec.RowStep(ds, i, r, step)
		}
		step *= 0.95
		sgdEpochs = e + 1
		if spec.Loss(ds, r.X) <= target {
			break
		}
	}
	if spec.Loss(ds, r.X) > target {
		t.Fatalf("SGD never reached %v", target)
	}
	gd, err := (&GD{Step: 0.5}).Run(spec, ds, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Either GD fails to reach the target at all within 100 epochs
	// (SGD's 49-epoch run already beat it) or it takes at least twice
	// as many epochs.
	if ge, ok := gd.Curve.EpochsTo(target); ok && ge < 2*sgdEpochs {
		t.Errorf("GD epochs (%d) not well above SGD's (%d)", ge, sgdEpochs)
	}
}
