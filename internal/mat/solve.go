package mat

import (
	"fmt"
	"math"
)

// Gram computes G = AᵀA + ridge·I as a d×d row-major dense matrix.
// The small ridge keeps G invertible for rank-deficient synthetic data;
// leverage-score sampling (Appendix C.4) only needs G as a similarity
// weighting, so regularisation does not change its role.
func Gram(a *CSR, ridge float64) *Dense {
	g := NewDense(a.Cols, a.Cols, RowMajor)
	for i := 0; i < a.Rows; i++ {
		idx, vals := a.Row(i)
		for p, jp := range idx {
			vp := vals[p]
			rowBase := int(jp) * a.Cols
			for q, jq := range idx {
				g.Data[rowBase+int(jq)] += vp * vals[q]
			}
			_ = p
		}
	}
	for j := 0; j < a.Cols; j++ {
		g.Data[j*a.Cols+j] += ridge
	}
	return g
}

// Inverse returns the inverse of a square row-major dense matrix using
// Gauss–Jordan elimination with partial pivoting. It returns an error
// if the matrix is singular to working precision.
func Inverse(a *Dense) (*Dense, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("mat: Inverse of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	// Augmented [A | I] working copy in row-major order.
	w := make([][]float64, n)
	for i := 0; i < n; i++ {
		w[i] = make([]float64, 2*n)
		for j := 0; j < n; j++ {
			w[i][j] = a.At(i, j)
		}
		w[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(w[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(w[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, fmt.Errorf("mat: singular matrix (pivot %g at column %d)", best, col)
		}
		w[col], w[pivot] = w[pivot], w[col]
		inv := 1 / w[col][col]
		for j := 0; j < 2*n; j++ {
			w[col][j] *= inv
		}
		for r := 0; r < n; r++ {
			if r == col || w[r][col] == 0 {
				continue
			}
			f := w[r][col]
			for j := 0; j < 2*n; j++ {
				w[r][j] -= f * w[col][j]
			}
		}
	}
	out := NewDense(n, n, RowMajor)
	for i := 0; i < n; i++ {
		copy(out.Data[i*n:(i+1)*n], w[i][n:])
	}
	return out, nil
}

// Solve returns x with A x = b for a square row-major dense matrix,
// using Gaussian elimination with partial pivoting.
func Solve(a *Dense, b []float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("mat: Solve with non-square %dx%d matrix", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("mat: Solve with %d-vector for %d-row matrix", len(b), a.Rows)
	}
	n := a.Rows
	w := make([][]float64, n)
	rhs := make([]float64, n)
	copy(rhs, b)
	for i := 0; i < n; i++ {
		w[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			w[i][j] = a.At(i, j)
		}
	}
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(w[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(w[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, fmt.Errorf("mat: singular matrix (pivot %g at column %d)", best, col)
		}
		w[col], w[pivot] = w[pivot], w[col]
		rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
		for r := col + 1; r < n; r++ {
			if w[r][col] == 0 {
				continue
			}
			f := w[r][col] / w[col][col]
			for j := col; j < n; j++ {
				w[r][j] -= f * w[col][j]
			}
			rhs[r] -= f * rhs[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := rhs[i]
		for j := i + 1; j < n; j++ {
			s -= w[i][j] * x[j]
		}
		x[i] = s / w[i][i]
	}
	return x, nil
}

// LeverageScores returns the (approximate) linear leverage score of
// every row of A: s(i) = aᵢᵀ (AᵀA)⁻¹ aᵢ, the importance weight behind
// the paper's Importance data-replication strategy (Appendix C.4).
// A small ridge regularises the Gram matrix.
func LeverageScores(a *CSR, ridge float64) ([]float64, error) {
	ginv, err := Inverse(Gram(a, ridge))
	if err != nil {
		return nil, fmt.Errorf("mat: leverage scores: %w", err)
	}
	scores := make([]float64, a.Rows)
	tmp := make([]float64, a.Cols)
	for i := 0; i < a.Rows; i++ {
		idx, vals := a.Row(i)
		// tmp = G⁻¹ aᵢ restricted to the support needed.
		for j := range tmp {
			tmp[j] = 0
		}
		for p, jp := range idx {
			v := vals[p]
			rowBase := int(jp) * a.Cols
			for j := 0; j < a.Cols; j++ {
				tmp[j] += v * ginv.Data[rowBase+j]
			}
		}
		var s float64
		for p, jp := range idx {
			s += vals[p] * tmp[jp]
		}
		if s < 0 {
			s = 0 // numerical noise; true leverage scores are in [0, 1]
		}
		scores[i] = s
	}
	return scores, nil
}
