// Package mat implements the storage substrate of the engine: sparse
// matrices in compressed sparse row (CSR) and column (CSC) formats,
// dense matrices in row- and column-major order, and the small dense
// linear algebra needed for leverage-score sampling.
//
// The paper's access methods map directly onto these layouts: row-wise
// access streams CSR rows, column-wise and column-to-row access stream
// CSC columns (Section 2.1, Appendix A). DimmWitted "always stores the
// dataset in a way that is consistent with the access method", so the
// engine materialises whichever of the two the plan needs.
package mat

import (
	"fmt"
	"sort"
)

// Entry is one nonzero of a sparse row or column.
type Entry struct {
	// Idx is the column index (in a row) or row index (in a column).
	Idx int32
	// Val is the nonzero value.
	Val float64
}

// CSR is a sparse matrix in compressed sparse row format. Row i's
// nonzeros live at positions RowPtr[i]..RowPtr[i+1] of ColIdx/Vals.
type CSR struct {
	// Rows and Cols are the matrix dimensions.
	Rows, Cols int
	// RowPtr has length Rows+1; RowPtr[0] == 0.
	RowPtr []int64
	// ColIdx holds the column index of every nonzero, row by row.
	ColIdx []int32
	// Vals holds the value of every nonzero, row by row.
	Vals []float64
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int64 { return int64(len(m.Vals)) }

// RowNNZ returns the number of nonzeros in row i (the paper's n_i).
func (m *CSR) RowNNZ(i int) int { return int(m.RowPtr[i+1] - m.RowPtr[i]) }

// Row returns views of row i's column indices and values. The returned
// slices alias the matrix and must not be modified.
func (m *CSR) Row(i int) (idx []int32, vals []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Vals[lo:hi]
}

// MulVec computes y = A x. len(x) must be Cols and len(y) must be Rows.
func (m *CSR) MulVec(x, y []float64) {
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		var s float64
		for k := lo; k < hi; k++ {
			s += m.Vals[k] * x[m.ColIdx[k]]
		}
		y[i] = s
	}
}

// Bytes returns the approximate in-memory size of the sparse
// representation (index + value arrays), used by the cost model.
func (m *CSR) Bytes() int64 {
	return int64(len(m.RowPtr))*8 + int64(len(m.ColIdx))*4 + int64(len(m.Vals))*8
}

// Validate checks structural invariants and returns a descriptive
// error on the first violation.
func (m *CSR) Validate() error {
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("mat: CSR RowPtr length %d, want %d", len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("mat: CSR RowPtr[0] = %d, want 0", m.RowPtr[0])
	}
	if m.RowPtr[m.Rows] != int64(len(m.Vals)) || len(m.ColIdx) != len(m.Vals) {
		return fmt.Errorf("mat: CSR nnz mismatch: ptr=%d idx=%d vals=%d",
			m.RowPtr[m.Rows], len(m.ColIdx), len(m.Vals))
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			return fmt.Errorf("mat: CSR RowPtr not monotone at row %d", i)
		}
	}
	for k, j := range m.ColIdx {
		if j < 0 || int(j) >= m.Cols {
			return fmt.Errorf("mat: CSR column index %d out of range at nnz %d", j, k)
		}
	}
	return nil
}

// ToCSC converts the matrix to compressed sparse column format using a
// counting pass, preserving within-column row order.
func (m *CSR) ToCSC() *CSC {
	nnz := len(m.Vals)
	out := &CSC{
		Rows:   m.Rows,
		Cols:   m.Cols,
		ColPtr: make([]int64, m.Cols+1),
		RowIdx: make([]int32, nnz),
		Vals:   make([]float64, nnz),
	}
	for _, j := range m.ColIdx {
		out.ColPtr[j+1]++
	}
	for j := 0; j < m.Cols; j++ {
		out.ColPtr[j+1] += out.ColPtr[j]
	}
	next := make([]int64, m.Cols)
	copy(next, out.ColPtr[:m.Cols])
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			j := m.ColIdx[k]
			p := next[j]
			out.RowIdx[p] = int32(i)
			out.Vals[p] = m.Vals[k]
			next[j]++
		}
	}
	return out
}

// ToDense materialises the matrix in the given dense order.
func (m *CSR) ToDense(order Order) *Dense {
	d := NewDense(m.Rows, m.Cols, order)
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			d.Set(i, int(m.ColIdx[k]), m.Vals[k])
		}
	}
	return d
}

// Builder incrementally assembles a CSR matrix row by row.
type Builder struct {
	cols   int
	rowPtr []int64
	colIdx []int32
	vals   []float64
}

// NewBuilder returns a builder for matrices with the given column count.
func NewBuilder(cols int) *Builder {
	return &Builder{cols: cols, rowPtr: []int64{0}}
}

// AddRow appends one row given parallel index/value slices. Indices
// need not be sorted; they are sorted internally. It panics on an index
// out of range or mismatched lengths, which are programming errors.
func (b *Builder) AddRow(idx []int32, vals []float64) {
	if len(idx) != len(vals) {
		panic(fmt.Sprintf("mat: AddRow with %d indices, %d values", len(idx), len(vals)))
	}
	start := len(b.colIdx)
	for k, j := range idx {
		if j < 0 || int(j) >= b.cols {
			panic(fmt.Sprintf("mat: AddRow index %d out of %d columns", j, b.cols))
		}
		b.colIdx = append(b.colIdx, j)
		b.vals = append(b.vals, vals[k])
	}
	seg := rowSegment{idx: b.colIdx[start:], vals: b.vals[start:]}
	sort.Sort(seg)
	b.rowPtr = append(b.rowPtr, int64(len(b.colIdx)))
}

// AddEntries appends one row given a slice of entries.
func (b *Builder) AddEntries(entries []Entry) {
	idx := make([]int32, len(entries))
	vals := make([]float64, len(entries))
	for k, e := range entries {
		idx[k] = e.Idx
		vals[k] = e.Val
	}
	b.AddRow(idx, vals)
}

// AddDenseRow appends a fully dense row.
func (b *Builder) AddDenseRow(row []float64) {
	if len(row) != b.cols {
		panic(fmt.Sprintf("mat: AddDenseRow with %d values, want %d", len(row), b.cols))
	}
	for j, v := range row {
		b.colIdx = append(b.colIdx, int32(j))
		b.vals = append(b.vals, v)
	}
	b.rowPtr = append(b.rowPtr, int64(len(b.colIdx)))
}

// Build finalises and returns the matrix. The builder must not be used
// afterwards.
func (b *Builder) Build() *CSR {
	return &CSR{
		Rows:   len(b.rowPtr) - 1,
		Cols:   b.cols,
		RowPtr: b.rowPtr,
		ColIdx: b.colIdx,
		Vals:   b.vals,
	}
}

type rowSegment struct {
	idx  []int32
	vals []float64
}

func (s rowSegment) Len() int           { return len(s.idx) }
func (s rowSegment) Less(i, j int) bool { return s.idx[i] < s.idx[j] }
func (s rowSegment) Swap(i, j int) {
	s.idx[i], s.idx[j] = s.idx[j], s.idx[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}
