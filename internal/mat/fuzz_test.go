package mat

import (
	"bytes"
	"testing"
)

// FuzzReadCSR checks the binary CSR reader never panics and that any
// matrix it accepts passes validation and round-trips byte-identically.
func FuzzReadCSR(f *testing.F) {
	var seed bytes.Buffer
	if _, err := buildTestCSR().WriteTo(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(csrMagic))
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadCSR(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted invalid matrix: %v", err)
		}
		var out bytes.Buffer
		if _, err := m.WriteTo(&out); err != nil {
			t.Fatalf("rewriting accepted matrix: %v", err)
		}
		back, err := ReadCSR(&out)
		if err != nil {
			t.Fatalf("re-reading own output: %v", err)
		}
		if back.NNZ() != m.NNZ() || back.Rows != m.Rows || back.Cols != m.Cols {
			t.Fatal("round trip changed shape")
		}
	})
}
