package mat

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// csrMagic identifies the binary CSR format; the version byte guards
// against silent format drift.
const csrMagic = "DWCSR\x01"

// WriteTo serialises the matrix in a compact little-endian binary
// format (magic, dims, nnz, then the three arrays). It implements
// io.WriterTo.
func (m *CSR) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if _, err := bw.WriteString(csrMagic); err != nil {
		return n, err
	}
	n += int64(len(csrMagic))
	if err := write(int64(m.Rows)); err != nil {
		return n, err
	}
	if err := write(int64(m.Cols)); err != nil {
		return n, err
	}
	if err := write(int64(len(m.Vals))); err != nil {
		return n, err
	}
	if err := write(m.RowPtr); err != nil {
		return n, err
	}
	if err := write(m.ColIdx); err != nil {
		return n, err
	}
	if err := write(m.Vals); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// ReadCSR deserialises a matrix written by WriteTo and validates it.
func ReadCSR(r io.Reader) (*CSR, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(csrMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("mat: reading CSR header: %w", err)
	}
	if string(magic) != csrMagic {
		return nil, fmt.Errorf("mat: bad CSR magic %q", magic)
	}
	var rows, cols, nnz int64
	for _, p := range []*int64{&rows, &cols, &nnz} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("mat: reading CSR dims: %w", err)
		}
	}
	// Cap the header-declared sizes before allocating: a corrupt or
	// hostile header must not be able to demand an arbitrary
	// allocation (found by FuzzReadCSR). 16M rows/columns/nonzeros
	// bounds the transient allocation to ~128 MB and comfortably
	// covers every dataset this library generates.
	const maxDim = 1 << 24
	if rows < 0 || cols < 0 || nnz < 0 || rows > maxDim || cols > maxDim || nnz > maxDim {
		return nil, fmt.Errorf("mat: implausible CSR dims %dx%d nnz=%d", rows, cols, nnz)
	}
	m := &CSR{
		Rows:   int(rows),
		Cols:   int(cols),
		RowPtr: make([]int64, rows+1),
		ColIdx: make([]int32, nnz),
		Vals:   make([]float64, nnz),
	}
	if err := binary.Read(br, binary.LittleEndian, m.RowPtr); err != nil {
		return nil, fmt.Errorf("mat: reading RowPtr: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, m.ColIdx); err != nil {
		return nil, fmt.Errorf("mat: reading ColIdx: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, m.Vals); err != nil {
		return nil, fmt.Errorf("mat: reading Vals: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("mat: deserialised matrix invalid: %w", err)
	}
	return m, nil
}
