package mat

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCSRRoundTrip(t *testing.T) {
	m := buildTestCSR()
	var buf bytes.Buffer
	n, err := m.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadCSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows != m.Rows || back.Cols != m.Cols || back.NNZ() != m.NNZ() {
		t.Fatalf("shape changed: %dx%d nnz=%d", back.Rows, back.Cols, back.NNZ())
	}
	for i := 0; i < m.Rows; i++ {
		ai, av := m.Row(i)
		bi, bv := back.Row(i)
		for k := range ai {
			if ai[k] != bi[k] || av[k] != bv[k] {
				t.Errorf("row %d entry %d changed", i, k)
			}
		}
	}
}

func TestReadCSRRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     nil,
		"bad magic": []byte("NOTCSR\x01aaaaaaaaaaaaaaaaaaaaaaaa"),
		"truncated": append([]byte(csrMagic), 1, 0, 0),
	}
	for name, b := range cases {
		if _, err := ReadCSR(bytes.NewReader(b)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestReadCSRRejectsImplausibleDims(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(csrMagic)
	// rows = -1
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	buf.Write(make([]byte, 16))
	if _, err := ReadCSR(&buf); err == nil {
		t.Error("negative rows accepted")
	}
}

// Property: WriteTo/ReadCSR round-trips random matrices exactly.
func TestCSRIORoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(15), 1+rng.Intn(15)
		b := NewBuilder(cols)
		for i := 0; i < rows; i++ {
			nnz := rng.Intn(cols + 1)
			perm := rng.Perm(cols)[:nnz]
			idx := make([]int32, nnz)
			vals := make([]float64, nnz)
			for k, j := range perm {
				idx[k] = int32(j)
				vals[k] = rng.NormFloat64()
			}
			b.AddRow(idx, vals)
		}
		m := b.Build()
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			return false
		}
		back, err := ReadCSR(&buf)
		if err != nil {
			return false
		}
		if back.NNZ() != m.NNZ() || back.Rows != m.Rows || back.Cols != m.Cols {
			return false
		}
		for k := range m.Vals {
			if m.Vals[k] != back.Vals[k] || m.ColIdx[k] != back.ColIdx[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
