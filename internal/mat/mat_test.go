package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildTestCSR() *CSR {
	// [ 1 0 2 ]
	// [ 0 3 0 ]
	// [ 4 0 5 ]
	b := NewBuilder(3)
	b.AddRow([]int32{0, 2}, []float64{1, 2})
	b.AddRow([]int32{1}, []float64{3})
	b.AddRow([]int32{2, 0}, []float64{5, 4}) // unsorted on purpose
	return b.Build()
}

func TestBuilderAndValidate(t *testing.T) {
	m := buildTestCSR()
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if m.Rows != 3 || m.Cols != 3 || m.NNZ() != 5 {
		t.Fatalf("shape = %dx%d nnz=%d", m.Rows, m.Cols, m.NNZ())
	}
	idx, vals := m.Row(2)
	if idx[0] != 0 || idx[1] != 2 || vals[0] != 4 || vals[1] != 5 {
		t.Errorf("row 2 not sorted: idx=%v vals=%v", idx, vals)
	}
	if m.RowNNZ(1) != 1 {
		t.Errorf("RowNNZ(1) = %d, want 1", m.RowNNZ(1))
	}
}

func TestBuilderAddEntriesAndDenseRow(t *testing.T) {
	b := NewBuilder(2)
	b.AddEntries([]Entry{{Idx: 1, Val: 7}})
	b.AddDenseRow([]float64{1, 2})
	m := b.Build()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 3 {
		t.Errorf("NNZ = %d, want 3", m.NNZ())
	}
	idx, vals := m.Row(1)
	if len(idx) != 2 || vals[1] != 2 {
		t.Errorf("dense row wrong: %v %v", idx, vals)
	}
}

func TestBuilderPanics(t *testing.T) {
	check := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	check("mismatched lengths", func() {
		NewBuilder(3).AddRow([]int32{0}, []float64{1, 2})
	})
	check("index out of range", func() {
		NewBuilder(3).AddRow([]int32{3}, []float64{1})
	})
	check("dense row wrong width", func() {
		NewBuilder(3).AddDenseRow([]float64{1})
	})
}

func TestCSRMulVec(t *testing.T) {
	m := buildTestCSR()
	y := make([]float64, 3)
	m.MulVec([]float64{1, 1, 1}, y)
	want := []float64{3, 3, 9}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestCSRToCSCRoundTrip(t *testing.T) {
	m := buildTestCSR()
	csc := m.ToCSC()
	if err := csc.Validate(); err != nil {
		t.Fatalf("CSC Validate: %v", err)
	}
	rows, vals := csc.Col(0)
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 2 || vals[1] != 4 {
		t.Errorf("col 0 = %v %v", rows, vals)
	}
	if csc.ColNNZ(1) != 1 {
		t.Errorf("ColNNZ(1) = %d", csc.ColNNZ(1))
	}
	back := csc.ToCSR()
	if err := back.Validate(); err != nil {
		t.Fatalf("round-trip Validate: %v", err)
	}
	if back.NNZ() != m.NNZ() {
		t.Fatalf("round-trip NNZ = %d, want %d", back.NNZ(), m.NNZ())
	}
	for i := 0; i < m.Rows; i++ {
		ai, av := m.Row(i)
		bi, bv := back.Row(i)
		if len(ai) != len(bi) {
			t.Fatalf("row %d nnz changed", i)
		}
		for k := range ai {
			if ai[k] != bi[k] || av[k] != bv[k] {
				t.Errorf("row %d entry %d changed: (%d,%v) -> (%d,%v)", i, k, ai[k], av[k], bi[k], bv[k])
			}
		}
	}
}

func TestCSCMulTVec(t *testing.T) {
	m := buildTestCSR().ToCSC()
	y := make([]float64, 3)
	m.MulTVec([]float64{1, 2, 3}, y)
	// Aᵀ [1 2 3] = [1*1+4*3, 3*2, 2*1+5*3] = [13, 6, 17]
	want := []float64{13, 6, 17}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestCSRValidateCatchesCorruption(t *testing.T) {
	m := buildTestCSR()
	m.ColIdx[0] = 99
	if err := m.Validate(); err == nil {
		t.Error("Validate missed out-of-range column")
	}
	m = buildTestCSR()
	m.RowPtr[1] = 100
	if err := m.Validate(); err == nil {
		t.Error("Validate missed broken RowPtr")
	}
}

func TestDenseBothOrders(t *testing.T) {
	for _, order := range []Order{RowMajor, ColMajor} {
		d := NewDense(2, 3, order)
		d.Set(0, 1, 5)
		d.Set(1, 2, 7)
		if d.At(0, 1) != 5 || d.At(1, 2) != 7 || d.At(0, 0) != 0 {
			t.Errorf("%v: At/Set wrong", order)
		}
		row := make([]float64, 3)
		d.Row(0, row)
		if row[1] != 5 || row[0] != 0 {
			t.Errorf("%v: Row = %v", order, row)
		}
		col := make([]float64, 2)
		d.Col(2, col)
		if col[1] != 7 {
			t.Errorf("%v: Col = %v", order, col)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%v: %v", order, err)
		}
	}
}

func TestDenseMulVecMatchesCSR(t *testing.T) {
	m := buildTestCSR()
	x := []float64{2, -1, 0.5}
	want := make([]float64, 3)
	m.MulVec(x, want)
	for _, order := range []Order{RowMajor, ColMajor} {
		d := m.ToDense(order)
		got := make([]float64, 3)
		d.MulVec(x, got)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Errorf("%v: y[%d] = %v, want %v", order, i, got[i], want[i])
			}
		}
	}
}

func TestDenseTransposed(t *testing.T) {
	d := NewDense(2, 3, RowMajor)
	d.Set(0, 2, 9)
	tr := d.Transposed()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 0) != 9 {
		t.Errorf("Transposed wrong: %dx%d At(2,0)=%v", tr.Rows, tr.Cols, tr.At(2, 0))
	}
}

func TestInverse(t *testing.T) {
	a := NewDense(3, 3, RowMajor)
	vals := [][]float64{{4, 7, 2}, {3, 6, 1}, {2, 5, 3}}
	for i := range vals {
		for j := range vals[i] {
			a.Set(i, j, vals[i][j])
		}
	}
	inv, err := Inverse(a)
	if err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	// A * A⁻¹ should be identity.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			var s float64
			for k := 0; k < 3; k++ {
				s += a.At(i, k) * inv.At(k, j)
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(s-want) > 1e-9 {
				t.Errorf("(A·A⁻¹)[%d][%d] = %v, want %v", i, j, s, want)
			}
		}
	}
}

func TestInverseSingular(t *testing.T) {
	a := NewDense(2, 2, RowMajor)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Inverse(a); err == nil {
		t.Error("Inverse of singular matrix succeeded")
	}
	if _, err := Inverse(NewDense(2, 3, RowMajor)); err == nil {
		t.Error("Inverse of non-square matrix succeeded")
	}
}

func TestSolve(t *testing.T) {
	a := NewDense(2, 2, RowMajor)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// 2x+y=5, x+3y=10 -> x=1, y=3
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Errorf("Solve = %v, want [1 3]", x)
	}
	if _, err := Solve(a, []float64{1}); err == nil {
		t.Error("Solve with wrong-length rhs succeeded")
	}
}

func TestGram(t *testing.T) {
	m := buildTestCSR()
	g := Gram(m, 0)
	// AᵀA for the test matrix: columns c0=(1,0,4), c1=(0,3,0), c2=(2,0,5)
	want := [][]float64{{17, 0, 22}, {0, 9, 0}, {22, 0, 29}}
	for i := range want {
		for j := range want[i] {
			if math.Abs(g.At(i, j)-want[i][j]) > 1e-12 {
				t.Errorf("G[%d][%d] = %v, want %v", i, j, g.At(i, j), want[i][j])
			}
		}
	}
	gr := Gram(m, 2.5)
	if math.Abs(gr.At(0, 0)-19.5) > 1e-12 {
		t.Errorf("ridge not applied: %v", gr.At(0, 0))
	}
}

func TestLeverageScores(t *testing.T) {
	// For a full-rank square matrix, leverage scores are all 1 and sum
	// to d (standard identity: trace of the hat matrix equals rank).
	b := NewBuilder(3)
	b.AddDenseRow([]float64{1, 0, 0})
	b.AddDenseRow([]float64{0, 2, 0})
	b.AddDenseRow([]float64{0, 0, 3})
	scores, err := LeverageScores(b.Build(), 0)
	if err != nil {
		t.Fatalf("LeverageScores: %v", err)
	}
	var sum float64
	for i, s := range scores {
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("score[%d] = %v, want 1", i, s)
		}
		sum += s
	}
	if math.Abs(sum-3) > 1e-9 {
		t.Errorf("sum of scores = %v, want 3", sum)
	}
}

func TestLeverageScoresOverdetermined(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewBuilder(4)
	n := 50
	for i := 0; i < n; i++ {
		row := make([]float64, 4)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		b.AddDenseRow(row)
	}
	scores, err := LeverageScores(b.Build(), 1e-9)
	if err != nil {
		t.Fatalf("LeverageScores: %v", err)
	}
	var sum float64
	for i, s := range scores {
		if s < 0 || s > 1+1e-6 {
			t.Errorf("score[%d] = %v outside [0,1]", i, s)
		}
		sum += s
	}
	if math.Abs(sum-4) > 1e-6 {
		t.Errorf("sum of scores = %v, want ~4 (the rank)", sum)
	}
}

// Property: CSR -> CSC -> CSR is the identity on random sparse matrices.
func TestSparseRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(20)
		b := NewBuilder(cols)
		for i := 0; i < rows; i++ {
			nnz := rng.Intn(cols + 1)
			perm := rng.Perm(cols)[:nnz]
			idx := make([]int32, nnz)
			vals := make([]float64, nnz)
			for k, j := range perm {
				idx[k] = int32(j)
				vals[k] = rng.NormFloat64()
			}
			b.AddRow(idx, vals)
		}
		m := b.Build()
		back := m.ToCSC().ToCSR()
		if back.NNZ() != m.NNZ() {
			return false
		}
		for i := 0; i < m.Rows; i++ {
			ai, av := m.Row(i)
			bi, bv := back.Row(i)
			for k := range ai {
				if ai[k] != bi[k] || av[k] != bv[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: CSR MulVec agrees with the dense materialisation in both
// element orders.
func TestMulVecConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(10), 1+rng.Intn(10)
		b := NewBuilder(cols)
		for i := 0; i < rows; i++ {
			row := make([]float64, cols)
			for j := range row {
				if rng.Float64() < 0.5 {
					row[j] = rng.NormFloat64()
				}
			}
			b.AddDenseRow(row)
		}
		m := b.Build()
		x := make([]float64, cols)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		want := make([]float64, rows)
		m.MulVec(x, want)
		for _, order := range []Order{RowMajor, ColMajor} {
			got := make([]float64, rows)
			m.ToDense(order).MulVec(x, got)
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
