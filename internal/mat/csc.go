package mat

import "fmt"

// CSC is a sparse matrix in compressed sparse column format. Column
// j's nonzeros live at positions ColPtr[j]..ColPtr[j+1] of RowIdx/Vals.
// The column-wise and column-to-row access methods stream this layout:
// for column j, RowIdx gives exactly the set S(j) = {i : a_ij != 0}
// that the paper's f_ctr receives (Section 3.1, footnote 2).
type CSC struct {
	// Rows and Cols are the matrix dimensions.
	Rows, Cols int
	// ColPtr has length Cols+1; ColPtr[0] == 0.
	ColPtr []int64
	// RowIdx holds the row index of every nonzero, column by column.
	RowIdx []int32
	// Vals holds the value of every nonzero, column by column.
	Vals []float64
}

// NNZ returns the number of stored nonzeros.
func (m *CSC) NNZ() int64 { return int64(len(m.Vals)) }

// ColNNZ returns the number of nonzeros in column j.
func (m *CSC) ColNNZ(j int) int { return int(m.ColPtr[j+1] - m.ColPtr[j]) }

// Col returns views of column j's row indices and values. The returned
// slices alias the matrix and must not be modified.
func (m *CSC) Col(j int) (rows []int32, vals []float64) {
	lo, hi := m.ColPtr[j], m.ColPtr[j+1]
	return m.RowIdx[lo:hi], m.Vals[lo:hi]
}

// MulTVec computes y = Aᵀ x given the CSC layout (equivalently, the
// column-wise inner products ⟨a_:j, x⟩). len(x) must be Rows and
// len(y) must be Cols.
func (m *CSC) MulTVec(x, y []float64) {
	for j := 0; j < m.Cols; j++ {
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		var s float64
		for k := lo; k < hi; k++ {
			s += m.Vals[k] * x[m.RowIdx[k]]
		}
		y[j] = s
	}
}

// Bytes returns the approximate in-memory size of the representation.
func (m *CSC) Bytes() int64 {
	return int64(len(m.ColPtr))*8 + int64(len(m.RowIdx))*4 + int64(len(m.Vals))*8
}

// Validate checks structural invariants.
func (m *CSC) Validate() error {
	if len(m.ColPtr) != m.Cols+1 {
		return fmt.Errorf("mat: CSC ColPtr length %d, want %d", len(m.ColPtr), m.Cols+1)
	}
	if m.ColPtr[0] != 0 {
		return fmt.Errorf("mat: CSC ColPtr[0] = %d, want 0", m.ColPtr[0])
	}
	if m.ColPtr[m.Cols] != int64(len(m.Vals)) || len(m.RowIdx) != len(m.Vals) {
		return fmt.Errorf("mat: CSC nnz mismatch: ptr=%d idx=%d vals=%d",
			m.ColPtr[m.Cols], len(m.RowIdx), len(m.Vals))
	}
	for j := 0; j < m.Cols; j++ {
		if m.ColPtr[j] > m.ColPtr[j+1] {
			return fmt.Errorf("mat: CSC ColPtr not monotone at column %d", j)
		}
	}
	for k, i := range m.RowIdx {
		if i < 0 || int(i) >= m.Rows {
			return fmt.Errorf("mat: CSC row index %d out of range at nnz %d", i, k)
		}
	}
	return nil
}

// ToCSR converts the matrix back to compressed sparse row format.
func (m *CSC) ToCSR() *CSR {
	nnz := len(m.Vals)
	out := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: make([]int64, m.Rows+1),
		ColIdx: make([]int32, nnz),
		Vals:   make([]float64, nnz),
	}
	for _, i := range m.RowIdx {
		out.RowPtr[i+1]++
	}
	for i := 0; i < m.Rows; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	next := make([]int64, m.Rows)
	copy(next, out.RowPtr[:m.Rows])
	for j := 0; j < m.Cols; j++ {
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		for k := lo; k < hi; k++ {
			i := m.RowIdx[k]
			p := next[i]
			out.ColIdx[p] = int32(j)
			out.Vals[p] = m.Vals[k]
			next[i]++
		}
	}
	return out
}
