package mat

import "fmt"

// Order selects the element layout of a dense matrix. The paper's
// appendix shows that accessing a column-major matrix row-wise costs
// ~9x more L1 misses; the engine therefore always materialises the
// order matching the access method.
type Order int

const (
	// RowMajor stores row i contiguously.
	RowMajor Order = iota
	// ColMajor stores column j contiguously.
	ColMajor
)

// String implements fmt.Stringer.
func (o Order) String() string {
	if o == RowMajor {
		return "row-major"
	}
	return "col-major"
}

// Dense is a dense matrix in either row- or column-major order.
type Dense struct {
	// Rows and Cols are the matrix dimensions.
	Rows, Cols int
	// Layout is the element order of Data.
	Layout Order
	// Data holds Rows*Cols elements in Layout order.
	Data []float64
}

// NewDense returns an all-zero dense matrix.
func NewDense(rows, cols int, order Order) *Dense {
	return &Dense{Rows: rows, Cols: cols, Layout: order, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (d *Dense) At(i, j int) float64 { return d.Data[d.index(i, j)] }

// Set assigns element (i, j).
func (d *Dense) Set(i, j int, v float64) { d.Data[d.index(i, j)] = v }

func (d *Dense) index(i, j int) int {
	if d.Layout == RowMajor {
		return i*d.Cols + j
	}
	return j*d.Rows + i
}

// Row copies row i into dst, which must have length Cols. For a
// row-major matrix this is a contiguous copy; for column-major it is a
// strided gather (the slow path the appendix measures).
func (d *Dense) Row(i int, dst []float64) {
	if d.Layout == RowMajor {
		copy(dst, d.Data[i*d.Cols:(i+1)*d.Cols])
		return
	}
	for j := 0; j < d.Cols; j++ {
		dst[j] = d.Data[j*d.Rows+i]
	}
}

// Col copies column j into dst, which must have length Rows.
func (d *Dense) Col(j int, dst []float64) {
	if d.Layout == ColMajor {
		copy(dst, d.Data[j*d.Rows:(j+1)*d.Rows])
		return
	}
	for i := 0; i < d.Rows; i++ {
		dst[i] = d.Data[i*d.Cols+j]
	}
}

// MulVec computes y = A x.
func (d *Dense) MulVec(x, y []float64) {
	if d.Layout == RowMajor {
		for i := 0; i < d.Rows; i++ {
			row := d.Data[i*d.Cols : (i+1)*d.Cols]
			var s float64
			for j, v := range row {
				s += v * x[j]
			}
			y[i] = s
		}
		return
	}
	for i := range y[:d.Rows] {
		y[i] = 0
	}
	for j := 0; j < d.Cols; j++ {
		col := d.Data[j*d.Rows : (j+1)*d.Rows]
		xj := x[j]
		for i, v := range col {
			y[i] += v * xj
		}
	}
}

// Bytes returns the in-memory size of the element array.
func (d *Dense) Bytes() int64 { return int64(len(d.Data)) * 8 }

// Transposed returns a new matrix with the same layout holding Aᵀ.
func (d *Dense) Transposed() *Dense {
	t := NewDense(d.Cols, d.Rows, d.Layout)
	for i := 0; i < d.Rows; i++ {
		for j := 0; j < d.Cols; j++ {
			t.Set(j, i, d.At(i, j))
		}
	}
	return t
}

// Validate checks dimensional invariants.
func (d *Dense) Validate() error {
	if len(d.Data) != d.Rows*d.Cols {
		return fmt.Errorf("mat: Dense %dx%d with %d elements", d.Rows, d.Cols, len(d.Data))
	}
	return nil
}
