package factor

import (
	"encoding/binary"
	"fmt"

	"dimmwitted/internal/core"
)

// chainBlobVersion versions the chain's private-state encoding inside
// core snapshots. Bump it when the layout below changes; DecodeReplica
// rejects versions it does not understand.
const chainBlobVersion = 1

// EncodeReplica implements core.ReplicaCodec: a Gibbs chain's private
// state is its current assignment, the marginal tallies accumulated so
// far, and the chain generator's stream position — together they
// determine every remaining sweep exactly, which is what makes a
// sampling job resumable at all (the pooled marginals alone do not).
//
// Layout (little-endian): u8 version, u32 numVars, numVars x i32
// assignments, numVars x i64 one-counts, i64 tallies, i64 rng seed,
// u64 rng draws.
func (w *Workload) EncodeReplica(ws *core.WorkState) ([]byte, error) {
	c, ok := ws.Priv.(*chain)
	if !ok {
		return nil, fmt.Errorf("factor: replica carries no chain state")
	}
	n := len(c.assign)
	buf := make([]byte, 0, 1+4+4*n+8*n+8+16)
	buf = append(buf, chainBlobVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	for _, a := range c.assign {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(a))
	}
	for _, o := range c.ones {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(o))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.tallies))
	// Positions past the replay bound degrade to a fresh derived
	// generator (see core.CapRNGState) — the chain stays resumable from
	// its assignment, trading exact stream continuation for liveness.
	st := core.CapRNGState(c.src.State())
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.Seed))
	buf = binary.LittleEndian.AppendUint64(buf, st.Draws)
	return buf, nil
}

// DecodeReplica implements core.ReplicaCodec: it rebuilds the chain's
// assignment, tallies and generator position from an EncodeReplica
// blob, and refreshes the replica's marginal-estimate view from the
// restored tallies.
func (w *Workload) DecodeReplica(ws *core.WorkState, blob []byte) error {
	c, ok := ws.Priv.(*chain)
	if !ok {
		return fmt.Errorf("factor: replica carries no chain state")
	}
	if len(blob) < 5 {
		return fmt.Errorf("factor: chain state truncated (%d bytes)", len(blob))
	}
	if v := blob[0]; v != chainBlobVersion {
		return fmt.Errorf("factor: chain state version %d, want %d", v, chainBlobVersion)
	}
	n := int(binary.LittleEndian.Uint32(blob[1:5]))
	if n != len(c.assign) {
		return fmt.Errorf("factor: chain state has %d variables, graph has %d", n, len(c.assign))
	}
	want := 1 + 4 + 4*n + 8*n + 8 + 16
	if len(blob) != want {
		return fmt.Errorf("factor: chain state is %d bytes, want %d", len(blob), want)
	}
	off := 5
	for v := range c.assign {
		a := int32(binary.LittleEndian.Uint32(blob[off:]))
		if a != 0 && a != 1 {
			return fmt.Errorf("factor: chain state assigns variable %d value %d", v, a)
		}
		c.assign[v] = a
		off += 4
	}
	for v := range c.ones {
		o := int64(binary.LittleEndian.Uint64(blob[off:]))
		if o < 0 {
			return fmt.Errorf("factor: chain state has negative tally for variable %d", v)
		}
		c.ones[v] = o
		off += 8
	}
	c.tallies = int64(binary.LittleEndian.Uint64(blob[off:]))
	off += 8
	if c.tallies < 0 {
		return fmt.Errorf("factor: chain state has negative sweep count %d", c.tallies)
	}
	for v, o := range c.ones {
		if o > c.tallies {
			return fmt.Errorf("factor: chain state tallies variable %d as one %d times in %d sweeps", v, o, c.tallies)
		}
	}
	seed := int64(binary.LittleEndian.Uint64(blob[off:]))
	draws := binary.LittleEndian.Uint64(blob[off+8:])
	if draws > core.MaxRNGDraws {
		return fmt.Errorf("factor: chain generator position %d exceeds the replay bound %d", draws, uint64(core.MaxRNGDraws))
	}
	c.src.Restore(core.RNGState{Seed: seed, Draws: draws})

	// The replica's X view is the chain's marginal estimate; refresh it
	// from the restored tallies (EndEpoch's arithmetic).
	for v := range ws.X {
		if c.tallies == 0 {
			ws.X[v] = 0
		} else {
			ws.X[v] = float64(c.ones[v]) / float64(c.tallies)
		}
	}
	return nil
}
