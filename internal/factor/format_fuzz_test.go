package factor

import (
	"bytes"
	"math"
	"testing"
)

// graphFromBytes derives a structurally valid factor graph from raw
// fuzz bytes: the first byte sizes the variable domain, the rest is
// consumed as (kind, weight, arity, vars...) factor records. Weights
// are quarter-integers so the text format's float round trip is exact
// by construction and any mismatch the fuzzer finds is a real format
// bug, not decimal noise.
func graphFromBytes(raw []byte) (*Graph, error) {
	if len(raw) == 0 {
		return NewGraph(1, nil)
	}
	numVars := 1 + int(raw[0])%16
	raw = raw[1:]
	var factors []Factor
	for len(raw) >= 3 && len(factors) < 64 {
		kind := Kind(int(raw[0]) % 4)
		weight := (float64(raw[1]) - 128) / 4
		arity := 1 + int(raw[2])%4
		raw = raw[3:]
		if len(raw) < arity {
			break
		}
		vars := make([]int32, 0, arity)
		for _, b := range raw[:arity] {
			vars = append(vars, int32(int(b)%numVars))
		}
		raw = raw[arity:]
		factors = append(factors, Factor{Vars: vars, Weight: weight, Kind: kind})
	}
	return NewGraph(numVars, factors)
}

// FuzzFactorGraphFormat is the structured counterpart of FuzzReadGraph
// (which fuzzes the parser with raw text): it fuzzes the writer side,
// checking that every graph the builder accepts survives a
// WriteGraph/ReadGraph round trip with its semantics — variable count,
// factor kinds, weights, memberships — intact. The seed corpus
// (testdata) covers each factor kind, negative weights, duplicate
// memberships and degenerate single-variable graphs.
func FuzzFactorGraphFormat(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 3, 134, 2, 0, 1, 2})         // imply over 3 vars
	f.Add([]byte{0, 0, 100, 1, 0, 0})            // equal with negative weight, duplicate member
	f.Add([]byte{15, 1, 200, 3, 5, 9, 13, 2})    // and over 4 vars
	f.Add([]byte{7, 2, 128, 0, 6, 2, 131, 1, 3}) // or with zero weight, then equal
	f.Fuzz(func(t *testing.T, raw []byte) {
		g, err := graphFromBytes(raw)
		if err != nil {
			// The builder may reject derived graphs (it validates);
			// rejection is fine, panics are not.
			return
		}
		var buf bytes.Buffer
		if err := WriteGraph(&buf, g); err != nil {
			t.Fatalf("writing valid graph: %v", err)
		}
		back, err := ReadGraph(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading own output: %v\n%s", err, buf.Bytes())
		}
		if back.NumVars != g.NumVars {
			t.Fatalf("round trip changed NumVars: %d vs %d", back.NumVars, g.NumVars)
		}
		if len(back.Factors) != len(g.Factors) {
			t.Fatalf("round trip changed factor count: %d vs %d", len(back.Factors), len(g.Factors))
		}
		for i := range g.Factors {
			a, b := &g.Factors[i], &back.Factors[i]
			if a.Kind != b.Kind {
				t.Fatalf("factor %d kind changed: %v vs %v", i, a.Kind, b.Kind)
			}
			if math.Float64bits(a.Weight) != math.Float64bits(b.Weight) {
				t.Fatalf("factor %d weight changed: %v vs %v", i, a.Weight, b.Weight)
			}
			if len(a.Vars) != len(b.Vars) {
				t.Fatalf("factor %d arity changed", i)
			}
			for j := range a.Vars {
				if a.Vars[j] != b.Vars[j] {
					t.Fatalf("factor %d member %d changed: %d vs %d", i, j, a.Vars[j], b.Vars[j])
				}
			}
		}
	})
}
