package factor

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dimmwitted/internal/core"
)

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{Equal: "equal", And: "and", Or: "or", Imply: "imply"} {
		if k.String() != want {
			t.Errorf("%v.String() = %q", k, k.String())
		}
		back, err := kindByName(want)
		if err != nil || back != k {
			t.Errorf("kindByName(%q) = %v, %v", want, back, err)
		}
	}
	if _, err := kindByName("xor"); err == nil {
		t.Error("unknown kind accepted")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should stringify")
	}
}

func TestFactorKindsFire(t *testing.T) {
	assign := []int8{1, 1, 0}
	cases := []struct {
		f    Factor
		want bool
	}{
		{Factor{Vars: []int32{0, 1}, Kind: Equal}, true},
		{Factor{Vars: []int32{0, 2}, Kind: Equal}, false},
		{Factor{Vars: []int32{0, 1}, Kind: And}, true},
		{Factor{Vars: []int32{0, 2}, Kind: And}, false},
		{Factor{Vars: []int32{2}, Kind: Or}, false},
		{Factor{Vars: []int32{0, 2}, Kind: Or}, true},
		{Factor{Vars: []int32{0, 1, 2}, Kind: Imply}, false}, // 1∧1 ⇒ 0 violated
		{Factor{Vars: []int32{0, 2, 1}, Kind: Imply}, true},  // antecedent 1∧0 false
		{Factor{Vars: []int32{0, 1}, Kind: Imply}, true},     // 1 ⇒ 1
	}
	for i, c := range cases {
		if got := c.f.fires(assign); got != c.want {
			t.Errorf("case %d (%v %v): fires = %v, want %v", i, c.f.Kind, c.f.Vars, got, c.want)
		}
	}
}

func TestImplyGibbsMatchesExact(t *testing.T) {
	// A small implication network: x0 ⇒ x1, x1 ⇒ x2, prior pulling x0
	// up. Gibbs marginals must match exact inference with mixed kinds.
	g, err := NewGraph(3, []Factor{
		{Vars: []int32{0}, Weight: 1.0, Kind: And}, // prior on x0
		{Vars: []int32{0, 1}, Weight: 1.5, Kind: Imply},
		{Vars: []int32{1, 2}, Weight: 1.5, Kind: Imply},
	})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactMarginals(g)
	if err != nil {
		t.Fatal(err)
	}
	if !(exact[0] > 0.5 && exact[1] > 0.5) {
		t.Fatalf("implication network marginals unexpected: %v", exact)
	}
	wl := NewWorkload(g)
	eng, err := core.NewWorkload(wl, core.Plan{ModelRep: core.PerMachine, DataRep: core.Sharding, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunEpochs(200)
	wl.DiscardBurnIn()
	eng.RunEpochs(4000)
	got := eng.Model()
	for v := range exact {
		if math.Abs(got[v]-exact[v]) > 0.05 {
			t.Errorf("marginal[%d] = %.3f, exact %.3f", v, got[v], exact[v])
		}
	}
}

func TestGraphFormatRoundTrip(t *testing.T) {
	g, err := NewGraph(4, []Factor{
		{Vars: []int32{0, 1}, Weight: 1.25, Kind: Equal},
		{Vars: []int32{1, 2, 3}, Weight: -0.5, Kind: Imply},
		{Vars: []int32{3}, Weight: 2, Kind: Or},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVars != 4 || len(back.Factors) != 3 {
		t.Fatalf("shape changed: %d vars %d factors", back.NumVars, len(back.Factors))
	}
	for i := range g.Factors {
		a, b := g.Factors[i], back.Factors[i]
		if a.Weight != b.Weight || a.Kind != b.Kind || len(a.Vars) != len(b.Vars) {
			t.Errorf("factor %d changed: %+v vs %+v", i, a, b)
		}
	}
}

func TestReadGraphComments(t *testing.T) {
	src := `
# a comment
vars 2

factor equal 1.5 0 1  # trailing comment
`
	g, err := ReadGraph(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVars != 2 || len(g.Factors) != 1 || g.Factors[0].Weight != 1.5 {
		t.Errorf("parsed graph wrong: %+v", g)
	}
}

func TestReadGraphErrors(t *testing.T) {
	cases := map[string]string{
		"no vars":           "factor equal 1 0 1",
		"dup vars":          "vars 2\nvars 3",
		"bad count":         "vars zero",
		"zero count":        "vars 0",
		"short factor":      "vars 2\nfactor equal 1",
		"bad kind":          "vars 2\nfactor xor 1 0 1",
		"bad weight":        "vars 2\nfactor equal w 0 1",
		"var out of range":  "vars 2\nfactor equal 1 0 5",
		"negative var":      "vars 2\nfactor equal 1 -1 0",
		"unknown directive": "vars 2\nfoo bar",
		"empty":             "",
	}
	for name, src := range cases {
		if _, err := ReadGraph(strings.NewReader(src)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
