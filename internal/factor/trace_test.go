package factor

import (
	"testing"

	"dimmwitted/internal/core"
	"dimmwitted/internal/trace"
)

// TestTraceCoversParallelGibbsEpochs is the tracing overhead guard: on
// a traced parallel Gibbs run, the named top-level spans must account
// for at least 90% of the epoch wall clock — anything less means the
// recorder is missing a phase of the engine's own time. The assertion
// is on the aggregate over all sweeps, which is far more stable than
// any single epoch's timing.
func TestTraceCoversParallelGibbsEpochs(t *testing.T) {
	g, err := GraphByName("cycle5")
	if err != nil {
		t.Fatal(err)
	}
	plan := core.Plan{
		ModelRep: core.PerNode,
		DataRep:  core.FullReplication,
		Seed:     1,
		Executor: core.ExecParallel,
	}
	eng, err := core.NewWorkload(NewWorkload(g), plan)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New(trace.Config{})
	eng.SetRecorder(rec)
	const sweeps = 50
	eng.RunEpochs(sweeps)

	s := rec.Summary()
	if s.Epochs != sweeps {
		t.Fatalf("recorded %d epoch spans, want %d", s.Epochs, sweeps)
	}
	if s.Coverage < 0.90 {
		t.Fatalf("top-level spans cover %.1f%% of epoch wall clock, want >= 90%%\nphases: %+v",
			s.Coverage*100, s.Phases)
	}
	// The parallel shared path must attribute per-worker time too: a
	// worker span per goroutine per epoch.
	var workerSpans int64
	for _, p := range s.Phases {
		if p.Phase == "worker" {
			workerSpans = p.Count
		}
	}
	if workerSpans != int64(sweeps*s.Workers) {
		t.Fatalf("worker spans = %d, want %d (%d workers x %d sweeps)",
			workerSpans, sweeps*s.Workers, s.Workers, sweeps)
	}
}
