package factor

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"dimmwitted/internal/core"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

// Workload runs Gibbs sampling over a factor graph through the
// core engine: chains map onto the plan's model replicas (PerMachine —
// the single Hogwild!-Gibbs chain; PerNode — DimmWitted's independent
// chain per socket; PerCore — a chain per worker), variables onto work
// units of the shared partitioner, and the pooled marginal estimate
// onto the engine's combined state vector. Sampling one variable is a
// column-to-row access: fetch every factor containing it plus the
// assignments those factors touch, then write one assignment back.
//
// Under the simulated executor each chain samples its sweep
// permutation sequentially (drawn from the chain's own generator, so a
// fixed seed reproduces the classic sampler's marginals exactly); the
// parallel executor runs the chain's workers as real goroutines
// sampling concurrently on the shared chain with atomic assignment
// loads/stores — the Hogwild!-Gibbs memory model, race-detector clean
// because each worker owns a disjoint variable partition.
//
// A Workload instance binds to one engine; build a new one per run.
type Workload struct {
	g      *Graph
	plan   core.Plan
	chains []*chain
}

// chain is one Gibbs chain: an assignment (int32 for atomic access
// under the parallel executor), its marginal tallies, and the chain's
// private generator for sweep permutations and flips. src is the
// counting source backing rng, so a snapshot can capture the chain's
// exact stream position for bit-identical resume.
type chain struct {
	assign  []int32
	ones    []int64
	tallies int64
	rng     *rand.Rand
	src     *core.SeededSource
}

// NewWorkload wraps a factor graph as an engine workload.
func NewWorkload(g *Graph) *Workload { return &Workload{g: g} }

// Kind implements core.Workload.
func (w *Workload) Kind() core.WorkloadKind { return core.WorkloadGibbs }

// Name implements core.Workload.
func (w *Workload) Name() string { return "gibbs" }

// DatasetName implements core.Workload.
func (w *Workload) DatasetName() string {
	if w.g.Name != "" {
		return w.g.Name
	}
	return "graph"
}

// Supports implements core.Workload: sampling is the de facto
// column-to-row workload (Section 5.1).
func (w *Workload) Supports() []model.Access { return []model.Access{model.ColToRow} }

// NormalizePlan implements core.Workload. Chunk size 1 keeps the
// simulated interleaver sampling each chain's permutation in exact
// order; step size is meaningless for sampling and pinned to 1.
func (w *Workload) NormalizePlan(p core.Plan) core.Plan {
	p.Access = model.ColToRow
	if p.ChunkSize == 0 {
		p.ChunkSize = 1
	}
	if p.Step == 0 {
		p.Step = 1
	}
	if p.StepDecay == 0 {
		p.StepDecay = 1
	}
	return p
}

// ValidatePlan implements core.Workload.
func (w *Workload) ValidatePlan(p core.Plan) error {
	if p.DataRep == core.Importance {
		return fmt.Errorf("factor: Importance data replication is undefined for Gibbs sampling")
	}
	if p.DataRep == core.Sharding && p.ModelRep != core.PerMachine {
		// A chain that never resamples part of the domain is not a
		// Gibbs chain; multi-chain plans need the full domain per chain.
		return fmt.Errorf("factor: Sharding requires PerMachine (a single chain); multi-chain plans need FullReplication")
	}
	return nil
}

// Optimize implements core.Workload. The classic layout (one machine-
// shared chain, sharded variables) pays cross-socket assignment
// traffic and write collisions on every sample; independent chains per
// node sample locally and pool classically valid estimates (Robert &
// Casella), the ~4x of Figure 17(b). The optimizer therefore picks
// chain-per-node whenever the machine has more than one socket, on
// both backends.
func (w *Workload) Optimize(top numa.Topology, exec core.ExecutorKind) (core.Plan, error) {
	p := core.Plan{Access: model.ColToRow, Machine: top, Executor: exec}
	if top.Nodes > 1 {
		p.ModelRep = core.PerNode
		p.DataRep = core.FullReplication
	} else {
		p.ModelRep = core.PerMachine
		p.DataRep = core.Sharding
	}
	return p, nil
}

// Bind implements core.Workload.
func (w *Workload) Bind(p core.Plan) { w.plan = p }

// Units implements core.Workload: one unit per variable per sweep.
func (w *Workload) Units() int { return w.g.NumVars }

// Dim implements core.Workload: the combined state is the pooled
// marginal estimate, one probability per variable.
func (w *Workload) Dim() int { return w.g.NumVars }

// DataNNZ implements core.Workload.
func (w *Workload) DataNNZ() int64 { return w.g.NNZ() }

// Layout implements core.Workload: the model region holds the 1-byte
// assignments, the data region the factor structure. Every worker
// writes one variable per step of a NumVars-sized assignment:
// single-word updates rarely collide (Figure 16b's mechanism), but the
// hot skewed variables still do.
func (w *Workload) Layout() core.Layout {
	p := float64(w.plan.Workers-1) / float64(w.g.NumVars) * 4 // skew multiplier
	if p > 1 {
		p = 1
	}
	return core.Layout{
		ModelBytes:         int64(w.g.NumVars),
		DataBytes:          w.g.NNZ() * 8,
		ModelCollisionProb: p,
	}
}

// NewReplica implements core.Workload: one chain per replica, each
// with a random initial assignment from its own generator (chain n
// seeds from seed+1+n, the classic sampler's discipline).
func (w *Workload) NewReplica(repIdx int, seed int64) *core.WorkState {
	src := core.NewSeededSource(seed + 1 + int64(repIdx))
	c := &chain{
		assign: make([]int32, w.g.NumVars),
		ones:   make([]int64, w.g.NumVars),
		rng:    rand.New(src),
		src:    src,
	}
	rng := c.rng
	for v := range c.assign {
		c.assign[v] = int32(rng.Intn(2))
	}
	w.chains = append(w.chains, c)
	return &core.WorkState{X: make([]float64, w.g.NumVars), Priv: c}
}

// EpochOrder implements core.EpochOrderer: each chain draws its sweep
// permutation from its own generator, exactly like the classic
// sampler.
func (w *Workload) EpochOrder(repIdx int) []int {
	return w.chains[repIdx].rng.Perm(w.g.NumVars)
}

// Step implements core.Workload: resample variable unit of the
// replica's chain, charging the column-to-row access — the factor
// column, the member assignments, and the single assignment write.
// rng is non-nil only under the parallel executor, whose workers
// cannot share the chain's generator.
func (w *Workload) Step(unit int, ws *core.WorkState, _ float64, rng *rand.Rand, cost *core.StepCost) model.Stats {
	c := ws.Priv.(*chain)
	var reads int64
	for _, fi := range w.g.VarFactors(unit) {
		reads += int64(len(w.g.Factors[fi].Vars))
	}
	if cost != nil {
		cost.Core.ReadStream(cost.DataReg, reads)  // factor structure
		cost.Core.ReadCached(cost.ModelReg, reads) // member assignments
		cost.Core.Compute(float64(reads)*2 + 8)    // energy accumulation
	}
	logOdds := w.g.conditionalLogOddsAtomic(unit, c.assign)
	p1 := 1 / (1 + math.Exp(-logOdds))
	src := rng
	if src == nil {
		src = c.rng
	}
	var val int32
	if src.Float64() < p1 {
		val = 1
	}
	atomic.StoreInt32(&c.assign[unit], val)
	if cost != nil {
		cost.Core.Write(cost.ModelReg, 1)
	}
	// Each worker owns a disjoint variable partition, so tallying into
	// the shared slice is race-free even under the parallel executor.
	c.ones[unit] += int64(val)
	return model.Stats{
		DataWords:   int(reads),
		ModelReads:  int(reads),
		ModelWrites: 1,
		Flops:       int(reads)*2 + 8,
	}
}

// Sync implements core.Workload: chains pool their estimates but stay
// independent — averaging assignments across chains would be
// statistical nonsense.
func (w *Workload) Sync() core.SyncMode { return core.SyncPool }

// Concurrency implements core.Workload: parallel workers sample
// directly on the shared chain (Hogwild!-Gibbs), not on delta-flushed
// working copies.
func (w *Workload) Concurrency() core.ConcurrencyMode { return core.ConcurrencyShared }

// Combine implements core.Workload: the pooled estimate is total ones
// over total tallies across chains — computed from the chains' exact
// integer counts (the classic sampler's arithmetic) rather than by
// averaging the per-chain float estimates, which would drift by an ulp.
func (w *Workload) Combine(_ [][]float64, dst []float64) {
	var total float64
	for _, c := range w.chains {
		total += float64(c.tallies)
	}
	if total == 0 {
		for v := range dst {
			dst[v] = 0
		}
		return
	}
	for v := range dst {
		var ones float64
		for _, c := range w.chains {
			ones += float64(c.ones[v])
		}
		dst[v] = ones / total
	}
}

// EndEpoch implements core.Workload: one epoch is one sweep per chain;
// refresh each chain's marginal estimate from its tallies.
func (w *Workload) EndEpoch(reps []*core.WorkState) {
	for _, ws := range reps {
		c := ws.Priv.(*chain)
		c.tallies++
		for v := range ws.X {
			ws.X[v] = float64(c.ones[v]) / float64(c.tallies)
		}
	}
}

// AuxRefresh implements core.Workload; sampling keeps no auxiliary
// state.
func (w *Workload) AuxRefresh(*core.WorkState, bool) bool { return false }

// Loss implements core.Workload with the mean Bernoulli entropy of the
// pooled marginals (nats) — a mixing/uncertainty summary that is
// reported, not a convergence target: sampling runs for a sweep
// budget, so drive Gibbs engines with RunEpochs/MaxEpochs.
func (w *Workload) Loss(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var h float64
	for _, p := range x {
		h += bernoulliEntropy(p)
	}
	return h / float64(len(x))
}

// Metrics implements core.Workload with marginal summaries for job
// status.
func (w *Workload) Metrics(x []float64) map[string]float64 {
	if len(x) == 0 {
		return nil
	}
	var sum, pol float64
	for _, p := range x {
		sum += p
		pol += 2 * math.Abs(p-0.5)
	}
	n := float64(len(x))
	return map[string]float64{
		"mean_marginal": sum / n,
		"polarization":  pol / n,
	}
}

// DiscardBurnIn zeroes every chain's marginal tallies, discarding the
// sweeps drawn so far as burn-in. Typical use: run b burn-in epochs,
// DiscardBurnIn, then run n epochs and read the engine's Model().
func (w *Workload) DiscardBurnIn() {
	for _, c := range w.chains {
		for v := range c.ones {
			c.ones[v] = 0
		}
		c.tallies = 0
	}
}

// bernoulliEntropy returns the entropy of a coin with P(1) = p, in
// nats.
func bernoulliEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log(p) - (1-p)*math.Log(1-p)
}

// ExactMarginals enumerates all assignments of a small graph (≤ 20
// variables) and returns the exact marginals, for validating the
// sampler.
func ExactMarginals(g *Graph) ([]float64, error) {
	if g.NumVars > 20 {
		return nil, fmt.Errorf("factor: exact inference on %d variables is infeasible", g.NumVars)
	}
	probs := make([]float64, g.NumVars)
	var z float64
	assign := make([]int8, g.NumVars)
	for mask := 0; mask < 1<<g.NumVars; mask++ {
		for v := range assign {
			assign[v] = int8((mask >> v) & 1)
		}
		var energy float64
		for i := range g.Factors {
			if g.Factors[i].fires(assign) {
				energy += g.Factors[i].Weight
			}
		}
		w := math.Exp(energy)
		z += w
		for v := range assign {
			if assign[v] == 1 {
				probs[v] += w
			}
		}
	}
	for v := range probs {
		probs[v] /= z
	}
	return probs, nil
}
