package factor

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"dimmwitted/internal/numa"
)

// ChainStrategy selects how Gibbs chains map onto the machine,
// mirroring the engine's model-replication granularities.
type ChainStrategy int

const (
	// SingleChain runs one chain whose assignment all workers update —
	// the PerMachine (Hogwild!-Gibbs) layout.
	SingleChain ChainStrategy = iota
	// ChainPerNode runs one independent chain per NUMA node, sampling
	// pooled across chains at the end — the DimmWitted layout.
	ChainPerNode
)

// String implements fmt.Stringer.
func (s ChainStrategy) String() string {
	if s == SingleChain {
		return "PerMachine"
	}
	return "PerNode"
}

// Sampler runs Gibbs sampling over a factor graph on a simulated NUMA
// machine, charging column-to-row access costs per variable sampled.
type Sampler struct {
	// G is the factor graph.
	G *Graph
	// Strategy is the chain layout.
	Strategy ChainStrategy

	mach   *numa.Machine
	chains []*chain
	rng    *rand.Rand

	sweeps  int
	samples int64
}

// chain is one Gibbs chain: an assignment, its marginal tallies, and
// the simulated regions backing them.
type chain struct {
	assign    []int8
	ones      []int64
	tallies   int64
	assignReg *numa.Region
	factorReg *numa.Region
	workers   []*numa.Core
	rng       *rand.Rand
}

// NewSampler builds a sampler for the graph on the given machine
// topology.
func NewSampler(g *Graph, top numa.Topology, strategy ChainStrategy, seed int64) *Sampler {
	s := &Sampler{
		G:        g,
		Strategy: strategy,
		mach:     numa.New(top),
		rng:      rand.New(rand.NewSource(seed)),
	}
	assignBytes := int64(g.NumVars)
	factorBytes := g.NNZ() * 8
	switch strategy {
	case SingleChain:
		c := s.newChain(seed + 1)
		c.assignReg = s.mach.NewInterleavedRegion("assign", assignBytes, numa.MachineShared)
		// Every worker writes one variable per step of a NumVars-sized
		// assignment: single-word updates rarely collide (Figure 16b's
		// mechanism), but the hot skewed variables still do.
		workers := top.TotalCores()
		p := float64(workers-1) / float64(g.NumVars) * 4 // skew multiplier
		if p > 1 {
			p = 1
		}
		c.assignReg.WriteCollisionProb = p
		c.factorReg = s.mach.NewInterleavedRegion("factors", factorBytes, numa.Private)
		c.workers = s.mach.Cores()
		s.chains = []*chain{c}
	case ChainPerNode:
		for n := 0; n < top.Nodes; n++ {
			c := s.newChain(seed + 1 + int64(n))
			c.assignReg = s.mach.NewRegion(fmt.Sprintf("assign-n%d", n), assignBytes, n, numa.NodeShared)
			c.factorReg = s.mach.NewRegion(fmt.Sprintf("factors-n%d", n), factorBytes, n, numa.Private)
			c.workers = s.mach.NodeCores(n)
			s.chains = append(s.chains, c)
		}
	}
	return s
}

// newChain allocates a chain with a random initial assignment.
func (s *Sampler) newChain(seed int64) *chain {
	rng := rand.New(rand.NewSource(seed))
	c := &chain{
		assign: make([]int8, s.G.NumVars),
		ones:   make([]int64, s.G.NumVars),
		rng:    rng,
	}
	for v := range c.assign {
		c.assign[v] = int8(rng.Intn(2))
	}
	return c
}

// sampleVar resamples variable v of chain c, charging the worker core
// for the column-to-row access: the factor column, the member
// assignments, and the single assignment write.
func (s *Sampler) sampleVar(c *chain, core *numa.Core, v int) {
	var reads int64
	for _, fi := range s.G.VarFactors(v) {
		reads += int64(len(s.G.Factors[fi].Vars))
	}
	core.ReadStream(c.factorReg, reads) // factor structure
	core.ReadCached(c.assignReg, reads) // member assignments
	core.Compute(float64(reads)*2 + 8)  // energy accumulation
	logOdds := s.G.ConditionalLogOdds(v, c.assign)
	p1 := 1 / (1 + math.Exp(-logOdds))
	val := int8(0)
	if c.rng.Float64() < p1 {
		val = 1
	}
	c.assign[v] = val
	core.Write(c.assignReg, 1)
	c.ones[v] += int64(val)
}

// RunSweeps performs n full sweeps (every chain resamples every
// variable once per sweep, its variables split across its workers in a
// deterministic round-robin interleave) and returns the result.
func (s *Sampler) RunSweeps(n int) SweepResult {
	s.mach.Reset()
	for sweep := 0; sweep < n; sweep++ {
		for _, c := range s.chains {
			perm := c.rng.Perm(s.G.NumVars)
			for i, v := range perm {
				core := c.workers[i%len(c.workers)]
				s.sampleVar(c, core, v)
				s.samples++
			}
			c.tallies++
		}
		s.sweeps++
	}
	simT := s.mach.SimTime()
	return SweepResult{
		Sweeps:      n,
		Samples:     int64(n * s.G.NumVars * len(s.chains)),
		SimTime:     simT,
		Throughput:  float64(n*s.G.NumVars*len(s.chains)) / simT.Seconds(),
		Counters:    s.mach.Counters(),
		TotalSweeps: s.sweeps,
	}
}

// SweepResult reports a RunSweeps call.
type SweepResult struct {
	// Sweeps is the number of sweeps in this call.
	Sweeps int
	// Samples is the number of variable samples drawn in this call
	// (across all chains).
	Samples int64
	// SimTime is the simulated duration of this call.
	SimTime time.Duration
	// Throughput is samples per simulated second — the paper's
	// Figure 17(b) metric (variables/second).
	Throughput float64
	// Counters holds the PMU-style counters of this call.
	Counters numa.Counters
	// TotalSweeps is the sampler's lifetime sweep count.
	TotalSweeps int
}

// DiscardBurnIn zeroes every chain's marginal tallies, discarding the
// sweeps drawn so far as burn-in. Typical use: RunSweeps(b) to mix,
// DiscardBurnIn, then RunSweeps(n) and read Marginals.
func (s *Sampler) DiscardBurnIn() {
	for _, c := range s.chains {
		for v := range c.ones {
			c.ones[v] = 0
		}
		c.tallies = 0
	}
}

// Marginals returns the pooled estimate of P(x_v = 1) across all
// chains' tallies.
func (s *Sampler) Marginals() []float64 {
	out := make([]float64, s.G.NumVars)
	var total float64
	for _, c := range s.chains {
		total += float64(c.tallies)
	}
	if total == 0 {
		return out
	}
	for v := range out {
		var ones float64
		for _, c := range s.chains {
			ones += float64(c.ones[v])
		}
		out[v] = ones / total
	}
	return out
}

// ExactMarginals enumerates all assignments of a small graph (≤ 20
// variables) and returns the exact marginals, for validating the
// sampler.
func ExactMarginals(g *Graph) ([]float64, error) {
	if g.NumVars > 20 {
		return nil, fmt.Errorf("factor: exact inference on %d variables is infeasible", g.NumVars)
	}
	probs := make([]float64, g.NumVars)
	var z float64
	assign := make([]int8, g.NumVars)
	for mask := 0; mask < 1<<g.NumVars; mask++ {
		for v := range assign {
			assign[v] = int8((mask >> v) & 1)
		}
		var energy float64
		for i := range g.Factors {
			if g.Factors[i].fires(assign) {
				energy += g.Factors[i].Weight
			}
		}
		w := math.Exp(energy)
		z += w
		for v := range assign {
			if assign[v] == 1 {
				probs[v] += w
			}
		}
	}
	for v := range probs {
		probs[v] /= z
	}
	return probs, nil
}
