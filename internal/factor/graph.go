// Package factor implements factor graphs and Gibbs sampling, the
// paper's first extension (Section 5.1, Appendix D.1). A factor graph
// is a bipartite graph of boolean variables and factors; sampling one
// variable requires fetching every factor that contains it plus the
// assignments of all variables those factors touch — exactly the
// column-to-row access method, with the factor-incidence matrix in the
// role of the data and the variable assignment in the role of the
// model.
//
// The PerNode strategy runs one independent chain per NUMA node and
// pools their samples at the end (classically valid; the paper cites
// Robert & Casella), which is what yields ~4x the sample throughput of
// the single PerMachine chain in Figure 17(b).
package factor

import (
	"fmt"
	"math/rand"
	"sync/atomic"
)

// Kind selects a factor's potential function. The set mirrors the
// factor templates of DeepDive-style systems, which the paper's Gibbs
// engine was built to serve.
type Kind int

const (
	// Equal fires (contributes Weight to the log-probability) when all
	// member variables share the same value.
	Equal Kind = iota
	// And fires when every member is 1.
	And
	// Or fires when at least one member is 1.
	Or
	// Imply fires unless all members but the last are 1 while the last
	// is 0 (logical A ∧ B ∧ … ⇒ Z).
	Imply
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Equal:
		return "equal"
	case And:
		return "and"
	case Or:
		return "or"
	case Imply:
		return "imply"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// kindByName parses a Kind from its lower-case name.
func kindByName(s string) (Kind, error) {
	switch s {
	case "equal":
		return Equal, nil
	case "and":
		return And, nil
	case "or":
		return Or, nil
	case "imply":
		return Imply, nil
	default:
		return 0, fmt.Errorf("factor: unknown factor kind %q", s)
	}
}

// Factor is one factor: a potential over a set of boolean variables.
// The potential contributes Weight to the log-probability whenever the
// Kind's condition holds; positive weights make the condition more
// likely, negative less.
type Factor struct {
	// Vars lists the variable indices the factor touches (≥ 1).
	Vars []int32
	// Weight is the log-potential when the factor fires.
	Weight float64
	// Kind selects the potential function; the zero value is Equal.
	Kind Kind
}

// fires reports whether the factor's condition holds under assign.
func (f *Factor) fires(assign []int8) bool {
	switch f.Kind {
	case Equal:
		first := assign[f.Vars[0]]
		for _, u := range f.Vars[1:] {
			if assign[u] != first {
				return false
			}
		}
		return true
	case And:
		for _, u := range f.Vars {
			if assign[u] == 0 {
				return false
			}
		}
		return true
	case Or:
		for _, u := range f.Vars {
			if assign[u] == 1 {
				return true
			}
		}
		return false
	case Imply:
		n := len(f.Vars)
		for _, u := range f.Vars[:n-1] {
			if assign[u] == 0 {
				return true // antecedent false: implication holds
			}
		}
		return assign[f.Vars[n-1]] == 1
	default:
		return false
	}
}

// Graph is a factor graph over boolean variables 0..NumVars-1.
type Graph struct {
	// Name identifies the graph for registries, plan-cache keys and
	// snapshots; empty for ad-hoc graphs.
	Name string
	// NumVars is the variable count.
	NumVars int
	// Factors is the factor list.
	Factors []Factor

	// varFactors[v] lists the indices of factors containing v — the
	// "column" of the column-to-row access.
	varFactors [][]int32
}

// NewGraph builds a graph and its variable→factor index.
func NewGraph(numVars int, factors []Factor) (*Graph, error) {
	g := &Graph{NumVars: numVars, Factors: factors}
	g.varFactors = make([][]int32, numVars)
	for fi, f := range factors {
		if len(f.Vars) == 0 {
			return nil, fmt.Errorf("factor: factor %d has no variables", fi)
		}
		for _, v := range f.Vars {
			if v < 0 || int(v) >= numVars {
				return nil, fmt.Errorf("factor: factor %d references variable %d of %d", fi, v, numVars)
			}
			g.varFactors[v] = append(g.varFactors[v], int32(fi))
		}
	}
	return g, nil
}

// VarFactors returns the indices of the factors containing v. The
// returned slice must not be modified.
func (g *Graph) VarFactors(v int) []int32 { return g.varFactors[v] }

// NNZ returns the number of (variable, factor) incidences — the
// nonzero count of the bipartite incidence matrix (Figure 23b).
func (g *Graph) NNZ() int64 {
	var n int64
	for _, f := range g.Factors {
		n += int64(len(f.Vars))
	}
	return n
}

// firesWith reports whether the factor's condition holds under assign
// with variable v overridden to val. Assignments are read with atomic
// loads, so concurrent single-variable stores by other samplers
// (Hogwild!-Gibbs) are race-free; the override means evaluation never
// probes-and-restores the shared state.
func (f *Factor) firesWith(assign []int32, v int, val int32) bool {
	at := func(u int32) int32 {
		if int(u) == v {
			return val
		}
		return atomic.LoadInt32(&assign[u])
	}
	switch f.Kind {
	case Equal:
		first := at(f.Vars[0])
		for _, u := range f.Vars[1:] {
			if at(u) != first {
				return false
			}
		}
		return true
	case And:
		for _, u := range f.Vars {
			if at(u) == 0 {
				return false
			}
		}
		return true
	case Or:
		for _, u := range f.Vars {
			if at(u) == 1 {
				return true
			}
		}
		return false
	case Imply:
		n := len(f.Vars)
		for _, u := range f.Vars[:n-1] {
			if at(u) == 0 {
				return true // antecedent false: implication holds
			}
		}
		return at(f.Vars[n-1]) == 1
	default:
		return false
	}
}

// conditionalLogOddsAtomic is ConditionalLogOdds over an atomic
// assignment: safe for concurrent samplers because the probed variable
// is overridden instead of mutated and every other read is atomic.
func (g *Graph) conditionalLogOddsAtomic(v int, assign []int32) float64 {
	var e1, e0 float64
	for _, fi := range g.varFactors[v] {
		f := &g.Factors[fi]
		if f.firesWith(assign, v, 1) {
			e1 += f.Weight
		}
		if f.firesWith(assign, v, 0) {
			e0 += f.Weight
		}
	}
	return e1 - e0
}

// ConditionalLogOdds returns log P(x_v = 1 | rest) − log P(x_v = 0 |
// rest) under the assignment, evaluating each incident factor's
// potential at both values of v. The assignment is restored before
// returning.
func (g *Graph) ConditionalLogOdds(v int, assign []int8) float64 {
	old := assign[v]
	var e1, e0 float64
	assign[v] = 1
	for _, fi := range g.varFactors[v] {
		if f := &g.Factors[fi]; f.fires(assign) {
			e1 += f.Weight
		}
	}
	assign[v] = 0
	for _, fi := range g.varFactors[v] {
		if f := &g.Factors[fi]; f.fires(assign) {
			e0 += f.Weight
		}
	}
	assign[v] = old
	return e1 - e0
}

// GenerateConfig parameterises a synthetic factor graph shaped like
// the paper's Paleo inference workload: many small factors (2-3
// variables) over a large variable set, with skewed variable degrees.
type GenerateConfig struct {
	// Vars is the variable count.
	Vars int
	// Factors is the factor count.
	Factors int
	// MaxArity is the largest factor size (min 2).
	MaxArity int
	// WeightStd scales the random factor weights.
	WeightStd float64
	// Seed makes generation deterministic.
	Seed int64
}

// Generate builds a random factor graph per the config, biasing
// variable selection toward low indices (Zipf-like degree skew).
func Generate(cfg GenerateConfig) *Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.MaxArity < 2 {
		cfg.MaxArity = 2
	}
	zipf := rand.NewZipf(rng, 1.3, 8, uint64(cfg.Vars-1))
	factors := make([]Factor, 0, cfg.Factors)
	for i := 0; i < cfg.Factors; i++ {
		arity := 2 + rng.Intn(cfg.MaxArity-1)
		seen := map[int32]bool{}
		vars := make([]int32, 0, arity)
		for len(vars) < arity {
			v := int32(zipf.Uint64())
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		}
		factors = append(factors, Factor{Vars: vars, Weight: cfg.WeightStd * rng.NormFloat64()})
	}
	g, err := NewGraph(cfg.Vars, factors)
	if err != nil {
		panic(err) // unreachable: generated indices are in range
	}
	return g
}

// Paleo returns the scaled analog of the paper's Paleo factor graph
// (69M factor rows, 30M variables, 108M nonzeros in Figure 10 —
// scaled to run in milliseconds while keeping ~2 incidences per
// factor and heavy degree skew).
func Paleo() *Graph {
	g := Generate(GenerateConfig{Vars: 4000, Factors: 9000, MaxArity: 3, WeightStd: 0.8, Seed: 42})
	g.Name = "paleo"
	return g
}

// PaleoXL is the executor-benchmark scale of Paleo: 5x the variables
// and factors, big enough that a parallel sweep's orchestration (pool
// wakeup, steal cursors, barrier) amortizes against real sampling work
// — the regime where the real-concurrency backend should beat the
// simulated interleaver. Same structure family and skew as Paleo.
func PaleoXL() *Graph {
	g := Generate(GenerateConfig{Vars: 20000, Factors: 45000, MaxArity: 3, WeightStd: 0.8, Seed: 43})
	g.Name = "paleo-xl"
	return g
}
