package factor

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadGraph checks the text-format parser never panics and that
// accepted graphs validate and round-trip through WriteGraph.
func FuzzReadGraph(f *testing.F) {
	f.Add("vars 3\nfactor imply 1.5 0 1 2\nfactor equal -0.8 0 2\n")
	f.Add("vars 1\nfactor or 1 0\n")
	f.Add("# only a comment\n")
	f.Add("vars x\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ReadGraph(strings.NewReader(src))
		if err != nil {
			return
		}
		// Accepted graphs must be internally consistent.
		for _, fac := range g.Factors {
			for _, v := range fac.Vars {
				if v < 0 || int(v) >= g.NumVars {
					t.Fatalf("accepted graph references variable %d of %d", v, g.NumVars)
				}
			}
		}
		var buf bytes.Buffer
		if err := WriteGraph(&buf, g); err != nil {
			t.Fatalf("writing accepted graph: %v", err)
		}
		back, err := ReadGraph(&buf)
		if err != nil {
			t.Fatalf("re-reading own output: %v", err)
		}
		if back.NumVars != g.NumVars || len(back.Factors) != len(g.Factors) {
			t.Fatal("round trip changed shape")
		}
	})
}
