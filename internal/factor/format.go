package factor

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text factor-graph format read and written here is a minimal
// DeepDive-style interchange form:
//
//	# comments and blank lines are ignored
//	vars <count>
//	factor <kind> <weight> <var> [<var> ...]
//
// e.g.
//
//	vars 3
//	factor imply 1.5 0 1 2    # x0 ∧ x1 ⇒ x2
//	factor equal -0.8 0 2
//
// It exists so cmd/dwgibbs can run inference over user-supplied
// graphs, and round-trips through WriteGraph/ReadGraph.

// WriteGraph serialises the graph in the text format.
func WriteGraph(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "vars %d\n", g.NumVars); err != nil {
		return err
	}
	for i := range g.Factors {
		f := &g.Factors[i]
		if _, err := fmt.Fprintf(bw, "factor %s %g", f.Kind, f.Weight); err != nil {
			return err
		}
		for _, v := range f.Vars {
			if _, err := fmt.Fprintf(bw, " %d", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadGraph parses the text format and returns a validated graph.
func ReadGraph(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	numVars := -1
	var factors []Factor
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "vars":
			if numVars >= 0 {
				return nil, fmt.Errorf("factor: line %d: duplicate vars directive", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("factor: line %d: vars takes one count", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("factor: line %d: bad variable count %q", lineNo, fields[1])
			}
			numVars = n
		case "factor":
			if numVars < 0 {
				return nil, fmt.Errorf("factor: line %d: factor before vars directive", lineNo)
			}
			if len(fields) < 4 {
				return nil, fmt.Errorf("factor: line %d: factor needs kind, weight and at least one variable", lineNo)
			}
			kind, err := kindByName(fields[1])
			if err != nil {
				return nil, fmt.Errorf("factor: line %d: %w", lineNo, err)
			}
			weight, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("factor: line %d: bad weight %q", lineNo, fields[2])
			}
			vars := make([]int32, 0, len(fields)-3)
			for _, f := range fields[3:] {
				v, err := strconv.Atoi(f)
				if err != nil || v < 0 || v >= numVars {
					return nil, fmt.Errorf("factor: line %d: bad variable %q", lineNo, f)
				}
				vars = append(vars, int32(v))
			}
			factors = append(factors, Factor{Vars: vars, Weight: weight, Kind: kind})
		default:
			return nil, fmt.Errorf("factor: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if numVars < 0 {
		return nil, fmt.Errorf("factor: missing vars directive")
	}
	return NewGraph(numVars, factors)
}
