package factor

import (
	"fmt"
	"sort"
	"sync"
)

// The graph registry backs the serving API's "dataset" field for Gibbs
// jobs: named, deterministic factor graphs whose name pins the full
// structure (so plan-cache keys stay honest). Instances are shared and
// must be treated as immutable.
var (
	graphMu    sync.Mutex
	graphCache = map[string]*Graph{}
)

// graphBuilders maps registry names to constructors.
var graphBuilders = map[string]func() *Graph{
	// The paper's Paleo-scale inference workload.
	"paleo": Paleo,
	// The executor-benchmark scale of paleo (5x variables and factors).
	"paleo-xl": PaleoXL,
	// A small loopy graph with tractable exact marginals — the
	// validation graph of the tests and examples.
	"cycle5": Cycle5,
	// Two independent attractive/repulsive pairs.
	"pairs4": Pairs4,
}

// Cycle5 returns a five-variable cycle with mixed attractive and
// repulsive pairwise potentials; small enough for ExactMarginals.
func Cycle5() *Graph {
	g, err := NewGraph(5, []Factor{
		{Vars: []int32{0, 1}, Weight: 1.2},
		{Vars: []int32{1, 2}, Weight: -0.8},
		{Vars: []int32{2, 3}, Weight: 0.5},
		{Vars: []int32{3, 4}, Weight: 1.5},
		{Vars: []int32{0, 4}, Weight: 0.3},
	})
	if err != nil {
		panic(err) // unreachable: literal indices are in range
	}
	g.Name = "cycle5"
	return g
}

// Pairs4 returns four variables in one attractive and one repulsive
// pair; small enough for ExactMarginals.
func Pairs4() *Graph {
	g, err := NewGraph(4, []Factor{
		{Vars: []int32{0, 1}, Weight: 1},
		{Vars: []int32{2, 3}, Weight: -1},
	})
	if err != nil {
		panic(err) // unreachable: literal indices are in range
	}
	g.Name = "pairs4"
	return g
}

// GraphByName returns the shared instance of a registered factor
// graph.
func GraphByName(name string) (*Graph, error) {
	graphMu.Lock()
	defer graphMu.Unlock()
	if g, ok := graphCache[name]; ok {
		return g, nil
	}
	build, ok := graphBuilders[name]
	if !ok {
		return nil, fmt.Errorf("factor: unknown graph %q (want one of %v)", name, GraphNames())
	}
	g := build()
	graphCache[name] = g
	return g, nil
}

// GraphNames lists the registered graph names, sorted.
func GraphNames() []string {
	names := make([]string, 0, len(graphBuilders))
	for n := range graphBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
