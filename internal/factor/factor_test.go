package factor

import (
	"math"
	"testing"
	"testing/quick"

	"dimmwitted/internal/numa"
)

func TestNewGraphValidation(t *testing.T) {
	if _, err := NewGraph(2, []Factor{{Vars: []int32{0, 5}, Weight: 1}}); err == nil {
		t.Error("out-of-range variable accepted")
	}
	if _, err := NewGraph(2, []Factor{{Vars: nil, Weight: 1}}); err == nil {
		t.Error("empty factor accepted")
	}
	g, err := NewGraph(3, []Factor{{Vars: []int32{0, 1}, Weight: 1}, {Vars: []int32{1, 2}, Weight: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.VarFactors(1)) != 2 || len(g.VarFactors(0)) != 1 {
		t.Errorf("variable index wrong: %v / %v", g.VarFactors(1), g.VarFactors(0))
	}
	if g.NNZ() != 4 {
		t.Errorf("NNZ = %d, want 4", g.NNZ())
	}
}

func TestConditionalLogOdds(t *testing.T) {
	// Single attractive pairwise factor: if the neighbour is 1, the
	// log-odds for 1 should be +w; if 0, -w.
	g, err := NewGraph(2, []Factor{{Vars: []int32{0, 1}, Weight: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.ConditionalLogOdds(0, []int8{0, 1}); got != 2 {
		t.Errorf("log-odds with neighbour=1: %v, want 2", got)
	}
	if got := g.ConditionalLogOdds(0, []int8{0, 0}); got != -2 {
		t.Errorf("log-odds with neighbour=0: %v, want -2", got)
	}
}

func TestGenerateShape(t *testing.T) {
	g := Generate(GenerateConfig{Vars: 200, Factors: 500, MaxArity: 3, WeightStd: 1, Seed: 1})
	if g.NumVars != 200 || len(g.Factors) != 500 {
		t.Fatalf("shape: %d vars, %d factors", g.NumVars, len(g.Factors))
	}
	for i, f := range g.Factors {
		if len(f.Vars) < 2 || len(f.Vars) > 3 {
			t.Fatalf("factor %d arity %d", i, len(f.Vars))
		}
		seen := map[int32]bool{}
		for _, v := range f.Vars {
			if seen[v] {
				t.Fatalf("factor %d repeats variable %d", i, v)
			}
			seen[v] = true
		}
	}
	// Degree skew: most-connected variable far above mean.
	maxDeg, total := 0, 0
	for v := 0; v < g.NumVars; v++ {
		d := len(g.VarFactors(v))
		total += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(total) / float64(g.NumVars)
	if float64(maxDeg) < 5*mean {
		t.Errorf("degree not skewed: max %d, mean %.1f", maxDeg, mean)
	}
}

func TestPaleoAnalog(t *testing.T) {
	g := Paleo()
	if g.NumVars != 4000 || len(g.Factors) != 9000 {
		t.Errorf("paleo shape: %d vars, %d factors", g.NumVars, len(g.Factors))
	}
}

func TestGibbsMatchesExactMarginals(t *testing.T) {
	// A small chain graph where exact inference is tractable: Gibbs
	// marginals must approach the exact ones.
	g, err := NewGraph(5, []Factor{
		{Vars: []int32{0, 1}, Weight: 1.2},
		{Vars: []int32{1, 2}, Weight: -0.8},
		{Vars: []int32{2, 3}, Weight: 0.5},
		{Vars: []int32{3, 4}, Weight: 1.5},
		{Vars: []int32{0, 4}, Weight: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactMarginals(g)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(g, numa.Local2, SingleChain, 7)
	s.RunSweeps(4000)
	got := s.Marginals()
	for v := range exact {
		if math.Abs(got[v]-exact[v]) > 0.05 {
			t.Errorf("marginal[%d] = %.3f, exact %.3f", v, got[v], exact[v])
		}
	}
}

func TestPerNodeChainsPoolSamples(t *testing.T) {
	g, err := NewGraph(4, []Factor{
		{Vars: []int32{0, 1}, Weight: 1},
		{Vars: []int32{2, 3}, Weight: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactMarginals(g)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(g, numa.Local2, ChainPerNode, 11)
	res := s.RunSweeps(3000)
	if res.Samples != int64(3000*4*2) {
		t.Errorf("samples = %d, want 24000 (2 chains)", res.Samples)
	}
	got := s.Marginals()
	for v := range exact {
		if math.Abs(got[v]-exact[v]) > 0.05 {
			t.Errorf("pooled marginal[%d] = %.3f, exact %.3f", v, got[v], exact[v])
		}
	}
}

func TestPerNodeThroughputBeatsSingleChain(t *testing.T) {
	// Figure 17(b): DimmWitted's chain-per-node achieves ~4x the
	// sample throughput of the single PerMachine chain.
	g := Paleo()
	single := NewSampler(g, numa.Local2, SingleChain, 1).RunSweeps(2)
	perNode := NewSampler(g, numa.Local2, ChainPerNode, 1).RunSweeps(2)
	ratio := perNode.Throughput / single.Throughput
	if ratio < 1.5 {
		t.Errorf("PerNode/PerMachine Gibbs throughput ratio = %.2f, want >= 1.5 (paper: ~4)", ratio)
	}
}

func TestExactMarginalsRejectsLargeGraphs(t *testing.T) {
	g := Generate(GenerateConfig{Vars: 30, Factors: 10, MaxArity: 2, WeightStd: 1, Seed: 1})
	if _, err := ExactMarginals(g); err == nil {
		t.Error("exact inference on 30 variables accepted")
	}
}

func TestSamplerDeterministic(t *testing.T) {
	g := Generate(GenerateConfig{Vars: 50, Factors: 100, MaxArity: 2, WeightStd: 1, Seed: 3})
	run := func() []float64 {
		s := NewSampler(g, numa.Local2, SingleChain, 9)
		s.RunSweeps(50)
		return s.Marginals()
	}
	a, b := run(), run()
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("marginal %d differs: %v vs %v", v, a[v], b[v])
		}
	}
}

func TestDiscardBurnIn(t *testing.T) {
	// Weak potentials keep the chain mixing between modes; strong
	// agreement weights would make the distribution bimodal and the
	// marginal estimate initialization-dependent.
	g, err := NewGraph(3, []Factor{{Vars: []int32{0, 1}, Weight: 0.7}, {Vars: []int32{1, 2}, Weight: 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(g, numa.Local2, ChainPerNode, 4)
	s.RunSweeps(50)
	s.DiscardBurnIn()
	for _, m := range s.Marginals() {
		if m != 0 {
			t.Fatalf("tallies not cleared: %v", m)
		}
	}
	s.RunSweeps(2000)
	exact, err := ExactMarginals(g)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Marginals()
	for v := range exact {
		if math.Abs(got[v]-exact[v]) > 0.06 {
			t.Errorf("post-burn-in marginal[%d] = %.3f, exact %.3f", v, got[v], exact[v])
		}
	}
}

func TestChainStrategyString(t *testing.T) {
	if SingleChain.String() != "PerMachine" || ChainPerNode.String() != "PerNode" {
		t.Error("strategy stringers wrong")
	}
}

// Property: conditional log-odds are antisymmetric under flipping all
// other variables for purely pairwise graphs with symmetric potentials.
func TestLogOddsFlipProperty(t *testing.T) {
	g := Generate(GenerateConfig{Vars: 20, Factors: 40, MaxArity: 2, WeightStd: 1, Seed: 5})
	f := func(varSel uint8, bits uint32) bool {
		v := int(varSel) % g.NumVars
		assign := make([]int8, g.NumVars)
		flipped := make([]int8, g.NumVars)
		for i := range assign {
			assign[i] = int8((bits >> (uint(i) % 32)) & 1)
			flipped[i] = 1 - assign[i]
		}
		lo := g.ConditionalLogOdds(v, assign)
		loF := g.ConditionalLogOdds(v, flipped)
		return math.Abs(lo+loF) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
