package factor

import (
	"math"
	"testing"
	"testing/quick"

	"dimmwitted/internal/core"
	"dimmwitted/internal/numa"
)

func TestNewGraphValidation(t *testing.T) {
	if _, err := NewGraph(2, []Factor{{Vars: []int32{0, 5}, Weight: 1}}); err == nil {
		t.Error("out-of-range variable accepted")
	}
	if _, err := NewGraph(2, []Factor{{Vars: nil, Weight: 1}}); err == nil {
		t.Error("empty factor accepted")
	}
	g, err := NewGraph(3, []Factor{{Vars: []int32{0, 1}, Weight: 1}, {Vars: []int32{1, 2}, Weight: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.VarFactors(1)) != 2 || len(g.VarFactors(0)) != 1 {
		t.Errorf("variable index wrong: %v / %v", g.VarFactors(1), g.VarFactors(0))
	}
	if g.NNZ() != 4 {
		t.Errorf("NNZ = %d, want 4", g.NNZ())
	}
}

func TestConditionalLogOdds(t *testing.T) {
	// Single attractive pairwise factor: if the neighbour is 1, the
	// log-odds for 1 should be +w; if 0, -w.
	g, err := NewGraph(2, []Factor{{Vars: []int32{0, 1}, Weight: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.ConditionalLogOdds(0, []int8{0, 1}); got != 2 {
		t.Errorf("log-odds with neighbour=1: %v, want 2", got)
	}
	if got := g.ConditionalLogOdds(0, []int8{0, 0}); got != -2 {
		t.Errorf("log-odds with neighbour=0: %v, want -2", got)
	}
}

// The atomic-assignment evaluation must agree with the classic probe-
// and-restore one on every kind and assignment.
func TestAtomicLogOddsMatchesClassic(t *testing.T) {
	g := Generate(GenerateConfig{Vars: 16, Factors: 40, MaxArity: 3, WeightStd: 1, Seed: 5})
	for mask := 0; mask < 1<<8; mask++ {
		classic := make([]int8, g.NumVars)
		at := make([]int32, g.NumVars)
		for v := range classic {
			bit := int8((mask >> (uint(v) % 8)) & 1)
			classic[v] = bit
			at[v] = int32(bit)
		}
		for v := 0; v < g.NumVars; v++ {
			want := g.ConditionalLogOdds(v, classic)
			got := g.conditionalLogOddsAtomic(v, at)
			if math.Abs(want-got) > 1e-12 {
				t.Fatalf("var %d mask %d: atomic %v, classic %v", v, mask, got, want)
			}
		}
	}
}

func TestGenerateShape(t *testing.T) {
	g := Generate(GenerateConfig{Vars: 200, Factors: 500, MaxArity: 3, WeightStd: 1, Seed: 1})
	if g.NumVars != 200 || len(g.Factors) != 500 {
		t.Fatalf("shape: %d vars, %d factors", g.NumVars, len(g.Factors))
	}
	for i, f := range g.Factors {
		if len(f.Vars) < 2 || len(f.Vars) > 3 {
			t.Fatalf("factor %d arity %d", i, len(f.Vars))
		}
		seen := map[int32]bool{}
		for _, v := range f.Vars {
			if seen[v] {
				t.Fatalf("factor %d repeats variable %d", i, v)
			}
			seen[v] = true
		}
	}
	// Degree skew: most-connected variable far above mean.
	maxDeg, total := 0, 0
	for v := 0; v < g.NumVars; v++ {
		d := len(g.VarFactors(v))
		total += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(total) / float64(g.NumVars)
	if float64(maxDeg) < 5*mean {
		t.Errorf("degree not skewed: max %d, mean %.1f", maxDeg, mean)
	}
}

func TestPaleoAnalog(t *testing.T) {
	g := Paleo()
	if g.NumVars != 4000 || len(g.Factors) != 9000 {
		t.Errorf("paleo shape: %d vars, %d factors", g.NumVars, len(g.Factors))
	}
}

// runGibbs builds a workload engine for the graph, runs it for the
// given number of epochs (sweeps), and returns the pooled marginals.
func runGibbs(t *testing.T, g *Graph, plan core.Plan, epochs int) ([]float64, []core.EpochResult) {
	t.Helper()
	eng, err := core.NewWorkload(NewWorkload(g), plan)
	if err != nil {
		t.Fatal(err)
	}
	hist := eng.RunEpochs(epochs)
	return append([]float64(nil), eng.Model()...), hist
}

// The engine-run sampler must reproduce the pre-refactor RunSweeps
// marginals exactly: chain n seeds from seed+1+n, draws its sweep
// permutation then one flip per variable from its own generator, and
// (at chunk size 1) the simulated interleaver executes each chain's
// permutation in order. The golden values below were produced by the
// classic factor.Sampler at the commit before the workload refactor.
func TestSimulatedMatchesClassicSamplerGolden(t *testing.T) {
	g := Cycle5()
	cases := []struct {
		name   string
		plan   core.Plan
		epochs int
		want   []float64
	}{
		// factor.NewSampler(g, local2, SingleChain, 7).RunSweeps(40)
		{"single-chain/seed7", core.Plan{ModelRep: core.PerMachine, DataRep: core.Sharding, Seed: 7}, 40,
			[]float64{0.45, 0.5, 0.45, 0.575, 0.5}},
		// factor.NewSampler(g, local2, ChainPerNode, 7).RunSweeps(40)
		{"chain-per-node/seed7", core.Plan{ModelRep: core.PerNode, DataRep: core.FullReplication, Seed: 7}, 40,
			[]float64{0.4875, 0.55, 0.425, 0.4375, 0.4}},
		// factor.NewSampler(g, local2, SingleChain, 3).RunSweeps(25)
		{"single-chain/seed3", core.Plan{ModelRep: core.PerMachine, DataRep: core.Sharding, Seed: 3}, 25,
			[]float64{0.76, 0.68, 0.52, 0.64, 0.56}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, _ := runGibbs(t, g, c.plan, c.epochs)
			for v := range c.want {
				if got[v] != c.want[v] {
					t.Errorf("marginal[%d] = %v, classic sampler %v", v, got[v], c.want[v])
				}
			}
		})
	}
}

func TestGibbsMatchesExactMarginals(t *testing.T) {
	g := Cycle5()
	exact, err := ExactMarginals(g)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := runGibbs(t, g, core.Plan{ModelRep: core.PerMachine, DataRep: core.Sharding, Seed: 7}, 4000)
	for v := range exact {
		if math.Abs(got[v]-exact[v]) > 0.05 {
			t.Errorf("marginal[%d] = %.3f, exact %.3f", v, got[v], exact[v])
		}
	}
}

func TestParallelGibbsMatchesExactMarginals(t *testing.T) {
	g := Cycle5()
	exact, err := ExactMarginals(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		name string
		plan core.Plan
	}{
		{"hogwild-single-chain", core.Plan{ModelRep: core.PerMachine, DataRep: core.Sharding, Executor: core.ExecParallel, Seed: 7}},
		{"chain-per-node", core.Plan{ModelRep: core.PerNode, DataRep: core.FullReplication, Executor: core.ExecParallel, Seed: 11}},
	} {
		t.Run(c.name, func(t *testing.T) {
			got, _ := runGibbs(t, g, c.plan, 4000)
			for v := range exact {
				if math.Abs(got[v]-exact[v]) > 0.05 {
					t.Errorf("marginal[%d] = %.3f, exact %.3f", v, got[v], exact[v])
				}
			}
		})
	}
}

func TestPerCoreChainsSweepFullDomain(t *testing.T) {
	g := Pairs4()
	exact, err := ExactMarginals(g)
	if err != nil {
		t.Fatal(err)
	}
	plan := core.Plan{ModelRep: core.PerCore, DataRep: core.FullReplication, Workers: 4, Seed: 13}
	got, hist := runGibbs(t, g, plan, 1500)
	// Every chain (one per worker) sweeps every variable once per epoch.
	if want := g.NumVars * 4; hist[0].Steps != want {
		t.Errorf("PerCore epoch ran %d samples, want %d (4 chains x %d vars)", hist[0].Steps, want, g.NumVars)
	}
	for v := range exact {
		if math.Abs(got[v]-exact[v]) > 0.05 {
			t.Errorf("pooled marginal[%d] = %.3f, exact %.3f", v, got[v], exact[v])
		}
	}
}

func TestPerNodeChainsPoolSamples(t *testing.T) {
	g := Pairs4()
	exact, err := ExactMarginals(g)
	if err != nil {
		t.Fatal(err)
	}
	got, hist := runGibbs(t, g, core.Plan{ModelRep: core.PerNode, DataRep: core.FullReplication, Seed: 11}, 3000)
	var samples int
	for _, er := range hist {
		samples += er.Steps
	}
	if samples != 3000*4*2 {
		t.Errorf("samples = %d, want 24000 (2 chains)", samples)
	}
	for v := range exact {
		if math.Abs(got[v]-exact[v]) > 0.05 {
			t.Errorf("pooled marginal[%d] = %.3f, exact %.3f", v, got[v], exact[v])
		}
	}
}

func TestPerNodeThroughputBeatsSingleChain(t *testing.T) {
	// Figure 17(b): DimmWitted's chain-per-node achieves ~4x the
	// sample throughput of the single PerMachine chain.
	g := Paleo()
	throughput := func(plan core.Plan) float64 {
		_, hist := runGibbs(t, g, plan, 2)
		var steps int
		for _, er := range hist {
			steps += er.Steps
		}
		return float64(steps) / hist[len(hist)-1].CumTime.Seconds()
	}
	// The classic baseline is NUMA-oblivious: OS-interleaved storage.
	single := throughput(core.Plan{ModelRep: core.PerMachine, DataRep: core.Sharding, Placement: core.PlacementOS, Seed: 1})
	perNode := throughput(core.Plan{ModelRep: core.PerNode, DataRep: core.FullReplication, Seed: 1})
	if ratio := perNode / single; ratio < 1.5 {
		t.Errorf("PerNode/PerMachine Gibbs throughput ratio = %.2f, want >= 1.5 (paper: ~4)", ratio)
	}
}

func TestExactMarginalsRejectsLargeGraphs(t *testing.T) {
	g := Generate(GenerateConfig{Vars: 30, Factors: 10, MaxArity: 2, WeightStd: 1, Seed: 1})
	if _, err := ExactMarginals(g); err == nil {
		t.Error("exact inference on 30 variables accepted")
	}
}

func TestGibbsDeterministic(t *testing.T) {
	g := Generate(GenerateConfig{Vars: 50, Factors: 100, MaxArity: 2, WeightStd: 1, Seed: 3})
	run := func() []float64 {
		got, _ := runGibbs(t, g, core.Plan{ModelRep: core.PerMachine, DataRep: core.Sharding, Seed: 9}, 50)
		return got
	}
	a, b := run(), run()
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("marginal %d differs: %v vs %v", v, a[v], b[v])
		}
	}
}

func TestDiscardBurnIn(t *testing.T) {
	// Weak potentials keep the chain mixing between modes; strong
	// agreement weights would make the distribution bimodal and the
	// marginal estimate initialization-dependent.
	g, err := NewGraph(3, []Factor{{Vars: []int32{0, 1}, Weight: 0.7}, {Vars: []int32{1, 2}, Weight: 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	wl := NewWorkload(g)
	eng, err := core.NewWorkload(wl, core.Plan{ModelRep: core.PerNode, DataRep: core.FullReplication, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunEpochs(50)
	wl.DiscardBurnIn()
	eng.RunEpochs(2000)
	exact, err := ExactMarginals(g)
	if err != nil {
		t.Fatal(err)
	}
	got := eng.Model()
	for v := range exact {
		if math.Abs(got[v]-exact[v]) > 0.06 {
			t.Errorf("post-burn-in marginal[%d] = %.3f, exact %.3f", v, got[v], exact[v])
		}
	}
}

func TestWorkloadPlanValidation(t *testing.T) {
	g := Pairs4()
	if _, err := core.NewWorkload(NewWorkload(g), core.Plan{ModelRep: core.PerNode, DataRep: core.Sharding}); err == nil {
		t.Error("multi-chain Sharding accepted (chains would never resample part of the domain)")
	}
	if _, err := core.NewWorkload(NewWorkload(g), core.Plan{DataRep: core.Importance}); err == nil {
		t.Error("Importance data replication accepted for Gibbs")
	}
}

func TestWorkloadOptimize(t *testing.T) {
	wl := NewWorkload(Pairs4())
	plan, err := wl.Optimize(numa.Local2, core.ExecSimulated)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ModelRep != core.PerNode || plan.DataRep != core.FullReplication {
		t.Errorf("multi-socket optimizer chose %s/%s, want PerNode/FullReplication", plan.ModelRep, plan.DataRep)
	}
	one := numa.Local2
	one.Nodes, one.Name = 1, "one-node"
	plan, err = NewWorkload(Pairs4()).Optimize(one, core.ExecSimulated)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ModelRep != core.PerMachine {
		t.Errorf("single-socket optimizer chose %s, want PerMachine", plan.ModelRep)
	}
}

func TestGraphRegistry(t *testing.T) {
	for _, name := range GraphNames() {
		g, err := GraphByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if g.Name != name {
			t.Errorf("graph %q carries name %q", name, g.Name)
		}
		again, err := GraphByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if g != again {
			t.Errorf("graph %q not cached as a shared instance", name)
		}
	}
	if _, err := GraphByName("no-such-graph"); err == nil {
		t.Error("unknown graph accepted")
	}
}

// Property: conditional log-odds are antisymmetric under flipping all
// other variables for purely pairwise graphs with symmetric potentials.
func TestLogOddsFlipProperty(t *testing.T) {
	g := Generate(GenerateConfig{Vars: 20, Factors: 40, MaxArity: 2, WeightStd: 1, Seed: 5})
	f := func(varSel uint8, bits uint32) bool {
		v := int(varSel) % g.NumVars
		assign := make([]int8, g.NumVars)
		flipped := make([]int8, g.NumVars)
		for i := range assign {
			assign[i] = int8((bits >> (uint(i) % 32)) & 1)
			flipped[i] = 1 - assign[i]
		}
		lo := g.ConditionalLogOdds(v, assign)
		loF := g.ConditionalLogOdds(v, flipped)
		return math.Abs(lo+loF) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
