package core

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"dimmwitted/internal/data"
	"dimmwitted/internal/model"
)

// goroutinesSettle polls until the live goroutine count drops to at
// most want or the deadline passes, absorbing scheduler lag between a
// pool's feed-channel close and its goroutines' exits.
func goroutinesSettle(want int) int {
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= want || time.Now().After(deadline) {
			return n
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPoolLifecycle pins the persistent pool's contract: goroutines
// spawn once at the first epoch (min(workers, GOMAXPROCS) lanes, not
// one per epoch), the count stays flat across epochs, Close drains
// every one of them, Close is idempotent, and an epoch after Close
// fails loudly instead of hanging on closed feeds.
func TestPoolLifecycle(t *testing.T) {
	base := runtime.NumGoroutine()
	e := mustEngine(t, model.NewSVM(), data.Reuters(),
		Plan{Executor: ExecParallel, Access: model.RowWise, Workers: 4, Seed: 1})

	want := runtime.GOMAXPROCS(0)
	if want > 4 {
		want = 4
	}
	e.RunEpoch()
	afterFirst := runtime.NumGoroutine()
	if afterFirst < base+want {
		t.Errorf("pool after first epoch: %d goroutines over baseline, want >= %d", afterFirst-base, want)
	}
	for i := 0; i < 5; i++ {
		e.RunEpoch()
	}
	if n := runtime.NumGoroutine(); n > afterFirst {
		t.Errorf("pool grew across epochs: %d goroutines after 6 epochs, %d after 1", n, afterFirst)
	}

	e.Close()
	if n := goroutinesSettle(base); n > base {
		t.Errorf("pool leaked: %d goroutines after Close, baseline %d", n, base)
	}
	e.Close() // idempotent

	if _, err := e.RunEpochCtx(context.Background()); err == nil {
		t.Fatal("epoch after Close reported success")
	} else if !strings.Contains(err.Error(), "closed") {
		t.Errorf("epoch after Close: %v, want a mention of the closed executor", err)
	}
}

// TestCloseSimulatedNoop: Close on a simulated engine (and on a
// parallel engine that never ran an epoch) is a safe no-op.
func TestCloseSimulatedNoop(t *testing.T) {
	sim := mustEngine(t, model.NewSVM(), data.Reuters(), Plan{})
	sim.Close()
	if sim.RunEpoch().Epoch != 1 {
		t.Error("simulated engine unusable after Close")
	}
	par := mustEngine(t, model.NewSVM(), data.Reuters(),
		Plan{Executor: ExecParallel, Access: model.RowWise})
	par.Close() // never started: nothing to drain
}

// TestWorkStealingExactness: with StealChunk 1 every worker contends
// for every unit, the worst case for the claim cursors. The one-pass
// aggregate must still be exact — each unit claimed exactly once — on
// both concurrency modes' combine paths, and repeatably so. Run under
// -race in CI, this is also the stealing memory-model check.
func TestWorkStealingExactness(t *testing.T) {
	ds := data.ParallelSum(1200, 4)
	spec := model.NewParallelSum()
	for _, rep := range []ModelReplication{PerMachine, PerNode, PerCore} {
		for run := 0; run < 3; run++ {
			e := mustEngine(t, spec, ds, Plan{
				Executor: ExecParallel, ModelRep: rep, DataRep: Sharding,
				Workers: 4, StealChunk: 1, Seed: 9,
			})
			er := e.RunEpoch()
			if got := e.Model()[0]; got != 4800 {
				t.Errorf("%v run %d: stolen parallel sum = %v, want 4800", rep, run, got)
			}
			if er.Steps != ds.Rows() {
				t.Errorf("%v run %d: %d steps, want %d (each unit exactly once)", rep, run, er.Steps, ds.Rows())
			}
			e.Close()
		}
	}
}

// TestStealChunkRoundTrip: the new knob survives the plan normalize /
// snapshot / restore cycle.
func TestStealChunkRoundTrip(t *testing.T) {
	p := Plan{}.Normalize(model.NewSVM())
	if p.StealChunk != 64 {
		t.Errorf("default steal chunk = %d, want 64", p.StealChunk)
	}
	e := mustEngine(t, model.NewSVM(), data.Reuters(),
		Plan{Executor: ExecParallel, Access: model.RowWise, Workers: 2, StealChunk: 7})
	e.RunEpoch()
	snap := e.Snapshot()
	if snap.Plan.StealChunk != 7 {
		t.Errorf("snapshot steal chunk = %d, want 7", snap.Plan.StealChunk)
	}
	re, err := DecodeSnapshot(EncodeSnapshot(snap))
	if err != nil {
		t.Fatal(err)
	}
	if re.Plan.StealChunk != 7 {
		t.Errorf("decoded steal chunk = %d, want 7", re.Plan.StealChunk)
	}
}

// TestExecutorOverheadCycles pins the optimizer's pricing of the
// pooled backend: waking a parked pool must be priced well under the
// per-epoch goroutine-spawn model it replaced, and the simulated
// backend carries no real-concurrency overhead at all.
func TestExecutorOverheadCycles(t *testing.T) {
	if got := ExecutorOverheadCycles(ExecSimulated, 12); got != 0 {
		t.Errorf("simulated overhead = %v, want 0", got)
	}
	pooled := ExecutorOverheadCycles(ExecParallel, 12)
	if pooled <= 0 {
		t.Errorf("pooled overhead = %v, want > 0", pooled)
	}
	if spawn := float64(12 * goroutineSpawnCycles); pooled >= spawn {
		t.Errorf("pooled overhead %v not cheaper than the spawn model %v", pooled, spawn)
	}
}
