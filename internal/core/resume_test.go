// Property test for the durability tentpole: for every workload family
// on both executors, training N epochs straight must be bit-identical
// to training k epochs, snapshotting through the full binary codec,
// restoring into a freshly built engine, and training the remaining
// N−k epochs. The external test package lets the test drive the real
// factor and nn workload adapters (which import core).
//
// Parallel-executor cases run one worker: with concurrent workers the
// *uninterrupted* run is already nondeterministic (Hogwild flush and
// sample interleaving), so bit-identity is only a meaningful property
// of the deterministic single-worker configuration. Simulated cases
// run the full worker complement — the deterministic interleaver makes
// any worker count reproducible. GLM runs row access: column access
// keeps incrementally maintained auxiliary state that restore rebuilds
// from the model, which is exact in value but not in floating-point
// accumulation history.
package core_test

import (
	"math"
	"testing"

	"dimmwitted/internal/core"
	"dimmwitted/internal/data"
	"dimmwitted/internal/factor"
	"dimmwitted/internal/model"
	"dimmwitted/internal/nn"
	"dimmwitted/internal/numa"
)

// resumeCase builds fresh workloads (a workload binds to one engine,
// so every engine needs its own) under one plan.
type resumeCase struct {
	name string
	mk   func(t *testing.T) core.Workload
	plan core.Plan
}

func glmWorkload(t *testing.T) core.Workload {
	t.Helper()
	return core.NewGLM(model.NewSVM(), data.Reuters())
}

func gibbsWorkload(t *testing.T) core.Workload {
	t.Helper()
	return factor.NewWorkload(factor.Cycle5())
}

func nnWorkload(t *testing.T) core.Workload {
	t.Helper()
	ds, sizes, err := nn.DatasetByName("mnist-small")
	if err != nil {
		t.Fatal(err)
	}
	wl, err := nn.NewWorkload(ds, nn.WorkloadConfig{Sizes: sizes, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

func resumeCases() []resumeCase {
	return []resumeCase{
		{"glm/simulated", glmWorkload, core.Plan{Machine: numa.Local2, ModelRep: core.PerNode, Seed: 3}},
		{"glm/parallel", glmWorkload, core.Plan{Machine: numa.Local2, Executor: core.ExecParallel, Workers: 1, Seed: 3}},
		{"gibbs/simulated", gibbsWorkload, core.Plan{Machine: numa.Local2, ModelRep: core.PerNode, DataRep: core.FullReplication, Seed: 5}},
		{"gibbs/parallel", gibbsWorkload, core.Plan{Machine: numa.Local2, Executor: core.ExecParallel, Workers: 1, ModelRep: core.PerMachine, DataRep: core.Sharding, Seed: 5}},
		{"nn/simulated", nnWorkload, core.Plan{Machine: numa.Local2, ModelRep: core.PerNode, DataRep: core.FullReplication, Seed: 7}},
		{"nn/parallel", nnWorkload, core.Plan{Machine: numa.Local2, Executor: core.ExecParallel, Workers: 1, Seed: 7}},
	}
}

// runEpochs advances an engine n epochs and returns its final loss and
// combined state.
func runEpochs(t *testing.T, e *core.Engine, n int) (float64, []float64) {
	t.Helper()
	for i := 0; i < n; i++ {
		e.RunEpoch()
	}
	return e.Loss(), append([]float64(nil), e.Model()...)
}

func TestCheckpointResumeBitIdentical(t *testing.T) {
	const total, at = 8, 3
	for _, tc := range resumeCases() {
		t.Run(tc.name, func(t *testing.T) {
			// The reference: an uninterrupted run of `total` epochs.
			ref, err := core.NewWorkload(tc.mk(t), tc.plan)
			if err != nil {
				t.Fatal(err)
			}
			wantLoss, wantX := runEpochs(t, ref, total)

			// The interrupted run: `at` epochs, then a snapshot through
			// the binary codec — exactly what the checkpoint store
			// writes and Resume reads back.
			head, err := core.NewWorkload(tc.mk(t), tc.plan)
			if err != nil {
				t.Fatal(err)
			}
			runEpochs(t, head, at)
			snap, err := core.DecodeSnapshot(core.EncodeSnapshot(head.Snapshot()))
			if err != nil {
				t.Fatalf("codec round trip: %v", err)
			}
			if snap.Epoch != at {
				t.Fatalf("snapshot at epoch %d, want %d", snap.Epoch, at)
			}

			// The resumed engine is built from scratch — new workload,
			// new replicas, new generators — under the snapshot's plan,
			// the crash-recovery path.
			tail, err := core.NewWorkload(tc.mk(t), snap.Plan)
			if err != nil {
				t.Fatal(err)
			}
			if err := tail.Restore(snap); err != nil {
				t.Fatalf("restore: %v", err)
			}
			if tail.Epoch() != at {
				t.Fatalf("restored engine at epoch %d, want %d", tail.Epoch(), at)
			}
			gotLoss, gotX := runEpochs(t, tail, total-at)

			if tail.Epoch() != total {
				t.Fatalf("resumed engine finished at epoch %d, want %d", tail.Epoch(), total)
			}
			if math.Float64bits(gotLoss) != math.Float64bits(wantLoss) {
				t.Fatalf("final loss diverged: resumed %v (%016x), uninterrupted %v (%016x)",
					gotLoss, math.Float64bits(gotLoss), wantLoss, math.Float64bits(wantLoss))
			}
			if len(gotX) != len(wantX) {
				t.Fatalf("model dimension diverged: %d vs %d", len(gotX), len(wantX))
			}
			for i := range gotX {
				if math.Float64bits(gotX[i]) != math.Float64bits(wantX[i]) {
					t.Fatalf("model[%d] diverged: %v vs %v (epoch-%d resume)", i, gotX[i], wantX[i], at)
				}
			}
		})
	}
}

// TestGibbsRestoreWithoutChainStateFails pins the safety property the
// chain codec buys: a snapshot stripped of its private replica state
// (as any pre-durability snapshot was) must refuse to seed new chains
// rather than silently restarting sampling from pooled marginals.
func TestGibbsRestoreWithoutChainStateFails(t *testing.T) {
	wl := gibbsWorkload(t)
	plan := core.Plan{Machine: numa.Local2, ModelRep: core.PerNode, DataRep: core.FullReplication}
	eng, err := core.NewWorkload(wl, plan)
	if err != nil {
		t.Fatal(err)
	}
	runEpochs(t, eng, 2)
	snap := eng.Snapshot()
	if len(snap.Priv) == 0 {
		t.Fatal("gibbs snapshot carries no chain state")
	}
	snap.Priv = nil

	fresh, err := core.NewWorkload(gibbsWorkload(t), snap.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(snap); err == nil {
		t.Fatal("restore accepted a gibbs snapshot without chain state")
	}
}

// TestRestoreRejectsMismatchedReplicaCount pins the plan-revalidation
// property: chain state from a 2-chain (PerNode) run cannot restore
// into a 12-chain (PerCore) engine.
func TestRestoreRejectsMismatchedReplicaCount(t *testing.T) {
	eng, err := core.NewWorkload(gibbsWorkload(t), core.Plan{Machine: numa.Local2, ModelRep: core.PerNode, DataRep: core.FullReplication})
	if err != nil {
		t.Fatal(err)
	}
	runEpochs(t, eng, 1)
	snap := eng.Snapshot()

	other, err := core.NewWorkload(gibbsWorkload(t), core.Plan{Machine: numa.Local2, ModelRep: core.PerCore, DataRep: core.FullReplication})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(snap); err == nil {
		t.Fatal("restore accepted chain state with mismatched replica count")
	}
}
