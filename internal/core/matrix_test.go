package core

import (
	"fmt"
	"math"
	"testing"

	"dimmwitted/internal/data"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

// TestConfigurationMatrix exercises every supported combination of
// model, access method, model replication, data replication and
// machine on a small dataset: each must construct, run epochs without
// panicking, keep the loss finite, and not blow up the objective.
func TestConfigurationMatrix(t *testing.T) {
	tasks := []struct {
		spec model.Spec
		ds   *data.Dataset
	}{
		{model.NewSVM(), data.Reuters()},
		{model.NewLR(), data.Reuters()},
		{model.NewLS(), data.MusicRegression()},
		{model.NewLP(), data.AmazonLP()},
		{model.NewQP(), data.AmazonQP()},
	}
	machines := []numa.Topology{numa.Local2, numa.Local4}
	modelReps := []ModelReplication{PerCore, PerNode, PerMachine}
	dataReps := []DataReplication{Sharding, FullReplication}

	for _, task := range tasks {
		init := task.spec.Loss(task.ds, task.spec.NewReplica(task.ds).X)
		for _, access := range task.spec.Supports() {
			for _, mrep := range modelReps {
				for _, drep := range dataReps {
					for _, top := range machines {
						name := fmt.Sprintf("%s/%s/%v/%v/%s",
							task.spec.Name(), access, mrep, drep, top.Name)
						t.Run(name, func(t *testing.T) {
							eng, err := New(task.spec, task.ds, Plan{
								Access: access, ModelRep: mrep, DataRep: drep,
								Machine: top, Seed: 7,
							})
							if err != nil {
								t.Fatalf("New: %v", err)
							}
							var last EpochResult
							for i := 0; i < 3; i++ {
								last = eng.RunEpoch()
								if math.IsNaN(last.Loss) || math.IsInf(last.Loss, 0) {
									t.Fatalf("loss diverged: %v", last.Loss)
								}
								if last.SimTime <= 0 {
									t.Fatal("no simulated time")
								}
							}
							// The objective must not explode; a mild
							// transient increase is tolerated.
							if last.Loss > 2*init+1 {
								t.Errorf("loss exploded: init %v, after 3 epochs %v", init, last.Loss)
							}
						})
					}
				}
			}
		}
	}
}

// TestMatrixDeterminismAcrossConfigs spot-checks that every
// configuration is reproducible under its seed.
func TestMatrixDeterminismAcrossConfigs(t *testing.T) {
	configs := []Plan{
		{Access: model.RowWise, ModelRep: PerNode, DataRep: FullReplication},
		{Access: model.ColWise, ModelRep: PerMachine, DataRep: Sharding},
		{Access: model.RowWise, ModelRep: PerCore, DataRep: Sharding, Machine: numa.Local8},
	}
	specs := []model.Spec{model.NewSVM(), model.NewLP(), model.NewSVM()}
	sets := []*data.Dataset{data.Reuters(), data.AmazonLP(), data.Reuters()}
	for i, cfg := range configs {
		cfg.Seed = 11
		if err := cfg.Normalize(specs[i]).Validate(specs[i]); err != nil {
			continue // LP row config etc. guard
		}
		run := func() float64 {
			e, err := New(specs[i], sets[i], cfg)
			if err != nil {
				t.Fatalf("config %d: %v", i, err)
			}
			return e.RunEpochs(4)[3].Loss
		}
		if a, b := run(), run(); a != b {
			t.Errorf("config %d not deterministic: %v vs %v", i, a, b)
		}
	}
}
