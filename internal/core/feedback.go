package core

import (
	"fmt"

	"dimmwitted/internal/numa"
)

// CostModel is the optimizer's feedback seam: measured plan costs that
// override the static word-cost prior once enough observations exist.
// Implementations (internal/tune through the serve layer's adapter)
// return the EWMA of observed seconds-per-epoch for a normalized
// candidate plan, with ok true only past their observation threshold —
// an unwarmed key leaves the static ranking in charge.
type CostModel interface {
	MeasuredSeconds(p Plan) (seconds float64, ok bool)
}

// CandidateCost is the optimizer's view of one candidate plan inside a
// decision: its static rank (0 is the prior's winner; the word-cost
// model has no opinion between replication variants beyond its rules
// of thumb, so rank is enumeration order) and its measured cost when
// the feedback store has one.
type CandidateCost struct {
	// Plan is the normalized candidate.
	Plan Plan
	// StaticRank orders candidates under the prior; 0 is the static
	// optimizer's own pick.
	StaticRank int
	// MeasuredSeconds is the feedback EWMA of seconds-per-epoch;
	// meaningful only when Measured is true.
	MeasuredSeconds float64
	// Measured reports whether the cost model had crossed its
	// observation threshold for this plan.
	Measured bool
}

// PlanDecision is ChoosePlanModel's result: the chosen plan, how it
// was chosen, and the full candidate table for decision diagnostics
// (job status, dwbench -feedback's decision artifact).
type PlanDecision struct {
	// Plan is the winner.
	Plan Plan
	// Source is "static" when the word-cost prior decided (no candidate
	// measured) and "measured" when feedback overrode it.
	Source string
	// PredictedSeconds is the winner's measured cost; 0 under the
	// static prior, which predicts no wall clock.
	PredictedSeconds float64
	// RunnerUp is the epsilon-exploration target: the candidate most
	// worth a measurement — the best-measured non-winner, or, while any
	// candidate is still unmeasured, the first of those, so every
	// candidate eventually crosses the observation threshold. Nil when
	// the decision has a single candidate.
	RunnerUp *Plan
	// Candidates is the full table, static-rank order.
	Candidates []CandidateCost
}

// planSourceStatic and planSourceMeasured are the PlanDecision.Source
// values.
const (
	planSourceStatic   = "static"
	planSourceMeasured = "measured"
)

// normalizePlanFor runs the engine's normalization sequence without
// binding: the common defaults, then the workload's own.
func normalizePlanFor(wl Workload, p Plan) Plan {
	return wl.NormalizePlan(p.normalizeCommon())
}

// validatePlanFor runs the engine's validation sequence without
// binding, mirroring NewWorkload.
func validatePlanFor(wl Workload, p Plan) error {
	if err := p.validateCommon(); err != nil {
		return err
	}
	supported := false
	for _, a := range wl.Supports() {
		if a == p.Access {
			supported = true
		}
	}
	if !supported {
		return fmt.Errorf("core: %s does not support %s access", wl.Name(), p.Access)
	}
	return wl.ValidatePlan(p)
}

// CandidatePlans enumerates the decision's plan space: the workload's
// static choice first, then the model-replication variants the static
// rules of thumb rejected (each paired with a data replication the
// workload accepts — Gibbs ties sharding to single-chain PerMachine,
// for instance) and, for the parallel backend, the neighbouring
// steal-chunk granularities. Every candidate is normalized and
// validated; invalid variants are dropped, so the list is directly
// runnable. The static winner is always index 0.
func CandidatePlans(wl Workload, top numa.Topology, exec ExecutorKind) ([]Plan, error) {
	static, err := wl.Optimize(top, exec)
	if err != nil {
		return nil, err
	}
	static = normalizePlanFor(wl, static)
	if err := validatePlanFor(wl, static); err != nil {
		return nil, err
	}
	cands := []Plan{static}
	for _, mr := range []ModelReplication{PerMachine, PerNode, PerCore} {
		if mr == static.ModelRep {
			continue
		}
		// Try the static pairing first, then the alternatives, keeping
		// the first data replication the workload validates. Importance
		// is never proposed: it subsamples, so its epochs are not
		// cost-comparable with full passes.
		for _, dr := range []DataReplication{static.DataRep, FullReplication, Sharding} {
			v := static
			v.ModelRep = mr
			v.DataRep = dr
			v = normalizePlanFor(wl, v)
			if validatePlanFor(wl, v) == nil {
				cands = append(cands, v)
				break
			}
		}
	}
	if exec == ExecParallel {
		for _, sc := range []int{16, 256} {
			if sc == static.StealChunk {
				continue
			}
			v := static
			v.StealChunk = sc
			v = normalizePlanFor(wl, v)
			if validatePlanFor(wl, v) == nil {
				cands = append(cands, v)
			}
		}
	}
	return cands, nil
}

// ChoosePlanModel runs the feedback-aware optimizer: the static
// simulated-NUMA estimate remains the prior (candidate 0 wins when
// nothing is measured), but once the cost model reports measured costs
// the cheapest measured candidate wins instead. A nil cost model
// degrades to the static choice — ChooseWorkload with a candidate
// table.
func ChoosePlanModel(wl Workload, top numa.Topology, exec ExecutorKind, cm CostModel) (PlanDecision, error) {
	cands, err := CandidatePlans(wl, top, exec)
	if err != nil {
		return PlanDecision{}, err
	}
	dec := PlanDecision{Source: planSourceStatic, Candidates: make([]CandidateCost, len(cands))}
	bestMeasured, bestSeconds := -1, 0.0
	for i, p := range cands {
		cc := CandidateCost{Plan: p, StaticRank: i}
		if cm != nil {
			if sec, ok := cm.MeasuredSeconds(p); ok {
				cc.MeasuredSeconds, cc.Measured = sec, true
				if bestMeasured < 0 || sec < bestSeconds {
					bestMeasured, bestSeconds = i, sec
				}
			}
		}
		dec.Candidates[i] = cc
	}
	win := 0
	if bestMeasured >= 0 {
		win = bestMeasured
		dec.Source = planSourceMeasured
		dec.PredictedSeconds = bestSeconds
	}
	dec.Plan = cands[win]
	dec.RunnerUp = runnerUp(dec.Candidates, win)
	return dec, nil
}

// runnerUp picks the exploration target among the non-winners: the
// first unmeasured candidate if any (discovery — without a visit it
// can never cross the threshold), else the cheapest measured one
// (staleness-busting — re-measuring the closest rival is what lets a
// drifted winner be dethroned).
func runnerUp(cands []CandidateCost, win int) *Plan {
	var bestMeasured *Plan
	bestSeconds := 0.0
	for i := range cands {
		if i == win {
			continue
		}
		c := &cands[i]
		if !c.Measured {
			p := c.Plan
			return &p
		}
		if bestMeasured == nil || c.MeasuredSeconds < bestSeconds {
			p := c.Plan
			bestMeasured, bestSeconds = &p, c.MeasuredSeconds
		}
	}
	return bestMeasured
}
