package core

import (
	"fmt"
	"math/rand"
	"sync"

	"dimmwitted/internal/data"
	"dimmwitted/internal/model"
	"dimmwitted/internal/vec"
)

// RunConcurrent executes row-wise epochs with real goroutine workers
// under the Hogwild! memory model: shared replicas are vec.Atomic
// vectors with component-wise atomicity and no locking. Each worker
// trains on a private working copy and, every flushEvery steps, pushes
// its accumulated delta to its replica with atomic adds and refreshes
// the copy — the paper's "batch writes across sockets" technique made
// explicit (and race-detector clean).
//
// The simulated-cost machinery does not apply here; this executor
// exists to validate that the engine's replication semantics hold
// under genuine concurrency. It returns the combined model after the
// final epoch.
//
// Only row-wise access is supported: column-wise auxiliary state
// cannot be kept consistent under unsynchronized concurrent flushes.
func RunConcurrent(spec model.Spec, ds *data.Dataset, plan Plan, epochs, flushEvery int) ([]float64, error) {
	plan = plan.Normalize(spec)
	if err := plan.Validate(spec); err != nil {
		return nil, err
	}
	if plan.Access != model.RowWise {
		return nil, fmt.Errorf("core: concurrent executor supports row-wise access only, got %s", plan.Access)
	}
	if flushEvery < 1 {
		flushEvery = 8
	}

	dim := len(spec.NewReplica(ds).X)
	nodes := plan.Machine.Nodes

	// Shared masters, one per locality group.
	var masters []*vec.Atomic
	groupOf := make([]int, plan.Workers)
	switch plan.ModelRep {
	case PerMachine:
		masters = []*vec.Atomic{vec.NewAtomic(dim)}
	case PerNode:
		n := nodes
		if plan.Workers < n {
			n = plan.Workers
		}
		for g := 0; g < n; g++ {
			masters = append(masters, vec.NewAtomic(dim))
		}
		for w := range groupOf {
			groupOf[w] = (w % nodes) % len(masters)
		}
	case PerCore:
		for g := 0; g < plan.Workers; g++ {
			masters = append(masters, vec.NewAtomic(dim))
		}
		for w := range groupOf {
			groupOf[w] = w
		}
	}
	if plan.ModelRep == PerMachine {
		for w := range groupOf {
			groupOf[w] = 0
		}
	}
	// Seed masters with the spec's initial model (e.g. LP starts at 1).
	init := spec.NewReplica(ds).X
	for _, m := range masters {
		m.CopyFrom(init)
	}

	step := plan.Step
	for ep := 0; ep < epochs; ep++ {
		// Partition rows per the data-replication strategy.
		assignRng := rand.New(rand.NewSource(plan.Seed + int64(ep)))
		assignments := make([][]int, plan.Workers)
		switch plan.DataRep {
		case FullReplication:
			for w := range assignments {
				node := w % nodes
				nodeRng := rand.New(rand.NewSource(plan.Seed + int64(ep)*100 + int64(node)))
				perm := nodeRng.Perm(ds.Rows())
				workersOnNode := (plan.Workers + nodes - 1) / nodes
				slot := w / nodes
				for i := slot; i < len(perm); i += workersOnNode {
					assignments[w] = append(assignments[w], perm[i])
				}
			}
		default: // Sharding
			perm := assignRng.Perm(ds.Rows())
			for i, row := range perm {
				w := i % plan.Workers
				assignments[w] = append(assignments[w], row)
			}
		}

		var wg sync.WaitGroup
		for w := 0; w < plan.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				master := masters[groupOf[w]]
				local := spec.NewReplica(ds)
				master.Snapshot(local.X)
				base := append([]float64(nil), local.X...)
				sinceFlush := 0
				flush := func() {
					for j := 0; j < dim; j++ {
						if d := local.X[j] - base[j]; d != 0 {
							master.Add(j, d)
						}
					}
					master.Snapshot(local.X)
					copy(base, local.X)
					sinceFlush = 0
				}
				for _, row := range assignments[w] {
					spec.RowStep(ds, row, local, step)
					sinceFlush++
					if sinceFlush >= flushEvery {
						flush()
					}
				}
				flush()
			}(w)
		}
		wg.Wait()
		step *= plan.StepDecay

		// End-of-epoch synchronization across locality groups.
		if len(masters) > 1 {
			xs := make([][]float64, len(masters))
			for i, m := range masters {
				xs[i] = make([]float64, dim)
				m.Snapshot(xs[i])
			}
			combined := make([]float64, dim)
			spec.Combine(xs, combined)
			for _, m := range masters {
				m.CopyFrom(combined)
			}
		}
	}

	out := make([]float64, dim)
	if len(masters) == 1 {
		masters[0].Snapshot(out)
		return out, nil
	}
	xs := make([][]float64, len(masters))
	for i, m := range masters {
		xs[i] = make([]float64, dim)
		m.Snapshot(xs[i])
	}
	spec.Combine(xs, out)
	return out, nil
}
