package core

import (
	"fmt"
	"time"
)

// Snapshot is a frozen copy of an engine's trained state: the combined
// model vector, the traversal-randomness positions, any workload-
// private replica state, plus enough metadata to identify what produced
// it. It is plain data — safe to hand to other goroutines, park in a
// model registry, or serialize through the versioned binary codec
// (EncodeSnapshot) while the engine keeps training (or is discarded).
//
// A snapshot taken between epochs is a resume point: restoring it into
// a fresh engine running the same plan continues the run exactly —
// remaining epochs reproduce the uninterrupted run bit for bit under
// the simulated executor (and under the parallel executor whenever the
// run is single-worker deterministic).
type Snapshot struct {
	// Workload is the workload family that produced the state.
	Workload WorkloadKind
	// Spec is the task's short name: the model specification for GLM
	// ("svm", "lr", ...), the workload name otherwise ("gibbs", "nn").
	Spec string
	// Dataset names the dataset the model was trained on.
	Dataset string
	// Epoch is the number of completed epochs at snapshot time.
	Epoch int
	// Loss is the combined-model objective at snapshot time.
	Loss float64
	// SimTime is the cumulative simulated training time.
	SimTime time.Duration
	// WallTime is the cumulative measured wall-clock training time.
	WallTime time.Duration
	// Step is the current (decayed) step size, so a restored engine
	// continues with the schedule the source engine had reached.
	Step float64
	// Plan is the execution plan the engine ran. A warm-started engine
	// re-runs this plan, so resumed epochs partition and traverse work
	// identically to the source engine's.
	Plan Plan
	// X is a private copy of the combined model vector.
	X []float64
	// EngineRNG is the engine's traversal-generator position (epoch
	// permutations, leverage samples); a restored engine's remaining
	// epochs draw the same orders the source engine would have.
	EngineRNG RNGState
	// WorkerRNG holds the parallel executor's shared-mode per-worker
	// generator positions (Gibbs flips), or nil for the simulated
	// executor and delta-mode workloads.
	WorkerRNG []RNGState
	// Priv holds each replica's workload-private state, encoded by the
	// workload's ReplicaCodec (Gibbs chains: assignments, marginal
	// tallies, chain generator), in engine replica order. Nil for
	// workloads whose replicas are fully determined by X (GLM, NN).
	Priv [][]byte
	// DataRows and DataVersion identify the exact dataset view the
	// engine was trained on at snapshot time (the ingest high-water
	// mark for streamed datasets). Zero for workloads that do not
	// implement DataVersioner; online resume rebuilds the view at
	// DataRows so nothing is replayed.
	DataRows    int
	DataVersion uint64
}

// ReplicaCodec is optionally implemented by workloads whose replicas
// carry private state beyond the combined vector that snapshots must
// capture for exact resume (Gibbs chains). EncodeReplica runs at
// snapshot time on each replica in engine order; DecodeReplica rebuilds
// the replica's private state — and its X view, if derived from it —
// from a blob EncodeReplica produced for the same replica index.
type ReplicaCodec interface {
	EncodeReplica(ws *WorkState) ([]byte, error)
	DecodeReplica(ws *WorkState, blob []byte) error
}

// Snapshot captures the engine's current combined state and training
// progress. The returned value shares no memory with the engine, so a
// serving layer can keep it while the engine continues to run.
func (e *Engine) Snapshot() Snapshot {
	loss := e.lastLoss
	if !e.lossValid {
		loss = e.Loss()
	}
	s := Snapshot{
		Workload:  e.wl.Kind(),
		Spec:      e.wl.Name(),
		Dataset:   e.wl.DatasetName(),
		Epoch:     e.epoch,
		Loss:      loss,
		SimTime:   e.cumTime,
		WallTime:  e.cumWall,
		Step:      e.step,
		Plan:      e.plan,
		X:         append([]float64(nil), e.global...),
		EngineRNG: CapRNGState(e.rngSrc.State()),
	}
	if dv, ok := e.wl.(DataVersioner); ok {
		s.DataRows = dv.DataRows()
		s.DataVersion = dv.DataVersion()
	}
	if pe, ok := e.exec.(*parallelExecutor); ok {
		for _, st := range pe.rngStates() {
			s.WorkerRNG = append(s.WorkerRNG, CapRNGState(st))
		}
	}
	if rc, ok := e.wl.(ReplicaCodec); ok {
		for _, r := range e.replicas {
			blob, err := rc.EncodeReplica(r)
			if err != nil {
				// Encoding private state reads plain in-memory slices and
				// cannot fail for the in-tree workloads; a workload that
				// does fail degrades to a combined-vector-only snapshot
				// (still servable, not exactly resumable).
				s.Priv = nil
				break
			}
			s.Priv = append(s.Priv, blob)
		}
	}
	return s
}

// Restore loads a snapshot's state into the engine: the global state
// and every replica are overwritten, auxiliary state is rebuilt,
// traversal generators are repositioned, and the epoch counter resumes
// from the snapshot. The snapshot must come from the same workload and
// task with matching dimension. Pooled-estimate workloads (Gibbs)
// restore through their private replica state — the chains' sampling
// state — which requires the snapshot's replica count to match the
// engine's (i.e. the same plan); snapshots without private state cannot
// seed new chains from combined marginals alone.
func (e *Engine) Restore(s Snapshot) error {
	if s.Workload != e.wl.Kind() {
		return fmt.Errorf("core: %s snapshot cannot restore into %s engine", s.Workload, e.wl.Kind())
	}
	if s.Spec != e.wl.Name() {
		return fmt.Errorf("core: snapshot of %q cannot restore into %q engine", s.Spec, e.wl.Name())
	}
	if len(s.X) != len(e.global) {
		return fmt.Errorf("core: snapshot dimension %d, engine dimension %d", len(s.X), len(e.global))
	}

	rc, hasCodec := e.wl.(ReplicaCodec)
	switch {
	case hasCodec && len(s.Priv) > 0:
		if len(s.Priv) != len(e.replicas) {
			return fmt.Errorf("core: snapshot has %d replica states, engine has %d replicas (plans differ)",
				len(s.Priv), len(e.replicas))
		}
		for i, r := range e.replicas {
			if err := rc.DecodeReplica(r, s.Priv[i]); err != nil {
				return fmt.Errorf("core: replica %d: %w", i, err)
			}
		}
	case e.wl.Sync() == SyncPool:
		return fmt.Errorf("core: %s snapshot carries no chain state; pooled marginals alone cannot seed new chains", e.wl.Kind())
	default:
		for _, r := range e.replicas {
			copy(r.X, s.X)
			e.wl.AuxRefresh(r, true)
		}
	}
	copy(e.global, s.X)

	if !s.EngineRNG.zero() {
		e.rngSrc.Restore(s.EngineRNG)
	}
	if pe, ok := e.exec.(*parallelExecutor); ok && len(s.WorkerRNG) > 0 {
		if err := pe.restoreRNGs(s.WorkerRNG); err != nil {
			return err
		}
	}

	e.epoch = s.Epoch
	e.cumTime = s.SimTime
	e.cumWall = s.WallTime
	e.lastLoss, e.lossValid = s.Loss, true
	if s.Step > 0 {
		e.step = s.Step
	}
	return nil
}
