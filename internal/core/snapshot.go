package core

import (
	"fmt"
	"time"
)

// Snapshot is a frozen copy of an engine's trained state: the combined
// model vector plus enough metadata to identify what produced it. It is
// plain data — safe to hand to other goroutines, serialize, or park in
// a model registry while the engine keeps training (or is discarded).
type Snapshot struct {
	// Spec is the model specification's short name ("svm", "lr", ...).
	Spec string
	// Dataset names the dataset the model was trained on.
	Dataset string
	// Epoch is the number of completed epochs at snapshot time.
	Epoch int
	// Loss is the combined-model objective at snapshot time.
	Loss float64
	// SimTime is the cumulative simulated training time.
	SimTime time.Duration
	// Step is the current (decayed) step size, so a restored engine
	// continues with the schedule the source engine had reached.
	Step float64
	// Plan is the execution plan the engine ran.
	Plan Plan
	// X is a private copy of the combined model vector.
	X []float64
}

// Snapshot captures the engine's current combined model and training
// progress. The returned value shares no memory with the engine, so a
// serving layer can keep it while the engine continues to run.
func (e *Engine) Snapshot() Snapshot {
	return Snapshot{
		Spec:    e.spec.Name(),
		Dataset: e.ds.Name,
		Epoch:   e.epoch,
		Loss:    e.Loss(),
		SimTime: e.cumTime,
		Step:    e.step,
		Plan:    e.plan,
		X:       append([]float64(nil), e.global...),
	}
}

// Restore loads a snapshot's model into the engine: the global model
// and every replica are overwritten, auxiliary state is rebuilt, and
// the epoch counter resumes from the snapshot. The snapshot must come
// from the same spec and a dataset of the same dimension.
func (e *Engine) Restore(s Snapshot) error {
	if s.Spec != e.spec.Name() {
		return fmt.Errorf("core: snapshot of %q cannot restore into %q engine", s.Spec, e.spec.Name())
	}
	if len(s.X) != len(e.global) {
		return fmt.Errorf("core: snapshot dimension %d, engine dimension %d", len(s.X), len(e.global))
	}
	copy(e.global, s.X)
	for _, r := range e.replicas {
		copy(r.X, s.X)
		if r.Aux != nil {
			e.spec.RefreshAux(e.ds, r)
		}
	}
	e.epoch = s.Epoch
	e.cumTime = s.SimTime
	if s.Step > 0 {
		e.step = s.Step
	}
	return nil
}
