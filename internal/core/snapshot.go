package core

import (
	"fmt"
	"time"
)

// Snapshot is a frozen copy of an engine's trained state: the combined
// model vector plus enough metadata to identify what produced it. It is
// plain data — safe to hand to other goroutines, serialize, or park in
// a model registry while the engine keeps training (or is discarded).
type Snapshot struct {
	// Workload is the workload family that produced the state.
	Workload WorkloadKind
	// Spec is the task's short name: the model specification for GLM
	// ("svm", "lr", ...), the workload name otherwise ("gibbs", "nn").
	Spec string
	// Dataset names the dataset the model was trained on.
	Dataset string
	// Epoch is the number of completed epochs at snapshot time.
	Epoch int
	// Loss is the combined-model objective at snapshot time.
	Loss float64
	// SimTime is the cumulative simulated training time.
	SimTime time.Duration
	// Step is the current (decayed) step size, so a restored engine
	// continues with the schedule the source engine had reached.
	Step float64
	// Plan is the execution plan the engine ran.
	Plan Plan
	// X is a private copy of the combined model vector.
	X []float64
}

// Snapshot captures the engine's current combined state and training
// progress. The returned value shares no memory with the engine, so a
// serving layer can keep it while the engine continues to run.
func (e *Engine) Snapshot() Snapshot {
	return Snapshot{
		Workload: e.wl.Kind(),
		Spec:     e.wl.Name(),
		Dataset:  e.wl.DatasetName(),
		Epoch:    e.epoch,
		Loss:     e.Loss(),
		SimTime:  e.cumTime,
		Step:     e.step,
		Plan:     e.plan,
		X:        append([]float64(nil), e.global...),
	}
}

// Restore loads a snapshot's state into the engine: the global state
// and every replica are overwritten, auxiliary state is rebuilt, and
// the epoch counter resumes from the snapshot. The snapshot must come
// from the same workload and task with matching dimension. Pooled-
// estimate workloads (Gibbs) cannot restore: the combined marginals do
// not determine the chains' sampling state.
func (e *Engine) Restore(s Snapshot) error {
	if s.Workload != e.wl.Kind() {
		return fmt.Errorf("core: %s snapshot cannot restore into %s engine", s.Workload, e.wl.Kind())
	}
	if s.Spec != e.wl.Name() {
		return fmt.Errorf("core: snapshot of %q cannot restore into %q engine", s.Spec, e.wl.Name())
	}
	if len(s.X) != len(e.global) {
		return fmt.Errorf("core: snapshot dimension %d, engine dimension %d", len(s.X), len(e.global))
	}
	if e.wl.Sync() == SyncPool {
		return fmt.Errorf("core: %s snapshots are pooled estimates and cannot seed new chains", e.wl.Kind())
	}
	copy(e.global, s.X)
	for _, r := range e.replicas {
		copy(r.X, s.X)
		e.wl.AuxRefresh(r, true)
	}
	e.epoch = s.Epoch
	e.cumTime = s.SimTime
	if s.Step > 0 {
		e.step = s.Step
	}
	return nil
}
