package core

import (
	"context"
	"sort"
	"time"

	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
	"dimmwitted/internal/trace"
)

// EpochResult reports one completed epoch.
type EpochResult struct {
	// Epoch is the 1-based epoch number.
	Epoch int
	// Loss is the combined-state objective after the epoch.
	Loss float64
	// SimTime is the simulated duration of this epoch alone; zero
	// under the parallel executor, which the simulator does not model.
	SimTime time.Duration
	// CumTime is the simulated duration of all epochs so far.
	CumTime time.Duration
	// WallTime is the measured wall-clock duration of this epoch —
	// the primary time axis of the parallel executor, and incidental
	// (engine overhead) for the simulated one.
	WallTime time.Duration
	// Steps is the number of work-unit steps executed this epoch.
	Steps int
	// Counters holds this epoch's PMU-style counters; zero under the
	// parallel executor.
	Counters numa.Counters
}

// RunEpoch executes one full epoch under the plan's executor — every
// worker consumes its assigned work list — and returns the epoch's
// measurements. Under the simulated executor the deterministic
// interleaver reproduces the visibility semantics of the plan's model
// replication: workers sharing a replica observe each other's updates
// at chunk granularity; PerNode replicas are additionally averaged by
// the asynchronous background worker every SyncRounds rounds; PerCore
// replicas meet only at the end of the epoch. Under the parallel
// executor, workers are real goroutines — flushing batched deltas to
// shared atomic masters for vector workloads, or sampling directly on
// race-safe shared state for Gibbs chains.
func (e *Engine) RunEpoch() EpochResult {
	er, err := e.RunEpochCtx(context.Background())
	if err != nil {
		// Unreachable: runEpoch errors only on ctx cancellation and
		// the background context is never cancelled.
		panic(err)
	}
	return er
}

// RunEpochCtx is RunEpoch with cooperative cancellation: the simulated
// executor observes ctx between interleaver rounds, the parallel one
// between worker flushes. On cancellation the partially executed epoch
// is abandoned — no combine runs, the epoch counter does not advance,
// and ctx's error is returned.
func (e *Engine) RunEpochCtx(ctx context.Context) (EpochResult, error) {
	// Tracing: the epoch number being executed is e.epoch+1 (1-based);
	// all phase sites below are nil-checks when tracing is off.
	epoch := e.epoch + 1
	var t0 time.Time
	if e.rec != nil {
		t0 = time.Now()
	}
	e.mach.Reset()
	e.assignWork()
	if e.wl.Sync() == SyncAggregate {
		// One-pass aggregates restart from zero partials every epoch.
		for _, r := range e.replicas {
			for j := range r.X {
				r.X[j] = 0
			}
		}
	}
	if e.rec != nil {
		e.rec.Record(trace.PhaseAssign, epoch, -1, t0, time.Now(), 0)
	}

	start := time.Now()
	steps, st, err := e.exec.runEpoch(ctx)
	if err != nil {
		// The abandoned partial epoch counts nowhere: neither in the
		// epoch/time counters nor in the traffic stats — nor in the
		// trace journal, whose partial worker spans are discarded.
		e.rec.Discard(e.recBufs)
		return EpochResult{}, err
	}
	e.cumStats.Add(st)

	var tEnd time.Time
	if e.rec != nil {
		tEnd = time.Now()
	}
	e.wl.EndEpoch(e.replicas)
	if e.rec != nil {
		now := time.Now()
		e.rec.Record(trace.PhaseEndEpoch, epoch, -1, tEnd, now, 0)
		tEnd = now
	}
	e.combine()
	if e.rec != nil {
		now := time.Now()
		e.rec.Record(trace.PhaseCombine, epoch, -1, tEnd, now, 0)
		tEnd = now
	}
	e.epoch++
	e.step *= e.plan.StepDecay
	wall := time.Since(start)
	e.cumWall += wall

	// Simulated-cost accounting only makes sense for the backend that
	// charged the simulated machine; parallel epochs report wall time.
	var simT time.Duration
	var ctr numa.Counters
	if e.exec.Kind() == ExecSimulated {
		cycles := e.mach.MaxCycles()*e.plan.ComputeScale + e.plan.EpochOverheadCycles
		simT = time.Duration(cycles / e.plan.Machine.ClockGHz)
		ctr = e.mach.Counters()
		e.cumCtr.Add(ctr)
	}
	e.cumTime += simT

	// The loss phase starts where combine ended (tEnd), so the epoch
	// counter/step-decay bookkeeping between them stays attributed
	// instead of falling into an untimed gap.
	e.lastLoss, e.lossValid = e.Loss(), true
	if e.rec != nil {
		now := time.Now()
		e.rec.Record(trace.PhaseLoss, epoch, -1, tEnd, now, 0)
		e.rec.Record(trace.PhaseEpoch, epoch, -1, t0, now, int64(steps))
		// The worker-span merge runs after the epoch span closes: the
		// recorder's own journal maintenance is not engine time and must
		// not dilute the coverage ratio it reports.
		e.rec.Merge(e.recBufs)
	}
	return EpochResult{
		Epoch:    e.epoch,
		Loss:     e.lastLoss,
		SimTime:  simT,
		CumTime:  e.cumTime,
		WallTime: wall,
		Steps:    steps,
		Counters: ctr,
	}, nil
}

// midEpochSyncDue reports whether the asynchronous averaging worker
// fires after the given interleaver round.
func (e *Engine) midEpochSyncDue(round int) bool {
	if e.plan.ModelRep != PerNode || len(e.replicas) < 2 {
		return false
	}
	if e.plan.SyncRounds < 0 || e.wl.Sync() != SyncAverage {
		return false
	}
	// Column access keeps per-row auxiliary state that would need an
	// O(nnz) rebuild after every averaging; mid-epoch averaging is
	// only used on row access (the paper pairs PerNode with SGD).
	if e.plan.Access != model.RowWise && e.replicas[0].Aux != nil {
		return false
	}
	every := e.plan.SyncRounds
	if every == 0 {
		every = 1
	}
	return round%every == 0
}

// executeStep runs one work-unit step for worker w under the simulated
// executor: the workload executes the unit and charges its simulated
// cost through the worker's cost handles.
func (e *Engine) executeStep(w *worker, item int) model.Stats {
	cost := &StepCost{
		Core:     w.core,
		DataReg:  w.dataReg,
		ModelReg: e.modelReg[w.repIdx],
	}
	if e.auxReg != nil {
		cost.AuxReg = e.auxReg[w.repIdx]
	}
	return e.wl.Step(item, e.replicas[w.repIdx], e.step, nil, cost)
}

// averageReplicas is the asynchronous model-averaging worker
// (Section 3.3): it reads every replica, averages, and writes the
// average back, batching many small cross-socket writes into one. Its
// cost is charged to the background core, which overlaps with the
// foreground workers in the epoch's critical path. When refreshAux is
// needed (end of epoch, column access), the rebuild cost is charged to
// the first core of each replica's locality group.
func (e *Engine) averageReplicas(midEpoch bool) {
	if len(e.replicas) < 2 {
		return
	}
	var tSync time.Time
	if e.rec != nil {
		tSync = time.Now()
		defer func() { e.rec.Record(trace.PhaseSync, e.epoch+1, -1, tSync, time.Now(), 0) }()
	}
	xs := make([][]float64, len(e.replicas))
	for i, r := range e.replicas {
		xs[i] = r.X
	}
	avg := make([]float64, len(e.replicas[0].X))
	e.wl.Combine(xs, avg)
	d := int64(len(avg))
	for i, r := range e.replicas {
		e.bg.ReadCached(e.modelReg[i], d)
		copy(r.X, avg)
		e.bg.Write(e.modelReg[i], d)
	}
	// Shipping the averages across sockets costs QPI bandwidth.
	e.bg.Compute(float64(d) * float64(len(e.replicas)) * e.mach.Cost.SyncPerWord)

	if !midEpoch && e.replicas[0].Aux != nil && e.plan.Access != model.RowWise {
		e.refreshAux()
	}
}

// refreshAux rebuilds every replica's auxiliary state from its model
// and charges the rebuild (a full data scan plus an aux rewrite).
func (e *Engine) refreshAux() {
	for i, r := range e.replicas {
		if !e.wl.AuxRefresh(r, false) {
			continue
		}
		owner := e.ownerCore(i)
		owner.ReadStream(e.workerForReplica(i).dataReg, int64(float64(e.wl.DataNNZ())*csrOverhead))
		owner.Write(e.auxReg[i], int64(len(r.Aux)))
	}
}

// ownerCore returns the core that pays for replica-wide maintenance.
func (e *Engine) ownerCore(repIdx int) *numa.Core {
	return e.workerForReplica(repIdx).core
}

// workerForReplica returns the first worker attached to a replica.
func (e *Engine) workerForReplica(repIdx int) *worker {
	for _, w := range e.workers {
		if w.repIdx == repIdx {
			return w
		}
	}
	return e.workers[0]
}

// combine ends an epoch: replicas are merged into the global state
// and — for workloads that synchronize by averaging — written back,
// the Bismarck-style end-of-epoch averaging. Aggregates fold their
// partials once; pooled estimates (Gibbs) are read-only combines that
// leave the replicas (chains) independent.
func (e *Engine) combine() {
	if len(e.replicas) == 1 {
		copy(e.global, e.replicas[0].X)
		return
	}
	xs := make([][]float64, len(e.replicas))
	for i, r := range e.replicas {
		xs[i] = r.X
	}
	e.wl.Combine(xs, e.global)
	d := int64(len(e.global))
	if e.wl.Sync() != SyncAverage {
		// Partial sums are folded into the global result once (writing
		// the total back into the partials would double-count it);
		// pooled estimates never write back by definition.
		for i := range e.replicas {
			e.bg.ReadCached(e.modelReg[i], d)
		}
		return
	}
	for i, r := range e.replicas {
		e.bg.ReadCached(e.modelReg[i], d)
		copy(r.X, e.global)
		e.bg.Write(e.modelReg[i], d)
	}
	// Column access keeps per-row auxiliary state that must be rebuilt
	// from the newly averaged model; row access leaves aux unused.
	if e.replicas[0].Aux != nil && e.plan.Access != model.RowWise {
		e.refreshAux()
	}
}

// assignWork builds each worker's item list for the coming epoch
// according to the data-replication strategy. Workloads implementing
// EpochOrderer supply the traversal orders themselves (Gibbs chains);
// everyone else draws from the engine's generator.
func (e *Engine) assignWork() {
	domain := e.wl.Units()
	for _, w := range e.workers {
		w.items = w.items[:0]
		w.pos = 0
	}
	orderer, hasOrder := e.wl.(EpochOrderer)
	switch e.plan.DataRep {
	case Sharding:
		var perm []int
		if hasOrder {
			perm = orderer.EpochOrder(0)
		} else {
			perm = e.epochOrder(domain)
		}
		n := len(e.workers)
		for i, item := range perm {
			w := e.workers[i%n]
			w.items = append(w.items, item)
		}
	case FullReplication:
		if hasOrder {
			// Partition per locality group so every replica traverses
			// its own full domain order — a PerCore Gibbs chain sweeps
			// every variable, not a per-node share of them.
			byRep := make([][]*worker, len(e.replicas))
			for _, w := range e.workers {
				byRep[w.repIdx] = append(byRep[w.repIdx], w)
			}
			for rep := range e.replicas {
				ws := byRep[rep]
				for i, item := range orderer.EpochOrder(rep) {
					w := ws[i%len(ws)]
					w.items = append(w.items, item)
				}
			}
			return
		}
		// Each locality-group *node* processes the whole domain in its
		// own order, split among that node's workers.
		byNode := map[int][]*worker{}
		var nodes []int
		for _, w := range e.workers {
			if len(byNode[w.core.Node]) == 0 {
				nodes = append(nodes, w.core.Node)
			}
			byNode[w.core.Node] = append(byNode[w.core.Node], w)
		}
		sort.Ints(nodes)
		for _, node := range nodes {
			ws := byNode[node]
			perm := e.epochOrder(domain)
			for i, item := range perm {
				w := ws[i%len(ws)]
				w.items = append(w.items, item)
			}
		}
	case Importance:
		// Each *node* samples its quota (Appendix C.4: a fraction of
		// the dataset per epoch; at fraction 1 the work matches
		// FullReplication), split among the node's workers.
		m := int(e.plan.ImportanceFraction * float64(domain))
		if m < 1 {
			m = 1
		}
		byNode := map[int][]*worker{}
		var nodes []int
		for _, w := range e.workers {
			if len(byNode[w.core.Node]) == 0 {
				nodes = append(nodes, w.core.Node)
			}
			byNode[w.core.Node] = append(byNode[w.core.Node], w)
		}
		sort.Ints(nodes)
		for _, node := range nodes {
			ws := byNode[node]
			for k := 0; k < m; k++ {
				ws[k%len(ws)].items = append(ws[k%len(ws)].items, e.sampleLeverage())
			}
		}
	}
}

// epochOrder returns this epoch's traversal order over the item
// domain: a fresh random permutation normally, the identity order under
// Plan.FixedOrder. The fixed order draws nothing from the engine
// generator, so a FixedOrder engine's RNG position stays wherever
// restore (or construction) put it — the invariant that lets the
// cluster coordinator compare sharded runs against a union run bitwise.
func (e *Engine) epochOrder(domain int) []int {
	if !e.plan.FixedOrder {
		return e.rng.Perm(domain)
	}
	ord := make([]int, domain)
	for i := range ord {
		ord[i] = i
	}
	return ord
}

// sampleLeverage draws one row index with probability proportional to
// its leverage score.
func (e *Engine) sampleLeverage() int {
	total := e.levCum[len(e.levCum)-1]
	u := e.rng.Float64() * total
	lo, hi := 0, len(e.levCum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if e.levCum[mid+1] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// RunResult summarises a convergence run.
type RunResult struct {
	// Converged reports whether the loss target was reached.
	Converged bool
	// Epochs is the number of epochs executed.
	Epochs int
	// Time is the cumulative simulated time.
	Time time.Duration
	// FinalLoss is the loss after the last epoch.
	FinalLoss float64
	// History holds every epoch's result in order.
	History []EpochResult
}

// RunToLoss runs epochs until the combined-state loss drops to target
// or maxEpochs is reached. It works identically on both executors.
func (e *Engine) RunToLoss(target float64, maxEpochs int) RunResult {
	res, _ := e.RunToLossCtx(context.Background(), target, maxEpochs)
	return res
}

// RunToLossCtx is RunToLoss with cooperative cancellation; on
// cancellation it returns the results accumulated so far plus ctx's
// error.
func (e *Engine) RunToLossCtx(ctx context.Context, target float64, maxEpochs int) (RunResult, error) {
	var res RunResult
	for i := 0; i < maxEpochs; i++ {
		er, err := e.RunEpochCtx(ctx)
		if err != nil {
			return res, err
		}
		res.History = append(res.History, er)
		res.Epochs = er.Epoch
		res.Time = er.CumTime
		res.FinalLoss = er.Loss
		if er.Loss <= target {
			res.Converged = true
			break
		}
	}
	return res, nil
}

// RunEpochs runs exactly n epochs and returns their results.
func (e *Engine) RunEpochs(n int) []EpochResult {
	out := make([]EpochResult, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, e.RunEpoch())
	}
	return out
}
