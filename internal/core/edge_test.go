package core

import (
	"testing"

	"dimmwitted/internal/data"
	"dimmwitted/internal/mat"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

func TestFewerWorkersThanNodes(t *testing.T) {
	// PerNode with one worker must degenerate to a single replica.
	e := mustEngine(t, model.NewSVM(), data.Reuters(),
		Plan{ModelRep: PerNode, Workers: 1, Machine: numa.Local8})
	if len(e.replicas) != 1 {
		t.Errorf("1 worker produced %d replicas", len(e.replicas))
	}
	er := e.RunEpoch()
	if er.Steps != data.Reuters().Rows() {
		t.Errorf("steps = %d", er.Steps)
	}
}

func TestChunkSizeOne(t *testing.T) {
	e := mustEngine(t, model.NewSVM(), data.Reuters(),
		Plan{ModelRep: PerMachine, ChunkSize: 1})
	if e.RunEpoch().Steps != 800 {
		t.Error("chunk size 1 lost steps")
	}
}

func TestSyncRoundsDisabled(t *testing.T) {
	// Negative SyncRounds must disable mid-epoch averaging; the run
	// still converges via end-of-epoch combination.
	e := mustEngine(t, model.NewSVM(), data.Reuters(),
		Plan{ModelRep: PerNode, SyncRounds: -1})
	init := e.Loss()
	e.RunEpochs(10)
	if e.Loss() >= init/2 {
		t.Errorf("no-mid-sync run failed to converge: %v -> %v", init, e.Loss())
	}
}

func TestSyncIntervalAffectsBackgroundTraffic(t *testing.T) {
	// More frequent averaging means more background QPI traffic.
	traffic := func(rounds int) int64 {
		e := mustEngine(t, model.NewSVM(), data.RCV1(),
			Plan{ModelRep: PerNode, DataRep: Sharding, SyncRounds: rounds})
		e.RunEpoch()
		return e.Counters().QPIWords
	}
	frequent, rare := traffic(0), traffic(16)
	if frequent <= rare {
		t.Errorf("every-round sync QPI (%d) not above every-16 (%d)", frequent, rare)
	}
}

func TestDenseStorageColumnAccess(t *testing.T) {
	// Dense storage charges full column height per column step.
	ds := data.MusicRegression()
	spec := model.NewLS()
	dense := mustEngine(t, spec, ds, Plan{Access: model.ColWise, ModelRep: PerMachine, DenseStorage: true}).RunEpoch()
	sparse := mustEngine(t, spec, ds, Plan{Access: model.ColWise, ModelRep: PerMachine}).RunEpoch()
	// Music is fully dense, so dense column storage (1 word/element)
	// should beat CSC (1.5 words/element).
	if dense.SimTime >= sparse.SimTime {
		t.Errorf("dense col storage (%v) not faster than CSC (%v) on dense data", dense.SimTime, sparse.SimTime)
	}
}

func TestAggregateMultiEpochStaysExact(t *testing.T) {
	// Aggregates restart each epoch: the sum must stay exact across
	// epochs rather than compounding.
	ds := data.ParallelSum(600, 4)
	e := mustEngine(t, model.NewParallelSum(), ds, Plan{ModelRep: PerNode, DataRep: Sharding})
	for i := 0; i < 3; i++ {
		e.RunEpoch()
		if got := e.Model()[0]; got != 2400 {
			t.Fatalf("epoch %d sum = %v, want 2400", i+1, got)
		}
	}
}

func TestCountersAccumulateAcrossEpochs(t *testing.T) {
	e := mustEngine(t, model.NewSVM(), data.Reuters(), Plan{ModelRep: PerNode})
	e.RunEpoch()
	one := e.Counters().ReadWords
	e.RunEpoch()
	two := e.Counters().ReadWords
	if two <= one {
		t.Errorf("counters not accumulating: %d then %d", one, two)
	}
	if e.Stats().DataWords <= 0 {
		t.Error("stats not accumulated")
	}
}

func TestParallelExecutorDataReplication(t *testing.T) {
	// The parallel executor reuses the engine's shared work partition,
	// so every data-replication strategy runs under real goroutines.
	ds := data.Reuters()
	spec := model.NewSVM()
	init := spec.Loss(ds, spec.NewReplica(ds).X)
	for _, dr := range []DataReplication{Sharding, FullReplication, Importance} {
		e := mustEngine(t, spec, ds, Plan{
			Executor: ExecParallel, ModelRep: PerNode, DataRep: dr,
			Workers: 4, ChunkSize: 4, ImportanceFraction: 1,
		})
		var loss float64
		for i := 0; i < 6; i++ {
			loss = e.RunEpoch().Loss
		}
		if loss >= init/2 {
			t.Errorf("%v: parallel loss %v vs init %v", dr, loss, init)
		}
	}
}

func TestParallelExecutorDefaultChunk(t *testing.T) {
	// ChunkSize 0 normalizes to a sane flush granularity.
	e := mustEngine(t, model.NewSVM(), data.Reuters(), Plan{Executor: ExecParallel, Workers: 2})
	if e.RunEpoch().Steps != data.Reuters().Rows() {
		t.Error("parallel sharding epoch did not cover every row")
	}
}

func TestLPStartsFeasible(t *testing.T) {
	// The LP engine starts from the all-ones cover: loss decreases
	// monotonically-ish from a feasible point rather than blowing up.
	e := mustEngine(t, model.NewLP(), data.AmazonLP(), Plan{Access: model.ColWise, ModelRep: PerMachine})
	first := e.RunEpoch().Loss
	tenth := e.RunEpochs(9)[8].Loss
	if tenth >= first {
		t.Errorf("LP loss not decreasing: %v -> %v", first, tenth)
	}
}

func TestEngineStatsAccessors(t *testing.T) {
	e := mustEngine(t, model.NewSVM(), data.Reuters(), Plan{})
	if e.Epoch() != 0 || e.SimTime() != 0 {
		t.Error("fresh engine has state")
	}
	er := e.RunEpoch()
	if e.Epoch() != 1 || e.SimTime() != er.SimTime {
		t.Error("accessors out of sync")
	}
	if got := e.Plan().Workers; got != numa.Local2.TotalCores() {
		t.Errorf("plan accessor workers = %d", got)
	}
}

func TestProbeStatsColumnOnTinyDataset(t *testing.T) {
	// Probe must not panic when the domain is smaller than the sample.
	b := mat.NewBuilder(2)
	b.AddRow([]int32{0}, []float64{1})
	ds := &data.Dataset{Name: "tiny", A: b.Build(), Labels: []float64{1}}
	st := ProbeStats(model.NewSVM(), ds, model.ColToRow, 64)
	if st.ModelWrites != 1 {
		t.Errorf("tiny probe writes = %d", st.ModelWrites)
	}
}

func TestEffectiveWordsBounds(t *testing.T) {
	ds := data.RCV1()
	eff := effectiveModelWords(ds, model.RowWise, ds.Cols())
	if eff <= 1 || eff > float64(ds.Cols()) {
		t.Errorf("effective words %v outside (1, d]", eff)
	}
	// Column access is uniform: effective size is the dimension.
	if got := effectiveModelWords(ds, model.ColWise, ds.Cols()); got != float64(ds.Cols()) {
		t.Errorf("column effective words = %v, want %v", got, ds.Cols())
	}
	// Uniform dense data: effective size equals the dimension.
	music := data.Music()
	eff = effectiveModelWords(music, model.RowWise, music.Cols())
	if eff < 90 || eff > 91.5 {
		t.Errorf("dense effective words = %v, want ~91", eff)
	}
	aux := effectiveAuxWords(data.AmazonLP(), data.AmazonLP().Rows())
	if int(aux+0.5) != data.AmazonLP().Rows() {
		t.Errorf("uniform edge aux effective words = %v, want %d", aux, data.AmazonLP().Rows())
	}
}

func TestPaperCostDenseUpdate(t *testing.T) {
	// A dense-update spec (parallel sum) must be charged d*N row writes.
	ds := data.ParallelSum(100, 4)
	rowCost := PaperCost(model.NewParallelSum(), ds, model.RowWise, numa.Local2)
	sumN := float64(400)
	wantWrites := 4.0 * float64(4*100) // alpha * d * N
	if rowCost != sumN+wantWrites {
		t.Errorf("dense-update row cost = %v, want %v", rowCost, sumN+wantWrites)
	}
}
