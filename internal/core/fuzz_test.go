package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzSnapshotCodec checks the binary snapshot decoder never panics
// and that any snapshot it accepts is a fixed point: re-encoding and
// re-decoding reproduces it bit for bit. The seed corpus (testdata)
// carries real encoded snapshots from every workload family plus
// header-only and garbage prefixes.
func FuzzSnapshotCodec(f *testing.F) {
	f.Add(EncodeSnapshot(testSnapshot()))
	f.Add(EncodeSnapshot(Snapshot{Workload: WorkloadGLM, Spec: "svm", Dataset: "reuters", X: []float64{1, 2}}))
	f.Add(EncodeSnapshot(Snapshot{}))
	f.Add([]byte(snapMagic))
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		re := EncodeSnapshot(s)
		// Current-version CRC-valid inputs are exactly what the encoder
		// emits for the decoded value: one canonical encoding per
		// snapshot. Older versions necessarily re-encode as the current
		// one, so for them the check below (the re-encoding decodes to
		// the same value) is the whole invariant.
		if ver := binary.LittleEndian.Uint16(data[6:8]); ver == snapVersion && !bytes.Equal(re, data) {
			t.Fatalf("accepted input is not canonical:\n in: %x\nout: %x", data, re)
		}
		back, err := DecodeSnapshot(re)
		if err != nil {
			t.Fatalf("re-decoding own output: %v", err)
		}
		if back.Epoch != s.Epoch || back.Spec != s.Spec || len(back.X) != len(s.X) ||
			len(back.Priv) != len(s.Priv) || len(back.WorkerRNG) != len(s.WorkerRNG) {
			t.Fatal("round trip changed shape")
		}
		for i := range s.X {
			if math.Float64bits(back.X[i]) != math.Float64bits(s.X[i]) {
				t.Fatalf("round trip changed X[%d]", i)
			}
		}
	})
}
