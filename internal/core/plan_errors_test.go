package core

import (
	"strings"
	"testing"

	"dimmwitted/internal/model"
)

// TestInvalidKnobMessages pins the error text of every invalid plan
// knob: each message must name the knob and — where the knob is an
// enumeration — list the accepted values, so an API caller can fix the
// request from the error alone. Both validation paths (the GLM
// Plan.Validate and the engine's workload-generic validateCommon) are
// covered.
func TestInvalidKnobMessages(t *testing.T) {
	spec := model.NewSVM()
	base := Plan{}.Normalize(spec)

	cases := []struct {
		name   string
		mutate func(Plan) Plan
		want   []string
	}{
		{
			"model replication",
			func(p Plan) Plan { p.ModelRep = ModelReplication(42); return p },
			[]string{"unknown model replication", "PerCore, PerNode, PerMachine, or PerCluster"},
		},
		{
			"data replication",
			func(p Plan) Plan { p.DataRep = DataReplication(42); return p },
			[]string{"unknown data replication", "Sharding, FullReplication, or Importance"},
		},
		{
			"executor",
			func(p Plan) Plan { p.Executor = ExecutorKind(42); return p },
			[]string{"unknown executor", "simulated or parallel"},
		},
		{
			"workers",
			func(p Plan) Plan { p.Workers = -1; return p },
			[]string{"workers"},
		},
		{
			"importance fraction",
			func(p Plan) Plan { p.DataRep = Importance; p.ImportanceFraction = 1.5; return p },
			[]string{"importance fraction", "(0,1]"},
		},
		{
			"parallel column access",
			func(p Plan) Plan { p.Executor = ExecParallel; p.Access = model.ColToRow; return p },
			[]string{"parallel executor", "row-wise"},
		},
		{
			"chunk size",
			func(p Plan) Plan { p.ChunkSize = -3; return p },
			[]string{"chunk size", ">= 1, or 0 for the default"},
		},
		{
			"steal chunk",
			func(p Plan) Plan { p.StealChunk = -8; return p },
			[]string{"steal chunk", ">= 1, or 0 for the default"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.mutate(base)
			check := func(path string, err error) {
				if err == nil {
					t.Fatalf("%s accepted invalid %s", path, tc.name)
				}
				for _, want := range tc.want {
					if !strings.Contains(err.Error(), want) {
						t.Errorf("%s error %q does not mention %q", path, err, want)
					}
				}
			}
			check("Plan.Validate", p.Validate(spec))
			// The workload-generic path skips the GLM-only access check.
			if tc.name != "parallel column access" {
				check("validateCommon", p.validateCommon())
			}
		})
	}
}
