package core

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dimmwitted/internal/model"
	"dimmwitted/internal/trace"
	"dimmwitted/internal/vec"
)

// Executor drives one epoch's worker step loops. Everything around the
// loops — work partitioning (assignWork), replica grouping (worker →
// locality group), end-of-epoch Combine, step decay and EpochResult
// reporting — is shared engine code; an executor only decides how the
// assigned items actually execute and therefore how time is accounted
// (simulated cycles vs wall clock).
type Executor interface {
	// Kind identifies the backend.
	Kind() ExecutorKind
	// runEpoch consumes every worker's assigned item list at the
	// engine's current step size, leaving the updated state in the
	// engine's replicas for the shared combine. It returns the number
	// of steps executed and their summed traffic stats. A non-nil
	// error means ctx was cancelled mid-epoch: the replicas are
	// partially updated and the epoch must not be counted.
	runEpoch(ctx context.Context) (steps int, st model.Stats, err error)
}

// simExecutor is the deterministic simulated-NUMA backend: workers
// take turns under a round-robin interleaver at ChunkSize granularity,
// every access is charged to the cost simulator, and PerNode replicas
// are averaged mid-epoch by the asynchronous background worker. Its
// semantics are the figure-reproduction target and are unchanged by
// the workload refactor.
type simExecutor struct{ e *Engine }

// Kind implements Executor.
func (s *simExecutor) Kind() ExecutorKind { return ExecSimulated }

// runEpoch implements Executor. Cancellation is observed between
// interleaver rounds.
func (s *simExecutor) runEpoch(ctx context.Context) (int, model.Stats, error) {
	e := s.e
	// The whole interleaved step loop is one exec span; the mid-epoch
	// averaging worker records its own nested sync spans. Abandoned
	// (cancelled) epochs record nothing, matching the engine's epoch
	// accounting.
	var tExec time.Time
	if e.rec != nil {
		tExec = time.Now()
	}
	var st model.Stats
	steps := 0
	round := 0
	for {
		if err := ctx.Err(); err != nil {
			return steps, st, err
		}
		active := false
		for _, w := range e.workers {
			n := e.plan.ChunkSize
			for n > 0 && w.pos < len(w.items) {
				st.Add(e.executeStep(w, w.items[w.pos]))
				w.pos++
				steps++
				n--
			}
			if w.pos < len(w.items) {
				active = true
			}
		}
		if !active {
			break
		}
		round++
		if e.midEpochSyncDue(round) {
			e.averageReplicas(true)
		}
	}
	if e.rec != nil {
		e.rec.Record(trace.PhaseExec, e.epoch+1, -1, tExec, time.Now(), int64(steps))
	}
	return steps, st, nil
}

// parallelExecutor is the real-concurrency backend: a persistent pool
// of goroutines, spawned once at first use and parked on their feed
// channels between epochs, so an epoch costs one channel send per pool
// lane instead of a goroutine spawn. The pool is sized to the machine
// — min(logical workers, GOMAXPROCS) — and each lane services a
// contiguous band of the plan's logical workers, so a 12-worker plan
// on a 4-way host runs 4 goroutines multiplexing 3 worker queues each
// rather than oversubscribing the scheduler. Work is distributed by
// chunked stealing: each worker drains its own assigned queue in
// StealChunk runs claimed off an atomic cursor, then steals remaining
// chunks from co-workers on the same replica, so a straggler (or an
// idle lane-mate) no longer serializes the epoch barrier. Stealing
// never crosses replicas (a thief must flush to the victim's master /
// sample the victim's chain) and every unit runs exactly once — the
// cursor hands out disjoint ranges — which Gibbs' plain per-unit
// tallies and the exact aggregate combine both rely on.
//
// For ConcurrencyDelta workloads (GLM, NN) the pool runs the Hogwild!
// memory model: each locality group's replica is mirrored by a
// vec.Atomic master; workers train on private working copies and push
// accumulated deltas every ChunkSize steps with a fused single-pass
// flush — sparse (dirty coordinates only) when the workload declares
// per-unit coordinate sets, dense otherwise. For ConcurrencyShared
// workloads (Gibbs) workers step directly on the shared replica, whose
// Step is itself race-safe. Locality groups meet through the engine's
// shared end-of-epoch combine, exactly like the simulator; the
// simulated-cost machinery does not apply, so epochs are measured in
// wall-clock time and the PMU-style counters stay zero.
type parallelExecutor struct {
	e       *Engine
	delta   bool          // ConcurrencyDelta vs ConcurrencyShared
	masters []*vec.Atomic // one shared master per model replica (delta mode)
	// Per-worker private working copies and flush baselines, allocated
	// once and re-seeded from the masters every epoch: wall time is
	// this backend's measurement, so the epoch loop must not pay
	// per-epoch allocation and GC churn for worker state.
	locals []*WorkState
	bases  [][]float64
	// coords drives the sparse flush path (non-nil when the workload's
	// units have static coordinate sets): dirty accumulates each
	// worker's touched coordinates per chunk, seen is the membership
	// bitmap that dedups them.
	coords UnitCoordser
	dirty  [][]int32
	seen   [][]byte
	// Per-worker random sources for shared-mode steps (many goroutines
	// sampling on one chain cannot share the chain's generator). srcs
	// are the counting sources backing rngs, exposed to snapshots so a
	// restored engine's workers continue their exact streams.
	rngs []*rand.Rand
	srcs []*SeededSource

	// victims[w] lists the co-replica workers w may steal from, rotated
	// to start just past w so simultaneous thieves fan out instead of
	// all hammering the same victim's cursor.
	victims [][]int
	// lanes[g] is the band of logical workers pool goroutine g services
	// each epoch, in order; feeds[g] is its parked task channel.
	lanes   [][]*worker
	feeds   []chan *epochTask
	heads   []queueHead
	slots   []workerSlot
	started bool
	closed  bool
	wg      sync.WaitGroup
}

// epochTask is one epoch's marching orders for the parked pool: the
// epoch's step size and cancellation scope, plus the barrier every
// worker reports to once its share — own queue plus stolen chunks —
// is drained.
type epochTask struct {
	ctx     context.Context
	epoch   int
	step    float64
	barrier *sync.WaitGroup
}

// queueHead is one worker queue's claim cursor: how many of the
// worker's assigned items have been claimed, bumped atomically in
// StealChunk runs by the owner and its thieves. Padded to a cache line
// so concurrent claims against neighbouring queues never false-share.
type queueHead struct {
	n atomic.Int64
	_ [56]byte
}

// workerSlot is one worker's per-epoch result, written once at worker
// exit and padded so adjacent workers' writes never share a line.
type workerSlot struct {
	steps int
	stats model.Stats
	err   error
	_     [64]byte
}

// newParallelExecutor mirrors the engine's replica layout with atomic
// masters (delta mode) or allocates per-worker generators (shared
// mode). Worker goroutines spawn lazily at the first epoch.
func newParallelExecutor(e *Engine) *parallelExecutor {
	p := &parallelExecutor{e: e, delta: e.wl.Concurrency() == ConcurrencyDelta}
	n := len(e.workers)
	pool := runtime.GOMAXPROCS(0)
	if pool > n {
		pool = n
	}
	if pool < 1 {
		pool = 1
	}
	p.lanes = make([][]*worker, pool)
	p.feeds = make([]chan *epochTask, pool)
	for g := range p.lanes {
		lo, hi := g*n/pool, (g+1)*n/pool
		p.lanes[g] = e.workers[lo:hi]
		p.feeds[g] = make(chan *epochTask, 1)
	}
	p.heads = make([]queueHead, n)
	p.slots = make([]workerSlot, n)
	groups := map[int][]int{}
	for _, w := range e.workers {
		groups[w.repIdx] = append(groups[w.repIdx], w.id)
	}
	p.victims = make([][]int, n)
	for _, w := range e.workers {
		g := groups[w.repIdx]
		for i, id := range g {
			if id == w.id {
				p.victims[w.id] = append(append([]int(nil), g[i+1:]...), g[:i]...)
				break
			}
		}
	}

	if !p.delta {
		for _, w := range e.workers {
			src := NewSeededSource(e.plan.Seed + 1_000_000_007 + int64(w.id))
			p.srcs = append(p.srcs, src)
			p.rngs = append(p.rngs, rand.New(src))
		}
		return p
	}
	dim := len(e.global)
	for range e.replicas {
		p.masters = append(p.masters, vec.NewAtomic(dim))
	}
	for i := range e.workers {
		// Negative replica indices mark per-worker working copies.
		p.locals = append(p.locals, e.wl.NewReplica(-1-i, e.plan.Seed))
		p.bases = append(p.bases, make([]float64, dim))
	}
	if uc, ok := e.wl.(UnitCoordser); ok && uc.SparseUnits() {
		p.coords = uc
		p.dirty = make([][]int32, n)
		p.seen = make([][]byte, n)
		for i := range p.seen {
			p.seen[i] = make([]byte, dim)
		}
	}
	return p
}

// Kind implements Executor.
func (p *parallelExecutor) Kind() ExecutorKind { return ExecParallel }

// start spawns the persistent pool goroutines. Called once, from the
// engine goroutine, on the first epoch.
func (p *parallelExecutor) start() {
	p.started = true
	for g, lane := range p.lanes {
		p.wg.Add(1)
		go p.laneLoop(lane, p.feeds[g])
	}
}

// close drains the pool: the feed channels close, every parked worker
// goroutine exits, and close blocks until all have. Idempotent, and a
// no-op if no epoch ever ran. Must be called from the goroutine that
// runs epochs (the pool's single producer).
func (p *parallelExecutor) close() {
	if p.closed {
		return
	}
	p.closed = true
	if !p.started {
		return
	}
	for _, f := range p.feeds {
		close(f)
	}
	p.wg.Wait()
}

// laneLoop is one pool goroutine: park on the feed, run each logical
// worker in the lane's band in turn (lane-mates that finish early are
// drained by stealing, not by waiting), report to the barrier, park
// again. Exits when the feed closes.
func (p *parallelExecutor) laneLoop(lane []*worker, feed <-chan *epochTask) {
	defer p.wg.Done()
	for t := range feed {
		for _, w := range lane {
			if err := t.ctx.Err(); err != nil {
				// The epoch is already being abandoned; don't start the
				// remaining lane-mates, but mark them cancelled so the
				// collected slots carry the error no matter which worker
				// observed it first.
				p.slots[w.id].err = err
				continue
			}
			if p.delta {
				p.runDeltaWorker(w, t)
			} else {
				p.runSharedWorker(w, t)
			}
		}
		t.barrier.Done()
	}
}

// claim grabs the next unclaimed run of victim's items, at most chunk
// long; nil means the queue is drained. The atomic cursor hands out
// disjoint ranges, so a unit is executed exactly once no matter how
// many thieves race the owner.
func (p *parallelExecutor) claim(victim, chunk int) []int {
	items := p.e.workers[victim].items
	start := int(p.heads[victim].n.Add(int64(chunk))) - chunk
	if start >= len(items) {
		return nil
	}
	end := start + chunk
	if end > len(items) {
		end = len(items)
	}
	return items[start:end]
}

// runEpoch implements Executor: reset the claim cursors, wake the pool
// with one task send per lane, wait on the barrier, then collect the
// padded per-worker result slots. Engine-level phase boundaries are
// staged locally and committed only on success: an abandoned
// (cancelled) epoch records nothing, matching the engine's epoch
// accounting.
func (p *parallelExecutor) runEpoch(ctx context.Context) (int, model.Stats, error) {
	e := p.e
	if p.closed {
		return 0, model.Stats{}, fmt.Errorf("core: parallel executor is closed")
	}
	if !p.started {
		p.start()
	}
	epoch := e.epoch + 1
	traced := e.rec != nil
	var tSeed, tExec, tPool, tWait, tPublish time.Time
	if p.delta {
		if traced {
			tSeed = time.Now()
		}
		// Seed each master with its replica's current state (the
		// combined state of the previous epoch, or the workload's
		// initial state).
		for i, r := range e.replicas {
			p.masters[i].CopyFrom(r.X)
		}
	}
	if traced {
		tExec = time.Now()
	}
	for i := range p.heads {
		p.heads[i].n.Store(0)
	}
	for i := range p.slots {
		p.slots[i] = workerSlot{}
	}
	barrier := &sync.WaitGroup{}
	barrier.Add(len(p.feeds))
	task := &epochTask{ctx: ctx, epoch: epoch, step: e.step, barrier: barrier}
	for _, f := range p.feeds {
		f <- task
	}
	if traced {
		tPool = time.Now()
	}
	barrier.Wait()
	if traced {
		tWait = time.Now()
	}

	var st model.Stats
	steps := 0
	var err error
	for i := range p.slots {
		steps += p.slots[i].steps
		st.Add(p.slots[i].stats)
		if p.slots[i].err != nil {
			err = p.slots[i].err
		}
	}
	if p.delta {
		// Pull the masters back into the replicas so the shared combine
		// path sees what the pool produced.
		for i, r := range e.replicas {
			p.masters[i].Snapshot(r.X)
		}
	}
	if traced && err == nil {
		tPublish = time.Now()
		if p.delta {
			e.rec.Record(trace.PhaseSeed, epoch, -1, tSeed, tExec, 0)
		}
		e.rec.Record(trace.PhasePool, epoch, -1, tExec, tPool, 0)
		e.rec.Record(trace.PhaseExec, epoch, -1, tExec, tWait, int64(steps))
		if p.delta {
			e.rec.Record(trace.PhasePublish, epoch, -1, tWait, tPublish, 0)
		}
	}
	return steps, st, err
}

// runDeltaWorker is one worker's share of a delta-mode epoch:
// snapshot the master into the private working copy, claim and step
// chunks (own queue first, then co-replica victims), and push batched
// deltas with the fused flush every ChunkSize steps. Cancellation is
// observed between flushes, so an aborted worker leaves no unflushed
// local work behind.
func (p *parallelExecutor) runDeltaWorker(w *worker, t *epochTask) {
	e := p.e
	// wb is the worker's private span buffer (nil when tracing is
	// off): the loop and each flush are timed lock-free and merged by
	// the engine after the barrier.
	var wb *trace.WorkerBuf
	if e.rec != nil {
		wb = e.recBufs[w.id]
	}
	var tLoop, tFlush time.Time
	if wb != nil {
		tLoop = time.Now()
	}
	master := p.masters[w.repIdx]
	local, base := p.locals[w.id], p.bases[w.id]
	master.Snapshot(local.X)
	copy(base, local.X)

	sparse := p.coords != nil
	var dirty []int32
	var seen []byte
	if sparse {
		dirty, seen = p.dirty[w.id][:0], p.seen[w.id]
	}
	flush := func() {
		if wb != nil {
			tFlush = time.Now()
		}
		if sparse {
			master.FlushDeltaSparse(local.X, base, dirty)
			for _, j := range dirty {
				seen[j] = 0
			}
			dirty = dirty[:0]
		} else {
			master.FlushDelta(local.X, base)
		}
		if wb != nil {
			wb.Record(trace.PhaseFlush, t.epoch, tFlush, time.Now(), 0)
		}
	}

	// Steps and stats accumulate in goroutine-locals and land in the
	// worker's padded slot once at exit.
	slot := &p.slots[w.id]
	var st model.Stats
	steps := 0
	defer func() {
		if sparse {
			// A cancelled worker abandons its unflushed chunk: clear the
			// bitmap through the dirty list so the next epoch starts
			// clean.
			for _, j := range dirty {
				seen[j] = 0
			}
			p.dirty[w.id] = dirty[:0]
		}
		slot.steps = steps
		slot.stats = st
		if wb != nil {
			wb.Record(trace.PhaseWorker, t.epoch, tLoop, time.Now(), int64(steps))
		}
	}()

	flushEvery := e.plan.ChunkSize
	since := 0
	run := func(items []int) bool {
		for _, item := range items {
			if sparse {
				for _, j := range p.coords.UnitCoords(item) {
					if seen[j] == 0 {
						seen[j] = 1
						dirty = append(dirty, j)
					}
				}
			}
			st.Add(e.wl.Step(item, local, t.step, nil, nil))
			steps++
			since++
			if since >= flushEvery {
				flush()
				since = 0
				if err := t.ctx.Err(); err != nil {
					slot.err = err
					return false
				}
			}
		}
		return true
	}

	chunk := e.plan.StealChunk
	for {
		items := p.claim(w.id, chunk)
		if items == nil {
			break
		}
		if !run(items) {
			return
		}
	}
	var tSteal time.Time
	ownSteps := steps
	if wb != nil {
		tSteal = time.Now()
	}
	for _, v := range p.victims[w.id] {
		for {
			items := p.claim(v, chunk)
			if items == nil {
				break
			}
			if !run(items) {
				return
			}
		}
	}
	if wb != nil && steps > ownSteps {
		wb.Record(trace.PhaseSteal, t.epoch, tSteal, time.Now(), int64(steps-ownSteps))
	}
	flush()
}

// rngStates captures the shared-mode worker generators' stream
// positions for a snapshot; nil in delta mode, whose workers keep no
// persistent randomness.
func (p *parallelExecutor) rngStates() []RNGState {
	if p.srcs == nil {
		return nil
	}
	out := make([]RNGState, len(p.srcs))
	for i, s := range p.srcs {
		out[i] = s.State()
	}
	return out
}

// restoreRNGs repositions the shared-mode worker generators from a
// snapshot. A worker-count mismatch means the snapshot's plan differs
// from the engine's and exact resume is impossible.
func (p *parallelExecutor) restoreRNGs(states []RNGState) error {
	if len(states) != len(p.srcs) {
		return fmt.Errorf("core: snapshot has %d worker generators, engine has %d", len(states), len(p.srcs))
	}
	for i, st := range states {
		p.srcs[i].Restore(st)
	}
	return nil
}

// sharedCancelStride is how many shared-mode steps run between
// cancellation checks — frequent enough to abort a parallel Gibbs
// epoch promptly, rare enough to stay out of the sampling hot loop.
const sharedCancelStride = 64

// runSharedWorker is one worker's share of a shared-state epoch: claim
// and step chunks (own queue first, then co-replica victims) directly
// on the locality group's replica with a private generator. The
// workload's Step must be race-safe for concurrent same-replica callers
// (Gibbs uses atomic assignment loads/stores, and the claim cursor
// guarantees each variable is sampled exactly once per sweep).
func (p *parallelExecutor) runSharedWorker(w *worker, t *epochTask) {
	e := p.e
	// wb is the worker's private span buffer (nil when tracing is off);
	// the whole sampling loop is one worker span.
	var wb *trace.WorkerBuf
	if e.rec != nil {
		wb = e.recBufs[w.id]
	}
	var tLoop time.Time
	if wb != nil {
		tLoop = time.Now()
	}
	ws := e.replicas[w.repIdx]
	rng := p.rngs[w.id]
	slot := &p.slots[w.id]
	var st model.Stats
	steps := 0
	defer func() {
		slot.steps = steps
		slot.stats = st
		if wb != nil {
			wb.Record(trace.PhaseWorker, t.epoch, tLoop, time.Now(), int64(steps))
		}
	}()
	run := func(items []int) bool {
		for _, item := range items {
			st.Add(e.wl.Step(item, ws, t.step, rng, nil))
			steps++
			if steps%sharedCancelStride == 0 {
				if err := t.ctx.Err(); err != nil {
					slot.err = err
					return false
				}
			}
		}
		return true
	}
	chunk := e.plan.StealChunk
	for {
		items := p.claim(w.id, chunk)
		if items == nil {
			break
		}
		if !run(items) {
			return
		}
	}
	var tSteal time.Time
	ownSteps := steps
	if wb != nil {
		tSteal = time.Now()
	}
	for _, v := range p.victims[w.id] {
		for {
			items := p.claim(v, chunk)
			if items == nil {
				break
			}
			if !run(items) {
				return
			}
		}
	}
	if wb != nil && steps > ownSteps {
		wb.Record(trace.PhaseSteal, t.epoch, tSteal, time.Now(), int64(steps-ownSteps))
	}
}
