package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dimmwitted/internal/model"
	"dimmwitted/internal/trace"
	"dimmwitted/internal/vec"
)

// Executor drives one epoch's worker step loops. Everything around the
// loops — work partitioning (assignWork), replica grouping (worker →
// locality group), end-of-epoch Combine, step decay and EpochResult
// reporting — is shared engine code; an executor only decides how the
// assigned items actually execute and therefore how time is accounted
// (simulated cycles vs wall clock).
type Executor interface {
	// Kind identifies the backend.
	Kind() ExecutorKind
	// runEpoch consumes every worker's assigned item list at the
	// engine's current step size, leaving the updated state in the
	// engine's replicas for the shared combine. It returns the number
	// of steps executed and their summed traffic stats. A non-nil
	// error means ctx was cancelled mid-epoch: the replicas are
	// partially updated and the epoch must not be counted.
	runEpoch(ctx context.Context) (steps int, st model.Stats, err error)
}

// simExecutor is the deterministic simulated-NUMA backend: workers
// take turns under a round-robin interleaver at ChunkSize granularity,
// every access is charged to the cost simulator, and PerNode replicas
// are averaged mid-epoch by the asynchronous background worker. Its
// semantics are the figure-reproduction target and are unchanged by
// the workload refactor.
type simExecutor struct{ e *Engine }

// Kind implements Executor.
func (s *simExecutor) Kind() ExecutorKind { return ExecSimulated }

// runEpoch implements Executor. Cancellation is observed between
// interleaver rounds.
func (s *simExecutor) runEpoch(ctx context.Context) (int, model.Stats, error) {
	e := s.e
	// The whole interleaved step loop is one exec span; the mid-epoch
	// averaging worker records its own nested sync spans. Abandoned
	// (cancelled) epochs record nothing, matching the engine's epoch
	// accounting.
	var tExec time.Time
	if e.rec != nil {
		tExec = time.Now()
	}
	var st model.Stats
	steps := 0
	round := 0
	for {
		if err := ctx.Err(); err != nil {
			return steps, st, err
		}
		active := false
		for _, w := range e.workers {
			n := e.plan.ChunkSize
			for n > 0 && w.pos < len(w.items) {
				st.Add(e.executeStep(w, w.items[w.pos]))
				w.pos++
				steps++
				n--
			}
			if w.pos < len(w.items) {
				active = true
			}
		}
		if !active {
			break
		}
		round++
		if e.midEpochSyncDue(round) {
			e.averageReplicas(true)
		}
	}
	if e.rec != nil {
		e.rec.Record(trace.PhaseExec, e.epoch+1, -1, tExec, time.Now(), int64(steps))
	}
	return steps, st, nil
}

// parallelExecutor is the real-concurrency backend: one goroutine per
// worker. For ConcurrencyDelta workloads (GLM, NN) it runs the
// Hogwild! memory model: each locality group's replica is mirrored by
// a vec.Atomic master; workers train on private working copies and
// push accumulated deltas to their master every ChunkSize steps (the
// paper's "batch writes across sockets" technique, race-detector
// clean). For ConcurrencyShared workloads (Gibbs) workers step
// directly on the shared replica, whose Step is itself race-safe.
// Locality groups meet through the engine's shared end-of-epoch
// combine, exactly like the simulator; the simulated-cost machinery
// does not apply, so epochs are measured in wall-clock time and the
// PMU-style counters stay zero.
type parallelExecutor struct {
	e       *Engine
	masters []*vec.Atomic // one shared master per model replica (delta mode)
	// Per-worker private working copies and flush baselines, allocated
	// once and re-seeded from the masters every epoch: wall time is
	// this backend's measurement, so the epoch loop must not pay
	// per-epoch allocation and GC churn for worker state.
	locals []*WorkState
	bases  [][]float64
	// Per-worker random sources for shared-mode steps (many goroutines
	// sampling on one chain cannot share the chain's generator). srcs
	// are the counting sources backing rngs, exposed to snapshots so a
	// restored engine's workers continue their exact streams.
	rngs []*rand.Rand
	srcs []*SeededSource
}

// newParallelExecutor mirrors the engine's replica layout with atomic
// masters (delta mode) or allocates per-worker generators (shared
// mode).
func newParallelExecutor(e *Engine) *parallelExecutor {
	p := &parallelExecutor{e: e}
	if e.wl.Concurrency() == ConcurrencyShared {
		for _, w := range e.workers {
			src := NewSeededSource(e.plan.Seed + 1_000_000_007 + int64(w.id))
			p.srcs = append(p.srcs, src)
			p.rngs = append(p.rngs, rand.New(src))
		}
		return p
	}
	dim := len(e.global)
	for range e.replicas {
		p.masters = append(p.masters, vec.NewAtomic(dim))
	}
	for i := range e.workers {
		// Negative replica indices mark per-worker working copies.
		p.locals = append(p.locals, e.wl.NewReplica(-1-i, e.plan.Seed))
		p.bases = append(p.bases, make([]float64, dim))
	}
	return p
}

// Kind implements Executor.
func (p *parallelExecutor) Kind() ExecutorKind { return ExecParallel }

// runEpoch implements Executor.
func (p *parallelExecutor) runEpoch(ctx context.Context) (int, model.Stats, error) {
	if p.e.wl.Concurrency() == ConcurrencyShared {
		return p.runShared(ctx)
	}
	return p.runDelta(ctx)
}

// runDelta is the delta-flush epoch loop. Cancellation is observed
// between flushes, so an aborted worker leaves no unflushed local work
// behind.
func (p *parallelExecutor) runDelta(ctx context.Context) (int, model.Stats, error) {
	e := p.e
	epoch := e.epoch + 1
	traced := e.rec != nil
	// Engine-level phase boundaries are staged locally and committed
	// only on success: an abandoned (cancelled) epoch records nothing,
	// matching the engine's epoch accounting.
	var tSeed, tExec, tWait, tPublish time.Time
	if traced {
		tSeed = time.Now()
	}
	// Seed each master with its replica's current state (the combined
	// state of the previous epoch, or the workload's initial state).
	for i, r := range e.replicas {
		p.masters[i].CopyFrom(r.X)
	}
	if traced {
		tExec = time.Now()
	}
	flushEvery := e.plan.ChunkSize
	step := e.step

	perSteps := make([]int, len(e.workers))
	perStats := make([]model.Stats, len(e.workers))
	perErr := make([]error, len(e.workers))
	var wg sync.WaitGroup
	for _, w := range e.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			// wb is the worker's private span buffer (nil when tracing
			// is off): the loop and each flush are timed lock-free and
			// merged by the engine after the barrier.
			var wb *trace.WorkerBuf
			if traced {
				wb = e.recBufs[w.id]
			}
			var tLoop, tFlush time.Time
			if wb != nil {
				tLoop = time.Now()
			}
			master := p.masters[w.repIdx]
			local, base := p.locals[w.id], p.bases[w.id]
			master.Snapshot(local.X)
			copy(base, local.X)
			since := 0
			flush := func() {
				if wb != nil {
					tFlush = time.Now()
				}
				master.AddDelta(local.X, base)
				master.Snapshot(local.X)
				copy(base, local.X)
				since = 0
				if wb != nil {
					wb.Record(trace.PhaseFlush, epoch, tFlush, time.Now(), 0)
				}
			}
			// Steps and stats accumulate in goroutine-locals and are
			// stored into the shared slices once at exit — per-step
			// writes to adjacent slice elements would false-share cache
			// lines across cores in the measured hot loop.
			var st model.Stats
			steps := 0
			defer func() {
				perSteps[w.id] = steps
				perStats[w.id] = st
				if wb != nil {
					wb.Record(trace.PhaseWorker, epoch, tLoop, time.Now(), int64(steps))
				}
			}()
			for _, item := range w.items {
				st.Add(e.wl.Step(item, local, step, nil, nil))
				steps++
				since++
				if since >= flushEvery {
					flush()
					if err := ctx.Err(); err != nil {
						perErr[w.id] = err
						return
					}
				}
			}
			flush()
		}(w)
	}
	wg.Wait()
	if traced {
		tWait = time.Now()
	}

	var st model.Stats
	steps := 0
	var err error
	for i := range e.workers {
		steps += perSteps[i]
		st.Add(perStats[i])
		if perErr[i] != nil {
			err = perErr[i]
		}
	}
	// Pull the masters back into the replicas so the shared combine
	// path sees what the goroutines produced.
	for i, r := range e.replicas {
		p.masters[i].Snapshot(r.X)
	}
	if traced && err == nil {
		tPublish = time.Now()
		e.rec.Record(trace.PhaseSeed, epoch, -1, tSeed, tExec, 0)
		e.rec.Record(trace.PhaseExec, epoch, -1, tExec, tWait, int64(steps))
		e.rec.Record(trace.PhasePublish, epoch, -1, tWait, tPublish, 0)
	}
	return steps, st, err
}

// rngStates captures the shared-mode worker generators' stream
// positions for a snapshot; nil in delta mode, whose workers keep no
// persistent randomness.
func (p *parallelExecutor) rngStates() []RNGState {
	if p.srcs == nil {
		return nil
	}
	out := make([]RNGState, len(p.srcs))
	for i, s := range p.srcs {
		out[i] = s.State()
	}
	return out
}

// restoreRNGs repositions the shared-mode worker generators from a
// snapshot. A worker-count mismatch means the snapshot's plan differs
// from the engine's and exact resume is impossible.
func (p *parallelExecutor) restoreRNGs(states []RNGState) error {
	if len(states) != len(p.srcs) {
		return fmt.Errorf("core: snapshot has %d worker generators, engine has %d", len(states), len(p.srcs))
	}
	for i, st := range states {
		p.srcs[i].Restore(st)
	}
	return nil
}

// sharedCancelStride is how many shared-mode steps run between
// cancellation checks — frequent enough to abort a parallel Gibbs
// epoch promptly, rare enough to stay out of the sampling hot loop.
const sharedCancelStride = 64

// runShared is the shared-state epoch loop: every worker steps
// directly on its locality group's replica with a private generator.
// The workload's Step must be race-safe for concurrent same-replica
// callers (Gibbs uses atomic assignment loads/stores, and each worker
// owns a disjoint variable partition).
func (p *parallelExecutor) runShared(ctx context.Context) (int, model.Stats, error) {
	e := p.e
	epoch := e.epoch + 1
	traced := e.rec != nil
	var tExec, tWait time.Time
	if traced {
		tExec = time.Now()
	}
	step := e.step
	perSteps := make([]int, len(e.workers))
	perStats := make([]model.Stats, len(e.workers))
	perErr := make([]error, len(e.workers))
	var wg sync.WaitGroup
	for _, w := range e.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			// wb is the worker's private span buffer (nil when tracing
			// is off); the whole sampling loop is one worker span.
			var wb *trace.WorkerBuf
			if traced {
				wb = e.recBufs[w.id]
			}
			var tLoop time.Time
			if wb != nil {
				tLoop = time.Now()
			}
			ws := e.replicas[w.repIdx]
			rng := p.rngs[w.id]
			var st model.Stats
			steps := 0
			defer func() {
				perSteps[w.id] = steps
				perStats[w.id] = st
				if wb != nil {
					wb.Record(trace.PhaseWorker, epoch, tLoop, time.Now(), int64(steps))
				}
			}()
			for _, item := range w.items {
				st.Add(e.wl.Step(item, ws, step, rng, nil))
				steps++
				if steps%sharedCancelStride == 0 {
					if err := ctx.Err(); err != nil {
						perErr[w.id] = err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if traced {
		tWait = time.Now()
	}

	var st model.Stats
	steps := 0
	var err error
	for i := range e.workers {
		steps += perSteps[i]
		st.Add(perStats[i])
		if perErr[i] != nil {
			err = perErr[i]
		}
	}
	if traced && err == nil {
		e.rec.Record(trace.PhaseExec, epoch, -1, tExec, tWait, int64(steps))
	}
	return steps, st, err
}
