package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

// The versioned binary snapshot codec. A serialized snapshot is
//
//	[0:6]  magic "dwsnap"
//	[6:8]  uint16 codec version (little-endian)
//	[8:n]  payload (fixed-width little-endian fields, see encode below)
//	[n:+4] uint32 IEEE CRC-32 of bytes [0:n]
//
// Versioning rules (see DESIGN.md "Durability"): the magic and version
// header never change; a layout change bumps the version, the decoder
// accepts every version it has code for and rejects the rest by name,
// and new fields are appended to the payload behind a version check so
// older snapshots keep decoding. The CRC covers header and payload, so
// torn or bit-rotted files fail loudly instead of restoring garbage.

// snapMagic identifies a serialized snapshot.
const snapMagic = "dwsnap"

// snapVersion is the current codec version. Version history:
//
//	1  initial layout
//	2  appends Plan.StealChunk (i64) after the replica states
//	3  appends DataRows (i64) and DataVersion (u64) — the streamed-
//	   dataset ingest high-water mark — after the version-2 fields
//	4  appends Plan.FixedOrder (u8) — the cluster coordinator's
//	   deterministic-traversal knob — after the version-3 fields
const snapVersion = 4

// maxSnapshotSlice caps decoded slice lengths (model vectors, replica
// blobs) so a corrupt or adversarial length prefix cannot force a huge
// allocation before the CRC check would have caught it.
const maxSnapshotSlice = 1 << 28

// MaxRNGDraws bounds an RNGState's position on both sides of the
// codec. Restore replays the stream in O(Draws), so an unbounded value
// in a crafted file (CRC-32 is integrity, not authentication) would
// hang restore; the cap keeps a hostile worst case to minutes while
// sitting far above any bundled workload (draws grow with epochs ×
// work units). Snapshot capture enforces the same bound via
// CapRNGState — a generator past it is replaced by a freshly derived
// one rather than written as a position no decoder will accept —
// so every checkpoint the store accepts is restorable.
const MaxRNGDraws = 1 << 36

// CapRNGState returns st unchanged while its position is replayable,
// and otherwise a fresh derived generator state. Past the bound exact
// stream continuation is forfeited either way (the decoder rejects the
// position); a remixed seed keeps the restored run statistically
// independent of the stream already consumed, which is the right
// degradation for sampling and SGD alike.
func CapRNGState(st RNGState) RNGState {
	if st.Draws <= MaxRNGDraws {
		return st
	}
	// splitmix64-style remix of (seed, draws) for an uncorrelated seed.
	z := uint64(st.Seed) ^ (st.Draws * 0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	seed := int64(z ^ (z >> 31))
	if seed == 0 {
		seed = 1
	}
	return RNGState{Seed: seed, Draws: 0}
}

// encBuf accumulates the encoding.
type encBuf struct{ b []byte }

func (e *encBuf) u8(v uint8)      { e.b = append(e.b, v) }
func (e *encBuf) u16(v uint16)    { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *encBuf) u32(v uint32)    { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *encBuf) u64(v uint64)    { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *encBuf) i64(v int64)     { e.u64(uint64(v)) }
func (e *encBuf) f64(v float64)   { e.u64(math.Float64bits(v)) }
func (e *encBuf) str(s string)    { e.u32(uint32(len(s))); e.b = append(e.b, s...) }
func (e *encBuf) bytes(b []byte)  { e.u32(uint32(len(b))); e.b = append(e.b, b...) }
func (e *encBuf) rng(st RNGState) { e.i64(st.Seed); e.u64(st.Draws) }

// decBuf consumes a decoding with a sticky error.
type decBuf struct {
	b   []byte
	off int
	err error
}

func (d *decBuf) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("core: snapshot decode: "+format, args...)
	}
}

func (d *decBuf) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.b)-d.off {
		d.fail("truncated at offset %d (need %d of %d remaining bytes)", d.off, n, len(d.b)-d.off)
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *decBuf) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decBuf) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *decBuf) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decBuf) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decBuf) i64() int64   { return int64(d.u64()) }
func (d *decBuf) f64() float64 { return math.Float64frombits(d.u64()) }

// sliceLen reads a length prefix and validates it against both the
// global cap and the bytes actually remaining (at elemSize bytes per
// element), so a lying prefix fails before allocation.
func (d *decBuf) sliceLen(what string, elemSize int) int {
	n := int(d.u32())
	if d.err != nil {
		return 0
	}
	if n > maxSnapshotSlice || n*elemSize > len(d.b)-d.off {
		d.fail("%s length %d exceeds remaining input", what, n)
		return 0
	}
	return n
}

func (d *decBuf) str() string {
	n := d.sliceLen("string", 1)
	return string(d.take(n))
}

func (d *decBuf) rng() RNGState {
	st := RNGState{Seed: d.i64(), Draws: d.u64()}
	if st.Draws > MaxRNGDraws {
		d.fail("generator position %d exceeds the replay bound %d", st.Draws, uint64(MaxRNGDraws))
	}
	return st
}

// EncodeSnapshot serializes a snapshot in the versioned binary format
// with a CRC-32 trailer.
func EncodeSnapshot(s Snapshot) []byte {
	e := &encBuf{b: make([]byte, 0, 64+8*len(s.X))}
	e.b = append(e.b, snapMagic...)
	e.u16(snapVersion)

	e.u8(uint8(s.Workload))
	e.str(s.Spec)
	e.str(s.Dataset)
	e.i64(int64(s.Epoch))
	e.f64(s.Loss)
	e.i64(int64(s.SimTime))
	e.i64(int64(s.WallTime))
	e.f64(s.Step)

	p := s.Plan
	e.u8(uint8(p.Access))
	e.u8(uint8(p.ModelRep))
	e.u8(uint8(p.DataRep))
	e.u8(uint8(p.Executor))
	e.u8(uint8(p.Placement))
	if p.DenseStorage {
		e.u8(1)
	} else {
		e.u8(0)
	}
	e.str(p.Machine.Name)
	e.i64(int64(p.Machine.Nodes))
	e.i64(int64(p.Machine.CoresPerNode))
	e.i64(int64(p.Machine.RAMPerNodeGB))
	e.f64(p.Machine.ClockGHz)
	e.i64(int64(p.Machine.LLCMB))
	e.i64(int64(p.Workers))
	e.f64(p.Step)
	e.f64(p.StepDecay)
	e.i64(int64(p.ChunkSize))
	e.i64(int64(p.SyncRounds))
	e.f64(p.ImportanceFraction)
	e.i64(p.Seed)
	e.f64(p.StepOverheadCycles)
	e.f64(p.ElementOverheadCycles)
	e.f64(p.EpochOverheadCycles)
	e.f64(p.ComputeScale)

	e.rng(s.EngineRNG)
	e.u32(uint32(len(s.WorkerRNG)))
	for _, st := range s.WorkerRNG {
		e.rng(st)
	}
	e.u32(uint32(len(s.X)))
	for _, x := range s.X {
		e.f64(x)
	}
	e.u32(uint32(len(s.Priv)))
	for _, blob := range s.Priv {
		e.bytes(blob)
	}

	// Versioned fields append after the complete version-1 payload, so
	// older files — which simply end earlier — keep decoding.
	e.i64(int64(p.StealChunk))
	e.i64(int64(s.DataRows))
	e.u64(s.DataVersion)
	if p.FixedOrder {
		e.u8(1)
	} else {
		e.u8(0)
	}

	e.u32(crc32.ChecksumIEEE(e.b))
	return e.b
}

// DecodeSnapshot parses a serialized snapshot, verifying the magic,
// version and CRC. It accepts every codec version the current build
// understands and rejects the rest, so a newer writer's files fail
// loudly instead of restoring a misread state.
func DecodeSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if len(data) < len(snapMagic)+2+4 {
		return s, fmt.Errorf("core: snapshot decode: %d bytes is shorter than the header", len(data))
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return s, fmt.Errorf("core: snapshot decode: bad magic %q", data[:len(snapMagic)])
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.ChecksumIEEE(body); got != want {
		return s, fmt.Errorf("core: snapshot decode: CRC mismatch (stored %08x, computed %08x)", got, want)
	}

	d := &decBuf{b: body, off: len(snapMagic)}
	ver := d.u16()
	if ver < 1 || ver > snapVersion {
		return s, fmt.Errorf("core: snapshot decode: version %d, this build reads versions 1 through %d", ver, snapVersion)
	}

	s.Workload = WorkloadKind(d.u8())
	s.Spec = d.str()
	s.Dataset = d.str()
	s.Epoch = int(d.i64())
	s.Loss = d.f64()
	s.SimTime = time.Duration(d.i64())
	s.WallTime = time.Duration(d.i64())
	s.Step = d.f64()

	var p Plan
	p.Access = model.Access(d.u8())
	p.ModelRep = ModelReplication(d.u8())
	p.DataRep = DataReplication(d.u8())
	p.Executor = ExecutorKind(d.u8())
	p.Placement = Placement(d.u8())
	p.DenseStorage = d.u8() != 0
	p.Machine = numa.Topology{
		Name:         d.str(),
		Nodes:        int(d.i64()),
		CoresPerNode: int(d.i64()),
		RAMPerNodeGB: int(d.i64()),
		ClockGHz:     d.f64(),
		LLCMB:        int(d.i64()),
	}
	p.Workers = int(d.i64())
	p.Step = d.f64()
	p.StepDecay = d.f64()
	p.ChunkSize = int(d.i64())
	p.SyncRounds = int(d.i64())
	p.ImportanceFraction = d.f64()
	p.Seed = d.i64()
	p.StepOverheadCycles = d.f64()
	p.ElementOverheadCycles = d.f64()
	p.EpochOverheadCycles = d.f64()
	p.ComputeScale = d.f64()
	s.Plan = p

	s.EngineRNG = d.rng()
	if n := d.sliceLen("worker generators", 16); d.err == nil && n > 0 {
		s.WorkerRNG = make([]RNGState, n)
		for i := range s.WorkerRNG {
			s.WorkerRNG[i] = d.rng()
		}
	}
	if n := d.sliceLen("model vector", 8); d.err == nil && n > 0 {
		s.X = make([]float64, n)
		for i := range s.X {
			s.X[i] = d.f64()
		}
	}
	if n := d.sliceLen("replica states", 4); d.err == nil && n > 0 {
		s.Priv = make([][]byte, n)
		for i := range s.Priv {
			m := d.sliceLen("replica state", 1)
			s.Priv[i] = append([]byte(nil), d.take(m)...)
		}
	}

	if ver >= 2 {
		s.Plan.StealChunk = int(d.i64())
	}
	// Version-1 files predate StealChunk; the zero value renormalizes to
	// the default when the restored plan goes back through NewWorkload.
	if ver >= 3 {
		s.DataRows = int(d.i64())
		s.DataVersion = d.u64()
	}
	// Pre-streaming files leave the high-water mark zero: resume trains
	// on the dataset's current view, exactly as it always did.
	if ver >= 4 {
		s.Plan.FixedOrder = d.u8() != 0
	}
	// Pre-cluster files predate FixedOrder; false restores the default
	// randomized traversal those snapshots were trained with.

	if d.err != nil {
		return Snapshot{}, d.err
	}
	if d.off != len(body) {
		return Snapshot{}, fmt.Errorf("core: snapshot decode: %d trailing bytes", len(body)-d.off)
	}
	return s, nil
}
