package core

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"dimmwitted/internal/data"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

// TestExecutorParity is the refactor's core guarantee: for each of
// SVM/LR/LS under every model-replication strategy, the simulated
// interleaver and the real-goroutine executor run the same plan and
// land within tolerance of the same final loss. Exact equality is
// impossible — Hogwild! interleavings are nondeterministic — but both
// backends share the partition/replication/combine path, so the
// statistics must agree.
func TestExecutorParity(t *testing.T) {
	tasks := []struct {
		spec model.Spec
		ds   *data.Dataset
	}{
		{model.NewSVM(), data.Reuters()},
		{model.NewLR(), data.Reuters()},
		{model.NewLS(), data.MusicRegression()},
	}
	const epochs = 8
	for _, task := range tasks {
		init := task.spec.Loss(task.ds, task.spec.NewReplica(task.ds).X)
		for _, rep := range []ModelReplication{PerMachine, PerNode, PerCore} {
			base := Plan{Access: model.RowWise, ModelRep: rep, Workers: 4, Seed: 7}
			parPlan := base
			parPlan.Executor = ExecParallel

			sim := mustEngine(t, task.spec, task.ds, base)
			par := mustEngine(t, task.spec, task.ds, parPlan)
			var simLoss, parLoss float64
			for i := 0; i < epochs; i++ {
				simLoss = sim.RunEpoch().Loss
				parLoss = par.RunEpoch().Loss
			}

			if simLoss >= init || parLoss >= init {
				t.Errorf("%s/%v: losses did not decrease (init %v, sim %v, par %v)",
					task.spec.Name(), rep, init, simLoss, parLoss)
			}
			rel := math.Abs(simLoss-parLoss) / math.Abs(simLoss)
			if rel > 0.25 {
				t.Errorf("%s/%v: executors disagree: sim %v vs parallel %v (rel %.3f)",
					task.spec.Name(), rep, simLoss, parLoss, rel)
			}
		}
	}
}

// TestRunEpochCtxCancelled: a cancelled context aborts the epoch on
// both backends without advancing the epoch counter, and the engine
// remains usable afterwards.
func TestRunEpochCtxCancelled(t *testing.T) {
	for _, exec := range []ExecutorKind{ExecSimulated, ExecParallel} {
		e := mustEngine(t, model.NewSVM(), data.Reuters(),
			Plan{Executor: exec, Access: model.RowWise, Workers: 4})
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := e.RunEpochCtx(ctx); err == nil {
			t.Errorf("%v: cancelled epoch reported success", exec)
		}
		if e.Epoch() != 0 {
			t.Errorf("%v: cancelled epoch advanced the counter to %d", exec, e.Epoch())
		}
		er, err := e.RunEpochCtx(context.Background())
		if err != nil {
			t.Errorf("%v: epoch after cancellation: %v", exec, err)
		}
		if er.Epoch != 1 {
			t.Errorf("%v: epoch after cancellation numbered %d", exec, er.Epoch)
		}
	}
}

// TestRunToLossCtxCancelMidRun: cancelling while a long parallel run
// is in flight stops it promptly with the context's error.
func TestRunToLossCtxCancelMidRun(t *testing.T) {
	e := mustEngine(t, model.NewSVM(), data.Reuters(),
		Plan{Executor: ExecParallel, Access: model.RowWise, Workers: 4})
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(50*time.Millisecond, cancel)
	defer timer.Stop()
	const maxEpochs = 1 << 20
	res, err := e.RunToLossCtx(ctx, 0, maxEpochs)
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if res.Epochs >= maxEpochs {
		t.Errorf("run consumed all %d epochs despite cancellation", maxEpochs)
	}
}

// TestValidateRejectsUnknownStrategies: unknown replication or
// executor values fail plan validation loudly instead of silently
// falling back (the old RunConcurrent treated every non-Full strategy
// as Sharding).
func TestValidateRejectsUnknownStrategies(t *testing.T) {
	spec := model.NewSVM()
	bad := []Plan{
		{DataRep: DataReplication(42)},
		{ModelRep: ModelReplication(42)},
		{Executor: ExecutorKind(42)},
		{Executor: ExecParallel, Access: model.ColToRow},
	}
	for _, p := range bad {
		if err := p.Normalize(spec).Validate(spec); err == nil {
			t.Errorf("plan %+v passed validation", p)
		}
		if _, err := New(spec, data.Reuters(), p); err == nil {
			t.Errorf("engine accepted plan %+v", p)
		}
	}
}

// colOnlySpec narrows a spec to column-wise access, modelling the
// coordinate-descent-only case the parallel backend cannot run.
type colOnlySpec struct{ model.Spec }

func (colOnlySpec) Supports() []model.Access { return []model.Access{model.ColWise} }

func TestChooseExecutorParallelNeedsRowWise(t *testing.T) {
	spec := colOnlySpec{model.NewLS()}
	ds := data.MusicRegression()
	if _, err := ChooseExecutor(spec, ds, numa.Local2, ExecParallel); err == nil {
		t.Error("parallel plan chosen for a column-only spec")
	}
	plan, err := ChooseExecutor(spec, ds, numa.Local2, ExecSimulated)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Access != model.ColWise {
		t.Errorf("simulated choice picked %v", plan.Access)
	}
	// Every real spec has a row-wise method, so parallel choice works
	// and pins row-wise access plus the executor in the plan.
	pp, err := ChooseExecutor(model.NewQP(), data.AmazonQP(), numa.Local2, ExecParallel)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Access != model.RowWise || pp.Executor != ExecParallel {
		t.Errorf("parallel QP plan = %v", pp)
	}
}

func TestExecutorNames(t *testing.T) {
	if ExecSimulated.String() != "simulated" || ExecParallel.String() != "parallel" {
		t.Error("executor stringers wrong")
	}
	if ExecutorKind(9).String() == "" {
		t.Error("unknown executor should stringify")
	}
	for name, want := range map[string]ExecutorKind{
		"": ExecSimulated, "sim": ExecSimulated, "simulated": ExecSimulated, "parallel": ExecParallel,
	} {
		got, err := ExecutorByName(name)
		if err != nil || got != want {
			t.Errorf("ExecutorByName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ExecutorByName("threads"); err == nil {
		t.Error("bogus executor name accepted")
	}
	p := Plan{Executor: ExecParallel}.Normalize(model.NewSVM())
	if !strings.Contains(p.String(), "parallel") {
		t.Errorf("parallel plan string %q does not name the executor", p)
	}
}

// TestParallelExecutorAggregate: the one-pass aggregate (parallel sum)
// produces the exact total under real concurrency — atomic adds make
// component-level lost updates impossible.
func TestParallelExecutorAggregate(t *testing.T) {
	ds := data.ParallelSum(1200, 4)
	spec := model.NewParallelSum()
	for _, rep := range []ModelReplication{PerMachine, PerNode, PerCore} {
		e := mustEngine(t, spec, ds, Plan{Executor: ExecParallel, ModelRep: rep, DataRep: Sharding, Workers: 4})
		er := e.RunEpoch()
		if got := e.Model()[0]; got != 4800 {
			t.Errorf("%v: parallel sum = %v, want 4800", rep, got)
		}
		if er.Steps != ds.Rows() {
			t.Errorf("%v: parallel sum ran %d steps, want %d", rep, er.Steps, ds.Rows())
		}
	}
}

// TestExecutorSharedWorkPartition: both executors derive identical
// work assignments from the same seed — the partitioner is genuinely
// shared, not duplicated.
func TestExecutorSharedWorkPartition(t *testing.T) {
	mk := func(exec ExecutorKind) *Engine {
		return mustEngine(t, model.NewSVM(), data.Reuters(),
			Plan{Executor: exec, Access: model.RowWise, DataRep: FullReplication, Workers: 4, Seed: 3})
	}
	sim, par := mk(ExecSimulated), mk(ExecParallel)
	sim.assignWork()
	par.assignWork()
	for i := range sim.workers {
		sw, pw := sim.workers[i], par.workers[i]
		if sw.repIdx != pw.repIdx {
			t.Fatalf("worker %d: replica group %d vs %d", i, sw.repIdx, pw.repIdx)
		}
		if len(sw.items) != len(pw.items) {
			t.Fatalf("worker %d: %d vs %d items", i, len(sw.items), len(pw.items))
		}
		for k := range sw.items {
			if sw.items[k] != pw.items[k] {
				t.Fatalf("worker %d diverges at item %d", i, k)
			}
		}
	}
}
