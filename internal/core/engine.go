package core

import (
	"fmt"
	"math/rand"
	"time"

	"dimmwitted/internal/data"
	"dimmwitted/internal/mat"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

// flopCycles is the simulated cycle cost of one arithmetic operation.
const flopCycles = 0.5

// csrOverhead is the word multiplier for reading CSR-stored data
// (4-byte column index per 8-byte value: 1.5 words per nonzero).
const csrOverhead = 1.5

// Engine executes one analytics task — a model specification bound to
// a dataset — under an execution plan, on a simulated NUMA machine.
// Create one with New, then drive it with RunEpoch or RunToLoss.
//
// An Engine is not safe for concurrent use.
type Engine struct {
	spec model.Spec
	ds   *data.Dataset
	plan Plan
	mach *numa.Machine

	workers  []*worker
	replicas []*model.Replica
	modelReg []*numa.Region
	auxReg   []*numa.Region
	bg       *numa.Core

	exec Executor

	global   []float64
	step     float64
	epoch    int
	cumTime  time.Duration
	cumWall  time.Duration
	cumStats model.Stats
	cumCtr   numa.Counters
	rng      *rand.Rand

	// probe holds averaged per-step traffic, measured once at startup
	// and reused by contention estimation and the optimizer.
	probe model.Stats

	// leverage sampling state for Importance data replication.
	levCum []float64
}

// worker is one logical worker bound to a simulated core, a model
// replica (its locality group), and a data replica region.
type worker struct {
	id      int
	core    *numa.Core
	repIdx  int
	dataReg *numa.Region
	items   []int
	pos     int
}

// New builds an engine. The plan is normalized (defaults filled) and
// validated against the spec; the locality groups — model replicas,
// their simulated memory regions, and per-worker data regions — are
// laid out according to the plan's replication and placement choices.
func New(spec model.Spec, ds *data.Dataset, plan Plan) (*Engine, error) {
	plan = plan.Normalize(spec)
	if err := plan.Validate(spec); err != nil {
		return nil, err
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if plan.DataRep == Importance && plan.Access != model.RowWise {
		return nil, fmt.Errorf("core: Importance data replication requires row-wise access")
	}

	e := &Engine{
		spec: spec,
		ds:   ds,
		plan: plan,
		mach: numa.New(plan.Machine),
		step: plan.Step,
		rng:  rand.New(rand.NewSource(plan.Seed)),
	}
	e.probe = ProbeStats(spec, ds, plan.Access, 64)

	// Workers spread evenly across nodes (the appendix's NUMA thread
	// protocol), node-minor so worker i sits on node i mod Nodes.
	nodes := plan.Machine.Nodes
	per := plan.Machine.CoresPerNode
	for i := 0; i < plan.Workers; i++ {
		node := i % nodes
		slot := i / nodes
		if slot >= per {
			return nil, fmt.Errorf("core: %d workers exceed capacity of %s", plan.Workers, plan.Machine.Name)
		}
		e.workers = append(e.workers, &worker{id: i, core: e.mach.Core(node*per + slot)})
	}

	// Model replicas: one per locality group.
	proto := spec.NewReplica(ds)
	dim := len(proto.X)
	modelBytes := int64(dim) * numa.WordBytes
	auxBytes := int64(len(proto.Aux)) * numa.WordBytes
	switch plan.ModelRep {
	case PerMachine:
		e.replicas = []*model.Replica{proto}
		reg := e.mach.NewInterleavedRegion("model", modelBytes, numa.MachineShared)
		reg.WriteCollisionProb = e.collisionProb(e.probe.ModelWrites, effectiveModelWords(ds, plan.Access, dim))
		e.modelReg = []*numa.Region{reg}
		if proto.Aux != nil {
			// The auxiliary residual cache is data-adjacent per-row
			// state with single-writer ownership per column step (the
			// role GraphLab's edge data plays); it lives with the data
			// and never pays the machine-shared contention factor.
			areg := e.mach.NewInterleavedRegion("aux", auxBytes, numa.NodeShared)
			e.auxReg = []*numa.Region{areg}
		}
		for _, w := range e.workers {
			w.repIdx = 0
		}
	case PerNode:
		usedNodes := nodes
		if plan.Workers < nodes {
			usedNodes = plan.Workers
		}
		for n := 0; n < usedNodes; n++ {
			rep := proto
			if n > 0 {
				rep = spec.NewReplica(ds)
			}
			e.replicas = append(e.replicas, rep)
			e.modelReg = append(e.modelReg,
				e.mach.NewRegion(fmt.Sprintf("model-n%d", n), modelBytes, n, numa.NodeShared))
			if rep.Aux != nil {
				e.auxReg = append(e.auxReg,
					e.mach.NewRegion(fmt.Sprintf("aux-n%d", n), auxBytes, n, numa.NodeShared))
			}
		}
		for _, w := range e.workers {
			w.repIdx = w.core.Node % len(e.replicas)
		}
	case PerCore:
		for i, w := range e.workers {
			rep := proto
			if i > 0 {
				rep = spec.NewReplica(ds)
			}
			e.replicas = append(e.replicas, rep)
			e.modelReg = append(e.modelReg,
				e.mach.NewRegion(fmt.Sprintf("model-c%d", i), modelBytes, w.core.Node, numa.Private))
			if rep.Aux != nil {
				e.auxReg = append(e.auxReg,
					e.mach.NewRegion(fmt.Sprintf("aux-c%d", i), auxBytes, w.core.Node, numa.Private))
			}
			w.repIdx = i
		}
	default:
		return nil, fmt.Errorf("core: unknown model replication %v", plan.ModelRep)
	}

	// Data replicas: one region per worker. Under NUMA placement each
	// worker's data lives on its own node (Sharding places the shard
	// there; FullReplication places the node's full copy there); under
	// OS placement everything is interleaved.
	dataBytes := ds.A.Bytes()
	for _, w := range e.workers {
		if plan.Placement == PlacementOS {
			w.dataReg = e.mach.NewInterleavedRegion(fmt.Sprintf("data-w%d", w.id), dataBytes, numa.Private)
		} else {
			w.dataReg = e.mach.NewRegion(fmt.Sprintf("data-w%d", w.id), dataBytes, w.core.Node, numa.Private)
		}
	}

	// The background core hosts the asynchronous model-averaging
	// worker (PerNode) and end-of-epoch combination.
	e.bg = e.mach.NewBackgroundCore(0)

	e.global = append([]float64(nil), proto.X...)

	if plan.DataRep == Importance {
		if err := e.initLeverage(); err != nil {
			return nil, err
		}
	}

	// The executor is the last piece wired up: it mirrors the replica
	// layout built above, so both backends run the same locality
	// groups, work partition and combine path.
	if plan.Executor == ExecParallel {
		e.exec = newParallelExecutor(e)
	} else {
		e.exec = &simExecutor{e: e}
	}
	return e, nil
}

// collisionProb estimates the probability that a write to a machine-
// shared region collides with a concurrent writer on another socket.
// It is proportional to the number of concurrent writers and to the
// update footprint relative to the *effective* region size — the
// inverse Herfindahl index of the write-frequency distribution, so a
// Zipf-skewed text model (everyone hammering the same hot columns)
// contends as if the model were a few dozen words wide, while a
// uniform graph model contends on its full width. Sub-cacheline
// footprints are discounted (single-word updates rarely collide, the
// mechanism behind Figure 16(b)), and the estimate is capped at 0.5 —
// even a fully contended workload overlaps writes only part of the
// time.
func (e *Engine) collisionProb(writesPerStep int, effWords float64) float64 {
	if effWords <= 0 || writesPerStep <= 0 || len(e.workers) <= 1 {
		return 0
	}
	w := float64(writesPerStep)
	x := float64(len(e.workers)-1) * w / effWords
	if lineFrac := w / 8; lineFrac < 1 {
		x *= lineFrac
	}
	// Saturating curve: p rises smoothly with contention pressure and
	// approaches 0.5 ("at most half of writes stall") — two workers on
	// a hot model contend noticeably, twelve contend almost maximally,
	// but the jump from one worker (p = 0) stays finite.
	return 0.5 * x / (1 + x)
}

// effectiveModelWords returns the effective number of uniformly hot
// model words under row-wise access: 1/Σ_j q_j² with q_j proportional
// to column j's nonzero count (model word j is written once per row
// containing j). Under column access every component is written once
// per epoch, so the distribution is uniform and the effective size is
// the dimension itself.
func effectiveModelWords(ds *data.Dataset, access model.Access, dim int) float64 {
	if access != model.RowWise {
		return float64(dim)
	}
	csc := ds.CSC()
	total := float64(ds.NNZ())
	if total == 0 {
		return float64(dim)
	}
	var s float64
	for j := 0; j < ds.Cols(); j++ {
		q := float64(csc.ColNNZ(j)) / total
		s += q * q
	}
	if s <= 0 {
		return float64(dim)
	}
	return 1 / s
}

// effectiveAuxWords is the analog for per-row auxiliary state under
// column access: aux word i is written once per column row i touches,
// so q_i is proportional to the row's nonzero count.
func effectiveAuxWords(ds *data.Dataset, auxLen int) float64 {
	total := float64(ds.NNZ())
	if total == 0 || auxLen == 0 {
		return float64(auxLen)
	}
	var s float64
	for i := 0; i < ds.Rows(); i++ {
		q := float64(ds.A.RowNNZ(i)) / total
		s += q * q
	}
	if s <= 0 {
		return float64(auxLen)
	}
	return 1 / s
}

// ProbeStats runs up to n steps of the given access method on a
// scratch replica and returns the average per-step traffic. Both the
// engine's contention estimate and the cost-based optimizer use it;
// it mirrors the paper's install-time micro-benchmark.
func ProbeStats(spec model.Spec, ds *data.Dataset, access model.Access, n int) model.Stats {
	r := spec.NewReplica(ds)
	var total model.Stats
	count := 0
	if access == model.RowWise {
		if n > ds.Rows() {
			n = ds.Rows()
		}
		stride := ds.Rows() / n
		if stride == 0 {
			stride = 1
		}
		for i := 0; i < ds.Rows() && count < n; i += stride {
			total.Add(spec.RowStep(ds, i, r, 1e-6))
			count++
		}
	} else {
		cols := ds.Cols()
		if n > cols {
			n = cols
		}
		stride := cols / n
		if stride == 0 {
			stride = 1
		}
		for j := 0; j < cols && count < n; j += stride {
			total.Add(spec.ColStep(ds, j, r, 1e-6))
			count++
		}
	}
	if count == 0 {
		return model.Stats{}
	}
	return model.Stats{
		DataWords:   total.DataWords / count,
		ModelReads:  total.ModelReads / count,
		ModelWrites: total.ModelWrites / count,
		AuxReads:    total.AuxReads / count,
		AuxWrites:   total.AuxWrites / count,
		Flops:       total.Flops / count,
	}
}

// initLeverage computes leverage scores for Importance sampling and
// their cumulative distribution.
func (e *Engine) initLeverage() error {
	if e.ds.Cols() > 2000 {
		return fmt.Errorf("core: leverage scores need a dense %dx%d Gram inverse; dimension too large", e.ds.Cols(), e.ds.Cols())
	}
	scores, err := mat.LeverageScores(e.ds.A, 1e-6)
	if err != nil {
		return err
	}
	e.levCum = make([]float64, len(scores)+1)
	for i, s := range scores {
		if s <= 0 {
			s = 1e-12
		}
		e.levCum[i+1] = e.levCum[i] + s
	}
	return nil
}

// Plan returns the normalized plan the engine runs.
func (e *Engine) Plan() Plan { return e.plan }

// Model returns the current combined model (valid after each epoch).
func (e *Engine) Model() []float64 { return e.global }

// Loss evaluates the objective of the current combined model.
func (e *Engine) Loss() float64 { return e.spec.Loss(e.ds, e.global) }

// Epoch returns the number of completed epochs.
func (e *Engine) Epoch() int { return e.epoch }

// SimTime returns the total simulated time of all epochs so far
// (zero under the parallel executor).
func (e *Engine) SimTime() time.Duration { return e.cumTime }

// WallTime returns the total measured wall-clock time of all epochs —
// the parallel executor's primary time axis.
func (e *Engine) WallTime() time.Duration { return e.cumWall }

// ExecutorKind returns the backend the engine runs on.
func (e *Engine) ExecutorKind() ExecutorKind { return e.exec.Kind() }

// Counters returns the PMU-style counters accumulated over all epochs.
func (e *Engine) Counters() numa.Counters { return e.cumCtr }

// Stats returns the traffic stats accumulated over all epochs.
func (e *Engine) Stats() model.Stats { return e.cumStats }
