package core

import (
	"fmt"
	"math/rand"
	"time"

	"dimmwitted/internal/data"
	"dimmwitted/internal/mat"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
	"dimmwitted/internal/trace"
)

// flopCycles is the simulated cycle cost of one arithmetic operation.
const flopCycles = 0.5

// csrOverhead is the word multiplier for reading CSR-stored data
// (4-byte column index per 8-byte value: 1.5 words per nonzero).
const csrOverhead = 1.5

// Engine executes one analytics workload under an execution plan, on a
// simulated NUMA machine or with real goroutine workers. Create one
// with New (GLM tasks) or NewWorkload (any workload), then drive it
// with RunEpoch or RunToLoss.
//
// An Engine is not safe for concurrent use.
type Engine struct {
	wl   Workload
	plan Plan
	mach *numa.Machine

	workers  []*worker
	replicas []*WorkState
	modelReg []*numa.Region
	auxReg   []*numa.Region
	bg       *numa.Core

	exec Executor

	global   []float64
	step     float64
	epoch    int
	cumTime  time.Duration
	cumWall  time.Duration
	cumStats model.Stats
	cumCtr   numa.Counters
	rng      *rand.Rand
	// rngSrc backs rng and tracks its stream position, so snapshots can
	// capture and restore the traversal randomness exactly.
	rngSrc *SeededSource
	// lastLoss caches the objective computed at the last epoch end (or
	// restore), so Snapshot does not pay a second full-dataset pass per
	// checkpoint. Invalid until the first epoch or restore.
	lastLoss  float64
	lossValid bool

	// rec is the optional span recorder; nil means tracing is off and
	// every instrumentation site reduces to a pointer comparison.
	// recBufs are the parallel executor's private per-worker buffers,
	// merged into rec once per epoch after the barrier.
	rec     *trace.Recorder
	recBufs []*trace.WorkerBuf

	// leverage sampling state for Importance data replication.
	levCum []float64
}

// worker is one logical worker bound to a simulated core, a model
// replica (its locality group), and a data replica region.
type worker struct {
	id      int
	core    *numa.Core
	repIdx  int
	dataReg *numa.Region
	items   []int
	pos     int
}

// New builds an engine for the classic GLM task: a model specification
// bound to a dataset. It is a thin wrapper over NewWorkload with the
// behavior-preserving GLM adapter.
func New(spec model.Spec, ds *data.Dataset, plan Plan) (*Engine, error) {
	return NewWorkload(NewGLM(spec, ds), plan)
}

// NewWorkload builds an engine for any workload. The plan is
// normalized (generic defaults, then the workload's) and validated;
// the locality groups — replicas, their simulated memory regions, and
// per-worker data regions — are laid out according to the plan's
// replication and placement choices. The workload binds to this engine
// (Bind, NewReplica) and must not be reused for another.
func NewWorkload(wl Workload, plan Plan) (*Engine, error) {
	plan = plan.normalizeCommon()
	plan = wl.NormalizePlan(plan)
	if err := plan.validateCommon(); err != nil {
		return nil, err
	}
	supported := false
	for _, a := range wl.Supports() {
		if a == plan.Access {
			supported = true
		}
	}
	if !supported {
		return nil, fmt.Errorf("core: %s does not support %s access", wl.Name(), plan.Access)
	}
	if err := wl.ValidatePlan(plan); err != nil {
		return nil, err
	}
	if plan.ModelRep == PerCluster {
		// PerCluster is a coordinator-level axis: one engine is one
		// machine, so the replica-per-machine layout cannot exist here.
		// The cluster coordinator decomposes a PerCluster plan into one
		// single-machine plan per peer and combines over the wire.
		return nil, fmt.Errorf("core: PerCluster replication spans machines; a single engine cannot run it — submit the job to a cluster coordinator (cmd/dwcoord)")
	}
	wl.Bind(plan)

	src := NewSeededSource(plan.Seed)
	e := &Engine{
		wl:     wl,
		plan:   plan,
		mach:   numa.New(plan.Machine),
		step:   plan.Step,
		rng:    rand.New(src),
		rngSrc: src,
	}

	// Workers spread evenly across nodes (the appendix's NUMA thread
	// protocol), node-minor so worker i sits on node i mod Nodes.
	nodes := plan.Machine.Nodes
	per := plan.Machine.CoresPerNode
	for i := 0; i < plan.Workers; i++ {
		node := i % nodes
		slot := i / nodes
		if slot >= per {
			return nil, fmt.Errorf("core: %d workers exceed capacity of %s", plan.Workers, plan.Machine.Name)
		}
		e.workers = append(e.workers, &worker{id: i, core: e.mach.Core(node*per + slot)})
	}

	// Model replicas: one per locality group, sized and contention-
	// estimated by the workload's layout.
	layout := wl.Layout()
	switch plan.ModelRep {
	case PerMachine:
		e.replicas = []*WorkState{wl.NewReplica(0, plan.Seed)}
		reg := e.mach.NewInterleavedRegion("model", layout.ModelBytes, numa.MachineShared)
		reg.WriteCollisionProb = layout.ModelCollisionProb
		e.modelReg = []*numa.Region{reg}
		if layout.AuxBytes > 0 {
			// The auxiliary residual cache is data-adjacent per-row
			// state with single-writer ownership per column step (the
			// role GraphLab's edge data plays); it lives with the data
			// and never pays the machine-shared contention factor.
			areg := e.mach.NewInterleavedRegion("aux", layout.AuxBytes, numa.NodeShared)
			e.auxReg = []*numa.Region{areg}
		}
		for _, w := range e.workers {
			w.repIdx = 0
		}
	case PerNode:
		usedNodes := nodes
		if plan.Workers < nodes {
			usedNodes = plan.Workers
		}
		for n := 0; n < usedNodes; n++ {
			e.replicas = append(e.replicas, wl.NewReplica(n, plan.Seed))
			e.modelReg = append(e.modelReg,
				e.mach.NewRegion(fmt.Sprintf("model-n%d", n), layout.ModelBytes, n, numa.NodeShared))
			if layout.AuxBytes > 0 {
				e.auxReg = append(e.auxReg,
					e.mach.NewRegion(fmt.Sprintf("aux-n%d", n), layout.AuxBytes, n, numa.NodeShared))
			}
		}
		for _, w := range e.workers {
			w.repIdx = w.core.Node % len(e.replicas)
		}
	case PerCore:
		for i, w := range e.workers {
			e.replicas = append(e.replicas, wl.NewReplica(i, plan.Seed))
			e.modelReg = append(e.modelReg,
				e.mach.NewRegion(fmt.Sprintf("model-c%d", i), layout.ModelBytes, w.core.Node, numa.Private))
			if layout.AuxBytes > 0 {
				e.auxReg = append(e.auxReg,
					e.mach.NewRegion(fmt.Sprintf("aux-c%d", i), layout.AuxBytes, w.core.Node, numa.Private))
			}
			w.repIdx = i
		}
	}

	// Data replicas: one region per worker. Under NUMA placement each
	// worker's data lives on its own node (Sharding places the shard
	// there; FullReplication places the node's full copy there); under
	// OS placement everything is interleaved.
	for _, w := range e.workers {
		if plan.Placement == PlacementOS {
			w.dataReg = e.mach.NewInterleavedRegion(fmt.Sprintf("data-w%d", w.id), layout.DataBytes, numa.Private)
		} else {
			w.dataReg = e.mach.NewRegion(fmt.Sprintf("data-w%d", w.id), layout.DataBytes, w.core.Node, numa.Private)
		}
	}

	// The background core hosts the asynchronous model-averaging
	// worker (PerNode) and end-of-epoch combination.
	e.bg = e.mach.NewBackgroundCore(0)

	e.global = append([]float64(nil), e.replicas[0].X...)

	if plan.DataRep == Importance {
		if err := e.initLeverage(); err != nil {
			return nil, err
		}
	}

	// The executor is the last piece wired up: it mirrors the replica
	// layout built above, so both backends run the same locality
	// groups, work partition and combine path.
	if plan.Executor == ExecParallel {
		e.exec = newParallelExecutor(e)
	} else {
		e.exec = &simExecutor{e: e}
	}
	return e, nil
}

// SetRecorder attaches a span recorder: subsequent epochs attribute
// their wall clock to named phases, per worker goroutine. A nil
// recorder (the default) disables tracing at the cost of one pointer
// comparison per phase site — never per step. Attach before running
// epochs; the engine is not safe for concurrent use, so do not swap
// recorders mid-epoch.
func (e *Engine) SetRecorder(r *trace.Recorder) {
	e.rec = r
	e.recBufs = r.WorkerBufs(len(e.workers))
	if p, ok := e.exec.(*parallelExecutor); ok {
		// The pool multiplexes logical workers onto min(workers,
		// GOMAXPROCS) lanes; tell the recorder so derived barrier idle
		// is charged per concurrent lane, not per logical worker.
		r.SetParallelism(len(p.lanes))
	}
}

// Recorder returns the attached span recorder, or nil.
func (e *Engine) Recorder() *trace.Recorder { return e.rec }

// Close releases the engine's execution resources: the parallel
// executor's persistent worker pool drains and every pool goroutine
// exits before Close returns. Idempotent, a no-op for the simulated
// backend, and required for job-scoped engines (the scheduler defers
// it) so a cancelled or finished job never leaks parked goroutines.
// Running further epochs after Close is an error. Call from the
// goroutine that runs the engine's epochs.
func (e *Engine) Close() {
	if p, ok := e.exec.(*parallelExecutor); ok {
		p.close()
	}
}

// Grow adopts a larger published view of the workload's dataset. Call
// it only between epochs: the next RunEpochCtx re-partitions work from
// the workload's new Units(), so no running epoch ever observes a torn
// matrix. The cached loss is invalidated — the objective now spans the
// new rows.
func (e *Engine) Grow(view *data.Dataset) error {
	gw, ok := e.wl.(Growable)
	if !ok {
		return fmt.Errorf("core: %s workload cannot grow its dataset", e.wl.Kind())
	}
	if err := gw.Grow(view); err != nil {
		return err
	}
	e.lossValid = false
	return nil
}

// ProbeStats runs up to n steps of the given access method on a
// scratch replica and returns the average per-step traffic. Both the
// GLM workload's contention estimate and the cost-based optimizer use
// it; it mirrors the paper's install-time micro-benchmark.
func ProbeStats(spec model.Spec, ds *data.Dataset, access model.Access, n int) model.Stats {
	r := spec.NewReplica(ds)
	var total model.Stats
	count := 0
	if access == model.RowWise {
		if n > ds.Rows() {
			n = ds.Rows()
		}
		stride := ds.Rows() / n
		if stride == 0 {
			stride = 1
		}
		for i := 0; i < ds.Rows() && count < n; i += stride {
			total.Add(spec.RowStep(ds, i, r, 1e-6))
			count++
		}
	} else {
		cols := ds.Cols()
		if n > cols {
			n = cols
		}
		stride := cols / n
		if stride == 0 {
			stride = 1
		}
		for j := 0; j < cols && count < n; j += stride {
			total.Add(spec.ColStep(ds, j, r, 1e-6))
			count++
		}
	}
	if count == 0 {
		return model.Stats{}
	}
	return model.Stats{
		DataWords:   total.DataWords / count,
		ModelReads:  total.ModelReads / count,
		ModelWrites: total.ModelWrites / count,
		AuxReads:    total.AuxReads / count,
		AuxWrites:   total.AuxWrites / count,
		Flops:       total.Flops / count,
	}
}

// initLeverage computes leverage scores for Importance sampling and
// their cumulative distribution. Leverage is defined on data matrices,
// so Importance remains a GLM-only data-replication strategy.
func (e *Engine) initLeverage() error {
	glm, ok := e.wl.(*glmWorkload)
	if !ok {
		return fmt.Errorf("core: Importance data replication requires a GLM workload, not %s", e.wl.Kind())
	}
	ds := glm.ds
	if ds.Cols() > 2000 {
		return fmt.Errorf("core: leverage scores need a dense %dx%d Gram inverse; dimension too large", ds.Cols(), ds.Cols())
	}
	scores, err := mat.LeverageScores(ds.A, 1e-6)
	if err != nil {
		return err
	}
	e.levCum = make([]float64, len(scores)+1)
	for i, s := range scores {
		if s <= 0 {
			s = 1e-12
		}
		e.levCum[i+1] = e.levCum[i] + s
	}
	return nil
}

// Plan returns the normalized plan the engine runs.
func (e *Engine) Plan() Plan { return e.plan }

// Model returns the current combined state vector (valid after each
// epoch): the model for GLM/NN, the pooled marginal estimate for
// Gibbs.
func (e *Engine) Model() []float64 { return e.global }

// Loss evaluates the workload's objective on the current combined
// state.
func (e *Engine) Loss() float64 { return e.wl.Loss(e.global) }

// Metrics returns the workload's extra quality metrics on the current
// combined state (nil for GLM).
func (e *Engine) Metrics() map[string]float64 { return e.wl.Metrics(e.global) }

// Workload returns the workload kind the engine runs.
func (e *Engine) Workload() WorkloadKind { return e.wl.Kind() }

// Replicas returns the number of model replicas (locality groups).
func (e *Engine) Replicas() int { return len(e.replicas) }

// Epoch returns the number of completed epochs.
func (e *Engine) Epoch() int { return e.epoch }

// SimTime returns the total simulated time of all epochs so far
// (zero under the parallel executor).
func (e *Engine) SimTime() time.Duration { return e.cumTime }

// WallTime returns the total measured wall-clock time of all epochs —
// the parallel executor's primary time axis.
func (e *Engine) WallTime() time.Duration { return e.cumWall }

// ExecutorKind returns the backend the engine runs on.
func (e *Engine) ExecutorKind() ExecutorKind { return e.exec.Kind() }

// Counters returns the PMU-style counters accumulated over all epochs.
func (e *Engine) Counters() numa.Counters { return e.cumCtr }

// Stats returns the traffic stats accumulated over all epochs.
func (e *Engine) Stats() model.Stats { return e.cumStats }
