package core

import (
	"fmt"
	"math/rand"
)

// RNGState is the serializable position of a SeededSource: the seed it
// started from and how many raw values it has produced since. A fresh
// source fast-forwarded by Draws values emits exactly the stream the
// original would have continued with, so checkpoints capture traversal
// randomness without copying the generator's internal state.
type RNGState struct {
	// Seed is the value the source was (re)seeded with.
	Seed int64
	// Draws is the number of raw 64-bit values produced since seeding.
	Draws uint64
}

// zero reports whether the state is absent (never-seeded); snapshots
// produced before RNG capture existed decode to the zero state.
func (s RNGState) zero() bool { return s.Seed == 0 && s.Draws == 0 }

// SeededSource is a rand.Source64 that wraps the standard library's
// seeded source and counts state advances, so its exact stream position
// can be captured in an RNGState and replayed later. Every generated
// value passes through unchanged: rand.New(NewSeededSource(s)) emits
// bit-for-bit the stream of rand.New(rand.NewSource(s)), which keeps
// golden-value tests pinned across the checkpointing change.
//
// A SeededSource is not safe for concurrent use, matching rand.Source.
type SeededSource struct {
	src   rand.Source64
	seed  int64
	draws uint64
}

// NewSeededSource returns a counting source seeded with seed.
func NewSeededSource(seed int64) *SeededSource {
	return &SeededSource{src: rand.NewSource(seed).(rand.Source64), seed: seed}
}

// Int63 implements rand.Source.
func (s *SeededSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 implements rand.Source64. The stdlib source advances its
// internal state once per value for both Int63 and Uint64, so a single
// counter covers both entry points.
func (s *SeededSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed implements rand.Source, resetting the draw counter.
func (s *SeededSource) Seed(seed int64) {
	s.seed, s.draws = seed, 0
	s.src.Seed(seed)
}

// State captures the source's current stream position.
func (s *SeededSource) State() RNGState {
	return RNGState{Seed: s.seed, Draws: s.draws}
}

// Restore repositions the source at st by reseeding and replaying
// st.Draws values. Replay is O(Draws) at ~1ns per value; engines draw a
// handful of values per epoch (permutations and leverage samples), so
// even million-epoch checkpoints restore in milliseconds. Callers
// restoring positions from untrusted bytes must bound Draws first —
// the snapshot codec enforces MaxRNGDraws.
func (s *SeededSource) Restore(st RNGState) {
	s.Seed(st.Seed)
	for i := uint64(0); i < st.Draws; i++ {
		s.src.Uint64()
	}
	s.draws = st.Draws
}

// String implements fmt.Stringer for debugging.
func (s *SeededSource) String() string {
	return fmt.Sprintf("SeededSource(seed=%d, draws=%d)", s.seed, s.draws)
}
