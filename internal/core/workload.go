package core

import (
	"fmt"
	"math/rand"

	"dimmwitted/internal/data"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

// WorkloadKind identifies a workload family. It is threaded through
// plan validation, optimizer costing, engine snapshots and the serving
// layer's plan-cache keys, so heterogeneous analytics never alias each
// other's execution plans.
type WorkloadKind int

const (
	// WorkloadGLM is the first-order generalized-linear-model family
	// (SVM, LR, LS, LP, QP, parallel sum): a model.Spec over a data
	// matrix. The simulated figure-reproduction path runs here.
	WorkloadGLM WorkloadKind = iota
	// WorkloadGibbs is Gibbs sampling over a factor graph (Section 5.1):
	// chains map onto model replicas, variables onto work units.
	WorkloadGibbs
	// WorkloadNN is back-propagation SGD over a feed-forward network
	// (Section 5.2): network replicas map onto model replicas, examples
	// onto work units.
	WorkloadNN
)

// String implements fmt.Stringer.
func (k WorkloadKind) String() string {
	switch k {
	case WorkloadGLM:
		return "glm"
	case WorkloadGibbs:
		return "gibbs"
	case WorkloadNN:
		return "nn"
	default:
		return fmt.Sprintf("WorkloadKind(%d)", int(k))
	}
}

// WorkloadByName maps the serving API's workload names. The empty
// string means the GLM default.
func WorkloadByName(name string) (WorkloadKind, error) {
	switch name {
	case "", "glm":
		return WorkloadGLM, nil
	case "gibbs":
		return WorkloadGibbs, nil
	case "nn":
		return WorkloadNN, nil
	default:
		return 0, fmt.Errorf("core: unknown workload %q (want glm, gibbs, or nn)", name)
	}
}

// SyncMode tells the engine how replicas meet at synchronization
// points.
type SyncMode int

const (
	// SyncAverage combines replicas into the global state and writes the
	// combination back (Bismarck-style averaging for iterative
	// estimators: GLM SGD/SCD, NN back-prop). PerNode plans additionally
	// run the asynchronous mid-epoch averaging worker.
	SyncAverage SyncMode = iota
	// SyncAggregate zeroes replicas at epoch start and combines them
	// exactly once at epoch end with no write-back (one-pass aggregates
	// whose Combine is not idempotent: parallel sum).
	SyncAggregate
	// SyncPool combines replicas for reading only: the global state is
	// a pooled estimate, but replicas stay independent (Gibbs chains,
	// which must never be averaged into each other).
	SyncPool
)

// ConcurrencyMode tells the parallel executor how workers sharing a
// replica run concurrently.
type ConcurrencyMode int

const (
	// ConcurrencyDelta trains on private per-worker working copies and
	// pushes batched deltas to a shared atomic master every ChunkSize
	// steps — the Hogwild! memory model for vector-state workloads.
	ConcurrencyDelta ConcurrencyMode = iota
	// ConcurrencyShared steps directly on the shared replica state; the
	// workload's Step must itself be race-safe for concurrent
	// same-replica callers (Gibbs chains with atomic assignments).
	ConcurrencyShared
)

// WorkState is one replica's mutable state: the combined-vector view X
// the engine partitions, averages/pools and snapshots, optional GLM
// auxiliary state, and workload-private state behind Priv (a Gibbs
// chain, an NN network whose parameters alias X).
type WorkState struct {
	// X is the replica's state vector: the model for GLM and NN (NN
	// parameters are flat-backed so X is the network), the marginal
	// estimate for Gibbs.
	X []float64
	// Aux is per-row auxiliary state (GLM column access), or nil.
	Aux []float64
	// Priv is workload-private state the engine never touches.
	Priv any
}

// Layout describes a workload's simulated-memory footprint: how big
// the model/aux/data regions are and how contended a machine-shared
// model region would be. The engine turns it into numa.Regions
// according to the plan's replication and placement choices.
type Layout struct {
	// ModelBytes is the size of one model replica's region.
	ModelBytes int64
	// AuxBytes is the size of one replica's auxiliary region (0: none).
	AuxBytes int64
	// DataBytes is the size of one worker's immutable-data region.
	DataBytes int64
	// ModelCollisionProb estimates the probability that a write to a
	// machine-shared model region collides with a concurrent writer on
	// another socket (PerMachine replication only).
	ModelCollisionProb float64
}

// StepCost carries the simulated-machine handles a workload charges one
// step's traffic to. It is nil under the parallel executor, whose time
// axis is the wall clock.
type StepCost struct {
	// Core is the worker's simulated core.
	Core *numa.Core
	// DataReg is the worker's immutable-data region.
	DataReg *numa.Region
	// ModelReg is the worker's replica's model region.
	ModelReg *numa.Region
	// AuxReg is the worker's replica's auxiliary region, or nil.
	AuxReg *numa.Region
}

// Workload is one analytics task the engine can execute: a partition
// domain of work units, per-replica mutable state, a per-unit update
// step, an end-of-epoch combine and a quality metric. The engine owns
// everything around the steps — work partitioning, replica layout and
// locality groups, executors (simulated or parallel), synchronization
// and step decay — so a new workload is an adapter, not a training
// loop.
//
// A Workload instance binds to exactly one engine: NewWorkload calls
// Bind and NewReplica, and implementations may keep replica handles
// (Gibbs chains) for workload-specific accessors.
type Workload interface {
	// Kind identifies the workload family.
	Kind() WorkloadKind
	// Name identifies the task for snapshots ("svm", "gibbs", "nn").
	Name() string
	// DatasetName identifies the data the task runs over.
	DatasetName() string
	// Supports lists the access methods the workload implements.
	Supports() []model.Access

	// NormalizePlan fills workload-specific plan defaults (access
	// method, step size and decay, chunk size); the engine fills the
	// generic ones (machine, workers, seed) first.
	NormalizePlan(p Plan) Plan
	// ValidatePlan rejects plans the workload cannot execute, beyond
	// the engine's generic checks.
	ValidatePlan(p Plan) error
	// Optimize is the workload's cost-based optimizer: a complete plan
	// for the topology and execution backend.
	Optimize(top numa.Topology, exec ExecutorKind) (Plan, error)

	// Bind fixes the normalized, validated plan the engine will run.
	// The engine calls it once, before Units/Dim/Layout/NewReplica.
	Bind(p Plan)
	// Units is the number of partitionable work units in one epoch's
	// domain (rows or columns for GLM, variables for Gibbs, examples
	// for NN).
	Units() int
	// Dim is the length of the combined state vector.
	Dim() int
	// DataNNZ is the nonzero volume of the immutable data, used for
	// cache keys and auxiliary-rebuild cost accounting.
	DataNNZ() int64
	// Layout describes the simulated-memory footprint under the bound
	// plan.
	Layout() Layout

	// NewReplica allocates replica repIdx's state, seeded from the
	// plan's seed. The parallel executor also uses it for per-worker
	// working copies under ConcurrencyDelta.
	NewReplica(repIdx int, seed int64) *WorkState
	// Step executes one work unit on the replica at the given step
	// size, charging simulated costs to cost (nil under the parallel
	// executor) and returning the step's traffic stats. rng is a
	// per-worker source supplied by the parallel executor for
	// ConcurrencyShared workloads; it is nil under the simulated
	// executor, where workloads use replica-private randomness for
	// determinism.
	Step(unit int, ws *WorkState, step float64, rng *rand.Rand, cost *StepCost) model.Stats

	// Sync selects how replicas meet; Concurrency selects how the
	// parallel executor runs same-replica workers.
	Sync() SyncMode
	Concurrency() ConcurrencyMode
	// Combine merges replica state vectors into dst.
	Combine(xs [][]float64, dst []float64)
	// EndEpoch runs once per epoch after every unit has executed and
	// before the combine (Gibbs refreshes marginal tallies here).
	EndEpoch(reps []*WorkState)
	// AuxRefresh recomputes a replica's auxiliary state from its model
	// after a write-back, returning whether it did anything (the engine
	// then charges the standard rebuild cost). force requests the
	// rebuild regardless of access method (snapshot restore).
	AuxRefresh(ws *WorkState, force bool) bool

	// Loss evaluates the primary objective of the combined state.
	Loss(x []float64) float64
	// Metrics returns workload-appropriate extra quality metrics of the
	// combined state (NN accuracy, Gibbs marginal summaries), or nil.
	Metrics(x []float64) map[string]float64
}

// UnitCoordser is optionally implemented by ConcurrencyDelta workloads
// whose work units each touch a small, statically known coordinate set
// of the state vector. The parallel executor uses it to flush and
// refresh only the coordinates a chunk actually dirtied — a sparse row
// then costs O(nnz) per flush instead of O(dim) — so implementations
// must guarantee Step reads and writes X only at UnitCoords(unit).
type UnitCoordser interface {
	// SparseUnits reports whether per-unit coordinate sets apply under
	// the bound plan (e.g. GLM row-wise steps over CSR rows; false for
	// dense-update specs, whose steps touch the full dimension).
	SparseUnits() bool
	// UnitCoords returns the coordinates unit's Step touches. The slice
	// is owned by the workload and must stay valid and unmutated for
	// the engine's lifetime.
	UnitCoords(unit int) []int32
}

// EpochOrderer is optionally implemented by workloads that supply each
// replica's traversal order themselves instead of using the engine's
// shared permutation. Gibbs chains draw their sweep permutation from
// the chain's own generator, preserving the classic sampler's
// determinism; when implemented, FullReplication partitions the
// returned order among the replica's workers (so a PerCore chain
// sweeps the whole domain) and Sharding uses replica 0's order.
type EpochOrderer interface {
	EpochOrder(repIdx int) []int
}

// Growable is optionally implemented by workloads that can adopt a
// larger immutable view of their dataset between epochs (streaming
// ingestion). Implementations must reject any swap that would
// invalidate engine-side state sized to the old view; on success the
// next epoch's work assignment covers the new rows automatically,
// because assignWork re-reads Units() at every epoch start.
type Growable interface {
	Grow(view *data.Dataset) error
}

// DataVersioner is optionally implemented by workloads trained on a
// versioned dataset view. Snapshots record the pair so online resume
// can rebuild the exact matrix the checkpoint trained on (the ingest
// high-water mark) and replay nothing.
type DataVersioner interface {
	DataRows() int
	DataVersion() uint64
}

// ChooseWorkload runs the workload's cost-based optimizer for a
// topology and execution backend — the workload-generic analog of
// ChooseExecutor.
func ChooseWorkload(wl Workload, top numa.Topology, exec ExecutorKind) (Plan, error) {
	return wl.Optimize(top, exec)
}
