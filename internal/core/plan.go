// Package core implements the DimmWitted engine (Section 3): given a
// model specification, a dataset and an execution plan, it runs
// first-order epochs over a simulated NUMA machine, exploring the
// paper's three tradeoffs —
//
//  1. access method: row-wise vs column-wise/column-to-row,
//  2. model replication: PerCore, PerNode, PerMachine,
//  3. data replication: Sharding, FullReplication, Importance,
//
// and a cost-based optimizer that picks a plan automatically
// (Figure 14). Statistical efficiency is real — the algorithms
// actually run and converge — while hardware efficiency is accounted
// on the internal/numa cost simulator (see DESIGN.md for why).
//
// Execution is pluggable (Plan.Executor): the simulated backend runs
// the deterministic interleaver over the cost simulator, while the
// parallel backend runs the same plan with real goroutine workers
// under the Hogwild! memory model, measured in wall-clock time. Both
// share one partitioning/replication/combine code path (executor.go).
package core

import (
	"fmt"

	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

// ModelReplication selects the granularity at which the mutable model
// is replicated (Section 3.3).
type ModelReplication int

const (
	// PerCore gives every worker a private replica, combined at the
	// end of each epoch (the shared-nothing / Bismarck point).
	PerCore ModelReplication = iota
	// PerNode gives every NUMA node one replica shared by its cores,
	// with an asynchronous averaging worker batching cross-socket
	// writes (the paper's novel hybrid).
	PerNode
	// PerMachine keeps a single replica all workers update (the
	// Hogwild!/Downpour point).
	PerMachine
	// PerCluster extends the hierarchy one level up: every machine in a
	// cluster holds a full model replica, trained on its data shard and
	// combined epoch-synchronously over the wire — the same averaging
	// PerNode does across sockets, applied across machines. A single
	// engine cannot run it (see NewWorkload); the cluster coordinator
	// (internal/cluster, cmd/dwcoord) decomposes a PerCluster plan into
	// one per-peer single-machine plan per shard.
	PerCluster
)

// String implements fmt.Stringer.
func (m ModelReplication) String() string {
	switch m {
	case PerCore:
		return "PerCore"
	case PerNode:
		return "PerNode"
	case PerMachine:
		return "PerMachine"
	case PerCluster:
		return "PerCluster"
	default:
		return fmt.Sprintf("ModelReplication(%d)", int(m))
	}
}

// DataReplication selects how the immutable data is spread over
// workers (Section 3.4, Appendix C.4).
type DataReplication int

const (
	// Sharding partitions the rows (or columns) so each worker sees a
	// disjoint subset once per epoch.
	Sharding DataReplication = iota
	// FullReplication gives every NUMA node a complete copy; each
	// node processes all of it, in its own order, every epoch.
	FullReplication
	// Importance samples a fraction of rows per worker with
	// probability proportional to leverage scores (Appendix C.4).
	Importance
)

// String implements fmt.Stringer.
func (d DataReplication) String() string {
	switch d {
	case Sharding:
		return "Sharding"
	case FullReplication:
		return "FullReplication"
	case Importance:
		return "Importance"
	default:
		return fmt.Sprintf("DataReplication(%d)", int(d))
	}
}

// ExecutorKind selects the execution backend that drives an epoch's
// worker loops. Both backends share the same partitioning, replica
// grouping, end-of-epoch combine and step-decay code; they differ only
// in how worker steps actually run and how time is accounted.
type ExecutorKind int

const (
	// ExecSimulated runs the deterministic round-robin interleaver over
	// the simulated NUMA machine; epoch time is simulated cycles. This
	// is the figure-reproduction backend and the zero-value default.
	ExecSimulated ExecutorKind = iota
	// ExecParallel runs real goroutine workers under the Hogwild!
	// memory model (component-atomic shared masters, batched flushes);
	// epoch time is wall-clock. Row-wise access only.
	ExecParallel
)

// String implements fmt.Stringer.
func (k ExecutorKind) String() string {
	switch k {
	case ExecSimulated:
		return "simulated"
	case ExecParallel:
		return "parallel"
	default:
		return fmt.Sprintf("ExecutorKind(%d)", int(k))
	}
}

// ExecutorByName maps the serving API's and CLIs' executor names. The
// empty string means the simulated default.
func ExecutorByName(name string) (ExecutorKind, error) {
	switch name {
	case "", "sim", "simulated":
		return ExecSimulated, nil
	case "parallel":
		return ExecParallel, nil
	default:
		return 0, fmt.Errorf("core: unknown executor %q (want simulated or parallel)", name)
	}
}

// Placement selects where data replicas live (Appendix A): the OS
// default (interleaved/arbitrary) or explicit NUMA-local placement.
type Placement int

const (
	// PlacementNUMA collocates each worker's data on its own node.
	PlacementNUMA Placement = iota
	// PlacementOS models the OS default: data interleaved across
	// nodes regardless of who reads it.
	PlacementOS
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	if p == PlacementOS {
		return "OS"
	}
	return "NUMA"
}

// Plan is an execution plan (Section 3.1): the chosen point in the
// tradeoff space plus tuning knobs. Zero values get sensible defaults
// from Normalize.
type Plan struct {
	// Access is the data access method.
	Access model.Access
	// ModelRep is the model-replication granularity.
	ModelRep ModelReplication
	// DataRep is the data-replication strategy.
	DataRep DataReplication
	// Executor selects the execution backend: the deterministic
	// simulated-NUMA interleaver (default) or real goroutine workers.
	Executor ExecutorKind
	// Machine is the simulated machine to run on.
	Machine numa.Topology
	// Workers is the number of logical workers; 0 means all cores.
	Workers int
	// Step is the initial step size; 0 means a model-specific default.
	Step float64
	// StepDecay multiplies Step after every epoch; 0 means a default.
	StepDecay float64
	// ChunkSize is the staleness granularity of shared replicas: under
	// the simulated executor, the number of consecutive steps a worker
	// executes before the deterministic interleaver moves to the next
	// worker; under the parallel executor, the number of steps between
	// a worker's batched flushes to its shared master. 0 means a
	// default.
	ChunkSize int
	// StealChunk is the parallel executor's work-stealing granularity:
	// the number of work units a worker claims from a queue (its own or
	// an idle-time victim's) per atomic cursor bump. Smaller chunks
	// balance stragglers better; larger chunks amortize the cursor
	// traffic. 0 means a default.
	StealChunk int
	// SyncRounds is how many interleaver rounds pass between
	// asynchronous model-averaging events for PerNode replication.
	// 0 means every round ("as frequently as possible", Section 3.3);
	// negative disables mid-epoch averaging.
	SyncRounds int
	// Placement selects NUMA-local or OS-default data placement.
	Placement Placement
	// DenseStorage stores the data matrix densely (d words per row)
	// instead of CSR (1.5 words per nonzero); only sensible for dense
	// datasets (Appendix A).
	DenseStorage bool
	// ImportanceFraction is the fraction of rows each worker samples
	// per epoch under Importance data replication.
	ImportanceFraction float64
	// Seed drives all traversal randomness.
	Seed int64
	// FixedOrder replaces the per-epoch random traversal permutation
	// with the identity order: under Sharding, worker k processes items
	// {i : i mod workers == k} in increasing i, every epoch. The engine
	// generator is never consumed, so two engines running disjoint
	// shards of one dataset stay bitwise-reproducible against a single
	// engine running the union — the property the cluster coordinator's
	// parity contract rests on. Statistically this is plain cyclic SGD;
	// leave it off unless reproducibility across a re-partitioning is
	// the point.
	FixedOrder bool

	// The remaining knobs exist for emulating competitor systems
	// (internal/baseline): DimmWitted itself runs with all three at
	// their zero defaults.

	// StepOverheadCycles is charged to the worker on every step, the
	// dynamic task-scheduling cost of event-driven systems (GraphLab,
	// GraphChi).
	StepOverheadCycles float64
	// ElementOverheadCycles is charged per data word touched, the
	// per-element graph-maintenance cost of graph-processing systems
	// whose tasks carry per-edge/vertex bookkeeping.
	ElementOverheadCycles float64
	// EpochOverheadCycles is added to every epoch's critical path, the
	// per-job scheduling and fault-tolerance cost of batch systems
	// (MLlib/Spark).
	EpochOverheadCycles float64
	// ComputeScale multiplies the epoch's simulated cycles; > 1 models
	// a slower runtime (the paper measures Scala at ~3x C++). 0 means 1.
	ComputeScale float64
}

// normalizeCommon fills the workload-independent defaults (machine,
// worker count, seed, scale factors); the workload's NormalizePlan
// fills the rest (access, step sizes, chunk granularity).
func (p Plan) normalizeCommon() Plan {
	if p.Machine.Nodes == 0 {
		p.Machine = numa.Local2
	}
	if p.Workers == 0 {
		p.Workers = p.Machine.TotalCores()
	}
	if p.Workers > p.Machine.TotalCores() {
		p.Workers = p.Machine.TotalCores()
	}
	if p.ImportanceFraction == 0 {
		p.ImportanceFraction = 0.1
	}
	if p.StealChunk == 0 {
		p.StealChunk = 64
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.ComputeScale == 0 {
		p.ComputeScale = 1
	}
	return p
}

// validateCommon checks the workload-independent plan constraints; the
// workload's ValidatePlan applies the rest.
func (p Plan) validateCommon() error {
	if err := p.Machine.Validate(); err != nil {
		return err
	}
	if p.Workers <= 0 {
		return fmt.Errorf("core: plan has %d workers", p.Workers)
	}
	switch p.ModelRep {
	case PerCore, PerNode, PerMachine, PerCluster:
	default:
		return fmt.Errorf("core: unknown model replication %v (want PerCore, PerNode, PerMachine, or PerCluster)", p.ModelRep)
	}
	switch p.DataRep {
	case Sharding, FullReplication, Importance:
	default:
		return fmt.Errorf("core: unknown data replication %v (want Sharding, FullReplication, or Importance)", p.DataRep)
	}
	switch p.Executor {
	case ExecSimulated, ExecParallel:
	default:
		return fmt.Errorf("core: unknown executor %v (want simulated or parallel)", p.Executor)
	}
	if p.DataRep == Importance && (p.ImportanceFraction <= 0 || p.ImportanceFraction > 1) {
		return fmt.Errorf("core: importance fraction %v outside (0,1]", p.ImportanceFraction)
	}
	if p.ChunkSize < 0 {
		return fmt.Errorf("core: chunk size %d negative (want >= 1, or 0 for the default)", p.ChunkSize)
	}
	if p.StealChunk < 0 {
		return fmt.Errorf("core: steal chunk %d negative (want >= 1, or 0 for the default)", p.StealChunk)
	}
	return nil
}

// Normalize fills defaults for zero-valued fields and returns the
// completed plan. The model spec is consulted for step-size defaults:
// exact coordinate-descent steps want step 1 with no decay, SGD wants
// a small decaying step.
func (p Plan) Normalize(spec model.Spec) Plan {
	p = p.normalizeCommon()
	if p.Step == 0 {
		if p.Access == model.RowWise {
			p.Step = defaultRowStep(spec)
		} else {
			p.Step = 1.0
		}
	}
	if p.StepDecay == 0 {
		if p.Access == model.RowWise {
			p.StepDecay = 0.95
		} else {
			p.StepDecay = 1.0
		}
	}
	if p.ChunkSize == 0 {
		p.ChunkSize = 16
	}
	return p
}

// defaultRowStep returns a per-model SGD step size that converges on
// the bundled synthetic datasets.
func defaultRowStep(spec model.Spec) float64 {
	switch spec.Name() {
	case "svm":
		return 0.1
	case "lr":
		return 0.2
	case "ls":
		return 0.005
	case "lp":
		return 0.05
	case "qp":
		return 0.1
	default:
		return 0.1
	}
}

// Validate reports an error if the plan is internally inconsistent or
// unsupported by the spec: the workload-independent checks
// (validateCommon) plus the GLM-specific access constraints.
func (p Plan) Validate(spec model.Spec) error {
	if err := p.validateCommon(); err != nil {
		return err
	}
	supported := false
	for _, a := range spec.Supports() {
		if a == p.Access {
			supported = true
		}
	}
	if !supported {
		return fmt.Errorf("core: %s does not support %s access", spec.Name(), p.Access)
	}
	if p.Executor == ExecParallel && p.Access != model.RowWise {
		// Column-wise auxiliary state cannot be kept consistent under
		// unsynchronized concurrent flushes; the simulator stays the
		// only backend for coordinate methods.
		return fmt.Errorf("core: parallel executor supports row-wise access only, got %s", p.Access)
	}
	return nil
}

// String renders the plan as the paper's Figure 14 would.
func (p Plan) String() string {
	exec := ""
	if p.Executor != ExecSimulated {
		exec = ", " + p.Executor.String()
	}
	return fmt.Sprintf("%s/%s/%s on %s (%d workers%s)",
		p.Access, p.ModelRep, p.DataRep, p.Machine.Name, p.Workers, exec)
}
