package core

import (
	"testing"

	"dimmwitted/internal/data"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

// mapCostModel is a test CostModel over plan axes.
type mapCostModel map[string]float64

func axesKey(p Plan) string {
	return p.Access.String() + "/" + p.ModelRep.String() + "/" + p.DataRep.String() +
		"/" + p.Executor.String() + "/" + string(rune('0'+p.StealChunk%10))
}

func (m mapCostModel) MeasuredSeconds(p Plan) (float64, bool) {
	sec, ok := m[axesKey(p)]
	return sec, ok
}

func TestCandidatePlansStaticFirst(t *testing.T) {
	wl := NewGLM(model.NewSVM(), data.Reuters())
	cands, err := CandidatePlans(wl, numa.Local2, ExecSimulated)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 2 {
		t.Fatalf("candidate space has %d plans; want the static pick plus variants", len(cands))
	}
	static, err := ChooseWorkload(wl, numa.Local2, ExecSimulated)
	if err != nil {
		t.Fatal(err)
	}
	if cands[0].ModelRep != static.ModelRep || cands[0].Access != static.Access || cands[0].DataRep != static.DataRep {
		t.Fatalf("candidate 0 = %v, want the static choice %v", cands[0], static)
	}
	seen := map[string]bool{}
	for _, p := range cands {
		if err := validatePlanFor(wl, p); err != nil {
			t.Errorf("candidate %v does not validate: %v", p, err)
		}
		k := axesKey(p)
		if seen[k] {
			t.Errorf("duplicate candidate %v", p)
		}
		seen[k] = true
	}
}

func TestCandidatePlansParallelVariesStealChunk(t *testing.T) {
	wl := NewGLM(model.NewSVM(), data.Reuters())
	cands, err := CandidatePlans(wl, numa.Local2, ExecParallel)
	if err != nil {
		t.Fatal(err)
	}
	chunks := map[int]bool{}
	for _, p := range cands {
		if p.Access != model.RowWise {
			t.Fatalf("parallel candidate %v is not row-wise", p)
		}
		chunks[p.StealChunk] = true
	}
	if len(chunks) < 3 {
		t.Fatalf("parallel candidates cover steal chunks %v; want at least 3 granularities", chunks)
	}
}

func TestChoosePlanModelStaticPrior(t *testing.T) {
	wl := NewGLM(model.NewSVM(), data.Reuters())
	dec, err := ChoosePlanModel(wl, numa.Local2, ExecSimulated, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Source != "static" {
		t.Fatalf("Source = %q with no cost model, want static", dec.Source)
	}
	static, _ := ChooseWorkload(wl, numa.Local2, ExecSimulated)
	if dec.Plan.ModelRep != static.ModelRep || dec.Plan.Access != static.Access {
		t.Fatalf("static decision %v differs from ChooseWorkload %v", dec.Plan, static)
	}
	if dec.RunnerUp == nil {
		t.Fatal("decision has no runner-up despite multiple candidates")
	}
	if dec.PredictedSeconds != 0 {
		t.Fatalf("PredictedSeconds = %v under the static prior, want 0", dec.PredictedSeconds)
	}
}

func TestChoosePlanModelMeasuredOverride(t *testing.T) {
	wl := NewGLM(model.NewSVM(), data.Reuters())
	cands, err := CandidatePlans(wl, numa.Local2, ExecSimulated)
	if err != nil {
		t.Fatal(err)
	}
	// Measure every candidate; make a non-static one the cheapest.
	cm := mapCostModel{}
	for i, p := range cands {
		sec := 1.0 + float64(i)
		if i == len(cands)-1 {
			sec = 0.25
		}
		cm[axesKey(p)] = sec
	}
	dec, err := ChoosePlanModel(wl, numa.Local2, ExecSimulated, cm)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Source != "measured" {
		t.Fatalf("Source = %q with a warmed cost model, want measured", dec.Source)
	}
	want := cands[len(cands)-1]
	if axesKey(dec.Plan) != axesKey(want) {
		t.Fatalf("measured winner = %v, want %v", dec.Plan, want)
	}
	if dec.PredictedSeconds != 0.25 {
		t.Fatalf("PredictedSeconds = %v, want 0.25", dec.PredictedSeconds)
	}
	// With every candidate measured, the runner-up is the cheapest
	// non-winner.
	if dec.RunnerUp == nil {
		t.Fatal("no runner-up")
	}
	if axesKey(*dec.RunnerUp) != axesKey(cands[0]) {
		t.Fatalf("runner-up = %v, want the next-cheapest %v", *dec.RunnerUp, cands[0])
	}
}

// A partially warmed store: the measured candidates decide the winner,
// and the runner-up is an unmeasured candidate (discovery beats
// re-measuring).
func TestChoosePlanModelRunnerUpPrefersUnmeasured(t *testing.T) {
	wl := NewGLM(model.NewSVM(), data.Reuters())
	cands, err := CandidatePlans(wl, numa.Local2, ExecSimulated)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 3 {
		t.Skipf("need 3 candidates, have %d", len(cands))
	}
	cm := mapCostModel{axesKey(cands[0]): 1.0, axesKey(cands[1]): 0.5}
	dec, err := ChoosePlanModel(wl, numa.Local2, ExecSimulated, cm)
	if err != nil {
		t.Fatal(err)
	}
	if axesKey(dec.Plan) != axesKey(cands[1]) {
		t.Fatalf("winner = %v, want the cheapest measured %v", dec.Plan, cands[1])
	}
	if dec.RunnerUp == nil || axesKey(*dec.RunnerUp) != axesKey(cands[2]) {
		t.Fatalf("runner-up = %v, want the unmeasured %v", dec.RunnerUp, cands[2])
	}
}
