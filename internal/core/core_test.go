package core

import (
	"math"
	"testing"

	"dimmwitted/internal/data"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

// mustEngine builds an engine or fails the test.
func mustEngine(t *testing.T, spec model.Spec, ds *data.Dataset, plan Plan) *Engine {
	t.Helper()
	e, err := New(spec, ds, plan)
	if err != nil {
		t.Fatalf("New(%s on %s): %v", spec.Name(), ds.Name, err)
	}
	return e
}

// epochsToLoss runs until the loss target is reached and returns the
// epoch count, failing if it never converges.
func epochsToLoss(t *testing.T, e *Engine, target float64, maxEpochs int) RunResult {
	t.Helper()
	res := e.RunToLoss(target, maxEpochs)
	if !res.Converged {
		t.Fatalf("%v did not reach loss %v in %d epochs (final %v)", e.Plan(), target, maxEpochs, res.FinalLoss)
	}
	return res
}

func TestPlanNormalizeDefaults(t *testing.T) {
	p := Plan{}.Normalize(model.NewSVM())
	if p.Machine.Name != "local2" {
		t.Errorf("default machine = %s", p.Machine.Name)
	}
	if p.Workers != numa.Local2.TotalCores() {
		t.Errorf("default workers = %d", p.Workers)
	}
	if p.Step != 0.1 || p.StepDecay != 0.95 {
		t.Errorf("default SGD step = %v decay %v", p.Step, p.StepDecay)
	}
	pc := Plan{Access: model.ColWise}.Normalize(model.NewLS())
	if pc.Step != 1.0 || pc.StepDecay != 1.0 {
		t.Errorf("default CD step = %v decay %v", pc.Step, pc.StepDecay)
	}
}

func TestPlanValidateRejectsUnsupportedAccess(t *testing.T) {
	p := Plan{Access: model.ColWise}.Normalize(model.NewSVM())
	if err := p.Validate(model.NewSVM()); err == nil {
		t.Error("SVM column-wise plan validated")
	}
}

func TestEngineRejectsBadPlans(t *testing.T) {
	if _, err := New(model.NewSVM(), data.Reuters(), Plan{Access: model.ColWise}); err == nil {
		t.Error("unsupported access accepted")
	}
	if _, err := New(model.NewLS(), data.MusicRegression(), Plan{Access: model.ColWise, DataRep: Importance}); err == nil {
		t.Error("Importance with column access accepted")
	}
}

func TestWorkerSpreadAcrossNodes(t *testing.T) {
	e := mustEngine(t, model.NewSVM(), data.Reuters(), Plan{Workers: 4, Machine: numa.Local2})
	counts := map[int]int{}
	for _, w := range e.workers {
		counts[w.core.Node]++
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Errorf("workers not spread: %v", counts)
	}
}

func TestReplicaCountsPerStrategy(t *testing.T) {
	ds := data.Reuters()
	cases := []struct {
		rep  ModelReplication
		want int
	}{
		{PerMachine, 1},
		{PerNode, 2},
		{PerCore, 12},
	}
	for _, c := range cases {
		e := mustEngine(t, model.NewSVM(), ds, Plan{ModelRep: c.rep, Machine: numa.Local2})
		if len(e.replicas) != c.want {
			t.Errorf("%v: %d replicas, want %d", c.rep, len(e.replicas), c.want)
		}
	}
}

func TestSVMConvergesUnderDefaultPlan(t *testing.T) {
	ds := data.Reuters()
	spec := model.NewSVM()
	e := mustEngine(t, spec, ds, Plan{ModelRep: PerNode, DataRep: FullReplication})
	init := spec.Loss(ds, spec.NewReplica(ds).X)
	res := e.RunToLoss(init/4, 30)
	if !res.Converged {
		t.Fatalf("SVM did not converge: final loss %v vs init %v", res.FinalLoss, init)
	}
	if res.Time <= 0 {
		t.Error("no simulated time accumulated")
	}
	if e.Epoch() != res.Epochs {
		t.Errorf("epoch bookkeeping: %d vs %d", e.Epoch(), res.Epochs)
	}
}

func TestDeterminismUnderSeed(t *testing.T) {
	run := func() []float64 {
		e := mustEngine(t, model.NewSVM(), data.Reuters(), Plan{ModelRep: PerNode, Seed: 42})
		var losses []float64
		for _, er := range e.RunEpochs(5) {
			losses = append(losses, er.Loss)
		}
		return losses
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("epoch %d loss differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestModelReplicationStatisticalOrdering(t *testing.T) {
	// Figure 8(a): PerMachine needs the fewest epochs to a given loss,
	// PerCore the most, PerNode in between (allowing ties).
	ds := data.RCV1()
	spec := model.NewSVM()
	target := spec.Loss(ds, spec.NewReplica(ds).X) * 0.25
	epochs := map[ModelReplication]int{}
	for _, rep := range []ModelReplication{PerMachine, PerNode, PerCore} {
		e := mustEngine(t, spec, ds, Plan{ModelRep: rep, DataRep: Sharding, Seed: 3})
		epochs[rep] = epochsToLoss(t, e, target, 80).Epochs
	}
	if epochs[PerMachine] > epochs[PerNode] {
		t.Errorf("PerMachine epochs (%d) > PerNode (%d)", epochs[PerMachine], epochs[PerNode])
	}
	if epochs[PerNode] > epochs[PerCore] {
		t.Errorf("PerNode epochs (%d) > PerCore (%d)", epochs[PerNode], epochs[PerCore])
	}
}

func TestModelReplicationHardwareOrdering(t *testing.T) {
	// Figure 8(b): PerNode finishes an epoch much faster than
	// PerMachine on a dense-update workload; PerCore is slightly
	// faster than PerNode.
	ds := data.RCV1()
	spec := model.NewSVM()
	times := map[ModelReplication]float64{}
	for _, rep := range []ModelReplication{PerMachine, PerNode, PerCore} {
		e := mustEngine(t, spec, ds, Plan{ModelRep: rep, DataRep: Sharding})
		er := e.RunEpoch()
		times[rep] = er.SimTime.Seconds()
	}
	if ratio := times[PerMachine] / times[PerNode]; ratio < 5 {
		t.Errorf("PerMachine/PerNode epoch-time ratio = %.1f, want >= 5 (paper: ~23)", ratio)
	}
	if times[PerCore] >= times[PerNode] {
		t.Errorf("PerCore (%v) not faster than PerNode (%v)", times[PerCore], times[PerNode])
	}
}

func TestPerMachineIncursMoreInvalidations(t *testing.T) {
	ds := data.RCV1()
	run := func(rep ModelReplication) numa.Counters {
		e := mustEngine(t, model.NewSVM(), ds, Plan{ModelRep: rep, DataRep: Sharding})
		e.RunEpoch()
		return e.Counters()
	}
	pm, pn := run(PerMachine), run(PerNode)
	if pm.Invalidations <= pn.Invalidations {
		t.Errorf("PerMachine invalidations (%d) not above PerNode (%d)", pm.Invalidations, pn.Invalidations)
	}
}

func TestDataReplicationEpochCost(t *testing.T) {
	// Figure 9(b): FullReplication's epoch is ~Nodes x Sharding's.
	ds := data.Reuters()
	spec := model.NewSVM()
	shard := mustEngine(t, spec, ds, Plan{ModelRep: PerNode, DataRep: Sharding}).RunEpoch()
	full := mustEngine(t, spec, ds, Plan{ModelRep: PerNode, DataRep: FullReplication}).RunEpoch()
	ratio := full.SimTime.Seconds() / shard.SimTime.Seconds()
	if ratio < 1.5 || ratio > 3.0 {
		t.Errorf("FullRepl/Sharding epoch-time ratio on 2 nodes = %.2f, want ~2", ratio)
	}
	if full.Steps != 2*shard.Steps {
		t.Errorf("FullRepl steps = %d, want 2x sharding's %d", full.Steps, shard.Steps)
	}
}

func TestFullReplicationNeedsNoMoreEpochs(t *testing.T) {
	// Figure 9(a): to a low loss, FullReplication converges in no more
	// epochs than Sharding (usually fewer).
	ds := data.Reuters()
	spec := model.NewSVM()
	target := spec.Loss(ds, spec.NewReplica(ds).X) * 0.3
	full := epochsToLoss(t, mustEngine(t, spec, ds,
		Plan{ModelRep: PerCore, DataRep: FullReplication, Seed: 5}), target, 120)
	shard := epochsToLoss(t, mustEngine(t, spec, ds,
		Plan{ModelRep: PerCore, DataRep: Sharding, Seed: 5}), target, 120)
	if full.Epochs > shard.Epochs {
		t.Errorf("FullRepl epochs (%d) > Sharding (%d) at low loss", full.Epochs, shard.Epochs)
	}
}

func TestLPColumnBeatsRowEndToEnd(t *testing.T) {
	// Figure 12(a) LP: column-wise converges to 1%-grade losses that
	// row-wise cannot reach in comparable epochs.
	ds := data.AmazonLP()
	spec := model.NewLP()
	col := mustEngine(t, spec, ds, Plan{Access: model.ColWise, ModelRep: PerMachine, DataRep: Sharding})
	colLoss := col.RunEpochs(10)[9].Loss
	row := mustEngine(t, spec, ds, Plan{Access: model.RowWise, ModelRep: PerNode, DataRep: Sharding})
	rowLoss := row.RunEpochs(10)[9].Loss
	if colLoss >= rowLoss {
		t.Errorf("LP: column-wise loss %v not below row-wise %v after 10 epochs", colLoss, rowLoss)
	}
}

func TestLPPerMachineBeatsPerNodeOverall(t *testing.T) {
	// Figure 12(b) LP: with sparse single-component updates,
	// PerMachine reaches a low loss faster in simulated time because
	// its epochs are barely slower and far fewer.
	ds := data.AmazonLP()
	spec := model.NewLP()
	optimal := func() float64 {
		e := mustEngine(t, spec, ds, Plan{Access: model.ColWise, ModelRep: PerMachine})
		return e.RunEpochs(60)[59].Loss
	}()
	target := optimal * 1.05
	pm := epochsToLoss(t, mustEngine(t, spec, ds,
		Plan{Access: model.ColWise, ModelRep: PerMachine, Seed: 2}), target, 120)
	pn := epochsToLoss(t, mustEngine(t, spec, ds,
		Plan{Access: model.ColWise, ModelRep: PerNode, Seed: 2}), target, 400)
	if pm.Time >= pn.Time {
		t.Errorf("LP: PerMachine time %v not below PerNode %v", pm.Time, pn.Time)
	}
}

func TestOptimizerChoosesPaperPlans(t *testing.T) {
	// Figure 14: row-wise/PerNode for SVM-LR-LS, column/PerMachine for
	// LP and QP, FullReplication everywhere.
	cases := []struct {
		spec model.Spec
		ds   *data.Dataset
		want model.Access
		rep  ModelReplication
	}{
		{model.NewSVM(), data.RCV1(), model.RowWise, PerNode},
		{model.NewSVM(), data.Music(), model.RowWise, PerNode},
		{model.NewLR(), data.RCV1(), model.RowWise, PerNode},
		{model.NewLS(), data.MusicRegression(), model.RowWise, PerNode},
		{model.NewLP(), data.AmazonLP(), model.ColWise, PerMachine},
		{model.NewLP(), data.GoogleLP(), model.ColWise, PerMachine},
		{model.NewQP(), data.AmazonQP(), model.ColToRow, PerMachine},
		{model.NewQP(), data.GoogleQP(), model.ColToRow, PerMachine},
	}
	for _, c := range cases {
		plan, err := Choose(c.spec, c.ds, numa.Local2)
		if err != nil {
			t.Fatalf("Choose(%s, %s): %v", c.spec.Name(), c.ds.Name, err)
		}
		if plan.Access != c.want {
			t.Errorf("%s on %s: chose %v, want %v", c.spec.Name(), c.ds.Name, plan.Access, c.want)
		}
		if plan.ModelRep != c.rep {
			t.Errorf("%s on %s: chose %v, want %v", c.spec.Name(), c.ds.Name, plan.ModelRep, c.rep)
		}
		if plan.DataRep != FullReplication {
			t.Errorf("%s on %s: chose %v, want FullReplication", c.spec.Name(), c.ds.Name, plan.DataRep)
		}
	}
}

func TestOptimizerRobustToAlpha(t *testing.T) {
	// Section 3.2: the decision is stable for write costs 4x-100x the
	// read cost. We sweep alpha by faking topologies.
	ds := data.RCV1()
	for _, alphaNodes := range []int{2, 4, 8} {
		top := numa.Local2
		top.Nodes = alphaNodes
		plan, err := Choose(model.NewSVM(), ds, top)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Access != model.RowWise {
			t.Errorf("alpha(%d nodes): SVM access flipped to %v", alphaNodes, plan.Access)
		}
	}
}

func TestCostRatio(t *testing.T) {
	ds := data.AmazonLP() // n_i = 2 for every row
	var sumN, sumN2 float64
	sumN = 2 * float64(ds.Rows())
	sumN2 = 4 * float64(ds.Rows())
	alpha := 10.0
	want := (1 + alpha) * sumN / (sumN2 + alpha*float64(ds.Cols()))
	if got := CostRatio(ds, alpha); math.Abs(got-want) > 1e-9 {
		t.Errorf("CostRatio = %v, want %v", got, want)
	}
}

func TestImportanceSampling(t *testing.T) {
	ds := data.MusicRegression()
	spec := model.NewLS()
	e := mustEngine(t, spec, ds, Plan{
		Access: model.RowWise, ModelRep: PerNode,
		DataRep: Importance, ImportanceFraction: 0.1,
	})
	er := e.RunEpoch()
	// The quota is per node (Appendix C.4): fraction x rows x nodes.
	wantSteps := int(0.1*float64(ds.Rows())) * numa.Local2.Nodes
	if er.Steps != wantSteps {
		t.Errorf("importance epoch steps = %d, want %d", er.Steps, wantSteps)
	}
	// It should still make progress on the loss.
	init := spec.Loss(ds, spec.NewReplica(ds).X)
	e.RunEpochs(10)
	if e.Loss() >= init/2 {
		t.Errorf("importance sampling failed to converge: %v -> %v", init, e.Loss())
	}
}

func TestImportanceRejectsHugeDimension(t *testing.T) {
	ds := data.GoogleLP() // d = 5000 > leverage limit
	_, err := New(model.NewLP(), ds, Plan{
		Access: model.RowWise, DataRep: Importance,
	})
	if err == nil {
		t.Error("Importance on 5000-dim dataset accepted")
	}
}

func TestPlacementOSSlower(t *testing.T) {
	// Appendix A: NUMA-collocated data beats the OS default.
	ds := data.RCV1()
	spec := model.NewSVM()
	osTime := mustEngine(t, spec, ds, Plan{ModelRep: PerNode, Placement: PlacementOS}).RunEpoch().SimTime
	numaTime := mustEngine(t, spec, ds, Plan{ModelRep: PerNode, Placement: PlacementNUMA}).RunEpoch().SimTime
	ratio := osTime.Seconds() / numaTime.Seconds()
	if ratio < 1.1 {
		t.Errorf("OS/NUMA placement ratio = %.2f, want > 1.1 (paper: up to 2)", ratio)
	}
}

func TestDenseVsSparseStorage(t *testing.T) {
	// Appendix A: dense storage wins on fully dense data; sparse
	// storage wins when data is heavily subsampled.
	spec := model.NewSVM()
	dense := data.Music()
	dTime := mustEngine(t, spec, dense, Plan{ModelRep: PerNode, DenseStorage: true}).RunEpoch().SimTime
	sTime := mustEngine(t, spec, dense, Plan{ModelRep: PerNode}).RunEpoch().SimTime
	if dTime >= sTime {
		t.Errorf("dense storage (%v) not faster than sparse (%v) on dense data", dTime, sTime)
	}
	sub := data.SubsampleSparsity(dense, 0.05, 1)
	dTime = mustEngine(t, spec, sub, Plan{ModelRep: PerNode, DenseStorage: true}).RunEpoch().SimTime
	sTime = mustEngine(t, spec, sub, Plan{ModelRep: PerNode}).RunEpoch().SimTime
	if sTime >= dTime {
		t.Errorf("sparse storage (%v) not faster than dense (%v) at 5%% density", sTime, dTime)
	}
}

func TestRunToLossStopsAtMaxEpochs(t *testing.T) {
	e := mustEngine(t, model.NewSVM(), data.Reuters(), Plan{})
	res := e.RunToLoss(0, 3) // unreachable target
	if res.Converged || res.Epochs != 3 || len(res.History) != 3 {
		t.Errorf("RunToLoss bookkeeping wrong: %+v", res)
	}
}

func TestProbeStats(t *testing.T) {
	ds := data.Reuters()
	st := ProbeStats(model.NewSVM(), ds, model.RowWise, 32)
	if st.DataWords <= 0 || st.ModelReads <= 0 {
		t.Errorf("probe stats empty: %+v", st)
	}
	avg := ds.AvgRowNNZ()
	if float64(st.DataWords) > 3*avg || float64(st.DataWords) < avg/3 {
		t.Errorf("probe data words %d far from avg nnz %v", st.DataWords, avg)
	}
	cst := ProbeStats(model.NewLP(), data.AmazonLP(), model.ColWise, 32)
	if cst.ModelWrites != 1 {
		t.Errorf("LP col probe writes = %d, want 1", cst.ModelWrites)
	}
}

func TestCollisionProbShape(t *testing.T) {
	ds := data.RCV1()
	e := mustEngine(t, model.NewSVM(), ds, Plan{ModelRep: PerMachine})
	// Dense-ish text updates on a small model: meaningful contention.
	denseP := e.modelReg[0].WriteCollisionProb
	if denseP < 0.05 || denseP > 1 {
		t.Errorf("SVM/RCV1 collision prob = %v, want meaningful", denseP)
	}
	// Single-component LP updates on a large model: near zero.
	el := mustEngine(t, model.NewLP(), data.GoogleLP(), Plan{Access: model.ColWise, ModelRep: PerMachine})
	sparseP := el.modelReg[0].WriteCollisionProb
	if sparseP > 0.01 {
		t.Errorf("LP/Google collision prob = %v, want ~0", sparseP)
	}
	if denseP < 10*sparseP {
		t.Errorf("contention not separated: dense %v vs sparse %v", denseP, sparseP)
	}
}

func TestParallelSumCorrectUnderSharding(t *testing.T) {
	ds := data.ParallelSum(1200, 4)
	spec := model.NewParallelSum()
	for _, rep := range []ModelReplication{PerMachine, PerNode, PerCore} {
		e := mustEngine(t, spec, ds, Plan{ModelRep: rep, DataRep: Sharding})
		e.RunEpoch()
		if got := e.Model()[0]; got != 4800 {
			t.Errorf("%v: sum = %v, want 4800", rep, got)
		}
	}
}

func TestParallelSumPerNodeFasterThanPerMachine(t *testing.T) {
	// Figure 13's mechanism: all threads hammering one accumulator
	// (Hogwild!'s layout) is slower than one accumulator per node.
	ds := data.ParallelSum(2000, 8)
	spec := model.NewParallelSum()
	pm := mustEngine(t, spec, ds, Plan{ModelRep: PerMachine, DataRep: Sharding}).RunEpoch()
	pn := mustEngine(t, spec, ds, Plan{ModelRep: PerNode, DataRep: Sharding}).RunEpoch()
	if pn.SimTime >= pm.SimTime {
		t.Errorf("PerNode sum (%v) not faster than PerMachine (%v)", pn.SimTime, pm.SimTime)
	}
}

func TestParallelExecutorConverges(t *testing.T) {
	ds := data.Reuters()
	spec := model.NewSVM()
	init := spec.Loss(ds, spec.NewReplica(ds).X)
	for _, rep := range []ModelReplication{PerMachine, PerNode, PerCore} {
		e := mustEngine(t, spec, ds, Plan{Executor: ExecParallel, ModelRep: rep, Workers: 4, ChunkSize: 8})
		var er EpochResult
		for i := 0; i < 8; i++ {
			er = e.RunEpoch()
		}
		if er.Loss >= init/2 {
			t.Errorf("%v: parallel loss %v vs init %v", rep, er.Loss, init)
		}
		if er.SimTime != 0 {
			t.Errorf("%v: parallel epoch reported simulated time %v", rep, er.SimTime)
		}
		if er.WallTime <= 0 {
			t.Errorf("%v: parallel epoch reported no wall time", rep)
		}
	}
}

func TestParallelExecutorRejectsColumnAccess(t *testing.T) {
	_, err := New(model.NewLP(), data.AmazonLP(), Plan{Executor: ExecParallel, Access: model.ColWise})
	if err == nil {
		t.Error("parallel column-wise accepted")
	}
}

func TestStringers(t *testing.T) {
	if PerNode.String() != "PerNode" || Sharding.String() != "Sharding" ||
		FullReplication.String() != "FullReplication" || Importance.String() != "Importance" {
		t.Error("replication stringers wrong")
	}
	if PlacementOS.String() != "OS" || PlacementNUMA.String() != "NUMA" {
		t.Error("placement stringer wrong")
	}
	p := Plan{}.Normalize(model.NewSVM())
	if p.String() == "" {
		t.Error("plan stringer empty")
	}
	if ModelReplication(9).String() == "" || DataReplication(9).String() == "" {
		t.Error("unknown enums should stringify")
	}
}
