package core

import (
	"strings"
	"testing"

	"dimmwitted/internal/data"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

func TestPerClusterRejectedByEngine(t *testing.T) {
	_, err := New(model.NewSVM(), data.Reuters(), Plan{ModelRep: PerCluster})
	if err == nil || !strings.Contains(err.Error(), "dwcoord") {
		t.Fatalf("PerCluster plan on a single engine: err = %v, want pointer to the coordinator", err)
	}
}

func TestPerClusterValidatesAsPlan(t *testing.T) {
	// The plan grammar itself accepts PerCluster — it is the engine,
	// not Validate, that refuses to run one — so a coordinator can
	// validate the cluster-level plan with the same code path.
	p := Plan{ModelRep: PerCluster}.Normalize(model.NewSVM())
	if err := p.Validate(model.NewSVM()); err != nil {
		t.Fatalf("PerCluster plan failed validation: %v", err)
	}
	if got := PerCluster.String(); got != "PerCluster" {
		t.Fatalf("PerCluster.String() = %q", got)
	}
}

// TestFixedOrderSeedInvariant pins the property the cluster parity
// test builds on: with FixedOrder the traversal makes no RNG draws,
// so two engines differing only in seed walk identical trajectories.
func TestFixedOrderSeedInvariant(t *testing.T) {
	runEpochs := func(seed int64) []float64 {
		e := mustEngine(t, model.NewSVM(), data.Reuters(), Plan{
			ModelRep:   PerNode,
			DataRep:    Sharding,
			Machine:    numa.Local2,
			Seed:       seed,
			FixedOrder: true,
		})
		defer e.Close()
		e.RunEpochs(3)
		return append([]float64(nil), e.Model()...)
	}
	a, b := runEpochs(1), runEpochs(99)
	if len(a) != len(b) {
		t.Fatalf("model dims differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("X[%d] differs across seeds under FixedOrder: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFixedOrderRoundTripsThroughSnapshot(t *testing.T) {
	e := mustEngine(t, model.NewSVM(), data.Reuters(), Plan{
		ModelRep:   PerNode,
		DataRep:    Sharding,
		FixedOrder: true,
	})
	defer e.Close()
	e.RunEpochs(1)
	snap := e.Snapshot()
	if !snap.Plan.FixedOrder {
		t.Fatal("snapshot dropped FixedOrder")
	}
	back, err := DecodeSnapshot(EncodeSnapshot(snap))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !back.Plan.FixedOrder {
		t.Fatal("codec dropped FixedOrder")
	}
}

func TestClusterEpochSeconds(t *testing.T) {
	// One peer is just the local run.
	if got := ClusterEpochSeconds(12, 1, 1000, 1e9); got != 12 {
		t.Fatalf("single peer = %v, want 12", got)
	}
	// Compute divides by peers; transfer adds 2·peers·dim·8/bw.
	got := ClusterEpochSeconds(12, 3, 1000, 1e6)
	want := 4.0 + 2*3*1000*8/1e6
	if got != want {
		t.Fatalf("3 peers = %v, want %v", got, want)
	}
	// Zero bandwidth prices transfer as free rather than dividing by zero.
	if got := ClusterEpochSeconds(12, 3, 1000, 0); got != 4 {
		t.Fatalf("zero bandwidth = %v, want 4", got)
	}
}
