package core

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"strings"
	"testing"
	"time"

	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

// testSnapshot builds a fully populated snapshot exercising every
// codec field: non-default plan knobs, worker generators, replica
// blobs, and awkward float values.
func testSnapshot() Snapshot {
	return Snapshot{
		Workload: WorkloadGibbs,
		Spec:     "gibbs",
		Dataset:  "cycle5",
		Epoch:    17,
		Loss:     0.6931471805599453,
		SimTime:  1234567 * time.Nanosecond,
		WallTime: 7654321 * time.Nanosecond,
		Step:     0.95,
		Plan: Plan{
			Access:                model.ColToRow,
			ModelRep:              PerNode,
			DataRep:               FullReplication,
			Executor:              ExecParallel,
			Placement:             PlacementOS,
			DenseStorage:          true,
			Machine:               numa.Local4,
			Workers:               7,
			Step:                  1,
			StepDecay:             1,
			ChunkSize:             1,
			SyncRounds:            -1,
			ImportanceFraction:    0.1,
			Seed:                  42,
			StepOverheadCycles:    3.5,
			ElementOverheadCycles: 0.25,
			EpochOverheadCycles:   1e6,
			ComputeScale:          3,
			FixedOrder:            true,
		},
		DataRows:    4321,
		DataVersion: 6,
		X:           []float64{0, 1, 0.5, math.Inf(1), math.SmallestNonzeroFloat64, -0},
		EngineRNG:   RNGState{Seed: 42, Draws: 99},
		WorkerRNG:   []RNGState{{Seed: 43, Draws: 1}, {Seed: 44, Draws: 0}},
		Priv:        [][]byte{{1, 2, 3}, {}, []byte("chain")},
	}
}

// snapshotsEqual compares every field bit-for-bit (NaN-safe).
func snapshotsEqual(t *testing.T, a, b Snapshot) {
	t.Helper()
	if a.Workload != b.Workload || a.Spec != b.Spec || a.Dataset != b.Dataset ||
		a.Epoch != b.Epoch || a.SimTime != b.SimTime || a.WallTime != b.WallTime ||
		a.DataRows != b.DataRows || a.DataVersion != b.DataVersion {
		t.Fatalf("metadata changed: %+v vs %+v", a, b)
	}
	if math.Float64bits(a.Loss) != math.Float64bits(b.Loss) || math.Float64bits(a.Step) != math.Float64bits(b.Step) {
		t.Fatalf("loss/step changed: %v/%v vs %v/%v", a.Loss, a.Step, b.Loss, b.Step)
	}
	if a.Plan != b.Plan {
		t.Fatalf("plan changed:\n%+v\n%+v", a.Plan, b.Plan)
	}
	if a.EngineRNG != b.EngineRNG {
		t.Fatalf("engine rng changed: %+v vs %+v", a.EngineRNG, b.EngineRNG)
	}
	if len(a.WorkerRNG) != len(b.WorkerRNG) {
		t.Fatalf("worker rng count changed: %d vs %d", len(a.WorkerRNG), len(b.WorkerRNG))
	}
	for i := range a.WorkerRNG {
		if a.WorkerRNG[i] != b.WorkerRNG[i] {
			t.Fatalf("worker rng %d changed", i)
		}
	}
	if len(a.X) != len(b.X) {
		t.Fatalf("X length changed: %d vs %d", len(a.X), len(b.X))
	}
	for i := range a.X {
		if math.Float64bits(a.X[i]) != math.Float64bits(b.X[i]) {
			t.Fatalf("X[%d] changed: %v vs %v", i, a.X[i], b.X[i])
		}
	}
	if len(a.Priv) != len(b.Priv) {
		t.Fatalf("Priv count changed: %d vs %d", len(a.Priv), len(b.Priv))
	}
	for i := range a.Priv {
		if !bytes.Equal(a.Priv[i], b.Priv[i]) {
			t.Fatalf("Priv[%d] changed", i)
		}
	}
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	s := testSnapshot()
	back, err := DecodeSnapshot(EncodeSnapshot(s))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	snapshotsEqual(t, s, back)
}

func TestSnapshotCodecRoundTripMinimal(t *testing.T) {
	s := Snapshot{Workload: WorkloadGLM, Spec: "svm", Dataset: "reuters"}
	back, err := DecodeSnapshot(EncodeSnapshot(s))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	snapshotsEqual(t, s, back)
}

func TestSnapshotCodecNaN(t *testing.T) {
	s := testSnapshot()
	s.Loss = math.NaN()
	s.X = []float64{math.NaN()}
	back, err := DecodeSnapshot(EncodeSnapshot(s))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	snapshotsEqual(t, s, back)
}

func TestSnapshotCodecRejectsCorruption(t *testing.T) {
	good := EncodeSnapshot(testSnapshot())
	cases := map[string]func([]byte) []byte{
		"empty":        func(b []byte) []byte { return nil },
		"short":        func(b []byte) []byte { return b[:5] },
		"bad magic":    func(b []byte) []byte { b[0] ^= 0xFF; return b },
		"bad version":  func(b []byte) []byte { b[6] = 0xFF; return b },
		"flipped bit":  func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b },
		"truncated":    func(b []byte) []byte { return b[:len(b)-9] },
		"trailing":     func(b []byte) []byte { return append(b, 0) },
		"crc mismatch": func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b },
	}
	for name, corrupt := range cases {
		data := corrupt(append([]byte(nil), good...))
		if _, err := DecodeSnapshot(data); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

func TestSnapshotCodecRejectsNewerVersion(t *testing.T) {
	data := EncodeSnapshot(testSnapshot())
	// Stamp a future version with a valid CRC: the decoder must reject
	// it by version, not by checksum.
	binary.LittleEndian.PutUint16(data[6:], snapVersion+1)
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(data[:len(data)-4]))
	_, err := DecodeSnapshot(data)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want version error, got %v", err)
	}
}

// TestSnapshotCodecReadsVersion1 pins backward compatibility: a
// version-1 file is the current encoding minus the appended tails —
// v2's StealChunk, v3's DataRows/DataVersion, and v4's FixedOrder —
// and must decode with those fields zero (StealChunk renormalizes to
// the default when the plan goes back through an engine).
func TestSnapshotCodecReadsVersion1(t *testing.T) {
	s := testSnapshot()
	s.Plan.StealChunk = 7
	data := EncodeSnapshot(s)
	// Drop the appended tails (8-byte StealChunk + 8-byte DataRows +
	// 8-byte DataVersion + 1-byte FixedOrder before the 4-byte CRC),
	// restamp version 1 and recompute the CRC.
	v1 := append([]byte(nil), data[:len(data)-29]...)
	binary.LittleEndian.PutUint16(v1[6:], 1)
	v1 = binary.LittleEndian.AppendUint32(v1, crc32.ChecksumIEEE(v1))

	back, err := DecodeSnapshot(v1)
	if err != nil {
		t.Fatalf("version-1 decode: %v", err)
	}
	if back.Plan.StealChunk != 0 {
		t.Errorf("version-1 steal chunk = %d, want 0", back.Plan.StealChunk)
	}
	s.Plan.StealChunk = 0
	s.Plan.FixedOrder = false
	s.DataRows, s.DataVersion = 0, 0
	snapshotsEqual(t, s, back)
}

// TestSnapshotCodecReadsVersion2 pins the next seam: a version-2 file
// (everything through StealChunk, no ingest fields, no FixedOrder)
// must decode with DataRows, DataVersion, and FixedOrder zero.
func TestSnapshotCodecReadsVersion2(t *testing.T) {
	s := testSnapshot()
	data := EncodeSnapshot(s)
	// Drop the v3+v4 tail (8-byte DataRows + 8-byte DataVersion +
	// 1-byte FixedOrder before the 4-byte CRC), restamp version 2 and
	// recompute the CRC.
	v2 := append([]byte(nil), data[:len(data)-21]...)
	binary.LittleEndian.PutUint16(v2[6:], 2)
	v2 = binary.LittleEndian.AppendUint32(v2, crc32.ChecksumIEEE(v2))

	back, err := DecodeSnapshot(v2)
	if err != nil {
		t.Fatalf("version-2 decode: %v", err)
	}
	if back.DataRows != 0 || back.DataVersion != 0 {
		t.Errorf("version-2 ingest fields = %d/%d, want 0/0", back.DataRows, back.DataVersion)
	}
	s.DataRows, s.DataVersion = 0, 0
	s.Plan.FixedOrder = false
	snapshotsEqual(t, s, back)
}

// TestSnapshotCodecReadsVersion3 pins the newest seam: a version-3
// file (everything through DataVersion, no FixedOrder byte) must
// decode with FixedOrder false.
func TestSnapshotCodecReadsVersion3(t *testing.T) {
	s := testSnapshot()
	data := EncodeSnapshot(s)
	// Drop the v4 tail (1-byte FixedOrder before the 4-byte CRC),
	// restamp version 3 and recompute the CRC.
	v3 := append([]byte(nil), data[:len(data)-5]...)
	binary.LittleEndian.PutUint16(v3[6:], 3)
	v3 = binary.LittleEndian.AppendUint32(v3, crc32.ChecksumIEEE(v3))

	back, err := DecodeSnapshot(v3)
	if err != nil {
		t.Fatalf("version-3 decode: %v", err)
	}
	if back.Plan.FixedOrder {
		t.Errorf("version-3 fixed order = true, want false")
	}
	s.Plan.FixedOrder = false
	snapshotsEqual(t, s, back)
}

func TestSnapshotCodecRejectsLyingLengths(t *testing.T) {
	// A claimed huge model vector must fail on the length check (before
	// any allocation), not attempt to read 2^31 floats.
	s := Snapshot{Spec: strings.Repeat("x", 10)}
	data := EncodeSnapshot(s)
	// The spec length prefix sits right after workload kind (1 byte)
	// at offset 8+1. Re-stamp the CRC so the lying length itself is
	// what the decoder trips on.
	data[9] = 0xFF
	data[10] = 0xFF
	data[11] = 0xFF
	data[12] = 0x7F
	body := data[:len(data)-4]
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(body))
	if _, err := DecodeSnapshot(data); err == nil || !strings.Contains(err.Error(), "exceeds remaining input") {
		t.Fatalf("want length error, got %v", err)
	}
}

func TestSnapshotCodecRejectsUnboundedDraws(t *testing.T) {
	// Restore replays a generator in O(Draws); a crafted file claiming
	// an astronomical position must be rejected at decode, not hang the
	// restore. (CRC-32 is integrity, not authentication, so the file
	// can be perfectly well-formed.)
	s := testSnapshot()
	s.EngineRNG.Draws = MaxRNGDraws + 1
	if _, err := DecodeSnapshot(EncodeSnapshot(s)); err == nil || !strings.Contains(err.Error(), "replay bound") {
		t.Fatalf("want replay-bound error, got %v", err)
	}
	s = testSnapshot()
	s.WorkerRNG[1].Draws = MaxRNGDraws + 1
	if _, err := DecodeSnapshot(EncodeSnapshot(s)); err == nil || !strings.Contains(err.Error(), "replay bound") {
		t.Fatalf("want replay-bound error for worker generator, got %v", err)
	}
}

func TestCapRNGState(t *testing.T) {
	// Replayable positions pass through untouched.
	st := RNGState{Seed: 42, Draws: MaxRNGDraws}
	if got := CapRNGState(st); got != st {
		t.Fatalf("in-bound state changed: %+v", got)
	}
	// Past the bound the state degrades to a fresh derived generator —
	// encodable, decodable, and not the original seed at position zero
	// (which would replay randomness the run already consumed).
	over := RNGState{Seed: 42, Draws: MaxRNGDraws + 1}
	capped := CapRNGState(over)
	if capped.Draws != 0 {
		t.Fatalf("capped state still has draws: %+v", capped)
	}
	if capped.Seed == over.Seed || capped.Seed == 0 {
		t.Fatalf("capped seed %d not freshly derived", capped.Seed)
	}
	s := testSnapshot()
	s.EngineRNG = capped
	if _, err := DecodeSnapshot(EncodeSnapshot(s)); err != nil {
		t.Fatalf("capped state does not round-trip: %v", err)
	}
}

func TestSeededSourceRestoreReplaysStream(t *testing.T) {
	src := NewSeededSource(7)
	var lead []uint64
	for i := 0; i < 100; i++ {
		lead = append(lead, src.Uint64())
	}
	st := src.State()
	if st.Draws != 100 {
		t.Fatalf("draws = %d, want 100", st.Draws)
	}
	var tail []uint64
	for i := 0; i < 50; i++ {
		tail = append(tail, src.Uint64())
	}

	fresh := NewSeededSource(1)
	fresh.Restore(st)
	for i, want := range tail {
		if got := fresh.Uint64(); got != want {
			t.Fatalf("restored stream diverges at %d: %d vs %d", i, got, want)
		}
	}
	_ = lead
}
