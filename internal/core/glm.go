package core

import (
	"fmt"
	"math/rand"

	"dimmwitted/internal/data"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

// glmWorkload adapts the original "model.Spec over a data matrix" task
// to the Workload interface. It is behavior-preserving by construction:
// the step execution, cost charging, contention estimation and replica
// initialisation are the exact code the engine ran before the workload
// refactor, so simulated figure reproduction stays bit-identical.
type glmWorkload struct {
	spec model.Spec
	ds   *data.Dataset
	plan Plan
}

// NewGLM wraps a model specification and dataset as an engine workload.
func NewGLM(spec model.Spec, ds *data.Dataset) Workload {
	return &glmWorkload{spec: spec, ds: ds}
}

// Kind implements Workload.
func (g *glmWorkload) Kind() WorkloadKind { return WorkloadGLM }

// Name implements Workload.
func (g *glmWorkload) Name() string { return g.spec.Name() }

// DatasetName implements Workload.
func (g *glmWorkload) DatasetName() string { return g.ds.Name }

// Supports implements Workload.
func (g *glmWorkload) Supports() []model.Access { return g.spec.Supports() }

// NormalizePlan implements Workload by delegating to the spec-aware
// plan normalization (model-specific step sizes and decay).
func (g *glmWorkload) NormalizePlan(p Plan) Plan { return p.Normalize(g.spec) }

// ValidatePlan implements Workload: the spec-aware plan checks plus the
// dataset and Importance-sampling constraints the engine used to apply.
func (g *glmWorkload) ValidatePlan(p Plan) error {
	if err := p.Validate(g.spec); err != nil {
		return err
	}
	if err := g.ds.Validate(); err != nil {
		return err
	}
	if p.DataRep == Importance && p.Access != model.RowWise {
		return fmt.Errorf("core: Importance data replication requires row-wise access")
	}
	return nil
}

// Optimize implements Workload via the Figure 6 cost-based optimizer.
func (g *glmWorkload) Optimize(top numa.Topology, exec ExecutorKind) (Plan, error) {
	return ChooseExecutor(g.spec, g.ds, top, exec)
}

// Bind implements Workload.
func (g *glmWorkload) Bind(p Plan) { g.plan = p }

// Units implements Workload: rows for row-wise access, columns for the
// coordinate methods.
func (g *glmWorkload) Units() int {
	if g.plan.Access != model.RowWise {
		return g.ds.Cols()
	}
	return g.ds.Rows()
}

// Dim implements Workload.
func (g *glmWorkload) Dim() int { return len(g.spec.NewReplica(g.ds).X) }

// DataNNZ implements Workload.
func (g *glmWorkload) DataNNZ() int64 { return g.ds.NNZ() }

// Layout implements Workload: region sizes from the replica prototype
// and the install-time probe's contention estimate for machine-shared
// models.
func (g *glmWorkload) Layout() Layout {
	proto := g.spec.NewReplica(g.ds)
	dim := len(proto.X)
	probe := ProbeStats(g.spec, g.ds, g.plan.Access, 64)
	return Layout{
		ModelBytes: int64(dim) * numa.WordBytes,
		AuxBytes:   int64(len(proto.Aux)) * numa.WordBytes,
		DataBytes:  g.ds.A.Bytes(),
		ModelCollisionProb: collisionProb(g.plan.Workers, probe.ModelWrites,
			effectiveModelWords(g.ds, g.plan.Access, dim)),
	}
}

// NewReplica implements Workload. GLM replica initialisation is
// deterministic per spec, so every replica starts identical regardless
// of index or seed.
func (g *glmWorkload) NewReplica(int, int64) *WorkState {
	r := g.spec.NewReplica(g.ds)
	return &WorkState{X: r.X, Aux: r.Aux, Priv: r}
}

// Step implements Workload: one row/column step plus (under the
// simulated executor) the exact Figure 6 cost charging the engine used
// to apply inline.
func (g *glmWorkload) Step(unit int, ws *WorkState, step float64, _ *rand.Rand, cost *StepCost) model.Stats {
	rep := ws.Priv.(*model.Replica)
	var st model.Stats
	if g.plan.Access == model.RowWise {
		st = g.spec.RowStep(g.ds, unit, rep, step)
	} else {
		st = g.spec.ColStep(g.ds, unit, rep, step)
	}
	if cost != nil {
		g.charge(cost, st)
	}
	return st
}

// charge converts a step's traffic stats into simulated machine costs.
func (g *glmWorkload) charge(c *StepCost, st model.Stats) {
	dataWords := int64(float64(st.DataWords) * csrOverhead)
	if g.plan.DenseStorage {
		// Dense storage streams the full row/column width regardless
		// of sparsity, with no index overhead (Appendix A).
		if g.plan.Access == model.RowWise {
			dataWords = int64(g.ds.Cols())
		} else {
			dataWords = int64(g.ds.Rows())
		}
	}
	c.Core.ReadStream(c.DataReg, dataWords)

	c.Core.ReadCached(c.ModelReg, int64(st.ModelReads))
	c.Core.Write(c.ModelReg, int64(st.ModelWrites))
	if st.AuxReads > 0 || st.AuxWrites > 0 {
		c.Core.ReadCached(c.AuxReg, int64(st.AuxReads))
		c.Core.Write(c.AuxReg, int64(st.AuxWrites))
	}
	c.Core.Compute(float64(st.Flops)*flopCycles + g.plan.StepOverheadCycles +
		float64(st.DataWords)*g.plan.ElementOverheadCycles)
}

// SparseUnits implements UnitCoordser: row-wise steps of a sparse-
// update spec read and write the model only at the row's nonzero
// columns (every RowStep is built on SparseDot/SparseAXPY over the
// row's index list). Dense-update specs (parallel sum) and column
// access touch state outside any per-unit set, so they stay on the
// dense flush path — as does dense *data*, where rows cover most of
// the model and per-step dirty tracking would cost more than the full
// single-pass flush it avoids.
func (g *glmWorkload) SparseUnits() bool {
	if g.plan.Access != model.RowWise || g.spec.DenseUpdate() {
		return false
	}
	// Sparse flushing pays off only when a chunk's dirty set stays well
	// under the model dimension: require rows to average < 1/4 of it.
	return g.ds.NNZ()*4 < int64(g.ds.Rows())*int64(g.ds.Cols())
}

// UnitCoords implements UnitCoordser: the CSR row's column indices,
// aliased straight from the immutable data matrix.
func (g *glmWorkload) UnitCoords(unit int) []int32 {
	idx, _ := g.ds.A.Row(unit)
	return idx
}

// Sync implements Workload: one-pass aggregates combine once, the
// iterative estimators average with write-back.
func (g *glmWorkload) Sync() SyncMode {
	if g.spec.Aggregate() {
		return SyncAggregate
	}
	return SyncAverage
}

// Concurrency implements Workload.
func (g *glmWorkload) Concurrency() ConcurrencyMode { return ConcurrencyDelta }

// Combine implements Workload.
func (g *glmWorkload) Combine(xs [][]float64, dst []float64) { g.spec.Combine(xs, dst) }

// EndEpoch implements Workload; GLM has no end-of-epoch state refresh.
func (g *glmWorkload) EndEpoch([]*WorkState) {}

// AuxRefresh implements Workload: column access keeps per-row auxiliary
// state that must be rebuilt from a newly written-back model; row
// access leaves aux unused (unless force, for snapshot restore).
func (g *glmWorkload) AuxRefresh(ws *WorkState, force bool) bool {
	if ws.Aux == nil {
		return false
	}
	if !force && g.plan.Access == model.RowWise {
		return false
	}
	g.spec.RefreshAux(g.ds, ws.Priv.(*model.Replica))
	return true
}

// Loss implements Workload.
func (g *glmWorkload) Loss(x []float64) float64 { return g.spec.Loss(g.ds, x) }

// DataRows implements DataVersioner.
func (g *glmWorkload) DataRows() int { return g.ds.Rows() }

// DataVersion implements DataVersioner.
func (g *glmWorkload) DataVersion() uint64 { return g.ds.Version }

// Grow implements Growable: between epochs the workload can adopt a
// larger published view of its dataset. The swap is safe exactly when
// nothing engine-side is sized to the old row count: access must be
// row-wise (work units are rows, re-partitioned from Units() at every
// epoch start; column units would change meaning), the replicas must
// carry no per-row auxiliary state (LS and LP index Aux[row]), and the
// data-replication strategy must not be Importance (leverage scores
// are precomputed over the old rows). Model dimension is pinned by the
// stream's fixed column count.
func (g *glmWorkload) Grow(view *data.Dataset) error {
	switch {
	case view.Name != g.ds.Name:
		return fmt.Errorf("core: grow: view is dataset %q, training on %q", view.Name, g.ds.Name)
	case view.Task != g.ds.Task:
		return fmt.Errorf("core: grow: task changed from %s to %s", g.ds.Task, view.Task)
	case view.Cols() != g.ds.Cols():
		return fmt.Errorf("core: grow: cols changed from %d to %d", g.ds.Cols(), view.Cols())
	case view.Rows() < g.ds.Rows():
		return fmt.Errorf("core: grow: rows shrank from %d to %d", g.ds.Rows(), view.Rows())
	case view.Version < g.ds.Version:
		return fmt.Errorf("core: grow: version went backwards (%d -> %d)", g.ds.Version, view.Version)
	case g.plan.Access != model.RowWise:
		return fmt.Errorf("core: grow: requires row-wise access, plan uses %s", g.plan.Access)
	case g.plan.DataRep == Importance:
		return fmt.Errorf("core: grow: Importance sampling pins precomputed leverage scores")
	}
	if proto := g.spec.NewReplica(view); proto.Aux != nil {
		return fmt.Errorf("core: grow: spec %s keeps per-row auxiliary state", g.spec.Name())
	}
	if err := view.Validate(); err != nil {
		return fmt.Errorf("core: grow: %w", err)
	}
	g.ds = view
	return nil
}

// Metrics implements Workload; the GLM loss is the whole story.
func (g *glmWorkload) Metrics([]float64) map[string]float64 { return nil }

// collisionProb estimates the probability that a write to a machine-
// shared region collides with a concurrent writer on another socket.
// It is proportional to the number of concurrent writers and to the
// update footprint relative to the *effective* region size — the
// inverse Herfindahl index of the write-frequency distribution, so a
// Zipf-skewed text model (everyone hammering the same hot columns)
// contends as if the model were a few dozen words wide, while a
// uniform graph model contends on its full width. Sub-cacheline
// footprints are discounted (single-word updates rarely collide, the
// mechanism behind Figure 16(b)), and the estimate is capped at 0.5 —
// even a fully contended workload overlaps writes only part of the
// time.
func collisionProb(workers, writesPerStep int, effWords float64) float64 {
	if effWords <= 0 || writesPerStep <= 0 || workers <= 1 {
		return 0
	}
	w := float64(writesPerStep)
	x := float64(workers-1) * w / effWords
	if lineFrac := w / 8; lineFrac < 1 {
		x *= lineFrac
	}
	// Saturating curve: p rises smoothly with contention pressure and
	// approaches 0.5 ("at most half of writes stall") — two workers on
	// a hot model contend noticeably, twelve contend almost maximally,
	// but the jump from one worker (p = 0) stays finite.
	return 0.5 * x / (1 + x)
}

// effectiveModelWords returns the effective number of uniformly hot
// model words under row-wise access: 1/Σ_j q_j² with q_j proportional
// to column j's nonzero count (model word j is written once per row
// containing j). Under column access every component is written once
// per epoch, so the distribution is uniform and the effective size is
// the dimension itself.
func effectiveModelWords(ds *data.Dataset, access model.Access, dim int) float64 {
	if access != model.RowWise {
		return float64(dim)
	}
	csc := ds.CSC()
	total := float64(ds.NNZ())
	if total == 0 {
		return float64(dim)
	}
	var s float64
	for j := 0; j < ds.Cols(); j++ {
		q := float64(csc.ColNNZ(j)) / total
		s += q * q
	}
	if s <= 0 {
		return float64(dim)
	}
	return 1 / s
}

// effectiveAuxWords is the analog for per-row auxiliary state under
// column access: aux word i is written once per column row i touches,
// so q_i is proportional to the row's nonzero count.
func effectiveAuxWords(ds *data.Dataset, auxLen int) float64 {
	total := float64(ds.NNZ())
	if total == 0 || auxLen == 0 {
		return float64(auxLen)
	}
	var s float64
	for i := 0; i < ds.Rows(); i++ {
		q := float64(ds.A.RowNNZ(i)) / total
		s += q * q
	}
	if s <= 0 {
		return float64(auxLen)
	}
	return 1 / s
}
