package core

import (
	"fmt"

	"dimmwitted/internal/data"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

// CostEstimate is the optimizer's per-epoch cost prediction for one
// access method, in abstract word-cost units (Figure 6's model: reads
// count once, writes count alpha times).
type CostEstimate struct {
	// Access is the access method estimated.
	Access model.Access
	// Reads is the predicted words read per epoch.
	Reads float64
	// Writes is the predicted words written per epoch.
	Writes float64
	// Cost is Reads + alpha*Writes.
	Cost float64
}

// EstimateCost predicts the per-epoch cost of running the spec on the
// dataset with the given access method, using a probe sample of steps
// (the paper's install-time benchmark) and the machine's alpha.
func EstimateCost(spec model.Spec, ds *data.Dataset, access model.Access, top numa.Topology) CostEstimate {
	st := ProbeStats(spec, ds, access, 64)
	stepsPerEpoch := float64(ds.Rows())
	if access != model.RowWise {
		stepsPerEpoch = float64(ds.Cols())
	}
	reads := stepsPerEpoch * float64(st.DataWords+st.ModelReads+st.AuxReads)
	writes := stepsPerEpoch * float64(st.ModelWrites+st.AuxWrites)
	alpha := top.Alpha()
	return CostEstimate{
		Access: access,
		Reads:  reads,
		Writes: writes,
		Cost:   reads + alpha*writes,
	}
}

// CostRatio returns the paper's Figure 7(b) statistic for a dataset:
// (1+alpha)·Σnᵢ / (Σnᵢ² + alpha·d), the ratio of row-wise to
// column-to-row cost under write-cost factor alpha.
func CostRatio(ds *data.Dataset, alpha float64) float64 {
	var sumN, sumN2 float64
	for i := 0; i < ds.Rows(); i++ {
		n := float64(ds.A.RowNNZ(i))
		sumN += n
		sumN2 += n * n
	}
	denom := sumN2 + alpha*float64(ds.Cols())
	if denom == 0 {
		return 0
	}
	return (1 + alpha) * sumN / denom
}

// PaperCost evaluates the paper's literal Figure 6 cost model for one
// access method on a dataset:
//
//	row-wise:    Σnᵢ reads + α·(Σnᵢ sparse-update writes, or d·N dense)
//	column-wise: Σnᵢ² reads (column-to-row touches every row in S(j)
//	             in full) + α·d writes
//
// where nᵢ is the nonzero count of row i and α = Topology.Alpha().
// The formula deliberately charges all column methods the
// column-to-row read volume, as the paper does: the optimizer is
// conservative about coordinate methods, which is exactly what makes
// it pick row-wise for SVM/LR/LS and column-wise for LP/QP
// (Figure 14).
func PaperCost(spec model.Spec, ds *data.Dataset, access model.Access, top numa.Topology) float64 {
	alpha := top.Alpha()
	var sumN, sumN2 float64
	for i := 0; i < ds.Rows(); i++ {
		n := float64(ds.A.RowNNZ(i))
		sumN += n
		sumN2 += n * n
	}
	d := float64(ds.Cols())
	if access == model.RowWise {
		writes := sumN
		if spec.DenseUpdate() {
			writes = d * float64(ds.Rows())
		}
		return sumN + alpha*writes
	}
	return sumN2 + alpha*d
}

const (
	// goroutineSpawnCycles is the order-of-magnitude cost of creating
	// and scheduling a fresh goroutine (stack allocation plus scheduler
	// handoff) — what the pre-pool parallel executor paid per worker
	// per epoch.
	goroutineSpawnCycles = 50_000
	// poolWakeupCycles is the cost of waking a parked pool worker: one
	// channel send/receive pair and a futex wake.
	poolWakeupCycles = 2_000
)

// ExecutorOverheadCycles prices a backend's per-epoch orchestration
// overhead for a worker count. The simulated interleaver is free here
// (its orchestration is accounted inside the cost simulator); the
// parallel backend pays one pool wakeup per worker — the persistent
// pool's replacement for the old per-epoch goroutine-spawn cost, some
// 25x dearer per worker. The estimate feeds the parallel chunk-size
// choice below and diagnostics.
func ExecutorOverheadCycles(exec ExecutorKind, workers int) float64 {
	if exec != ExecParallel {
		return 0
	}
	return float64(workers) * poolWakeupCycles
}

// Choose runs the cost-based optimizer (Section 3.2) plus the paper's
// replication rules of thumb (Sections 3.3–3.4) and returns a complete
// plan for the spec/dataset/machine triple:
//
//   - access method: the cheaper of the spec's supported methods under
//     the literal Figure 6 cost model (PaperCost);
//   - model replication: PerNode for row-wise (SGD-like) plans,
//     PerMachine for column-wise (SCD-like) plans;
//   - data replication: FullReplication ("if there is available
//     memory, FullReplication seems preferable", Section 3.4).
func Choose(spec model.Spec, ds *data.Dataset, top numa.Topology) (Plan, error) {
	return ChooseExecutor(spec, ds, top, ExecSimulated)
}

// ChooseExecutor runs the optimizer for a specific execution backend.
// The executor narrows the plan space the cost model prices: the
// parallel backend implements only row-wise methods (column-wise
// auxiliary state is inconsistent under unsynchronized flushes), so
// its candidate set is restricted to row-wise — or the choice fails
// loudly for specs with no row-wise method (LP/QP's coordinate
// descent) rather than silently falling back to the simulator.
func ChooseExecutor(spec model.Spec, ds *data.Dataset, top numa.Topology, exec ExecutorKind) (Plan, error) {
	supported := spec.Supports()
	if len(supported) == 0 {
		return Plan{}, fmt.Errorf("core: %s supports no access methods", spec.Name())
	}
	if exec == ExecParallel {
		rowOK := false
		for _, a := range supported {
			if a == model.RowWise {
				rowOK = true
			}
		}
		if !rowOK {
			return Plan{}, fmt.Errorf("core: %s has no row-wise method; the parallel executor cannot run it", spec.Name())
		}
		supported = []model.Access{model.RowWise}
	}
	best := supported[0]
	bestCost := PaperCost(spec, ds, best, top)
	for _, a := range supported[1:] {
		if c := PaperCost(spec, ds, a, top); c < bestCost {
			best, bestCost = a, c
		}
	}
	plan := Plan{
		Access:   best,
		Machine:  top,
		DataRep:  FullReplication,
		Executor: exec,
	}
	if best == model.RowWise {
		plan.ModelRep = PerNode
	} else {
		plan.ModelRep = PerMachine
	}
	if spec.Aggregate() {
		// One-pass aggregates gain nothing statistically from seeing
		// the data more than once; sharding minimises the work.
		plan.DataRep = Sharding
		plan.ModelRep = PerNode
	}
	plan = plan.Normalize(spec)
	if exec == ExecParallel {
		// The pooled executor's epoch overhead is wakeups, not spawns
		// (ExecutorOverheadCycles), and its fused sparse-aware flush
		// costs O(coordinates dirtied) rather than O(dim): with both
		// cheap, the remaining lever is flush frequency. A 64-step batch
		// keeps the master-synchronization traffic an order of magnitude
		// below the step work on the bundled sparse datasets while
		// staying well inside the staleness the Hogwild! analysis
		// tolerates.
		plan.ChunkSize = 64
	}
	return plan, plan.Validate(spec)
}

// ClusterEpochSeconds extends the cost model one level up the
// replication hierarchy: it prices a PerCluster epoch-synchronous
// round across peers machines. Each peer trains its 1/peers shard
// (compute parallelises perfectly under Sharding, the only data
// replication PerCluster supports), then ships its dim-float replica
// to the coordinator and receives the combined model back — 2·dim·8
// bytes per peer per round over a link moving bytesPerSec. The
// returned figure is what cmd/dwcoord surfaces when explaining
// whether a dataset is big enough for the shard+combine round trip to
// beat staying on one machine.
func ClusterEpochSeconds(localSeconds float64, peers, dim int, bytesPerSec float64) float64 {
	if peers <= 1 {
		return localSeconds
	}
	compute := localSeconds / float64(peers)
	transfer := 0.0
	if bytesPerSec > 0 {
		transfer = 2 * float64(peers) * float64(dim) * 8 / bytesPerSec
	}
	return compute + transfer
}

// Explain returns the optimizer's view of every supported access
// method, for diagnostics (cmd/dwplan).
func Explain(spec model.Spec, ds *data.Dataset, top numa.Topology) []CostEstimate {
	var out []CostEstimate
	for _, a := range spec.Supports() {
		out = append(out, EstimateCost(spec, ds, a, top))
	}
	return out
}
