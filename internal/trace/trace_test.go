package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

// TestNilRecorderIsSafe exercises every method on the disabled (nil)
// recorder and a nil worker buffer: tracing off must be a no-op, not a
// panic.
func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Record(PhaseExec, 1, -1, time.Now(), time.Now(), 10)
	if bufs := r.WorkerBufs(4); bufs != nil {
		t.Fatalf("nil recorder allocated worker buffers: %v", bufs)
	}
	r.Merge(nil)
	r.Discard(nil)
	if spans := r.Spans(); spans != nil {
		t.Fatalf("nil recorder returned spans: %v", spans)
	}
	if s := r.Summary(); s.Epochs != 0 || s.Coverage != 0 {
		t.Fatalf("nil recorder summary not zero: %+v", s)
	}
	var wb *WorkerBuf
	wb.Record(PhaseWorker, 1, time.Now(), time.Now(), 5)
}

// span is a test helper recording one engine-level span of the given
// duration.
func record(r *Recorder, p Phase, epoch int, d time.Duration, steps int64) {
	start := r.Origin().Add(time.Duration(epoch) * time.Second)
	r.Record(p, epoch, -1, start, start.Add(d), steps)
}

func TestAggregatesAndSummary(t *testing.T) {
	r := New(Config{})
	bufs := r.WorkerBufs(2)
	// Two epochs: exec windows of 10ms with two workers busy 8ms and
	// 6ms, flushes of 1ms each, epoch wall 12ms.
	for epoch := 1; epoch <= 2; epoch++ {
		base := r.Origin()
		bufs[0].Record(PhaseWorker, epoch, base, base.Add(8*time.Millisecond), 100)
		bufs[0].Record(PhaseFlush, epoch, base, base.Add(1*time.Millisecond), 0)
		bufs[1].Record(PhaseWorker, epoch, base, base.Add(6*time.Millisecond), 80)
		bufs[1].Record(PhaseFlush, epoch, base, base.Add(1*time.Millisecond), 0)
		r.Merge(bufs)
		record(r, PhaseExec, epoch, 10*time.Millisecond, 180)
		record(r, PhaseEpoch, epoch, 12*time.Millisecond, 180)
	}
	s := r.Summary()
	if s.Epochs != 2 {
		t.Fatalf("epochs = %d, want 2", s.Epochs)
	}
	if s.Workers != 2 {
		t.Fatalf("workers = %d, want 2", s.Workers)
	}
	// Step = worker − flush = (8+6)*2 − 2*2 = 24ms.
	if got, want := s.StepSeconds, 0.024; math.Abs(got-want) > 1e-9 {
		t.Fatalf("step seconds = %v, want %v", got, want)
	}
	// Barrier = workers×exec − Σworker = 2*20 − 28 = 12ms.
	if got, want := s.BarrierSeconds, 0.012; math.Abs(got-want) > 1e-9 {
		t.Fatalf("barrier seconds = %v, want %v", got, want)
	}
	// Coverage: exec (20ms of top-level) over epoch (24ms).
	if got, want := s.Coverage, 20.0/24.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("coverage = %v, want %v", got, want)
	}
	if s.SpansDropped != 0 {
		t.Fatalf("dropped = %d, want 0", s.SpansDropped)
	}
}

// TestRingWrap fills the journal past capacity: the aggregates stay
// exact, the journal retains the newest spans in order, and the drop
// counter reports the overwritten ones.
func TestRingWrap(t *testing.T) {
	r := New(Config{Capacity: 8})
	for i := 0; i < 20; i++ {
		record(r, PhaseExec, i+1, time.Millisecond, 1)
	}
	spans := r.Spans()
	if len(spans) != 8 {
		t.Fatalf("retained %d spans, want 8", len(spans))
	}
	for i, s := range spans {
		if want := int32(13 + i); s.Epoch != want {
			t.Fatalf("span %d epoch = %d, want %d (oldest-first order)", i, s.Epoch, want)
		}
	}
	sum := r.Summary()
	if sum.SpansDropped != 12 {
		t.Fatalf("dropped = %d, want 12", sum.SpansDropped)
	}
	// Aggregates cover all 20 spans, not just the retained 8.
	if got := sum.Phases; len(got) != 1 || got[0].Count != 20 || got[0].Steps != 20 {
		t.Fatalf("exec aggregate = %+v, want count 20", got)
	}
}

// TestDiscard drops buffered worker spans without recording them.
func TestDiscard(t *testing.T) {
	r := New(Config{})
	bufs := r.WorkerBufs(1)
	bufs[0].Record(PhaseWorker, 1, r.Origin(), r.Origin().Add(time.Millisecond), 10)
	r.Discard(bufs)
	r.Merge(bufs)
	if spans := r.Spans(); len(spans) != 0 {
		t.Fatalf("discarded spans were recorded: %v", spans)
	}
}

// TestSink verifies every span's totals reach the configured sink,
// through both Record and Merge.
func TestSink(t *testing.T) {
	var sink PhaseTotals
	r := New(Config{Sink: &sink})
	record(r, PhaseExec, 1, 2*time.Millisecond, 0)
	bufs := r.WorkerBufs(1)
	bufs[0].Record(PhaseWorker, 1, r.Origin(), r.Origin().Add(3*time.Millisecond), 0)
	r.Merge(bufs)
	totals := sink.Totals()
	if len(totals) != 2 {
		t.Fatalf("sink totals = %+v, want exec and worker", totals)
	}
	byPhase := map[string]PhaseTotal{}
	for _, pt := range totals {
		byPhase[pt.Phase] = pt
	}
	if pt := byPhase["exec"]; pt.Count != 1 || math.Abs(pt.Seconds-0.002) > 1e-9 {
		t.Fatalf("exec total = %+v", pt)
	}
	if pt := byPhase["worker"]; pt.Count != 1 || math.Abs(pt.Seconds-0.003) > 1e-9 {
		t.Fatalf("worker total = %+v", pt)
	}
}

// TestUtilizationAndTree checks the journal-derived views.
func TestUtilizationAndTree(t *testing.T) {
	r := New(Config{})
	bufs := r.WorkerBufs(2)
	base := r.Origin()
	bufs[0].Record(PhaseWorker, 1, base, base.Add(8*time.Millisecond), 100)
	bufs[1].Record(PhaseWorker, 1, base, base.Add(4*time.Millisecond), 50)
	r.Merge(bufs)
	record(r, PhaseExec, 1, 10*time.Millisecond, 150)
	record(r, PhaseEpoch, 1, 11*time.Millisecond, 150)

	utils := Utilization(r.Spans())
	if len(utils) != 2 {
		t.Fatalf("utilization rows = %d, want 2", len(utils))
	}
	if got, want := utils[0].Utilization, 0.8; math.Abs(got-want) > 1e-9 {
		t.Fatalf("worker 0 utilization = %v, want %v", got, want)
	}
	if got, want := utils[1].Utilization, 0.4; math.Abs(got-want) > 1e-9 {
		t.Fatalf("worker 1 utilization = %v, want %v", got, want)
	}

	tree := Tree(r.Spans())
	if len(tree) != 1 || tree[0].Epoch != 1 || len(tree[0].Spans) != 4 {
		t.Fatalf("tree = %+v, want one epoch of 4 spans", tree)
	}
	for i := 1; i < len(tree[0].Spans); i++ {
		if tree[0].Spans[i].StartUs < tree[0].Spans[i-1].StartUs {
			t.Fatalf("epoch spans not start-ordered: %+v", tree[0].Spans)
		}
	}
}

// TestChromeTrace round-trips the export through a JSON decode and
// checks the trace_event contract: "X" complete events with µs
// timestamps, workers on their own tids.
func TestChromeTrace(t *testing.T) {
	r := New(Config{})
	bufs := r.WorkerBufs(1)
	bufs[0].Record(PhaseWorker, 1, r.Origin(), r.Origin().Add(5*time.Millisecond), 42)
	r.Merge(bufs)
	record(r, PhaseEpoch, 1, 6*time.Millisecond, 42)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r.Spans()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q has ph %q, want X", ev.Name, ev.Ph)
		}
		if ev.Dur <= 0 {
			t.Fatalf("event %q has non-positive dur %v", ev.Name, ev.Dur)
		}
	}
	byName := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byName[ev.Name] = ev.Tid
	}
	if byName["worker"] != 1 || byName["epoch"] != 0 {
		t.Fatalf("tids = %v, want worker on tid 1, engine spans on tid 0", byName)
	}
}

// TestConcurrentRecordAndSnapshot races engine-level recording, worker
// merges and every read path against each other; run under -race this
// is the recorder's synchronization soak.
func TestConcurrentRecordAndSnapshot(t *testing.T) {
	var sink PhaseTotals
	r := New(Config{Capacity: 256, Sink: &sink})
	const writers, iters = 4, 200
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			bufs := []*WorkerBuf{{origin: r.Origin(), worker: int32(w)}}
			for i := 0; i < iters; i++ {
				record(r, PhaseExec, i+1, time.Microsecond, 1)
				bufs[0].Record(PhaseWorker, i+1, r.Origin(), r.Origin().Add(time.Microsecond), 1)
				r.Merge(bufs)
			}
		}(w)
	}
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.Summary()
			_ = r.Spans()
			_ = Utilization(r.Spans())
			_ = sink.Totals()
		}
	}()
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	s := r.Summary()
	want := int64(writers * iters)
	for _, p := range s.Phases {
		if p.Count != want {
			t.Fatalf("phase %s count = %d, want %d", p.Phase, p.Count, want)
		}
	}
}
