// Package trace is the engine's low-overhead span recorder: it
// attributes every epoch's wall clock to named phases (work
// assignment, per-worker step loops, delta flushes, barriers,
// combines, loss evaluation) tagged per worker goroutine, so the
// sim-vs-parallel throughput gap is an itemized bill instead of one
// opaque wall_seconds.
//
// The design rules, in order:
//
//   - Disabled is free. A nil *Recorder is the off state; every method
//     is nil-safe and the engine's instrumentation sites reduce to one
//     pointer comparison per epoch phase (never per step).
//   - No shared locks on the step hot path. Worker goroutines record
//     into private WorkerBuf slices (allocated once per job) and the
//     engine merges them under the recorder's mutex exactly once per
//     epoch, after the barrier.
//   - Bounded memory. The span journal is a ring: when it fills, the
//     oldest spans are overwritten and counted as dropped, while the
//     per-phase aggregate totals stay exact forever.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Phase names one attributable slice of an epoch's wall clock.
type Phase uint8

const (
	// PhaseEpoch covers one whole epoch, engine-entry to post-loss; it
	// is the coverage denominator every other phase is measured against.
	PhaseEpoch Phase = iota
	// PhaseAssign is the per-epoch work partition (permutation draw and
	// item-list build).
	PhaseAssign
	// PhaseSeed is the parallel delta executor seeding its atomic
	// masters from the replicas at epoch start.
	PhaseSeed
	// PhaseExec is the executor's worker window: goroutine spawn to
	// barrier exit for the parallel backend, the whole interleaved step
	// loop for the simulated one.
	PhaseExec
	// PhaseWorker is one worker goroutine's step loop (parallel
	// executor), flushes included; derive pure step time as
	// worker − flush.
	PhaseWorker
	// PhaseFlush is one batched delta flush to the shared atomic master
	// (parallel delta mode).
	PhaseFlush
	// PhasePublish is the parallel delta executor pulling the masters
	// back into the replicas after the barrier.
	PhasePublish
	// PhaseSync is the asynchronous mid-epoch replica averaging
	// (simulated PerNode plans); it nests inside PhaseExec.
	PhaseSync
	// PhaseEndEpoch is the workload's end-of-epoch hook (Gibbs marginal
	// tally refresh).
	PhaseEndEpoch
	// PhaseCombine is the end-of-epoch replica combine and write-back.
	PhaseCombine
	// PhaseLoss is the post-combine objective evaluation.
	PhaseLoss
	// PhasePool is the engine-side pool dispatch window: handing the
	// epoch task to every parked worker. It nests inside PhaseExec, so
	// exec − pool − straggler wait is the cost the persistent pool saved
	// versus per-epoch goroutine spawn.
	PhasePool
	// PhaseSteal is one worker's aggregate time claiming chunks from
	// co-workers' queues after exhausting its own; it nests inside
	// PhaseWorker.
	PhaseSteal
	// NumPhases bounds the phase space for aggregate arrays.
	NumPhases
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseEpoch:
		return "epoch"
	case PhaseAssign:
		return "assign"
	case PhaseSeed:
		return "seed"
	case PhaseExec:
		return "exec"
	case PhaseWorker:
		return "worker"
	case PhaseFlush:
		return "flush"
	case PhasePublish:
		return "publish"
	case PhaseSync:
		return "sync"
	case PhaseEndEpoch:
		return "endepoch"
	case PhaseCombine:
		return "combine"
	case PhaseLoss:
		return "loss"
	case PhasePool:
		return "pool"
	case PhaseSteal:
		return "steal"
	default:
		return "unknown"
	}
}

// topLevel reports whether the phase is a direct child of the epoch
// span: these are the phases whose durations sum into the coverage
// ratio. Worker, flush and sync spans nest inside PhaseExec and would
// double-count; the epoch span is the denominator itself.
func (p Phase) topLevel() bool {
	switch p {
	case PhaseAssign, PhaseSeed, PhaseExec, PhasePublish, PhaseEndEpoch, PhaseCombine, PhaseLoss:
		return true
	default:
		return false
	}
}

// Span is one recorded phase interval. Start is an offset from the
// recorder's origin so spans stay comparable across workers without
// carrying full timestamps.
type Span struct {
	// Phase names the interval.
	Phase Phase
	// Epoch is the 1-based epoch the interval belongs to.
	Epoch int32
	// Worker is the recording worker goroutine, or -1 for engine-level
	// spans.
	Worker int32
	// Start is nanoseconds since the recorder's origin.
	Start int64
	// Dur is the interval length in nanoseconds.
	Dur int64
	// Steps counts the work units the interval executed (worker and
	// exec spans; zero elsewhere).
	Steps int64
}

// DefaultCapacity is the span journal's default ring size: 16384 spans
// (~1 MiB), enough to retain on the order of a hundred epochs of a
// fully traced parallel run.
const DefaultCapacity = 1 << 14

// Config configures a Recorder.
type Config struct {
	// Capacity bounds the span journal; 0 means DefaultCapacity.
	Capacity int
	// Sink, when non-nil, additionally receives every span's phase
	// totals — the scheduler aggregates all traced jobs into one set of
	// process-wide engine phase timers for /metrics.
	Sink *PhaseTotals
}

// Recorder collects spans for one job. The zero state of the type is a
// nil pointer: every method is nil-safe, so "tracing off" costs callers
// one pointer comparison. All methods are safe for concurrent use
// except as documented on WorkerBuf.
type Recorder struct {
	origin time.Time
	sink   *PhaseTotals

	mu      sync.Mutex
	ring    []Span
	next    int  // ring write cursor
	wrapped bool // ring has overwritten at least once
	dropped int64
	counts  [NumPhases]int64
	nanos   [NumPhases]int64
	steps   [NumPhases]int64
	workers int // worker buffers handed out (utilization denominator)
	lanes   int // pool goroutines running worker spans concurrently
}

// New builds a recorder. The origin is captured now; span offsets are
// measured from it.
func New(cfg Config) *Recorder {
	cap := cfg.Capacity
	if cap <= 0 {
		cap = DefaultCapacity
	}
	return &Recorder{
		origin: time.Now(),
		sink:   cfg.Sink,
		ring:   make([]Span, 0, cap),
	}
}

// Enabled reports whether the recorder records (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Origin is the instant span offsets are measured from (zero for nil).
func (r *Recorder) Origin() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.origin
}

// Record appends one engine-level span measured between start and end.
// worker is -1 for engine-level phases. Nil-safe: the disabled recorder
// ignores the call (and callers should avoid the time.Now pair behind a
// nil check anyway).
func (r *Recorder) Record(p Phase, epoch, worker int, start, end time.Time, steps int64) {
	if r == nil {
		return
	}
	s := Span{
		Phase:  p,
		Epoch:  int32(epoch),
		Worker: int32(worker),
		Start:  start.Sub(r.origin).Nanoseconds(),
		Dur:    end.Sub(start).Nanoseconds(),
		Steps:  steps,
	}
	r.mu.Lock()
	r.push(s)
	r.mu.Unlock()
	r.sink.add(p, 1, s.Dur)
}

// push appends one span to the ring and aggregates; callers hold r.mu.
func (r *Recorder) push(s Span) {
	if s.Dur < 0 {
		s.Dur = 0
	}
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, s)
	} else {
		r.ring[r.next] = s
		r.wrapped = true
		r.dropped++
	}
	r.next = (r.next + 1) % cap(r.ring)
	r.counts[s.Phase]++
	r.nanos[s.Phase] += s.Dur
	r.steps[s.Phase] += s.Steps
}

// WorkerBufs allocates n private per-worker span buffers, one per
// worker goroutine. Returns nil on the disabled recorder, so executors
// gate per-worker timing on a nil buffer check. The buffers belong to
// this recorder: hand each worker goroutine exclusively its own, and
// merge them from one goroutine per epoch (Merge) — typically the
// engine goroutine after the barrier.
func (r *Recorder) WorkerBufs(n int) []*WorkerBuf {
	if r == nil {
		return nil
	}
	bufs := make([]*WorkerBuf, n)
	for i := range bufs {
		bufs[i] = &WorkerBuf{origin: r.origin, worker: int32(i)}
	}
	r.mu.Lock()
	r.workers = n
	r.mu.Unlock()
	return bufs
}

// SetParallelism records how many pool goroutines actually run worker
// spans concurrently — the width of the barrier-idle derivation.
// Executors that multiplex several logical workers onto one pool lane
// must set this, or the derived barrier time would charge idle wall
// clock for goroutines that never existed; it defaults to the
// worker-buffer count. Nil-safe.
func (r *Recorder) SetParallelism(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.lanes = n
	r.mu.Unlock()
}

// Merge drains the worker buffers into the journal. Call it once per
// epoch after the worker barrier, from a single goroutine; the workers
// must be quiescent. Nil-safe for both the recorder and the slice.
func (r *Recorder) Merge(bufs []*WorkerBuf) {
	if r == nil || len(bufs) == 0 {
		return
	}
	r.mu.Lock()
	for _, b := range bufs {
		if b == nil {
			continue
		}
		for _, s := range b.spans {
			r.push(s)
			r.sink.add(s.Phase, 1, s.Dur)
		}
	}
	r.mu.Unlock()
	for _, b := range bufs {
		if b != nil {
			b.spans = b.spans[:0]
		}
	}
}

// Discard clears the worker buffers without recording them — the
// abandoned partial epoch of a cancelled job counts nowhere, matching
// the engine's epoch accounting. Nil-safe.
func (r *Recorder) Discard(bufs []*WorkerBuf) {
	for _, b := range bufs {
		if b != nil {
			b.spans = b.spans[:0]
		}
	}
}

// Spans returns the retained journal in recording order (oldest first).
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		return append([]Span(nil), r.ring...)
	}
	out := make([]Span, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// WorkerBuf is one worker goroutine's private span buffer. Record is
// not safe for concurrent use — exactly one goroutine writes a buffer
// during an epoch, and the engine merges it only after the barrier, so
// no lock is needed on the step hot path.
type WorkerBuf struct {
	origin time.Time
	worker int32
	spans  []Span
}

// Record appends one span to the buffer. Nil-safe so untraced workers
// can share code paths, though callers should gate the time.Now pair on
// the buffer being non-nil.
func (b *WorkerBuf) Record(p Phase, epoch int, start, end time.Time, steps int64) {
	if b == nil {
		return
	}
	b.spans = append(b.spans, Span{
		Phase:  p,
		Epoch:  int32(epoch),
		Worker: b.worker,
		Start:  start.Sub(b.origin).Nanoseconds(),
		Dur:    end.Sub(start).Nanoseconds(),
		Steps:  steps,
	})
}

// paddedInt64 is an atomic counter padded out to a full 64-byte cache
// line. PhaseTotals slots are written by every traced job's merge path
// concurrently; without the padding, eight adjacent counters share a
// line and every Add invalidates its neighbours' cached copies.
type paddedInt64 struct {
	atomic.Int64
	_ [56]byte
}

// PhaseTotals aggregates phase timers across many recorders — the
// process-wide engine phase counters behind /metrics. All methods are
// safe for concurrent use; the zero value is ready.
type PhaseTotals struct {
	counts [NumPhases]paddedInt64
	nanos  [NumPhases]paddedInt64
}

// add feeds one span's totals; nil-safe.
func (t *PhaseTotals) add(p Phase, count, ns int64) {
	if t == nil {
		return
	}
	t.counts[p].Add(count)
	t.nanos[p].Add(ns)
}

// PhaseTotal is one phase's aggregate across every traced job.
type PhaseTotal struct {
	// Phase is the phase name.
	Phase string `json:"phase"`
	// Count is the number of spans recorded.
	Count int64 `json:"count"`
	// Seconds is the summed span duration.
	Seconds float64 `json:"seconds"`
}

// Totals snapshots the non-empty phases in declaration order.
func (t *PhaseTotals) Totals() []PhaseTotal {
	if t == nil {
		return nil
	}
	out := make([]PhaseTotal, 0, NumPhases)
	for p := Phase(0); p < NumPhases; p++ {
		n := t.counts[p].Load()
		if n == 0 {
			continue
		}
		out = append(out, PhaseTotal{
			Phase:   p.String(),
			Count:   n,
			Seconds: float64(t.nanos[p].Load()) / 1e9,
		})
	}
	return out
}
