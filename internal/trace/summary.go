package trace

import (
	"encoding/json"
	"io"
	"sort"
)

// PhaseStat is one phase's aggregate over a recorder's lifetime,
// JSON-shaped for job status and the trace endpoint.
type PhaseStat struct {
	// Phase is the phase name ("exec", "flush", ...).
	Phase string `json:"phase"`
	// Count is the number of spans recorded.
	Count int64 `json:"count"`
	// Seconds is the summed span duration.
	Seconds float64 `json:"seconds"`
	// Steps is the summed work units (worker and exec spans).
	Steps int64 `json:"steps,omitempty"`
}

// Summary is a recorder's aggregate phase breakdown. The derived
// fields turn the raw spans into the step-vs-flush-vs-barrier story:
//
//   - StepSeconds is pure update work: worker loops minus their flushes
//     (parallel), or the exec window minus mid-epoch syncs (simulated,
//     whose single goroutine has no worker spans).
//   - BarrierSeconds is straggler wait plus pool orchestration: the
//     worker window costs width×exec wall (width = concurrent pool
//     lanes, or workers when each has its own goroutine), lanes were
//     busy for Σworker of it, and the rest is wakeup lag and barrier
//     idling — the overhead the BENCH_gibbs gap is made of.
//   - Coverage is Σ(top-level phase seconds)/Σ(epoch seconds): how much
//     of the traced wall clock the named spans account for.
type Summary struct {
	// Epochs is the number of complete epochs recorded.
	Epochs int64 `json:"epochs"`
	// EpochSeconds is the summed epoch wall clock.
	EpochSeconds float64 `json:"epoch_seconds"`
	// Workers is the per-epoch worker goroutine count (0 until the
	// executor allocates worker buffers).
	Workers int `json:"workers"`
	// Phases holds the non-empty raw phase aggregates.
	Phases []PhaseStat `json:"phases"`
	// StepSeconds and BarrierSeconds are derived (see type comment).
	StepSeconds    float64 `json:"step_seconds"`
	BarrierSeconds float64 `json:"barrier_seconds"`
	// Coverage is the fraction of epoch wall clock attributed to named
	// top-level phases, in [0, ~1].
	Coverage float64 `json:"coverage"`
	// SpansRetained and SpansDropped describe the journal ring: spans
	// currently held, and spans overwritten since the job began.
	SpansRetained int   `json:"spans_retained"`
	SpansDropped  int64 `json:"spans_dropped"`
}

// Summary computes the aggregate breakdown; zero-valued on nil.
func (r *Recorder) Summary() Summary {
	if r == nil {
		return Summary{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Summary{
		Epochs:        r.counts[PhaseEpoch],
		EpochSeconds:  float64(r.nanos[PhaseEpoch]) / 1e9,
		Workers:       r.workers,
		SpansRetained: len(r.ring),
		SpansDropped:  r.dropped,
	}
	var topNs int64
	for p := Phase(0); p < NumPhases; p++ {
		if r.counts[p] == 0 {
			continue
		}
		s.Phases = append(s.Phases, PhaseStat{
			Phase:   p.String(),
			Count:   r.counts[p],
			Seconds: float64(r.nanos[p]) / 1e9,
			Steps:   r.steps[p],
		})
		if p.topLevel() {
			topNs += r.nanos[p]
		}
	}
	if workerNs := r.nanos[PhaseWorker]; workerNs > 0 {
		s.StepSeconds = float64(workerNs-r.nanos[PhaseFlush]) / 1e9
		// The concurrency width is the pool-lane count when the executor
		// multiplexes logical workers onto fewer goroutines, else the
		// worker count.
		width := r.lanes
		if width == 0 {
			width = r.workers
		}
		if width > 0 {
			s.BarrierSeconds = float64(int64(width)*r.nanos[PhaseExec]-workerNs) / 1e9
		}
	} else {
		s.StepSeconds = float64(r.nanos[PhaseExec]-r.nanos[PhaseSync]) / 1e9
	}
	if s.StepSeconds < 0 {
		s.StepSeconds = 0
	}
	if s.BarrierSeconds < 0 {
		s.BarrierSeconds = 0
	}
	if epochNs := r.nanos[PhaseEpoch]; epochNs > 0 {
		s.Coverage = float64(topNs) / float64(epochNs)
	}
	return s
}

// WorkerUtil is one worker goroutine's utilization over the retained
// journal: how much of the executor's worker window it spent stepping.
type WorkerUtil struct {
	// Worker is the worker id.
	Worker int `json:"worker"`
	// BusySeconds sums the worker's step-loop spans.
	BusySeconds float64 `json:"busy_seconds"`
	// Utilization is BusySeconds over the exec window of the same
	// epochs; the shortfall is barrier wait and spawn lag.
	Utilization float64 `json:"utilization"`
	// Steps is the worker's summed work units.
	Steps int64 `json:"steps"`
}

// Utilization derives per-worker utilization from a span journal: for
// every epoch with an exec span, each worker's busy time is compared
// against the exec window. Simulated-executor journals (no worker
// spans) return nil.
func Utilization(spans []Span) []WorkerUtil {
	execNs := map[int32]int64{} // epoch -> exec window ns
	for _, s := range spans {
		if s.Phase == PhaseExec {
			execNs[s.Epoch] += s.Dur
		}
	}
	type acc struct {
		busy, win, steps int64
	}
	byWorker := map[int32]*acc{}
	for _, s := range spans {
		if s.Phase != PhaseWorker {
			continue
		}
		win, ok := execNs[s.Epoch]
		if !ok {
			continue
		}
		a := byWorker[s.Worker]
		if a == nil {
			a = &acc{}
			byWorker[s.Worker] = a
		}
		a.busy += s.Dur
		a.win += win
		a.steps += s.Steps
	}
	if len(byWorker) == 0 {
		return nil
	}
	ids := make([]int, 0, len(byWorker))
	for w := range byWorker {
		ids = append(ids, int(w))
	}
	sort.Ints(ids)
	out := make([]WorkerUtil, 0, len(ids))
	for _, w := range ids {
		a := byWorker[int32(w)]
		u := WorkerUtil{Worker: w, BusySeconds: float64(a.busy) / 1e9, Steps: a.steps}
		if a.win > 0 {
			u.Utilization = float64(a.busy) / float64(a.win)
		}
		out = append(out, u)
	}
	return out
}

// SpanJSON is one journal span shaped for the trace endpoint.
type SpanJSON struct {
	Phase   string  `json:"phase"`
	Worker  int     `json:"worker"`
	StartUs float64 `json:"start_us"`
	DurUs   float64 `json:"dur_us"`
	Steps   int64   `json:"steps,omitempty"`
}

// EpochSpans groups one epoch's retained spans.
type EpochSpans struct {
	Epoch int        `json:"epoch"`
	Spans []SpanJSON `json:"spans"`
}

// Tree groups a journal by epoch, each epoch's spans in start order —
// the span tree the trace endpoint serves (nesting is implied: worker,
// flush and sync spans sit inside their epoch's exec window).
func Tree(spans []Span) []EpochSpans {
	byEpoch := map[int32][]Span{}
	var epochs []int32
	for _, s := range spans {
		if _, ok := byEpoch[s.Epoch]; !ok {
			epochs = append(epochs, s.Epoch)
		}
		byEpoch[s.Epoch] = append(byEpoch[s.Epoch], s)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	out := make([]EpochSpans, 0, len(epochs))
	for _, ep := range epochs {
		group := byEpoch[ep]
		sort.Slice(group, func(i, j int) bool { return group[i].Start < group[j].Start })
		es := EpochSpans{Epoch: int(ep), Spans: make([]SpanJSON, 0, len(group))}
		for _, s := range group {
			es.Spans = append(es.Spans, SpanJSON{
				Phase:   s.Phase.String(),
				Worker:  int(s.Worker),
				StartUs: float64(s.Start) / 1e3,
				DurUs:   float64(s.Dur) / 1e3,
				Steps:   s.Steps,
			})
		}
		out = append(out, es)
	}
	return out
}

// chromeEvent is one Chrome trace_event record ("X" complete events,
// the chrome://tracing and Perfetto import format).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports a journal as Chrome trace_event JSON
// ({"traceEvents": [...]}), loadable in chrome://tracing or Perfetto.
// Engine-level spans land on tid 0, worker w on tid w+1.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Phase.String(),
			Ph:   "X",
			Pid:  1,
			Tid:  int(s.Worker) + 1,
			Ts:   float64(s.Start) / 1e3,
			Dur:  float64(s.Dur) / 1e3,
			Args: map[string]any{"epoch": s.Epoch},
		}
		if s.Steps > 0 {
			ev.Args["steps"] = s.Steps
		}
		events = append(events, ev)
	}
	return json.NewEncoder(w).Encode(map[string]any{"traceEvents": events})
}
