package serve

import (
	"strings"
	"sync"
	"testing"
	"time"

	"dimmwitted/internal/numa"
)

const waitTimeout = 60 * time.Second

func newTestScheduler(t *testing.T, opts Options) *Scheduler {
	t.Helper()
	s := NewScheduler(opts)
	t.Cleanup(s.Close)
	return s
}

func TestSchedulerLifecycle(t *testing.T) {
	s := newTestScheduler(t, Options{})

	id, err := s.Submit(TrainRequest{Model: "svm", Dataset: "reuters", MaxEpochs: 5})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st, err := s.Wait(id, waitTimeout)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if st.State != "done" {
		t.Fatalf("state = %s (err %q), want done", st.State, st.Error)
	}
	if st.Epoch != 5 {
		t.Errorf("epoch = %d, want 5", st.Epoch)
	}
	if len(st.History) != 5 {
		t.Errorf("history has %d points, want 5", len(st.History))
	}
	if st.History[len(st.History)-1].Loss >= st.History[0].Loss {
		t.Errorf("loss did not decrease: %v -> %v", st.History[0].Loss, st.History[len(st.History)-1].Loss)
	}
	if st.Plan == "" {
		t.Error("done job has no plan")
	}
	if st.Started.IsZero() || st.Finished.IsZero() {
		t.Error("done job missing timestamps")
	}

	// The trained model must be in the registry, with matching loss.
	spec, snap, ok := s.Models().Get(id)
	if !ok {
		t.Fatalf("model %s not registered", id)
	}
	if spec.Name() != "svm" || snap.Dataset != "reuters" {
		t.Errorf("registered (%s, %s), want (svm, reuters)", spec.Name(), snap.Dataset)
	}
	if snap.Loss != st.Loss {
		t.Errorf("snapshot loss %v != job loss %v", snap.Loss, st.Loss)
	}
	if snap.Epoch != st.Epoch {
		t.Errorf("snapshot epoch %v != job epoch %v", snap.Epoch, st.Epoch)
	}
}

func TestSchedulerTargetLoss(t *testing.T) {
	s := newTestScheduler(t, Options{})
	id, err := s.Submit(TrainRequest{Model: "svm", Dataset: "reuters", TargetLoss: 0.9, MaxEpochs: 200})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st, err := s.Wait(id, waitTimeout)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if !st.Converged {
		t.Fatalf("job did not converge to 0.9 in 200 epochs (loss %v)", st.Loss)
	}
	if st.Loss > 0.9 {
		t.Errorf("converged but loss %v > target", st.Loss)
	}
	if st.Epoch >= 200 {
		t.Errorf("converged job ran all %d epochs", st.Epoch)
	}
}

func TestSchedulerSubmitValidation(t *testing.T) {
	s := newTestScheduler(t, Options{})
	cases := []TrainRequest{
		{Model: "nope", Dataset: "reuters"},
		{Model: "svm", Dataset: "nope"},
		{Model: "svm", Dataset: "reuters", Machine: "nope"},
		{Model: "svm", Dataset: "reuters", Access: "diagonal"},
		{Model: "svm", Dataset: "reuters", MaxEpochs: -1},
	}
	for _, req := range cases {
		if _, err := s.Submit(req); err == nil {
			t.Errorf("Submit(%+v) accepted, want error", req)
		}
	}
}

func TestSchedulerRunFailure(t *testing.T) {
	s := newTestScheduler(t, Options{})
	// LS supports row and col access but not column-to-row; the plan
	// passes submit-time parsing and fails engine validation at run
	// time, which must surface as a Failed job, not a crash.
	id, err := s.Submit(TrainRequest{Model: "ls", Dataset: "music-reg", Access: "ctr", MaxEpochs: 3})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st, err := s.Wait(id, waitTimeout)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if st.State != "failed" {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "ls") {
		t.Errorf("failure message %q does not mention the spec", st.Error)
	}
	if _, _, ok := s.Models().Get(id); ok {
		t.Error("failed job registered a model")
	}
}

func TestSchedulerCancelRunning(t *testing.T) {
	s := newTestScheduler(t, Options{})
	// A long job: many epochs with an unreachable target.
	id, err := s.Submit(TrainRequest{Model: "svm", Dataset: "rcv1", MaxEpochs: 100000})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Wait until it is running with at least one epoch recorded.
	deadline := time.Now().Add(waitTimeout)
	for {
		st, _ := s.Status(id)
		if st.State == "running" && st.Epoch >= 1 {
			break
		}
		if st.State != "queued" && st.State != "running" {
			t.Fatalf("job reached %s before cancel", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Cancel(id); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	st, err := s.Wait(id, waitTimeout)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if st.State != "cancelled" {
		t.Fatalf("state = %s, want cancelled", st.State)
	}
	if _, _, ok := s.Models().Get(id); ok {
		t.Error("cancelled job registered a model")
	}
	// Cancelling a terminal job is a no-op, not an error.
	if err := s.Cancel(id); err != nil {
		t.Errorf("second Cancel: %v", err)
	}
}

func TestSchedulerCancelQueued(t *testing.T) {
	// One slot: the first long job occupies it, the second job waits
	// in the queue and must be cancellable there.
	s := newTestScheduler(t, Options{Slots: 1})
	first, err := s.Submit(TrainRequest{Model: "svm", Dataset: "rcv1", MaxEpochs: 100000})
	if err != nil {
		t.Fatalf("Submit first: %v", err)
	}
	second, err := s.Submit(TrainRequest{Model: "svm", Dataset: "reuters", MaxEpochs: 2})
	if err != nil {
		t.Fatalf("Submit second: %v", err)
	}
	if err := s.Cancel(second); err != nil {
		t.Fatalf("Cancel queued: %v", err)
	}
	st, err := s.Wait(second, waitTimeout)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if st.State != "cancelled" {
		t.Fatalf("queued job state = %s, want cancelled", st.State)
	}
	if err := s.Cancel(first); err != nil {
		t.Fatalf("Cancel first: %v", err)
	}
	if st, err := s.Wait(first, waitTimeout); err != nil || st.State != "cancelled" {
		t.Fatalf("first job: %v / %+v", err, st.State)
	}
}

func TestSchedulerSlotsFromTopology(t *testing.T) {
	s := newTestScheduler(t, Options{Machine: numa.Local8})
	if s.Slots() != 8 {
		t.Errorf("local8 scheduler has %d slots, want 8 (one per node)", s.Slots())
	}
}

func TestSchedulerConcurrentJobs(t *testing.T) {
	// More jobs than slots, submitted from concurrent clients; all
	// must complete and register distinct models. Run under -race
	// this exercises engine isolation across concurrent jobs.
	s := newTestScheduler(t, Options{Machine: numa.Local4}) // 4 slots
	reqs := []TrainRequest{
		{Model: "svm", Dataset: "reuters", MaxEpochs: 4},
		{Model: "lr", Dataset: "reuters", MaxEpochs: 4},
		{Model: "svm", Dataset: "rcv1", MaxEpochs: 3},
		{Model: "ls", Dataset: "music-reg", MaxEpochs: 4},
		{Model: "lp", Dataset: "amazon-lp", MaxEpochs: 4},
		{Model: "qp", Dataset: "amazon-qp", MaxEpochs: 4},
		{Model: "svm", Dataset: "reuters", MaxEpochs: 2, Seed: 7},
		{Model: "lr", Dataset: "rcv1", MaxEpochs: 3},
	}
	ids := make([]string, len(reqs))
	var wg sync.WaitGroup
	errs := make([]error, len(reqs))
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req TrainRequest) {
			defer wg.Done()
			id, err := s.Submit(req)
			if err != nil {
				errs[i] = err
				return
			}
			ids[i] = id
			if _, err := s.Wait(id, waitTimeout); err != nil {
				errs[i] = err
			}
		}(i, req)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	seen := map[string]bool{}
	for i, id := range ids {
		st, ok := s.Status(id)
		if !ok || st.State != "done" {
			t.Fatalf("job %d (%s): state %v", i, id, st.State)
		}
		if seen[id] {
			t.Fatalf("duplicate job id %s", id)
		}
		seen[id] = true
		if _, _, ok := s.Models().Get(id); !ok {
			t.Errorf("job %s registered no model", id)
		}
	}
	if got := s.Models().Len(); got != len(reqs) {
		t.Errorf("registry has %d models, want %d", got, len(reqs))
	}
	qs := s.Stats()
	if qs.Done != len(reqs) {
		t.Errorf("queue stats done = %d, want %d", qs.Done, len(reqs))
	}
}

func TestSchedulerJobEviction(t *testing.T) {
	s := newTestScheduler(t, Options{MaxJobHistory: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		id, err := s.Submit(TrainRequest{Model: "svm", Dataset: "reuters", MaxEpochs: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(id, waitTimeout); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// A fifth submission triggers eviction of the oldest terminal jobs.
	last, err := s.Submit(TrainRequest{Model: "svm", Dataset: "reuters", MaxEpochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(last, waitTimeout); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Status(ids[0]); ok {
		t.Error("oldest job survived eviction")
	}
	if _, ok := s.Status(ids[3]); !ok {
		t.Error("recent job was evicted")
	}
	if n := len(s.Jobs()); n > 3 {
		t.Errorf("job table has %d records, want <= 3", n)
	}
	// Evicted jobs keep their registered models.
	if _, _, ok := s.Models().Get(ids[0]); !ok {
		t.Error("eviction dropped the registered model")
	}
	if got := s.Models().Len(); got != 5 {
		t.Errorf("registry has %d models, want 5", got)
	}
}

func TestSchedulerHistoryDecimation(t *testing.T) {
	if testing.Short() {
		t.Skip("long training run")
	}
	s := newTestScheduler(t, Options{})
	id, err := s.Submit(TrainRequest{Model: "svm", Dataset: "reuters", MaxEpochs: maxHistoryPoints + 76})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Wait(id, waitTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != maxHistoryPoints+76 {
		t.Fatalf("epoch %d, want %d", st.Epoch, maxHistoryPoints+76)
	}
	if len(st.History) >= maxHistoryPoints {
		t.Errorf("history has %d points, want < %d after decimation", len(st.History), maxHistoryPoints)
	}
	// After one stride doubling every kept epoch is even.
	for _, p := range st.History {
		if p.Epoch%2 != 0 {
			t.Fatalf("decimated history kept odd epoch %d", p.Epoch)
		}
	}
}

func TestSchedulerClosedRejectsSubmit(t *testing.T) {
	s := NewScheduler(Options{})
	s.Close()
	if _, err := s.Submit(TrainRequest{Model: "svm", Dataset: "reuters"}); err == nil {
		t.Fatal("closed scheduler accepted a job")
	}
}

func TestSchedulerParallelExecutorJob(t *testing.T) {
	s := newTestScheduler(t, Options{})
	id, err := s.Submit(TrainRequest{Model: "svm", Dataset: "reuters", Executor: "parallel", MaxEpochs: 5})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st, err := s.Wait(id, waitTimeout)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if st.State != "done" {
		t.Fatalf("state = %s (err %q), want done", st.State, st.Error)
	}
	if !strings.Contains(st.Plan, "parallel") {
		t.Errorf("plan %q does not name the parallel executor", st.Plan)
	}
	// Parallel epochs are wall-clock, not simulated.
	if st.SimSeconds != 0 {
		t.Errorf("parallel job reported %v simulated seconds", st.SimSeconds)
	}
	if st.WallSeconds <= 0 {
		t.Error("parallel job reported no wall-clock time")
	}
	for _, p := range st.History {
		if p.WallSeconds <= 0 {
			t.Fatalf("history point %d has no wall time", p.Epoch)
		}
	}
	// The trained model is registered and servable like any other.
	if _, _, ok := s.Models().Get(id); !ok {
		t.Error("parallel job did not register its model")
	}
}

func TestSchedulerRejectsUnknownExecutor(t *testing.T) {
	s := newTestScheduler(t, Options{})
	if _, err := s.Submit(TrainRequest{Model: "svm", Dataset: "reuters", Executor: "threads"}); err == nil {
		t.Fatal("unknown executor accepted")
	}
}
