package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"dimmwitted/internal/data"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

// newTestServer starts an httptest server over a fresh serve.Server.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(opts)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// doJSON posts (or gets) JSON and decodes the response into out.
func doJSON(t *testing.T, client *http.Client, method, url string, in, out any) int {
	t.Helper()
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("marshal %v: %v", in, err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %q: %v", raw, err)
		}
	}
	return resp.StatusCode
}

// pollJob polls the job endpoint until the job terminates.
func pollJob(t *testing.T, client *http.Client, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(waitTimeout)
	for {
		var st JobStatus
		code := doJSON(t, client, http.MethodGet, base+"/v1/jobs/"+id, nil, &st)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		switch st.State {
		case "done", "failed", "cancelled":
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, st.State, waitTimeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// trainToCompletion submits a job over HTTP and polls it to done.
func trainToCompletion(t *testing.T, client *http.Client, base string, req TrainRequest) (string, JobStatus) {
	t.Helper()
	var tr trainResponse
	if code := doJSON(t, client, http.MethodPost, base+"/v1/train", req, &tr); code != http.StatusAccepted {
		t.Fatalf("POST /v1/train: status %d", code)
	}
	st := pollJob(t, client, base, tr.JobID)
	if st.State != "done" {
		t.Fatalf("job %s ended %s (err %q)", tr.JobID, st.State, st.Error)
	}
	return tr.JobID, st
}

func TestHTTPTrainPredictRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	client := ts.Client()

	// Train SVM on reuters — the acceptance-criteria demo workload.
	id, st := trainToCompletion(t, client, ts.URL, TrainRequest{
		Model: "svm", Dataset: "reuters", TargetLoss: 0.3, MaxEpochs: 100,
	})
	if !st.Converged {
		t.Fatalf("training did not reach 0.3 (loss %v after %d epochs)", st.Loss, st.Epoch)
	}
	if len(st.History) != st.Epoch {
		t.Errorf("history has %d points for %d epochs", len(st.History), st.Epoch)
	}

	// Predict the training rows back; labels must mostly match.
	ds, err := data.ByName("reuters")
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	preq := predictRequest{Model: id}
	labels := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		idx, vals := ds.A.Row(i)
		preq.Examples = append(preq.Examples, exampleJSON{Indices: idx, Values: vals})
		labels = append(labels, ds.Labels[i])
	}
	var presp predictResponse
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/predict", preq, &presp); code != http.StatusOK {
		t.Fatalf("POST /v1/predict: status %d", code)
	}
	if presp.Count != n || len(presp.Predictions) != n {
		t.Fatalf("predicted %d/%d examples, want %d", presp.Count, len(presp.Predictions), n)
	}
	for i, p := range presp.Predictions {
		if p != 1 && p != -1 {
			t.Fatalf("prediction %d = %v, want ±1", i, p)
		}
	}
	if acc := model.Accuracy(presp.Predictions, labels); acc < 0.8 {
		t.Errorf("training-set accuracy %.2f, want >= 0.8", acc)
	}

	// Dense encoding works too and agrees with sparse.
	dense := make([]float64, ds.Cols())
	idx, vals := ds.A.Row(0)
	for k, j := range idx {
		dense[j] = vals[k]
	}
	var dresp predictResponse
	dreq := predictRequest{Model: id, Examples: []exampleJSON{{Dense: dense}}}
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/predict", dreq, &dresp); code != http.StatusOK {
		t.Fatalf("dense predict: status %d", code)
	}
	if dresp.Predictions[0] != presp.Predictions[0] {
		t.Errorf("dense prediction %v != sparse %v", dresp.Predictions[0], presp.Predictions[0])
	}

	// The model listing shows the trained model.
	var models struct {
		Models []ModelInfo `json:"models"`
	}
	if code := doJSON(t, client, http.MethodGet, ts.URL+"/v1/models", nil, &models); code != http.StatusOK {
		t.Fatal("GET /v1/models failed")
	}
	if len(models.Models) != 1 || models.Models[0].ID != id || models.Models[0].Dim != ds.Cols() {
		t.Errorf("model listing %+v", models.Models)
	}

	// Stats reflect the session.
	var stats statsResponse
	if code := doJSON(t, client, http.MethodGet, ts.URL+"/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatal("GET /v1/stats failed")
	}
	c := stats.Counters
	if c.TrainRequests != 1 || c.JobsDone != 1 || c.PredictRequests != 2 || c.Predictions != int64(n+1) {
		t.Errorf("counters %+v", c)
	}
	if stats.Queue.Done != 1 || stats.Models != 1 {
		t.Errorf("stats queue %+v models %d", stats.Queue, stats.Models)
	}
	if stats.PlanCache.Misses != 1 {
		t.Errorf("plan cache %+v, want 1 miss", stats.PlanCache)
	}
	if len(stats.Datasets) == 0 {
		t.Error("stats list no datasets")
	}
}

func TestHTTPErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	client := ts.Client()

	var errResp map[string]string
	if code := doJSON(t, client, http.MethodGet, ts.URL+"/v1/jobs/job-999", nil, &errResp); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/train",
		TrainRequest{Model: "nope", Dataset: "reuters"}, &errResp); code != http.StatusBadRequest {
		t.Errorf("bad model: status %d, want 400", code)
	}
	if errResp["error"] == "" {
		t.Error("error envelope missing message")
	}
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/predict",
		predictRequest{Model: "job-999", Examples: []exampleJSON{{Dense: []float64{1}}}}, &errResp); code != http.StatusNotFound {
		t.Errorf("unknown model predict: status %d, want 404", code)
	}
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/predict",
		predictRequest{Model: "job-999"}, &errResp); code != http.StatusBadRequest {
		t.Errorf("empty predict: status %d, want 400", code)
	}

	// Out-of-range indices are rejected, not a panic.
	id, _ := trainToCompletion(t, client, ts.URL, TrainRequest{Model: "svm", Dataset: "reuters", MaxEpochs: 1})
	bad := predictRequest{Model: id, Examples: []exampleJSON{{Indices: []int32{1 << 30}, Values: []float64{1}}}}
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/predict", bad, &errResp); code != http.StatusBadRequest {
		t.Errorf("out-of-range predict: status %d, want 400", code)
	}

	// Mixed encodings are rejected whichever sparse half is present.
	for _, ex := range []exampleJSON{
		{Indices: []int32{1}, Values: []float64{1}, Dense: []float64{1, 2}},
		{Values: []float64{9, 9}, Dense: []float64{1, 2}},
		{Indices: []int32{0, 1}, Dense: []float64{1, 2}},
	} {
		mixed := predictRequest{Model: id, Examples: []exampleJSON{ex}}
		if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/predict", mixed, &errResp); code != http.StatusBadRequest {
			t.Errorf("mixed encoding %+v: status %d, want 400", ex, code)
		}
	}

	var stats statsResponse
	doJSON(t, client, http.MethodGet, ts.URL+"/v1/stats", nil, &stats)
	if stats.Counters.HTTPErrors < 4 {
		t.Errorf("http errors counter %d, want >= 4", stats.Counters.HTTPErrors)
	}
}

func TestHTTPCancel(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	client := ts.Client()

	var tr trainResponse
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/train",
		TrainRequest{Model: "svm", Dataset: "rcv1", MaxEpochs: 100000}, &tr); code != http.StatusAccepted {
		t.Fatalf("train: status %d", code)
	}
	var st JobStatus
	if code := doJSON(t, client, http.MethodDelete, ts.URL+"/v1/jobs/"+tr.JobID, nil, &st); code != http.StatusOK {
		t.Fatalf("cancel: status %d", code)
	}
	final := pollJob(t, client, ts.URL, tr.JobID)
	if final.State != "cancelled" {
		t.Fatalf("state %s, want cancelled", final.State)
	}
}

func TestHTTPConcurrentClients(t *testing.T) {
	// The acceptance-criteria scenario: >= 4 concurrent clients, each
	// running a full train -> poll -> predict session against one
	// server. Under -race this exercises the scheduler, plan cache,
	// registry and counters from many goroutines at once.
	_, ts := newTestServer(t, Options{Machine: numa.Local4})
	const clients = 6

	type result struct {
		id  string
		err error
	}
	results := make([]result, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := ts.Client()
			// Clients 0-2 share a workload (plan-cache hits); the
			// rest spread over models and datasets.
			reqs := []TrainRequest{
				{Model: "svm", Dataset: "reuters", MaxEpochs: 5},
				{Model: "svm", Dataset: "reuters", MaxEpochs: 5},
				{Model: "svm", Dataset: "reuters", MaxEpochs: 5},
				{Model: "lr", Dataset: "rcv1", MaxEpochs: 3},
				{Model: "ls", Dataset: "music-reg", MaxEpochs: 4},
				{Model: "lp", Dataset: "amazon-lp", MaxEpochs: 4},
			}
			req := reqs[c%len(reqs)]

			var tr trainResponse
			b, _ := json.Marshal(req)
			resp, err := client.Post(ts.URL+"/v1/train", "application/json", bytes.NewReader(b))
			if err != nil {
				results[c] = result{err: err}
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				results[c] = result{err: fmt.Errorf("train status %d: %s", resp.StatusCode, raw)}
				return
			}
			if err := json.Unmarshal(raw, &tr); err != nil {
				results[c] = result{err: err}
				return
			}

			deadline := time.Now().Add(waitTimeout)
			for {
				resp, err := client.Get(ts.URL + "/v1/jobs/" + tr.JobID)
				if err != nil {
					results[c] = result{err: err}
					return
				}
				var st JobStatus
				err = json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if err != nil {
					results[c] = result{err: err}
					return
				}
				if st.State == "done" {
					break
				}
				if st.State == "failed" || st.State == "cancelled" {
					results[c] = result{err: fmt.Errorf("job %s ended %s: %s", tr.JobID, st.State, st.Error)}
					return
				}
				if time.Now().After(deadline) {
					results[c] = result{err: fmt.Errorf("job %s timed out in %s", tr.JobID, st.State)}
					return
				}
				time.Sleep(5 * time.Millisecond)
			}

			// Each client predicts one example from its dataset.
			ds, err := data.ByName(req.Dataset)
			if err != nil {
				results[c] = result{err: err}
				return
			}
			idx, vals := ds.A.Row(c % ds.Rows())
			pb, _ := json.Marshal(predictRequest{
				Model:    tr.JobID,
				Examples: []exampleJSON{{Indices: idx, Values: vals}},
			})
			presp, err := client.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(pb))
			if err != nil {
				results[c] = result{err: err}
				return
			}
			praw, _ := io.ReadAll(presp.Body)
			presp.Body.Close()
			if presp.StatusCode != http.StatusOK {
				results[c] = result{err: fmt.Errorf("predict status %d: %s", presp.StatusCode, praw)}
				return
			}
			var pr predictResponse
			if err := json.Unmarshal(praw, &pr); err != nil {
				results[c] = result{err: err}
				return
			}
			if pr.Count != 1 {
				results[c] = result{err: fmt.Errorf("predict count %d", pr.Count)}
				return
			}
			results[c] = result{id: tr.JobID}
		}(c)
	}
	wg.Wait()

	ids := map[string]bool{}
	for c, r := range results {
		if r.err != nil {
			t.Fatalf("client %d: %v", c, r.err)
		}
		if ids[r.id] {
			t.Fatalf("clients shared job id %s", r.id)
		}
		ids[r.id] = true
	}

	var stats statsResponse
	doJSON(t, ts.Client(), http.MethodGet, ts.URL+"/v1/stats", nil, &stats)
	if stats.Counters.JobsDone != clients {
		t.Errorf("jobs done %d, want %d", stats.Counters.JobsDone, clients)
	}
	// Hit counts depend on interleaving (identical concurrent jobs may
	// all miss before the first Store), but every job consults the
	// cache exactly once.
	if total := stats.Counters.PlanCacheHits + stats.Counters.PlanCacheMisses; total != clients {
		t.Errorf("plan cache lookups %d, want %d", total, clients)
	}
	if stats.Models != clients {
		t.Errorf("models %d, want %d", stats.Models, clients)
	}
}

// TestHTTPParallelTrainPredictRoundTrip is the acceptance-criteria
// demo: train a model with "executor": "parallel" over the HTTP API,
// then serve predictions from it.
func TestHTTPParallelTrainPredictRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	client := ts.Client()

	id, st := trainToCompletion(t, client, ts.URL, TrainRequest{
		Model: "svm", Dataset: "reuters", Executor: "parallel", TargetLoss: 0.3, MaxEpochs: 100,
	})
	if !st.Converged {
		t.Fatalf("parallel training did not reach 0.3 (loss %v after %d epochs)", st.Loss, st.Epoch)
	}
	if st.SimSeconds != 0 || st.WallSeconds <= 0 {
		t.Errorf("parallel job times sim=%v wall=%v, want 0 and > 0", st.SimSeconds, st.WallSeconds)
	}

	ds, err := data.ByName("reuters")
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	preq := predictRequest{Model: id}
	labels := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		idx, vals := ds.A.Row(i)
		preq.Examples = append(preq.Examples, exampleJSON{Indices: idx, Values: vals})
		labels = append(labels, ds.Labels[i])
	}
	var presp predictResponse
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/predict", preq, &presp); code != http.StatusOK {
		t.Fatalf("POST /v1/predict: status %d", code)
	}
	if acc := model.Accuracy(presp.Predictions, labels); acc < 0.8 {
		t.Errorf("parallel-trained accuracy %.2f, want >= 0.8", acc)
	}
}

// TestHTTPDeleteStopsParallelJob proves DELETE /v1/jobs/{id} stops a
// running parallel job promptly and leaks no goroutines: the worker
// goroutine count returns to the pre-server baseline once the job is
// cancelled and the server shut down.
func TestHTTPDeleteStopsParallelJob(t *testing.T) {
	before := runtime.NumGoroutine()

	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	client := ts.Client()

	var tr trainResponse
	code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/train", TrainRequest{
		Model: "svm", Dataset: "rcv1", Executor: "parallel", Workers: 4, MaxEpochs: 1 << 20,
	}, &tr)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/train: status %d", code)
	}

	// Wait until the job is genuinely executing parallel epochs.
	deadline := time.Now().Add(waitTimeout)
	for {
		var st JobStatus
		doJSON(t, client, http.MethodGet, ts.URL+"/v1/jobs/"+tr.JobID, nil, &st)
		if st.State == "running" && st.Epoch >= 1 {
			break
		}
		if st.State != "queued" && st.State != "running" {
			t.Fatalf("job reached %s before cancellation", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}

	var st JobStatus
	if code := doJSON(t, client, http.MethodDelete, ts.URL+"/v1/jobs/"+tr.JobID, nil, &st); code != http.StatusOK {
		t.Fatalf("DELETE: status %d", code)
	}
	if st = pollJob(t, client, ts.URL, tr.JobID); st.State != "cancelled" {
		t.Fatalf("job ended %s, want cancelled", st.State)
	}

	// A 2^20-epoch job only terminates this fast because cancellation
	// interrupts the engine; with the job gone and the server closed,
	// every goroutine it spawned must exit.
	client.CloseIdleConnections()
	ts.Close()
	srv.Close()
	leakDeadline := time.Now().Add(waitTimeout)
	for time.Now().Before(leakDeadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after cancel+close", before, runtime.NumGoroutine())
}
