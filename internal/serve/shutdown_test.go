package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"dimmwitted/internal/numa"
)

// TestCloseMidJobCheckpointsAndResumes is the graceful-shutdown round
// trip: a scheduler is closed (as dwserve's SIGTERM handler does)
// while a job is mid-training, the dying scheduler checkpoints the
// job, and a fresh scheduler over the same store resumes it to
// completion from that checkpoint rather than from epoch zero.
func TestCloseMidJobCheckpointsAndResumes(t *testing.T) {
	jobs, models := testStores(t)
	// CheckpointEvery is set far past the run so the only checkpoint
	// the store can hold is the one the shutdown path writes.
	s1 := NewScheduler(Options{Machine: numa.Local2, Checkpoints: jobs, Models: models, CheckpointEvery: 100000})
	id, err := s1.Submit(TrainRequest{Model: "svm", Dataset: "rcv1", MaxEpochs: 100000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st, _ := s1.Status(id); st.Epoch >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached epoch 2")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s1.Close() // SIGTERM: cancel running jobs, checkpoint them, flush

	snap, _, _, err := jobs.Load(id)
	if err != nil {
		t.Fatalf("shutdown left no checkpoint for the running job: %v", err)
	}
	if snap.Epoch < 1 {
		t.Fatalf("shutdown checkpoint at epoch %d", snap.Epoch)
	}

	// "Restart": a new scheduler over the same stores resumes the job.
	s2 := NewScheduler(Options{Machine: numa.Local2, Checkpoints: jobs, Models: models, CheckpointEvery: 100000})
	defer s2.Close()
	newID, err := s2.Resume(id)
	if err != nil {
		t.Fatalf("resume after restart: %v", err)
	}
	deadline = time.Now().Add(30 * time.Second)
	for {
		st, _ := s2.Status(newID)
		if st.Epoch > snap.Epoch {
			break
		}
		if st.State == "failed" {
			t.Fatalf("resumed job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed job stuck at epoch %d (checkpoint %d)", st.Epoch, snap.Epoch)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s2.Cancel(newID); err != nil {
		t.Fatal(err)
	}
}

// TestRequestBodyLimit drives every POST route with a body past the
// configured cap and expects 413 with the JSON error envelope, not a
// hung or half-read request.
func TestRequestBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxBodyBytes: 512})
	pad := strings.Repeat("x", 2048)
	big, _ := json.Marshal(map[string]string{"model": "svm", "pad": pad})
	cases := []struct {
		name, path, ctype string
		body              []byte
	}{
		{"train", "/v1/train", "application/json", big},
		{"predict", "/v1/predict", "application/json", big},
		{"append", "/v1/datasets/bl-stream/append", "application/json", big},
		{"replica", "/v1/cluster/replica/bl-model", "application/octet-stream", bytes.Repeat([]byte{0xAB}, 2048)},
		{"join", "/v1/cluster/join", "application/json", big},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.path, tc.ctype, bytes.NewReader(tc.body))
			if err != nil {
				t.Fatalf("POST %s: %v", tc.path, err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusRequestEntityTooLarge {
				t.Fatalf("POST %s with %d-byte body: status %d, want 413", tc.path, len(tc.body), resp.StatusCode)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
				t.Fatalf("413 response lacks the JSON error envelope: %v %q", err, e.Error)
			}
			if !strings.Contains(e.Error, "512") {
				t.Fatalf("413 error does not name the limit: %q", e.Error)
			}
		})
	}

	// A negative cap disables the limiter entirely.
	_, open := newTestServer(t, Options{MaxBodyBytes: -1})
	resp, err := http.Post(open.URL+"/v1/train", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusRequestEntityTooLarge {
		t.Fatal("MaxBodyBytes<0 still enforced a body limit")
	}
}
