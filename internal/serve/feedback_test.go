package serve

import (
	"testing"
	"time"

	"dimmwitted/internal/core"
	"dimmwitted/internal/data"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
	"dimmwitted/internal/tune"
)

// TestPlanCacheEviction exercises the LRU size cap.
func TestPlanCacheEviction(t *testing.T) {
	c := NewPlanCacheSize(2)
	spec := model.NewSVM()
	ds, err := data.ByName("reuters")
	if err != nil {
		t.Fatal(err)
	}
	keys := []PlanKey{
		KeyFor(spec, ds, numa.Local2, core.ExecSimulated),
		KeyFor(spec, ds, numa.Local4, core.ExecSimulated),
		KeyFor(spec, ds, numa.Local8, core.ExecSimulated),
	}
	plan := core.Plan{Machine: numa.Local2}
	c.Store(keys[0], plan)
	c.Store(keys[1], plan)
	// Touch key 0 so key 1 is the LRU victim when key 2 arrives.
	if _, ok := c.Lookup(keys[0]); !ok {
		t.Fatal("stored key missing")
	}
	c.Store(keys[2], plan)

	if _, ok := c.Peek(keys[1]); ok {
		t.Fatal("LRU entry survived past the size cap")
	}
	for _, k := range []PlanKey{keys[0], keys[2]} {
		if _, ok := c.Peek(k); !ok {
			t.Fatalf("recently used entry %v was evicted", k.Machine)
		}
	}
	st := c.Stats()
	if st.Size != 2 || st.Capacity != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want size 2, capacity 2, evictions 1", st)
	}
}

// TestPlanCacheInvalidate exercises the generational contract directly.
func TestPlanCacheInvalidate(t *testing.T) {
	c := NewPlanCache()
	spec := model.NewSVM()
	ds, err := data.ByName("reuters")
	if err != nil {
		t.Fatal(err)
	}
	key := KeyFor(spec, ds, numa.Local2, core.ExecSimulated)
	if c.Invalidate(key) {
		t.Fatal("invalidating a missing key reported success")
	}
	c.Store(key, core.Plan{Machine: numa.Local2})
	if !c.Invalidate(key) {
		t.Fatal("invalidating a present key reported failure")
	}
	if _, ok := c.Peek(key); ok {
		t.Fatal("invalidated entry still cached")
	}
	st := c.Stats()
	if st.Invalidations != 1 || st.Generation != 1 {
		t.Fatalf("stats = %+v, want 1 invalidation, generation 1", st)
	}
}

// rivalKey builds the observation key the scheduler would use for a
// candidate plan of the svm/reuters job — the test's window into the
// feedback store's keyspace.
func rivalKey(t *testing.T, ds *data.Dataset, p core.Plan) tune.Key {
	t.Helper()
	return tune.Key{
		Workload: "glm", Model: "svm", Dataset: ds.Name,
		Rows: ds.Rows(), Cols: ds.Cols(), NNZ: ds.NNZ(),
		DatasetVersion: ds.Version,
		Machine:        p.Machine.Name,
		Executor:       p.Executor.String(), ModelRep: p.ModelRep.String(),
		DataRep: p.DataRep.String(), Access: p.Access.String(),
		Workers: p.Workers, StealChunk: p.StealChunk,
	}
}

// TestFeedbackInvalidatesFlippedWinner is the tentpole's cache
// contract: once the feedback store proves a non-static candidate
// cheaper, the finished job's re-planning pass invalidates the cached
// static plan and stores the measured winner, and the next scheduler
// over the same store picks it as "measured".
func TestFeedbackInvalidatesFlippedWinner(t *testing.T) {
	fb := tune.NewStore(tune.Options{MinObservations: 1, Epsilon: -1})
	s := newTestScheduler(t, Options{Feedback: fb})
	req := TrainRequest{Model: "svm", Dataset: "reuters", MaxEpochs: 2}

	id1, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st1, err := s.Wait(id1, waitTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if st1.State != "done" {
		t.Fatalf("job 1 ended %s: %s", st1.State, st1.Error)
	}
	if st1.PlanSource != "static" {
		t.Fatalf("job 1 plan source %q, want static (nothing measured yet)", st1.PlanSource)
	}
	if st1.ObservedSecondsPerEpoch <= 0 {
		t.Fatalf("job 1 observed seconds/epoch = %v, want > 0", st1.ObservedSecondsPerEpoch)
	}
	if got := fb.Stats().Observations; got != 2 {
		t.Fatalf("feedback store holds %d observations after a 2-epoch job, want 2", got)
	}

	// Plant measurements that make a non-static candidate the winner.
	ds, err := data.ByName("reuters")
	if err != nil {
		t.Fatal(err)
	}
	wl := core.NewGLM(model.NewSVM(), ds)
	cands, err := core.CandidatePlans(wl, numa.Local2, core.ExecSimulated)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 2 {
		t.Fatalf("only %d candidates", len(cands))
	}
	rival := cands[1]
	fb.Record(rivalKey(t, ds, rival), tune.Sample{SecondsPerEpoch: 1e-9})

	// The repeat job still runs the cached static plan, but its closing
	// re-planning pass must see the flip and invalidate the entry.
	id2, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := s.Wait(id2, waitTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != "done" {
		t.Fatalf("job 2 ended %s: %s", st2.State, st2.Error)
	}
	if st2.PlanSource != "cached" {
		t.Fatalf("job 2 plan source %q, want cached", st2.PlanSource)
	}
	cs := s.Plans().Stats()
	if cs.Invalidations != 1 || cs.Generation != 1 {
		t.Fatalf("cache stats after flip = %+v, want 1 invalidation, generation 1", cs)
	}
	key := KeyFor(model.NewSVM(), ds, numa.Local2, core.ExecSimulated)
	got, ok := s.Plans().Peek(key)
	if !ok {
		t.Fatal("re-planned winner was not stored back")
	}
	if got.ModelRep != rival.ModelRep || got.DataRep != rival.DataRep {
		t.Fatalf("cached plan after flip = %v, want the measured rival %v", got, rival)
	}

	// A fresh scheduler sharing the store (a restart, in effect) must
	// choose the measured winner outright.
	s2 := newTestScheduler(t, Options{Feedback: fb})
	id3, err := s2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st3, err := s2.Wait(id3, waitTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if st3.State != "done" {
		t.Fatalf("job 3 ended %s: %s", st3.State, st3.Error)
	}
	if st3.PlanSource != "measured" {
		t.Fatalf("job 3 plan source %q, want measured", st3.PlanSource)
	}
	if st3.PredictedSecondsPerEpoch <= 0 {
		t.Fatalf("job 3 predicted seconds/epoch = %v, want > 0", st3.PredictedSecondsPerEpoch)
	}
}

// TestFeedbackDisabled: -no-feedback restores the purely static path.
func TestFeedbackDisabled(t *testing.T) {
	s := newTestScheduler(t, Options{DisableFeedback: true})
	if s.Feedback() != nil {
		t.Fatal("DisableFeedback left a feedback store attached")
	}
	id, err := s.Submit(TrainRequest{Model: "svm", Dataset: "reuters", MaxEpochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Wait(id, waitTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if st.PlanSource != "static" {
		t.Fatalf("plan source %q, want static", st.PlanSource)
	}
	if st.PredictedSecondsPerEpoch != 0 {
		t.Fatalf("predicted = %v with feedback off, want 0", st.PredictedSecondsPerEpoch)
	}
}

// TestBatchTunerAIMD drives the controller's decision rule directly.
func TestBatchTunerAIMD(t *testing.T) {
	reg := NewRegistry()
	coal := NewCoalescer(reg, CoalescerOptions{Window: time.Millisecond, MaxBatch: 256})
	defer coal.Close()
	cfg := BatchTunerConfig{
		TargetP95: 5 * time.Millisecond,
		MinWindow: 100 * time.Microsecond, MaxWindow: 10 * time.Millisecond,
		MinBatch: 16, MaxBatch: 1024,
		FactorThreshold: 1.05,
	}
	bt := NewBatchTuner(coal, nil, cfg)

	// Over-target latency with traffic: multiplicative decrease.
	bt.TickWith(20*time.Millisecond, 100, 10)
	if got := coal.Window(); got != 500*time.Microsecond {
		t.Fatalf("window after backoff = %v, want 500µs", got)
	}
	if got := coal.MaxBatch(); got != 128 {
		t.Fatalf("max batch after backoff = %d, want 128", got)
	}

	// Healthy coalescing under target: additive increase.
	bt.TickWith(time.Millisecond, 300, 20) // interval factor 200/10 = 20
	if got := coal.Window(); got != 600*time.Microsecond {
		t.Fatalf("window after increase = %v, want 600µs", got)
	}
	if got := coal.MaxBatch(); got != 144 {
		t.Fatalf("max batch after increase = %d, want 144", got)
	}

	// Idle interval: the window drifts down; the cap holds.
	bt.TickWith(0, 300, 20)
	if got := coal.Window(); got != 500*time.Microsecond {
		t.Fatalf("window after idle drift = %v, want 500µs", got)
	}
	if got := coal.MaxBatch(); got != 144 {
		t.Fatalf("max batch after idle drift = %d, want 144", got)
	}

	// Repeated backoffs clamp at the floors, never zero.
	for i := 0; i < 20; i++ {
		bt.TickWith(time.Second, 300+int64(i+1), 20+int64(i+1))
	}
	if got := coal.Window(); got != cfg.MinWindow {
		t.Fatalf("window floor = %v, want %v", got, cfg.MinWindow)
	}
	if got := coal.MaxBatch(); got != cfg.MinBatch {
		t.Fatalf("batch floor = %d, want %d", got, cfg.MinBatch)
	}

	st := bt.Stats()
	if st.Backoffs != 21 || st.Increases != 1 || st.Ticks != 23 {
		t.Fatalf("tuner stats = %+v, want 21 backoffs, 1 increase, 23 ticks", st)
	}
}

// TestBatchTunerClampsAtMax: additive growth stops at the ceilings.
func TestBatchTunerClampsAtMax(t *testing.T) {
	reg := NewRegistry()
	coal := NewCoalescer(reg, CoalescerOptions{Window: time.Millisecond, MaxBatch: 256})
	defer coal.Close()
	bt := NewBatchTuner(coal, nil, BatchTunerConfig{
		TargetP95: 5 * time.Millisecond,
		MinWindow: time.Millisecond, MaxWindow: 3 * time.Millisecond,
		MinBatch: 256, MaxBatch: 512,
	})
	for i := int64(1); i <= 10; i++ {
		bt.TickWith(time.Millisecond, 100*i, 10*i)
	}
	if got := coal.Window(); got != 3*time.Millisecond {
		t.Fatalf("window ceiling = %v, want 3ms", got)
	}
	if got := coal.MaxBatch(); got != 512 {
		t.Fatalf("batch ceiling = %d, want 512", got)
	}
}

// TestServerAutoBatchWiring: the server starts and stops the tuner and
// surfaces its stats.
func TestServerAutoBatchWiring(t *testing.T) {
	srv := NewServer(Options{
		BatchWindow: 200 * time.Microsecond,
		AutoBatch:   true,
		AutoBatchConfig: BatchTunerConfig{
			Interval: time.Hour, // never ticks during the test
		},
	})
	defer srv.Close()
	bt := srv.BatchTuner()
	if bt == nil {
		t.Fatal("AutoBatch did not build a tuner")
	}
	st := bt.Stats()
	if st.WindowMs <= 0 || st.MaxBatch <= 0 {
		t.Fatalf("tuner stats = %+v, want live coalescer settings", st)
	}
	if cfg := bt.Config(); cfg.TargetP95 != 5*time.Millisecond {
		t.Fatalf("default target p95 = %v, want 5ms", cfg.TargetP95)
	}
}
