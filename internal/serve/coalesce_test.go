package serve

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dimmwitted/internal/core"
	"dimmwitted/internal/model"
	"dimmwitted/internal/nn"
)

// equivalenceFixture registers one serving model per prediction path —
// all six GLM specs, the gibbs marginal lookup, and the nn argmax —
// and returns per-model example batches in the model's input encoding.
func equivalenceFixture(t *testing.T, reg *Registry, rng *rand.Rand) map[string][][]model.Example {
	t.Helper()
	const dim = 32
	const reqs, perReq = 8, 3
	batches := map[string][][]model.Example{}

	sparse := func() []model.Example {
		out := make([]model.Example, perReq)
		for i := range out {
			out[i] = model.Example{
				Idx:  []int32{int32(rng.Intn(dim / 2)), int32(dim/2 + rng.Intn(dim/2))},
				Vals: []float64{rng.NormFloat64(), rng.NormFloat64()},
			}
		}
		return out
	}

	for _, name := range []string{"svm", "lr", "ls", "lp", "qp", "sum"} {
		spec, err := model.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, dim)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		id := "glm-" + name
		snap := core.Snapshot{Workload: core.WorkloadGLM, Spec: name, Dataset: "synthetic", X: x}
		if err := reg.Put(id, spec, snap); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < reqs; r++ {
			batches[id] = append(batches[id], sparse())
		}
	}

	// Gibbs: marginal lookup by variable index.
	marg := make([]float64, dim)
	for i := range marg {
		marg[i] = rng.Float64()
	}
	if err := reg.PutScored("gibbs-1", marginalScorer,
		core.Snapshot{Workload: core.WorkloadGibbs, Spec: "gibbs", Dataset: "paleo", X: marg}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < reqs; r++ {
		exs := make([]model.Example, perReq)
		for i := range exs {
			exs[i] = model.Example{Idx: []int32{int32(rng.Intn(dim))}, Vals: []float64{1}}
		}
		batches["gibbs-1"] = append(batches["gibbs-1"], exs)
	}

	// NN: argmax forward pass over a small dense network.
	sizes := []int{6, 4, 3}
	params := nn.NewNetwork(sizes, 7).Params()
	scorer := func(x []float64, examples []model.Example) ([]float64, error) {
		return nn.PredictBatch(sizes, x, examples)
	}
	if err := reg.PutScored("nn-1", scorer,
		core.Snapshot{Workload: core.WorkloadNN, Spec: "nn", Dataset: "synthetic", X: params}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < reqs; r++ {
		exs := make([]model.Example, perReq)
		for i := range exs {
			dense := make([]float64, sizes[0])
			for j := range dense {
				dense[j] = rng.Float64()
			}
			exs[i] = model.DenseExample(dense)
		}
		batches["nn-1"] = append(batches["nn-1"], exs)
	}
	return batches
}

// TestCoalescerEquivalence proves coalesced micro-batched predictions
// are bit-identical to per-request PredictBatch results for all six
// GLM specs plus the gibbs-marginal and nn-argmax serving paths: every
// request is issued once directly against the registry and once
// through a coalescer under heavy interleaving, and the float64
// outputs must match exactly (==, not within tolerance).
func TestCoalescerEquivalence(t *testing.T) {
	reg := NewRegistry()
	rng := rand.New(rand.NewSource(42))
	batches := equivalenceFixture(t, reg, rng)

	// Reference results: one direct registry call per request.
	want := map[string][][]float64{}
	for id, reqs := range batches {
		for _, exs := range reqs {
			preds, err := reg.Predict(id, exs)
			if err != nil {
				t.Fatalf("direct predict %s: %v", id, err)
			}
			want[id] = append(want[id], preds)
		}
	}

	// A generous window so concurrent requests genuinely coalesce.
	coal := NewCoalescer(reg, CoalescerOptions{Window: 100 * time.Millisecond, MaxBatch: 4096})
	defer coal.Close()

	type result struct {
		id    string
		req   int
		preds []float64
		err   error
	}
	var wg sync.WaitGroup
	results := make(chan result, 256)
	start := make(chan struct{})
	for id, reqs := range batches {
		for r, exs := range reqs {
			wg.Add(1)
			go func(id string, r int, exs []model.Example) {
				defer wg.Done()
				<-start
				preds, err := coal.Predict(id, exs)
				results <- result{id: id, req: r, preds: preds, err: err}
			}(id, r, exs)
		}
	}
	close(start)
	wg.Wait()
	close(results)

	for res := range results {
		if res.err != nil {
			t.Fatalf("coalesced predict %s/%d: %v", res.id, res.req, res.err)
		}
		ref := want[res.id][res.req]
		if len(res.preds) != len(ref) {
			t.Fatalf("%s/%d: %d predictions, want %d", res.id, res.req, len(res.preds), len(ref))
		}
		for i := range ref {
			if res.preds[i] != ref[i] {
				t.Fatalf("%s/%d example %d: coalesced %v != direct %v (must be bit-identical)",
					res.id, res.req, i, res.preds[i], ref[i])
			}
		}
	}

	st := coal.Stats()
	if st.Requests == 0 || st.Batches == 0 {
		t.Fatalf("coalescer stats %+v: nothing flowed through batches", st)
	}
	if st.Batches >= st.Requests {
		t.Errorf("coalescer stats %+v: no coalescing happened (batches >= requests)", st)
	}
	if st.Rejected != 0 {
		t.Errorf("unexpected rejections: %+v", st)
	}
}

// TestCoalescerBadExampleIsolated pins the batch-failure contract: a
// request carrying an invalid example coalesced with healthy requests
// must fail alone — the healthy requests still get their (identical)
// results.
func TestCoalescerBadExampleIsolated(t *testing.T) {
	reg := NewRegistry()
	spec, _ := model.ByName("svm")
	x := make([]float64, 8)
	for i := range x {
		x[i] = 1
	}
	if err := reg.Put("m", spec, core.Snapshot{Workload: core.WorkloadGLM, Spec: "svm", X: x}); err != nil {
		t.Fatal(err)
	}
	coal := NewCoalescer(reg, CoalescerOptions{Window: 100 * time.Millisecond})
	defer coal.Close()

	good := []model.Example{{Idx: []int32{1}, Vals: []float64{2}}}
	bad := []model.Example{{Idx: []int32{99}, Vals: []float64{1}}} // out of dim
	wantGood, err := reg.Predict("m", good)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var goodPreds []float64
	var goodErr, badErr error
	wg.Add(2)
	go func() { defer wg.Done(); goodPreds, goodErr = coal.Predict("m", good) }()
	go func() { defer wg.Done(); _, badErr = coal.Predict("m", bad) }()
	wg.Wait()

	if badErr == nil {
		t.Fatal("invalid example did not error")
	}
	if goodErr != nil {
		t.Fatalf("healthy request failed alongside the bad one: %v", goodErr)
	}
	if len(goodPreds) != 1 || goodPreds[0] != wantGood[0] {
		t.Fatalf("healthy request predictions %v, want %v", goodPreds, wantGood)
	}
}

// TestCoalescerScorerPanicContained pins the batched path's failure
// containment: a panicking scorer must fail its request with an error
// — matching the direct path, where net/http's per-request recover
// keeps the daemon alive — not kill the process or strand waiters.
func TestCoalescerScorerPanicContained(t *testing.T) {
	reg := NewRegistry()
	boom := func(x []float64, examples []model.Example) ([]float64, error) {
		panic("scorer bug")
	}
	if err := reg.PutScored("m", boom, core.Snapshot{X: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	coal := NewCoalescer(reg, CoalescerOptions{Window: 10 * time.Millisecond})
	defer coal.Close()

	ex := []model.Example{{Idx: []int32{0}, Vals: []float64{1}}}
	for i := 0; i < 3; i++ {
		if _, err := coal.Predict("m", ex); err == nil {
			t.Fatal("panicking scorer produced no error")
		}
	}
	if st := coal.Stats(); st.Requests != 3 {
		t.Fatalf("stats %+v after panics, want the coalescer still accounting", st)
	}
}

// TestCoalescerAdmissionControl saturates the pipeline deterministically
// and proves the overflow request is rejected with ErrOverloaded while
// every admitted request completes once the scorer unblocks. Layout:
// one scoring worker (blocked in the scorer), one request gathered by
// the dispatcher (blocked handing off), two in the queue — the sixth
// request finds the queue full.
func TestCoalescerAdmissionControl(t *testing.T) {
	reg := NewRegistry()
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	scorer := func(x []float64, examples []model.Example) ([]float64, error) {
		entered <- struct{}{}
		<-release
		out := make([]float64, len(examples))
		return out, nil
	}
	if err := reg.PutScored("m", scorer, core.Snapshot{Workload: core.WorkloadGLM, Spec: "svm", X: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	coal := NewCoalescer(reg, CoalescerOptions{
		Window:   time.Hour, // irrelevant: MaxBatch 1 flushes immediately
		MaxBatch: 1,
		Queue:    2,
		Workers:  1,
	})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
		coal.Close()
	}()

	ex := []model.Example{{Idx: []int32{0}, Vals: []float64{1}}}
	errs := make(chan error, 8)
	submit := func() {
		_, err := coal.Predict("m", ex)
		errs <- err
	}

	// First request reaches the (single) scoring worker and blocks.
	go submit()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("first request never reached the scorer")
	}
	// Three more, one at a time so each is admitted before the next
	// tries the queue: one gathered by the dispatcher (blocked on
	// hand-off), two queued — the pipeline is full at depth 4.
	for want := int64(2); want <= 4; want++ {
		go submit()
		deadline := time.Now().Add(10 * time.Second)
		for coal.Stats().Depth != want {
			if time.Now().After(deadline) {
				t.Fatalf("pipeline never reached depth %d: stats %+v", want, coal.Stats())
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Admission control: the next request is turned away immediately.
	if _, err := coal.Predict("m", ex); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated coalescer returned %v, want ErrOverloaded", err)
	}
	if st := coal.Stats(); st.Rejected != 1 {
		t.Fatalf("stats %+v, want 1 rejection", st)
	}

	// Unblock the scorer: every admitted request completes cleanly.
	close(release)
	for i := 0; i < 4; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatalf("admitted request %d failed: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("admitted request %d never completed", i)
		}
	}
	if d := coal.Stats().Depth; d != 0 {
		t.Fatalf("queue depth gauge %d after drain, want 0", d)
	}
}

// TestCoalescerCloseFailsPending proves shutdown answers every pending
// request instead of leaking blocked goroutines.
func TestCoalescerCloseFailsPending(t *testing.T) {
	reg := NewRegistry()
	release := make(chan struct{})
	scorer := func(x []float64, examples []model.Example) ([]float64, error) {
		<-release
		return make([]float64, len(examples)), nil
	}
	if err := reg.PutScored("m", scorer, core.Snapshot{X: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	coal := NewCoalescer(reg, CoalescerOptions{MaxBatch: 1, Queue: 8, Workers: 1})

	ex := []model.Example{{Idx: []int32{0}, Vals: []float64{1}}}
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, err := coal.Predict("m", ex)
			errs <- err
		}()
	}
	// Let requests distribute into worker/dispatcher/queue, then shut
	// down with the scorer still blocked; Close must not deadlock and
	// every request must be answered (served after release, or failed).
	time.Sleep(20 * time.Millisecond)
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	coal.Close()
	for i := 0; i < 4; i++ {
		select {
		case err := <-errs:
			if err != nil && !errors.Is(err, errCoalescerClosed) {
				t.Fatalf("pending request got %v, want nil or errCoalescerClosed", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("pending request leaked through Close")
		}
	}
	if _, err := coal.Predict("m", ex); !errors.Is(err, errCoalescerClosed) {
		t.Fatalf("closed coalescer accepted a request: %v", err)
	}
}
