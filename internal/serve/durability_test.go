package serve

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"dimmwitted/internal/ckpt"
	"dimmwitted/internal/core"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

// testStores opens the durability namespaces under a test dir (the
// tune store is unused here; optimizer persistence has its own tests).
func testStores(t *testing.T) (jobs, models *ckpt.Store) {
	t.Helper()
	jobs, models, _, err := OpenStores(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return jobs, models
}

// waitDone blocks until the job terminates.
func waitJobDone(t *testing.T, s *Scheduler, id string) JobStatus {
	t.Helper()
	st, err := s.Wait(id, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCrashResumeBitIdentical is the acceptance-criterion test: a
// dwserve process dies mid-training, a new process starts over the
// same -store directory, resumes the job it has never heard of, and
// the final loss matches an uninterrupted run bit for bit.
//
// The "crash" is staged deterministically: the mid-training checkpoint
// is written exactly as the dying scheduler's checkpoint policy would
// have written it (same engine, same plan, same codec, same metadata),
// at a pinned epoch — timing a real kill cannot pin the epoch, and the
// resume path neither knows nor cares which process wrote the file.
func TestCrashResumeBitIdentical(t *testing.T) {
	const total, crashAt = 8, 3
	jobs, models := testStores(t)
	req := TrainRequest{Model: "svm", Dataset: "reuters", MaxEpochs: total, Seed: 42}

	// Process 1: an uninterrupted reference run through the scheduler.
	s1 := NewScheduler(Options{Machine: numa.Local2, Checkpoints: jobs, Models: models, CheckpointEvery: 1})
	refID, err := s1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	ref := waitJobDone(t, s1, refID)
	if ref.State != "done" || ref.Epoch != total {
		t.Fatalf("reference job: %+v", ref)
	}
	_, refSnap, ok := s1.Models().Get(refID)
	if !ok {
		t.Fatal("reference model not registered")
	}

	// Stage the crash: train the same plan to epoch crashAt and write
	// the checkpoint the dying scheduler would have left behind. The
	// completed reference job's checkpoints were deleted, so the store
	// holds only the "crashed" job.
	wl, _, _, err := buildWorkload(core.WorkloadGLM, req)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewWorkload(wl, refSnap.Plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < crashAt; i++ {
		eng.RunEpoch()
	}
	meta, _ := json.Marshal(req)
	if _, _, err := jobs.Save("job-crashed", eng.Snapshot(), meta); err != nil {
		t.Fatal(err)
	}
	s1.Close()

	// Process 2: a fresh scheduler over the same store resumes the
	// unknown job.
	s2 := NewScheduler(Options{Machine: numa.Local2, Checkpoints: jobs, Models: models, CheckpointEvery: 1})
	defer s2.Close()
	newID, err := s2.Resume("job-crashed")
	if err != nil {
		t.Fatal(err)
	}
	st := waitJobDone(t, s2, newID)
	if st.State != "done" {
		t.Fatalf("resumed job: %+v", st)
	}
	if st.Epoch != total {
		t.Fatalf("resumed job finished at epoch %d, want %d", st.Epoch, total)
	}
	if math.Float64bits(st.Loss) != math.Float64bits(ref.Loss) {
		t.Fatalf("final loss diverged: resumed %v (%016x), uninterrupted %v (%016x)",
			st.Loss, math.Float64bits(st.Loss), ref.Loss, math.Float64bits(ref.Loss))
	}
	if st.Request.WarmStart != "job-crashed" {
		t.Fatalf("resumed request does not record its origin: %+v", st.Request)
	}
	// Completion supersedes both the resumed job's checkpoints and the
	// crashed source job's — crash/resume cycles must not leak
	// generations.
	if _, _, _, err := jobs.Load("job-crashed"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("source job's checkpoints survived completion: %v", err)
	}

	// The resumed model must predict identically to the reference.
	examples := []model.Example{{Idx: []int32{0, 3}, Vals: []float64{1, -0.5}}}
	refPred, err := s2.Models().Predict(refID, examples)
	if err != nil {
		t.Fatal(err)
	}
	gotPred, err := s2.Models().Predict(newID, examples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(refPred[0]) != math.Float64bits(gotPred[0]) {
		t.Fatalf("predictions diverged: %v vs %v", refPred[0], gotPred[0])
	}
}

// TestCancelledJobResumesFromCheckpoint exercises the live checkpoint
// policy end to end: a running job is cancelled (DELETE semantics),
// its periodic checkpoint survives, and Resume continues from at least
// the checkpointed epoch.
func TestCancelledJobResumesFromCheckpoint(t *testing.T) {
	jobs, models := testStores(t)
	s := NewScheduler(Options{Machine: numa.Local2, Checkpoints: jobs, Models: models, CheckpointEvery: 1})
	defer s.Close()

	id, err := s.Submit(TrainRequest{Model: "svm", Dataset: "rcv1", MaxEpochs: 100000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	var epoch int
	for time.Now().Before(deadline) {
		st, _ := s.Status(id)
		if epoch = st.Epoch; epoch >= 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if epoch < 2 {
		t.Fatalf("job never reached epoch 2")
	}
	if err := s.Cancel(id); err != nil {
		t.Fatal(err)
	}
	done, _ := s.Done(id)
	<-done

	snap, _, _, err := jobs.Load(id)
	if err != nil {
		t.Fatalf("cancelled job left no checkpoint: %v", err)
	}
	if snap.Epoch < 1 {
		t.Fatalf("checkpoint at epoch %d", snap.Epoch)
	}

	newID, err := s.Resume(id)
	if err != nil {
		t.Fatal(err)
	}
	// The resumed job continues from the checkpoint, not from zero.
	deadline = time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, _ := s.Status(newID)
		if st.Epoch >= snap.Epoch {
			break
		}
		if st.State == "failed" {
			t.Fatalf("resumed job failed: %s", st.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, _ := s.Status(newID)
	if st.Epoch < snap.Epoch {
		t.Fatalf("resumed job at epoch %d, checkpoint was %d", st.Epoch, snap.Epoch)
	}
	_ = s.Cancel(newID)
}

// TestWarmStartContinuesTraining checks the /v1/train warm_start path:
// k epochs cold plus N−k warm must equal N epochs cold, bit for bit.
func TestWarmStartContinuesTraining(t *testing.T) {
	_, ts := newTestServer(t, Options{Machine: numa.Local2})
	client := ts.Client()

	train := func(req TrainRequest) JobStatus {
		var tr trainResponse
		if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/train", req, &tr); code != http.StatusAccepted {
			t.Fatalf("train: HTTP %d", code)
		}
		var st JobStatus
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			doJSON(t, client, http.MethodGet, ts.URL+"/v1/jobs/"+tr.JobID, nil, &st)
			if st.State == "done" || st.State == "failed" {
				return st
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("job %s stuck in %s", tr.JobID, st.State)
		return st
	}

	full := train(TrainRequest{Model: "lr", Dataset: "reuters", MaxEpochs: 6})
	half := train(TrainRequest{Model: "lr", Dataset: "reuters", MaxEpochs: 3})
	cont := train(TrainRequest{WarmStart: half.ID, MaxEpochs: 6})

	if cont.State != "done" || cont.Epoch != 6 {
		t.Fatalf("warm-started job: %+v", cont)
	}
	if math.Float64bits(cont.Loss) != math.Float64bits(full.Loss) {
		t.Fatalf("warm-started loss %v (%016x) != full-run loss %v (%016x)",
			cont.Loss, math.Float64bits(cont.Loss), full.Loss, math.Float64bits(full.Loss))
	}
}

// TestWarmStartRejectsConflicts pins the request-reconciliation rules.
func TestWarmStartRejectsConflicts(t *testing.T) {
	jobs, models := testStores(t)
	s := NewScheduler(Options{Machine: numa.Local2, Checkpoints: jobs, Models: models})
	defer s.Close()
	id, err := s.Submit(TrainRequest{Model: "svm", Dataset: "reuters", MaxEpochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, s, id)

	cases := []struct {
		name string
		req  TrainRequest
		want string
	}{
		{"unknown reference", TrainRequest{WarmStart: "nope"}, "matches no registered model"},
		{"executor override", TrainRequest{WarmStart: id, Executor: "parallel"}, "cannot be overridden"},
		{"machine override", TrainRequest{WarmStart: id, Machine: "local8"}, "cannot be overridden"},
		{"seed override", TrainRequest{WarmStart: id, Seed: 9}, "cannot be overridden"},
		{"model mismatch", TrainRequest{WarmStart: id, Model: "lr"}, "request says model"},
		{"dataset mismatch", TrainRequest{WarmStart: id, Dataset: "rcv1"}, "request says dataset"},
		{"workload mismatch", TrainRequest{WarmStart: id, Workload: "nn"}, "request says workload"},
	}
	for _, tc := range cases {
		if _, err := s.Submit(tc.req); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	// Matching identity fields are accepted.
	id2, err := s.Submit(TrainRequest{WarmStart: id, Model: "svm", Dataset: "reuters", MaxEpochs: 2})
	if err != nil {
		t.Fatalf("matching identity rejected: %v", err)
	}
	if st := waitJobDone(t, s, id2); st.State != "done" {
		t.Fatalf("warm job: %+v", st)
	}
}

// TestRestartDoesNotReuseStoredJobIDs pins the id-collision fix: a
// restarted scheduler's job counter starts past every id the previous
// process left in the stores, so new jobs can neither overwrite a dead
// process's models nor delete its resumable checkpoints.
func TestRestartDoesNotReuseStoredJobIDs(t *testing.T) {
	jobs, models := testStores(t)
	s1 := NewScheduler(Options{Machine: numa.Local2, Checkpoints: jobs, Models: models, CheckpointEvery: 1})
	id1, err := s1.Submit(TrainRequest{Model: "svm", Dataset: "reuters", MaxEpochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, s1, id1)
	// Leave a "crashed" checkpoint behind under a job-N id as well.
	_, snap, ok := s1.Models().Get(id1)
	if !ok {
		t.Fatal("model missing")
	}
	if _, _, err := jobs.Save("job-7", snap, nil); err != nil {
		t.Fatal(err)
	}
	s1.Close()

	s2 := NewScheduler(Options{Machine: numa.Local2, Checkpoints: jobs, Models: models})
	defer s2.Close()
	id2, err := s2.Submit(TrainRequest{Model: "svm", Dataset: "reuters", MaxEpochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id1 || id2 != "job-8" {
		t.Fatalf("restarted scheduler issued %q (previous process used %q and job-7)", id2, id1)
	}
	waitJobDone(t, s2, id2)
	// The dead process's checkpoint must still be there (the new job's
	// completion deletes only its own id).
	if _, _, _, err := jobs.Load("job-7"); err != nil {
		t.Fatalf("restart lost the crashed job's checkpoint: %v", err)
	}
}

// TestWarmStartRejectsExhaustedBudget pins the no-op fix: a total
// epoch target the snapshot has already reached is an error, not a
// zero-epoch "done" job.
func TestWarmStartRejectsExhaustedBudget(t *testing.T) {
	s := NewScheduler(Options{Machine: numa.Local2})
	defer s.Close()
	id, err := s.Submit(TrainRequest{Model: "svm", Dataset: "reuters", MaxEpochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, s, id)
	for _, budget := range []int{1, 3} {
		if _, err := s.Submit(TrainRequest{WarmStart: id, MaxEpochs: budget}); err == nil ||
			!strings.Contains(err.Error(), "must exceed") {
			t.Errorf("max_epochs %d accepted for an epoch-3 snapshot: %v", budget, err)
		}
	}
	if _, err := s.Submit(TrainRequest{WarmStart: id, MaxEpochs: 4}); err != nil {
		t.Errorf("max_epochs 4 rejected for an epoch-3 snapshot: %v", err)
	}
}

// TestRegistryPersistsAcrossRestart checks the -store model registry:
// a new process serves (and lists) models a previous process trained,
// loading them lazily on first predict.
func TestRegistryPersistsAcrossRestart(t *testing.T) {
	jobs, models := testStores(t)
	examples := []model.Example{{Idx: []int32{1, 2}, Vals: []float64{0.5, 1}}}

	s1 := NewScheduler(Options{Machine: numa.Local2, Checkpoints: jobs, Models: models})
	id, err := s1.Submit(TrainRequest{Model: "svm", Dataset: "reuters", MaxEpochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, s1, id)
	want, err := s1.Models().Predict(id, examples)
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	s2 := NewScheduler(Options{Machine: numa.Local2, Checkpoints: jobs, Models: models})
	defer s2.Close()
	if n := s2.Models().Len(); n != 1 {
		t.Fatalf("restarted registry sees %d models, want 1", n)
	}
	got, err := s2.Models().Predict(id, examples)
	if err != nil {
		t.Fatalf("lazy load on first predict: %v", err)
	}
	if math.Float64bits(got[0]) != math.Float64bits(want[0]) {
		t.Fatalf("restored prediction %v != original %v", got[0], want[0])
	}
	infos := s2.Models().List()
	if len(infos) != 1 || infos[0].ID != id || infos[0].Spec != "svm" {
		t.Fatalf("restarted listing: %+v", infos)
	}
	if s2.Counters().Snapshot().CheckpointRestores == 0 {
		t.Fatal("lazy load did not count a checkpoint restore")
	}
}

// TestListDoesNotPinDiskModels pins the lazy-load contract: listing a
// restarted registry must not cache every store-resident snapshot in
// memory — only a prediction does.
func TestListDoesNotPinDiskModels(t *testing.T) {
	jobs, models := testStores(t)
	s1 := NewScheduler(Options{Machine: numa.Local2, Checkpoints: jobs, Models: models})
	id, err := s1.Submit(TrainRequest{Model: "svm", Dataset: "reuters", MaxEpochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, s1, id)
	s1.Close()

	s2 := NewScheduler(Options{Machine: numa.Local2, Checkpoints: jobs, Models: models})
	defer s2.Close()
	reg := s2.Models()
	if got := reg.List(); len(got) != 1 {
		t.Fatalf("listing: %+v", got)
	}
	if cached := reg.memLen(); cached != 0 {
		t.Fatalf("List cached %d models; loading should wait for the first predict", cached)
	}
	if _, err := reg.Predict(id, []model.Example{{Idx: []int32{0}, Vals: []float64{1}}}); err != nil {
		t.Fatal(err)
	}
	if cached := reg.memLen(); cached != 1 {
		t.Fatalf("predict cached %d models, want 1", cached)
	}
}

// TestRegistryPredictDuringRestoredPut hammers the registry read path
// while restored snapshots are re-registered — the race the -race CI
// run guards: predictions must never fail or tear while a Put swaps
// the entry underneath them.
func TestRegistryPredictDuringRestoredPut(t *testing.T) {
	_, models := testStores(t)
	spec := model.NewSVM()
	snap := core.Snapshot{Workload: core.WorkloadGLM, Spec: "svm", Dataset: "reuters", Epoch: 1, X: make([]float64, 64)}
	for i := range snap.X {
		snap.X[i] = float64(i) * 0.01
	}
	reg := NewRegistry()
	reg.Persist(models, nil)
	reg.Put("m", spec, snap)

	// The restored snapshot a registry Put mid-flight would install.
	restored, _, _, err := models.Load("m")
	if err != nil {
		t.Fatal(err)
	}

	examples := []model.Example{{Idx: []int32{3, 9}, Vals: []float64{1, 2}}}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				if _, err := reg.Predict("m", examples); err != nil {
					t.Errorf("predict during put: %v", err)
					return
				}
			}
		}()
	}
	close(start)
	for i := 0; i < 50; i++ {
		reg.Put("m", spec, restored)
	}
	wg.Wait()
}

// TestResumeEndpointErrors pins the HTTP status codes of the resume
// route.
func TestResumeEndpointErrors(t *testing.T) {
	jobs, models := testStores(t)
	srv, ts := newTestServer(t, Options{Machine: numa.Local2, Checkpoints: jobs, Models: models, CheckpointEvery: 1})
	client := ts.Client()

	var errResp map[string]string
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs/ghost/resume", nil, &errResp); code != http.StatusNotFound {
		t.Fatalf("resume of unknown job: HTTP %d (%v)", code, errResp)
	}

	id, err := srv.Scheduler().Submit(TrainRequest{Model: "svm", Dataset: "rcv1", MaxEpochs: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs/"+id+"/resume", nil, &errResp); code != http.StatusConflict {
		t.Fatalf("resume of active job: HTTP %d (%v)", code, errResp)
	}
	_ = srv.Scheduler().Cancel(id)

	// Without a store the route reports the missing configuration.
	_, ts2 := newTestServer(t, Options{Machine: numa.Local2})
	if code := doJSON(t, ts2.Client(), http.MethodPost, ts2.URL+"/v1/jobs/job-1/resume", nil, &errResp); code != http.StatusBadRequest {
		t.Fatalf("resume without store: HTTP %d (%v)", code, errResp)
	}
	if !strings.Contains(errResp["error"], "-store") {
		t.Fatalf("error does not point at -store: %v", errResp)
	}
}
