// Package serve turns the batch DimmWitted engine into a long-running
// service: a concurrent training-job scheduler, a plan cache that
// amortises the cost-based optimizer across repeated jobs, a model
// registry serving batched predictions from trained snapshots, and a
// stdlib net/http JSON API on top.
//
// The architecture mirrors the paper's separation of statistical and
// hardware efficiency one level up. Each training job is one engine —
// one point in the tradeoff space — and jobs are scheduled onto a
// worker pool sized from the simulated NUMA topology (one training
// slot per socket), so the service exercises many engines concurrently
// the way the engine exercises many cores. The plan cache plays the
// role of the optimizer's install-time benchmark: plans are keyed by
// (model, dataset statistics, topology), so a repeated workload skips
// straight to execution. Trained models leave the engine as immutable
// core.Snapshot values and are served lock-free-read from the
// registry; prediction is the read path, training the write path.
//
// The inference hot path is read-optimized separately from the
// training path: the registry hashes model ids onto lock-striped
// shards whose entries hold immutable, pre-resolved serving models
// (spec + flat weight slice + scorer, built once at publish time)
// published by atomic pointer swap, so Predict is lock-free; lazy
// loads from the durable store are single-flight per id; and an
// optional micro-batching coalescer (Options.BatchWindow) merges
// concurrent /v1/predict requests for one model into one batched
// scorer call behind a bounded admission queue (429 + Retry-After when
// full). Per-route latency histograms (p50/p95/p99) and the queue-
// depth gauge surface in /v1/stats; cmd/dwload drives the whole path
// at a target request rate. See DESIGN.md "The serving path".
//
// The HTTP surface:
//
//	POST   /v1/train            submit a training job     -> {job_id}
//	                            ("warm_start" continues a stored model)
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job state and progress curve
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	POST   /v1/jobs/{id}/resume revive a terminal/crashed job from its
//	                            durable checkpoint        -> {job_id}
//	GET    /v1/models           list trained models
//	POST   /v1/predict          batched predictions from a model
//	                            (coalesced when batching is on)
//	GET    /v1/stats            serving counters, latency percentiles,
//	                            cache, queue and batch stats
//	GET    /v1/jobs/{id}/trace  span journal of a traced job (submit
//	                            with "trace": true); ?format=chrome
//	                            exports Chrome trace_event JSON
//	GET    /metrics             Prometheus text exposition: counters,
//	                            route latency histograms, engine phase
//	                            timers
//
// Peer-mode endpoints, driven by a cluster coordinator (cmd/dwcoord)
// to make this server one node of a PerCluster training run — models
// travel as CRC-validated snapshot-codec payloads, data through the
// ordinary append API:
//
//	POST   /v1/cluster/join          coordinator handshake -> machine,
//	                                 datasets, model count
//	GET    /v1/cluster/replica/{id}  pull a model replica (encoded
//	                                 snapshot)
//	POST   /v1/cluster/replica/{id}  install a snapshot: round seeds
//	                                 for warm_start, final ring models
//	GET    /v1/datasets/{id}/rows    export a row range in the append
//	                                 API's encoding (?start=&count=)
//
// Every request body is capped at Options.MaxBodyBytes (64 MiB by
// default); oversized requests answer 413 with the JSON error
// envelope instead of buffering without bound.
//
// Profiling (net/http/pprof) is deliberately not on this mux: dwserve
// serves DebugHandler on a separate -debug-addr listener so profiles
// never ride the public port.
//
// With Options.Checkpoints/Models (dwserve -store), the scheduler
// checkpoints running jobs between epochs and the registry persists
// across restarts — see DESIGN.md "Durability".
package serve
