package serve

import (
	"sync"
	"time"

	"dimmwitted/internal/metrics"
)

// BatchTunerConfig bounds and paces the AIMD controller that retunes
// the predict coalescer. Zero values take the documented defaults.
type BatchTunerConfig struct {
	// TargetP95 is the predict-route p95 latency goal the controller
	// defends; 0 means 5ms.
	TargetP95 time.Duration
	// MinWindow and MaxWindow clamp the flush window. The window can
	// never tune below MinWindow (0 means 100µs — batching stays on) or
	// above MaxWindow (0 means 10× the coalescer's starting window).
	MinWindow time.Duration
	MaxWindow time.Duration
	// MinBatch and MaxBatch clamp the per-flush example cap; 0 means
	// 16 and 1024.
	MinBatch int
	MaxBatch int
	// Interval paces the control loop; 0 means 1s.
	Interval time.Duration
	// FactorThreshold is the coalescing factor (requests per batched
	// call) above which growing the window pays — below it requests
	// arrive too sparsely for the added wait to merge anything; 0 means
	// 1.05.
	FactorThreshold float64
}

// normalize fills config defaults; startWindow seeds the MaxWindow
// default.
func (c BatchTunerConfig) normalize(startWindow time.Duration) BatchTunerConfig {
	if c.TargetP95 <= 0 {
		c.TargetP95 = 5 * time.Millisecond
	}
	if c.MinWindow <= 0 {
		c.MinWindow = 100 * time.Microsecond
	}
	if c.MaxWindow <= 0 {
		c.MaxWindow = 10 * startWindow
		if c.MaxWindow <= 0 {
			c.MaxWindow = 10 * time.Millisecond
		}
	}
	if c.MaxWindow < c.MinWindow {
		c.MaxWindow = c.MinWindow
	}
	if c.MinBatch <= 0 {
		c.MinBatch = 16
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	if c.MaxBatch < c.MinBatch {
		c.MaxBatch = c.MinBatch
	}
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.FactorThreshold <= 0 {
		c.FactorThreshold = 1.05
	}
	return c
}

// BatchTunerStats is a point-in-time view of the controller for the
// stats endpoint and /metrics.
type BatchTunerStats struct {
	// TargetP95Ms is the latency goal; WindowMs and MaxBatch are the
	// coalescer settings after the latest tick.
	TargetP95Ms float64 `json:"target_p95_ms"`
	WindowMs    float64 `json:"window_ms"`
	MaxBatch    int     `json:"max_batch"`
	// Ticks counts control decisions; Backoffs the multiplicative
	// decreases (p95 over target), Increases the additive increases
	// (coalescing factor justified growth).
	Ticks     int64 `json:"ticks"`
	Backoffs  int64 `json:"backoffs"`
	Increases int64 `json:"increases"`
}

// BatchTuner is the AIMD controller that feeds live p95 latency and
// the achieved coalescing factor back into the coalescer's flush
// window and batch cap: latency over target halves both (multiplicative
// decrease — the window is the latency tax, the cap bounds head-of-line
// blocking inside a flush), while a healthy coalescing factor under
// target grows both additively, so a loaded server drifts toward the
// largest batch the latency budget affords. The decision rule lives in
// TickWith, which is deterministic given its inputs; the background
// loop merely samples the histogram and counters on a ticker.
type BatchTuner struct {
	coal *Coalescer
	cfg  BatchTunerConfig
	hist *metrics.Histogram

	mu           sync.Mutex
	lastRequests int64
	lastBatches  int64
	ticks        int64
	backoffs     int64
	increases    int64

	stop chan struct{}
	done chan struct{}
}

// NewBatchTuner builds a controller over the coalescer; hist is the
// predict route's handler-latency histogram (may be nil — such a tuner
// only ever drifts, it cannot observe latency). Call Start to run the
// loop, or drive TickWith directly.
func NewBatchTuner(coal *Coalescer, hist *metrics.Histogram, cfg BatchTunerConfig) *BatchTuner {
	return &BatchTuner{
		coal: coal,
		cfg:  cfg.normalize(coal.Window()),
		hist: hist,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Config returns the normalized controller configuration.
func (t *BatchTuner) Config() BatchTunerConfig { return t.cfg }

// Start runs the control loop until Stop.
func (t *BatchTuner) Start() {
	go func() {
		defer close(t.done)
		ticker := time.NewTicker(t.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				t.tick()
			case <-t.stop:
				return
			}
		}
	}()
}

// Stop halts the control loop; the coalescer keeps its last settings.
func (t *BatchTuner) Stop() {
	select {
	case <-t.stop:
	default:
		close(t.stop)
	}
	<-t.done
}

// tick samples the live signals and applies one control decision.
func (t *BatchTuner) tick() {
	var p95 time.Duration
	if t.hist != nil {
		p95 = time.Duration(t.hist.Snapshot().P95Ms * float64(time.Millisecond))
	}
	st := t.coal.Stats()
	t.TickWith(p95, st.Requests, st.Batches)
}

// TickWith applies one AIMD decision from the cumulative signals: the
// predict p95, and the coalescer's requests/batches counters (the tuner
// diffs them against the previous tick to get the interval's coalescing
// factor). Exposed for deterministic tests.
func (t *BatchTuner) TickWith(p95 time.Duration, requests, batches int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	dReq := requests - t.lastRequests
	dBat := batches - t.lastBatches
	t.lastRequests, t.lastBatches = requests, batches
	t.ticks++

	window, maxB := t.coal.Window(), t.coal.MaxBatch()
	switch {
	case dReq > 0 && p95 > t.cfg.TargetP95:
		// Multiplicative decrease: the flush window is a direct latency
		// tax on every coalesced request, so over-target p95 halves it
		// (and the cap, which bounds time spent inside one flush).
		window = clampWindow(window/2, t.cfg)
		maxB = clampBatch(maxB/2, t.cfg)
		t.backoffs++
	case dBat > 0 && float64(dReq)/float64(dBat) >= t.cfg.FactorThreshold:
		// Additive increase: requests are actually merging, and latency
		// is within budget — buy more coalescing one step at a time.
		window = clampWindow(window+t.cfg.MinWindow, t.cfg)
		maxB = clampBatch(maxB+t.cfg.MinBatch, t.cfg)
		t.increases++
	case dReq == 0:
		// Idle drift: an unloaded server should not hold a large window
		// that taxes the first request of the next burst.
		window = clampWindow(window-t.cfg.MinWindow, t.cfg)
	}
	t.coal.SetTuning(window, maxB)
}

func clampWindow(w time.Duration, cfg BatchTunerConfig) time.Duration {
	if w < cfg.MinWindow {
		return cfg.MinWindow
	}
	if w > cfg.MaxWindow {
		return cfg.MaxWindow
	}
	return w
}

func clampBatch(b int, cfg BatchTunerConfig) int {
	if b < cfg.MinBatch {
		return cfg.MinBatch
	}
	if b > cfg.MaxBatch {
		return cfg.MaxBatch
	}
	return b
}

// Stats returns controller statistics and the coalescer's current
// settings.
func (t *BatchTuner) Stats() BatchTunerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return BatchTunerStats{
		TargetP95Ms: float64(t.cfg.TargetP95) / float64(time.Millisecond),
		WindowMs:    float64(t.coal.Window()) / float64(time.Millisecond),
		MaxBatch:    t.coal.MaxBatch(),
		Ticks:       t.ticks,
		Backoffs:    t.backoffs,
		Increases:   t.increases,
	}
}
