package serve

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"dimmwitted/internal/core"
	"dimmwitted/internal/data"
)

// Peer-mode endpoints: the handful of routes a cluster coordinator
// (internal/cluster, cmd/dwcoord) drives on each dwserve peer. The
// wire format for models is the snapshot codec (CRC-validated on
// receipt); the transfer path for data is the same append API clients
// use, so a peer needs nothing cluster-specific to hold a shard.

// clusterMembership records the coordinator this server answers to,
// set by the coordinator's join handshake and surfaced in /v1/stats.
type clusterMembership struct {
	mu          sync.Mutex
	cluster     string
	coordinator string
	joined      time.Time
}

// ClusterStatus is the membership view in statsResponse.
type ClusterStatus struct {
	Cluster     string `json:"cluster"`
	Coordinator string `json:"coordinator"`
	JoinedAt    string `json:"joined_at"`
}

func (m *clusterMembership) status() *ClusterStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cluster == "" {
		return nil
	}
	return &ClusterStatus{
		Cluster:     m.cluster,
		Coordinator: m.coordinator,
		JoinedAt:    m.joined.UTC().Format(time.RFC3339),
	}
}

// joinRequest is the coordinator's handshake: it names the cluster and
// its own callback address so the peer can report who owns it.
type joinRequest struct {
	Cluster     string `json:"cluster"`
	Coordinator string `json:"coordinator"`
}

// joinResponse tells the coordinator what the peer can do.
type joinResponse struct {
	Machine  string   `json:"machine"`
	Datasets []string `json:"datasets"`
	Models   int      `json:"models"`
}

func (s *Server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if !s.decodeJSON(w, r, &req, "join") {
		return
	}
	if req.Cluster == "" {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("join request names no cluster"))
		return
	}
	s.cluster.mu.Lock()
	s.cluster.cluster = req.Cluster
	s.cluster.coordinator = req.Coordinator
	s.cluster.joined = time.Now()
	s.cluster.mu.Unlock()
	s.writeJSON(w, http.StatusOK, joinResponse{
		Machine:  s.sched.opts.Machine.Name,
		Datasets: data.Names(),
		Models:   s.sched.Models().Len(),
	})
}

// handleReplicaGet ships a registered model replica to the caller as
// an encoded snapshot — the coordinator's pull side of the combine.
func (s *Server) handleReplicaGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	_, snap, ok := s.sched.Models().Get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown model %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(core.EncodeSnapshot(snap))
}

// replicaPutResponse acknowledges an installed snapshot.
type replicaPutResponse struct {
	Model string  `json:"model"`
	Epoch int     `json:"epoch"`
	Loss  float64 `json:"loss"`
}

// handleReplicaPut installs an encoded snapshot under {id}: the
// coordinator's push side, used both to seed the next training round
// (warm_start then resumes from it) and to place the final combined
// model on its ring owners for serving. The codec's CRC rejects a
// corrupted transfer before anything reaches the registry.
func (s *Server) handleReplicaPut(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, err := io.ReadAll(r.Body)
	if err != nil {
		if tooBig, ok := err.(*http.MaxBytesError); ok {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("replica body exceeds the %d-byte limit (raise -max-body-bytes)", tooBig.Limit))
			return
		}
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("replica body: %w", err))
		return
	}
	snap, err := core.DecodeSnapshot(body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.sched.Models().PutSnapshot(id, snap); err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, replicaPutResponse{Model: id, Epoch: snap.Epoch, Loss: snap.Loss})
}

// rowJSON is one exported row, in the append API's encoding so a
// caller can feed it straight back into POST /v1/datasets/{id}/append.
type rowJSON struct {
	Indices []int32   `json:"indices,omitempty"`
	Values  []float64 `json:"values,omitempty"`
	Label   float64   `json:"label"`
}

// rowsResponse is one page of a dataset export.
type rowsResponse struct {
	Dataset string    `json:"dataset"`
	Task    string    `json:"task"`
	Cols    int       `json:"cols"`
	Start   int       `json:"start"`
	Total   int       `json:"total"`
	Rows    []rowJSON `json:"rows"`
}

// handleRows exports a row range of a named dataset — the shard-pull
// side of the wire protocol, letting a coordinator (or a recovering
// peer) fetch data it does not hold locally. Rows come out sparse
// regardless of storage; the append path accepts that encoding for
// every task.
func (s *Server) handleRows(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ds, err := data.ByName(id)
	if err != nil {
		s.writeError(w, http.StatusNotFound, err)
		return
	}
	start, count := 0, ds.Rows()
	if v := r.URL.Query().Get("start"); v != "" {
		if start, err = strconv.Atoi(v); err != nil || start < 0 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad start %q", v))
			return
		}
	}
	if v := r.URL.Query().Get("count"); v != "" {
		if count, err = strconv.Atoi(v); err != nil || count < 0 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad count %q", v))
			return
		}
	}
	if start > ds.Rows() {
		start = ds.Rows()
	}
	end := start + count
	if end > ds.Rows() {
		end = ds.Rows()
	}
	rows := make([]rowJSON, 0, end-start)
	for i := start; i < end; i++ {
		idx, vals := ds.A.Row(i)
		rj := rowJSON{
			Indices: append([]int32(nil), idx...),
			Values:  append([]float64(nil), vals...),
		}
		if ds.Labels != nil {
			rj.Label = ds.Labels[i]
		}
		rows = append(rows, rj)
	}
	s.writeJSON(w, http.StatusOK, rowsResponse{
		Dataset: id,
		Task:    ds.Task.String(),
		Cols:    ds.Cols(),
		Start:   start,
		Total:   ds.Rows(),
		Rows:    rows,
	})
}
