package serve

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dimmwitted/internal/ckpt"
	"dimmwitted/internal/core"
	"dimmwitted/internal/metrics"
	"dimmwitted/internal/model"
	"dimmwitted/internal/nn"
)

// ErrUnknownModel reports a registry miss; match it with errors.Is.
var ErrUnknownModel = errors.New("serve: unknown model")

// regShards is the number of lock-striped registry shards. A power of
// two so the hash masks instead of dividing; 32 keeps the write-side
// stripes far wider than the scheduler's worker pool ever publishes
// from, and the read side never touches a shard lock at all.
const regShards = 32

// ModelInfo describes one registered model for listings.
type ModelInfo struct {
	// ID is the registry key (the training job's ID).
	ID string `json:"id"`
	// Workload is the workload family ("glm", "gibbs", "nn").
	Workload string `json:"workload"`
	// Spec and Dataset identify what was trained on what.
	Spec    string `json:"spec"`
	Dataset string `json:"dataset"`
	// Dim is the model dimension (expected example coordinate space).
	Dim int `json:"dim"`
	// Epoch and Loss describe the training state at snapshot time.
	Epoch int     `json:"epoch"`
	Loss  float64 `json:"loss"`
	// SimSeconds is the simulated training time in seconds.
	SimSeconds float64 `json:"sim_seconds"`
	// Plan renders the executed plan.
	Plan string `json:"plan"`
	// Created is when the snapshot entered the registry.
	Created time.Time `json:"created"`
}

// Scorer maps a frozen state vector and a batch of examples to one
// prediction per example: a linear-score mapping for GLM snapshots, a
// network forward pass for NN parameters, a marginal lookup for Gibbs
// estimates. Scorers must be safe for concurrent use and read-only
// with respect to x.
type Scorer func(x []float64, examples []model.Example) ([]float64, error)

// servingModel is the read-optimized, fully pre-resolved form of one
// registered model: the spec, the scorer, and the flat weight slice are
// resolved once — at Put or lazy-load time — and the whole value is
// immutable afterwards. Predictions read it through one atomic pointer
// load, so a republish can never be observed torn: a reader sees the
// old (spec, scorer, weights) triple or the new one, never a mix.
type servingModel struct {
	// spec is the GLM model specification; nil for non-GLM snapshots.
	spec model.Spec
	// scorer serves predictions; nil when the snapshot cannot predict.
	scorer Scorer
	// x is the flat weight slice (snap.X), hoisted so the hot path
	// does not chase through the snapshot struct.
	x       []float64
	snap    core.Snapshot
	created time.Time
}

// regEntry is one registry slot: an atomic pointer the publish path
// swaps and the predict path loads lock-free.
type regEntry struct {
	p atomic.Pointer[servingModel]
}

// regShard is one lock stripe. Readers follow m (an immutable
// copy-on-write map) without any lock; writers serialise on mu and
// either swap an existing entry's pointer (republish — no map copy) or
// install a copied map with the new entry (first publish of an id).
type regShard struct {
	mu sync.Mutex
	m  atomic.Pointer[map[string]*regEntry]
}

// regFlight is one in-progress lazy store load, shared by every
// request that arrives while the load runs (single-flight).
type regFlight struct {
	done chan struct{}
	sm   *servingModel
	err  error
}

// Registry holds trained model snapshots and serves predictions from
// them. The read path is engineered for throughput: model ids hash
// onto lock-striped shards, each entry holds an immutable, pre-resolved
// servingModel published by atomic pointer swap, and Predict is
// entirely lock-free — two atomic loads and a map probe, no mutex,
// regardless of how many Puts, Lists or lazy loads run concurrently.
//
// With Persist, the registry is additionally backed by a durable
// checkpoint store: every registered snapshot is written through, and
// a miss falls back to the store — so a restarted daemon serves every
// model its predecessor trained, loading each lazily on first use.
// Lazy loads are single-flight per id: a cold popular model is read
// and decoded once, with every concurrent request waiting on the one
// load instead of issuing its own.
type Registry struct {
	shards [regShards]regShard

	// mu guards the cold-path state only: registration order, the
	// durable-store configuration, the disk-listing cache and the
	// in-flight load table. The predict hot path never takes it.
	mu       sync.Mutex
	order    []string
	known    map[string]struct{}
	store    *ckpt.Store
	counters *metrics.ServeCounters
	// infoCache memoises listing rows of disk-resident models by
	// generation, so repeated List calls decode each model file once —
	// the info row is a dozen scalars, not the model vector.
	infoCache map[string]diskInfo
	flights   map[string]*regFlight
}

// diskInfo is one cached listing row for a store-resident model.
type diskInfo struct {
	gen  uint64
	info ModelInfo
}

// NewRegistry returns an empty, memory-only model registry.
func NewRegistry() *Registry {
	r := &Registry{
		known:     map[string]struct{}{},
		infoCache: map[string]diskInfo{},
		flights:   map[string]*regFlight{},
	}
	for i := range r.shards {
		m := map[string]*regEntry{}
		r.shards[i].m.Store(&m)
	}
	return r
}

// shardFor maps an id onto its lock stripe: inline FNV-1a over the id
// bytes — no hasher allocation on the predict hot path.
func (r *Registry) shardFor(id string) *regShard {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return &r.shards[h&(regShards-1)]
}

// peek returns the published serving model for id, or nil. This is the
// whole hot path: one atomic map load, one probe, one entry load.
func (r *Registry) peek(id string) *servingModel {
	e, ok := (*r.shardFor(id).m.Load())[id]
	if !ok {
		return nil
	}
	return e.p.Load()
}

// Persist backs the registry with a durable store: subsequent Puts
// write through (best-effort — a failed disk write keeps the in-memory
// entry and counts a checkpoint error), and misses lazily load from
// disk. counters may be nil.
func (r *Registry) Persist(store *ckpt.Store, counters *metrics.ServeCounters) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.store = store
	r.counters = counters
}

// Put registers a GLM snapshot under the given ID, replacing any
// previous entry with that ID; predictions go through the spec's
// linear-score rule. The returned error reports a failed durable
// write-through only — the in-memory registration always succeeds.
func (r *Registry) Put(id string, spec model.Spec, snap core.Snapshot) error {
	return r.put(id, &servingModel{
		spec: spec,
		scorer: func(x []float64, examples []model.Example) ([]float64, error) {
			return model.PredictBatch(spec, x, examples)
		},
		x:    snap.X,
		snap: snap,
	})
}

// PutScored registers a snapshot with a workload-specific scorer (nil
// for snapshots that cannot serve predictions). Error semantics as Put.
func (r *Registry) PutScored(id string, scorer Scorer, snap core.Snapshot) error {
	return r.put(id, &servingModel{scorer: scorer, x: snap.X, snap: snap})
}

// PutSnapshot registers a decoded wire snapshot, rebuilding the scorer
// from the snapshot's own workload identity — the install path for
// models pushed between cluster peers, where no local job built a
// spec. Error semantics as Put.
func (r *Registry) PutSnapshot(id string, snap core.Snapshot) error {
	spec, scorer := scorerForSnapshot(snap)
	return r.put(id, &servingModel{spec: spec, scorer: scorer, x: snap.X, snap: snap})
}

func (r *Registry) put(id string, sm *servingModel) error {
	r.publish(id, sm)
	r.mu.Lock()
	store, counters := r.store, r.counters
	r.mu.Unlock()
	if store == nil {
		return nil
	}
	if _, n, err := store.Save(id, sm.snap, nil); err != nil {
		if counters != nil {
			counters.CheckpointError()
		}
		return err
	} else if counters != nil {
		counters.CheckpointWrite(n)
	}
	return nil
}

// publish installs sm under id, replacing any current entry: an
// existing entry's pointer is swapped atomically (readers mid-predict
// keep the version they loaded), a new id lands in a copied shard map.
func (r *Registry) publish(id string, sm *servingModel) {
	r.install(id, sm, true)
}

// publishIfAbsent installs sm only if the id has no entry yet and
// returns the published model either way. Lazy loads use it so a disk
// read that raced a concurrent Put cannot clobber the fresher model.
func (r *Registry) publishIfAbsent(id string, sm *servingModel) *servingModel {
	return r.install(id, sm, false)
}

// install is the one publication path: swap an existing entry's
// pointer (or keep it, when overwrite is false) or insert the id into
// a copied shard map.
func (r *Registry) install(id string, sm *servingModel, overwrite bool) *servingModel {
	sm.created = time.Now()
	sh := r.shardFor(id)
	sh.mu.Lock()
	cur := *sh.m.Load()
	if e, ok := cur[id]; ok {
		if !overwrite {
			got := e.p.Load()
			sh.mu.Unlock()
			return got
		}
		e.p.Store(sm)
		sh.mu.Unlock()
	} else {
		next := make(map[string]*regEntry, len(cur)+1)
		for k, v := range cur {
			next[k] = v
		}
		e := &regEntry{}
		e.p.Store(sm)
		next[id] = e
		sh.m.Store(&next)
		sh.mu.Unlock()
	}
	r.recordID(id)
	return sm
}

// recordID tracks first-registration order for List.
func (r *Registry) recordID(id string) {
	r.mu.Lock()
	if _, ok := r.known[id]; !ok {
		r.known[id] = struct{}{}
		r.order = append(r.order, id)
	}
	r.mu.Unlock()
}

// lookup fetches a serving model, falling back to the durable store on
// a miss. Loads are single-flight per id — however many requests hit a
// cold model concurrently, the store is read and the snapshot decoded
// exactly once, and every waiter shares the result. A plain miss wraps
// ErrUnknownModel; a model whose store entry exists but cannot be read
// reports that failure (and counts it) instead of masquerading as
// unknown.
func (r *Registry) lookup(id string) (*servingModel, error) {
	if sm := r.peek(id); sm != nil {
		return sm, nil
	}
	r.mu.Lock()
	store, counters := r.store, r.counters
	if store == nil {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w %q", ErrUnknownModel, id)
	}
	if f, ok := r.flights[id]; ok {
		r.mu.Unlock()
		<-f.done
		return f.sm, f.err
	}
	f := &regFlight{done: make(chan struct{})}
	r.flights[id] = f
	r.mu.Unlock()

	f.sm, f.err = r.loadFromStore(id, store, counters)
	r.mu.Lock()
	delete(r.flights, id)
	r.mu.Unlock()
	close(f.done)
	return f.sm, f.err
}

// loadFromStore performs the one store read behind a flight.
func (r *Registry) loadFromStore(id string, store *ckpt.Store, counters *metrics.ServeCounters) (*servingModel, error) {
	// A Put may have landed between the caller's fast-path miss and the
	// flight registration; prefer it over a disk read.
	if sm := r.peek(id); sm != nil {
		return sm, nil
	}
	snap, _, _, err := store.Load(id)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w %q", ErrUnknownModel, id)
		}
		if counters != nil {
			counters.CheckpointError()
		}
		return nil, fmt.Errorf("serve: stored model %q is unreadable: %w", id, err)
	}
	spec, scorer := scorerForSnapshot(snap)
	sm := r.publishIfAbsent(id, &servingModel{spec: spec, scorer: scorer, x: snap.X, snap: snap})
	if counters != nil {
		counters.CheckpointRestore()
	}
	return sm, nil
}

// scorerForSnapshot rebuilds the workload-appropriate prediction path
// for a snapshot loaded from disk: the GLM linear-score rule, the NN
// forward pass (architecture recovered from the registered dataset),
// or the Gibbs marginal lookup. An unknown spec or dataset degrades to
// a nil scorer — the model lists but cannot predict.
func scorerForSnapshot(snap core.Snapshot) (model.Spec, Scorer) {
	switch snap.Workload {
	case core.WorkloadGLM:
		spec, err := model.ByName(snap.Spec)
		if err != nil {
			return nil, nil
		}
		return spec, func(x []float64, examples []model.Example) ([]float64, error) {
			return model.PredictBatch(spec, x, examples)
		}
	case core.WorkloadNN:
		_, sizes, err := nn.DatasetByName(snap.Dataset)
		if err != nil {
			return nil, nil
		}
		return nil, func(x []float64, examples []model.Example) ([]float64, error) {
			return nn.PredictBatch(sizes, x, examples)
		}
	case core.WorkloadGibbs:
		return nil, marginalScorer
	default:
		return nil, nil
	}
}

// Get returns the spec and snapshot registered under id, consulting
// the durable store on a miss. The snapshot's model vector is shared —
// callers must treat it as read-only. The spec is nil for non-GLM
// snapshots.
func (r *Registry) Get(id string) (model.Spec, core.Snapshot, bool) {
	sm, err := r.lookup(id)
	if err != nil {
		return nil, core.Snapshot{}, false
	}
	return sm.spec, sm.snap, true
}

// Fetch is Get distinguishing its failure modes: a plain miss wraps
// ErrUnknownModel, while an unreadable store entry surfaces the read
// error — warm-start resolution reports corruption as corruption.
func (r *Registry) Fetch(id string) (model.Spec, core.Snapshot, error) {
	sm, err := r.lookup(id)
	if err != nil {
		return nil, core.Snapshot{}, err
	}
	return sm.spec, sm.snap, nil
}

// Predict scores a batch of examples against the model registered
// under id, lazily loading it from the durable store if this process
// has not served it yet. For a resident model the call is lock-free:
// the serving model — spec, scorer and flat weight slice resolved at
// publish time — is read through one atomic pointer and scored as an
// immutable unit.
func (r *Registry) Predict(id string, examples []model.Example) ([]float64, error) {
	sm, err := r.resolve(id)
	if err != nil {
		return nil, err
	}
	return sm.scorer(sm.x, examples)
}

// resolve is the shared resolution step of the direct and batched
// predict paths: lookup plus the can-this-model-predict check, so the
// two paths cannot drift apart in guard logic or error text.
func (r *Registry) resolve(id string) (*servingModel, error) {
	sm, err := r.lookup(id)
	if err != nil {
		return nil, err
	}
	if sm.scorer == nil {
		return nil, fmt.Errorf("serve: model %q (%s) does not support prediction", id, sm.snap.Spec)
	}
	return sm, nil
}

// List returns info for every registered model — including store-
// resident models not yet loaded by this process — in registration
// order (disk-only models follow, in id order). Disk-only entries are
// decoded for the listing but not cached: the memory cost of a model
// stays deferred to its first prediction, as the lazy-load contract
// promises. Corrupt store entries are skipped rather than failing the
// list.
func (r *Registry) List() []ModelInfo {
	r.mu.Lock()
	store := r.store
	ids := append([]string(nil), r.order...)
	r.mu.Unlock()
	out := make([]ModelInfo, 0, len(ids))
	for _, id := range ids {
		if sm := r.peek(id); sm != nil {
			out = append(out, infoFor(id, sm.snap, sm.created))
		}
	}
	if store == nil {
		return out
	}
	entries, err := store.List()
	if err != nil {
		return out
	}
	for _, ent := range entries {
		if r.peek(ent.ID) != nil {
			continue
		}
		r.mu.Lock()
		di, haveInfo := r.infoCache[ent.ID]
		r.mu.Unlock()
		if haveInfo && di.gen == ent.Generation {
			out = append(out, di.info)
			continue
		}
		snap, _, gen, err := store.Load(ent.ID)
		if err != nil {
			continue
		}
		info := infoFor(ent.ID, snap, ent.Modified)
		r.mu.Lock()
		r.infoCache[ent.ID] = diskInfo{gen: gen, info: info}
		r.mu.Unlock()
		out = append(out, info)
	}
	return out
}

// infoFor shapes one snapshot into its listing row.
func infoFor(id string, snap core.Snapshot, created time.Time) ModelInfo {
	return ModelInfo{
		ID:         id,
		Workload:   snap.Workload.String(),
		Spec:       snap.Spec,
		Dataset:    snap.Dataset,
		Dim:        len(snap.X),
		Epoch:      snap.Epoch,
		Loss:       snap.Loss,
		SimSeconds: snap.SimTime.Seconds(),
		Plan:       snap.Plan.String(),
		Created:    created,
	}
}

// memLen returns the number of models resident in memory.
func (r *Registry) memLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.known)
}

// diskOnlyIDs lists store ids not yet cached in memory.
func (r *Registry) diskOnlyIDs() []string {
	r.mu.Lock()
	store := r.store
	r.mu.Unlock()
	if store == nil {
		return nil
	}
	ids, err := store.IDs()
	if err != nil {
		return nil
	}
	var out []string
	for _, id := range ids {
		if r.peek(id) == nil {
			out = append(out, id)
		}
	}
	return out
}

// Len returns the number of registered models, counting store-resident
// models this process has not loaded yet.
func (r *Registry) Len() int {
	return r.memLen() + len(r.diskOnlyIDs())
}
