package serve

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"dimmwitted/internal/ckpt"
	"dimmwitted/internal/core"
	"dimmwitted/internal/metrics"
	"dimmwitted/internal/model"
	"dimmwitted/internal/nn"
)

// ErrUnknownModel reports a registry miss; match it with errors.Is.
var ErrUnknownModel = errors.New("serve: unknown model")

// ModelInfo describes one registered model for listings.
type ModelInfo struct {
	// ID is the registry key (the training job's ID).
	ID string `json:"id"`
	// Workload is the workload family ("glm", "gibbs", "nn").
	Workload string `json:"workload"`
	// Spec and Dataset identify what was trained on what.
	Spec    string `json:"spec"`
	Dataset string `json:"dataset"`
	// Dim is the model dimension (expected example coordinate space).
	Dim int `json:"dim"`
	// Epoch and Loss describe the training state at snapshot time.
	Epoch int     `json:"epoch"`
	Loss  float64 `json:"loss"`
	// SimSeconds is the simulated training time in seconds.
	SimSeconds float64 `json:"sim_seconds"`
	// Plan renders the executed plan.
	Plan string `json:"plan"`
	// Created is when the snapshot entered the registry.
	Created time.Time `json:"created"`
}

// Scorer maps a frozen state vector and a batch of examples to one
// prediction per example: a linear-score mapping for GLM snapshots, a
// network forward pass for NN parameters, a marginal lookup for Gibbs
// estimates. Scorers must be safe for concurrent use and read-only
// with respect to x.
type Scorer func(x []float64, examples []model.Example) ([]float64, error)

// Registry holds trained model snapshots and serves predictions from
// them. Snapshots are immutable once registered, so the read path
// (Predict) only holds the lock long enough to fetch the entry; the
// actual scoring runs unlocked and concurrently.
//
// With Persist, the registry is additionally backed by a durable
// checkpoint store: every registered snapshot is written through, and
// a miss falls back to the store — so a restarted daemon serves every
// model its predecessor trained, loading each lazily on first use.
type Registry struct {
	mu     sync.RWMutex
	models map[string]*regEntry
	order  []string

	store    *ckpt.Store
	counters *metrics.ServeCounters
	// infoCache memoises listing rows of disk-resident models by
	// generation, so repeated List calls decode each model file once —
	// the info row is a dozen scalars, not the model vector.
	infoCache map[string]diskInfo
}

// diskInfo is one cached listing row for a store-resident model.
type diskInfo struct {
	gen  uint64
	info ModelInfo
}

type regEntry struct {
	spec    model.Spec
	scorer  Scorer
	snap    core.Snapshot
	created time.Time
}

// NewRegistry returns an empty, memory-only model registry.
func NewRegistry() *Registry {
	return &Registry{models: map[string]*regEntry{}, infoCache: map[string]diskInfo{}}
}

// Persist backs the registry with a durable store: subsequent Puts
// write through (best-effort — a failed disk write keeps the in-memory
// entry and counts a checkpoint error), and misses lazily load from
// disk. counters may be nil.
func (r *Registry) Persist(store *ckpt.Store, counters *metrics.ServeCounters) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.store = store
	r.counters = counters
}

// Put registers a GLM snapshot under the given ID, replacing any
// previous entry with that ID; predictions go through the spec's
// linear-score rule. The returned error reports a failed durable
// write-through only — the in-memory registration always succeeds.
func (r *Registry) Put(id string, spec model.Spec, snap core.Snapshot) error {
	return r.put(id, &regEntry{
		spec: spec,
		scorer: func(x []float64, examples []model.Example) ([]float64, error) {
			return model.PredictBatch(spec, x, examples)
		},
		snap: snap,
	})
}

// PutScored registers a snapshot with a workload-specific scorer (nil
// for snapshots that cannot serve predictions). Error semantics as Put.
func (r *Registry) PutScored(id string, scorer Scorer, snap core.Snapshot) error {
	return r.put(id, &regEntry{scorer: scorer, snap: snap})
}

func (r *Registry) put(id string, e *regEntry) error {
	r.insert(id, e)
	r.mu.RLock()
	store, counters := r.store, r.counters
	r.mu.RUnlock()
	if store == nil {
		return nil
	}
	if _, n, err := store.Save(id, e.snap, nil); err != nil {
		if counters != nil {
			counters.CheckpointError()
		}
		return err
	} else if counters != nil {
		counters.CheckpointWrite(n)
	}
	return nil
}

// insert adds an entry to the in-memory table only.
func (r *Registry) insert(id string, e *regEntry) {
	e.created = time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.models[id]; !exists {
		r.order = append(r.order, id)
	}
	r.models[id] = e
}

// lookup fetches an entry, falling back to the durable store on a
// miss. Loaded entries are cached, so the disk is read once per model
// per process lifetime. A plain miss wraps ErrUnknownModel; a model
// whose store entry exists but cannot be read reports that failure
// (and counts it) instead of masquerading as unknown.
func (r *Registry) lookup(id string) (*regEntry, error) {
	r.mu.RLock()
	e, ok := r.models[id]
	store, counters := r.store, r.counters
	r.mu.RUnlock()
	if ok {
		return e, nil
	}
	if store == nil {
		return nil, fmt.Errorf("%w %q", ErrUnknownModel, id)
	}
	snap, _, _, err := store.Load(id)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w %q", ErrUnknownModel, id)
		}
		if counters != nil {
			counters.CheckpointError()
		}
		return nil, fmt.Errorf("serve: stored model %q is unreadable: %w", id, err)
	}
	spec, scorer := scorerForSnapshot(snap)
	e = &regEntry{spec: spec, scorer: scorer, snap: snap}
	r.insert(id, e)
	if counters != nil {
		counters.CheckpointRestore()
	}
	return e, nil
}

// scorerForSnapshot rebuilds the workload-appropriate prediction path
// for a snapshot loaded from disk: the GLM linear-score rule, the NN
// forward pass (architecture recovered from the registered dataset),
// or the Gibbs marginal lookup. An unknown spec or dataset degrades to
// a nil scorer — the model lists but cannot predict.
func scorerForSnapshot(snap core.Snapshot) (model.Spec, Scorer) {
	switch snap.Workload {
	case core.WorkloadGLM:
		spec, err := model.ByName(snap.Spec)
		if err != nil {
			return nil, nil
		}
		return spec, func(x []float64, examples []model.Example) ([]float64, error) {
			return model.PredictBatch(spec, x, examples)
		}
	case core.WorkloadNN:
		_, sizes, err := nn.DatasetByName(snap.Dataset)
		if err != nil {
			return nil, nil
		}
		return nil, func(x []float64, examples []model.Example) ([]float64, error) {
			return nn.PredictBatch(sizes, x, examples)
		}
	case core.WorkloadGibbs:
		return nil, marginalScorer
	default:
		return nil, nil
	}
}

// Get returns the spec and snapshot registered under id, consulting
// the durable store on a miss. The snapshot's model vector is shared —
// callers must treat it as read-only. The spec is nil for non-GLM
// snapshots.
func (r *Registry) Get(id string) (model.Spec, core.Snapshot, bool) {
	e, err := r.lookup(id)
	if err != nil {
		return nil, core.Snapshot{}, false
	}
	return e.spec, e.snap, true
}

// Fetch is Get distinguishing its failure modes: a plain miss wraps
// ErrUnknownModel, while an unreadable store entry surfaces the read
// error — warm-start resolution reports corruption as corruption.
func (r *Registry) Fetch(id string) (model.Spec, core.Snapshot, error) {
	e, err := r.lookup(id)
	if err != nil {
		return nil, core.Snapshot{}, err
	}
	return e.spec, e.snap, nil
}

// Predict scores a batch of examples against the model registered
// under id, lazily loading it from the durable store if this process
// has not served it yet.
func (r *Registry) Predict(id string, examples []model.Example) ([]float64, error) {
	e, err := r.lookup(id)
	if err != nil {
		return nil, err
	}
	if e.scorer == nil {
		return nil, fmt.Errorf("serve: model %q (%s) does not support prediction", id, e.snap.Spec)
	}
	return e.scorer(e.snap.X, examples)
}

// List returns info for every registered model — including store-
// resident models not yet loaded by this process — in registration
// order (disk-only models follow, in id order). Disk-only entries are
// decoded for the listing but not cached: the memory cost of a model
// stays deferred to its first prediction, as the lazy-load contract
// promises. Corrupt store entries are skipped rather than failing the
// list.
func (r *Registry) List() []ModelInfo {
	r.mu.RLock()
	store := r.store
	out := make([]ModelInfo, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, infoFor(id, r.models[id].snap, r.models[id].created))
	}
	r.mu.RUnlock()
	if store == nil {
		return out
	}
	entries, err := store.List()
	if err != nil {
		return out
	}
	for _, ent := range entries {
		r.mu.RLock()
		_, inMem := r.models[ent.ID]
		di, haveInfo := r.infoCache[ent.ID]
		r.mu.RUnlock()
		if inMem {
			continue
		}
		if haveInfo && di.gen == ent.Generation {
			out = append(out, di.info)
			continue
		}
		snap, _, gen, err := store.Load(ent.ID)
		if err != nil {
			continue
		}
		info := infoFor(ent.ID, snap, ent.Modified)
		r.mu.Lock()
		r.infoCache[ent.ID] = diskInfo{gen: gen, info: info}
		r.mu.Unlock()
		out = append(out, info)
	}
	return out
}

// infoFor shapes one snapshot into its listing row.
func infoFor(id string, snap core.Snapshot, created time.Time) ModelInfo {
	return ModelInfo{
		ID:         id,
		Workload:   snap.Workload.String(),
		Spec:       snap.Spec,
		Dataset:    snap.Dataset,
		Dim:        len(snap.X),
		Epoch:      snap.Epoch,
		Loss:       snap.Loss,
		SimSeconds: snap.SimTime.Seconds(),
		Plan:       snap.Plan.String(),
		Created:    created,
	}
}

// diskOnlyIDs lists store ids not yet cached in memory.
func (r *Registry) diskOnlyIDs() []string {
	r.mu.RLock()
	store := r.store
	r.mu.RUnlock()
	if store == nil {
		return nil
	}
	ids, err := store.IDs()
	if err != nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for _, id := range ids {
		if _, ok := r.models[id]; !ok {
			out = append(out, id)
		}
	}
	return out
}

// Len returns the number of registered models, counting store-resident
// models this process has not loaded yet.
func (r *Registry) Len() int {
	disk := len(r.diskOnlyIDs())
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models) + disk
}
