package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dimmwitted/internal/core"
	"dimmwitted/internal/model"
)

// ErrUnknownModel reports a registry miss; match it with errors.Is.
var ErrUnknownModel = errors.New("serve: unknown model")

// ModelInfo describes one registered model for listings.
type ModelInfo struct {
	// ID is the registry key (the training job's ID).
	ID string `json:"id"`
	// Workload is the workload family ("glm", "gibbs", "nn").
	Workload string `json:"workload"`
	// Spec and Dataset identify what was trained on what.
	Spec    string `json:"spec"`
	Dataset string `json:"dataset"`
	// Dim is the model dimension (expected example coordinate space).
	Dim int `json:"dim"`
	// Epoch and Loss describe the training state at snapshot time.
	Epoch int     `json:"epoch"`
	Loss  float64 `json:"loss"`
	// SimSeconds is the simulated training time in seconds.
	SimSeconds float64 `json:"sim_seconds"`
	// Plan renders the executed plan.
	Plan string `json:"plan"`
	// Created is when the snapshot entered the registry.
	Created time.Time `json:"created"`
}

// Scorer maps a frozen state vector and a batch of examples to one
// prediction per example: a linear-score mapping for GLM snapshots, a
// network forward pass for NN parameters, a marginal lookup for Gibbs
// estimates. Scorers must be safe for concurrent use and read-only
// with respect to x.
type Scorer func(x []float64, examples []model.Example) ([]float64, error)

// Registry holds trained model snapshots and serves predictions from
// them. Snapshots are immutable once registered, so the read path
// (Predict) only holds the lock long enough to fetch the entry; the
// actual scoring runs unlocked and concurrently.
type Registry struct {
	mu     sync.RWMutex
	models map[string]*regEntry
	order  []string
}

type regEntry struct {
	spec    model.Spec
	scorer  Scorer
	snap    core.Snapshot
	created time.Time
}

// NewRegistry returns an empty model registry.
func NewRegistry() *Registry {
	return &Registry{models: map[string]*regEntry{}}
}

// Put registers a GLM snapshot under the given ID, replacing any
// previous entry with that ID; predictions go through the spec's
// linear-score rule.
func (r *Registry) Put(id string, spec model.Spec, snap core.Snapshot) {
	r.put(id, &regEntry{
		spec: spec,
		scorer: func(x []float64, examples []model.Example) ([]float64, error) {
			return model.PredictBatch(spec, x, examples)
		},
		snap: snap,
	})
}

// PutScored registers a snapshot with a workload-specific scorer (nil
// for snapshots that cannot serve predictions).
func (r *Registry) PutScored(id string, scorer Scorer, snap core.Snapshot) {
	r.put(id, &regEntry{scorer: scorer, snap: snap})
}

func (r *Registry) put(id string, e *regEntry) {
	e.created = time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.models[id]; !exists {
		r.order = append(r.order, id)
	}
	r.models[id] = e
}

// Get returns the spec and snapshot registered under id. The snapshot's
// model vector is shared — callers must treat it as read-only. The spec
// is nil for non-GLM snapshots.
func (r *Registry) Get(id string) (model.Spec, core.Snapshot, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.models[id]
	if !ok {
		return nil, core.Snapshot{}, false
	}
	return e.spec, e.snap, true
}

// Predict scores a batch of examples against the model registered
// under id.
func (r *Registry) Predict(id string, examples []model.Example) ([]float64, error) {
	r.mu.RLock()
	e, ok := r.models[id]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownModel, id)
	}
	if e.scorer == nil {
		return nil, fmt.Errorf("serve: model %q (%s) does not support prediction", id, e.snap.Spec)
	}
	return e.scorer(e.snap.X, examples)
}

// List returns info for every registered model in registration order.
func (r *Registry) List() []ModelInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ModelInfo, 0, len(r.order))
	for _, id := range r.order {
		e := r.models[id]
		out = append(out, ModelInfo{
			ID:         id,
			Workload:   e.snap.Workload.String(),
			Spec:       e.snap.Spec,
			Dataset:    e.snap.Dataset,
			Dim:        len(e.snap.X),
			Epoch:      e.snap.Epoch,
			Loss:       e.snap.Loss,
			SimSeconds: e.snap.SimTime.Seconds(),
			Plan:       e.snap.Plan.String(),
			Created:    e.created,
		})
	}
	return out
}

// Len returns the number of registered models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models)
}
