package serve

import (
	"testing"

	"dimmwitted/internal/core"
	"dimmwitted/internal/data"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

func TestPlanCacheHitMiss(t *testing.T) {
	c := NewPlanCache()
	spec := model.NewSVM()
	ds, err := data.ByName("reuters")
	if err != nil {
		t.Fatal(err)
	}
	key := KeyFor(spec, ds, numa.Local2, core.ExecSimulated)

	if _, ok := c.Lookup(key); ok {
		t.Fatal("empty cache reported a hit")
	}
	plan, err := core.Choose(spec, ds, numa.Local2)
	if err != nil {
		t.Fatal(err)
	}
	c.Store(key, plan)

	got, ok := c.Lookup(key)
	if !ok {
		t.Fatal("stored plan not found")
	}
	if got.String() != plan.String() {
		t.Errorf("cached plan %s, want %s", got, plan)
	}

	// A different dataset (different statistics) must miss.
	other, err := data.ByName("rcv1")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup(KeyFor(spec, other, numa.Local2, core.ExecSimulated)); ok {
		t.Error("different dataset hit the cache")
	}
	// A different topology must miss too.
	if _, ok := c.Lookup(KeyFor(spec, ds, numa.Local8, core.ExecSimulated)); ok {
		t.Error("different machine hit the cache")
	}
	// A different executor must miss: parallel restricts the plan
	// space the optimizer prices.
	if _, ok := c.Lookup(KeyFor(spec, ds, numa.Local2, core.ExecParallel)); ok {
		t.Error("different executor hit the cache")
	}

	st := c.Stats()
	if st.Size != 1 || st.Hits != 1 || st.Misses != 4 {
		t.Errorf("stats = %+v, want size 1, hits 1, misses 4", st)
	}
}

func TestSchedulerUsesPlanCache(t *testing.T) {
	s := newTestScheduler(t, Options{})
	req := TrainRequest{Model: "svm", Dataset: "reuters", MaxEpochs: 2}

	id1, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(id1, waitTimeout); err != nil {
		t.Fatal(err)
	}
	after1 := s.Plans().Stats()
	if after1.Misses != 1 || after1.Hits != 0 || after1.Size != 1 {
		t.Fatalf("after first job: %+v, want 1 miss, 0 hits", after1)
	}

	// The identical job must skip the optimizer.
	id2, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Wait(id2, waitTimeout)
	if err != nil {
		t.Fatal(err)
	}
	after2 := s.Plans().Stats()
	if after2.Hits != 1 || after2.Misses != 1 {
		t.Fatalf("after repeat job: %+v, want 1 hit, 1 miss", after2)
	}
	if st.State != "done" {
		t.Fatalf("repeat job state %s", st.State)
	}

	// Forced-access jobs bypass the cache entirely.
	id3, err := s.Submit(TrainRequest{Model: "svm", Dataset: "reuters", Access: "row", MaxEpochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(id3, waitTimeout); err != nil {
		t.Fatal(err)
	}
	after3 := s.Plans().Stats()
	if after3 != after2 {
		t.Errorf("forced-access job touched the plan cache: %+v -> %+v", after2, after3)
	}

	// Counters mirror the cache.
	snap := s.Counters().Snapshot()
	if snap.PlanCacheHits != 1 || snap.PlanCacheMisses != 1 {
		t.Errorf("counters report %d hits / %d misses, want 1 / 1",
			snap.PlanCacheHits, snap.PlanCacheMisses)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	spec := model.NewSVM()
	ds, err := data.ByName("reuters")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.Choose(spec, ds, numa.Local2)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(spec, ds, plan)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunEpochs(3)
	snap := eng.Snapshot()
	if snap.Spec != "svm" || snap.Dataset != "reuters" || snap.Epoch != 3 {
		t.Fatalf("snapshot metadata %+v", snap)
	}
	if snap.SimTime <= 0 || snap.SimTime != eng.SimTime() {
		t.Errorf("snapshot sim time %v, engine %v", snap.SimTime, eng.SimTime())
	}

	// The snapshot must be isolated from further training.
	before := append([]float64(nil), snap.X...)
	eng.RunEpochs(2)
	for i := range before {
		if before[i] != snap.X[i] {
			t.Fatal("snapshot mutated by continued training")
		}
	}

	// Restoring into a fresh engine reproduces the snapshot's loss.
	eng2, err := core.New(spec, ds, plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got := eng2.Loss(); got != snap.Loss {
		t.Errorf("restored loss %v, snapshot loss %v", got, snap.Loss)
	}
	if eng2.Epoch() != snap.Epoch {
		t.Errorf("restored epoch %d, want %d", eng2.Epoch(), snap.Epoch)
	}
	if eng2.SimTime() != snap.SimTime {
		t.Errorf("restored sim time %v, want %v", eng2.SimTime(), snap.SimTime)
	}
	// The decayed step schedule continues where the snapshot left off.
	if snap.Step >= plan.Normalize(spec).Step {
		t.Errorf("snapshot step %v did not decay from %v", snap.Step, plan.Normalize(spec).Step)
	}
	if got := eng2.Snapshot().Step; got != snap.Step {
		t.Errorf("restored step %v, want %v", got, snap.Step)
	}

	// Mismatched specs and dimensions are rejected.
	engLR, err := core.New(model.NewLR(), ds, plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := engLR.Restore(snap); err == nil {
		t.Error("restore across specs succeeded")
	}
	short := snap
	short.X = snap.X[:10]
	if err := eng2.Restore(short); err == nil {
		t.Error("restore with wrong dimension succeeded")
	}

	// Sanity: predictions can be served straight from the snapshot.
	if _, err := model.PredictBatch(spec, snap.X, model.DatasetExamples(ds, []int{0, 1, 2})); err != nil {
		t.Errorf("predict from snapshot: %v", err)
	}
}
