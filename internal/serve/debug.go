package serve

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler serves net/http/pprof on a mux of its own. The handlers
// are registered explicitly — never on http.DefaultServeMux, and never
// on the public API mux — so profiling is reachable only through the
// separate listener dwserve binds with -debug-addr (typically a
// loopback address).
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
