package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dimmwitted/internal/core"
	"dimmwitted/internal/data"
	"dimmwitted/internal/factor"
	"dimmwitted/internal/model"
	"dimmwitted/internal/nn"
	"dimmwitted/internal/numa"
)

// waitDone submits a request and waits for the job to finish
// successfully.
func waitDone(t *testing.T, s *Scheduler, req TrainRequest) JobStatus {
	t.Helper()
	id, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Wait(id, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("job %s ended %s (error %q)", id, st.State, st.Error)
	}
	return st
}

// Gibbs jobs must train via the scheduler on both executors and
// surface marginals plus marginal summaries in job status.
func TestGibbsJobBothExecutors(t *testing.T) {
	s := NewScheduler(Options{})
	defer s.Close()
	exact, err := factor.ExactMarginals(factor.Cycle5())
	if err != nil {
		t.Fatal(err)
	}
	for _, exec := range []string{"simulated", "parallel"} {
		st := waitDone(t, s, TrainRequest{
			Workload: "gibbs", Dataset: "cycle5", Executor: exec, MaxEpochs: 2000, Seed: 7,
		})
		if st.Workload != "gibbs" {
			t.Errorf("%s: status workload %q", exec, st.Workload)
		}
		if len(st.Marginals) != len(exact) {
			t.Fatalf("%s: %d marginals, want %d", exec, len(st.Marginals), len(exact))
		}
		for v := range exact {
			if math.Abs(st.Marginals[v]-exact[v]) > 0.08 {
				t.Errorf("%s: marginal[%d] = %.3f, exact %.3f", exec, v, st.Marginals[v], exact[v])
			}
		}
		if _, ok := st.Metrics["mean_marginal"]; !ok {
			t.Errorf("%s: metrics missing mean_marginal: %v", exec, st.Metrics)
		}
		if st.Epoch != 2000 {
			t.Errorf("%s: ran %d sweeps, want the full 2000 (no TargetLoss stop)", exec, st.Epoch)
		}
	}
	snap := s.Counters().Snapshot()
	if snap.GibbsSweeps == 0 || snap.GibbsSamples == 0 {
		t.Errorf("gibbs counters not recorded: %+v", snap)
	}
	// The pooled marginals serve index-lookup predictions.
	jobs := s.Jobs()
	id := jobs[len(jobs)-1].ID
	preds, err := s.Models().Predict(id, []model.Example{{Idx: []int32{3}, Vals: []float64{1}}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(preds[0]-exact[3]) > 0.08 {
		t.Errorf("marginal prediction %.3f, exact %.3f", preds[0], exact[3])
	}
	if _, err := s.Models().Predict(id, []model.Example{{Idx: []int32{0, 1}, Vals: []float64{1, 1}}}); err == nil {
		t.Error("multi-index gibbs example accepted")
	}
}

// NN jobs must train via the scheduler on both executors, report
// accuracy in job status, and serve class predictions.
func TestNNJobBothExecutors(t *testing.T) {
	s := NewScheduler(Options{})
	defer s.Close()
	for _, exec := range []string{"simulated", "parallel"} {
		st := waitDone(t, s, TrainRequest{
			Workload: "nn", Dataset: "mnist-small", Executor: exec, MaxEpochs: 8, Seed: 4,
		})
		if st.Workload != "nn" {
			t.Errorf("%s: status workload %q", exec, st.Workload)
		}
		acc, ok := st.Metrics["accuracy"]
		if !ok {
			t.Fatalf("%s: metrics missing accuracy: %v", exec, st.Metrics)
		}
		if acc < 0.7 {
			t.Errorf("%s: accuracy %.3f, want >= 0.7", exec, acc)
		}
		if st.Loss > 1.5 {
			t.Errorf("%s: loss %.3f did not drop", exec, st.Loss)
		}
	}
	snap := s.Counters().Snapshot()
	if snap.NNEpochs == 0 || snap.NNExamples == 0 {
		t.Errorf("nn counters not recorded: %+v", snap)
	}
	// Class predictions from the registered snapshot.
	jobs := s.Jobs()
	id := jobs[0].ID
	ds, _, err := nn.DatasetByName("mnist-small")
	if err != nil {
		t.Fatal(err)
	}
	examples := []model.Example{model.DenseExample(ds.Images[0]), model.DenseExample(ds.Images[1])}
	preds, err := s.Models().Predict(id, examples)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i, p := range preds {
		if int(p) == ds.Labels[i] {
			hits++
		}
	}
	if hits == 0 {
		t.Error("nn snapshot predicted neither probe example")
	}
}

// NN jobs with TargetLoss must stop early like GLM ones.
func TestNNJobTargetLoss(t *testing.T) {
	s := NewScheduler(Options{})
	defer s.Close()
	st := waitDone(t, s, TrainRequest{
		Workload: "nn", Dataset: "mnist-small", MaxEpochs: 40, TargetLoss: 1.0, Seed: 4,
	})
	if !st.Converged {
		t.Errorf("job did not converge: loss %.3f after %d epochs", st.Loss, st.Epoch)
	}
	if st.Epoch == 40 {
		t.Error("TargetLoss did not stop the job early")
	}
}

func TestWorkloadSubmitValidation(t *testing.T) {
	s := NewScheduler(Options{})
	defer s.Close()
	cases := []TrainRequest{
		{Workload: "no-such", Dataset: "cycle5"},
		{Workload: "gibbs", Dataset: "reuters"}, // GLM dataset, not a graph
		{Workload: "gibbs", Dataset: "cycle5", Model: "svm"},
		{Workload: "gibbs", Dataset: "cycle5", Access: "row"},
		{Workload: "nn", Dataset: "cycle5"}, // graph, not an image corpus
		{Workload: "nn", Dataset: "mnist-small", Model: "lr"},
	}
	for i, req := range cases {
		if _, err := s.Submit(req); err == nil {
			t.Errorf("case %d (%+v) accepted", i, req)
		}
	}
}

// The plan cache must never hand a GLM plan to a Gibbs or NN job for a
// colliding dataset name: the workload kind is part of the key.
func TestPlanCacheKeyIncludesWorkloadKind(t *testing.T) {
	spec, err := model.ByName("svm")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := data.ByName("reuters")
	if err != nil {
		t.Fatal(err)
	}
	glmKey := KeyFor(spec, ds, numa.Local2, core.ExecSimulated)

	// An adversarially named graph colliding with the GLM dataset.
	g, err := factor.NewGraph(factor.Cycle5().NumVars, factor.Cycle5().Factors)
	if err != nil {
		t.Fatal(err)
	}
	g.Name = "reuters"
	gibbsKey := KeyForWorkload(factor.NewWorkload(g), numa.Local2, core.ExecSimulated)

	if glmKey == gibbsKey {
		t.Fatal("GLM and Gibbs plan-cache keys collide for the same dataset name")
	}
	if gibbsKey.Workload != core.WorkloadGibbs || glmKey.Workload != core.WorkloadGLM {
		t.Errorf("keys do not carry workload kinds: %+v vs %+v", glmKey, gibbsKey)
	}
	c := NewPlanCache()
	c.Store(glmKey, core.Plan{Access: model.RowWise})
	if _, ok := c.Lookup(gibbsKey); ok {
		t.Fatal("gibbs key hit a cached GLM plan")
	}
}

// Two gibbs jobs for the same graph share one optimizer decision.
func TestGibbsPlanCacheHit(t *testing.T) {
	s := NewScheduler(Options{})
	defer s.Close()
	waitDone(t, s, TrainRequest{Workload: "gibbs", Dataset: "pairs4", MaxEpochs: 5})
	waitDone(t, s, TrainRequest{Workload: "gibbs", Dataset: "pairs4", MaxEpochs: 5})
	stats := s.Plans().Stats()
	if stats.Hits == 0 {
		t.Errorf("second gibbs job missed the plan cache: %+v", stats)
	}
}

// End-to-end over HTTP: train a gibbs and an nn job through POST
// /v1/train, read workload metrics from job status, and see the new
// registries and counters in /v1/stats.
func TestHTTPWorkloadRoundTrip(t *testing.T) {
	srv := NewServer(Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	train := func(body string) string {
		resp, err := http.Post(ts.URL+"/v1/train", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("train returned %d", resp.StatusCode)
		}
		var tr trainResponse
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			t.Fatal(err)
		}
		return tr.JobID
	}
	gibbsID := train(`{"workload":"gibbs","dataset":"cycle5","max_epochs":200,"executor":"parallel"}`)
	nnID := train(`{"workload":"nn","dataset":"mnist-small","max_epochs":6}`)
	for _, id := range []string{gibbsID, nnID} {
		if _, err := srv.Scheduler().Wait(id, 60*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	var st JobStatus
	resp, err := http.Get(ts.URL + "/v1/jobs/" + gibbsID)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Workload != "gibbs" || len(st.Marginals) == 0 {
		t.Errorf("gibbs job status missing workload/marginals: %+v", st)
	}

	var stats statsResponse
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(stats.Graphs) == 0 || len(stats.NNDatasets) == 0 {
		t.Errorf("stats missing workload registries: %+v", stats)
	}
	if stats.Counters.GibbsSamples == 0 || stats.Counters.GibbsSamplesPerSec == 0 {
		t.Errorf("stats missing gibbs counters: %+v", stats.Counters)
	}
	if stats.Counters.NNEpochs == 0 {
		t.Errorf("stats missing nn counters: %+v", stats.Counters)
	}
}
