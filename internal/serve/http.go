package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"time"

	"dimmwitted/internal/data"
	"dimmwitted/internal/factor"
	"dimmwitted/internal/metrics"
	"dimmwitted/internal/model"
	"dimmwitted/internal/nn"
	"dimmwitted/internal/trace"
	"dimmwitted/internal/tune"
)

// Server is the HTTP front end: a scheduler, its model registry and
// plan cache, exposed as a JSON API (see the package comment for the
// route table). Every route records its handler latency into a
// per-route histogram surfaced by /v1/stats; with Options.BatchWindow
// set, POST /v1/predict coalesces concurrent requests through a
// micro-batching queue with admission control.
type Server struct {
	sched    *Scheduler
	counters *metrics.ServeCounters
	coal     *Coalescer
	tuner    *BatchTuner
	mux      *http.ServeMux
	// latency maps route patterns to their handler-latency histograms.
	// The map is built at construction and read-only afterwards, so
	// concurrent lookups need no lock.
	latency map[string]*metrics.Histogram
	// maxBody caps every request body (Options.MaxBodyBytes, already
	// normalized); <= 0 disables the cap.
	maxBody int64
	// cluster records which coordinator (if any) this server answers
	// to; see the peer-mode routes in cluster.go.
	cluster clusterMembership
	started time.Time
}

// NewServer builds a server with its own scheduler.
func NewServer(opts Options) *Server {
	opts = opts.normalize()
	s := &Server{
		sched:    NewScheduler(opts),
		counters: opts.Counters,
		mux:      http.NewServeMux(),
		latency:  map[string]*metrics.Histogram{},
		maxBody:  opts.MaxBodyBytes,
		started:  time.Now(),
	}
	if opts.BatchWindow > 0 {
		s.coal = NewCoalescer(s.sched.Models(), CoalescerOptions{
			Window:   opts.BatchWindow,
			MaxBatch: opts.BatchMax,
			Queue:    opts.PredictQueue,
		})
	}
	s.handle("POST /v1/train", s.handleTrain)
	s.handle("GET /v1/jobs", s.handleJobs)
	s.handle("GET /v1/jobs/{id}", s.handleJob)
	s.handle("DELETE /v1/jobs/{id}", s.handleCancel)
	s.handle("POST /v1/jobs/{id}/resume", s.handleResume)
	s.handle("GET /v1/models", s.handleModels)
	s.handle("POST /v1/datasets/{id}/append", s.handleAppend)
	s.handle("POST /v1/predict", s.handlePredict)
	s.handle("GET /v1/stats", s.handleStats)
	s.handle("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.handle("GET /metrics", s.handleMetrics)
	s.handle("POST /v1/cluster/join", s.handleClusterJoin)
	s.handle("GET /v1/cluster/replica/{id}", s.handleReplicaGet)
	s.handle("POST /v1/cluster/replica/{id}", s.handleReplicaPut)
	s.handle("GET /v1/datasets/{id}/rows", s.handleRows)
	if opts.AutoBatch && s.coal != nil {
		// The controller reads the predict route's latency histogram, so
		// it starts after the routes (and their histograms) exist.
		s.tuner = NewBatchTuner(s.coal, s.latency["POST /v1/predict"], opts.AutoBatchConfig)
		s.tuner.Start()
	}
	return s
}

// handle registers a route with its latency histogram: every request
// through the pattern is timed, successes and errors alike, so the
// histogram count equals the requests issued against the route. The
// body is capped at Options.MaxBodyBytes on every route, so no POST
// handler can be fed an unbounded payload; an overrun surfaces from
// the handler's decode as *http.MaxBytesError (see decodeJSON).
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	hist := &metrics.Histogram{}
	s.latency[pattern] = hist
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if s.maxBody > 0 && r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		}
		h(w, r)
		hist.Observe(time.Since(start))
	})
}

// Scheduler returns the underlying scheduler.
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Coalescer returns the predict micro-batcher, or nil when batching is
// not configured.
func (s *Server) Coalescer() *Coalescer { return s.coal }

// BatchTuner returns the AIMD coalescer controller, or nil when
// auto-tuning is not configured.
func (s *Server) BatchTuner() *BatchTuner { return s.tuner }

// Close shuts the batch tuner, coalescer and scheduler down (see
// Scheduler.Close).
func (s *Server) Close() {
	if s.tuner != nil {
		s.tuner.Stop()
	}
	if s.coal != nil {
		s.coal.Close()
	}
	s.sched.Close()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeJSON writes v as a JSON response.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes a JSON error envelope and counts it.
func (s *Server) writeError(w http.ResponseWriter, code int, err error) {
	s.counters.HTTPError()
	s.writeJSON(w, code, map[string]string{"error": err.Error()})
}

// decodeJSON decodes a request body into v, mapping a body-cap overrun
// to 413 and any other decode failure to 400 (with what as the error
// prefix). Returns false once the error response has been written.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any, what string) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("%s body exceeds the %d-byte limit (raise -max-body-bytes)", what, tooBig.Limit))
			return false
		}
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad %s request: %w", what, err))
		return false
	}
	return true
}

// trainResponse acknowledges a submitted job.
type trainResponse struct {
	JobID string `json:"job_id"`
	// Status is the URL to poll for progress.
	Status string `json:"status"`
}

func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	var req TrainRequest
	if !s.decodeJSON(w, r, &req, "train") {
		return
	}
	id, err := s.sched.Submit(req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.counters.TrainRequest()
	s.writeJSON(w, http.StatusAccepted, trainResponse{
		JobID:  id,
		Status: "/v1/jobs/" + id,
	})
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"jobs": s.sched.Jobs()})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.sched.Status(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	s.writeJSON(w, http.StatusOK, st)
}

// traceResponse is the span journal view of a traced job.
type traceResponse struct {
	ID string `json:"id"`
	// Summary is the aggregate phase breakdown (exact even when the
	// ring has dropped old spans).
	Summary trace.Summary `json:"summary"`
	// Workers is the per-worker utilization over the retained journal;
	// empty for simulated-executor jobs (one goroutine, no worker
	// spans).
	Workers []trace.WorkerUtil `json:"workers,omitempty"`
	// Epochs is the retained span tree, grouped by epoch.
	Epochs []trace.EpochSpans `json:"epochs"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.sched.TraceRecorder(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	if rec == nil {
		s.writeError(w, http.StatusNotFound,
			fmt.Errorf("job %q was not traced; submit with \"trace\": true", id))
		return
	}
	spans := rec.Spans()
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+"-trace.json"))
		_ = trace.WriteChromeTrace(w, spans)
		return
	}
	s.writeJSON(w, http.StatusOK, traceResponse{
		ID:      id,
		Summary: rec.Summary(),
		Workers: trace.Utilization(spans),
		Epochs:  trace.Tree(spans),
	})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.sched.Cancel(id); err != nil {
		s.writeError(w, http.StatusNotFound, err)
		return
	}
	st, _ := s.sched.Status(id)
	s.writeJSON(w, http.StatusOK, st)
}

// resumeResponse acknowledges a resumed job.
type resumeResponse struct {
	JobID string `json:"job_id"`
	// Status is the URL to poll for progress.
	Status string `json:"status"`
	// ResumedFrom is the checkpointed job the new job continues.
	ResumedFrom string `json:"resumed_from"`
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	newID, err := s.sched.Resume(id)
	if err != nil {
		code := http.StatusBadRequest
		switch {
		case errors.Is(err, os.ErrNotExist):
			code = http.StatusNotFound
		case errors.Is(err, ErrJobActive):
			code = http.StatusConflict
		}
		s.writeError(w, code, err)
		return
	}
	s.counters.TrainRequest()
	s.writeJSON(w, http.StatusAccepted, resumeResponse{
		JobID:       newID,
		Status:      "/v1/jobs/" + newID,
		ResumedFrom: id,
	})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"models": s.sched.Models().List()})
}

// exampleJSON is one prediction input: either a sparse
// (indices, values) pair or a dense feature vector.
type exampleJSON struct {
	Indices []int32   `json:"indices,omitempty"`
	Values  []float64 `json:"values,omitempty"`
	Dense   []float64 `json:"dense,omitempty"`
}

// predictRequest asks for batched predictions from a trained model.
type predictRequest struct {
	// Model is the registry ID (the training job's ID).
	Model    string        `json:"model"`
	Examples []exampleJSON `json:"examples"`
}

// predictResponse carries one prediction per example, in order.
type predictResponse struct {
	Model       string    `json:"model"`
	Predictions []float64 `json:"predictions"`
	Count       int       `json:"count"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	if !s.decodeJSON(w, r, &req, "predict") {
		return
	}
	if len(req.Examples) == 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("predict request has no examples"))
		return
	}
	examples := make([]model.Example, 0, len(req.Examples))
	for i, ex := range req.Examples {
		switch {
		case ex.Dense != nil && ex.Indices == nil && ex.Values == nil:
			examples = append(examples, model.DenseExample(ex.Dense))
		case ex.Dense == nil:
			examples = append(examples, model.Example{Idx: ex.Indices, Vals: ex.Values})
		default:
			s.writeError(w, http.StatusBadRequest,
				fmt.Errorf("example %d mixes dense and sparse encodings", i))
			return
		}
	}
	var preds []float64
	var err error
	if s.coal != nil {
		preds, err = s.coal.Predict(req.Model, examples)
	} else {
		preds, err = s.sched.Models().Predict(req.Model, examples)
	}
	if err != nil {
		code := http.StatusBadRequest
		switch {
		case errors.Is(err, ErrOverloaded):
			// Admission control: tell the client when the queue is
			// likely to have drained a flush window's worth of work.
			w.Header().Set("Retry-After", retryAfterSeconds(s.coal.Window()))
			code = http.StatusTooManyRequests
		case errors.Is(err, ErrUnknownModel):
			code = http.StatusNotFound
		case errors.Is(err, errCoalescerClosed):
			// Shutdown is a server-side condition; tell clients to retry
			// elsewhere, not that their request was malformed.
			code = http.StatusServiceUnavailable
		}
		s.writeError(w, code, err)
		return
	}
	s.counters.PredictRequest(len(preds))
	s.writeJSON(w, http.StatusOK, predictResponse{
		Model:       req.Model,
		Predictions: preds,
		Count:       len(preds),
	})
}

// appendRowJSON is one ingested example: a sparse (indices, values)
// pair or a dense feature vector, plus the row's label.
type appendRowJSON struct {
	Indices []int32   `json:"indices,omitempty"`
	Values  []float64 `json:"values,omitempty"`
	Dense   []float64 `json:"dense,omitempty"`
	Label   float64   `json:"label"`
}

// appendRequest ingests a chunk of rows into a stream dataset. Cols
// (and optionally Task) create the stream on the first append to an
// unknown id; later chunks may omit them.
type appendRequest struct {
	Rows []appendRowJSON `json:"rows"`
	Cols int             `json:"cols,omitempty"`
	// Task is "classification" (default) or "regression".
	Task string `json:"task,omitempty"`
}

// appendResponse reports the view published by an append.
type appendResponse struct {
	Dataset  string `json:"dataset"`
	Version  uint64 `json:"version"`
	Rows     int    `json:"rows"`
	Appended int    `json:"appended"`
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req appendRequest
	if !s.decodeJSON(w, r, &req, "append") {
		return
	}
	if len(req.Rows) == 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("append request has no rows"))
		return
	}
	h, err := data.HandleByName(id)
	switch {
	case err == nil && h.Frozen():
		s.writeError(w, http.StatusConflict,
			fmt.Errorf("dataset %q is a frozen registry dataset; append to a new name to create a stream", id))
		return
	case err != nil && req.Cols <= 0:
		s.writeError(w, http.StatusNotFound,
			fmt.Errorf("unknown dataset %q: the first append must set cols (and optionally task) to create the stream", id))
		return
	case err != nil:
		task := data.Classification
		switch req.Task {
		case "", "classification":
		case "regression":
			task = data.Regression
		default:
			s.writeError(w, http.StatusBadRequest,
				fmt.Errorf("unknown task %q (want classification or regression)", req.Task))
			return
		}
		if h, err = data.EnsureStream(id, req.Cols, task); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	rows := make([]data.Row, 0, len(req.Rows))
	for i, rj := range req.Rows {
		if rj.Dense != nil && (rj.Indices != nil || rj.Values != nil) {
			s.writeError(w, http.StatusBadRequest,
				fmt.Errorf("row %d mixes dense and sparse encodings", i))
			return
		}
		rows = append(rows, data.Row{Indices: rj.Indices, Values: rj.Values, Dense: rj.Dense, Label: rj.Label})
	}
	view, err := h.Append(rows)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.counters.AppendRequest(len(rows))
	s.writeJSON(w, http.StatusOK, appendResponse{
		Dataset:  id,
		Version:  view.Version,
		Rows:     view.Rows(),
		Appended: len(rows),
	})
}

// statsResponse aggregates every subsystem's statistics.
type statsResponse struct {
	UptimeSeconds float64               `json:"uptime_seconds"`
	Machine       string                `json:"machine"`
	Counters      metrics.ServeSnapshot `json:"counters"`
	Queue         QueueStats            `json:"queue"`
	PlanCache     PlanCacheStats        `json:"plan_cache"`
	Models        int                   `json:"models"`
	// Latency maps each route pattern to its handler-latency histogram
	// summary (p50/p95/p99); counts include error responses, so a
	// route's count equals the requests issued against it.
	Latency map[string]metrics.HistogramSnapshot `json:"latency"`
	// Batch summarises the predict micro-batcher (queue depth gauge,
	// coalescing factor, admission-control rejections); omitted when
	// batching is not configured.
	Batch *BatchStats `json:"batch,omitempty"`
	// BatchTuner summarises the AIMD coalescer controller (current
	// window/cap, backoffs, increases); omitted unless auto-tuning is on.
	BatchTuner *BatchTunerStats `json:"batch_tuner,omitempty"`
	// Optimizer summarises the self-tuning optimizer's feedback store
	// (keys, observations, explorations); omitted when the feedback loop
	// is disabled.
	Optimizer *tune.Stats `json:"optimizer,omitempty"`
	// Datasets, Graphs and NNDatasets list what each workload's
	// "dataset" field accepts: GLM data matrices, factor graphs, and
	// image corpora.
	Datasets   []string `json:"datasets"`
	Graphs     []string `json:"graphs"`
	NNDatasets []string `json:"nn_datasets"`
	// CheckpointDir and ModelDir are the durable store directories, or
	// empty when the server runs without durability (-store unset).
	CheckpointDir string `json:"checkpoint_dir,omitempty"`
	ModelDir      string `json:"model_dir,omitempty"`
	// CheckpointEvery is the scheduler's epochs-per-checkpoint policy.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// Cluster reports coordinator membership when this server has been
	// joined to a cluster (dwserve -peer-of); omitted otherwise.
	Cluster *ClusterStatus `json:"cluster,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	lat := make(map[string]metrics.HistogramSnapshot, len(s.latency))
	for pattern, h := range s.latency {
		lat[pattern] = h.Snapshot()
	}
	resp := statsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Machine:       s.sched.opts.Machine.Name,
		Counters:      s.counters.Snapshot(),
		Queue:         s.sched.Stats(),
		PlanCache:     s.sched.Plans().Stats(),
		Models:        s.sched.Models().Len(),
		Latency:       lat,
		Datasets:      data.Names(),
		Graphs:        factor.GraphNames(),
		NNDatasets:    nn.DatasetNames(),
	}
	if s.coal != nil {
		st := s.coal.Stats()
		resp.Batch = &st
	}
	if s.tuner != nil {
		st := s.tuner.Stats()
		resp.BatchTuner = &st
	}
	if fb := s.sched.Feedback(); fb != nil {
		st := fb.Stats()
		resp.Optimizer = &st
	}
	if st := s.sched.opts.Checkpoints; st != nil {
		resp.CheckpointDir = st.Dir()
		resp.CheckpointEvery = s.sched.opts.CheckpointEvery
	}
	if st := s.sched.opts.Models; st != nil {
		resp.ModelDir = st.Dir()
	}
	resp.Cluster = s.cluster.status()
	s.writeJSON(w, http.StatusOK, resp)
}
