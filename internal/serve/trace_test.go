package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// traceJob submits a traced parallel Gibbs job and returns its id.
func traceJob(t *testing.T, client *http.Client, base string, sweeps int) string {
	t.Helper()
	var tr trainResponse
	code := doJSON(t, client, http.MethodPost, base+"/v1/train", TrainRequest{
		Workload:  "gibbs",
		Dataset:   "cycle5",
		Executor:  "parallel",
		MaxEpochs: sweeps,
		Trace:     true,
	}, &tr)
	if code != http.StatusAccepted {
		t.Fatalf("train: status %d", code)
	}
	return tr.JobID
}

// TestTraceEndpointContract checks the traced-job surface end to end:
// the phase breakdown in the job status, the span journal and its
// Chrome export at /v1/jobs/{id}/trace, and the 404s for unknown and
// untraced jobs.
func TestTraceEndpointContract(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	client := ts.Client()

	id := traceJob(t, client, ts.URL, 10)
	st := pollJob(t, client, ts.URL, id)
	if st.State != "done" {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if st.Trace == nil {
		t.Fatal("traced job status has no trace summary")
	}
	if st.Trace.Epochs != 10 {
		t.Fatalf("trace summary epochs = %d, want 10", st.Trace.Epochs)
	}
	if st.Trace.Coverage < 0.5 {
		t.Fatalf("trace coverage = %v, suspiciously low", st.Trace.Coverage)
	}

	var tr traceResponse
	if code := doJSON(t, client, http.MethodGet, ts.URL+"/v1/jobs/"+id+"/trace", nil, &tr); code != http.StatusOK {
		t.Fatalf("GET trace: status %d", code)
	}
	if tr.ID != id {
		t.Fatalf("trace id = %q, want %q", tr.ID, id)
	}
	if len(tr.Epochs) == 0 {
		t.Fatal("trace has no retained epochs")
	}
	if len(tr.Workers) == 0 {
		t.Fatal("parallel trace has no worker utilization rows")
	}
	for _, w := range tr.Workers {
		if w.Utilization < 0 || w.Utilization > 1.5 {
			t.Fatalf("worker %d utilization = %v out of range", w.Worker, w.Utilization)
		}
	}

	// The Chrome export must decode as trace_event JSON.
	resp, err := client.Get(ts.URL + "/v1/jobs/" + id + "/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chrome export: status %d", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}

	// An untraced job 404s on the trace endpoint with a hint.
	var plain trainResponse
	doJSON(t, client, http.MethodPost, ts.URL+"/v1/train", TrainRequest{
		Workload: "gibbs", Dataset: "cycle5", MaxEpochs: 2,
	}, &plain)
	pollJob(t, client, ts.URL, plain.JobID)
	if code := doJSON(t, client, http.MethodGet, ts.URL+"/v1/jobs/"+plain.JobID+"/trace", nil, nil); code != http.StatusNotFound {
		t.Fatalf("untraced job trace: status %d, want 404", code)
	}
	if code := doJSON(t, client, http.MethodGet, ts.URL+"/v1/jobs/nope/trace", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown job trace: status %d, want 404", code)
	}
}

// TestTraceRaceSoak hammers every trace read path — job status with
// its summary, the span journal, the Chrome export and /metrics —
// while a traced parallel job is actively recording. Run under -race
// in CI, this is the engine-to-endpoint synchronization soak.
func TestTraceRaceSoak(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	client := ts.Client()

	id := traceJob(t, client, ts.URL, 60)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			urls := []string{
				ts.URL + "/v1/jobs/" + id,
				ts.URL + "/v1/jobs/" + id + "/trace",
				ts.URL + "/v1/jobs/" + id + "/trace?format=chrome",
				ts.URL + "/metrics",
			}
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				resp, err := client.Get(urls[(i+r)%len(urls)])
				if err != nil {
					continue // server may be tearing down at test end
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(r)
	}
	st := pollJob(t, client, ts.URL, id)
	close(done)
	wg.Wait()
	if st.State != "done" {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if st.Trace == nil || st.Trace.Epochs != 60 {
		t.Fatalf("trace summary after soak: %+v", st.Trace)
	}
}

// TestDebugHandlerServesPprof checks the profiling contract: the debug
// mux serves pprof, and the public API mux does not.
func TestDebugHandlerServesPprof(t *testing.T) {
	dbg := httptest.NewServer(DebugHandler())
	defer dbg.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := http.Get(dbg.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}

	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("public mux serves /debug/pprof/ — profiling must stay on the debug listener")
	}
}

// TestJobStatusTraceOmittedWhenOff checks that untraced jobs carry no
// trace summary (the field must be omitted, not zero-valued).
func TestJobStatusTraceOmittedWhenOff(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	client := ts.Client()
	var tr trainResponse
	doJSON(t, client, http.MethodPost, ts.URL+"/v1/train", TrainRequest{
		Workload: "gibbs", Dataset: "cycle5", MaxEpochs: 2,
	}, &tr)
	st := pollJob(t, client, ts.URL, tr.JobID)
	if st.Trace != nil {
		t.Fatalf("untraced job has trace summary: %+v", st.Trace)
	}
	raw, _ := json.Marshal(st)
	if jsonHasKey(raw, "trace") {
		t.Fatalf("untraced status JSON carries a trace key: %s", raw)
	}
}

// jsonHasKey reports whether a marshalled object has a top-level key.
func jsonHasKey(raw []byte, key string) bool {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return false
	}
	_, ok := m[key]
	return ok
}

// TestWarmStartAllowsTrace checks Trace is a job knob, not a plan
// knob: a warm-started job (whose plan knobs must stay unset) may
// still ask for tracing.
func TestWarmStartAllowsTrace(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	client := ts.Client()
	var tr trainResponse
	doJSON(t, client, http.MethodPost, ts.URL+"/v1/train", TrainRequest{
		Workload: "gibbs", Dataset: "cycle5", MaxEpochs: 3,
	}, &tr)
	if st := pollJob(t, client, ts.URL, tr.JobID); st.State != "done" {
		t.Fatalf("seed job ended %s: %s", st.State, st.Error)
	}
	var warm trainResponse
	code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/train", TrainRequest{
		WarmStart: tr.JobID, MaxEpochs: 6, Trace: true,
	}, &warm)
	if code != http.StatusAccepted {
		t.Fatalf("warm traced train: status %d", code)
	}
	st := pollJob(t, client, ts.URL, warm.JobID)
	if st.State != "done" {
		t.Fatalf("warm job ended %s: %s", st.State, st.Error)
	}
	if st.Trace == nil || st.Trace.Epochs != 3 {
		t.Fatalf("warm traced job summary = %+v, want 3 traced epochs (epoch 4..6)", st.Trace)
	}
}
