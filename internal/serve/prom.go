package serve

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"time"

	"dimmwitted/internal/core"
	"dimmwitted/internal/metrics"
)

// promEscape escapes a label value per the Prometheus text exposition
// format: backslash, double quote and newline.
func promEscape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// promValue formats a sample value. Prometheus accepts Go's shortest
// float form plus +Inf/-Inf/NaN.
func promValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

// promWriter accumulates one exposition document. Each metric family
// is announced once (# HELP / # TYPE) before its samples.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// family emits the HELP/TYPE header for a metric family.
func (p *promWriter) family(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample emits one sample line; labels are pre-rendered ("" for none).
func (p *promWriter) sample(name, labels string, v float64) {
	p.printf("%s%s %s\n", name, labels, promValue(v))
}

// counter and gauge emit single-sample families.
func (p *promWriter) counter(name, help string, v float64) {
	p.family(name, help, "counter")
	p.sample(name, "", v)
}

func (p *promWriter) gauge(name, help string, v float64) {
	p.family(name, help, "gauge")
	p.sample(name, "", v)
}

// histogram emits one labeled histogram series from an Export:
// cumulative le buckets, _sum and _count. The family header must have
// been emitted by the caller (several label sets share one family).
func (p *promWriter) histogram(name, labels string, e metrics.HistogramExport) {
	for _, b := range e.Buckets {
		le := promValue(b.LE)
		lbl := fmt.Sprintf("{%s,le=%q}", labels, le)
		if labels == "" {
			lbl = fmt.Sprintf("{le=%q}", le)
		}
		p.sample(name+"_bucket", lbl, float64(b.Count))
	}
	wrap := ""
	if labels != "" {
		wrap = "{" + labels + "}"
	}
	p.sample(name+"_sum", wrap, e.SumSeconds)
	p.sample(name+"_count", wrap, float64(e.Count))
}

// handleMetrics serves GET /metrics: the Prometheus text exposition of
// the serving counters, queue and cache gauges, per-route latency
// histograms, and the engine phase timers accumulated from traced
// jobs. Everything is hand-rendered — the repo deliberately has no
// client-library dependency.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := &promWriter{w: w}

	c := s.counters.Snapshot()
	p.gauge("dimmwitted_uptime_seconds", "Seconds since the server started.", time.Since(s.started).Seconds())
	p.counter("dimmwitted_train_requests_total", "Accepted training requests.", float64(c.TrainRequests))
	p.counter("dimmwitted_predict_requests_total", "Prediction requests served.", float64(c.PredictRequests))
	p.counter("dimmwitted_predictions_total", "Individual predictions returned.", float64(c.Predictions))
	p.counter("dimmwitted_jobs_enqueued_total", "Jobs entering the queue.", float64(c.JobsEnqueued))
	p.counter("dimmwitted_jobs_done_total", "Jobs finished successfully.", float64(c.JobsDone))
	p.counter("dimmwitted_jobs_failed_total", "Jobs ended in an error.", float64(c.JobsFailed))
	p.counter("dimmwitted_jobs_cancelled_total", "Jobs cancelled before completion.", float64(c.JobsCancelled))
	p.counter("dimmwitted_plan_cache_hits_total", "Optimizer invocations skipped by the plan cache.", float64(c.PlanCacheHits))
	p.counter("dimmwitted_plan_cache_misses_total", "Cost-based optimizer runs.", float64(c.PlanCacheMisses))
	pc := s.sched.Plans().Stats()
	p.gauge("dimmwitted_plan_cache_size", "Plans currently cached.", float64(pc.Size))
	p.counter("dimmwitted_plan_cache_evictions_total", "Cached plans dropped by the LRU size cap.", float64(pc.Evictions))
	p.counter("dimmwitted_plan_cache_invalidations_total", "Cached plans dropped because a feedback update flipped the optimizer's winner.", float64(pc.Invalidations))
	p.counter("dimmwitted_http_errors_total", "Requests answered with a non-2xx status.", float64(c.HTTPErrors))
	p.counter("dimmwitted_gibbs_sweeps_total", "Full Gibbs chain sweeps.", float64(c.GibbsSweeps))
	p.counter("dimmwitted_gibbs_samples_total", "Gibbs variable samples drawn.", float64(c.GibbsSamples))
	p.gauge("dimmwitted_gibbs_samples_per_second", "Cumulative parallel-executor sampling throughput.", c.GibbsSamplesPerSec)
	p.counter("dimmwitted_nn_epochs_total", "Network-training epochs.", float64(c.NNEpochs))
	p.counter("dimmwitted_nn_examples_total", "Examples back-propagated.", float64(c.NNExamples))
	p.counter("dimmwitted_checkpoint_writes_total", "Durable snapshot writes.", float64(c.CheckpointWrites))
	p.counter("dimmwitted_checkpoint_bytes_total", "Bytes written to durable snapshots.", float64(c.CheckpointBytes))
	p.counter("dimmwitted_checkpoint_restores_total", "States restored from durable snapshots.", float64(c.CheckpointRestores))
	p.counter("dimmwitted_checkpoint_errors_total", "Failed checkpoint writes or restores.", float64(c.CheckpointErrors))
	p.counter("dimmwitted_append_requests_total", "Accepted dataset-append chunks.", float64(c.AppendRequests))
	p.counter("dimmwitted_rows_appended_total", "Rows ingested through dataset appends.", float64(c.RowsAppended))
	p.counter("dimmwitted_dataset_versions_total", "Dataset views published by appends.", float64(c.DatasetVersions))
	p.counter("dimmwitted_shadow_evals_total", "Candidate models shadow-evaluated on a held-out tail.", float64(c.ShadowEvals))
	p.counter("dimmwitted_models_promoted_total", "Candidates that passed shadow evaluation and went live.", float64(c.ModelsPromoted))
	p.counter("dimmwitted_models_rolled_back_total", "Regressing canaries rejected by shadow evaluation.", float64(c.ModelsRolledBack))
	p.counter("dimmwitted_online_adopts_total", "Grown dataset views adopted by running online jobs.", float64(c.OnlineAdopts))

	q := s.sched.Stats()
	p.gauge("dimmwitted_scheduler_slots", "Concurrent training slots.", float64(q.Slots))
	p.family("dimmwitted_jobs", "Jobs currently recorded, by lifecycle state.", "gauge")
	for _, st := range []struct {
		state string
		n     int
	}{
		{"queued", q.Queued}, {"running", q.Running}, {"done", q.Done},
		{"failed", q.Failed}, {"cancelled", q.Cancelled},
	} {
		p.sample("dimmwitted_jobs", fmt.Sprintf("{state=%q}", st.state), float64(st.n))
	}
	p.gauge("dimmwitted_models", "Models registered for serving.", float64(s.sched.Models().Len()))

	if s.coal != nil {
		b := s.coal.Stats()
		p.gauge("dimmwitted_predict_queue_depth", "Predict requests admitted and not yet answered.", float64(b.Depth))
		p.gauge("dimmwitted_predict_queue_capacity", "Predict admission queue bound.", float64(b.Capacity))
		p.counter("dimmwitted_predict_batches_total", "Batched registry calls issued by the coalescer.", float64(b.Batches))
		p.counter("dimmwitted_predict_batched_requests_total", "Requests served through coalesced batches.", float64(b.Requests))
		p.counter("dimmwitted_predict_rejected_total", "Admission-control rejections (429).", float64(b.Rejected))
	}

	if s.tuner != nil {
		bt := s.tuner.Stats()
		p.gauge("dimmwitted_batch_window_seconds", "Coalescer flush window after the latest auto-tune tick.", bt.WindowMs/1e3)
		p.gauge("dimmwitted_batch_max_examples", "Coalescer per-flush example cap after the latest auto-tune tick.", float64(bt.MaxBatch))
		p.counter("dimmwitted_batch_tuner_backoffs_total", "Auto-tune multiplicative decreases (p95 over target).", float64(bt.Backoffs))
		p.counter("dimmwitted_batch_tuner_increases_total", "Auto-tune additive increases (coalescing factor justified growth).", float64(bt.Increases))
	}

	if fb := s.sched.Feedback(); fb != nil {
		ts := fb.Stats()
		p.counter("dimmwitted_optimizer_observations_total", "Epoch wall-clock observations recorded by the self-tuning optimizer.", float64(ts.Observations))
		p.gauge("dimmwitted_optimizer_keys", "Distinct plan observation keys in the feedback store.", float64(ts.Keys))
		p.counter("dimmwitted_optimizer_explorations_total", "Plan decisions where the epsilon draw ran the runner-up.", float64(ts.Explorations))
	}

	// Route latency histograms: one family, one series per route. The
	// map is construction-time constant; sort for a stable exposition.
	routes := make([]string, 0, len(s.latency))
	for pattern := range s.latency {
		routes = append(routes, pattern)
	}
	sort.Strings(routes)
	p.family("dimmwitted_http_request_duration_seconds", "HTTP handler latency by route.", "histogram")
	for _, pattern := range routes {
		p.histogram("dimmwitted_http_request_duration_seconds",
			fmt.Sprintf("route=%q", promEscape(pattern)), s.latency[pattern].Export())
	}

	// Engine phase timers from traced jobs, labeled by executor kind
	// and phase — the /metrics view of the span recorder's aggregates.
	p.family("dimmwitted_engine_phase_seconds_total", "Engine wall clock attributed to each phase by traced jobs.", "counter")
	for _, kind := range []core.ExecutorKind{core.ExecSimulated, core.ExecParallel} {
		for _, t := range s.sched.PhaseTotals(kind).Totals() {
			p.sample("dimmwitted_engine_phase_seconds_total",
				fmt.Sprintf("{executor=%q,phase=%q}", kind.String(), t.Phase), t.Seconds)
		}
	}
	p.family("dimmwitted_engine_phase_spans_total", "Spans recorded for each engine phase by traced jobs.", "counter")
	for _, kind := range []core.ExecutorKind{core.ExecSimulated, core.ExecParallel} {
		for _, t := range s.sched.PhaseTotals(kind).Totals() {
			p.sample("dimmwitted_engine_phase_spans_total",
				fmt.Sprintf("{executor=%q,phase=%q}", kind.String(), t.Phase), float64(t.Count))
		}
	}
}
