package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dimmwitted/internal/model"
)

// ErrOverloaded reports an admission-control rejection: the predict
// queue is full and the request was turned away instead of queued.
// The HTTP layer maps it to 429 with a Retry-After header; match it
// with errors.Is.
var ErrOverloaded = errors.New("serve: predict queue is full")

// errCoalescerClosed reports a request against a shut-down coalescer.
var errCoalescerClosed = errors.New("serve: coalescer closed")

// Coalescer micro-batches concurrent predictions: requests enter a
// bounded admission queue, a dispatcher gathers them for up to a flush
// window (or until a batch fills), groups them by model id, and a
// bounded pool of scoring workers serves each group with ONE batched
// registry call whose results are split back per request. Under load
// this converts k concurrent single-example requests for a hot model
// into one PredictBatch over k examples; when the scoring pool and the
// queue are both saturated, new requests fail fast with ErrOverloaded
// instead of stacking latency — admission control, not buffering.
//
// Coalescing never changes results: predictions are per-example
// independent, so the batched call is bit-identical to the per-request
// calls it replaces, and a batch that fails (one request carrying a
// bad example) is retried per request so the error lands only on the
// offender.
type Coalescer struct {
	reg *Registry
	// window (nanoseconds) and maxBatch are atomics because the AIMD
	// batch tuner retunes them while the dispatcher runs; dispatch reads
	// both once per batch, so a flush sees one consistent setting.
	window   atomic.Int64
	maxBatch atomic.Int64
	queue    chan *pendingPredict
	flushCh  chan []*pendingPredict
	stop     chan struct{}
	wg       sync.WaitGroup

	closeMu sync.RWMutex
	closed  bool

	depth    atomic.Int64 // requests admitted and not yet answered
	rejected atomic.Int64
	requests atomic.Int64 // requests flushed through batches
	batches  atomic.Int64 // batched registry calls issued
}

// pendingPredict is one admitted request waiting for its batch.
type pendingPredict struct {
	model    string
	examples []model.Example
	res      chan coalesceResult
}

type coalesceResult struct {
	preds []float64
	err   error
}

// CoalescerOptions tunes a Coalescer; zero values take defaults.
type CoalescerOptions struct {
	// Window is how long the dispatcher gathers requests after the
	// first one arrives before flushing; 0 flushes opportunistically
	// (whatever has queued, no added wait).
	Window time.Duration
	// MaxBatch caps the examples per flush; 0 means 256.
	MaxBatch int
	// Queue bounds the admission queue; 0 means 1024.
	Queue int
	// Workers bounds the concurrent scoring flushes; 0 means 4.
	Workers int
}

// NewCoalescer starts a coalescer over the registry.
func NewCoalescer(reg *Registry, opts CoalescerOptions) *Coalescer {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 256
	}
	if opts.Queue <= 0 {
		opts.Queue = 1024
	}
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	c := &Coalescer{
		reg:     reg,
		queue:   make(chan *pendingPredict, opts.Queue),
		flushCh: make(chan []*pendingPredict),
		stop:    make(chan struct{}),
	}
	c.window.Store(int64(opts.Window))
	c.maxBatch.Store(int64(opts.MaxBatch))
	c.wg.Add(1)
	go c.dispatch()
	for i := 0; i < opts.Workers; i++ {
		c.wg.Add(1)
		go c.scoreLoop()
	}
	return c
}

// Window returns the current flush window.
func (c *Coalescer) Window() time.Duration { return time.Duration(c.window.Load()) }

// MaxBatch returns the current per-flush example cap.
func (c *Coalescer) MaxBatch() int { return int(c.maxBatch.Load()) }

// SetTuning atomically retunes the flush window and batch cap — the
// AIMD batch tuner's write path. Values take effect on the next batch
// the dispatcher gathers.
func (c *Coalescer) SetTuning(window time.Duration, maxBatch int) {
	if window >= 0 {
		c.window.Store(int64(window))
	}
	if maxBatch > 0 {
		c.maxBatch.Store(int64(maxBatch))
	}
}

// Predict submits one request for coalescing and blocks until its
// batch is served. A full queue returns ErrOverloaded immediately.
func (c *Coalescer) Predict(id string, examples []model.Example) ([]float64, error) {
	p := &pendingPredict{model: id, examples: examples, res: make(chan coalesceResult, 1)}
	// The enqueue happens under the read side of closeMu so Close can
	// linearise: after it holds the write side, no new request can slip
	// into the queue behind the dispatcher's drain.
	c.closeMu.RLock()
	if c.closed {
		c.closeMu.RUnlock()
		return nil, errCoalescerClosed
	}
	select {
	case c.queue <- p:
		c.depth.Add(1)
		c.closeMu.RUnlock()
	default:
		c.closeMu.RUnlock()
		c.rejected.Add(1)
		return nil, ErrOverloaded
	}
	r := <-p.res
	c.depth.Add(-1)
	return r.preds, r.err
}

// dispatch gathers admitted requests into batches and hands them to
// the scoring workers. When every worker is busy the hand-off blocks,
// the queue backs up, and admission control starts rejecting — the
// backpressure path.
func (c *Coalescer) dispatch() {
	defer c.wg.Done()
	for {
		var first *pendingPredict
		select {
		case first = <-c.queue:
		case <-c.stop:
			c.drain()
			return
		}
		batch := []*pendingPredict{first}
		n := len(first.examples)
		window, maxBatch := time.Duration(c.window.Load()), int(c.maxBatch.Load())
		if window > 0 {
			timer := time.NewTimer(window)
		gather:
			for n < maxBatch {
				select {
				case p := <-c.queue:
					batch = append(batch, p)
					n += len(p.examples)
				case <-timer.C:
					break gather
				case <-c.stop:
					break gather
				}
			}
			timer.Stop()
		} else {
		greedy:
			for n < maxBatch {
				select {
				case p := <-c.queue:
					batch = append(batch, p)
					n += len(p.examples)
				default:
					break greedy
				}
			}
		}
		select {
		case c.flushCh <- batch:
		case <-c.stop:
			c.fail(batch)
			c.drain()
			return
		}
	}
}

// drain fails every queued request after shutdown. By the time stop is
// closed, Close holds closeMu exclusively, so no producer can enqueue
// behind this drain.
func (c *Coalescer) drain() {
	for {
		select {
		case p := <-c.queue:
			p.res <- coalesceResult{err: errCoalescerClosed}
		default:
			return
		}
	}
}

// fail answers every request in a batch with the shutdown error.
func (c *Coalescer) fail(batch []*pendingPredict) {
	for _, p := range batch {
		p.res <- coalesceResult{err: errCoalescerClosed}
	}
}

// scoreLoop serves handed-off batches until shutdown.
func (c *Coalescer) scoreLoop() {
	defer c.wg.Done()
	for {
		select {
		case batch := <-c.flushCh:
			c.flush(batch)
		case <-c.stop:
			return
		}
	}
}

// flush groups a batch by model id and serves each group with one
// batched scorer call, splitting the results back onto the waiting
// requests in arrival order. The model is resolved once per group:
// model-level failures (unknown id, unreadable store entry, no
// prediction support) are broadcast to the whole group — retrying
// per request could not change them — while a failed merged scoring
// call (one request carrying a bad example) is retried per request
// against the same resolved model, so the error lands only on the
// offender and the innocent neighbours still get identical results.
func (c *Coalescer) flush(batch []*pendingPredict) {
	groups := make(map[string][]*pendingPredict, 1)
	var order []string
	for _, p := range batch {
		if _, ok := groups[p.model]; !ok {
			order = append(order, p.model)
		}
		groups[p.model] = append(groups[p.model], p)
	}
	for _, id := range order {
		g := groups[id]
		c.batches.Add(1)
		c.requests.Add(int64(len(g)))
		sm, err := c.reg.resolve(id)
		if err != nil {
			for _, p := range g {
				p.res <- coalesceResult{err: err}
			}
			continue
		}
		if len(g) == 1 {
			preds, err := safeScore(sm, g[0].examples)
			g[0].res <- coalesceResult{preds: preds, err: err}
			continue
		}
		merged := make([]model.Example, 0, batchExamples(g))
		for _, p := range g {
			merged = append(merged, p.examples...)
		}
		preds, err := safeScore(sm, merged)
		if err != nil {
			for _, p := range g {
				pr, perr := safeScore(sm, p.examples)
				p.res <- coalesceResult{preds: pr, err: perr}
			}
			continue
		}
		off := 0
		for _, p := range g {
			p.res <- coalesceResult{preds: preds[off : off+len(p.examples) : off+len(p.examples)], err: nil}
			off += len(p.examples)
		}
	}
}

// safeScore runs one scorer call with panic containment: on the
// direct path a panicking scorer is caught by net/http's per-request
// recover, and the batched path must not be weaker — one bad scorer
// must fail its batch, not kill the daemon or strand its waiters.
func safeScore(sm *servingModel, examples []model.Example) (preds []float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			preds, err = nil, fmt.Errorf("serve: scorer panicked: %v", r)
		}
	}()
	return sm.scorer(sm.x, examples)
}

// batchExamples counts the examples across a group.
func batchExamples(g []*pendingPredict) int {
	n := 0
	for _, p := range g {
		n += len(p.examples)
	}
	return n
}

// BatchStats is a point-in-time summary of the coalescer for the stats
// endpoint.
type BatchStats struct {
	// Enabled reports whether micro-batching is configured at all.
	Enabled bool `json:"enabled"`
	// WindowMs is the flush window in milliseconds.
	WindowMs float64 `json:"window_ms"`
	// MaxBatch caps the coalesced examples per flush.
	MaxBatch int `json:"max_batch"`
	// Capacity is the admission queue bound; Depth is the queue-depth
	// gauge — requests admitted and not yet answered.
	Capacity int   `json:"capacity"`
	Depth    int64 `json:"depth"`
	// Requests counts requests served through batches, Batches the
	// batched registry calls issued (Requests/Batches is the achieved
	// coalescing factor), Rejected the admission-control rejections.
	Requests int64 `json:"requests"`
	Batches  int64 `json:"batches"`
	Rejected int64 `json:"rejected"`
}

// Stats summarises the coalescer.
func (c *Coalescer) Stats() BatchStats {
	return BatchStats{
		Enabled:  true,
		WindowMs: float64(c.window.Load()) / float64(time.Millisecond),
		MaxBatch: int(c.maxBatch.Load()),
		Capacity: cap(c.queue),
		Depth:    c.depth.Load(),
		Requests: c.requests.Load(),
		Batches:  c.batches.Load(),
		Rejected: c.rejected.Load(),
	}
}

// Close stops the coalescer: in-flight batches finish, queued requests
// fail with a closed error, and new requests are refused. Safe to call
// more than once.
func (c *Coalescer) Close() {
	c.closeMu.Lock()
	if c.closed {
		c.closeMu.Unlock()
		return
	}
	c.closed = true
	c.closeMu.Unlock()
	close(c.stop)
	c.wg.Wait()
	// The dispatcher may have exited between queue receives; sweep any
	// stragglers that were admitted before closed flipped.
	c.drain()
}

// retryAfterSeconds is the Retry-After hint for a 429: one flush
// window rounded up to a whole second (a true ceiling — an exactly
// whole-second window is not rounded past itself), at least 1.
func retryAfterSeconds(window time.Duration) string {
	secs := int64((window + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}
