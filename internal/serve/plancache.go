package serve

import (
	"sync"

	"dimmwitted/internal/core"
	"dimmwitted/internal/data"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

// PlanKey identifies an optimizer decision. The cost formulas read
// aggregate statistics (row/column counts, nonzero volume) *and* the
// per-row nonzero distribution (Σnᵢ² in PaperCost), so aggregate
// stats alone cannot key the cache: two datasets with equal shape but
// different skew may deserve different plans. The dataset's registry
// name pins the distribution (registered datasets are deterministic);
// the aggregate stats guard against a name being re-registered with
// different content. The workload kind is part of the key: GLM
// datasets, factor graphs and image corpora live in separate
// registries, so a Gibbs job must never hit a cached GLM plan (or vice
// versa) just because the dataset names collide.
type PlanKey struct {
	// Workload is the workload family the plan was optimized for.
	Workload core.WorkloadKind
	// Model is the task's short name (the spec for GLM; "gibbs"/"nn").
	Model string
	// Dataset is the registry name, which determines the full nonzero
	// distribution the cost model reads.
	Dataset string
	// Rows, Cols and NNZ are the data shape statistics: rows/columns/
	// nonzeros for GLM, units/state-dimension/incidences otherwise.
	Rows, Cols int
	NNZ        int64
	// Task distinguishes GLM datasets with equal shapes but different
	// label semantics; empty for other workloads.
	Task string
	// DatasetVersion pins the published view of a streamed dataset:
	// every append bumps it, so a plan sized for the smaller matrix is
	// a guaranteed miss afterwards instead of a stale hit. Registry
	// datasets are frozen at version 1; zero for non-GLM workloads.
	DatasetVersion uint64
	// Machine is the topology name (alpha and core counts).
	Machine string
	// Executor is the requested execution backend: it narrows the
	// access methods the optimizer may price (parallel is row-wise
	// only), so the same task can cache different plans per backend.
	Executor core.ExecutorKind
}

// KeyFor builds the cache key for a GLM spec/dataset/topology/executor
// quadruple.
func KeyFor(spec model.Spec, ds *data.Dataset, top numa.Topology, exec core.ExecutorKind) PlanKey {
	return PlanKey{
		Workload:       core.WorkloadGLM,
		Model:          spec.Name(),
		Dataset:        ds.Name,
		Rows:           ds.Rows(),
		Cols:           ds.Cols(),
		NNZ:            ds.NNZ(),
		Task:           ds.Task.String(),
		DatasetVersion: ds.Version,
		Machine:        top.Name,
		Executor:       exec,
	}
}

// KeyForWorkload builds the cache key for a non-GLM workload from its
// kind, task name, dataset identity and shape statistics.
func KeyForWorkload(wl core.Workload, top numa.Topology, exec core.ExecutorKind) PlanKey {
	return PlanKey{
		Workload: wl.Kind(),
		Model:    wl.Name(),
		Dataset:  wl.DatasetName(),
		Rows:     wl.Units(),
		Cols:     wl.Dim(),
		NNZ:      wl.DataNNZ(),
		Machine:  top.Name,
		Executor: exec,
	}
}

// PlanCacheStats is a point-in-time view of cache effectiveness.
type PlanCacheStats struct {
	// Size is the number of cached plans; Capacity is the size cap.
	Size     int `json:"size"`
	Capacity int `json:"capacity"`
	// Hits and Misses count lookups since construction.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts entries dropped by the size cap (least recently
	// used first); Invalidations counts entries dropped because a
	// feedback update flipped the optimizer's winner.
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	// Generation increments on every invalidation: entries stored
	// before the latest winner flip belong to an older generation, and
	// the counter makes feedback-driven churn visible even when the
	// re-planned winner lands back in the cache immediately.
	Generation uint64 `json:"generation"`
}

// defaultPlanCacheCap bounds the cache. Keys are per task/dataset/
// machine/executor, so even a daemon cycling every bundled combination
// stays far below it; the cap exists so an adversarial request stream
// (many machines × datasets) cannot grow the map without bound.
const defaultPlanCacheCap = 256

// planEntry is one cached plan with its recency clock and the cache
// generation it was stored under.
type planEntry struct {
	plan core.Plan
	last int64
	gen  uint64
}

// PlanCache memoises cost-based optimizer output. It is bounded (LRU
// eviction at the size cap) and generational: Invalidate drops an
// entry whose winner a feedback update flipped and advances the
// generation counter. It is safe for concurrent use by every scheduler
// worker.
type PlanCache struct {
	mu            sync.Mutex
	plans         map[PlanKey]*planEntry
	cap           int
	tick          int64
	hits          int64
	misses        int64
	evictions     int64
	invalidations int64
	gen           uint64
}

// NewPlanCache returns an empty cache with the default size cap.
func NewPlanCache() *PlanCache { return NewPlanCacheSize(0) }

// NewPlanCacheSize returns an empty cache capped at max entries;
// max <= 0 means the default.
func NewPlanCacheSize(max int) *PlanCache {
	if max <= 0 {
		max = defaultPlanCacheCap
	}
	return &PlanCache{plans: map[PlanKey]*planEntry{}, cap: max}
}

// Lookup returns the cached plan for the key, counting a hit or miss
// and refreshing the entry's recency.
func (c *PlanCache) Lookup(key PlanKey) (core.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.plans[key]
	if !ok {
		c.misses++
		return core.Plan{}, false
	}
	c.hits++
	c.tick++
	e.last = c.tick
	return e.plan, true
}

// Peek returns the cached plan without touching the hit/miss counters
// or recency — the re-planning path's read, which must not inflate the
// cache-effectiveness statistics it is auditing.
func (c *PlanCache) Peek(key PlanKey) (core.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.plans[key]
	if !ok {
		return core.Plan{}, false
	}
	return e.plan, true
}

// Store records the optimizer's plan for the key, evicting the least
// recently used entry if the cache is at capacity.
func (c *PlanCache) Store(key PlanKey, plan core.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++
	if e, ok := c.plans[key]; ok {
		e.plan = plan
		e.last = c.tick
		e.gen = c.gen
		return
	}
	if len(c.plans) >= c.cap {
		var victim PlanKey
		oldest := int64(0)
		first := true
		for k, e := range c.plans {
			if first || e.last < oldest {
				victim, oldest, first = k, e.last, false
			}
		}
		delete(c.plans, victim)
		c.evictions++
	}
	c.plans[key] = &planEntry{plan: plan, last: c.tick, gen: c.gen}
}

// Invalidate drops the key's entry because a feedback update flipped
// the optimizer's winner, advancing the cache generation. Reports
// whether an entry was present.
func (c *PlanCache) Invalidate(key PlanKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.plans[key]; !ok {
		return false
	}
	delete(c.plans, key)
	c.invalidations++
	c.gen++
	return true
}

// Stats returns current cache statistics.
func (c *PlanCache) Stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{
		Size:          len(c.plans),
		Capacity:      c.cap,
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Generation:    c.gen,
	}
}
