package serve

import (
	"sync"

	"dimmwitted/internal/core"
	"dimmwitted/internal/data"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

// PlanKey identifies an optimizer decision. The cost formulas read
// aggregate statistics (row/column counts, nonzero volume) *and* the
// per-row nonzero distribution (Σnᵢ² in PaperCost), so aggregate
// stats alone cannot key the cache: two datasets with equal shape but
// different skew may deserve different plans. The dataset's registry
// name pins the distribution (registered datasets are deterministic);
// the aggregate stats guard against a name being re-registered with
// different content. The workload kind is part of the key: GLM
// datasets, factor graphs and image corpora live in separate
// registries, so a Gibbs job must never hit a cached GLM plan (or vice
// versa) just because the dataset names collide.
type PlanKey struct {
	// Workload is the workload family the plan was optimized for.
	Workload core.WorkloadKind
	// Model is the task's short name (the spec for GLM; "gibbs"/"nn").
	Model string
	// Dataset is the registry name, which determines the full nonzero
	// distribution the cost model reads.
	Dataset string
	// Rows, Cols and NNZ are the data shape statistics: rows/columns/
	// nonzeros for GLM, units/state-dimension/incidences otherwise.
	Rows, Cols int
	NNZ        int64
	// Task distinguishes GLM datasets with equal shapes but different
	// label semantics; empty for other workloads.
	Task string
	// Machine is the topology name (alpha and core counts).
	Machine string
	// Executor is the requested execution backend: it narrows the
	// access methods the optimizer may price (parallel is row-wise
	// only), so the same task can cache different plans per backend.
	Executor core.ExecutorKind
}

// KeyFor builds the cache key for a GLM spec/dataset/topology/executor
// quadruple.
func KeyFor(spec model.Spec, ds *data.Dataset, top numa.Topology, exec core.ExecutorKind) PlanKey {
	return PlanKey{
		Workload: core.WorkloadGLM,
		Model:    spec.Name(),
		Dataset:  ds.Name,
		Rows:     ds.Rows(),
		Cols:     ds.Cols(),
		NNZ:      ds.NNZ(),
		Task:     ds.Task.String(),
		Machine:  top.Name,
		Executor: exec,
	}
}

// KeyForWorkload builds the cache key for a non-GLM workload from its
// kind, task name, dataset identity and shape statistics.
func KeyForWorkload(wl core.Workload, top numa.Topology, exec core.ExecutorKind) PlanKey {
	return PlanKey{
		Workload: wl.Kind(),
		Model:    wl.Name(),
		Dataset:  wl.DatasetName(),
		Rows:     wl.Units(),
		Cols:     wl.Dim(),
		NNZ:      wl.DataNNZ(),
		Machine:  top.Name,
		Executor: exec,
	}
}

// PlanCacheStats is a point-in-time view of cache effectiveness.
type PlanCacheStats struct {
	// Size is the number of cached plans.
	Size int `json:"size"`
	// Hits and Misses count lookups since construction.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// PlanCache memoises cost-based optimizer output. It is safe for
// concurrent use by every scheduler worker.
type PlanCache struct {
	mu     sync.Mutex
	plans  map[PlanKey]core.Plan
	hits   int64
	misses int64
}

// NewPlanCache returns an empty cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{plans: map[PlanKey]core.Plan{}}
}

// Lookup returns the cached plan for the key, counting a hit or miss.
func (c *PlanCache) Lookup(key PlanKey) (core.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	plan, ok := c.plans[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return plan, ok
}

// Store records the optimizer's plan for the key.
func (c *PlanCache) Store(key PlanKey, plan core.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.plans[key] = plan
}

// Stats returns current cache statistics.
func (c *PlanCache) Stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{Size: len(c.plans), Hits: c.hits, Misses: c.misses}
}
