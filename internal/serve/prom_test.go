package serve

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

var (
	helpRe  = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	typeRe  = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
	valueRe = regexp.MustCompile(`^(NaN|[+-]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$`)
)

// parseSample splits a sample line into name, label body and value
// text. Label VALUES may contain any characters (the route label holds
// "{id}"), so the label block ends at the last `"}` before the value,
// not at the first close brace.
func parseSample(line string) (name, labels, value string, ok bool) {
	name = nameRe.FindString(line)
	if name == "" {
		return "", "", "", false
	}
	rest := line[len(name):]
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, `"}`)
		if end < 0 {
			return "", "", "", false
		}
		labels = rest[1 : end+1]
		rest = rest[end+2:]
	}
	if !strings.HasPrefix(rest, " ") {
		return "", "", "", false
	}
	value = rest[1:]
	return name, labels, value, valueRe.MatchString(value)
}

// parseExposition validates the Prometheus text format line by line
// and returns every sample as name -> labels -> value. It enforces the
// format's structural rules: HELP/TYPE pairs announce a family before
// its samples, sample lines parse, and label pairs are well-formed.
func parseExposition(t *testing.T, body string) map[string]map[string]float64 {
	t.Helper()
	samples := map[string]map[string]float64{}
	announced := map[string]bool{}
	var lastHelp string
	sc := bufio.NewScanner(strings.NewReader(body))
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "# HELP ") {
			m := helpRe.FindStringSubmatch(text)
			if m == nil {
				t.Fatalf("line %d: malformed HELP: %q", line, text)
			}
			lastHelp = m[1]
			continue
		}
		if strings.HasPrefix(text, "# TYPE ") {
			m := typeRe.FindStringSubmatch(text)
			if m == nil {
				t.Fatalf("line %d: malformed TYPE: %q", line, text)
			}
			if m[1] != lastHelp {
				t.Fatalf("line %d: TYPE %s not preceded by its HELP (last HELP %s)", line, m[1], lastHelp)
			}
			announced[m[1]] = true
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue // comment
		}
		name, labels, value, ok := parseSample(text)
		if !ok {
			t.Fatalf("line %d: malformed sample: %q", line, text)
		}
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !announced[name] && !announced[family] {
			t.Fatalf("line %d: sample %s has no preceding TYPE", line, name)
		}
		if labels != "" {
			for _, pair := range splitLabels(labels) {
				if !labelRe.MatchString(pair) {
					t.Fatalf("line %d: malformed label pair %q in %q", line, pair, text)
				}
			}
		}
		v, err := strconv.ParseFloat(strings.Replace(value, "Inf", "inf", 1), 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", line, value, err)
		}
		if samples[name] == nil {
			samples[name] = map[string]float64{}
		}
		if _, dup := samples[name][labels]; dup {
			t.Fatalf("line %d: duplicate series %s{%s}", line, name, labels)
		}
		samples[name][labels] = v
	}
	return samples
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// TestMetricsPrometheusExposition drives real traffic through a traced
// job and checks /metrics parses as valid Prometheus text exposition
// with the families the scrape config depends on, and that histogram
// series obey the format's invariants (cumulative monotone buckets,
// +Inf bucket equal to _count).
func TestMetricsPrometheusExposition(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	client := ts.Client()

	id := traceJob(t, client, ts.URL, 5)
	if st := pollJob(t, client, ts.URL, id); st.State != "done" {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}

	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q, want text/plain exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, string(raw))

	for _, want := range []string{
		"dimmwitted_uptime_seconds",
		"dimmwitted_train_requests_total",
		"dimmwitted_jobs_done_total",
		"dimmwitted_gibbs_samples_total",
		"dimmwitted_jobs",
		"dimmwitted_http_request_duration_seconds_bucket",
		"dimmwitted_engine_phase_seconds_total",
		"dimmwitted_engine_phase_spans_total",
		"dimmwitted_plan_cache_evictions_total",
		"dimmwitted_plan_cache_invalidations_total",
		"dimmwitted_optimizer_observations_total",
		"dimmwitted_optimizer_keys",
		"dimmwitted_optimizer_explorations_total",
	} {
		if len(samples[want]) == 0 {
			t.Fatalf("exposition is missing %s", want)
		}
	}
	if got := samples["dimmwitted_jobs_done_total"][""]; got < 1 {
		t.Fatalf("jobs_done_total = %v, want >= 1", got)
	}
	// The finished job's epochs must have landed in the feedback store.
	if got := samples["dimmwitted_optimizer_observations_total"][""]; got < 1 {
		t.Fatalf("optimizer_observations_total = %v, want >= 1 after a finished job", got)
	}

	// The traced parallel job must have fed the engine phase timers.
	var phaseSeries int
	for labels, v := range samples["dimmwitted_engine_phase_seconds_total"] {
		if strings.Contains(labels, `executor="parallel"`) {
			phaseSeries++
			if v < 0 {
				t.Fatalf("negative phase seconds: %s %v", labels, v)
			}
		}
	}
	if phaseSeries == 0 {
		t.Fatal("no parallel-executor phase timers after a traced parallel job")
	}

	// Histogram invariants per route: buckets cumulative and monotone
	// in le, +Inf bucket == _count, _sum present.
	buckets := samples["dimmwitted_http_request_duration_seconds_bucket"]
	counts := samples["dimmwitted_http_request_duration_seconds_count"]
	sums := samples["dimmwitted_http_request_duration_seconds_sum"]
	if len(counts) == 0 || len(sums) == 0 {
		t.Fatal("histogram missing _count or _sum series")
	}
	type rb struct {
		le    float64
		count float64
	}
	byRoute := map[string][]rb{}
	for labels, v := range buckets {
		route, le := "", math.NaN()
		for _, pair := range splitLabels(labels) {
			k, val, _ := strings.Cut(pair, "=")
			val = strings.Trim(val, `"`)
			switch k {
			case "route":
				route = val
			case "le":
				if val == "+Inf" {
					le = math.Inf(1)
				} else {
					le, _ = strconv.ParseFloat(val, 64)
				}
			}
		}
		byRoute[route] = append(byRoute[route], rb{le, v})
	}
	for route, bs := range byRoute {
		var total float64
		var maxLE float64 = math.Inf(-1)
		var inf float64 = -1
		for _, b := range bs {
			if math.IsInf(b.le, 1) {
				inf = b.count
			} else if b.le > maxLE {
				maxLE, total = b.le, b.count
			}
		}
		if inf < 0 {
			t.Fatalf("route %q has no +Inf bucket", route)
		}
		if total > inf {
			t.Fatalf("route %q: finite bucket %v exceeds +Inf bucket %v", route, total, inf)
		}
		if c, ok := counts[`route="`+route+`"`]; !ok || c != inf {
			t.Fatalf("route %q: _count %v != +Inf bucket %v", route, c, inf)
		}
	}
}

// TestMetricsScrapeStability scrapes /metrics repeatedly while jobs
// run; every scrape must parse.
func TestMetricsScrapeStability(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	client := ts.Client()
	id := traceJob(t, client, ts.URL, 20)
	deadline := time.Now().Add(waitTimeout)
	for i := 0; ; i++ {
		resp, err := client.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		parseExposition(t, string(raw))
		var st JobStatus
		doJSON(t, client, http.MethodGet, ts.URL+"/v1/jobs/"+id, nil, &st)
		if st.State == "done" {
			break
		}
		if st.State == "failed" || st.State == "cancelled" {
			t.Fatalf("job ended %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s after %v", st.State, waitTimeout)
		}
	}
}
