package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dimmwitted/internal/ckpt"
	"dimmwitted/internal/core"
	"dimmwitted/internal/data"
	"dimmwitted/internal/factor"
	"dimmwitted/internal/metrics"
	"dimmwitted/internal/model"
	"dimmwitted/internal/nn"
	"dimmwitted/internal/numa"
	"dimmwitted/internal/trace"
	"dimmwitted/internal/tune"
)

// ErrJobActive reports a resume attempt on a job that is still queued
// or running; match it with errors.Is.
var ErrJobActive = errors.New("serve: job is still active")

// JobState is the lifecycle state of a training job.
type JobState int

const (
	// JobQueued means the job waits for a scheduler slot.
	JobQueued JobState = iota
	// JobRunning means a worker is executing epochs.
	JobRunning
	// JobDone means training finished and the model is registered.
	JobDone
	// JobFailed means the job ended with an error.
	JobFailed
	// JobCancelled means the job was cancelled before completion.
	JobCancelled
)

// maxHistoryPoints bounds a job's stored convergence curve; beyond it
// the sampling stride doubles (see job.histEvery).
const maxHistoryPoints = 1024

// String implements fmt.Stringer.
func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	case JobCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("JobState(%d)", int(s))
	}
}

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// TrainRequest describes one training job. Zero-valued knobs take
// scheduler defaults.
type TrainRequest struct {
	// Workload selects the workload family: "glm" (default; a model
	// spec over a data matrix), "gibbs" (sampling over a registered
	// factor graph) or "nn" (network training over a registered image
	// dataset).
	Workload string `json:"workload,omitempty"`
	// Model is the GLM spec's short name ("svm", "lr", ...). Required
	// for glm jobs; must be empty for gibbs/nn jobs, whose task is the
	// workload itself.
	Model string `json:"model,omitempty"`
	// Dataset is a registered name in the workload's registry: a data
	// matrix ("reuters", ...) for glm, a factor graph ("paleo",
	// "cycle5", ...) for gibbs, an image corpus ("mnist", ...) for nn.
	// Required.
	Dataset string `json:"dataset"`
	// Machine overrides the scheduler's topology ("local2", ...).
	Machine string `json:"machine,omitempty"`
	// Access forces an access method ("row", "col", "ctr") instead of
	// the cost-based optimizer's choice; glm only (gibbs is inherently
	// column-to-row, nn row-wise). Forced plans bypass the plan cache;
	// the engine rejects unsupported spec/access pairs.
	Access string `json:"access,omitempty"`
	// Executor selects the execution backend: "simulated" (default;
	// deterministic interleaver on the NUMA cost simulator) or
	// "parallel" (real goroutine workers — Hogwild delta-flushing for
	// glm/nn, concurrent Hogwild!-Gibbs sweeps for gibbs — wall-clock
	// epochs, cancellable mid-epoch).
	Executor string `json:"executor,omitempty"`
	// TargetLoss stops training early once reached; 0 runs MaxEpochs.
	// Ignored for gibbs jobs, whose quality metric (marginal entropy)
	// is not a convergence target — sampling runs its sweep budget.
	TargetLoss float64 `json:"target_loss,omitempty"`
	// MaxEpochs bounds the run (epochs for glm/nn, sweeps per chain
	// for gibbs); 0 means 50.
	MaxEpochs int `json:"max_epochs,omitempty"`
	// Workers overrides the plan's worker count; 0 means all cores.
	Workers int `json:"workers,omitempty"`
	// Step overrides the initial step size; 0 means the model default.
	Step float64 `json:"step,omitempty"`
	// Seed drives traversal randomness; 0 means the engine default.
	Seed int64 `json:"seed,omitempty"`
	// ModelRep forces a model replication strategy ("percore",
	// "pernode", "permachine") instead of the optimizer's choice.
	// Requires Access (a forced plan is all-or-nothing). "percluster"
	// is rejected here: one server cannot span machines — submit to a
	// cluster coordinator (cmd/dwcoord) instead.
	ModelRep string `json:"model_rep,omitempty"`
	// DataRep forces a data replication strategy ("sharding",
	// "fullreplication", "importance"). Requires Access.
	DataRep string `json:"data_rep,omitempty"`
	// StepDecay overrides the per-epoch step decay factor; 0 means the
	// model default. Requires Access.
	StepDecay float64 `json:"step_decay,omitempty"`
	// FixedOrder replaces the per-epoch random traversal permutation
	// with the identity order, making the trajectory independent of
	// Seed. Cluster peers train with it so a sharded run is bitwise
	// comparable to a single-node run on the union. Requires Access.
	FixedOrder bool `json:"fixed_order,omitempty"`
	// Trace enables the engine's span recorder for this job: phase
	// breakdowns appear in the job status, the full span journal at
	// GET /v1/jobs/{id}/trace, and the job's phase timers feed the
	// process-wide engine counters on /metrics. Not a plan knob — a
	// warm-started job may be traced even though its plan is pinned.
	Trace bool `json:"trace,omitempty"`
	// WarmStart resumes training from a stored snapshot: a registry
	// model ID or a checkpointed job ID. The job runs the snapshot's
	// plan (re-validated against the restored state), so the plan knobs
	// — machine, access, executor, workers, step, seed — must be left
	// empty; workload, model and dataset may be given but must match
	// the snapshot. MaxEpochs is the total epoch target: a warm-started
	// job trains until the engine's epoch counter (which resumes from
	// the snapshot) reaches it, so snapshot epoch k + max_epochs N runs
	// N−k more epochs and reproduces an uninterrupted N-epoch run.
	WarmStart string `json:"warm_start,omitempty"`
	// Online keeps the job training as its dataset grows: between
	// epochs the engine adopts any newer published view of the (stream)
	// dataset, and every PublishEvery epochs a candidate model is
	// shadow-evaluated on the view's held-out tail and canary-promoted
	// — swapped live through the registry's atomic pointer — only if it
	// does not regress the live version. GLM only, row-wise access,
	// specs without per-row auxiliary state (svm, lr).
	Online bool `json:"online,omitempty"`
	// PublishEvery is the online publication cadence in epochs; 0
	// means 5. Ignored unless Online.
	PublishEvery int `json:"publish_every,omitempty"`
	// ShadowTail is the held-out tail fraction shadow evaluation scores
	// candidates on; 0 means 0.2. Ignored unless Online.
	ShadowTail float64 `json:"shadow_tail,omitempty"`
}

// OnlineStatus reports an online job's streaming state.
type OnlineStatus struct {
	// Rows and DatasetVersion identify the dataset view the engine is
	// currently training on (the ingest high-water mark).
	Rows           int    `json:"rows"`
	DatasetVersion uint64 `json:"dataset_version"`
	// VersionsPublished counts candidate models built and shadow-
	// evaluated; VersionsPromoted the ones that passed the gate and
	// went live; VersionsRolledBack the regressing canaries rejected.
	VersionsPublished  int64 `json:"versions_published"`
	VersionsPromoted   int64 `json:"versions_promoted"`
	VersionsRolledBack int64 `json:"versions_rolled_back"`
	// LastCandidateLoss and LastLiveLoss are the most recent shadow
	// evaluation's held-out tail losses (live is zero until a version
	// has been promoted).
	LastCandidateLoss float64 `json:"last_candidate_loss,omitempty"`
	LastLiveLoss      float64 `json:"last_live_loss,omitempty"`
	// LastPublishMs is the latest promotion's publish-to-live latency:
	// candidate snapshot through shadow eval to the atomic swap.
	LastPublishMs float64 `json:"last_publish_ms,omitempty"`
}

// ProgressPoint is one epoch of a job's convergence curve.
type ProgressPoint struct {
	// Epoch is the 1-based epoch number.
	Epoch int `json:"epoch"`
	// Loss is the combined-model objective after the epoch.
	Loss float64 `json:"loss"`
	// SimSeconds is cumulative simulated time in seconds (zero for
	// parallel-executor jobs).
	SimSeconds float64 `json:"sim_seconds"`
	// WallSeconds is cumulative measured wall-clock training time in
	// seconds — the parallel executor's time axis.
	WallSeconds float64 `json:"wall_seconds"`
}

// JobStatus is a point-in-time copy of a job's externally visible
// state.
type JobStatus struct {
	// ID is the job identifier ("job-1", ...).
	ID string `json:"id"`
	// State is the lifecycle state ("queued", "running", ...).
	State string `json:"state"`
	// Request echoes the submitted request.
	Request TrainRequest `json:"request"`
	// Plan renders the executed plan once the job starts.
	Plan string `json:"plan,omitempty"`
	// Epoch and Loss are the latest progress from the engine.
	Epoch int     `json:"epoch"`
	Loss  float64 `json:"loss"`
	// Converged reports whether TargetLoss was reached.
	Converged bool `json:"converged"`
	// Workload is the job's workload family ("glm", "gibbs", "nn").
	Workload string `json:"workload"`
	// Metrics carries workload-appropriate quality metrics from the
	// latest epoch: nn reports "accuracy", gibbs reports marginal
	// summaries ("mean_marginal", "polarization"); empty for glm, whose
	// loss is the whole story.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Marginals carries the pooled per-variable P(x=1) estimate of a
	// finished gibbs job. Only the per-job detail view includes it —
	// the jobs listing omits the (per-variable-sized) vector and keeps
	// the Metrics summaries.
	Marginals []float64 `json:"marginals,omitempty"`
	// Error carries the failure message for failed jobs.
	Error string `json:"error,omitempty"`
	// SimSeconds is the cumulative simulated training time (zero for
	// parallel-executor jobs).
	SimSeconds float64 `json:"sim_seconds"`
	// WallSeconds is the cumulative measured wall-clock training time.
	WallSeconds float64 `json:"wall_seconds"`
	// History is the per-epoch convergence curve.
	History []ProgressPoint `json:"history,omitempty"`
	// Trace is the engine phase breakdown of a traced job (request had
	// "trace": true); nil otherwise. The full span journal is served by
	// GET /v1/jobs/{id}/trace.
	Trace *trace.Summary `json:"trace,omitempty"`
	// Online is the streaming state of an online job: the adopted
	// dataset view and the shadow/canary promotion counters. Nil for
	// static jobs.
	Online *OnlineStatus `json:"online,omitempty"`
	// PlanSource reports how the executed plan was chosen: "static"
	// (word-cost prior), "measured" (feedback overrode the prior),
	// "explore" (epsilon draw ran the decision's runner-up), "cached"
	// (plan cache hit), "forced" (request's access override) or "warm"
	// (snapshot's pinned plan).
	PlanSource string `json:"plan_source,omitempty"`
	// PredictedSecondsPerEpoch is the feedback store's cost forecast for
	// the executed plan at planning time; 0 when the plan's observation
	// key had no history. Compare with ObservedSecondsPerEpoch to audit
	// the self-tuning optimizer's accuracy.
	PredictedSecondsPerEpoch float64 `json:"predicted_seconds_per_epoch,omitempty"`
	// ObservedSecondsPerEpoch is the job's measured wall clock per epoch
	// it ran itself (warm-start inherited epochs excluded); 0 until the
	// first epoch finishes.
	ObservedSecondsPerEpoch float64 `json:"observed_seconds_per_epoch,omitempty"`
	// Enqueued, Started and Finished are wall-clock timestamps;
	// Started/Finished are zero until reached.
	Enqueued time.Time `json:"enqueued"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
}

// job is the scheduler's internal record. All mutable fields are
// guarded by the owning scheduler's mutex.
type job struct {
	id   string
	req  TrainRequest
	kind core.WorkloadKind
	// wl is the job's workload; a Workload binds to one engine, so it
	// is built per job at submission.
	wl core.Workload
	// spec and ds are set for glm jobs only (plan-cache keys, registry
	// publication).
	spec model.Spec
	ds   *data.Dataset
	top  numa.Topology
	// warm is the snapshot a warm-started or resumed job restores
	// before its first epoch; nil for cold starts.
	warm *core.Snapshot
	// rec is the job's span recorder (nil unless the request asked for
	// tracing). Set once before the first epoch runs; the recorder's own
	// methods are concurrency-safe, so status snapshots read it live.
	rec *trace.Recorder
	// resumedFrom is the checkpointed job id a Resume revived; its
	// checkpoints are superseded (and deleted) when this job completes.
	// Empty for cold starts and registry warm starts.
	resumedFrom string
	ctx         context.Context
	cancel      context.CancelFunc
	done        chan struct{}
	state       JobState
	plan        core.Plan
	planned     bool
	// planSource records how the executed plan was chosen ("static",
	// "measured", "explore", "cached", "forced", "warm") and predicted
	// the feedback store's cost forecast for it at planning time (0
	// when the plan's key had no observations). tuneKey is the
	// observation key epochs record under; it is written before the
	// first epoch and read only by the running worker.
	planSource string
	predicted  float64
	tuneKey    tune.Key
	hasTuneKey bool
	// epochsRun counts epochs this job executed itself and ownWall their
	// wall clock (a warm start's inherited epochs and time are excluded
	// from both) — the observed seconds-per-epoch the status reports.
	epochsRun int
	ownWall   time.Duration
	epoch     int
	loss      float64
	conv      bool
	err       string
	qmetrics  map[string]float64
	margins   []float64
	simTime   time.Duration
	wallTime  time.Duration
	curve     metrics.Curve
	enqueued  time.Time
	started   time.Time
	finished  time.Time
	// handle and curView are set for online glm jobs: handle is the
	// growable dataset, curView the published view the engine currently
	// trains on (replaced on adopt). online accumulates the streaming
	// progress the status reports.
	handle  *data.Handle
	curView *data.Dataset
	online  onlineProgress
}

// onlineProgress is an online job's streaming state, guarded by the
// scheduler's mutex like the other progress fields.
type onlineProgress struct {
	rows        int
	version     uint64
	published   int64
	promoted    int64
	rolledBack  int64
	candLoss    float64
	liveLoss    float64
	lastPublish time.Duration
}

// Options configures a scheduler (and, through it, a server).
type Options struct {
	// Machine is the default simulated topology; zero means local2.
	Machine numa.Topology
	// Slots is the worker-pool size — how many training jobs run
	// concurrently. 0 derives it from the topology: one slot per
	// simulated NUMA socket, the same locality-group granularity the
	// engine uses for PerNode replication.
	Slots int
	// QueueDepth bounds the number of waiting jobs; 0 means 256.
	QueueDepth int
	// MaxJobHistory bounds how many *terminal* job records are
	// retained; the oldest are evicted first (their registered models
	// stay). 0 means 1000; negative disables eviction.
	MaxJobHistory int
	// Counters receives serving metrics; nil allocates a private set.
	Counters *metrics.ServeCounters
	// Checkpoints is the durable job-checkpoint store backing crash
	// resume (Resume, POST /v1/jobs/{id}/resume); nil disables job
	// checkpointing.
	Checkpoints *ckpt.Store
	// Models persists the registry across restarts; nil keeps trained
	// models in memory only.
	Models *ckpt.Store
	// CheckpointEvery snapshots every running job's engine state after
	// each N completed epochs (requires Checkpoints); 0 disables.
	CheckpointEvery int
	// BatchWindow enables request micro-batching on POST /v1/predict:
	// concurrent predictions for the same model are coalesced into one
	// batched scorer call, gathered for up to this window after the
	// first request arrives. 0 disables batching (requests score
	// directly, the default). Server-level; schedulers ignore it.
	BatchWindow time.Duration
	// BatchMax caps the coalesced examples per flush; 0 means 256.
	BatchMax int
	// PredictQueue bounds the coalescer's admission queue; a full
	// queue answers 429 with Retry-After instead of stacking latency.
	// 0 means 1024. Ignored unless BatchWindow is set.
	PredictQueue int
	// Feedback is the self-tuning optimizer's observation store: every
	// finished epoch records its wall clock against the executed plan's
	// axes, and once a key crosses the store's observation threshold
	// the measured cost overrides the static prior in plan choice. Nil
	// builds a private in-memory store (the loop is on by default);
	// pass a store to share it or to attach durable persistence.
	Feedback *tune.Store
	// DisableFeedback turns the feedback loop off entirely: plans come
	// from the static cost model alone, epochs record nothing, and the
	// plan cache never invalidates on a winner flip.
	DisableFeedback bool
	// AutoBatch enables the AIMD controller that tunes the predict
	// coalescer's flush window and batch cap from live p95 latency and
	// the achieved coalescing factor. Requires BatchWindow; see
	// BatchTunerConfig for the bounds. Server-level.
	AutoBatch bool
	// AutoBatchConfig bounds and paces the controller; zero values take
	// the defaults documented on BatchTunerConfig. Ignored unless
	// AutoBatch is set.
	AutoBatchConfig BatchTunerConfig
	// MaxBodyBytes caps the request body every POST handler will read;
	// an oversized body answers 413 instead of exhausting memory. 0
	// means 64 MiB; negative disables the cap. Server-level.
	MaxBodyBytes int64
}

// OpenStores opens the serve layer's three durability namespaces under
// dir — "jobs" for mid-training checkpoints, "models" for the
// persistent registry, "tune" for the self-tuning optimizer's learned
// costs — creating the directories as needed.
func OpenStores(dir string) (jobs, models, tuner *ckpt.Store, err error) {
	if jobs, err = ckpt.Open(filepath.Join(dir, "jobs"), ckpt.Options{}); err != nil {
		return nil, nil, nil, err
	}
	if models, err = ckpt.Open(filepath.Join(dir, "models"), ckpt.Options{}); err != nil {
		return nil, nil, nil, err
	}
	if tuner, err = ckpt.Open(filepath.Join(dir, "tune"), ckpt.Options{}); err != nil {
		return nil, nil, nil, err
	}
	return jobs, models, tuner, nil
}

// normalize fills defaults.
func (o Options) normalize() Options {
	if o.Machine.Nodes == 0 {
		o.Machine = numa.Local2
	}
	if o.Slots == 0 {
		o.Slots = o.Machine.Nodes
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 256
	}
	if o.MaxJobHistory == 0 {
		o.MaxJobHistory = 1000
	}
	if o.Counters == nil {
		o.Counters = &metrics.ServeCounters{}
	}
	if o.Feedback == nil && !o.DisableFeedback {
		o.Feedback = tune.NewStore(tune.Options{})
	}
	if o.DisableFeedback {
		o.Feedback = nil
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = 64 << 20
	}
	return o
}

// Scheduler runs training jobs asynchronously on a fixed worker pool
// and feeds completed models into a Registry. All methods are safe for
// concurrent use.
type Scheduler struct {
	opts     Options
	counters *metrics.ServeCounters
	plans    *PlanCache
	models   *Registry
	// feedback is the self-tuning optimizer's observation store; nil
	// when Options.DisableFeedback turned the loop off.
	feedback *tune.Store

	queue chan *job
	wg    sync.WaitGroup

	// phases aggregates every traced job's span totals per executor
	// kind — the process-wide engine phase timers behind /metrics.
	// Indexed by core.ExecutorKind; the zero values are ready.
	phases [2]trace.PhaseTotals

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	nextID int
	closed bool
}

// NewScheduler builds a scheduler and starts its worker pool.
func NewScheduler(opts Options) *Scheduler {
	opts = opts.normalize()
	s := &Scheduler{
		opts:     opts,
		counters: opts.Counters,
		plans:    NewPlanCache(),
		models:   NewRegistry(),
		feedback: opts.Feedback,
		queue:    make(chan *job, opts.QueueDepth),
		jobs:     map[string]*job{},
	}
	if opts.Models != nil {
		s.models.Persist(opts.Models, opts.Counters)
	}
	// Job IDs double as durable store keys, so a restarted daemon must
	// not reissue ids a previous process left in the stores — a reused
	// id would overwrite the dead process's models and delete its
	// checkpoints on completion.
	s.nextID = maxStoredJobID(opts.Checkpoints, opts.Models)
	for i := 0; i < opts.Slots; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.run(j)
			}
		}()
	}
	return s
}

// maxStoredJobID scans the durable stores for "job-<n>" ids and
// returns the highest n, so a fresh scheduler's counter starts past
// every id a previous process used. Non-numeric ids are ignored; scan
// errors degrade to 0 (an empty or brand-new store).
func maxStoredJobID(stores ...*ckpt.Store) int {
	max := 0
	for _, st := range stores {
		if st == nil {
			continue
		}
		ids, err := st.IDs()
		if err != nil {
			continue
		}
		for _, id := range ids {
			var n int
			if _, err := fmt.Sscanf(id, "job-%d", &n); err == nil && n > max {
				max = n
			}
		}
	}
	return max
}

// Models returns the registry completed jobs publish into.
func (s *Scheduler) Models() *Registry { return s.models }

// Plans returns the shared plan cache.
func (s *Scheduler) Plans() *PlanCache { return s.plans }

// Feedback returns the self-tuning optimizer's observation store, or
// nil when the feedback loop is disabled.
func (s *Scheduler) Feedback() *tune.Store { return s.feedback }

// Counters returns the scheduler's serving counters.
func (s *Scheduler) Counters() *metrics.ServeCounters { return s.counters }

// Slots returns the worker-pool size.
func (s *Scheduler) Slots() int { return s.opts.Slots }

// PhaseTotals returns the process-wide engine phase timers for one
// executor kind, aggregated across every traced job.
func (s *Scheduler) PhaseTotals(kind core.ExecutorKind) *trace.PhaseTotals {
	if int(kind) < 0 || int(kind) >= len(s.phases) {
		return nil
	}
	return &s.phases[kind]
}

// TraceRecorder returns a job's span recorder. ok reports whether the
// job exists; the recorder is nil for untraced jobs.
func (s *Scheduler) TraceRecorder(id string) (rec *trace.Recorder, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, found := s.jobs[id]
	if !found {
		return nil, false
	}
	return j.rec, true
}

// buildWorkload resolves the request's workload, task and dataset into
// a fresh core.Workload (one per job: a workload binds to one engine).
// The spec and dataset returns are non-nil for glm jobs only.
func buildWorkload(kind core.WorkloadKind, req TrainRequest) (core.Workload, model.Spec, *data.Dataset, error) {
	switch kind {
	case core.WorkloadGLM:
		spec, err := model.ByName(req.Model)
		if err != nil {
			return nil, nil, nil, err
		}
		ds, err := data.ByName(req.Dataset)
		if err != nil {
			return nil, nil, nil, err
		}
		return core.NewGLM(spec, ds), spec, ds, nil
	case core.WorkloadGibbs:
		if req.Model != "" {
			return nil, nil, nil, fmt.Errorf("serve: gibbs jobs take no model name (the workload is the task), got %q", req.Model)
		}
		g, err := factor.GraphByName(req.Dataset)
		if err != nil {
			return nil, nil, nil, err
		}
		return factor.NewWorkload(g), nil, nil, nil
	case core.WorkloadNN:
		if req.Model != "" {
			return nil, nil, nil, fmt.Errorf("serve: nn jobs take no model name (the workload is the task), got %q", req.Model)
		}
		ds, sizes, err := nn.DatasetByName(req.Dataset)
		if err != nil {
			return nil, nil, nil, err
		}
		seed := req.Seed
		if seed == 0 {
			seed = 1
		}
		wl, err := nn.NewWorkload(ds, nn.WorkloadConfig{Sizes: sizes, Seed: seed})
		return wl, nil, nil, err
	default:
		return nil, nil, nil, fmt.Errorf("serve: unhandled workload %v", kind)
	}
}

// resolveWarmStart locates the snapshot behind a warm_start reference:
// a registry model (served or store-resident) or a checkpointed job. A
// checkpoint that exists but cannot be read (every generation corrupt)
// is reported as such and counted, not masked as a miss.
func (s *Scheduler) resolveWarmStart(id string) (core.Snapshot, error) {
	_, snap, err := s.models.Fetch(id)
	if err == nil {
		return snap, nil
	}
	if !errors.Is(err, ErrUnknownModel) {
		// The model exists but its store entry is unreadable; say so
		// (lookup already counted the checkpoint error).
		return core.Snapshot{}, fmt.Errorf("serve: warm_start %q: %w", id, err)
	}
	if s.opts.Checkpoints != nil {
		snap, _, _, err := s.opts.Checkpoints.Load(id)
		if err == nil {
			return snap, nil
		}
		if !errors.Is(err, os.ErrNotExist) {
			s.counters.CheckpointError()
			return core.Snapshot{}, fmt.Errorf("serve: warm_start %q: %w", id, err)
		}
	}
	return core.Snapshot{}, fmt.Errorf("serve: warm_start %q matches no registered model or job checkpoint", id)
}

// warmRequest reconciles a warm-start request with its snapshot: plan
// knobs must be unset (the job re-runs the snapshot's plan, which is
// what makes resumed epochs reproduce the source run), and the task
// identity — workload, model, dataset — may be given only if it
// matches what the snapshot was trained as.
func warmRequest(req TrainRequest, snap core.Snapshot) (TrainRequest, error) {
	type knob struct {
		name string
		set  bool
	}
	for _, k := range []knob{
		{"machine", req.Machine != ""},
		{"access", req.Access != ""},
		{"executor", req.Executor != ""},
		{"workers", req.Workers != 0},
		{"step", req.Step != 0},
		{"seed", req.Seed != 0},
		{"model_rep", req.ModelRep != ""},
		{"data_rep", req.DataRep != ""},
		{"step_decay", req.StepDecay != 0},
		{"fixed_order", req.FixedOrder},
	} {
		if k.set {
			return req, fmt.Errorf("serve: warm_start resumes the snapshot's plan; %s cannot be overridden", k.name)
		}
	}
	if req.Workload != "" && req.Workload != snap.Workload.String() {
		return req, fmt.Errorf("serve: warm_start %q is a %s snapshot, request says workload %q",
			req.WarmStart, snap.Workload, req.Workload)
	}
	wantModel := ""
	if snap.Workload == core.WorkloadGLM {
		wantModel = snap.Spec
	}
	if req.Model != "" && req.Model != wantModel {
		return req, fmt.Errorf("serve: warm_start %q was trained as %q, request says model %q",
			req.WarmStart, snap.Spec, req.Model)
	}
	if req.Dataset != "" && req.Dataset != snap.Dataset {
		return req, fmt.Errorf("serve: warm_start %q was trained on %q, request says dataset %q",
			req.WarmStart, snap.Dataset, req.Dataset)
	}
	req.Workload = snap.Workload.String()
	req.Model = wantModel
	req.Dataset = snap.Dataset
	return req, nil
}

// Submit validates a request, enqueues a job and returns its ID. The
// request fails fast on unknown workloads, models, datasets, machines
// or access methods, on warm_start conflicts, and on a full queue;
// execution errors surface as a Failed job instead.
func (s *Scheduler) Submit(req TrainRequest) (string, error) {
	var warm *core.Snapshot
	if req.WarmStart != "" {
		snap, err := s.resolveWarmStart(req.WarmStart)
		if err != nil {
			return "", err
		}
		warm = &snap
	}
	return s.submit(req, warm, "")
}

// submit is the shared enqueue path; warm (when non-nil) is the
// already-loaded snapshot behind req.WarmStart, so Resume hands over
// the exact generation whose metadata set the budget. resumedFrom is
// the checkpointed job id being revived (Resume only).
func (s *Scheduler) submit(req TrainRequest, warm *core.Snapshot, resumedFrom string) (string, error) {
	if warm != nil {
		var err error
		if req, err = warmRequest(req, *warm); err != nil {
			return "", err
		}
	}
	kind, err := core.WorkloadByName(req.Workload)
	if err != nil {
		return "", err
	}
	wl, spec, ds, err := buildWorkload(kind, req)
	if err != nil {
		return "", err
	}
	top := s.opts.Machine
	if req.Machine != "" {
		if top, err = numa.ByName(req.Machine); err != nil {
			return "", err
		}
	}
	if req.Access != "" {
		if kind != core.WorkloadGLM {
			return "", fmt.Errorf("serve: access is fixed per workload (%s); only glm jobs accept an override", kind)
		}
		if _, err := parseAccess(req.Access); err != nil {
			return "", err
		}
	}
	if req.ModelRep == "percluster" {
		return "", fmt.Errorf("serve: percluster replication spans machines; one server cannot run it — submit the job to a cluster coordinator (cmd/dwcoord)")
	}
	if req.ModelRep != "" || req.DataRep != "" || req.StepDecay != 0 || req.FixedOrder {
		// A forced plan is all-or-nothing: replication and ordering
		// knobs bypass the optimizer only alongside a forced access
		// method, never half-merged into a cost-based choice.
		if req.Access == "" {
			return "", fmt.Errorf("serve: model_rep/data_rep/step_decay/fixed_order force the plan and require access to be set too")
		}
		if req.ModelRep != "" {
			if _, err := parseModelRep(req.ModelRep); err != nil {
				return "", err
			}
		}
		if req.DataRep != "" {
			if _, err := parseDataRep(req.DataRep); err != nil {
				return "", err
			}
		}
		if req.StepDecay < 0 {
			return "", fmt.Errorf("serve: negative step_decay %g", req.StepDecay)
		}
	}
	if _, err := core.ExecutorByName(req.Executor); err != nil {
		return "", err
	}
	if req.MaxEpochs < 0 {
		return "", fmt.Errorf("serve: negative max_epochs %d", req.MaxEpochs)
	}
	if req.MaxEpochs == 0 {
		req.MaxEpochs = 50
	}

	var handle *data.Handle
	if req.Online {
		if kind != core.WorkloadGLM {
			return "", fmt.Errorf("serve: online mode is glm-only (got workload %s)", kind)
		}
		if req.PublishEvery < 0 {
			return "", fmt.Errorf("serve: negative publish_every %d", req.PublishEvery)
		}
		if req.ShadowTail < 0 || req.ShadowTail > 0.9 {
			return "", fmt.Errorf("serve: shadow_tail %g outside [0, 0.9]", req.ShadowTail)
		}
		if req.Access != "" && req.Access != "row" {
			return "", fmt.Errorf("serve: online jobs train row-wise; access %q cannot be forced", req.Access)
		}
		if !supportsAccess(spec, model.RowWise) {
			return "", fmt.Errorf("serve: online jobs train row-wise; spec %q does not support it", spec.Name())
		}
		if proto := spec.NewReplica(ds); proto.Aux != nil {
			// Per-row auxiliary state (LS, LP) is sized to the row count at
			// engine build; growing the dataset under it would index past
			// the allocation.
			return "", fmt.Errorf("serve: online mode does not support spec %q (per-row auxiliary state)", spec.Name())
		}
		if handle, err = data.HandleByName(req.Dataset); err != nil {
			return "", err
		}
		if warm != nil && warm.DataRows > 0 {
			// Resume trains on the exact view the checkpoint recorded (the
			// ingest high-water mark), so no already-trained row replays;
			// newer appends are adopted between epochs like any online job.
			view, err := handle.ViewAt(warm.DataRows)
			if err != nil {
				return "", fmt.Errorf("serve: online warm start: %w", err)
			}
			ds = view
			wl = core.NewGLM(spec, view)
		}
		if ds.Rows() == 0 {
			return "", fmt.Errorf("serve: online job on %q: no rows ingested yet (append first)", req.Dataset)
		}
	}
	if warm != nil && warm.Epoch >= req.MaxEpochs {
		// max_epochs is the total target; a budget the snapshot has
		// already reached would "train" zero epochs and republish the
		// snapshot as a done job — a silent no-op the caller did not ask
		// for.
		return "", fmt.Errorf("serve: warm_start %q is already at epoch %d; max_epochs %d must exceed it",
			req.WarmStart, warm.Epoch, req.MaxEpochs)
	}

	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		req:         req,
		kind:        kind,
		wl:          wl,
		spec:        spec,
		ds:          ds,
		top:         top,
		warm:        warm,
		resumedFrom: resumedFrom,
		ctx:         ctx,
		cancel:      cancel,
		done:        make(chan struct{}),
		state:       JobQueued,
		enqueued:    time.Now(),
	}
	if handle != nil {
		j.handle = handle
		j.curView = ds
		j.online.rows = ds.Rows()
		j.online.version = ds.Version
	}

	// The enqueue happens under the same lock as the closed check so a
	// concurrent Close (which closes the channel) cannot race the send.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		return "", fmt.Errorf("serve: scheduler is closed")
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		cancel()
		return "", fmt.Errorf("serve: job queue full (depth %d)", s.opts.QueueDepth)
	}
	s.nextID++
	j.id = fmt.Sprintf("job-%d", s.nextID)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	s.mu.Unlock()

	s.counters.JobEnqueued()
	return j.id, nil
}

// evictLocked drops the oldest terminal job records once more than
// MaxJobHistory of them exist, so a long-running daemon's job table
// stays bounded. Live (queued/running) jobs are never evicted; the
// models they registered outlive the job record. Callers hold s.mu.
func (s *Scheduler) evictLocked() {
	limit := s.opts.MaxJobHistory
	if limit < 0 {
		return
	}
	terminal := 0
	for _, id := range s.order {
		if s.jobs[id].state.Terminal() {
			terminal++
		}
	}
	if terminal <= limit {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if terminal > limit && s.jobs[id].state.Terminal() {
			delete(s.jobs, id)
			terminal--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// supportsAccess reports whether the spec lists the access method.
func supportsAccess(spec model.Spec, want model.Access) bool {
	for _, a := range spec.Supports() {
		if a == want {
			return true
		}
	}
	return false
}

// parseAccess maps the request's short access names.
func parseAccess(name string) (model.Access, error) {
	switch name {
	case "row":
		return model.RowWise, nil
	case "col":
		return model.ColWise, nil
	case "ctr":
		return model.ColToRow, nil
	default:
		return 0, fmt.Errorf("serve: unknown access %q (want row, col, or ctr)", name)
	}
}

// parseModelRep maps the request's model replication names. The
// "percluster" level is deliberately absent: Submit rejects it with a
// pointer to the coordinator before ever reaching here.
func parseModelRep(name string) (core.ModelReplication, error) {
	switch name {
	case "percore":
		return core.PerCore, nil
	case "pernode":
		return core.PerNode, nil
	case "permachine":
		return core.PerMachine, nil
	default:
		return 0, fmt.Errorf("serve: unknown model_rep %q (want percore, pernode, or permachine)", name)
	}
}

// parseDataRep maps the request's data replication names.
func parseDataRep(name string) (core.DataReplication, error) {
	switch name {
	case "sharding":
		return core.Sharding, nil
	case "fullreplication":
		return core.FullReplication, nil
	case "importance":
		return core.Importance, nil
	default:
		return 0, fmt.Errorf("serve: unknown data_rep %q (want sharding, fullreplication, or importance)", name)
	}
}

// Plan-source labels for JobStatus.PlanSource.
const (
	planSourceStatic   = "static"   // the word-cost prior decided
	planSourceMeasured = "measured" // feedback overrode the prior
	planSourceExplore  = "explore"  // epsilon draw ran the runner-up
	planSourceCached   = "cached"   // plan cache hit
	planSourceForced   = "forced"   // request's access override
	planSourceWarm     = "warm"     // snapshot's pinned plan
)

// planFor resolves the job's execution plan, consulting the plan cache
// when the optimizer would decide (no access override). The requested
// executor and the workload kind are both part of the cache key: the
// executor narrows the access methods the optimizer may price, and
// heterogeneous workloads keep separate registries whose dataset names
// may collide. With the feedback loop on, a cache miss runs the
// cost-model-aware optimizer — the static estimate is the prior, a key
// with enough observed epochs wins on measurement — and an epsilon
// draw occasionally runs the decision's runner-up (the cache still
// stores the winner, so exploration never poisons later lookups).
func (s *Scheduler) planFor(j *job) (core.Plan, error) {
	exec, _ := core.ExecutorByName(j.req.Executor) // validated at Submit
	if j.req.Access != "" {                        // glm only, validated at Submit
		access, _ := parseAccess(j.req.Access)
		s.setPlanSource(j, planSourceForced, 0)
		plan := core.Plan{Access: access, Machine: j.top, DataRep: core.FullReplication, Executor: exec, FixedOrder: j.req.FixedOrder}
		if j.req.ModelRep != "" {
			plan.ModelRep, _ = parseModelRep(j.req.ModelRep) // validated at Submit
		}
		if j.req.DataRep != "" {
			plan.DataRep, _ = parseDataRep(j.req.DataRep) // validated at Submit
		}
		if j.req.StepDecay > 0 {
			plan.StepDecay = j.req.StepDecay
		}
		return plan, nil
	}
	key := s.keyFor(j, exec)
	if plan, ok := s.plans.Lookup(key); ok {
		s.counters.PlanCacheHit()
		s.setPlanSource(j, planSourceCached, s.predictFor(j, plan))
		return plan, nil
	}
	s.counters.PlanCacheMiss()
	if s.feedback == nil {
		plan, err := core.ChooseWorkload(j.wl, j.top, exec)
		if err != nil {
			return s.planFallback(j, exec, err)
		}
		s.plans.Store(key, plan)
		s.setPlanSource(j, planSourceStatic, 0)
		return plan, nil
	}
	dec, err := core.ChoosePlanModel(j.wl, j.top, exec, jobCostModel{s: s, j: j})
	if err != nil {
		return s.planFallback(j, exec, err)
	}
	s.plans.Store(key, dec.Plan)
	plan, source, predicted := dec.Plan, dec.Source, dec.PredictedSeconds
	if dec.RunnerUp != nil && s.feedback.Explore() {
		plan = *dec.RunnerUp
		source = planSourceExplore
		predicted = s.predictFor(j, plan)
	}
	s.setPlanSource(j, source, predicted)
	return plan, nil
}

// planFallback handles an optimizer error: the parallel backend fails
// loudly (no row-wise method means it genuinely cannot run the spec);
// the simulator leaves the choice to the engine's own validation, so
// an unusable plan fails the job with the engine's error.
func (s *Scheduler) planFallback(j *job, exec core.ExecutorKind, err error) (core.Plan, error) {
	if exec == core.ExecParallel {
		return core.Plan{}, err
	}
	s.setPlanSource(j, planSourceStatic, 0)
	return core.Plan{Machine: j.top, Executor: exec}, nil
}

// setPlanSource records how the job's plan was chosen and the cost
// forecast for it, for the status report.
func (s *Scheduler) setPlanSource(j *job, source string, predicted float64) {
	s.mu.Lock()
	j.planSource = source
	j.predicted = predicted
	s.mu.Unlock()
}

// predictFor returns the feedback store's EWMA seconds-per-epoch for
// the plan, or 0 when the key has never been observed. Unlike the
// decision path this reads below the K threshold: a forecast from two
// epochs is still the best available number to print next to the
// observed cost.
func (s *Scheduler) predictFor(j *job, p core.Plan) float64 {
	if s.feedback == nil {
		return 0
	}
	if obs, ok := s.feedback.Lookup(s.obsKeyFor(j, p)); ok {
		return obs.SecondsPerEpoch
	}
	return 0
}

// jobCostModel adapts the scheduler's feedback store to the optimizer's
// CostModel seam for one job: candidate plans map to observation keys
// through the job's workload identity.
type jobCostModel struct {
	s *Scheduler
	j *job
}

// MeasuredSeconds implements core.CostModel.
func (m jobCostModel) MeasuredSeconds(p core.Plan) (float64, bool) {
	return m.s.feedback.Measured(m.s.obsKeyFor(m.j, p))
}

// obsKeyFor builds the observation key for a plan executed by this
// job: workload identity, dataset fingerprint, and the plan axes the
// optimizer chooses between. The plan's own machine name is used (a
// warm start may pin a topology the request never named).
func (s *Scheduler) obsKeyFor(j *job, p core.Plan) tune.Key {
	k := tune.Key{
		Workload:   j.kind.String(),
		Machine:    p.Machine.Name,
		Executor:   p.Executor.String(),
		ModelRep:   p.ModelRep.String(),
		DataRep:    p.DataRep.String(),
		Access:     p.Access.String(),
		Workers:    p.Workers,
		StealChunk: p.StealChunk,
	}
	if j.kind == core.WorkloadGLM {
		k.Model = j.spec.Name()
		k.Dataset = j.ds.Name
		k.Rows, k.Cols, k.NNZ = j.ds.Rows(), j.ds.Cols(), j.ds.NNZ()
		k.DatasetVersion = j.ds.Version
	} else {
		k.Model = j.wl.Name()
		k.Dataset = j.wl.DatasetName()
		k.Rows, k.Cols, k.NNZ = j.wl.Units(), j.wl.Dim(), j.wl.DataNNZ()
	}
	return k
}

// replan re-runs the feedback-aware optimizer after a job's epochs
// landed in the store and invalidates the cached plan if the winner
// flipped — the cache's generational contract. The corrected winner is
// stored immediately, so the next submission hits the cache on the
// current decision rather than re-planning.
func (s *Scheduler) replan(j *job, exec core.ExecutorKind) {
	key := s.keyFor(j, exec)
	cached, ok := s.plans.Peek(key)
	if !ok {
		return
	}
	dec, err := core.ChoosePlanModel(j.wl, j.top, exec, jobCostModel{s: s, j: j})
	if err != nil {
		return
	}
	if samePlanAxes(cached, dec.Plan) {
		return
	}
	s.plans.Invalidate(key)
	s.plans.Store(key, dec.Plan)
}

// samePlanAxes compares the plan axes the feedback store keys on; the
// tuning knobs outside them (step sizes, sync cadence) do not
// constitute a winner flip.
func samePlanAxes(a, b core.Plan) bool {
	return a.Access == b.Access && a.ModelRep == b.ModelRep && a.DataRep == b.DataRep &&
		a.Executor == b.Executor && a.Workers == b.Workers && a.StealChunk == b.StealChunk
}

// keyFor builds the job's plan-cache key: the GLM key carries the
// dataset's task semantics, the workload key its kind and shape.
func (s *Scheduler) keyFor(j *job, exec core.ExecutorKind) PlanKey {
	if j.kind == core.WorkloadGLM {
		return KeyFor(j.spec, j.ds, j.top, exec)
	}
	return KeyForWorkload(j.wl, j.top, exec)
}

// run executes one job on the calling worker goroutine.
func (s *Scheduler) run(j *job) {
	s.mu.Lock()
	if j.state != JobQueued {
		s.mu.Unlock()
		return
	}
	j.state = JobRunning
	j.started = time.Now()
	s.mu.Unlock()

	var plan core.Plan
	if j.warm != nil {
		// A warm-started job re-runs the snapshot's plan; NewWorkload
		// re-normalizes and re-validates it against the rebuilt
		// workload, so a stale snapshot (wrong dimension, withdrawn
		// dataset shape) fails the job loudly below.
		plan = j.warm.Plan
		s.setPlanSource(j, planSourceWarm, s.predictFor(j, plan))
	} else {
		var err error
		plan, err = s.planFor(j)
		if err != nil {
			s.finish(j, JobFailed, err.Error())
			return
		}
		if j.req.Workers > 0 {
			plan.Workers = j.req.Workers
		}
		if j.req.Step > 0 {
			plan.Step = j.req.Step
		}
		if j.req.Seed != 0 {
			plan.Seed = j.req.Seed
		}
		if j.req.Online {
			// Growth is only safe row-wise (work units are rows, re-
			// partitioned every epoch) and without precomputed leverage
			// scores; submit validated the spec supports this.
			plan.Access = model.RowWise
			if plan.DataRep == core.Importance {
				plan.DataRep = core.FullReplication
			}
		}
	}

	eng, err := core.NewWorkload(j.wl, plan)
	if err != nil {
		s.finish(j, JobFailed, err.Error())
		return
	}
	// The scheduler owns the engine's pool lifecycle: however the job
	// ends — done, failed, or cancelled mid-epoch — the parallel
	// executor's persistent workers drain before run returns, so a
	// DELETE /v1/jobs/{id} never leaks parked goroutines.
	defer eng.Close()
	if j.warm != nil {
		if err := eng.Restore(*j.warm); err != nil {
			s.counters.CheckpointError()
			s.finish(j, JobFailed, err.Error())
			return
		}
		s.counters.CheckpointRestore()
	}

	if j.req.Trace {
		// The sink is chosen by the executed plan (warm starts pin it),
		// so the phase timers land under the executor that actually ran.
		rec := trace.New(trace.Config{Sink: s.PhaseTotals(eng.ExecutorKind())})
		eng.SetRecorder(rec)
		s.mu.Lock()
		j.rec = rec
		s.mu.Unlock()
	}

	s.mu.Lock()
	j.plan = eng.Plan()
	j.planned = true
	if j.warm != nil {
		j.epoch = j.warm.Epoch
		j.loss = j.warm.Loss
		j.simTime = j.warm.SimTime
		j.wallTime = j.warm.WallTime
	}
	s.mu.Unlock()

	if s.feedback != nil {
		// Epochs observe the engine's fully normalized plan (worker and
		// step overrides included), not the cached one, so the feedback
		// store prices what actually ran. Flush once at job end — the
		// store is in-memory authoritative; a failed write-through only
		// loses learning across a restart.
		j.tuneKey = s.obsKeyFor(j, eng.Plan())
		j.hasTuneKey = true
		defer func() {
			if err := s.feedback.Flush(); err != nil {
				s.counters.CheckpointError()
			}
		}()
	}
	// prevStep/prevFlush/prevBarrier hold the traced job's cumulative
	// phase seconds after the previous epoch; diffing successive
	// summaries yields the per-epoch step/flush/barrier split.
	var prevStep, prevFlush, prevBarrier float64

	// histEvery is the progress sampling stride; it doubles whenever
	// the curve reaches maxHistoryPoints so very long jobs keep a
	// bounded, evenly thinned history. Workload quality metrics (NN
	// accuracy costs a dataset pass) are refreshed on the same stride,
	// plus once at the end.
	histEvery := 1
	publishEvery := j.req.PublishEvery
	if publishEvery <= 0 {
		publishEvery = 5
	}
	for eng.Epoch() < j.req.MaxEpochs {
		select {
		case <-j.ctx.Done():
			// A cancel here is a job DELETE or a server shutdown; either
			// way the engine holds epochs the last periodic checkpoint may
			// not, and a final save is what lets Resume continue instead
			// of restarting from zero.
			if s.opts.Checkpoints != nil && eng.Epoch() > 0 {
				s.checkpoint(j, eng)
			}
			s.finish(j, JobCancelled, "")
			return
		default:
		}
		// Online jobs adopt newly appended data between epochs: the next
		// epoch's work assignment re-partitions over the grown view, so
		// no running epoch ever observes a torn matrix.
		if j.handle != nil {
			if v := j.handle.View(); v.Version > j.online.version {
				if err := eng.Grow(v); err != nil {
					s.finish(j, JobFailed, err.Error())
					return
				}
				s.counters.OnlineAdopt()
				s.mu.Lock()
				j.curView = v
				j.online.rows = v.Rows()
				j.online.version = v.Version
				s.mu.Unlock()
			}
		}
		// The engine observes j.ctx inside the epoch too, so DELETE on
		// a parallel job aborts between worker flushes rather than
		// waiting out the epoch.
		er, err := eng.RunEpochCtx(j.ctx)
		if err != nil {
			// Cancelled mid-epoch: the engine rolled back to the last
			// completed epoch boundary, which is still resumable state.
			if s.opts.Checkpoints != nil && eng.Epoch() > 0 {
				s.checkpoint(j, eng)
			}
			s.finish(j, JobCancelled, "")
			return
		}
		sample := er.Epoch%histEvery == 0
		var qm map[string]float64
		if sample {
			qm = eng.Metrics()
		}
		s.recordEpoch(j, eng, er)
		if s.feedback != nil && j.hasTuneKey {
			smp := tune.Sample{SecondsPerEpoch: er.WallTime.Seconds()}
			if j.rec != nil {
				sum := j.rec.Summary()
				flush := 0.0
				for _, p := range sum.Phases {
					if p.Phase == "flush" {
						flush = p.Seconds
					}
				}
				smp.StepSeconds = sum.StepSeconds - prevStep
				smp.FlushSeconds = flush - prevFlush
				smp.BarrierSeconds = sum.BarrierSeconds - prevBarrier
				smp.HasSplit = true
				prevStep, prevFlush, prevBarrier = sum.StepSeconds, flush, sum.BarrierSeconds
			}
			s.feedback.Record(j.tuneKey, smp)
		}

		s.mu.Lock()
		j.epochsRun++
		j.ownWall += er.WallTime
		j.epoch = er.Epoch
		j.loss = er.Loss
		if qm != nil {
			j.qmetrics = qm
		}
		j.simTime = er.CumTime
		j.wallTime += er.WallTime
		if sample {
			_ = j.curve.Append(metrics.Point{Epoch: er.Epoch, Time: er.CumTime, Wall: j.wallTime, Loss: er.Loss})
			if len(j.curve.Points) >= maxHistoryPoints {
				histEvery *= 2
				kept := j.curve.Points[:0]
				for _, p := range j.curve.Points {
					if p.Epoch%histEvery == 0 {
						kept = append(kept, p)
					}
				}
				j.curve.Points = kept
			}
		}
		s.mu.Unlock()

		// Online publication cadence: every publishEvery epochs a
		// candidate snapshot runs the shadow/canary gate.
		if j.handle != nil && er.Epoch%publishEvery == 0 {
			_ = s.publishOnline(j, eng.Snapshot())
		}

		// The checkpoint policy: persist the engine's full resume state
		// (model, traversal generators, chain state) every N epochs, so
		// a crashed or cancelled job restarts from its last checkpoint
		// instead of epoch zero.
		if s.opts.Checkpoints != nil && s.opts.CheckpointEvery > 0 && er.Epoch%s.opts.CheckpointEvery == 0 {
			s.checkpoint(j, eng)
		}

		// Gibbs marginal entropy is a mixing statistic, not a
		// convergence target: sampling always runs its sweep budget.
		if j.kind != core.WorkloadGibbs && j.req.TargetLoss > 0 && er.Loss <= j.req.TargetLoss {
			s.mu.Lock()
			j.conv = true
			s.mu.Unlock()
			break
		}
	}

	// One final cancellation check so a cancel that raced the last
	// epoch wins over publication.
	select {
	case <-j.ctx.Done():
		if s.opts.Checkpoints != nil && eng.Epoch() > 0 {
			s.checkpoint(j, eng)
		}
		s.finish(j, JobCancelled, "")
		return
	default:
	}

	// The loop may have ended off-stride; publish final quality.
	final := eng.Metrics()
	s.mu.Lock()
	j.qmetrics = final
	s.mu.Unlock()

	if s.feedback != nil {
		// The job's epochs are in the store; re-run the decision and
		// invalidate the cached plan if the measured winner flipped.
		s.replan(j, eng.ExecutorKind())
	}

	var persistErr error
	if j.handle != nil {
		// The final model runs the same shadow/canary gate as the
		// periodic publications: a run that regressed since its last
		// promotion leaves that promoted version live.
		persistErr = s.publishOnline(j, eng.Snapshot())
	} else {
		persistErr = s.publish(j, eng.Snapshot())
	}
	s.finish(j, JobDone, "")
	// A completed job's resume state is superseded by its registry
	// model (which warm_start can continue from); drop the checkpoints —
	// the revived source job's too, or every crash/resume cycle would
	// leak stale-but-resumable generations forever. Unless the model's
	// own durable write-through just failed, in which case the last
	// checkpoint is the only on-disk copy of the state and must survive
	// for resume.
	if s.opts.Checkpoints != nil && persistErr == nil {
		_ = s.opts.Checkpoints.Delete(j.id)
		if j.resumedFrom != "" {
			_ = s.opts.Checkpoints.Delete(j.resumedFrom)
		}
	}
}

// ckptMeta is a checkpoint's metadata envelope: the submitted request
// plus, for online jobs, the ingest high-water mark at checkpoint time.
// It embeds TrainRequest so metas written by older builds (a bare
// request JSON) decode unchanged, and older builds ignore the extra
// keys.
type ckptMeta struct {
	TrainRequest
	// IngestRows and IngestVersion record the dataset view the
	// checkpointed engine had adopted. The snapshot itself carries the
	// authoritative pair (Snapshot.DataRows/DataVersion); the envelope
	// duplicates it in human-readable form for store inspection.
	IngestRows    int    `json:"ingest_rows,omitempty"`
	IngestVersion uint64 `json:"ingest_version,omitempty"`
}

// checkpoint durably saves one running job's engine state together
// with the submitted request (and, for online jobs, the ingest
// high-water mark), so Resume can rebuild the workload, the exact
// dataset view, and the remaining epoch budget.
func (s *Scheduler) checkpoint(j *job, eng *core.Engine) {
	env := ckptMeta{TrainRequest: j.req}
	if j.handle != nil {
		s.mu.Lock()
		env.IngestRows = j.online.rows
		env.IngestVersion = j.online.version
		s.mu.Unlock()
	}
	meta, err := json.Marshal(env)
	if err != nil {
		s.counters.CheckpointError()
		return
	}
	if _, n, err := s.opts.Checkpoints.Save(j.id, eng.Snapshot(), meta); err != nil {
		s.counters.CheckpointError()
	} else {
		s.counters.CheckpointWrite(n)
	}
}

// Resume revives a cancelled, failed or crashed job from its newest
// durable checkpoint as a new warm-started job, and returns the new
// job's ID. The id may belong to a terminal job of this scheduler or
// to a job of a previous process using the same store — the crash
// case, where this scheduler has never heard of it. The resumed job
// keeps the original request's epoch budget and loss target but runs
// the checkpoint's plan.
func (s *Scheduler) Resume(id string) (string, error) {
	if s.opts.Checkpoints == nil {
		return "", fmt.Errorf("serve: no checkpoint store configured (start dwserve with -store)")
	}
	s.mu.Lock()
	if j, ok := s.jobs[id]; ok && !j.state.Terminal() {
		state := j.state
		s.mu.Unlock()
		return "", fmt.Errorf("%w: job %s is %s", ErrJobActive, id, state)
	}
	s.mu.Unlock()

	snap, meta, _, err := s.opts.Checkpoints.Load(id)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return "", fmt.Errorf("serve: job %q has no durable checkpoint: %w", id, os.ErrNotExist)
		}
		s.counters.CheckpointError()
		return "", err
	}
	var orig ckptMeta
	if len(meta) > 0 {
		// A missing or unreadable request (older store layouts) falls
		// back to Submit's defaults; the snapshot still pins the task.
		_ = json.Unmarshal(meta, &orig)
	}
	req := TrainRequest{
		TargetLoss:   orig.TargetLoss,
		MaxEpochs:    orig.MaxEpochs,
		WarmStart:    id,
		Online:       orig.Online,
		PublishEvery: orig.PublishEvery,
		ShadowTail:   orig.ShadowTail,
	}
	// Hand the loaded snapshot straight to the submit path: re-resolving
	// by id would read and decode the checkpoint a second time and could
	// race a generation written in between, pairing this load's budget
	// with a different generation's state.
	return s.submit(req, &snap, id)
}

// recordEpoch feeds one epoch's measurements into the serving
// counters, per workload kind.
func (s *Scheduler) recordEpoch(j *job, eng *core.Engine, er core.EpochResult) {
	switch j.kind {
	case core.WorkloadGibbs:
		// One epoch is one sweep per chain; steps are variable samples.
		// Only parallel-executor epochs contribute wall time: a
		// simulated epoch's wall clock measures the cost simulator, not
		// sampling throughput, and would poison the samples/sec rate.
		var wall time.Duration
		if eng.ExecutorKind() == core.ExecParallel {
			wall = er.WallTime
		}
		s.counters.GibbsEpoch(eng.Replicas(), int64(er.Steps), wall)
	case core.WorkloadNN:
		s.counters.NNEpoch(int64(er.Steps))
	}
}

// publish registers the finished job's snapshot with a workload-
// appropriate scorer and surfaces terminal state (gibbs marginals).
// The returned error reports a failed durable write-through; the
// in-memory registration always happens.
func (s *Scheduler) publish(j *job, snap core.Snapshot) error {
	var err error
	switch j.kind {
	case core.WorkloadGLM:
		err = s.models.Put(j.id, j.spec, snap)
	case core.WorkloadNN:
		wl := j.wl.(*nn.Workload)
		err = s.models.PutScored(j.id, wl.PredictBatch, snap)
	case core.WorkloadGibbs:
		err = s.models.PutScored(j.id, marginalScorer, snap)
		s.mu.Lock()
		j.margins = snap.X
		s.mu.Unlock()
	}
	return err
}

// promoteSlack is the canary gate's tolerance: a candidate may be
// promoted when its held-out tail loss does not exceed the live
// model's by more than this fraction (successive SGD snapshots jitter;
// a hard "must improve" gate would starve promotions near the optimum
// without protecting anything).
const promoteSlack = 0.01

// promoteDecision is the shadow-evaluation gate: the first candidate
// always promotes (nothing is live yet), afterwards a candidate must
// not regress the live model's held-out loss beyond promoteSlack.
// Non-finite candidate losses (a diverged model) never promote.
func promoteDecision(cand, live float64, hasLive bool) bool {
	if math.IsNaN(cand) || math.IsInf(cand, 0) {
		return false
	}
	if !hasLive {
		return true
	}
	return cand <= live*(1+promoteSlack)+1e-12
}

// publishOnline runs one candidate model through the shadow/canary
// gate: the candidate and the currently live version are both scored
// on the held-out tail of the job's adopted view, and only a candidate
// that passes promoteDecision is swapped live (the registry's atomic
// pointer swap — in-flight predictions finish on the old version). A
// regressing canary is rolled back: counters record it and the
// previously promoted version stays live. The returned error reports a
// failed durable write-through of a promoted model; rollbacks are not
// errors.
func (s *Scheduler) publishOnline(j *job, snap core.Snapshot) error {
	start := time.Now()
	s.mu.Lock()
	view := j.curView
	s.mu.Unlock()
	frac := j.req.ShadowTail
	if frac <= 0 {
		frac = 0.2
	}
	tail := data.TailView(view, frac)
	candLoss := j.spec.Loss(tail, snap.X)
	for _, x := range snap.X {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			// A diverged weight can hide in a column the held-out tail
			// never touches and still score a finite tail loss; the gate
			// must not serve it either way.
			candLoss = math.NaN()
			break
		}
	}
	var liveLoss float64
	_, liveSnap, hasLive := s.models.Get(j.id)
	if hasLive {
		liveLoss = j.spec.Loss(tail, liveSnap.X)
	}
	s.counters.ShadowEval()
	promote := promoteDecision(candLoss, liveLoss, hasLive)
	var err error
	if promote {
		err = s.publish(j, snap)
		s.counters.ModelPromoted()
	} else {
		s.counters.ModelRolledBack()
	}
	s.mu.Lock()
	j.online.published++
	j.online.candLoss = candLoss
	if hasLive {
		j.online.liveLoss = liveLoss
	}
	if promote {
		j.online.promoted++
		j.online.lastPublish = time.Since(start)
	} else {
		j.online.rolledBack++
	}
	s.mu.Unlock()
	return err
}

// marginalScorer serves Gibbs snapshots: each example selects one
// variable index and the prediction is its pooled marginal P(x=1).
func marginalScorer(x []float64, examples []model.Example) ([]float64, error) {
	out := make([]float64, len(examples))
	for i, ex := range examples {
		if len(ex.Idx) != 1 {
			return nil, fmt.Errorf("serve: gibbs example %d must select exactly one variable index, got %d", i, len(ex.Idx))
		}
		v := int(ex.Idx[0])
		if v < 0 || v >= len(x) {
			return nil, fmt.Errorf("serve: gibbs example %d selects variable %d of %d", i, v, len(x))
		}
		out[i] = x[v]
	}
	return out, nil
}

// finish moves a job to a terminal state exactly once.
func (s *Scheduler) finish(j *job, state JobState, errMsg string) {
	s.mu.Lock()
	if j.state.Terminal() {
		s.mu.Unlock()
		return
	}
	j.state = state
	j.err = errMsg
	j.finished = time.Now()
	s.mu.Unlock()
	j.cancel()
	close(j.done)
	switch state {
	case JobDone:
		s.counters.JobDone()
	case JobFailed:
		s.counters.JobFailed()
	case JobCancelled:
		s.counters.JobCancelled()
	}
}

// Cancel cancels a queued or running job. Cancelling a terminal job is
// a no-op; unknown IDs are an error.
func (s *Scheduler) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("serve: unknown job %q", id)
	}
	if j.state.Terminal() {
		s.mu.Unlock()
		return nil
	}
	queued := j.state == JobQueued
	s.mu.Unlock()

	if queued {
		// A queued job never reaches a worker's cancellation checks if
		// the pool is saturated; finish it directly. run() skips jobs
		// that are no longer Queued.
		s.finish(j, JobCancelled, "")
		return nil
	}
	j.cancel()
	return nil
}

// Status returns a copy of the job's current state.
func (s *Scheduler) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return s.statusLocked(j, true), true
}

// Jobs returns every job's status in submission order. Listings omit
// the per-variable marginal vectors; fetch a job's Status for those.
func (s *Scheduler) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id], false))
	}
	return out
}

// statusLocked snapshots one job; callers hold s.mu.
func (s *Scheduler) statusLocked(j *job, withMarginals bool) JobStatus {
	st := JobStatus{
		ID:          j.id,
		State:       j.state.String(),
		Request:     j.req,
		Workload:    j.kind.String(),
		Epoch:       j.epoch,
		Loss:        j.loss,
		Converged:   j.conv,
		Error:       j.err,
		SimSeconds:  j.simTime.Seconds(),
		WallSeconds: j.wallTime.Seconds(),
		Enqueued:    j.enqueued,
		Started:     j.started,
		Finished:    j.finished,
	}
	if len(j.qmetrics) > 0 {
		st.Metrics = make(map[string]float64, len(j.qmetrics))
		for k, v := range j.qmetrics {
			st.Metrics[k] = v
		}
	}
	if withMarginals && j.margins != nil {
		st.Marginals = append([]float64(nil), j.margins...)
	}
	if j.planned {
		st.Plan = j.plan.String()
	}
	st.PlanSource = j.planSource
	st.PredictedSecondsPerEpoch = j.predicted
	if j.epochsRun > 0 {
		st.ObservedSecondsPerEpoch = j.ownWall.Seconds() / float64(j.epochsRun)
	}
	if j.rec != nil {
		sum := j.rec.Summary()
		st.Trace = &sum
	}
	if j.handle != nil {
		st.Online = &OnlineStatus{
			Rows:               j.online.rows,
			DatasetVersion:     j.online.version,
			VersionsPublished:  j.online.published,
			VersionsPromoted:   j.online.promoted,
			VersionsRolledBack: j.online.rolledBack,
			LastCandidateLoss:  j.online.candLoss,
			LastLiveLoss:       j.online.liveLoss,
			LastPublishMs:      float64(j.online.lastPublish) / float64(time.Millisecond),
		}
	}
	for _, p := range j.curve.Points {
		st.History = append(st.History, ProgressPoint{
			Epoch: p.Epoch, Loss: p.Loss, SimSeconds: p.Time.Seconds(), WallSeconds: p.Wall.Seconds(),
		})
	}
	return st
}

// QueueStats summarises the scheduler's job population by state.
type QueueStats struct {
	Slots     int `json:"slots"`
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
}

// Stats returns current queue statistics.
func (s *Scheduler) Stats() QueueStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := QueueStats{Slots: s.opts.Slots}
	for _, j := range s.jobs {
		switch j.state {
		case JobQueued:
			st.Queued++
		case JobRunning:
			st.Running++
		case JobDone:
			st.Done++
		case JobFailed:
			st.Failed++
		case JobCancelled:
			st.Cancelled++
		}
	}
	return st
}

// Done returns a channel closed when the job reaches a terminal state.
func (s *Scheduler) Done(id string) (<-chan struct{}, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	return j.done, true
}

// Wait blocks until the job terminates or the timeout elapses and
// returns its final (or latest) status.
func (s *Scheduler) Wait(id string, timeout time.Duration) (JobStatus, error) {
	done, ok := s.Done(id)
	if !ok {
		return JobStatus{}, fmt.Errorf("serve: unknown job %q", id)
	}
	select {
	case <-done:
	case <-time.After(timeout):
		st, _ := s.Status(id)
		return st, fmt.Errorf("serve: job %s still %s after %v", id, st.State, timeout)
	}
	st, _ := s.Status(id)
	return st, nil
}

// Close stops the scheduler: new submissions are rejected, queued and
// running jobs are cancelled (running jobs write a final checkpoint on
// their way out, so a restart can Resume them), and the worker pool
// drains. Close blocks until every worker exits, then flushes the tune
// feedback store so observations from this process survive the
// restart.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	pending := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		if j := s.jobs[id]; !j.state.Terminal() {
			pending = append(pending, j)
		}
	}
	s.mu.Unlock()

	for _, j := range pending {
		j.cancel()
		s.mu.Lock()
		queued := j.state == JobQueued
		s.mu.Unlock()
		if queued {
			s.finish(j, JobCancelled, "")
		}
	}
	close(s.queue)
	s.wg.Wait()
	if s.feedback != nil {
		if err := s.feedback.Flush(); err != nil {
			s.counters.CheckpointError()
		}
	}
}
