package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dimmwitted/internal/core"
	"dimmwitted/internal/data"
	"dimmwitted/internal/factor"
	"dimmwitted/internal/metrics"
	"dimmwitted/internal/model"
	"dimmwitted/internal/nn"
	"dimmwitted/internal/numa"
)

// JobState is the lifecycle state of a training job.
type JobState int

const (
	// JobQueued means the job waits for a scheduler slot.
	JobQueued JobState = iota
	// JobRunning means a worker is executing epochs.
	JobRunning
	// JobDone means training finished and the model is registered.
	JobDone
	// JobFailed means the job ended with an error.
	JobFailed
	// JobCancelled means the job was cancelled before completion.
	JobCancelled
)

// maxHistoryPoints bounds a job's stored convergence curve; beyond it
// the sampling stride doubles (see job.histEvery).
const maxHistoryPoints = 1024

// String implements fmt.Stringer.
func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	case JobCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("JobState(%d)", int(s))
	}
}

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// TrainRequest describes one training job. Zero-valued knobs take
// scheduler defaults.
type TrainRequest struct {
	// Workload selects the workload family: "glm" (default; a model
	// spec over a data matrix), "gibbs" (sampling over a registered
	// factor graph) or "nn" (network training over a registered image
	// dataset).
	Workload string `json:"workload,omitempty"`
	// Model is the GLM spec's short name ("svm", "lr", ...). Required
	// for glm jobs; must be empty for gibbs/nn jobs, whose task is the
	// workload itself.
	Model string `json:"model,omitempty"`
	// Dataset is a registered name in the workload's registry: a data
	// matrix ("reuters", ...) for glm, a factor graph ("paleo",
	// "cycle5", ...) for gibbs, an image corpus ("mnist", ...) for nn.
	// Required.
	Dataset string `json:"dataset"`
	// Machine overrides the scheduler's topology ("local2", ...).
	Machine string `json:"machine,omitempty"`
	// Access forces an access method ("row", "col", "ctr") instead of
	// the cost-based optimizer's choice; glm only (gibbs is inherently
	// column-to-row, nn row-wise). Forced plans bypass the plan cache;
	// the engine rejects unsupported spec/access pairs.
	Access string `json:"access,omitempty"`
	// Executor selects the execution backend: "simulated" (default;
	// deterministic interleaver on the NUMA cost simulator) or
	// "parallel" (real goroutine workers — Hogwild delta-flushing for
	// glm/nn, concurrent Hogwild!-Gibbs sweeps for gibbs — wall-clock
	// epochs, cancellable mid-epoch).
	Executor string `json:"executor,omitempty"`
	// TargetLoss stops training early once reached; 0 runs MaxEpochs.
	// Ignored for gibbs jobs, whose quality metric (marginal entropy)
	// is not a convergence target — sampling runs its sweep budget.
	TargetLoss float64 `json:"target_loss,omitempty"`
	// MaxEpochs bounds the run (epochs for glm/nn, sweeps per chain
	// for gibbs); 0 means 50.
	MaxEpochs int `json:"max_epochs,omitempty"`
	// Workers overrides the plan's worker count; 0 means all cores.
	Workers int `json:"workers,omitempty"`
	// Step overrides the initial step size; 0 means the model default.
	Step float64 `json:"step,omitempty"`
	// Seed drives traversal randomness; 0 means the engine default.
	Seed int64 `json:"seed,omitempty"`
}

// ProgressPoint is one epoch of a job's convergence curve.
type ProgressPoint struct {
	// Epoch is the 1-based epoch number.
	Epoch int `json:"epoch"`
	// Loss is the combined-model objective after the epoch.
	Loss float64 `json:"loss"`
	// SimSeconds is cumulative simulated time in seconds (zero for
	// parallel-executor jobs).
	SimSeconds float64 `json:"sim_seconds"`
	// WallSeconds is cumulative measured wall-clock training time in
	// seconds — the parallel executor's time axis.
	WallSeconds float64 `json:"wall_seconds"`
}

// JobStatus is a point-in-time copy of a job's externally visible
// state.
type JobStatus struct {
	// ID is the job identifier ("job-1", ...).
	ID string `json:"id"`
	// State is the lifecycle state ("queued", "running", ...).
	State string `json:"state"`
	// Request echoes the submitted request.
	Request TrainRequest `json:"request"`
	// Plan renders the executed plan once the job starts.
	Plan string `json:"plan,omitempty"`
	// Epoch and Loss are the latest progress from the engine.
	Epoch int     `json:"epoch"`
	Loss  float64 `json:"loss"`
	// Converged reports whether TargetLoss was reached.
	Converged bool `json:"converged"`
	// Workload is the job's workload family ("glm", "gibbs", "nn").
	Workload string `json:"workload"`
	// Metrics carries workload-appropriate quality metrics from the
	// latest epoch: nn reports "accuracy", gibbs reports marginal
	// summaries ("mean_marginal", "polarization"); empty for glm, whose
	// loss is the whole story.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Marginals carries the pooled per-variable P(x=1) estimate of a
	// finished gibbs job. Only the per-job detail view includes it —
	// the jobs listing omits the (per-variable-sized) vector and keeps
	// the Metrics summaries.
	Marginals []float64 `json:"marginals,omitempty"`
	// Error carries the failure message for failed jobs.
	Error string `json:"error,omitempty"`
	// SimSeconds is the cumulative simulated training time (zero for
	// parallel-executor jobs).
	SimSeconds float64 `json:"sim_seconds"`
	// WallSeconds is the cumulative measured wall-clock training time.
	WallSeconds float64 `json:"wall_seconds"`
	// History is the per-epoch convergence curve.
	History []ProgressPoint `json:"history,omitempty"`
	// Enqueued, Started and Finished are wall-clock timestamps;
	// Started/Finished are zero until reached.
	Enqueued time.Time `json:"enqueued"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
}

// job is the scheduler's internal record. All mutable fields are
// guarded by the owning scheduler's mutex.
type job struct {
	id   string
	req  TrainRequest
	kind core.WorkloadKind
	// wl is the job's workload; a Workload binds to one engine, so it
	// is built per job at submission.
	wl core.Workload
	// spec and ds are set for glm jobs only (plan-cache keys, registry
	// publication).
	spec     model.Spec
	ds       *data.Dataset
	top      numa.Topology
	ctx      context.Context
	cancel   context.CancelFunc
	done     chan struct{}
	state    JobState
	plan     core.Plan
	planned  bool
	epoch    int
	loss     float64
	conv     bool
	err      string
	qmetrics map[string]float64
	margins  []float64
	simTime  time.Duration
	wallTime time.Duration
	curve    metrics.Curve
	enqueued time.Time
	started  time.Time
	finished time.Time
}

// Options configures a scheduler (and, through it, a server).
type Options struct {
	// Machine is the default simulated topology; zero means local2.
	Machine numa.Topology
	// Slots is the worker-pool size — how many training jobs run
	// concurrently. 0 derives it from the topology: one slot per
	// simulated NUMA socket, the same locality-group granularity the
	// engine uses for PerNode replication.
	Slots int
	// QueueDepth bounds the number of waiting jobs; 0 means 256.
	QueueDepth int
	// MaxJobHistory bounds how many *terminal* job records are
	// retained; the oldest are evicted first (their registered models
	// stay). 0 means 1000; negative disables eviction.
	MaxJobHistory int
	// Counters receives serving metrics; nil allocates a private set.
	Counters *metrics.ServeCounters
}

// normalize fills defaults.
func (o Options) normalize() Options {
	if o.Machine.Nodes == 0 {
		o.Machine = numa.Local2
	}
	if o.Slots == 0 {
		o.Slots = o.Machine.Nodes
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 256
	}
	if o.MaxJobHistory == 0 {
		o.MaxJobHistory = 1000
	}
	if o.Counters == nil {
		o.Counters = &metrics.ServeCounters{}
	}
	return o
}

// Scheduler runs training jobs asynchronously on a fixed worker pool
// and feeds completed models into a Registry. All methods are safe for
// concurrent use.
type Scheduler struct {
	opts     Options
	counters *metrics.ServeCounters
	plans    *PlanCache
	models   *Registry

	queue chan *job
	wg    sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	nextID int
	closed bool
}

// NewScheduler builds a scheduler and starts its worker pool.
func NewScheduler(opts Options) *Scheduler {
	opts = opts.normalize()
	s := &Scheduler{
		opts:     opts,
		counters: opts.Counters,
		plans:    NewPlanCache(),
		models:   NewRegistry(),
		queue:    make(chan *job, opts.QueueDepth),
		jobs:     map[string]*job{},
	}
	for i := 0; i < opts.Slots; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.run(j)
			}
		}()
	}
	return s
}

// Models returns the registry completed jobs publish into.
func (s *Scheduler) Models() *Registry { return s.models }

// Plans returns the shared plan cache.
func (s *Scheduler) Plans() *PlanCache { return s.plans }

// Counters returns the scheduler's serving counters.
func (s *Scheduler) Counters() *metrics.ServeCounters { return s.counters }

// Slots returns the worker-pool size.
func (s *Scheduler) Slots() int { return s.opts.Slots }

// buildWorkload resolves the request's workload, task and dataset into
// a fresh core.Workload (one per job: a workload binds to one engine).
// The spec and dataset returns are non-nil for glm jobs only.
func buildWorkload(kind core.WorkloadKind, req TrainRequest) (core.Workload, model.Spec, *data.Dataset, error) {
	switch kind {
	case core.WorkloadGLM:
		spec, err := model.ByName(req.Model)
		if err != nil {
			return nil, nil, nil, err
		}
		ds, err := data.ByName(req.Dataset)
		if err != nil {
			return nil, nil, nil, err
		}
		return core.NewGLM(spec, ds), spec, ds, nil
	case core.WorkloadGibbs:
		if req.Model != "" {
			return nil, nil, nil, fmt.Errorf("serve: gibbs jobs take no model name (the workload is the task), got %q", req.Model)
		}
		g, err := factor.GraphByName(req.Dataset)
		if err != nil {
			return nil, nil, nil, err
		}
		return factor.NewWorkload(g), nil, nil, nil
	case core.WorkloadNN:
		if req.Model != "" {
			return nil, nil, nil, fmt.Errorf("serve: nn jobs take no model name (the workload is the task), got %q", req.Model)
		}
		ds, sizes, err := nn.DatasetByName(req.Dataset)
		if err != nil {
			return nil, nil, nil, err
		}
		seed := req.Seed
		if seed == 0 {
			seed = 1
		}
		wl, err := nn.NewWorkload(ds, nn.WorkloadConfig{Sizes: sizes, Seed: seed})
		return wl, nil, nil, err
	default:
		return nil, nil, nil, fmt.Errorf("serve: unhandled workload %v", kind)
	}
}

// Submit validates a request, enqueues a job and returns its ID. The
// request fails fast on unknown workloads, models, datasets, machines
// or access methods and on a full queue; execution errors surface as a
// Failed job instead.
func (s *Scheduler) Submit(req TrainRequest) (string, error) {
	kind, err := core.WorkloadByName(req.Workload)
	if err != nil {
		return "", err
	}
	wl, spec, ds, err := buildWorkload(kind, req)
	if err != nil {
		return "", err
	}
	top := s.opts.Machine
	if req.Machine != "" {
		if top, err = numa.ByName(req.Machine); err != nil {
			return "", err
		}
	}
	if req.Access != "" {
		if kind != core.WorkloadGLM {
			return "", fmt.Errorf("serve: access is fixed per workload (%s); only glm jobs accept an override", kind)
		}
		if _, err := parseAccess(req.Access); err != nil {
			return "", err
		}
	}
	if _, err := core.ExecutorByName(req.Executor); err != nil {
		return "", err
	}
	if req.MaxEpochs < 0 {
		return "", fmt.Errorf("serve: negative max_epochs %d", req.MaxEpochs)
	}
	if req.MaxEpochs == 0 {
		req.MaxEpochs = 50
	}

	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		req:      req,
		kind:     kind,
		wl:       wl,
		spec:     spec,
		ds:       ds,
		top:      top,
		ctx:      ctx,
		cancel:   cancel,
		done:     make(chan struct{}),
		state:    JobQueued,
		enqueued: time.Now(),
	}

	// The enqueue happens under the same lock as the closed check so a
	// concurrent Close (which closes the channel) cannot race the send.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		return "", fmt.Errorf("serve: scheduler is closed")
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		cancel()
		return "", fmt.Errorf("serve: job queue full (depth %d)", s.opts.QueueDepth)
	}
	s.nextID++
	j.id = fmt.Sprintf("job-%d", s.nextID)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	s.mu.Unlock()

	s.counters.JobEnqueued()
	return j.id, nil
}

// evictLocked drops the oldest terminal job records once more than
// MaxJobHistory of them exist, so a long-running daemon's job table
// stays bounded. Live (queued/running) jobs are never evicted; the
// models they registered outlive the job record. Callers hold s.mu.
func (s *Scheduler) evictLocked() {
	limit := s.opts.MaxJobHistory
	if limit < 0 {
		return
	}
	terminal := 0
	for _, id := range s.order {
		if s.jobs[id].state.Terminal() {
			terminal++
		}
	}
	if terminal <= limit {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if terminal > limit && s.jobs[id].state.Terminal() {
			delete(s.jobs, id)
			terminal--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// parseAccess maps the request's short access names.
func parseAccess(name string) (model.Access, error) {
	switch name {
	case "row":
		return model.RowWise, nil
	case "col":
		return model.ColWise, nil
	case "ctr":
		return model.ColToRow, nil
	default:
		return 0, fmt.Errorf("serve: unknown access %q (want row, col, or ctr)", name)
	}
}

// planFor resolves the job's execution plan, consulting the plan cache
// when the optimizer would decide (no access override). The requested
// executor and the workload kind are both part of the cache key: the
// executor narrows the access methods the optimizer may price, and
// heterogeneous workloads keep separate registries whose dataset names
// may collide.
func (s *Scheduler) planFor(j *job) (core.Plan, error) {
	exec, _ := core.ExecutorByName(j.req.Executor) // validated at Submit
	if j.req.Access != "" { // glm only, validated at Submit
		access, _ := parseAccess(j.req.Access)
		return core.Plan{Access: access, Machine: j.top, DataRep: core.FullReplication, Executor: exec}, nil
	}
	key := s.keyFor(j, exec)
	if plan, ok := s.plans.Lookup(key); ok {
		s.counters.PlanCacheHit()
		return plan, nil
	}
	s.counters.PlanCacheMiss()
	plan, err := core.ChooseWorkload(j.wl, j.top, exec)
	if err != nil {
		if exec == core.ExecParallel {
			// No row-wise method: the parallel backend genuinely
			// cannot run this spec; fail the job loudly instead of
			// silently training on the simulator.
			return core.Plan{}, err
		}
		// Leave the choice to the engine's own validation; an
		// unusable plan fails the job with the engine's error.
		return core.Plan{Machine: j.top, Executor: exec}, nil
	}
	s.plans.Store(key, plan)
	return plan, nil
}

// keyFor builds the job's plan-cache key: the GLM key carries the
// dataset's task semantics, the workload key its kind and shape.
func (s *Scheduler) keyFor(j *job, exec core.ExecutorKind) PlanKey {
	if j.kind == core.WorkloadGLM {
		return KeyFor(j.spec, j.ds, j.top, exec)
	}
	return KeyForWorkload(j.wl, j.top, exec)
}

// run executes one job on the calling worker goroutine.
func (s *Scheduler) run(j *job) {
	s.mu.Lock()
	if j.state != JobQueued {
		s.mu.Unlock()
		return
	}
	j.state = JobRunning
	j.started = time.Now()
	s.mu.Unlock()

	plan, err := s.planFor(j)
	if err != nil {
		s.finish(j, JobFailed, err.Error())
		return
	}
	if j.req.Workers > 0 {
		plan.Workers = j.req.Workers
	}
	if j.req.Step > 0 {
		plan.Step = j.req.Step
	}
	if j.req.Seed != 0 {
		plan.Seed = j.req.Seed
	}

	eng, err := core.NewWorkload(j.wl, plan)
	if err != nil {
		s.finish(j, JobFailed, err.Error())
		return
	}

	s.mu.Lock()
	j.plan = eng.Plan()
	j.planned = true
	s.mu.Unlock()

	// histEvery is the progress sampling stride; it doubles whenever
	// the curve reaches maxHistoryPoints so very long jobs keep a
	// bounded, evenly thinned history. Workload quality metrics (NN
	// accuracy costs a dataset pass) are refreshed on the same stride,
	// plus once at the end.
	histEvery := 1
	for ep := 0; ep < j.req.MaxEpochs; ep++ {
		select {
		case <-j.ctx.Done():
			s.finish(j, JobCancelled, "")
			return
		default:
		}
		// The engine observes j.ctx inside the epoch too, so DELETE on
		// a parallel job aborts between worker flushes rather than
		// waiting out the epoch.
		er, err := eng.RunEpochCtx(j.ctx)
		if err != nil {
			s.finish(j, JobCancelled, "")
			return
		}
		sample := er.Epoch%histEvery == 0
		var qm map[string]float64
		if sample {
			qm = eng.Metrics()
		}
		s.recordEpoch(j, eng, er)

		s.mu.Lock()
		j.epoch = er.Epoch
		j.loss = er.Loss
		if qm != nil {
			j.qmetrics = qm
		}
		j.simTime = er.CumTime
		j.wallTime += er.WallTime
		if sample {
			_ = j.curve.Append(metrics.Point{Epoch: er.Epoch, Time: er.CumTime, Wall: j.wallTime, Loss: er.Loss})
			if len(j.curve.Points) >= maxHistoryPoints {
				histEvery *= 2
				kept := j.curve.Points[:0]
				for _, p := range j.curve.Points {
					if p.Epoch%histEvery == 0 {
						kept = append(kept, p)
					}
				}
				j.curve.Points = kept
			}
		}
		s.mu.Unlock()

		// Gibbs marginal entropy is a mixing statistic, not a
		// convergence target: sampling always runs its sweep budget.
		if j.kind != core.WorkloadGibbs && j.req.TargetLoss > 0 && er.Loss <= j.req.TargetLoss {
			s.mu.Lock()
			j.conv = true
			s.mu.Unlock()
			break
		}
	}

	// One final cancellation check so a cancel that raced the last
	// epoch wins over publication.
	select {
	case <-j.ctx.Done():
		s.finish(j, JobCancelled, "")
		return
	default:
	}

	// The loop may have ended off-stride; publish final quality.
	final := eng.Metrics()
	s.mu.Lock()
	j.qmetrics = final
	s.mu.Unlock()

	s.publish(j, eng.Snapshot())
	s.finish(j, JobDone, "")
}

// recordEpoch feeds one epoch's measurements into the serving
// counters, per workload kind.
func (s *Scheduler) recordEpoch(j *job, eng *core.Engine, er core.EpochResult) {
	switch j.kind {
	case core.WorkloadGibbs:
		// One epoch is one sweep per chain; steps are variable samples.
		// Only parallel-executor epochs contribute wall time: a
		// simulated epoch's wall clock measures the cost simulator, not
		// sampling throughput, and would poison the samples/sec rate.
		var wall time.Duration
		if eng.ExecutorKind() == core.ExecParallel {
			wall = er.WallTime
		}
		s.counters.GibbsEpoch(eng.Replicas(), int64(er.Steps), wall)
	case core.WorkloadNN:
		s.counters.NNEpoch(int64(er.Steps))
	}
}

// publish registers the finished job's snapshot with a workload-
// appropriate scorer and surfaces terminal state (gibbs marginals).
func (s *Scheduler) publish(j *job, snap core.Snapshot) {
	switch j.kind {
	case core.WorkloadGLM:
		s.models.Put(j.id, j.spec, snap)
	case core.WorkloadNN:
		wl := j.wl.(*nn.Workload)
		s.models.PutScored(j.id, wl.PredictBatch, snap)
	case core.WorkloadGibbs:
		s.models.PutScored(j.id, marginalScorer, snap)
		s.mu.Lock()
		j.margins = snap.X
		s.mu.Unlock()
	}
}

// marginalScorer serves Gibbs snapshots: each example selects one
// variable index and the prediction is its pooled marginal P(x=1).
func marginalScorer(x []float64, examples []model.Example) ([]float64, error) {
	out := make([]float64, len(examples))
	for i, ex := range examples {
		if len(ex.Idx) != 1 {
			return nil, fmt.Errorf("serve: gibbs example %d must select exactly one variable index, got %d", i, len(ex.Idx))
		}
		v := int(ex.Idx[0])
		if v < 0 || v >= len(x) {
			return nil, fmt.Errorf("serve: gibbs example %d selects variable %d of %d", i, v, len(x))
		}
		out[i] = x[v]
	}
	return out, nil
}

// finish moves a job to a terminal state exactly once.
func (s *Scheduler) finish(j *job, state JobState, errMsg string) {
	s.mu.Lock()
	if j.state.Terminal() {
		s.mu.Unlock()
		return
	}
	j.state = state
	j.err = errMsg
	j.finished = time.Now()
	s.mu.Unlock()
	j.cancel()
	close(j.done)
	switch state {
	case JobDone:
		s.counters.JobDone()
	case JobFailed:
		s.counters.JobFailed()
	case JobCancelled:
		s.counters.JobCancelled()
	}
}

// Cancel cancels a queued or running job. Cancelling a terminal job is
// a no-op; unknown IDs are an error.
func (s *Scheduler) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("serve: unknown job %q", id)
	}
	if j.state.Terminal() {
		s.mu.Unlock()
		return nil
	}
	queued := j.state == JobQueued
	s.mu.Unlock()

	if queued {
		// A queued job never reaches a worker's cancellation checks if
		// the pool is saturated; finish it directly. run() skips jobs
		// that are no longer Queued.
		s.finish(j, JobCancelled, "")
		return nil
	}
	j.cancel()
	return nil
}

// Status returns a copy of the job's current state.
func (s *Scheduler) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return s.statusLocked(j, true), true
}

// Jobs returns every job's status in submission order. Listings omit
// the per-variable marginal vectors; fetch a job's Status for those.
func (s *Scheduler) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id], false))
	}
	return out
}

// statusLocked snapshots one job; callers hold s.mu.
func (s *Scheduler) statusLocked(j *job, withMarginals bool) JobStatus {
	st := JobStatus{
		ID:          j.id,
		State:       j.state.String(),
		Request:     j.req,
		Workload:    j.kind.String(),
		Epoch:       j.epoch,
		Loss:        j.loss,
		Converged:   j.conv,
		Error:       j.err,
		SimSeconds:  j.simTime.Seconds(),
		WallSeconds: j.wallTime.Seconds(),
		Enqueued:    j.enqueued,
		Started:     j.started,
		Finished:    j.finished,
	}
	if len(j.qmetrics) > 0 {
		st.Metrics = make(map[string]float64, len(j.qmetrics))
		for k, v := range j.qmetrics {
			st.Metrics[k] = v
		}
	}
	if withMarginals && j.margins != nil {
		st.Marginals = append([]float64(nil), j.margins...)
	}
	if j.planned {
		st.Plan = j.plan.String()
	}
	for _, p := range j.curve.Points {
		st.History = append(st.History, ProgressPoint{
			Epoch: p.Epoch, Loss: p.Loss, SimSeconds: p.Time.Seconds(), WallSeconds: p.Wall.Seconds(),
		})
	}
	return st
}

// QueueStats summarises the scheduler's job population by state.
type QueueStats struct {
	Slots     int `json:"slots"`
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
}

// Stats returns current queue statistics.
func (s *Scheduler) Stats() QueueStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := QueueStats{Slots: s.opts.Slots}
	for _, j := range s.jobs {
		switch j.state {
		case JobQueued:
			st.Queued++
		case JobRunning:
			st.Running++
		case JobDone:
			st.Done++
		case JobFailed:
			st.Failed++
		case JobCancelled:
			st.Cancelled++
		}
	}
	return st
}

// Done returns a channel closed when the job reaches a terminal state.
func (s *Scheduler) Done(id string) (<-chan struct{}, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	return j.done, true
}

// Wait blocks until the job terminates or the timeout elapses and
// returns its final (or latest) status.
func (s *Scheduler) Wait(id string, timeout time.Duration) (JobStatus, error) {
	done, ok := s.Done(id)
	if !ok {
		return JobStatus{}, fmt.Errorf("serve: unknown job %q", id)
	}
	select {
	case <-done:
	case <-time.After(timeout):
		st, _ := s.Status(id)
		return st, fmt.Errorf("serve: job %s still %s after %v", id, st.State, timeout)
	}
	st, _ := s.Status(id)
	return st, nil
}

// Close stops the scheduler: new submissions are rejected, queued and
// running jobs are cancelled, and the worker pool drains. Close blocks
// until every worker exits.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	pending := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		if j := s.jobs[id]; !j.state.Terminal() {
			pending = append(pending, j)
		}
	}
	s.mu.Unlock()

	for _, j := range pending {
		j.cancel()
		s.mu.Lock()
		queued := j.state == JobQueued
		s.mu.Unlock()
		if queued {
			s.finish(j, JobCancelled, "")
		}
	}
	close(s.queue)
	s.wg.Wait()
}
