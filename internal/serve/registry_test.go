package serve

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"dimmwitted/internal/core"
	"dimmwitted/internal/metrics"
	"dimmwitted/internal/model"
)

// versionedModel builds a snapshot whose every weight equals version
// and a scorer that asserts it only ever sees that version's weights.
// A torn publication — version k's scorer paired with version j's
// weight slice, or a half-written slice — fails the scorer loudly, so
// the soak test below turns memory-consistency bugs into test errors.
func versionedModel(dim int, version float64) (Scorer, core.Snapshot) {
	x := make([]float64, dim)
	for i := range x {
		x[i] = version
	}
	snap := core.Snapshot{Workload: core.WorkloadGLM, Spec: "svm", Dataset: "reuters", Epoch: int(version), X: x}
	scorer := func(got []float64, examples []model.Example) ([]float64, error) {
		if len(got) != dim {
			return nil, fmt.Errorf("torn model: scorer v%v sees %d weights, want %d", version, len(got), dim)
		}
		for i, v := range got {
			if v != version {
				return nil, fmt.Errorf("torn model: scorer v%v sees weight[%d]=%v", version, i, v)
			}
		}
		out := make([]float64, len(examples))
		for i := range out {
			out[i] = version
		}
		return out, nil
	}
	return scorer, snap
}

// TestRegistryPredictSoak is the serving-path race soak: 32 goroutines
// hammer Predict on a small hot set while concurrent Puts republish
// those models, a cold model is lazily loaded from the durable store,
// and List scans everything. Run under -race by CI; the versioned
// scorers additionally assert that no prediction ever observes a torn
// (scorer, weights) pair, even while the entry is swapped underneath.
func TestRegistryPredictSoak(t *testing.T) {
	_, store := testStores(t)
	reg := NewRegistry()
	reg.Persist(store, nil)

	const dim = 64
	hot := []string{"hot-0", "hot-1", "hot-2", "hot-3"}
	for _, id := range hot {
		scorer, snap := versionedModel(dim, 1)
		if err := reg.PutScored(id, scorer, snap); err != nil {
			t.Fatal(err)
		}
	}
	// A disk-only model the readers will fault in mid-soak.
	coldSnap := core.Snapshot{Workload: core.WorkloadGLM, Spec: "svm", Dataset: "reuters", X: make([]float64, dim)}
	if _, _, err := store.Save("cold-1", coldSnap, nil); err != nil {
		t.Fatal(err)
	}

	const readers = 32
	const iters = 400
	examples := []model.Example{{Idx: []int32{3}, Vals: []float64{1}}}
	stop := make(chan struct{})
	var readerWg, bgWg sync.WaitGroup

	// Publisher: republish the hot set with increasing versions.
	bgWg.Add(1)
	go func() {
		defer bgWg.Done()
		for v := 2.0; ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			for _, id := range hot {
				scorer, snap := versionedModel(dim, v)
				if err := reg.PutScored(id, scorer, snap); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}
	}()
	// Lister: scan listings (in-memory rows plus the disk-only model).
	bgWg.Add(1)
	go func() {
		defer bgWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if got := len(reg.List()); got < len(hot) {
				t.Errorf("listing shrank to %d models", got)
				return
			}
		}
	}()

	for g := 0; g < readers; g++ {
		readerWg.Add(1)
		go func(g int) {
			defer readerWg.Done()
			for i := 0; i < iters; i++ {
				id := hot[(g+i)%len(hot)]
				preds, err := reg.Predict(id, examples)
				if err != nil {
					t.Errorf("reader %d: %v", g, err)
					return
				}
				if len(preds) != 1 || preds[0] != math.Trunc(preds[0]) || preds[0] < 1 {
					t.Errorf("reader %d: prediction %v is not a whole published version", g, preds)
					return
				}
				if i%37 == 0 {
					if _, err := reg.Predict("cold-1", examples); err != nil {
						t.Errorf("reader %d cold: %v", g, err)
						return
					}
				}
			}
		}(g)
	}

	// Publisher and lister run for the readers' whole lifetime, then
	// stop; the race detector plus the versioned scorers carry the
	// assertions.
	readerWg.Wait()
	close(stop)
	bgWg.Wait()
}

// TestRegistryLazyLoadSingleFlight is the regression test for the
// thundering-herd fix: 32 concurrent Predicts against a cold
// store-resident model must read and decode the store exactly once
// (one restore counted), not once per waiting request.
func TestRegistryLazyLoadSingleFlight(t *testing.T) {
	_, store := testStores(t)
	x := make([]float64, 128)
	for i := range x {
		x[i] = 0.25
	}
	snap := core.Snapshot{Workload: core.WorkloadGLM, Spec: "svm", Dataset: "reuters", Epoch: 3, X: x}
	if _, _, err := store.Save("job-9", snap, nil); err != nil {
		t.Fatal(err)
	}

	var counters metrics.ServeCounters
	reg := NewRegistry()
	reg.Persist(store, &counters)

	const clients = 32
	examples := []model.Example{{Idx: []int32{0}, Vals: []float64{2}}}
	start := make(chan struct{})
	var failures atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			preds, err := reg.Predict("job-9", examples)
			if err != nil || len(preds) != 1 {
				failures.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d/%d cold predictions failed", n, clients)
	}
	if got := counters.Snapshot().CheckpointRestores; got != 1 {
		t.Fatalf("cold popular model decoded %d times, want 1 (single-flight)", got)
	}
	// Once resident, further predictions stay on the lock-free path:
	// no additional restores.
	if _, err := reg.Predict("job-9", examples); err != nil {
		t.Fatal(err)
	}
	if got := counters.Snapshot().CheckpointRestores; got != 1 {
		t.Fatalf("resident model re-read the store (%d restores)", got)
	}
}

// TestRegistryRepublishKeepsLatest pins the atomic-swap publication
// rule: after a republish, readers see the new model immediately, and
// the listing row reflects it.
func TestRegistryRepublishKeepsLatest(t *testing.T) {
	reg := NewRegistry()
	scorer1, snap1 := versionedModel(8, 1)
	scorer2, snap2 := versionedModel(8, 2)
	if err := reg.PutScored("m", scorer1, snap1); err != nil {
		t.Fatal(err)
	}
	if err := reg.PutScored("m", scorer2, snap2); err != nil {
		t.Fatal(err)
	}
	preds, err := reg.Predict("m", []model.Example{{Idx: []int32{0}, Vals: []float64{1}}})
	if err != nil {
		t.Fatal(err)
	}
	if preds[0] != 2 {
		t.Fatalf("prediction %v, want the republished version 2", preds[0])
	}
	if got := reg.List(); len(got) != 1 || got[0].Epoch != 2 {
		t.Fatalf("listing %+v, want one row at epoch 2", got)
	}
	if reg.Len() != 1 {
		t.Fatalf("Len %d, want 1", reg.Len())
	}
}

// TestRegistryShardDistribution sanity-checks the stripe hash: job-
// style ids spread over more than one shard, so hot models do not all
// contend on one stripe's write lock.
func TestRegistryShardDistribution(t *testing.T) {
	reg := NewRegistry()
	seen := map[*regShard]bool{}
	for i := 0; i < 64; i++ {
		seen[reg.shardFor(fmt.Sprintf("job-%d", i))] = true
	}
	if len(seen) < regShards/2 {
		t.Fatalf("64 ids hash to %d shards, want at least %d", len(seen), regShards/2)
	}
}
