package serve

import (
	"math"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"dimmwitted/internal/core"
	"dimmwitted/internal/data"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

// onlineRows generates deterministic sparse classification rows whose
// labels follow a fixed hidden model, so SGD on them actually learns.
func onlineRows(seed int64, n, cols int) []data.Row {
	rng := rand.New(rand.NewSource(seed))
	truth := make([]float64, cols)
	tr := rand.New(rand.NewSource(99))
	for j := range truth {
		truth[j] = tr.NormFloat64()
	}
	rows := make([]data.Row, n)
	for i := range rows {
		nnz := 2 + rng.Intn(4)
		seen := map[int32]bool{}
		score := 0.0
		for len(rows[i].Indices) < nnz {
			c := int32(rng.Intn(cols))
			if seen[c] {
				continue
			}
			seen[c] = true
			v := rng.NormFloat64()
			rows[i].Indices = append(rows[i].Indices, c)
			rows[i].Values = append(rows[i].Values, v)
			score += v * truth[c]
		}
		if score >= 0 {
			rows[i].Label = 1
		} else {
			rows[i].Label = -1
		}
	}
	return rows
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(waitTimeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPromoteDecision pins the canary gate's rule: first publication
// always promotes, later candidates may not regress the live held-out
// loss beyond the slack, and diverged (non-finite) candidates never
// promote — not even as the first publication.
func TestPromoteDecision(t *testing.T) {
	cases := []struct {
		name             string
		cand, live       float64
		hasLive, promote bool
	}{
		{"first publication", 1.0, 0, false, true},
		{"improvement", 0.5, 1.0, true, true},
		{"equal", 1.0, 1.0, true, true},
		{"within slack", 1.0 * (1 + promoteSlack), 1.0, true, true},
		{"beyond slack", 1.02, 1.0, true, false},
		{"clear regression", 5.0, 1.0, true, false},
		{"nan candidate", math.NaN(), 1.0, true, false},
		{"nan first", math.NaN(), 0, false, false},
		{"inf candidate", math.Inf(1), 1.0, true, false},
	}
	for _, c := range cases {
		if got := promoteDecision(c.cand, c.live, c.hasLive); got != c.promote {
			t.Errorf("%s: promoteDecision(%v, %v, %v) = %v, want %v",
				c.name, c.cand, c.live, c.hasLive, got, c.promote)
		}
	}
}

// TestShadowGateNeverPromotesRegression drives publishOnline directly:
// after a good model goes live, a regressing candidate (and a diverged
// one) must be rolled back, leaving the good model serving.
func TestShadowGateNeverPromotesRegression(t *testing.T) {
	const cols = 8
	s := newTestScheduler(t, Options{})
	h, err := data.EnsureStream("gate-stream", cols, data.Classification)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Append(onlineRows(21, 30, cols)); err != nil {
		t.Fatal(err)
	}
	j := &job{
		id:      "job-gate",
		kind:    core.WorkloadGLM,
		spec:    model.NewSVM(),
		curView: h.View(),
		req:     TrainRequest{Model: "svm", Dataset: "gate-stream", Online: true},
	}

	good := core.Snapshot{Workload: core.WorkloadGLM, Spec: "svm", Dataset: "gate-stream",
		X: make([]float64, cols)}
	if err := s.publishOnline(j, good); err != nil {
		t.Fatal(err)
	}
	if _, snap, ok := s.models.Get(j.id); !ok || snap.X[0] != 0 {
		t.Fatal("first candidate was not promoted")
	}

	// A wildly regressing candidate: every weight huge, hinge loss
	// explodes on the misclassified half.
	bad := good
	bad.X = make([]float64, cols)
	for i := range bad.X {
		bad.X[i] = 1e6
	}
	if err := s.publishOnline(j, bad); err != nil {
		t.Fatal(err)
	}
	// A diverged candidate: NaN weights.
	diverged := good
	diverged.X = make([]float64, cols)
	diverged.X[0] = math.NaN()
	if err := s.publishOnline(j, diverged); err != nil {
		t.Fatal(err)
	}

	_, live, ok := s.models.Get(j.id)
	if !ok {
		t.Fatal("live model vanished")
	}
	for i, x := range live.X {
		if x != 0 {
			t.Fatalf("live X[%d] = %v — a regressing canary was promoted", i, x)
		}
	}
	if j.online.published != 3 || j.online.promoted != 1 || j.online.rolledBack != 2 {
		t.Fatalf("progress = %+v, want 3 published / 1 promoted / 2 rolled back", j.online)
	}
	c := s.Counters().Snapshot()
	if c.ShadowEvals != 3 || c.ModelsPromoted != 1 || c.ModelsRolledBack != 2 {
		t.Fatalf("counters = evals %d promoted %d rolledback %d, want 3/1/2",
			c.ShadowEvals, c.ModelsPromoted, c.ModelsRolledBack)
	}
}

// TestPlanKeyMissesAfterAppend: an append publishes a new dataset
// version, and both the serve plan-cache key and the tune-store key
// carry it — a plan cached for the smaller matrix is never reused.
func TestPlanKeyMissesAfterAppend(t *testing.T) {
	const cols = 12
	h, err := data.EnsureStream("key-stream", cols, data.Classification)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Append(onlineRows(31, 25, cols)); err != nil {
		t.Fatal(err)
	}
	v1 := h.View()
	spec := model.NewSVM()
	k1 := KeyFor(spec, v1, numa.Local2, core.ExecSimulated)
	if k1.DatasetVersion != 2 {
		t.Fatalf("plan key version = %d, want 2 after the first append", k1.DatasetVersion)
	}
	c := NewPlanCache()
	c.Store(k1, core.Plan{Machine: numa.Local2})

	if _, err := h.Append(onlineRows(32, 25, cols)); err != nil {
		t.Fatal(err)
	}
	v2 := h.View()
	k2 := KeyFor(spec, v2, numa.Local2, core.ExecSimulated)
	if k2.DatasetVersion != v1.Version+1 {
		t.Fatalf("plan key version = %d, want %d after the append", k2.DatasetVersion, v1.Version+1)
	}
	if k1 == k2 {
		t.Fatal("append did not change the plan key")
	}
	if _, ok := c.Lookup(k2); ok {
		t.Fatal("grown dataset hit the plan cached for the smaller matrix")
	}
	if _, ok := c.Lookup(k1); !ok {
		t.Fatal("the old view's cached plan disappeared")
	}

	// The tune-store key separates the same way.
	tk1, tk2 := rivalKey(t, v1, core.Plan{Machine: numa.Local2}), rivalKey(t, v2, core.Plan{Machine: numa.Local2})
	if tk1 == tk2 {
		t.Fatal("append did not change the tune key")
	}
	if tk1.DatasetVersion == tk2.DatasetVersion {
		t.Fatalf("tune keys share dataset version %d", tk1.DatasetVersion)
	}
}

// TestOnlineJobTrainsAcrossAppends is the tentpole integration: a
// running online job adopts three appended chunks without restarting,
// publishes versioned models through the shadow gate, and reports its
// streaming state.
func TestOnlineJobTrainsAcrossAppends(t *testing.T) {
	const cols = 20
	s := newTestScheduler(t, Options{})
	h, err := data.EnsureStream("grow-stream", cols, data.Classification)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Append(onlineRows(41, 40, cols)); err != nil {
		t.Fatal(err)
	}

	id, err := s.Submit(TrainRequest{
		Model: "svm", Dataset: "grow-stream", Online: true,
		MaxEpochs: 1 << 30, PublishEvery: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}

	totalRows := 40
	for chunk := 0; chunk < 3; chunk++ {
		v, err := h.Append(onlineRows(int64(42+chunk), 30, cols))
		if err != nil {
			t.Fatal(err)
		}
		totalRows += 30
		waitUntil(t, "chunk adoption", func() bool {
			st, ok := s.Status(id)
			return ok && st.Online != nil && st.Online.DatasetVersion >= v.Version
		})
	}
	waitUntil(t, "a promotion", func() bool {
		st, ok := s.Status(id)
		return ok && st.Online != nil && st.Online.VersionsPromoted >= 1
	})

	st, ok := s.Status(id)
	if !ok {
		t.Fatal("job vanished")
	}
	if st.Online.Rows != totalRows {
		t.Fatalf("online rows = %d, want %d", st.Online.Rows, totalRows)
	}
	if st.Online.VersionsPublished < st.Online.VersionsPromoted {
		t.Fatalf("published %d < promoted %d", st.Online.VersionsPublished, st.Online.VersionsPromoted)
	}
	if c := s.Counters().Snapshot(); c.OnlineAdopts < 3 {
		t.Fatalf("online adopts = %d, want >= 3 (one per appended chunk)", c.OnlineAdopts)
	}

	if err := s.Cancel(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(id, waitTimeout); err != nil {
		t.Fatal(err)
	}
	// The promoted model serves: trained on the stream's column count.
	_, snap, ok := s.Models().Get(id)
	if !ok {
		t.Fatal("no model registered after promotions")
	}
	if len(snap.X) != cols {
		t.Fatalf("served model dimension = %d, want %d", len(snap.X), cols)
	}
}

// TestOnlineMatchesStaticLoss is the loss-parity property: an online
// job over a stream ingested in three chunks converges to exactly the
// loss of a static job on the same rows pre-materialized in one chunk
// (same seed, same plan, simulated executor — training is
// deterministic, so parity is bitwise).
func TestOnlineMatchesStaticLoss(t *testing.T) {
	const cols, n, epochs = 16, 90, 12
	rows := onlineRows(51, n, cols)

	chunked, err := data.EnsureStream("parity-online", cols, data.Classification)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 30 {
		if _, err := chunked.Append(rows[i : i+30]); err != nil {
			t.Fatal(err)
		}
	}
	single, err := data.EnsureStream("parity-static", cols, data.Classification)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := single.Append(rows); err != nil {
		t.Fatal(err)
	}

	s := newTestScheduler(t, Options{})
	run := func(dataset string, online bool) JobStatus {
		t.Helper()
		id, err := s.Submit(TrainRequest{
			Model: "svm", Dataset: dataset, Online: online,
			MaxEpochs: epochs, Seed: 5, Access: "row", Executor: "simulated",
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.Wait(id, waitTimeout)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "done" {
			t.Fatalf("%s job ended %s: %s", dataset, st.State, st.Error)
		}
		return st
	}
	onlineSt := run("parity-online", true)
	staticSt := run("parity-static", false)

	if onlineSt.Plan != staticSt.Plan {
		t.Fatalf("plans diverged:\nonline %s\nstatic %s", onlineSt.Plan, staticSt.Plan)
	}
	if onlineSt.Epoch != epochs || staticSt.Epoch != epochs {
		t.Fatalf("epochs = %d/%d, want %d", onlineSt.Epoch, staticSt.Epoch, epochs)
	}
	if onlineSt.Loss != staticSt.Loss {
		t.Fatalf("loss parity broken: online %v, static %v", onlineSt.Loss, staticSt.Loss)
	}
	if onlineSt.Online == nil || onlineSt.Online.VersionsPromoted < 1 {
		t.Fatalf("online status = %+v, want at least one promotion", onlineSt.Online)
	}
}

// TestHTTPAppendEndpoint covers the ingestion route's contract:
// stream creation, version bumps, and the error taxonomy (unknown
// dataset without cols, frozen registry names, malformed rows).
func TestHTTPAppendEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	client := ts.Client()
	url := ts.URL + "/v1/datasets/http-stream/append"

	sparse := []appendRowJSON{
		{Indices: []int32{0, 3}, Values: []float64{1, -1}, Label: 1},
		{Indices: []int32{1}, Values: []float64{2}, Label: -1},
	}

	// Unknown dataset without cols: 404, nothing created.
	if code := doJSON(t, client, http.MethodPost, url, appendRequest{Rows: sparse}, nil); code != http.StatusNotFound {
		t.Fatalf("append without cols = %d, want 404", code)
	}
	// First append with cols creates the stream at version 2.
	var resp appendResponse
	if code := doJSON(t, client, http.MethodPost, url, appendRequest{Rows: sparse, Cols: 5}, &resp); code != http.StatusOK {
		t.Fatalf("creating append = %d, want 200", code)
	}
	if resp.Version != 2 || resp.Rows != 2 || resp.Appended != 2 {
		t.Fatalf("creating append response = %+v, want version 2, 2 rows", resp)
	}
	// A later chunk (cols omitted) bumps the version.
	if code := doJSON(t, client, http.MethodPost, url, appendRequest{Rows: sparse[:1]}, &resp); code != http.StatusOK {
		t.Fatalf("second append failed: %d", code)
	}
	if resp.Version != 3 || resp.Rows != 3 || resp.Appended != 1 {
		t.Fatalf("second append response = %+v, want version 3, 3 rows", resp)
	}

	// Frozen registry dataset: 409.
	frozen := ts.URL + "/v1/datasets/reuters/append"
	if code := doJSON(t, client, http.MethodPost, frozen, appendRequest{Rows: sparse, Cols: 5}, nil); code != http.StatusConflict {
		t.Fatalf("append to registry dataset = %d, want 409", code)
	}
	// Malformed rows: 400, version unchanged.
	bad := []appendRowJSON{{Indices: []int32{0}, Values: []float64{1}, Dense: []float64{1, 2, 3, 4, 5}}}
	if code := doJSON(t, client, http.MethodPost, url, appendRequest{Rows: bad}, nil); code != http.StatusBadRequest {
		t.Fatalf("mixed dense+sparse row = %d, want 400", code)
	}
	if code := doJSON(t, client, http.MethodPost, url, appendRequest{Rows: []appendRowJSON{}}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty append = %d, want 400", code)
	}
	if h, err := data.HandleByName("http-stream"); err != nil || h.Version() != 3 {
		t.Fatalf("rejected appends changed the stream: %v v%d", err, h.Version())
	}

	// The ingested stream trains end to end over HTTP.
	var tresp trainResponse
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/train", TrainRequest{
		Model: "svm", Dataset: "http-stream", Online: true, MaxEpochs: 6,
	}, &tresp); code != http.StatusAccepted {
		t.Fatalf("online train over HTTP = %d, want 202", code)
	}
	st := pollJob(t, client, ts.URL, tresp.JobID)
	if st.State != "done" {
		t.Fatalf("online job ended %s: %s", st.State, st.Error)
	}
	if st.Online == nil || st.Online.DatasetVersion != 3 {
		t.Fatalf("online status = %+v, want dataset version 3", st.Online)
	}
}

// TestTwoJobsTrainWhileAppending is the dataset-aliasing regression
// under the race detector: two jobs train over the same stream (one
// online, one static on a pinned view) while an appender grows it.
// Before views were frozen, ByName handed every job the same mutable
// *Dataset and this interleaving tore the matrix.
func TestTwoJobsTrainWhileAppending(t *testing.T) {
	const cols = 18
	s := newTestScheduler(t, Options{})
	h, err := data.EnsureStream("race-stream", cols, data.Classification)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Append(onlineRows(61, 50, cols)); err != nil {
		t.Fatal(err)
	}

	online, err := s.Submit(TrainRequest{
		Model: "svm", Dataset: "race-stream", Online: true,
		MaxEpochs: 1 << 30, PublishEvery: 3, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	static, err := s.Submit(TrainRequest{
		Model: "lr", Dataset: "race-stream", MaxEpochs: 40, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	for chunk := 0; chunk < 4; chunk++ {
		v, err := h.Append(onlineRows(int64(62+chunk), 25, cols))
		if err != nil {
			t.Fatal(err)
		}
		waitUntil(t, "adoption during concurrent training", func() bool {
			st, ok := s.Status(online)
			return ok && st.Online != nil && st.Online.DatasetVersion >= v.Version
		})
	}

	st, err := s.Wait(static, waitTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("static job ended %s: %s", st.State, st.Error)
	}
	// The static job trained its submission-time view: 50 rows, not
	// whatever the stream grew to.
	if _, snap, ok := s.Models().Get(static); !ok || len(snap.X) != cols {
		t.Fatalf("static model missing or wrong dimension")
	}
	if err := s.Cancel(online); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(online, waitTimeout); err != nil {
		t.Fatal(err)
	}
}
