package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"dimmwitted/internal/core"
	"dimmwitted/internal/model"
)

// jsonBody marshals v for a hand-built request.
func jsonBody(t *testing.T, v any) io.Reader {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

// TestHTTPLatencyContract is the end-to-end latency/backpressure
// contract: /v1/stats must report per-route histograms whose counts
// match the requests actually issued and whose percentiles are sane
// (p50 <= p95 <= p99 <= max), and once the predict coalescer's queue
// is saturated, admission control must answer 429 with a Retry-After
// header — then serve every admitted request once the path unblocks.
func TestHTTPLatencyContract(t *testing.T) {
	srv, ts := newTestServer(t, Options{
		BatchWindow:  time.Millisecond,
		BatchMax:     1, // every request flushes alone: saturation below is deterministic
		PredictQueue: 2,
	})
	client := ts.Client()

	// Phase A: a normal train-then-predict session; the histograms
	// must account for every request.
	id, _ := trainToCompletion(t, client, ts.URL, TrainRequest{
		Model: "svm", Dataset: "reuters", MaxEpochs: 2,
	})
	const predicts = 20
	for i := 0; i < predicts; i++ {
		var presp predictResponse
		code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/predict", predictRequest{
			Model:    id,
			Examples: []exampleJSON{{Indices: []int32{int32(i % 7)}, Values: []float64{1}}},
		}, &presp)
		if code != http.StatusOK {
			t.Fatalf("predict %d: status %d", i, code)
		}
	}

	var stats statsResponse
	if code := doJSON(t, client, http.MethodGet, ts.URL+"/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatal("GET /v1/stats failed")
	}
	pl, ok := stats.Latency["POST /v1/predict"]
	if !ok {
		t.Fatalf("stats latency map %v has no predict route", stats.Latency)
	}
	if pl.Count != predicts {
		t.Fatalf("predict latency count %d, want %d (counts must match issued requests)", pl.Count, predicts)
	}
	if !(pl.P50Ms <= pl.P95Ms && pl.P95Ms <= pl.P99Ms && pl.P99Ms <= pl.MaxMs) {
		t.Fatalf("predict percentiles not monotone: %+v", pl)
	}
	if pl.P50Ms <= 0 || pl.MeanMs <= 0 {
		t.Fatalf("predict latency summary has empty timings: %+v", pl)
	}
	if tl := stats.Latency["POST /v1/train"]; tl.Count != 1 {
		t.Fatalf("train latency count %d, want 1", tl.Count)
	}
	if stats.Batch == nil || !stats.Batch.Enabled {
		t.Fatalf("batch stats %+v, want enabled", stats.Batch)
	}

	// Phase B: saturate the coalescer deterministically. A blocking
	// scorer pins all four scoring workers, one more request blocks in
	// the dispatcher hand-off, two fill the queue; the next request
	// must be rejected with 429 + Retry-After.
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	blocker := func(x []float64, examples []model.Example) ([]float64, error) {
		entered <- struct{}{}
		<-release
		return make([]float64, len(examples)), nil
	}
	if err := srv.Scheduler().Models().PutScored("slow", blocker,
		core.Snapshot{Workload: core.WorkloadGLM, Spec: "svm", X: []float64{0}}); err != nil {
		t.Fatal(err)
	}

	preq := predictRequest{Model: "slow", Examples: []exampleJSON{{Indices: []int32{0}, Values: []float64{1}}}}
	codes := make(chan int, 8)
	var wg sync.WaitGroup
	submit := func() {
		defer wg.Done()
		var out predictResponse
		codes <- doJSON(t, client, http.MethodPost, ts.URL+"/v1/predict", preq, &out)
	}
	const workers = 4 // the coalescer's default scoring pool
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go submit()
	}
	for i := 0; i < workers; i++ {
		select {
		case <-entered:
		case <-time.After(10 * time.Second):
			t.Fatal("scoring workers never saturated")
		}
	}
	// One into the dispatcher, two into the queue.
	for want := int64(workers + 1); want <= workers+3; want++ {
		wg.Add(1)
		go submit()
		deadline := time.Now().Add(10 * time.Second)
		for srv.Coalescer().Stats().Depth != want {
			if time.Now().After(deadline) {
				t.Fatalf("depth gauge stuck below %d: %+v", want, srv.Coalescer().Stats())
			}
			time.Sleep(time.Millisecond)
		}
	}

	// The queue is full: admission control answers 429 + Retry-After.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict", jsonBody(t, preq))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated predict: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		// The 1ms flush window rounds up to the 1-second floor.
		t.Fatalf("429 Retry-After = %q, want \"1\"", ra)
	}

	// Unblock: every admitted request completes with 200.
	close(release)
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Fatalf("admitted request finished with status %d", code)
		}
	}

	// Final accounting: the predict route's histogram saw every issued
	// request — phase A, the seven admitted, and the rejected one.
	doJSON(t, client, http.MethodGet, ts.URL+"/v1/stats", nil, &stats)
	if got := stats.Latency["POST /v1/predict"].Count; got != predicts+workers+4 {
		t.Fatalf("predict latency count %d, want %d", got, predicts+workers+4)
	}
	if stats.Batch.Rejected != 1 {
		t.Fatalf("batch stats %+v, want exactly 1 rejection", stats.Batch)
	}
	if stats.Batch.Depth != 0 {
		t.Fatalf("queue depth gauge %d after drain, want 0", stats.Batch.Depth)
	}
}

// TestRetryAfterSeconds pins the 429 hint's rounding: the flush window
// rounds UP to whole seconds with a 1-second floor. A whole-second
// window must not gain a spurious extra second (a 1s window once
// answered Retry-After: 2), and sub-second windows must not truncate
// to zero.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		window time.Duration
		want   string
	}{
		{0, "1"},
		{time.Millisecond, "1"},
		{500 * time.Millisecond, "1"},
		{999 * time.Millisecond, "1"},
		{time.Second, "1"},
		{time.Second + time.Millisecond, "2"},
		{1500 * time.Millisecond, "2"},
		{2 * time.Second, "2"},
		{2*time.Second + time.Nanosecond, "3"},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.window); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", c.window, got, c.want)
		}
	}
}
