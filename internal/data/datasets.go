package data

import "dimmwitted/internal/mat"

// The named constructors below generate scaled-down analogs of the
// paper's evaluation datasets (Figure 10). The scale is reduced so the
// full experiment suite runs in seconds on one core, but the *ratios*
// that drive the tradeoffs are preserved:
//
//	dataset   paper (N x d, nnz/row)        here (N x d, nnz/row)
//	RCV1      781K x 47K,  ~77, sparse      3000 x 1500, ~40, sparse
//	Reuters   8K   x 18K,  ~12, sparse      800  x 1600, ~12, sparse
//	Music     515K x 91,   dense            2500 x 91,   dense
//	Forest    581K x 54,   dense            2500 x 54,   dense
//	Amazon    926K x 335K, 2 (edges)        graph: 3000 nodes, ~6K edges
//	Google    2M   x 2M,   ~1.5 (edges)     graph: 5000 nodes, ~10K edges
//	ClueWeb   500M x 100K, 8, sparse        30000 x 1000, 8, sparse
//
// Both text datasets remain underdetermined (d of the same order as N
// or larger relative to information content), both dense datasets
// remain heavily overdetermined, and both graphs keep two nonzeros per
// row with power-law column (vertex) degrees — the properties the
// paper's access-method and replication tradeoffs depend on.

// RCV1 returns the scaled RCV1 text-classification analog.
func RCV1() *Dataset {
	return GenerateSparse(SparseConfig{
		Name: "rcv1", Rows: 3000, Cols: 1500, NNZPerRow: 40, Noise: 0.05, Seed: 101,
	})
}

// Reuters returns the scaled Reuters text-classification analog.
func Reuters() *Dataset {
	return GenerateSparse(SparseConfig{
		Name: "reuters", Rows: 800, Cols: 1600, NNZPerRow: 12, Noise: 0.05, Seed: 102,
	})
}

// ReutersReplicated returns the executor-benchmark scale of the
// Reuters analog: 10x the rows at the same width, sparsity and noise,
// big enough that a parallel epoch's orchestration (pool wakeup, steal
// cursors, barrier) amortizes against real step work — the regime
// where the real-concurrency backend should beat the simulated
// interleaver.
func ReutersReplicated() *Dataset {
	return GenerateSparse(SparseConfig{
		Name: "reuters10x", Rows: 8000, Cols: 1600, NNZPerRow: 12, Noise: 0.05, Seed: 102,
	})
}

// Music returns the scaled YearPredictionMSD (Music) analog: dense,
// overdetermined, used for regression and classification benchmarks.
func Music() *Dataset {
	return GenerateDense(DenseConfig{
		Name: "music", Rows: 2500, Cols: 91, Noise: 0.02, Seed: 103,
	})
}

// MusicRegression returns the Music analog with real-valued labels.
func MusicRegression() *Dataset {
	return GenerateDense(DenseConfig{
		Name: "music", Rows: 2500, Cols: 91, Noise: 0.1, Regression: true, Seed: 103,
	})
}

// MusicRegressionReplicated returns the executor-benchmark scale of
// the Music regression analog: 10x the rows at the same width and
// noise, big enough that a parallel epoch's orchestration amortizes
// against real step work (the same role ReutersReplicated plays for
// the sparse tasks).
func MusicRegressionReplicated() *Dataset {
	return GenerateDense(DenseConfig{
		Name: "music10x", Rows: 25000, Cols: 91, Noise: 0.1, Regression: true, Seed: 103,
	})
}

// Forest returns the scaled Covertype (Forest) analog: dense,
// overdetermined.
func Forest() *Dataset {
	return GenerateDense(DenseConfig{
		Name: "forest", Rows: 2500, Cols: 54, Noise: 0.02, Seed: 104,
	})
}

// AmazonGraph returns the scaled Amazon co-purchase graph analog.
func AmazonGraph() *Graph {
	return GenerateGraph(GraphConfig{Name: "amazon", Nodes: 3000, EdgesPerNode: 2, Seed: 105})
}

// GoogleGraph returns the scaled Google+ social graph analog.
func GoogleGraph() *Graph {
	return GenerateGraph(GraphConfig{Name: "google", Nodes: 5000, EdgesPerNode: 2, Seed: 106})
}

// AmazonLP returns the vertex-cover LP on the Amazon graph analog.
func AmazonLP() *Dataset { return AmazonGraph().VertexCoverLP() }

// GoogleLP returns the vertex-cover LP on the Google graph analog.
func GoogleLP() *Dataset { return GoogleGraph().VertexCoverLP() }

// AmazonQP returns the graph-smoothing QP on the Amazon graph analog.
func AmazonQP() *Dataset { return AmazonGraph().SmoothingQP(0.3, 107) }

// GoogleQP returns the graph-smoothing QP on the Google graph analog.
func GoogleQP() *Dataset { return GoogleGraph().SmoothingQP(0.3, 108) }

// ClueWeb returns the scaled ClueWeb URL-features analog used by the
// scalability experiment (Appendix C.3): least-squares with few
// nonzeros per row and a model small enough to stay LLC-resident.
func ClueWeb(scale float64) *Dataset {
	rows := int(30000 * scale)
	if rows < 1 {
		rows = 1
	}
	ds := GenerateSparse(SparseConfig{
		Name: "clueweb", Rows: rows, Cols: 1000, NNZPerRow: 8,
		Noise: 0.1, Regression: true, Seed: 109,
	})
	return ds
}

// ParallelSum returns the trivial dense "dataset" used by the paper's
// parallel-sum throughput microbenchmark (Figure 13): N rows of a
// handful of values whose sum is the one-dimensional "model".
func ParallelSum(rows, cols int) *Dataset {
	b := mat.NewBuilder(cols)
	row := make([]float64, cols)
	for i := 0; i < rows; i++ {
		for j := range row {
			row[j] = 1
		}
		b.AddDenseRow(row)
	}
	return &Dataset{Name: "parallel-sum", Task: Regression, A: b.Build()}
}
