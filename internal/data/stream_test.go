package data

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// streamRows generates deterministic sparse rows for stream tests.
func streamRows(seed int64, n, cols int) []Row {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]Row, n)
	for i := range rows {
		nnz := 1 + rng.Intn(5)
		seen := map[int32]bool{}
		for len(rows[i].Indices) < nnz {
			c := int32(rng.Intn(cols))
			if seen[c] {
				continue
			}
			seen[c] = true
			rows[i].Indices = append(rows[i].Indices, c)
			rows[i].Values = append(rows[i].Values, rng.NormFloat64())
		}
		if rng.Intn(2) == 0 {
			rows[i].Label = 1
		} else {
			rows[i].Label = -1
		}
	}
	return rows
}

// datasetsEqual compares two views' matrices and labels entry by entry.
func datasetsEqual(t *testing.T, a, b *Dataset) {
	t.Helper()
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() || a.NNZ() != b.NNZ() {
		t.Fatalf("shape %dx%d/%d vs %dx%d/%d",
			a.Rows(), a.Cols(), a.NNZ(), b.Rows(), b.Cols(), b.NNZ())
	}
	for i := range a.A.RowPtr {
		if a.A.RowPtr[i] != b.A.RowPtr[i] {
			t.Fatalf("rowptr[%d] = %d vs %d", i, a.A.RowPtr[i], b.A.RowPtr[i])
		}
	}
	for k := range a.A.ColIdx {
		if a.A.ColIdx[k] != b.A.ColIdx[k] || a.A.Vals[k] != b.A.Vals[k] {
			t.Fatalf("entry %d = (%d,%v) vs (%d,%v)",
				k, a.A.ColIdx[k], a.A.Vals[k], b.A.ColIdx[k], b.A.Vals[k])
		}
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("label %d = %v vs %v", i, a.Labels[i], b.Labels[i])
		}
	}
}

// TestStreamChunkedAppendMatchesSingle: ingesting N rows in k chunks
// publishes the same matrix as ingesting them in one chunk — chunking
// is invisible to the final view.
func TestStreamChunkedAppendMatchesSingle(t *testing.T) {
	const cols = 40
	rows := streamRows(7, 100, cols)

	chunked, err := EnsureStream("test-chunked", cols, Classification)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(rows); i += 25 {
		if _, err := chunked.Append(rows[i : i+25]); err != nil {
			t.Fatal(err)
		}
	}
	single, err := EnsureStream("test-single", cols, Classification)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := single.Append(rows); err != nil {
		t.Fatal(err)
	}

	cv, sv := chunked.View(), single.View()
	datasetsEqual(t, cv, sv)
	if err := cv.Validate(); err != nil {
		t.Fatal(err)
	}
	// Four appends after the empty version 1, versus one.
	if cv.Version != 5 || sv.Version != 2 {
		t.Fatalf("versions = %d/%d, want 5/2", cv.Version, sv.Version)
	}
}

// TestStreamRowNormalization: appends normalise rows to the CSR
// invariants — sparse entries sorted by column with duplicates summed,
// dense zeros dropped.
func TestStreamRowNormalization(t *testing.T) {
	h, err := EnsureStream("test-normalize", 6, Regression)
	if err != nil {
		t.Fatal(err)
	}
	view, err := h.Append([]Row{
		{Indices: []int32{4, 1, 4, 0}, Values: []float64{1, 2, 3, 4}, Label: 0.5},
		{Dense: []float64{0, 7, 0, 0, 8, 0}, Label: -0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := view.Validate(); err != nil {
		t.Fatal(err)
	}
	idx, vals := view.A.Row(0)
	if len(idx) != 3 || idx[0] != 0 || idx[1] != 1 || idx[2] != 4 {
		t.Fatalf("row 0 columns = %v, want [0 1 4]", idx)
	}
	if vals[0] != 4 || vals[1] != 2 || vals[2] != 1+3 {
		t.Fatalf("row 0 values = %v, want [4 2 4] (duplicate column summed)", vals)
	}
	idx, vals = view.A.Row(1)
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 4 || vals[0] != 7 || vals[1] != 8 {
		t.Fatalf("row 1 = %v/%v, want zeros dropped", idx, vals)
	}
	if view.Labels[0] != 0.5 || view.Labels[1] != -0.5 {
		t.Fatalf("labels = %v", view.Labels)
	}
}

// TestStreamViewImmutableUnderAppend is the epoch-stability contract:
// a published view never changes, no matter how much the stream grows
// after it was taken.
func TestStreamViewImmutableUnderAppend(t *testing.T) {
	const cols = 30
	h, err := EnsureStream("test-immutable", cols, Classification)
	if err != nil {
		t.Fatal(err)
	}
	first := streamRows(11, 20, cols)
	old, err := h.Append(first)
	if err != nil {
		t.Fatal(err)
	}
	wantNNZ := old.NNZ()
	sum := 0.0
	for _, v := range old.A.Vals {
		sum += v
	}

	// Grow the stream far enough to force backing-array reallocations.
	for i := 0; i < 10; i++ {
		if _, err := h.Append(streamRows(int64(100+i), 50, cols)); err != nil {
			t.Fatal(err)
		}
	}

	if old.Rows() != 20 || old.NNZ() != wantNNZ {
		t.Fatalf("old view shape drifted: %dx%d/%d", old.Rows(), old.Cols(), old.NNZ())
	}
	got := 0.0
	for _, v := range old.A.Vals {
		got += v
	}
	if got != sum {
		t.Fatalf("old view values drifted: sum %v vs %v", got, sum)
	}
	if cur := h.View(); cur.Rows() != 20+500 || cur.Version != old.Version+10 {
		t.Fatalf("current view = %d rows v%d, want 520 rows v%d",
			cur.Rows(), cur.Version, old.Version+10)
	}
}

// TestStreamViewAt: only published row counts (the checkpoint
// high-water marks) resolve, and each resolves to the matrix that was
// live at that point.
func TestStreamViewAt(t *testing.T) {
	const cols = 25
	h, err := EnsureStream("test-viewat", cols, Classification)
	if err != nil {
		t.Fatal(err)
	}
	rows := streamRows(3, 60, cols)
	var published []*Dataset
	for i := 0; i < len(rows); i += 20 {
		v, err := h.Append(rows[i : i+20])
		if err != nil {
			t.Fatal(err)
		}
		published = append(published, v)
	}

	for _, want := range published {
		got, err := h.ViewAt(want.Rows())
		if err != nil {
			t.Fatal(err)
		}
		if got.Version != want.Version {
			t.Fatalf("ViewAt(%d) version = %d, want %d", want.Rows(), got.Version, want.Version)
		}
		datasetsEqual(t, got, want)
	}
	if empty, err := h.ViewAt(0); err != nil || empty.Rows() != 0 || empty.Version != 1 {
		t.Fatalf("ViewAt(0) = %v rows, %v — want the empty version-1 view", empty, err)
	}
	if _, err := h.ViewAt(30); err == nil {
		t.Fatal("ViewAt(30) resolved a row count that was never published")
	}
	if _, err := h.ViewAt(1000); err == nil {
		t.Fatal("ViewAt(1000) resolved beyond the stream")
	}
}

// TestStreamAppendValidation: bad rows are rejected before any
// mutation, so a chunk with one bad row leaves the store untouched.
func TestStreamAppendValidation(t *testing.T) {
	h, err := EnsureStream("test-validate", 10, Classification)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]Row{
		"empty chunk":         {},
		"column out of range": {{Indices: []int32{10}, Values: []float64{1}}},
		"negative column":     {{Indices: []int32{-1}, Values: []float64{1}}},
		"length mismatch":     {{Indices: []int32{1, 2}, Values: []float64{1}}},
		"dense wrong width":   {{Dense: []float64{1, 2}}},
		"dense and sparse":    {{Dense: make([]float64, 10), Indices: []int32{1}, Values: []float64{1}}},
		"good then bad": {
			{Indices: []int32{1}, Values: []float64{1}},
			{Indices: []int32{99}, Values: []float64{1}},
		},
	}
	for name, chunk := range cases {
		if _, err := h.Append(chunk); err == nil {
			t.Errorf("%s: append accepted", name)
		}
	}
	if v := h.View(); v.Rows() != 0 || v.Version != 1 {
		t.Fatalf("rejected appends mutated the store: %d rows v%d", v.Rows(), v.Version)
	}
}

// TestRegistryHandlesAreFrozen: registry datasets come back as frozen
// version-1 handles — appends are rejected and every caller shares one
// immutable view, so no job can see another job's dataset mid-change.
func TestRegistryHandlesAreFrozen(t *testing.T) {
	h, err := HandleByName("reuters")
	if err != nil {
		t.Fatal(err)
	}
	if !h.Frozen() {
		t.Fatal("registry handle not frozen")
	}
	if _, err := h.Append([]Row{{Indices: []int32{0}, Values: []float64{1}}}); err == nil {
		t.Fatal("append to a frozen registry dataset succeeded")
	}
	a, err := ByName("reuters")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ByName("reuters")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("ByName returned distinct views of a frozen dataset")
	}
	if a.Version != 1 {
		t.Fatalf("registry dataset version = %d, want 1", a.Version)
	}
	if _, err := EnsureStream("reuters", 10, Classification); err == nil ||
		!strings.Contains(err.Error(), "frozen") {
		t.Fatalf("EnsureStream over a registry name = %v, want frozen error", err)
	}
}

// TestEnsureStreamShape: a stream's shape is fixed at creation.
func TestEnsureStreamShape(t *testing.T) {
	if _, err := EnsureStream("", 5, Classification); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := EnsureStream("test-shape", 0, Classification); err == nil {
		t.Fatal("zero cols accepted")
	}
	h, err := EnsureStream("test-shape", 5, Classification)
	if err != nil {
		t.Fatal(err)
	}
	again, err := EnsureStream("test-shape", 5, Classification)
	if err != nil || again != h {
		t.Fatalf("re-ensure = %v, %v — want the same handle", again, err)
	}
	if _, err := EnsureStream("test-shape", 6, Classification); err == nil {
		t.Fatal("cols mismatch accepted")
	}
	if _, err := EnsureStream("test-shape", 5, Regression); err == nil {
		t.Fatal("task mismatch accepted")
	}
}

// TestTailView: the held-out tail covers the last ceil(frac*rows) rows
// (at least one), with row pointers rebased over shared storage.
func TestTailView(t *testing.T) {
	const cols = 15
	h, err := EnsureStream("test-tail", cols, Classification)
	if err != nil {
		t.Fatal(err)
	}
	view, err := h.Append(streamRows(5, 10, cols))
	if err != nil {
		t.Fatal(err)
	}
	tail := TailView(view, 0.2)
	if tail.Rows() != 2 || tail.Cols() != cols {
		t.Fatalf("tail shape = %dx%d, want 2x%d", tail.Rows(), tail.Cols(), cols)
	}
	if err := tail.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tail.Rows(); i++ {
		wantIdx, wantVals := view.A.Row(view.Rows() - tail.Rows() + i)
		idx, vals := tail.A.Row(i)
		if len(idx) != len(wantIdx) {
			t.Fatalf("tail row %d nnz = %d, want %d", i, len(idx), len(wantIdx))
		}
		for k := range idx {
			if idx[k] != wantIdx[k] || vals[k] != wantVals[k] {
				t.Fatalf("tail row %d entry %d mismatch", i, k)
			}
		}
		if tail.Labels[i] != view.Labels[view.Rows()-tail.Rows()+i] {
			t.Fatalf("tail label %d mismatch", i)
		}
	}
	if one := TailView(view, 0.001); one.Rows() != 1 {
		t.Fatalf("tiny fraction tail = %d rows, want the 1-row floor", one.Rows())
	}
	if all := TailView(view, 5); all.Rows() != view.Rows() {
		t.Fatalf("overlarge fraction tail = %d rows, want all %d", all.Rows(), view.Rows())
	}
}

// TestStreamConcurrentReadersWhileAppending is the aliasing-bug
// regression at the data layer: readers traverse published views while
// an appender grows the stream. Run under -race this proves views and
// appends touch disjoint memory.
func TestStreamConcurrentReadersWhileAppending(t *testing.T) {
	const cols = 50
	h, err := EnsureStream("test-race", cols, Classification)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Append(streamRows(1, 40, cols)); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pinned := h.View() // an old view held across the whole run
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, ds := range []*Dataset{pinned, h.View()} {
					sum := 0.0
					for i := 0; i < ds.Rows(); i++ {
						_, vals := ds.A.Row(i)
						for _, v := range vals {
							sum += v
						}
					}
					if math.IsNaN(sum) {
						t.Error("NaN sum from a published view")
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		if _, err := h.Append(streamRows(int64(i+2), 25, cols)); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if v := h.View(); v.Rows() != 40+20*25 {
		t.Fatalf("final rows = %d, want %d", v.Rows(), 40+20*25)
	}
}
