package data

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dimmwitted/internal/mat"
)

// Streaming ingestion: a Handle owns a growable CSR store and publishes
// epoch-stable immutable views of it. Appends grow the backing arrays
// in place under the handle's lock; each published view is a *Dataset
// whose slices are capacity-capped prefixes of those arrays. Because a
// published prefix is never rewritten — appends either write beyond the
// published length or reallocate (leaving the old backing array intact
// for old views) — a running engine holding a view never observes a
// torn matrix, and the race detector agrees: readers and the appender
// touch disjoint elements.

// Row is one ingested example. Exactly one of the sparse pair
// (Indices/Values) or Dense must be set; Label carries the supervision
// for classification/regression tasks.
type Row struct {
	Indices []int32
	Values  []float64
	Dense   []float64
	Label   float64
}

// mark records one published view: after `rows` rows the store was at
// `version`. Checkpoint high-water marks always name a published view,
// so resume can rebuild the exact matrix the snapshot trained on.
type mark struct {
	rows    int
	version uint64
}

// Handle is the mutable side of a dataset: registry datasets get a
// frozen handle (appends rejected, version pinned at 1), streams get a
// growable one. View never blocks on appenders.
type Handle struct {
	name   string
	task   Task
	cols   int
	frozen bool

	mu     sync.Mutex // serialises appends and prefix rebuilds
	rowPtr []int64
	colIdx []int32
	vals   []float64
	labels []float64
	marks  []mark

	view atomic.Pointer[Dataset]
}

// frozenHandle wraps an already-materialised registry dataset.
func frozenHandle(ds *Dataset) *Handle {
	h := &Handle{
		name:   ds.Name,
		task:   ds.Task,
		cols:   ds.Cols(),
		frozen: true,
		rowPtr: ds.A.RowPtr,
		colIdx: ds.A.ColIdx,
		vals:   ds.A.Vals,
		labels: ds.Labels,
		marks:  []mark{{rows: ds.Rows(), version: ds.Version}},
	}
	h.view.Store(ds)
	return h
}

// newStreamHandle creates an empty growable handle. Version 1 is the
// empty view; the first append publishes version 2.
func newStreamHandle(name string, cols int, task Task) *Handle {
	h := &Handle{
		name:   name,
		task:   task,
		cols:   cols,
		rowPtr: []int64{0},
	}
	h.publishLocked(1)
	return h
}

// NewStream creates a standalone growable handle outside the registry
// namespace. Benchmark harnesses use it to build streams repeatedly
// without claiming a global dataset name; serving code goes through
// EnsureStream instead.
func NewStream(name string, cols int, task Task) *Handle {
	return newStreamHandle(name, cols, task)
}

// Name returns the dataset name this handle serves.
func (h *Handle) Name() string { return h.name }

// Task returns the task the handle's rows are validated against.
func (h *Handle) Task() Task { return h.task }

// Cols returns the fixed model dimension of the stream.
func (h *Handle) Cols() int { return h.cols }

// Frozen reports whether the handle rejects appends (registry
// datasets).
func (h *Handle) Frozen() bool { return h.frozen }

// View returns the current published view. The returned dataset is
// immutable and safe to share across concurrent engines.
func (h *Handle) View() *Dataset { return h.view.Load() }

// Version returns the current published view's version.
func (h *Handle) Version() uint64 { return h.View().Version }

// Append validates and ingests a chunk of rows, then publishes a new
// view covering everything ingested so far. It returns the new view.
// Validation happens before any mutation, so a rejected chunk leaves
// the store untouched.
func (h *Handle) Append(rows []Row) (*Dataset, error) {
	if h.frozen {
		return nil, fmt.Errorf("data: dataset %q is a frozen registry dataset; appends need a stream", h.name)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("data: append to %q with no rows", h.name)
	}
	for i := range rows {
		if err := h.validateRow(&rows[i]); err != nil {
			return nil, fmt.Errorf("data: append to %q row %d: %w", h.name, i, err)
		}
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range rows {
		h.appendRowLocked(&rows[i])
	}
	ds := h.publishLocked(h.View().Version + 1)
	return ds, nil
}

// validateRow checks one row against the stream's shape without
// touching the store.
func (h *Handle) validateRow(r *Row) error {
	if r.Dense != nil {
		if len(r.Indices) != 0 || len(r.Values) != 0 {
			return fmt.Errorf("both dense and sparse forms set")
		}
		if len(r.Dense) != h.cols {
			return fmt.Errorf("dense row has %d values, want %d", len(r.Dense), h.cols)
		}
		return nil
	}
	if len(r.Indices) != len(r.Values) {
		return fmt.Errorf("%d indices but %d values", len(r.Indices), len(r.Values))
	}
	for _, c := range r.Indices {
		if c < 0 || int(c) >= h.cols {
			return fmt.Errorf("column index %d out of range [0,%d)", c, h.cols)
		}
	}
	return nil
}

// appendRowLocked writes one validated row into the growable store.
// Sparse entries are sorted by column (CSR invariant); duplicate
// columns within a row are summed, matching mat.Builder.AddRow.
func (h *Handle) appendRowLocked(r *Row) {
	start := len(h.colIdx)
	if r.Dense != nil {
		for c, v := range r.Dense {
			if v != 0 {
				h.colIdx = append(h.colIdx, int32(c))
				h.vals = append(h.vals, v)
			}
		}
	} else {
		type ent struct {
			c int32
			v float64
		}
		ents := make([]ent, len(r.Indices))
		for i := range r.Indices {
			ents[i] = ent{r.Indices[i], r.Values[i]}
		}
		sort.Slice(ents, func(i, j int) bool { return ents[i].c < ents[j].c })
		for _, e := range ents {
			if n := len(h.colIdx); n > start && h.colIdx[n-1] == e.c {
				h.vals[n-1] += e.v
				continue
			}
			h.colIdx = append(h.colIdx, e.c)
			h.vals = append(h.vals, e.v)
		}
	}
	h.rowPtr = append(h.rowPtr, int64(len(h.colIdx)))
	h.labels = append(h.labels, r.Label)
}

// publishLocked builds and atomically installs the view over the
// current prefix. The view's slices are capacity-capped so no append
// through the view can ever reach the shared backing arrays; the
// handle's own appends write only beyond the published length.
func (h *Handle) publishLocked(version uint64) *Dataset {
	n := len(h.rowPtr) - 1
	ds := h.prefixLocked(n, version)
	h.marks = append(h.marks, mark{rows: n, version: version})
	h.view.Store(ds)
	return ds
}

// prefixLocked materialises the immutable view over the first n rows.
func (h *Handle) prefixLocked(n int, version uint64) *Dataset {
	nnz := h.rowPtr[n]
	ds := &Dataset{
		Name: h.name,
		Task: h.task,
		A: &mat.CSR{
			Rows:   n,
			Cols:   h.cols,
			RowPtr: h.rowPtr[: n+1 : n+1],
			ColIdx: h.colIdx[:nnz:nnz],
			Vals:   h.vals[:nnz:nnz],
		},
		Labels:  h.labels[:n:n],
		Version: version,
	}
	ds.CSC() // materialise the lazy column form before sharing
	return ds
}

// ViewAt rebuilds the published view that covered exactly `rows` rows.
// Only row counts that were actually published (append-chunk
// boundaries — the values checkpoints record as ingest high-water
// marks) are valid; anything else errors, because no epoch ever
// trained on such a matrix.
func (h *Handle) ViewAt(rows int) (*Dataset, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.Search(len(h.marks), func(i int) bool { return h.marks[i].rows >= rows })
	if i == len(h.marks) || h.marks[i].rows != rows {
		return nil, fmt.Errorf("data: %q has no published view at %d rows", h.name, rows)
	}
	// Later marks can republish the same row count only with the same
	// prefix (the store is append-only), so the first match is exact.
	return h.prefixLocked(rows, h.marks[i].version), nil
}

// TailView carves the held-out tail of a view for shadow evaluation:
// the last ceil(frac*rows) rows, at least one. The tail shares the
// view's column and value storage (rebased row pointers), so building
// it is O(tail rows).
func TailView(ds *Dataset, frac float64) *Dataset {
	rows := ds.Rows()
	if rows == 0 {
		return ds
	}
	k := int(frac * float64(rows))
	if k < 1 {
		k = 1
	}
	if k > rows {
		k = rows
	}
	start := rows - k
	base := ds.A.RowPtr[start]
	ptr := make([]int64, k+1)
	for i := 0; i <= k; i++ {
		ptr[i] = ds.A.RowPtr[start+i] - base
	}
	tail := &Dataset{
		Name: ds.Name + "#tail",
		Task: ds.Task,
		A: &mat.CSR{
			Rows:   k,
			Cols:   ds.Cols(),
			RowPtr: ptr,
			ColIdx: ds.A.ColIdx[base:ds.A.RowPtr[rows]],
			Vals:   ds.A.Vals[base:ds.A.RowPtr[rows]],
		},
		Version: ds.Version,
	}
	if ds.Labels != nil {
		tail.Labels = ds.Labels[start:rows]
	}
	if ds.Anchors != nil {
		tail.Anchors = ds.Anchors
	}
	return tail
}
