package data

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNamedDatasetsValid(t *testing.T) {
	sets := []*Dataset{
		RCV1(), Reuters(), Music(), MusicRegression(), Forest(),
		AmazonLP(), GoogleLP(), AmazonQP(), GoogleQP(), ClueWeb(0.05),
		ParallelSum(100, 4),
	}
	for _, d := range sets {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
		if d.Rows() == 0 || d.Cols() == 0 {
			t.Errorf("%s: empty shape %dx%d", d.Name, d.Rows(), d.Cols())
		}
	}
}

func TestGenerationDeterministic(t *testing.T) {
	a, b := RCV1(), RCV1()
	if a.NNZ() != b.NNZ() {
		t.Fatalf("nondeterministic nnz: %d vs %d", a.NNZ(), b.NNZ())
	}
	for k := range a.A.Vals {
		if a.A.Vals[k] != b.A.Vals[k] || a.A.ColIdx[k] != b.A.ColIdx[k] {
			t.Fatalf("nondeterministic entry %d", k)
		}
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("nondeterministic label %d", i)
		}
	}
}

func TestSparseShapeStatistics(t *testing.T) {
	d := RCV1()
	if d.Rows() != 3000 || d.Cols() != 1500 {
		t.Errorf("rcv1 shape = %dx%d", d.Rows(), d.Cols())
	}
	avg := d.AvgRowNNZ()
	if avg < 20 || avg > 60 {
		t.Errorf("rcv1 avg nnz/row = %v, want ~40", avg)
	}
	// Zipf column popularity: the most popular column should be far
	// denser than the median column.
	counts := make([]int, d.Cols())
	for _, j := range d.A.ColIdx {
		counts[j]++
	}
	max, nonzeroCols := 0, 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c > 0 {
			nonzeroCols++
		}
	}
	if max < 10*int(avg) {
		t.Errorf("column popularity not skewed: max column count %d", max)
	}
	if nonzeroCols < 100 {
		t.Errorf("too few distinct columns used: %d", nonzeroCols)
	}
}

func TestClassificationLabelsAreSigns(t *testing.T) {
	d := Reuters()
	pos, neg := 0, 0
	for _, y := range d.Labels {
		switch y {
		case 1:
			pos++
		case -1:
			neg++
		default:
			t.Fatalf("label %v not ±1", y)
		}
	}
	if pos == 0 || neg == 0 {
		t.Errorf("degenerate label distribution: +%d/-%d", pos, neg)
	}
}

func TestDenseDatasetIsDense(t *testing.T) {
	d := Music()
	if d.NNZ() != int64(d.Rows()*d.Cols()) {
		t.Errorf("music nnz = %d, want %d", d.NNZ(), d.Rows()*d.Cols())
	}
	if d.Cols() != 91 {
		t.Errorf("music cols = %d, want 91", d.Cols())
	}
}

func TestRegressionLabelsCorrelateWithTruth(t *testing.T) {
	d := MusicRegression()
	// y ≈ <truth, x>: check correlation is strongly positive.
	var dot, ny, ns float64
	for i := 0; i < d.Rows(); i++ {
		idx, vals := d.A.Row(i)
		var score float64
		for k, j := range idx {
			score += vals[k] * d.TrueModel[j]
		}
		dot += score * d.Labels[i]
		ny += d.Labels[i] * d.Labels[i]
		ns += score * score
	}
	corr := dot / math.Sqrt(ny*ns)
	if corr < 0.9 {
		t.Errorf("label/truth correlation = %v, want > 0.9", corr)
	}
}

func TestGraphGeneration(t *testing.T) {
	g := GenerateGraph(GraphConfig{Name: "g", Nodes: 500, EdgesPerNode: 3, Seed: 7})
	if g.Nodes != 500 {
		t.Fatalf("nodes = %d", g.Nodes)
	}
	if len(g.Edges) < 500 {
		t.Fatalf("too few edges: %d", len(g.Edges))
	}
	seen := map[[2]int32]bool{}
	for _, e := range g.Edges {
		if e[0] >= e[1] {
			t.Fatalf("edge not ordered: %v", e)
		}
		if e[1] >= int32(g.Nodes) {
			t.Fatalf("edge out of range: %v", e)
		}
		if seen[e] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = true
	}
	// Preferential attachment should produce a heavy-tailed degree
	// distribution: max degree well above the mean.
	deg := g.Degrees()
	max, sum := 0, 0
	for _, dv := range deg {
		if dv > max {
			max = dv
		}
		sum += dv
	}
	mean := float64(sum) / float64(len(deg))
	if float64(max) < 5*mean {
		t.Errorf("degree distribution not skewed: max=%d mean=%.1f", max, mean)
	}
}

func TestVertexCoverLPShape(t *testing.T) {
	g := AmazonGraph()
	d := g.VertexCoverLP()
	if d.Task != VertexCoverLP {
		t.Errorf("task = %v", d.Task)
	}
	if d.Rows() != len(g.Edges) {
		t.Errorf("rows = %d, want %d edges", d.Rows(), len(g.Edges))
	}
	for i := 0; i < d.Rows(); i++ {
		idx, vals := d.A.Row(i)
		if len(idx) != 2 || vals[0] != 1 || vals[1] != 1 {
			t.Fatalf("LP row %d = %v %v, want two unit entries", i, idx, vals)
		}
	}
}

func TestSmoothingQPShape(t *testing.T) {
	d := AmazonQP()
	if d.Task != GraphQP {
		t.Errorf("task = %v", d.Task)
	}
	if len(d.Anchors) != d.Cols() {
		t.Fatalf("anchors len %d, want %d", len(d.Anchors), d.Cols())
	}
	anchored := 0
	for _, a := range d.Anchors {
		if a != 0 {
			anchored++
		}
	}
	frac := float64(anchored) / float64(len(d.Anchors))
	if frac < 0.15 || frac > 0.45 {
		t.Errorf("anchored fraction = %v, want ~0.3", frac)
	}
	for i := 0; i < d.Rows(); i++ {
		_, vals := d.A.Row(i)
		if len(vals) != 2 || vals[0]*vals[1] != -1 {
			t.Fatalf("QP row %d vals = %v, want (+1,-1)", i, vals)
		}
	}
}

func TestCSCCachedAndConsistent(t *testing.T) {
	d := Reuters()
	c1 := d.CSC()
	c2 := d.CSC()
	if c1 != c2 {
		t.Error("CSC not cached")
	}
	if c1.NNZ() != d.NNZ() {
		t.Errorf("CSC nnz = %d, want %d", c1.NNZ(), d.NNZ())
	}
}

func TestSubsampleSparsity(t *testing.T) {
	d := Music()
	sub := SubsampleSparsity(d, 0.1, 42)
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if sub.Rows() != d.Rows() {
		t.Errorf("row count changed: %d", sub.Rows())
	}
	ratio := float64(sub.NNZ()) / float64(d.NNZ())
	if ratio < 0.05 || ratio > 0.15 {
		t.Errorf("kept fraction = %v, want ~0.1", ratio)
	}
	for i := 0; i < sub.Rows(); i++ {
		if sub.A.RowNNZ(i) == 0 {
			t.Fatalf("row %d became empty", i)
		}
	}
	// Labels preserved.
	for i := range sub.Labels {
		if sub.Labels[i] != d.Labels[i] {
			t.Fatal("labels changed by subsampling")
		}
	}
}

func TestSubsampleRows(t *testing.T) {
	d := Reuters()
	sub := SubsampleRows(d, 0.25, 42)
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	want := d.Rows() / 4
	if sub.Rows() != want {
		t.Errorf("rows = %d, want %d", sub.Rows(), want)
	}
	if len(sub.Labels) != sub.Rows() {
		t.Errorf("labels = %d rows = %d", len(sub.Labels), sub.Rows())
	}
	tiny := SubsampleRows(d, 0, 1)
	if tiny.Rows() != 1 {
		t.Errorf("zero-fraction subsample rows = %d, want 1 (floor)", tiny.Rows())
	}
	full := SubsampleRows(d, 2.0, 1)
	if full.Rows() != d.Rows() {
		t.Errorf("over-fraction subsample rows = %d, want %d", full.Rows(), d.Rows())
	}
}

func TestClueWebScales(t *testing.T) {
	small := ClueWeb(0.01)
	big := ClueWeb(0.05)
	if small.Rows() != 300 || big.Rows() != 1500 {
		t.Errorf("scaled rows = %d, %d", small.Rows(), big.Rows())
	}
	if got := big.AvgRowNNZ(); got < 4 || got > 12 {
		t.Errorf("clueweb avg nnz/row = %v, want ~8", got)
	}
}

func TestParallelSum(t *testing.T) {
	d := ParallelSum(50, 3)
	if d.Rows() != 50 || d.Cols() != 3 {
		t.Fatalf("shape %dx%d", d.Rows(), d.Cols())
	}
	for _, v := range d.A.Vals {
		if v != 1 {
			t.Fatalf("value %v, want 1", v)
		}
	}
}

func TestTaskString(t *testing.T) {
	for task, want := range map[Task]string{
		Classification: "classification",
		Regression:     "regression",
		VertexCoverLP:  "vertex-cover-lp",
		GraphQP:        "graph-qp",
		Task(42):       "Task(42)",
	} {
		if got := task.String(); got != want {
			t.Errorf("Task.String() = %q, want %q", got, want)
		}
	}
}

// Property: subsampling with keep=1 is the identity on the nonzero
// structure; keep in (0,1) never increases nnz and never empties rows.
func TestSubsampleSparsityProperty(t *testing.T) {
	base := Reuters()
	f := func(keepRaw uint8, seed int64) bool {
		keep := 0.05 + 0.9*float64(keepRaw)/255
		sub := SubsampleSparsity(base, keep, seed)
		if sub.NNZ() > base.NNZ() {
			return false
		}
		for i := 0; i < sub.Rows(); i++ {
			if sub.A.RowNNZ(i) == 0 {
				return false
			}
		}
		return sub.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
