// Package data synthesises the datasets of the paper's evaluation
// (Figure 10). The real corpora (RCV1, Reuters, Music, Forest, the
// Amazon and Google graphs, Paleo, MNIST, ClueWeb) are not available
// offline, so each named constructor generates a deterministic,
// scaled-down instance matched to the statistics that drive the
// tradeoffs the paper studies: row count vs dimension (under/over-
// determination), nonzeros per row (the cost model's n_i), sparsity
// pattern (Zipf-distributed column popularity for text, power-law
// degrees for graphs), and density (dense feature matrices for
// Music/Forest).
//
// Labels are generated from a hidden ground-truth model plus noise, so
// losses genuinely decrease under training and "epochs to x% of the
// optimal loss" is a meaningful measurement.
package data

import (
	"fmt"
	"math/rand"

	"dimmwitted/internal/mat"
)

// Task describes which statistical model a dataset is intended for.
type Task int

const (
	// Classification datasets carry ±1 labels (SVM, LR).
	Classification Task = iota
	// Regression datasets carry real-valued labels (LS).
	Regression
	// VertexCoverLP datasets encode min Σx s.t. x_u+x_v ≥ 1 on a graph.
	VertexCoverLP
	// GraphQP datasets encode graph-smoothing quadratic programs.
	GraphQP
)

// String implements fmt.Stringer.
func (t Task) String() string {
	switch t {
	case Classification:
		return "classification"
	case Regression:
		return "regression"
	case VertexCoverLP:
		return "vertex-cover-lp"
	case GraphQP:
		return "graph-qp"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// Dataset is an analytics input in the paper's sense: an immutable
// data matrix A (N rows, d columns) plus per-row labels where the task
// has them. The model vector x ∈ R^d is owned by the engine, not here.
type Dataset struct {
	// Name identifies the dataset in reports ("rcv1", "music", ...).
	Name string
	// Task is the statistical model family this dataset targets.
	Task Task
	// A is the data matrix in CSR (row-wise access) form.
	A *mat.CSR
	// Labels holds one label per row for supervised tasks; nil for
	// LP/QP where the objective is encoded by the matrix itself.
	Labels []float64
	// TrueModel is the hidden generator model, when one exists. Tests
	// use it to check recovery; the engine never sees it.
	TrueModel []float64
	// Anchors holds per-column anchor values for GraphQP tasks (the
	// λ-weighted supervision term); nil otherwise.
	Anchors []float64
	// Version distinguishes successive published views of a growing
	// (streamed) dataset. Registry datasets are frozen at version 1;
	// every append to a stream publishes a new view with a higher
	// version. Plan-cache and tune-store keys include it so plans sized
	// for a smaller matrix are never reused after growth.
	Version uint64

	csc *mat.CSC
}

// Rows returns the number of examples N.
func (d *Dataset) Rows() int { return d.A.Rows }

// Cols returns the model dimension d.
func (d *Dataset) Cols() int { return d.A.Cols }

// NNZ returns the number of nonzeros of the data matrix.
func (d *Dataset) NNZ() int64 { return d.A.NNZ() }

// CSC returns (and caches) the column-oriented form of the data
// matrix, which column-wise and column-to-row plans stream.
func (d *Dataset) CSC() *mat.CSC {
	if d.csc == nil {
		d.csc = d.A.ToCSC()
	}
	return d.csc
}

// AvgRowNNZ returns the mean number of nonzeros per row (the paper's
// average n_i).
func (d *Dataset) AvgRowNNZ() float64 {
	if d.A.Rows == 0 {
		return 0
	}
	return float64(d.A.NNZ()) / float64(d.A.Rows)
}

// Validate checks the dataset invariants.
func (d *Dataset) Validate() error {
	if err := d.A.Validate(); err != nil {
		return fmt.Errorf("data: %s: %w", d.Name, err)
	}
	if d.Labels != nil && len(d.Labels) != d.A.Rows {
		return fmt.Errorf("data: %s: %d labels for %d rows", d.Name, len(d.Labels), d.A.Rows)
	}
	if d.TrueModel != nil && len(d.TrueModel) != d.A.Cols {
		return fmt.Errorf("data: %s: true model dim %d, want %d", d.Name, len(d.TrueModel), d.A.Cols)
	}
	return nil
}

// SparseConfig parameterises a synthetic sparse supervised dataset in
// the style of text corpora: column popularity follows a Zipf law, so
// a few columns are very dense (stop words) and most are rare.
type SparseConfig struct {
	// Name labels the generated dataset.
	Name string
	// Rows and Cols give the matrix shape.
	Rows, Cols int
	// NNZPerRow is the expected number of nonzeros per row.
	NNZPerRow int
	// Noise is the label-flip probability (classification) or the
	// additive noise standard deviation (regression).
	Noise float64
	// Regression selects real-valued labels instead of ±1.
	Regression bool
	// Seed makes generation deterministic.
	Seed int64
}

// GenerateSparse builds a sparse supervised dataset per the config.
func GenerateSparse(cfg SparseConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, 1.4, 4, uint64(cfg.Cols-1))

	truth := make([]float64, cfg.Cols)
	for j := range truth {
		truth[j] = rng.NormFloat64()
	}

	b := mat.NewBuilder(cfg.Cols)
	labels := make([]float64, cfg.Rows)
	seen := make(map[int32]bool, cfg.NNZPerRow*2)
	for i := 0; i < cfg.Rows; i++ {
		nnz := 1 + rng.Intn(2*cfg.NNZPerRow-1) // mean ≈ NNZPerRow, min 1
		for k := range seen {
			delete(seen, k)
		}
		idx := make([]int32, 0, nnz)
		vals := make([]float64, 0, nnz)
		for len(idx) < nnz {
			j := int32(zipf.Uint64())
			if seen[j] {
				continue
			}
			seen[j] = true
			idx = append(idx, j)
			vals = append(vals, 0.5+rng.Float64()) // tf-idf-like positive weights
		}
		b.AddRow(idx, vals)
		score := 0.0
		for k, j := range idx {
			score += vals[k] * truth[j]
		}
		if cfg.Regression {
			labels[i] = score + cfg.Noise*rng.NormFloat64()
		} else {
			y := 1.0
			if score < 0 {
				y = -1
			}
			if rng.Float64() < cfg.Noise {
				y = -y
			}
			labels[i] = y
		}
	}
	task := Classification
	if cfg.Regression {
		task = Regression
	}
	return &Dataset{Name: cfg.Name, Task: task, A: b.Build(), Labels: labels, TrueModel: truth}
}

// DenseConfig parameterises a dense supervised dataset in the style of
// the Music and Forest benchmarks: every feature present on every row,
// standardised feature values.
type DenseConfig struct {
	// Name labels the generated dataset.
	Name string
	// Rows and Cols give the matrix shape (Rows >> Cols: overdetermined).
	Rows, Cols int
	// Noise is as in SparseConfig.
	Noise float64
	// Regression selects real-valued labels instead of ±1.
	Regression bool
	// Seed makes generation deterministic.
	Seed int64
}

// GenerateDense builds a dense supervised dataset per the config.
func GenerateDense(cfg DenseConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	truth := make([]float64, cfg.Cols)
	for j := range truth {
		truth[j] = rng.NormFloat64()
	}
	b := mat.NewBuilder(cfg.Cols)
	labels := make([]float64, cfg.Rows)
	row := make([]float64, cfg.Cols)
	for i := 0; i < cfg.Rows; i++ {
		var score float64
		for j := range row {
			row[j] = rng.NormFloat64()
			score += row[j] * truth[j]
		}
		b.AddDenseRow(row)
		if cfg.Regression {
			labels[i] = score + cfg.Noise*rng.NormFloat64()
		} else {
			y := 1.0
			if score < 0 {
				y = -1
			}
			if rng.Float64() < cfg.Noise {
				y = -y
			}
			labels[i] = y
		}
	}
	task := Classification
	if cfg.Regression {
		task = Regression
	}
	return &Dataset{Name: cfg.Name, Task: task, A: b.Build(), Labels: labels, TrueModel: truth}
}
