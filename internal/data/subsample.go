package data

import (
	"fmt"
	"math/rand"

	"dimmwitted/internal/mat"
)

// SubsampleSparsity returns a copy of the dataset in which each
// nonzero is kept independently with probability keep (at least one
// nonzero per row is always retained). The paper uses this on the
// Music dataset to sweep the update density for Figures 7(b) and
// 16(b): "a series of synthetic datasets where we control the number
// of non-zero elements per row by subsampling each row".
func SubsampleSparsity(d *Dataset, keep float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := mat.NewBuilder(d.Cols())
	for i := 0; i < d.Rows(); i++ {
		idx, vals := d.A.Row(i)
		outIdx := make([]int32, 0, len(idx))
		outVals := make([]float64, 0, len(vals))
		for k := range idx {
			if rng.Float64() < keep {
				outIdx = append(outIdx, idx[k])
				outVals = append(outVals, vals[k])
			}
		}
		if len(outIdx) == 0 && len(idx) > 0 {
			k := rng.Intn(len(idx))
			outIdx = append(outIdx, idx[k])
			outVals = append(outVals, vals[k])
		}
		b.AddRow(outIdx, outVals)
	}
	out := &Dataset{
		Name:      fmt.Sprintf("%s-sparsity%.2f", d.Name, keep),
		Task:      d.Task,
		A:         b.Build(),
		TrueModel: d.TrueModel,
		Anchors:   d.Anchors,
	}
	if d.Labels != nil {
		out.Labels = append([]float64(nil), d.Labels...)
	}
	return out
}

// SubsampleRows returns a copy of the dataset containing the first
// fraction of rows after a deterministic shuffle. The scalability
// experiment (Appendix C.3) uses 1%, 10%, 50% and 100% row samples.
func SubsampleRows(d *Dataset, frac float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	n := int(frac * float64(d.Rows()))
	if n < 1 {
		n = 1
	}
	if n > d.Rows() {
		n = d.Rows()
	}
	perm := rng.Perm(d.Rows())[:n]
	b := mat.NewBuilder(d.Cols())
	var labels []float64
	if d.Labels != nil {
		labels = make([]float64, 0, n)
	}
	for _, i := range perm {
		idx, vals := d.A.Row(i)
		b.AddRow(idx, vals)
		if d.Labels != nil {
			labels = append(labels, d.Labels[i])
		}
	}
	return &Dataset{
		Name:      fmt.Sprintf("%s-rows%.2f", d.Name, frac),
		Task:      d.Task,
		A:         b.Build(),
		Labels:    labels,
		TrueModel: d.TrueModel,
		Anchors:   d.Anchors,
	}
}
