package data

import (
	"fmt"
	"sort"
	"sync"
)

// The named-dataset registry backs the serving layer: training requests
// name their dataset ("reuters", "rcv1", ...) and the registry hands
// back a shared, fully materialised instance. Generation is
// deterministic but not free, so each dataset is built once and cached;
// the CSC form is materialised eagerly so the shared instance is
// immutable afterwards and safe for concurrent engines.

var registry = map[string]func() *Dataset{
	"rcv1":       RCV1,
	"reuters":    Reuters,
	"reuters10x": ReutersReplicated,
	"music10x":   MusicRegressionReplicated,
	"music":      Music,
	"music-reg":  MusicRegression,
	"forest":     Forest,
	"amazon-lp":  AmazonLP,
	"google-lp":  GoogleLP,
	"amazon-qp":  AmazonQP,
	"google-qp":  GoogleQP,
	"clueweb":    func() *Dataset { return ClueWeb(0.1) },
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*Dataset{}
)

// Names returns the registered dataset names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ByName returns the shared instance of a registered dataset,
// generating and caching it on first use. The returned dataset is
// immutable (CSC included) and safe to share across goroutines.
func ByName(name string) (*Dataset, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if ds, ok := cache[name]; ok {
		return ds, nil
	}
	gen, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("data: unknown dataset %q (want one of %v)", name, Names())
	}
	ds := gen()
	ds.CSC() // materialise the lazy column form before sharing
	cache[name] = ds
	return ds, nil
}
