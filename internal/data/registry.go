package data

import (
	"fmt"
	"sort"
	"sync"
)

// The named-dataset registry backs the serving layer: training requests
// name their dataset ("reuters", "rcv1", ...) and the registry hands
// back an immutable published view. Generation is deterministic but not
// free, so each dataset is built once, wrapped in a frozen Handle and
// cached; the CSC form is materialised eagerly so published views are
// immutable and safe for concurrent engines. Stream datasets (created
// by EnsureStream, grown by Append) live in the same namespace under
// growable handles.

var registry = map[string]func() *Dataset{
	"rcv1":       RCV1,
	"reuters":    Reuters,
	"reuters10x": ReutersReplicated,
	"music10x":   MusicRegressionReplicated,
	"music":      Music,
	"music-reg":  MusicRegression,
	"forest":     Forest,
	"amazon-lp":  AmazonLP,
	"google-lp":  GoogleLP,
	"amazon-qp":  AmazonQP,
	"google-qp":  GoogleQP,
	"clueweb":    func() *Dataset { return ClueWeb(0.1) },
}

var (
	cacheMu sync.Mutex
	handles = map[string]*Handle{}
)

// Names returns the registered dataset names — generators plus any
// streams created so far — sorted.
func Names() []string {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	seen := map[string]bool{}
	out := make([]string, 0, len(registry)+len(handles))
	for name := range registry {
		seen[name] = true
		out = append(out, name)
	}
	for name := range handles {
		if !seen[name] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// registryNames lists only the static generator names; safe to call
// with cacheMu held.
func registryNames() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ByName returns the current published view of a named dataset. The
// returned dataset is immutable (CSC included) and safe to share across
// goroutines: appends to a stream publish a fresh view rather than
// mutating an already-returned one, so no caller can race another.
func ByName(name string) (*Dataset, error) {
	h, err := HandleByName(name)
	if err != nil {
		return nil, err
	}
	return h.View(), nil
}

// HandleByName returns the handle behind a named dataset, generating
// and freezing a registry dataset on first use. Stream handles are
// growable; registry handles reject appends.
func HandleByName(name string) (*Handle, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if h, ok := handles[name]; ok {
		return h, nil
	}
	gen, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("data: unknown dataset %q (want one of %v)", name, registryNames())
	}
	cacheMu.Unlock()
	ds := gen()
	ds.CSC() // materialise the lazy column form before sharing
	ds.Version = 1
	cacheMu.Lock()
	if h, ok := handles[name]; ok {
		return h, nil // lost a generation race; keep the first
	}
	h := frozenHandle(ds)
	handles[name] = h
	return h, nil
}

// EnsureStream returns the growable handle for a stream dataset,
// creating it (empty, version 1) on first use. Names owned by the
// static registry are rejected — those datasets are frozen — and an
// existing stream must match the requested shape.
func EnsureStream(name string, cols int, task Task) (*Handle, error) {
	if name == "" {
		return nil, fmt.Errorf("data: stream dataset needs a name")
	}
	if cols <= 0 {
		return nil, fmt.Errorf("data: stream %q needs cols > 0, got %d", name, cols)
	}
	if _, static := registry[name]; static {
		return nil, fmt.Errorf("data: %q is a frozen registry dataset; pick a new name for a stream", name)
	}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if h, ok := handles[name]; ok {
		if h.frozen {
			return nil, fmt.Errorf("data: %q is a frozen registry dataset; pick a new name for a stream", name)
		}
		if h.cols != cols || h.task != task {
			return nil, fmt.Errorf("data: stream %q exists with cols=%d task=%s (requested cols=%d task=%s)",
				name, h.cols, h.task, cols, task)
		}
		return h, nil
	}
	h := newStreamHandle(name, cols, task)
	handles[name] = h
	return h, nil
}
