package data

import (
	"math/rand"

	"dimmwitted/internal/mat"
)

// Graph is an undirected simple graph used to build the LP and QP
// workloads of the paper's network-analysis application (Section 4.1):
// the Amazon co-purchase and Google+ social graphs.
type Graph struct {
	// Name labels the graph.
	Name string
	// Nodes is the vertex count.
	Nodes int
	// Edges lists each undirected edge once as an ordered pair u < v.
	Edges [][2]int32
}

// GraphConfig parameterises a preferential-attachment random graph,
// which matches the heavy-tailed degree distribution of the paper's
// social/co-purchase graphs.
type GraphConfig struct {
	// Name labels the graph.
	Name string
	// Nodes is the vertex count.
	Nodes int
	// EdgesPerNode is the number of edges each arriving node adds.
	EdgesPerNode int
	// Seed makes generation deterministic.
	Seed int64
}

// GenerateGraph builds a preferential-attachment graph per the config.
func GenerateGraph(cfg GraphConfig) *Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &Graph{Name: cfg.Name, Nodes: cfg.Nodes}
	if cfg.Nodes < 2 {
		return g
	}
	// targets holds one entry per half-edge; sampling uniformly from it
	// implements preferential attachment.
	targets := make([]int32, 0, 2*cfg.Nodes*cfg.EdgesPerNode)
	targets = append(targets, 0)
	seen := make(map[int64]bool)
	key := func(u, v int32) int64 { return int64(u)<<32 | int64(v) }
	for v := 1; v < cfg.Nodes; v++ {
		added := 0
		attempts := 0
		for added < cfg.EdgesPerNode && attempts < 10*cfg.EdgesPerNode {
			attempts++
			u := targets[rng.Intn(len(targets))]
			if int(u) == v {
				continue
			}
			lo, hi := u, int32(v)
			if lo > hi {
				lo, hi = hi, lo
			}
			if seen[key(lo, hi)] {
				continue
			}
			seen[key(lo, hi)] = true
			g.Edges = append(g.Edges, [2]int32{lo, hi})
			targets = append(targets, u, int32(v))
			added++
		}
		if added == 0 {
			// Degenerate fallback for tiny graphs: connect to v-1.
			u := int32(v - 1)
			if !seen[key(u, int32(v))] {
				seen[key(u, int32(v))] = true
				g.Edges = append(g.Edges, [2]int32{u, int32(v)})
				targets = append(targets, u, int32(v))
			}
		}
	}
	return g
}

// Degrees returns the degree of every vertex.
func (g *Graph) Degrees() []int {
	deg := make([]int, g.Nodes)
	for _, e := range g.Edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	return deg
}

// VertexCoverLP encodes the graph's vertex-cover linear program as a
// DimmWitted dataset, following the LP-rounding formulation of Sridhar
// et al. that the paper uses: minimise Σ_v x_v subject to
// x_u + x_v ≥ 1 for every edge and x ∈ [0,1]. The data matrix has one
// row per edge with exactly two nonzeros, which is why column-wise
// access dominates on these workloads (n_i = 2 makes row-wise gradient
// steps cheap to read but the contended dense writes dominate).
func (g *Graph) VertexCoverLP() *Dataset {
	b := mat.NewBuilder(g.Nodes)
	for _, e := range g.Edges {
		b.AddRow([]int32{e[0], e[1]}, []float64{1, 1})
	}
	return &Dataset{Name: g.Name + "-lp", Task: VertexCoverLP, A: b.Build()}
}

// SmoothingQP encodes a graph-smoothing quadratic program: minimise
// ½ Σ_{(u,v)∈E} (x_u − x_v)² + (λ/2) Σ_v (x_v − y_v)², with anchor
// labels y on a random subset of vertices. The data matrix has one row
// per edge holding (+1, −1). This is the paper's QP network-analysis
// workload in spirit: sparse rows, huge model dimension.
func (g *Graph) SmoothingQP(anchorFrac float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := mat.NewBuilder(g.Nodes)
	for _, e := range g.Edges {
		b.AddRow([]int32{e[0], e[1]}, []float64{1, -1})
	}
	// Anchors are per-column supervision values; a zero anchor means
	// the vertex is unsupervised (λ for anchored vertices is supplied
	// by the model specification, not the dataset).
	anchors := make([]float64, g.Nodes)
	for v := range anchors {
		if rng.Float64() < anchorFrac {
			if rng.Float64() < 0.5 {
				anchors[v] = 1
			} else {
				anchors[v] = -1
			}
		}
	}
	return &Dataset{Name: g.Name + "-qp", Task: GraphQP, A: b.Build(), Anchors: anchors}
}
