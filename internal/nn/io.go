package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
)

// networkWire is the gob wire form of a Network; indirection keeps the
// wire format explicit and lets LoadNetwork validate before returning.
type networkWire struct {
	Sizes   []int
	Weights [][]float64
	Biases  [][]float64
}

// Save serialises the network with encoding/gob.
func (n *Network) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(networkWire{
		Sizes: n.Sizes, Weights: n.Weights, Biases: n.Biases,
	})
}

// LoadNetwork deserialises a network written by Save and validates its
// internal consistency.
func LoadNetwork(r io.Reader) (*Network, error) {
	var w networkWire
	if err := gob.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("nn: decoding network: %w", err)
	}
	if len(w.Sizes) < 2 {
		return nil, fmt.Errorf("nn: network with %d layers", len(w.Sizes))
	}
	if len(w.Weights) != len(w.Sizes)-1 || len(w.Biases) != len(w.Sizes)-1 {
		return nil, fmt.Errorf("nn: layer count mismatch: %d sizes, %d weights, %d biases",
			len(w.Sizes), len(w.Weights), len(w.Biases))
	}
	for l := 0; l < len(w.Sizes)-1; l++ {
		if len(w.Weights[l]) != w.Sizes[l]*w.Sizes[l+1] {
			return nil, fmt.Errorf("nn: layer %d weights %d, want %d", l, len(w.Weights[l]), w.Sizes[l]*w.Sizes[l+1])
		}
		if len(w.Biases[l]) != w.Sizes[l+1] {
			return nil, fmt.Errorf("nn: layer %d biases %d, want %d", l, len(w.Biases[l]), w.Sizes[l+1])
		}
	}
	// Rebuild the flat backing store so the loaded network composes
	// with the engine's vector machinery like a freshly built one.
	n := &Network{Sizes: w.Sizes, params: make([]float64, paramCount(w.Sizes))}
	n.buildViews()
	for l := range w.Weights {
		copy(n.Weights[l], w.Weights[l])
		copy(n.Biases[l], w.Biases[l])
	}
	return n, nil
}

// Split partitions the dataset into train and test subsets with the
// given test fraction, shuffled deterministically by seed.
func (d *Dataset) Split(testFrac float64, seed int64) (train, test *Dataset) {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(d.Images))
	nTest := int(testFrac * float64(len(d.Images)))
	if nTest < 0 {
		nTest = 0
	}
	if nTest > len(d.Images) {
		nTest = len(d.Images)
	}
	train = &Dataset{Classes: d.Classes}
	test = &Dataset{Classes: d.Classes}
	for i, p := range perm {
		dst := train
		if i < nTest {
			dst = test
		}
		dst.Images = append(dst.Images, d.Images[p])
		dst.Labels = append(dst.Labels, d.Labels[p])
	}
	return train, test
}
