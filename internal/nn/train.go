package nn

import (
	"fmt"
	"math/rand"
	"time"

	"dimmwitted/internal/numa"
)

// Strategy selects the tradeoff point for network training: the
// paper's Figure 17(b) compares the classical choice (LeCun's
// PerMachine + Sharding) with DimmWitted's (PerNode +
// FullReplication).
type Strategy struct {
	// PerNodeModel replicates the network per NUMA node (vs one
	// machine-shared network).
	PerNodeModel bool
	// FullReplication gives every node the whole dataset each epoch
	// (vs sharding it).
	FullReplication bool
}

// Classic is LeCun et al.'s layout: one shared network, sharded data.
func Classic() Strategy { return Strategy{} }

// DimmWitted is the paper's layout: a network per node, full data.
func DimmWitted() Strategy { return Strategy{PerNodeModel: true, FullReplication: true} }

// String implements fmt.Stringer.
func (s Strategy) String() string {
	m, d := "PerMachine", "Sharding"
	if s.PerNodeModel {
		m = "PerNode"
	}
	if s.FullReplication {
		d = "FullReplication"
	}
	return fmt.Sprintf("%s/%s", m, d)
}

// Trainer trains a network on a simulated NUMA machine under a
// strategy, charging per-example costs: the example read, the dense
// forward read of every parameter, and the dense backward write of
// every parameter — the fully dense update pattern that makes the
// machine-shared layout so expensive.
type Trainer struct {
	// Net is the combined network (valid after each epoch).
	Net *Network

	ds       *Dataset
	strategy Strategy
	mach     *numa.Machine
	replicas []*Network
	regions  []*numa.Region
	dataRegs []*numa.Region
	scratch  []*scratch
	rng      *rand.Rand
	step     float64
	decay    float64
	cumTime  time.Duration
	examples int64
	epoch    int
}

// TrainerConfig parameterises NewTrainer.
type TrainerConfig struct {
	// Sizes is the network architecture; nil means LeCunSizes.
	Sizes []int
	// Machine is the simulated topology; zero means local2.
	Machine numa.Topology
	// Strategy is the tradeoff point.
	Strategy Strategy
	// Step is the initial SGD step; 0 means 0.05.
	Step float64
	// Decay is the per-epoch step multiplier; 0 means 0.95.
	Decay float64
	// Seed drives initialisation and traversal.
	Seed int64
}

// NewTrainer builds a trainer for the dataset.
func NewTrainer(ds *Dataset, cfg TrainerConfig) (*Trainer, error) {
	if len(ds.Images) == 0 {
		return nil, fmt.Errorf("nn: empty dataset")
	}
	if cfg.Sizes == nil {
		cfg.Sizes = LeCunSizes()
	}
	if len(ds.Images[0]) != cfg.Sizes[0] {
		return nil, fmt.Errorf("nn: input dim %d != first layer %d", len(ds.Images[0]), cfg.Sizes[0])
	}
	if cfg.Machine.Nodes == 0 {
		cfg.Machine = numa.Local2
	}
	if cfg.Step == 0 {
		cfg.Step = 0.05
	}
	if cfg.Decay == 0 {
		cfg.Decay = 0.95
	}
	t := &Trainer{
		ds:       ds,
		strategy: cfg.Strategy,
		mach:     numa.New(cfg.Machine),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		step:     cfg.Step,
		decay:    cfg.Decay,
	}
	proto := NewNetwork(cfg.Sizes, cfg.Seed)
	t.Net = proto.Clone()
	paramBytes := int64(proto.NumParams()) * 8
	dataBytes := int64(len(ds.Images)*cfg.Sizes[0]) * 8
	if cfg.Strategy.PerNodeModel {
		for n := 0; n < cfg.Machine.Nodes; n++ {
			t.replicas = append(t.replicas, proto.Clone())
			t.regions = append(t.regions,
				t.mach.NewRegion(fmt.Sprintf("net-n%d", n), paramBytes, n, numa.NodeShared))
			t.dataRegs = append(t.dataRegs,
				t.mach.NewRegion(fmt.Sprintf("imgs-n%d", n), dataBytes, n, numa.Private))
		}
	} else {
		t.replicas = []*Network{proto.Clone()}
		reg := t.mach.NewInterleavedRegion("net", paramBytes, numa.MachineShared)
		// Back-prop touches every parameter of every layer on every
		// example: the update is fully dense, so concurrent writers on
		// different sockets collide constantly.
		if cfg.Machine.TotalCores() > 1 {
			reg.WriteCollisionProb = 1
		}
		t.regions = []*numa.Region{reg}
		t.dataRegs = []*numa.Region{t.mach.NewInterleavedRegion("imgs", dataBytes, numa.Private)}
	}
	for range t.mach.Cores() {
		t.scratch = append(t.scratch, newScratch(cfg.Sizes))
	}
	return t, nil
}

// EpochResult reports one training epoch.
type EpochResult struct {
	// Epoch is the 1-based epoch count.
	Epoch int
	// Loss is the combined network's cross-entropy after the epoch.
	Loss float64
	// SimTime is this epoch's simulated duration.
	SimTime time.Duration
	// NeuronThroughput is neuron activations computed per simulated
	// second, Figure 17(b)'s metric.
	NeuronThroughput float64
	// Examples is the number of examples processed this epoch.
	Examples int64
}

// RunEpoch trains for one epoch and returns its measurements.
func (t *Trainer) RunEpoch() EpochResult {
	t.mach.Reset()
	params := int64(t.Net.NumParams())
	inputWords := int64(t.Net.Sizes[0])
	var examples int64

	trainChain := func(rep int, cores []*numa.Core, items []int) {
		net := t.replicas[rep]
		for i, ex := range items {
			core := cores[i%len(cores)]
			sc := t.scratch[core.ID]
			touched := net.SGDStep(t.ds.Images[ex], t.ds.Labels[ex], t.step, sc)
			core.ReadStream(t.dataRegs[rep], inputWords)
			core.ReadCached(t.regions[rep], params)    // forward + backward read
			core.Write(t.regions[rep], int64(touched)) // dense gradient write
			core.Compute(float64(params) * 4)          // multiply-accumulate both passes
			examples++
		}
	}

	if t.strategy.PerNodeModel {
		for n := range t.replicas {
			perm := t.rng.Perm(len(t.ds.Images))
			items := perm
			if !t.strategy.FullReplication {
				// Sharded PerNode: node n trains on its slice only.
				share := len(perm) / len(t.replicas)
				items = perm[n*share : (n+1)*share]
			}
			trainChain(n, t.mach.NodeCores(n), items)
		}
		if err := Average(t.Net, t.replicas...); err != nil {
			panic(err) // unreachable: clones share architecture
		}
		for _, r := range t.replicas {
			if err := Average(r, t.Net); err != nil {
				panic(err)
			}
		}
	} else {
		trainChain(0, t.mach.Cores(), t.rng.Perm(len(t.ds.Images)))
		t.Net = t.replicas[0].Clone()
	}
	t.step *= t.decay

	simT := t.mach.SimTime()
	t.cumTime += simT
	t.examples += examples
	t.epoch++
	neurons := float64(examples) * float64(t.Net.NumNeurons())
	return EpochResult{
		Epoch:            t.epoch,
		Loss:             t.Net.Loss(t.ds),
		SimTime:          simT,
		NeuronThroughput: neurons / simT.Seconds(),
		Examples:         examples,
	}
}

// SimTime returns the cumulative simulated training time.
func (t *Trainer) SimTime() time.Duration { return t.cumTime }
