package nn

import (
	"fmt"
	"sort"
	"sync"
)

// The dataset registry backs the serving API's "dataset" field for NN
// jobs: named, deterministic datasets paired with the architecture
// that trains on them (the name pins both, so plan-cache keys stay
// honest). Instances are shared and must be treated as immutable.

// namedDataset couples a dataset with its network architecture.
type namedDataset struct {
	ds    *Dataset
	sizes []int
}

var (
	dsMu    sync.Mutex
	dsCache = map[string]namedDataset{}
)

// dsBuilders maps registry names to constructors.
var dsBuilders = map[string]func() namedDataset{
	// The Figure 17(b) configuration: the scaled seven-layer LeCun
	// network on the synthetic MNIST analog.
	"mnist": func() namedDataset {
		ds := SyntheticMNIST(400, 256, 10, 0.08, 3)
		ds.Name = "mnist"
		return namedDataset{ds: ds, sizes: LeCunSizes()}
	},
	// A small fast-training variant for demos and serving tests.
	"mnist-small": func() namedDataset {
		ds := SyntheticMNIST(240, 32, 10, 0.08, 1)
		ds.Name = "mnist-small"
		return namedDataset{ds: ds, sizes: []int{32, 24, 16, 10}}
	},
}

// DatasetByName returns the shared instance of a registered dataset
// and the network architecture registered with it.
func DatasetByName(name string) (*Dataset, []int, error) {
	dsMu.Lock()
	defer dsMu.Unlock()
	if nd, ok := dsCache[name]; ok {
		return nd.ds, nd.sizes, nil
	}
	build, ok := dsBuilders[name]
	if !ok {
		return nil, nil, fmt.Errorf("nn: unknown dataset %q (want one of %v)", name, DatasetNames())
	}
	nd := build()
	dsCache[name] = nd
	return nd.ds, nd.sizes, nil
}

// DatasetNames lists the registered dataset names, sorted.
func DatasetNames() []string {
	names := make([]string, 0, len(dsBuilders))
	for n := range dsBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
