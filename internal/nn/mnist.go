package nn

import "math/rand"

// Dataset is a labelled image dataset for the network.
type Dataset struct {
	// Name identifies the dataset for registries, plan-cache keys and
	// snapshots; empty for ad-hoc datasets.
	Name string
	// Images holds one input vector per example, values in [0, 1].
	Images [][]float64
	// Labels holds the class index of each example.
	Labels []int
	// Classes is the number of classes.
	Classes int
}

// SyntheticMNIST generates a deterministic handwriting-like dataset:
// each of the classes owns a random smooth prototype in [0,1]^dim and
// examples are noisy copies. It stands in for the MNIST corpus the
// paper trains on (see DESIGN.md's substitution table) — what the
// Figure 17(b) experiment needs is a multi-class dense input the
// network can genuinely learn, not the actual digits.
func SyntheticMNIST(n, dim, classes int, noise float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	protos := make([][]float64, classes)
	for c := range protos {
		p := make([]float64, dim)
		// Smooth prototype: a few random "strokes" (bumps).
		for s := 0; s < 8; s++ {
			center := rng.Intn(dim)
			width := 3 + rng.Intn(8)
			for o := -width; o <= width; o++ {
				i := center + o
				if i >= 0 && i < dim {
					v := 1 - float64(abs(o))/float64(width+1)
					if v > p[i] {
						p[i] = v
					}
				}
			}
		}
		protos[c] = p
	}
	ds := &Dataset{Classes: classes}
	for i := 0; i < n; i++ {
		c := i % classes
		img := make([]float64, dim)
		for j := range img {
			v := protos[c][j] + noise*rng.NormFloat64()
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			img[j] = v
		}
		ds.Images = append(ds.Images, img)
		ds.Labels = append(ds.Labels, c)
	}
	return ds
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
