// Package-level workload adapter: neural-network training as a
// core.Workload. The old Trainer carried its own epoch loop, replica
// averaging and cost charging; all of that now lives in the engine —
// network replicas map onto the plan's model replicas (PerNode is the
// paper's layout, PerMachine the classical LeCun one), examples onto
// work units of the shared partitioner, and the flat parameter vector
// onto the engine's combined state, so end-of-epoch averaging is the
// engine's standard model-replication path.
package nn

import (
	"fmt"
	"math/rand"

	"dimmwitted/internal/core"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
	"dimmwitted/internal/vec"
)

// WorkloadConfig parameterises NewWorkload.
type WorkloadConfig struct {
	// Sizes is the network architecture; nil means LeCunSizes.
	Sizes []int
	// Seed drives network initialisation (traversal randomness is the
	// plan's seed).
	Seed int64
}

// Workload trains a feed-forward network through the core engine,
// charging per-example costs: the example read, the dense forward read
// of every parameter, and the dense backward write of every parameter
// — the fully dense update pattern that makes the machine-shared
// layout so expensive. A Workload instance binds to one engine; build
// a new one per run.
type Workload struct {
	ds    *Dataset
	sizes []int
	seed  int64
	plan  core.Plan
	eval  *Network
}

// nnState is one replica's private state: the network whose parameters
// alias the replica's X vector, plus its training scratch.
type nnState struct {
	net *Network
	sc  *scratch
}

// NewWorkload wraps a labelled image dataset as an engine workload.
func NewWorkload(ds *Dataset, cfg WorkloadConfig) (*Workload, error) {
	if len(ds.Images) == 0 {
		return nil, fmt.Errorf("nn: empty dataset")
	}
	if cfg.Sizes == nil {
		cfg.Sizes = LeCunSizes()
	}
	if len(ds.Images[0]) != cfg.Sizes[0] {
		return nil, fmt.Errorf("nn: input dim %d != first layer %d", len(ds.Images[0]), cfg.Sizes[0])
	}
	return &Workload{ds: ds, sizes: cfg.Sizes, seed: cfg.Seed}, nil
}

// Kind implements core.Workload.
func (w *Workload) Kind() core.WorkloadKind { return core.WorkloadNN }

// Name implements core.Workload.
func (w *Workload) Name() string { return "nn" }

// DatasetName implements core.Workload.
func (w *Workload) DatasetName() string {
	if w.ds.Name != "" {
		return w.ds.Name
	}
	return "images"
}

// Supports implements core.Workload: back-propagation consumes one
// example (row) per step.
func (w *Workload) Supports() []model.Access { return []model.Access{model.RowWise} }

// NormalizePlan implements core.Workload with the trainer's historical
// defaults. SyncRounds defaults to -1: network replicas meet at the
// end-of-epoch combine only, the paper's Section 5.2 protocol (set it
// positive to opt into mid-epoch averaging).
func (w *Workload) NormalizePlan(p core.Plan) core.Plan {
	p.Access = model.RowWise
	if p.Step == 0 {
		p.Step = 0.05
	}
	if p.StepDecay == 0 {
		p.StepDecay = 0.95
	}
	if p.ChunkSize == 0 {
		p.ChunkSize = 16
	}
	if p.SyncRounds == 0 {
		p.SyncRounds = -1
	}
	return p
}

// ValidatePlan implements core.Workload.
func (w *Workload) ValidatePlan(p core.Plan) error {
	if p.DataRep == core.Importance {
		return fmt.Errorf("nn: Importance data replication is undefined for network training (no leverage scores)")
	}
	return nil
}

// Optimize implements core.Workload: the fully dense update writes
// every parameter on every example, so a machine-shared network
// serialises on write collisions while per-node replicas with full
// data copies train locally and average — the >10x of Figure 17(b).
// PerNode/FullReplication degrades gracefully to a single replica on
// one-socket machines.
func (w *Workload) Optimize(top numa.Topology, exec core.ExecutorKind) (core.Plan, error) {
	return core.Plan{
		Access:   model.RowWise,
		ModelRep: core.PerNode,
		DataRep:  core.FullReplication,
		Machine:  top,
		Executor: exec,
	}, nil
}

// Bind implements core.Workload.
func (w *Workload) Bind(p core.Plan) { w.plan = p }

// Units implements core.Workload: one unit per training example.
func (w *Workload) Units() int { return len(w.ds.Images) }

// Dim implements core.Workload: the combined state is the flat
// parameter vector.
func (w *Workload) Dim() int { return paramCount(w.sizes) }

// DataNNZ implements core.Workload: the dense example matrix.
func (w *Workload) DataNNZ() int64 { return int64(len(w.ds.Images) * w.sizes[0]) }

// NumNeurons returns the neuron activations computed per example — the
// unit of Figure 17(b)'s throughput metric.
func (w *Workload) NumNeurons() int {
	total := 0
	for _, s := range w.sizes[1:] {
		total += s
	}
	return total
}

// Layout implements core.Workload. Back-prop touches every parameter
// of every layer on every example: the update is fully dense, so
// concurrent writers on different sockets collide constantly.
func (w *Workload) Layout() core.Layout {
	collision := 0.0
	if w.plan.Workers > 1 {
		collision = 1
	}
	return core.Layout{
		ModelBytes:         int64(paramCount(w.sizes)) * numa.WordBytes,
		DataBytes:          int64(len(w.ds.Images)*w.sizes[0]) * numa.WordBytes,
		ModelCollisionProb: collision,
	}
}

// NewReplica implements core.Workload: every replica (and every
// parallel working copy) starts from the same seeded network, whose
// flat parameters are the replica's X vector.
func (w *Workload) NewReplica(int, int64) *core.WorkState {
	net := NewNetwork(w.sizes, w.seed)
	return &core.WorkState{X: net.Params(), Priv: &nnState{net: net, sc: newScratch(w.sizes)}}
}

// Step implements core.Workload: one forward/backward pass on the
// replica's network, charging the dense parameter traffic.
func (w *Workload) Step(unit int, ws *core.WorkState, step float64, _ *rand.Rand, cost *core.StepCost) model.Stats {
	st := ws.Priv.(*nnState)
	touched := st.net.SGDStep(w.ds.Images[unit], w.ds.Labels[unit], step, st.sc)
	params := len(ws.X)
	inputWords := w.sizes[0]
	if cost != nil {
		cost.Core.ReadStream(cost.DataReg, int64(inputWords))
		cost.Core.ReadCached(cost.ModelReg, int64(params)) // forward + backward read
		cost.Core.Write(cost.ModelReg, int64(touched))     // dense gradient write
		cost.Core.Compute(float64(params) * 4)             // multiply-accumulate both passes
	}
	return model.Stats{
		DataWords:   inputWords,
		ModelReads:  params,
		ModelWrites: touched,
		Flops:       params * 4,
	}
}

// Sync implements core.Workload: network replicas average, Bismarck
// style.
func (w *Workload) Sync() core.SyncMode { return core.SyncAverage }

// Concurrency implements core.Workload: parallel workers train private
// copies and flush batched parameter deltas to the shared atomic
// master.
func (w *Workload) Concurrency() core.ConcurrencyMode { return core.ConcurrencyDelta }

// Combine implements core.Workload: element-wise parameter mean.
func (w *Workload) Combine(xs [][]float64, dst []float64) { vec.Average(dst, xs...) }

// EndEpoch implements core.Workload; nothing to refresh — the replicas'
// X vectors are the parameters themselves.
func (w *Workload) EndEpoch([]*core.WorkState) {}

// AuxRefresh implements core.Workload; networks keep no engine-visible
// auxiliary state.
func (w *Workload) AuxRefresh(*core.WorkState, bool) bool { return false }

// evalNet returns the lazily allocated evaluation network whose
// parameters are overwritten per evaluation.
func (w *Workload) evalNet(x []float64) *Network {
	if w.eval == nil {
		w.eval = NewNetwork(w.sizes, w.seed)
	}
	copy(w.eval.Params(), x)
	return w.eval
}

// Loss implements core.Workload: mean cross-entropy of the combined
// network over the dataset.
func (w *Workload) Loss(x []float64) float64 { return w.evalNet(x).Loss(w.ds) }

// Metrics implements core.Workload with the classification accuracy of
// the combined network.
func (w *Workload) Metrics(x []float64) map[string]float64 {
	return map[string]float64{"accuracy": w.evalNet(x).Accuracy(w.ds)}
}

// PredictBatch scores prediction examples against a frozen parameter
// vector (a registry snapshot): each example must be a dense image of
// the input dimension, and the prediction is the argmax class index.
// Safe for concurrent use — every call builds its own network view.
func (w *Workload) PredictBatch(x []float64, examples []model.Example) ([]float64, error) {
	return PredictBatch(w.sizes, x, examples)
}

// PredictBatch scores dense examples against a flat parameter vector
// for the given architecture, returning argmax class indices.
func PredictBatch(sizes []int, params []float64, examples []model.Example) ([]float64, error) {
	if len(params) != paramCount(sizes) {
		return nil, fmt.Errorf("nn: parameter vector has %d values, architecture %v needs %d",
			len(params), sizes, paramCount(sizes))
	}
	net := NewNetwork(sizes, 0)
	copy(net.Params(), params)
	out := make([]float64, 0, len(examples))
	for i, ex := range examples {
		dense, err := ex.DenseVector(sizes[0])
		if err != nil {
			return nil, fmt.Errorf("nn: example %d: %w", i, err)
		}
		out = append(out, float64(net.Predict(dense)))
	}
	return out, nil
}
