package nn

import (
	"math"
	"testing"

	"dimmwitted/internal/core"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

func smallSizes() []int { return []int{32, 24, 16, 10} }

func smallData() *Dataset { return SyntheticMNIST(300, 32, 10, 0.08, 1) }

// smallEngine builds a workload engine on the small dataset.
func smallEngine(t *testing.T, plan core.Plan) (*Workload, *core.Engine) {
	t.Helper()
	wl, err := NewWorkload(smallData(), WorkloadConfig{Sizes: smallSizes(), Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewWorkload(wl, plan)
	if err != nil {
		t.Fatal(err)
	}
	return wl, eng
}

func TestNetworkShapes(t *testing.T) {
	n := NewNetwork(LeCunSizes(), 1)
	if len(n.Weights) != 6 {
		t.Fatalf("7-layer net has %d weight matrices, want 6", len(n.Weights))
	}
	wantParams := 0
	s := LeCunSizes()
	for l := 0; l < len(s)-1; l++ {
		wantParams += s[l]*s[l+1] + s[l+1]
	}
	if n.NumParams() != wantParams {
		t.Errorf("NumParams = %d, want %d", n.NumParams(), wantParams)
	}
	wantNeurons := 0
	for _, w := range s[1:] {
		wantNeurons += w
	}
	if n.NumNeurons() != wantNeurons {
		t.Errorf("NumNeurons = %d, want %d", n.NumNeurons(), wantNeurons)
	}
}

// The flat parameter vector and the per-layer views must alias: the
// engine averages and snapshots Params, training writes Weights.
func TestParamsAliasLayerViews(t *testing.T) {
	n := NewNetwork(smallSizes(), 2)
	if len(n.Params()) != n.NumParams() {
		t.Fatalf("flat params %d != NumParams %d", len(n.Params()), n.NumParams())
	}
	n.Weights[0][0] = 42
	if n.Params()[0] != 42 {
		t.Error("weight write invisible through Params")
	}
	n.Params()[len(n.Params())-1] = 7
	last := n.Biases[len(n.Biases)-1]
	if last[len(last)-1] != 7 {
		t.Error("params write invisible through Biases")
	}
}

func TestForwardIsDistribution(t *testing.T) {
	n := NewNetwork(smallSizes(), 2)
	ds := smallData()
	s := newScratch(n.Sizes)
	out := n.forward(ds.Images[0], s)
	var sum float64
	for _, p := range out {
		if p < 0 || p > 1 {
			t.Fatalf("probability %v outside [0,1]", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("softmax sums to %v", sum)
	}
}

func TestSGDReducesLoss(t *testing.T) {
	n := NewNetwork(smallSizes(), 3)
	ds := smallData()
	init := n.Loss(ds)
	s := newScratch(n.Sizes)
	for epoch := 0; epoch < 5; epoch++ {
		for i := range ds.Images {
			n.SGDStep(ds.Images[i], ds.Labels[i], 0.05, s)
		}
	}
	final := n.Loss(ds)
	if final >= init/2 {
		t.Errorf("SGD loss %v -> %v, want at least halved", init, final)
	}
}

func TestTrainingReachesHighAccuracy(t *testing.T) {
	_, eng := smallEngine(t, core.Plan{ModelRep: core.PerNode, DataRep: core.FullReplication, Seed: 4})
	eng.RunEpochs(8)
	m := eng.Metrics()
	if m["accuracy"] < 0.8 {
		t.Errorf("accuracy = %v, want >= 0.8", m["accuracy"])
	}
}

func TestCloneIndependent(t *testing.T) {
	n := NewNetwork(smallSizes(), 5)
	c := n.Clone()
	c.Weights[0][0] += 100
	if n.Weights[0][0] == c.Weights[0][0] {
		t.Error("Clone aliases weights")
	}
}

func TestDimmWittedStrategyFasterThanClassic(t *testing.T) {
	// Figure 17(b): PerNode+FullReplication yields over an order of
	// magnitude more neuron throughput than PerMachine+Sharding, whose
	// fully dense updates hammer one machine-shared network.
	throughput := func(plan core.Plan) float64 {
		wl, eng := smallEngine(t, plan)
		er := eng.RunEpoch()
		return float64(er.Steps*wl.NumNeurons()) / er.SimTime.Seconds()
	}
	classic := throughput(core.Plan{ModelRep: core.PerMachine, DataRep: core.Sharding, Seed: 8})
	dw := throughput(core.Plan{ModelRep: core.PerNode, DataRep: core.FullReplication, Seed: 8})
	if ratio := dw / classic; ratio < 5 {
		t.Errorf("DW/classic neuron throughput ratio = %.1f, want >= 5 (paper: >10)", ratio)
	}
}

func TestWorkloadValidation(t *testing.T) {
	if _, err := NewWorkload(&Dataset{}, WorkloadConfig{}); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := NewWorkload(smallData(), WorkloadConfig{Sizes: []int{999, 10}}); err == nil {
		t.Error("mismatched input dim accepted")
	}
	wl, err := NewWorkload(smallData(), WorkloadConfig{Sizes: smallSizes()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewWorkload(wl, core.Plan{DataRep: core.Importance}); err == nil {
		t.Error("Importance data replication accepted for network training")
	}
}

func TestEpochBookkeeping(t *testing.T) {
	_, eng := smallEngine(t, core.Plan{ModelRep: core.PerMachine, DataRep: core.Sharding, Machine: numa.Local2, Seed: 9})
	r1 := eng.RunEpoch()
	r2 := eng.RunEpoch()
	if r1.Epoch != 1 || r2.Epoch != 2 {
		t.Errorf("epoch numbering: %d, %d", r1.Epoch, r2.Epoch)
	}
	if r1.Steps != len(smallData().Images) {
		t.Errorf("sharded epoch processed %d examples, want %d", r1.Steps, len(smallData().Images))
	}
	if eng.SimTime() != r1.SimTime+r2.SimTime {
		t.Error("cumulative SimTime wrong")
	}
}

func TestFullReplicationProcessesPerNode(t *testing.T) {
	_, eng := smallEngine(t, core.Plan{ModelRep: core.PerNode, DataRep: core.FullReplication, Seed: 10})
	r := eng.RunEpoch()
	want := len(smallData().Images) * numa.Local2.Nodes
	if r.Steps != want {
		t.Errorf("full replication processed %d, want %d", r.Steps, want)
	}
}

// The parallel executor must train to the same quality as the
// simulator on the same plan: different interleaving, same statistics.
func TestSimParallelLossParity(t *testing.T) {
	run := func(exec core.ExecutorKind) float64 {
		_, eng := smallEngine(t, core.Plan{
			ModelRep: core.PerNode, DataRep: core.FullReplication,
			Executor: exec, Seed: 12,
		})
		return eng.RunEpochs(6)[5].Loss
	}
	sim := run(core.ExecSimulated)
	par := run(core.ExecParallel)
	// Hogwild interleaving differs from the deterministic simulator, so
	// exact losses differ; statistical parity means both converge to
	// the same near-zero regime.
	if sim > 0.15 || par > 0.15 {
		t.Errorf("losses diverge: sim %v, parallel %v (want both <= 0.15)", sim, par)
	}
	if math.Abs(sim-par) > 0.1 {
		t.Errorf("sim loss %v vs parallel loss %v differ by more than 0.1", sim, par)
	}
}

func TestWorkloadSnapshotPredict(t *testing.T) {
	wl, eng := smallEngine(t, core.Plan{ModelRep: core.PerNode, DataRep: core.FullReplication, Seed: 4})
	eng.RunEpochs(8)
	snap := eng.Snapshot()
	if snap.Workload != core.WorkloadNN || snap.Spec != "nn" {
		t.Errorf("snapshot identifies %s/%s", snap.Workload, snap.Spec)
	}
	ds := smallData()
	examples := make([]model.Example, 0, 20)
	want := make([]int, 0, 20)
	for i := 0; i < 20; i++ {
		examples = append(examples, model.DenseExample(ds.Images[i]))
		want = append(want, ds.Labels[i])
	}
	preds, err := wl.PredictBatch(snap.X, examples)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i, p := range preds {
		if int(p) == want[i] {
			hits++
		}
	}
	if hits < 14 {
		t.Errorf("snapshot predictions: %d/20 correct", hits)
	}
	if _, err := PredictBatch([]int{3, 2}, snap.X, examples); err == nil {
		t.Error("mismatched architecture accepted")
	}
}

func TestDatasetRegistry(t *testing.T) {
	for _, name := range DatasetNames() {
		ds, sizes, err := DatasetByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if ds.Name != name {
			t.Errorf("dataset %q carries name %q", name, ds.Name)
		}
		if len(ds.Images[0]) != sizes[0] {
			t.Errorf("dataset %q input dim %d != architecture %v", name, len(ds.Images[0]), sizes)
		}
		again, _, err := DatasetByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if ds != again {
			t.Errorf("dataset %q not cached as a shared instance", name)
		}
	}
	if _, _, err := DatasetByName("no-such-dataset"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestSyntheticMNISTLearnable(t *testing.T) {
	ds := SyntheticMNIST(200, 64, 5, 0.05, 11)
	if len(ds.Images) != 200 || ds.Classes != 5 {
		t.Fatalf("dataset shape wrong")
	}
	counts := make([]int, 5)
	for i, img := range ds.Images {
		for _, v := range img {
			if v < 0 || v > 1 {
				t.Fatalf("pixel %v outside [0,1]", v)
			}
		}
		counts[ds.Labels[i]]++
	}
	for c, n := range counts {
		if n != 40 {
			t.Errorf("class %d has %d examples, want 40", c, n)
		}
	}
	// Same-class examples are closer than cross-class ones on average.
	dist := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return s
	}
	same := dist(ds.Images[0], ds.Images[5]) // both class 0
	diff := dist(ds.Images[0], ds.Images[1]) // classes 0, 1
	if same >= diff {
		t.Errorf("intra-class distance %v >= inter-class %v", same, diff)
	}
}
