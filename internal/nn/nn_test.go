package nn

import (
	"math"
	"testing"

	"dimmwitted/internal/numa"
)

func smallSizes() []int { return []int{32, 24, 16, 10} }

func smallData() *Dataset { return SyntheticMNIST(300, 32, 10, 0.08, 1) }

func TestNetworkShapes(t *testing.T) {
	n := NewNetwork(LeCunSizes(), 1)
	if len(n.Weights) != 6 {
		t.Fatalf("7-layer net has %d weight matrices, want 6", len(n.Weights))
	}
	wantParams := 0
	s := LeCunSizes()
	for l := 0; l < len(s)-1; l++ {
		wantParams += s[l]*s[l+1] + s[l+1]
	}
	if n.NumParams() != wantParams {
		t.Errorf("NumParams = %d, want %d", n.NumParams(), wantParams)
	}
	wantNeurons := 0
	for _, w := range s[1:] {
		wantNeurons += w
	}
	if n.NumNeurons() != wantNeurons {
		t.Errorf("NumNeurons = %d, want %d", n.NumNeurons(), wantNeurons)
	}
}

func TestForwardIsDistribution(t *testing.T) {
	n := NewNetwork(smallSizes(), 2)
	ds := smallData()
	s := newScratch(n.Sizes)
	out := n.forward(ds.Images[0], s)
	var sum float64
	for _, p := range out {
		if p < 0 || p > 1 {
			t.Fatalf("probability %v outside [0,1]", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("softmax sums to %v", sum)
	}
}

func TestSGDReducesLoss(t *testing.T) {
	n := NewNetwork(smallSizes(), 3)
	ds := smallData()
	init := n.Loss(ds)
	s := newScratch(n.Sizes)
	for epoch := 0; epoch < 5; epoch++ {
		for i := range ds.Images {
			n.SGDStep(ds.Images[i], ds.Labels[i], 0.05, s)
		}
	}
	final := n.Loss(ds)
	if final >= init/2 {
		t.Errorf("SGD loss %v -> %v, want at least halved", init, final)
	}
}

func TestTrainingReachesHighAccuracy(t *testing.T) {
	ds := smallData()
	tr, err := NewTrainer(ds, TrainerConfig{Sizes: smallSizes(), Strategy: DimmWitted(), Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		tr.RunEpoch()
	}
	if acc := tr.Net.Accuracy(ds); acc < 0.8 {
		t.Errorf("accuracy = %v, want >= 0.8", acc)
	}
}

func TestCloneIndependent(t *testing.T) {
	n := NewNetwork(smallSizes(), 5)
	c := n.Clone()
	c.Weights[0][0] += 100
	if n.Weights[0][0] == c.Weights[0][0] {
		t.Error("Clone aliases weights")
	}
}

func TestAverage(t *testing.T) {
	a := NewNetwork(smallSizes(), 6)
	b := a.Clone()
	for l := range b.Weights {
		for i := range b.Weights[l] {
			b.Weights[l][i] = a.Weights[l][i] + 2
		}
	}
	dst := a.Clone()
	if err := Average(dst, a, b); err != nil {
		t.Fatal(err)
	}
	if got, want := dst.Weights[0][0], a.Weights[0][0]+1; math.Abs(got-want) > 1e-12 {
		t.Errorf("average = %v, want %v", got, want)
	}
	bad := NewNetwork([]int{32, 10}, 7)
	if err := Average(bad, a); err == nil {
		t.Error("mismatched architectures averaged")
	}
}

func TestDimmWittedStrategyFasterThanClassic(t *testing.T) {
	// Figure 17(b): PerNode+FullReplication yields over an order of
	// magnitude more neuron throughput than PerMachine+Sharding, whose
	// fully dense updates hammer one machine-shared network.
	ds := smallData()
	classic, err := NewTrainer(ds, TrainerConfig{Sizes: smallSizes(), Strategy: Classic(), Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	dw, err := NewTrainer(ds, TrainerConfig{Sizes: smallSizes(), Strategy: DimmWitted(), Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	c := classic.RunEpoch()
	d := dw.RunEpoch()
	ratio := d.NeuronThroughput / c.NeuronThroughput
	if ratio < 5 {
		t.Errorf("DW/classic neuron throughput ratio = %.1f, want >= 5 (paper: >10)", ratio)
	}
}

func TestTrainerValidation(t *testing.T) {
	if _, err := NewTrainer(&Dataset{}, TrainerConfig{}); err == nil {
		t.Error("empty dataset accepted")
	}
	ds := smallData()
	if _, err := NewTrainer(ds, TrainerConfig{Sizes: []int{999, 10}}); err == nil {
		t.Error("mismatched input dim accepted")
	}
}

func TestTrainerEpochBookkeeping(t *testing.T) {
	ds := smallData()
	tr, err := NewTrainer(ds, TrainerConfig{Sizes: smallSizes(), Strategy: Classic(), Machine: numa.Local2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r1 := tr.RunEpoch()
	r2 := tr.RunEpoch()
	if r1.Epoch != 1 || r2.Epoch != 2 {
		t.Errorf("epoch numbering: %d, %d", r1.Epoch, r2.Epoch)
	}
	if r1.Examples != int64(len(ds.Images)) {
		t.Errorf("classic epoch processed %d examples, want %d", r1.Examples, len(ds.Images))
	}
	if tr.SimTime() != r1.SimTime+r2.SimTime {
		t.Error("cumulative SimTime wrong")
	}
}

func TestFullReplicationProcessesPerNode(t *testing.T) {
	ds := smallData()
	tr, err := NewTrainer(ds, TrainerConfig{Sizes: smallSizes(), Strategy: DimmWitted(), Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	r := tr.RunEpoch()
	want := int64(len(ds.Images) * numa.Local2.Nodes)
	if r.Examples != want {
		t.Errorf("full replication processed %d, want %d", r.Examples, want)
	}
}

func TestSyntheticMNISTLearnable(t *testing.T) {
	ds := SyntheticMNIST(200, 64, 5, 0.05, 11)
	if len(ds.Images) != 200 || ds.Classes != 5 {
		t.Fatalf("dataset shape wrong")
	}
	counts := make([]int, 5)
	for i, img := range ds.Images {
		for _, v := range img {
			if v < 0 || v > 1 {
				t.Fatalf("pixel %v outside [0,1]", v)
			}
		}
		counts[ds.Labels[i]]++
	}
	for c, n := range counts {
		if n != 40 {
			t.Errorf("class %d has %d examples, want 40", c, n)
		}
	}
	// Same-class examples are closer than cross-class ones on average.
	dist := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return s
	}
	same := dist(ds.Images[0], ds.Images[5]) // both class 0
	diff := dist(ds.Images[0], ds.Images[1]) // classes 0, 1
	if same >= diff {
		t.Errorf("intra-class distance %v >= inter-class %v", same, diff)
	}
}
