// Package nn implements the paper's second extension (Section 5.2,
// Appendix D.2): a deep feed-forward neural network trained with
// back-propagation SGD, run layer by layer through the same row-wise
// access path as the other models. The paper follows LeCun et al.'s
// seven-layer MNIST network; this package builds a scaled version on a
// synthetic handwriting-like dataset and compares the classical choice
// (PerMachine model, Sharding) against DimmWitted's (PerNode,
// FullReplication), reproducing the >10x throughput gap of
// Figure 17(b).
package nn

import (
	"math"
	"math/rand"
)

// Network is a fully-connected feed-forward network with ReLU hidden
// activations and a softmax output layer. All parameters live in one
// flat backing vector (Params), with Weights and Biases as per-layer
// views into it — so the engine's vector machinery (replica averaging,
// atomic delta masters, snapshots) operates on the network directly.
type Network struct {
	// Sizes lists the layer widths, input first, output last.
	Sizes []int
	// Weights[l] is the Sizes[l+1] x Sizes[l] matrix of layer l,
	// row-major; a view into the flat parameter vector.
	Weights [][]float64
	// Biases[l] has length Sizes[l+1]; a view into the flat parameter
	// vector.
	Biases [][]float64

	// params is the flat backing store: layer 0 weights, layer 0
	// biases, layer 1 weights, ...
	params []float64
}

// LeCunSizes returns the scaled seven-layer architecture used by the
// Figure 17(b) reproduction (paper: 7 layers, 0.8M parameters; here
// ~55K parameters so epochs run in milliseconds).
func LeCunSizes() []int { return []int{256, 128, 96, 64, 48, 32, 10} }

// paramCount returns the total number of weights and biases for an
// architecture.
func paramCount(sizes []int) int {
	total := 0
	for l := 0; l < len(sizes)-1; l++ {
		total += sizes[l]*sizes[l+1] + sizes[l+1]
	}
	return total
}

// buildViews slices the flat parameter vector into per-layer weight
// and bias views.
func (n *Network) buildViews() {
	n.Weights, n.Biases = n.Weights[:0], n.Biases[:0]
	off := 0
	for l := 0; l < len(n.Sizes)-1; l++ {
		in, out := n.Sizes[l], n.Sizes[l+1]
		n.Weights = append(n.Weights, n.params[off:off+in*out])
		off += in * out
		n.Biases = append(n.Biases, n.params[off:off+out])
		off += out
	}
}

// NewNetwork allocates a network with small random weights.
func NewNetwork(sizes []int, seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	n := &Network{Sizes: sizes, params: make([]float64, paramCount(sizes))}
	n.buildViews()
	for l := 0; l < len(sizes)-1; l++ {
		w := n.Weights[l]
		scale := math.Sqrt(2 / float64(sizes[l])) // He initialisation for ReLU
		for i := range w {
			w[i] = scale * rng.NormFloat64()
		}
	}
	return n
}

// Params returns the flat parameter vector backing the network. The
// per-layer Weights and Biases are views into it, so writes through
// either are visible through both.
func (n *Network) Params() []float64 { return n.params }

// NumParams returns the total number of weights and biases.
func (n *Network) NumParams() int { return len(n.params) }

// NumNeurons returns the number of neuron activations computed per
// example (all non-input layers) — the unit of Figure 17(b)'s
// variables/second throughput.
func (n *Network) NumNeurons() int {
	total := 0
	for _, s := range n.Sizes[1:] {
		total += s
	}
	return total
}

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	out := &Network{
		Sizes:  append([]int(nil), n.Sizes...),
		params: append([]float64(nil), n.params...),
	}
	out.buildViews()
	return out
}

// scratch holds per-worker forward/backward buffers to avoid
// allocation in the training loop.
type scratch struct {
	acts   [][]float64 // activations per layer (including input)
	deltas [][]float64 // error terms per non-input layer
}

func newScratch(sizes []int) *scratch {
	s := &scratch{}
	for _, w := range sizes {
		s.acts = append(s.acts, make([]float64, w))
	}
	for _, w := range sizes[1:] {
		s.deltas = append(s.deltas, make([]float64, w))
	}
	return s
}

// Forward runs the network on input x and returns the output
// probabilities (softmax), using the provided scratch.
func (n *Network) forward(x []float64, s *scratch) []float64 {
	copy(s.acts[0], x)
	last := len(n.Weights) - 1
	for l := 0; l < len(n.Weights); l++ {
		in, out := s.acts[l], s.acts[l+1]
		w, b := n.Weights[l], n.Biases[l]
		width := n.Sizes[l]
		for j := range out {
			sum := b[j]
			row := w[j*width : (j+1)*width]
			for i, v := range row {
				sum += v * in[i]
			}
			if l == last {
				out[j] = sum // softmax applied below
			} else if sum > 0 {
				out[j] = sum // ReLU
			} else {
				out[j] = 0
			}
		}
	}
	softmax(s.acts[len(s.acts)-1])
	return s.acts[len(s.acts)-1]
}

// Predict returns the argmax class for input x.
func (n *Network) Predict(x []float64) int {
	s := newScratch(n.Sizes)
	out := n.forward(x, s)
	best := 0
	for j, v := range out {
		if v > out[best] {
			best = j
		}
	}
	return best
}

// Loss returns the mean cross-entropy of the network on the dataset.
func (n *Network) Loss(ds *Dataset) float64 {
	s := newScratch(n.Sizes)
	var total float64
	for i := range ds.Images {
		out := n.forward(ds.Images[i], s)
		p := out[ds.Labels[i]]
		if p < 1e-12 {
			p = 1e-12
		}
		total -= math.Log(p)
	}
	return total / float64(len(ds.Images))
}

// Accuracy returns the fraction of correctly classified examples.
func (n *Network) Accuracy(ds *Dataset) float64 {
	s := newScratch(n.Sizes)
	correct := 0
	for i := range ds.Images {
		out := n.forward(ds.Images[i], s)
		best := 0
		for j, v := range out {
			if v > out[best] {
				best = j
			}
		}
		if best == ds.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(ds.Images))
}

// SGDStep runs one forward/backward pass on example (x, label) and
// applies the gradient with the given step size. It returns the number
// of weight words touched (for cost accounting: every parameter is
// read on the forward pass and read+written on the backward pass — the
// dense update that makes PerMachine replication so expensive here).
func (n *Network) SGDStep(x []float64, label int, step float64, s *scratch) int {
	out := n.forward(x, s)

	// Output delta: softmax + cross-entropy gives (p - y).
	last := len(n.Weights) - 1
	dOut := s.deltas[last]
	for j := range dOut {
		y := 0.0
		if j == label {
			y = 1
		}
		dOut[j] = out[j] - y
	}

	// Backward through hidden layers.
	for l := last - 1; l >= 0; l-- {
		width := n.Sizes[l+1]
		next := n.Weights[l+1]
		dNext := s.deltas[l+1]
		d := s.deltas[l]
		act := s.acts[l+1]
		for j := 0; j < width; j++ {
			if act[j] <= 0 { // ReLU gradient
				d[j] = 0
				continue
			}
			var sum float64
			for k := range dNext {
				sum += next[k*width+j] * dNext[k]
			}
			d[j] = sum
		}
	}

	// Apply gradients.
	touched := 0
	for l := range n.Weights {
		width := n.Sizes[l]
		in := s.acts[l]
		d := s.deltas[l]
		w := n.Weights[l]
		b := n.Biases[l]
		for j := range d {
			if d[j] == 0 {
				continue
			}
			g := step * d[j]
			row := w[j*width : (j+1)*width]
			for i := range row {
				row[i] -= g * in[i]
			}
			b[j] -= g
			touched += width + 1
		}
	}
	return touched
}

// softmax normalises v into probabilities in place, stably.
func softmax(v []float64) {
	max := v[0]
	for _, x := range v[1:] {
		if x > max {
			max = x
		}
	}
	var sum float64
	for i, x := range v {
		e := math.Exp(x - max)
		v[i] = e
		sum += e
	}
	for i := range v {
		v[i] /= sum
	}
}
