package nn

import (
	"bytes"
	"testing"
)

func TestNetworkSaveLoadRoundTrip(t *testing.T) {
	ds := smallData()
	tr, err := NewTrainer(ds, TrainerConfig{Sizes: smallSizes(), Strategy: DimmWitted(), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		tr.RunEpoch()
	}
	var buf bytes.Buffer
	if err := tr.Net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Same predictions, same loss.
	if got, want := back.Loss(ds), tr.Net.Loss(ds); got != want {
		t.Errorf("loaded loss %v, want %v", got, want)
	}
	for i := 0; i < 20; i++ {
		if back.Predict(ds.Images[i]) != tr.Net.Predict(ds.Images[i]) {
			t.Fatalf("prediction %d changed after round trip", i)
		}
	}
}

func TestLoadNetworkRejectsCorrupt(t *testing.T) {
	if _, err := LoadNetwork(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage accepted")
	}
	// Structurally inconsistent payload.
	var buf bytes.Buffer
	n := NewNetwork(smallSizes(), 1)
	n.Weights[0] = n.Weights[0][:5] // corrupt layer 0
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadNetwork(&buf); err == nil {
		t.Error("inconsistent network accepted")
	}
}

func TestDatasetSplit(t *testing.T) {
	ds := SyntheticMNIST(100, 16, 4, 0.05, 3)
	train, test := ds.Split(0.25, 7)
	if len(test.Images) != 25 || len(train.Images) != 75 {
		t.Fatalf("split sizes %d/%d", len(train.Images), len(test.Images))
	}
	if train.Classes != 4 || test.Classes != 4 {
		t.Error("classes not propagated")
	}
	// Deterministic under seed.
	train2, _ := ds.Split(0.25, 7)
	for i := range train.Labels {
		if train.Labels[i] != train2.Labels[i] {
			t.Fatal("split not deterministic")
		}
	}
	// Edge fractions.
	all, none := ds.Split(0, 1)
	if len(all.Images) != 100 || len(none.Images) != 0 {
		t.Error("zero-fraction split wrong")
	}
}

func TestGeneralisationOnHeldOut(t *testing.T) {
	ds := SyntheticMNIST(400, 32, 10, 0.08, 5)
	train, test := ds.Split(0.25, 9)
	tr, err := NewTrainer(train, TrainerConfig{Sizes: smallSizes(), Strategy: DimmWitted(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		tr.RunEpoch()
	}
	if acc := tr.Net.Accuracy(test); acc < 0.7 {
		t.Errorf("held-out accuracy = %v, want >= 0.7", acc)
	}
}
