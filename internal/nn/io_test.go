package nn

import (
	"bytes"
	"testing"

	"dimmwitted/internal/core"
)

func TestNetworkSaveLoadRoundTrip(t *testing.T) {
	ds := smallData()
	_, eng := smallEngine(t, core.Plan{ModelRep: core.PerNode, DataRep: core.FullReplication, Seed: 2})
	eng.RunEpochs(3)
	net := NewNetwork(smallSizes(), 2)
	copy(net.Params(), eng.Model())
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Same flat parameters, same predictions, same loss.
	for i, v := range net.Params() {
		if back.Params()[i] != v {
			t.Fatalf("param %d changed after round trip", i)
		}
	}
	if got, want := back.Loss(ds), net.Loss(ds); got != want {
		t.Errorf("loaded loss %v, want %v", got, want)
	}
	for i := 0; i < 20; i++ {
		if back.Predict(ds.Images[i]) != net.Predict(ds.Images[i]) {
			t.Fatalf("prediction %d changed after round trip", i)
		}
	}
}

func TestLoadNetworkRejectsCorrupt(t *testing.T) {
	if _, err := LoadNetwork(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage accepted")
	}
	// Structurally inconsistent payload.
	var buf bytes.Buffer
	n := NewNetwork(smallSizes(), 1)
	n.Weights[0] = n.Weights[0][:5] // corrupt layer 0
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadNetwork(&buf); err == nil {
		t.Error("inconsistent network accepted")
	}
}

func TestDatasetSplit(t *testing.T) {
	ds := SyntheticMNIST(100, 16, 4, 0.05, 3)
	train, test := ds.Split(0.25, 7)
	if len(test.Images) != 25 || len(train.Images) != 75 {
		t.Fatalf("split sizes %d/%d", len(train.Images), len(test.Images))
	}
	if train.Classes != 4 || test.Classes != 4 {
		t.Error("classes not propagated")
	}
	// Deterministic under seed.
	train2, _ := ds.Split(0.25, 7)
	for i := range train.Labels {
		if train.Labels[i] != train2.Labels[i] {
			t.Fatal("split not deterministic")
		}
	}
	// Edge fractions.
	all, none := ds.Split(0, 1)
	if len(all.Images) != 100 || len(none.Images) != 0 {
		t.Error("zero-fraction split wrong")
	}
}

func TestGeneralisationOnHeldOut(t *testing.T) {
	ds := SyntheticMNIST(400, 32, 10, 0.08, 5)
	train, test := ds.Split(0.25, 9)
	wl, err := NewWorkload(train, WorkloadConfig{Sizes: smallSizes(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewWorkload(wl, core.Plan{ModelRep: core.PerNode, DataRep: core.FullReplication, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunEpochs(8)
	net := NewNetwork(smallSizes(), 5)
	copy(net.Params(), eng.Model())
	if acc := net.Accuracy(test); acc < 0.7 {
		t.Errorf("held-out accuracy = %v, want >= 0.7", acc)
	}
}
