package model

import (
	"dimmwitted/internal/data"
	"dimmwitted/internal/vec"
)

// SVM is a linear support vector machine trained on the hinge loss,
// optionally with L2 regularisation.
//
// Row-wise it is stochastic (sub)gradient descent, the Hogwild!/MLlib
// point in the tradeoff space; column-to-row it is stochastic
// coordinate descent recomputing margins from the raw rows, the
// GraphLab point (Figure 2).
type SVM struct {
	// Lambda is the L2 regularisation weight; 0 disables it. Row
	// steps shrink only the example's support, scaled by d/nᵢ so the
	// expected shrinkage per epoch is unbiased while updates stay
	// sparse (the lazy-regularisation trick of sparse SGD systems).
	Lambda float64
}

// NewSVM returns an unregularised SVM specification.
func NewSVM() *SVM { return &SVM{} }

// NewSVMRegularized returns an SVM with L2 weight lambda.
func NewSVMRegularized(lambda float64) *SVM { return &SVM{Lambda: lambda} }

// Name implements Spec.
func (*SVM) Name() string { return "svm" }

// Supports implements Spec: SGD row-wise is natural; coordinate
// descent uses column-to-row access (margins must be recomputed from
// rows because the hinge is not decomposable over residual caches).
func (*SVM) Supports() []Access { return []Access{RowWise, ColToRow} }

// DenseUpdate implements Spec: hinge gradients touch only the
// example's support (sparse update).
func (*SVM) DenseUpdate() bool { return false }

// NewReplica implements Spec.
func (*SVM) NewReplica(ds *data.Dataset) *Replica {
	return &Replica{X: make([]float64, ds.Cols())}
}

// RowStep implements Spec: one SGD step on example i.
//
//	margin = y_i ⟨x, a_i⟩;  if margin < 1:  x += step · y_i · a_i
//
// With Lambda > 0 the support coordinates are first shrunk by
// step·Lambda·d/(nᵢ·N), support-scaled lazy L2.
func (s *SVM) RowStep(ds *data.Dataset, i int, r *Replica, step float64) Stats {
	idx, vals := ds.A.Row(i)
	y := ds.Labels[i]
	margin := y * vec.SparseDot(vals, idx, r.X)
	st := Stats{DataWords: len(idx), ModelReads: len(idx), Flops: 2 * len(idx)}
	if s.Lambda > 0 && len(idx) > 0 {
		shrink := 1 - step*s.Lambda*float64(ds.Cols())/(float64(len(idx))*float64(ds.Rows()))
		if shrink < 0 {
			shrink = 0
		}
		for _, j := range idx {
			r.X[j] *= shrink
		}
		st.ModelWrites += len(idx)
		st.Flops += len(idx)
	}
	if margin < 1 {
		vec.SparseAXPY(step*y, vals, idx, r.X)
		st.ModelWrites += len(idx)
		st.Flops += 2 * len(idx)
	}
	return st
}

// ColStep implements Spec: one coordinate subgradient step on
// component j using column-to-row access — it reads every row in
// S(j) = {i : a_ij ≠ 0} in full to recompute margins against the
// current model, then updates x_j alone.
func (*SVM) ColStep(ds *data.Dataset, j int, r *Replica, step float64) Stats {
	rows, colVals := ds.CSC().Col(j)
	var grad float64
	st := Stats{ModelWrites: 1}
	for k, i := range rows {
		idx, vals := ds.A.Row(int(i))
		y := ds.Labels[i]
		margin := y * vec.SparseDot(vals, idx, r.X)
		st.DataWords += len(idx)
		st.ModelReads += len(idx)
		st.Flops += 2*len(idx) + 2
		if margin < 1 {
			grad -= y * colVals[k]
		}
	}
	n := float64(len(rows))
	if n > 0 {
		r.X[j] -= step * grad / n
	}
	return st
}

// RefreshAux implements Spec: SVM keeps no auxiliary state.
func (*SVM) RefreshAux(*data.Dataset, *Replica) {}

// Loss implements Spec: mean hinge loss, plus (λ/2N)‖x‖² when
// regularised.
func (s *SVM) Loss(ds *data.Dataset, x []float64) float64 {
	var total float64
	for i := 0; i < ds.Rows(); i++ {
		idx, vals := ds.A.Row(i)
		margin := ds.Labels[i] * vec.SparseDot(vals, idx, x)
		if h := 1 - margin; h > 0 {
			total += h
		}
	}
	loss := total / float64(ds.Rows())
	if s.Lambda > 0 {
		n := vec.Norm2(x)
		loss += 0.5 * s.Lambda * n * n / float64(ds.Rows())
	}
	return loss
}

// Combine implements Spec: Bismarck-style model averaging.
func (*SVM) Combine(replicas [][]float64, dst []float64) {
	vec.Average(dst, replicas...)
}

// Predict implements Spec: the side of the separating hyperplane.
func (*SVM) Predict(score float64) float64 {
	if score >= 0 {
		return 1
	}
	return -1
}

// Aggregate implements Spec: iterative estimator, not an aggregate.
func (*SVM) Aggregate() bool { return false }
