package model

import (
	"sort"

	"dimmwitted/internal/data"
	"dimmwitted/internal/vec"
)

// LP solves the vertex-cover linear-program relaxation the paper's
// network-analysis application uses (after Sridhar et al.'s
// LP-rounding solver):
//
//	minimise   Σ_v x_v
//	subject to x_u + x_v ≥ 1 for every edge (u,v),  x ∈ [0,1]^V
//
// solved via the quadratic penalty
//
//	F(x) = Σ_v x_v + ρ · Σ_e max(0, 1 − x_u − x_v)²
//
// Row-wise access is projected SGD over edges; column-wise access is
// exact 1-D coordinate minimisation over a maintained violation cache
// r_e = 1 − x_u − x_v (the replica's Aux). The data matrix has two
// nonzeros per row, which is what makes column-wise access dominate on
// these workloads (Section 4.3.1).
type LP struct {
	// Rho is the constraint-penalty weight.
	Rho float64
}

// NewLP returns an LP specification with the default penalty.
func NewLP() *LP { return &LP{Rho: 5} }

// Name implements Spec.
func (*LP) Name() string { return "lp" }

// Supports implements Spec.
func (*LP) Supports() []Access { return []Access{ColWise, RowWise} }

// DenseUpdate implements Spec.
func (*LP) DenseUpdate() bool { return false }

// NewReplica implements Spec: start from the all-ones feasible cover,
// so every iterate stays near-feasible and loss decreases toward the
// LP optimum from above. Aux caches the per-edge violation 1−x_u−x_v.
func (*LP) NewReplica(ds *data.Dataset) *Replica {
	r := &Replica{X: make([]float64, ds.Cols()), Aux: make([]float64, ds.Rows())}
	for j := range r.X {
		r.X[j] = 1
	}
	for i := range r.Aux {
		r.Aux[i] = -1 // 1 - 1 - 1
	}
	return r
}

// RowStep implements Spec: projected SGD on edge i's penalty piece.
// The linear Σx term is apportioned to edges by endpoint degree so one
// epoch over edges applies it exactly once per vertex.
func (lp *LP) RowStep(ds *data.Dataset, i int, r *Replica, step float64) Stats {
	idx, _ := ds.A.Row(i)
	csc := ds.CSC()
	u, v := int(idx[0]), int(idx[1])
	viol := 1 - r.X[u] - r.X[v]
	var penaltyGrad float64
	if viol > 0 {
		penaltyGrad = -2 * lp.Rho * viol
	}
	gu := 1/float64(csc.ColNNZ(u)) + penaltyGrad
	gv := 1/float64(csc.ColNNZ(v)) + penaltyGrad
	r.X[u] = vec.Clamp(r.X[u]-step*gu, 0, 1)
	r.X[v] = vec.Clamp(r.X[v]-step*gv, 0, 1)
	return Stats{DataWords: 2, ModelReads: 2, ModelWrites: 2, Flops: 12}
}

// ColStep implements Spec: exact minimisation of F over x_j ∈ [0,1]
// holding the rest fixed, using the violation cache. With
// c_e = r_e + x_j (the violation if x_j were zero), the 1-D objective
//
//	g(t) = t + ρ Σ_{e∋j} max(0, c_e − t)²
//
// is convex piecewise-quadratic; its minimiser is found by scanning
// the breakpoints in decreasing order. The step argument damps the
// move (step = 1 is exact coordinate descent).
func (lp *LP) ColStep(ds *data.Dataset, j int, r *Replica, step float64) Stats {
	rows, _ := ds.CSC().Col(j)
	st := Stats{
		DataWords:   len(rows),
		AuxReads:    len(rows),
		ModelReads:  1,
		ModelWrites: 1,
		AuxWrites:   len(rows),
		Flops:       8*len(rows) + 8,
	}
	if len(rows) == 0 {
		return st
	}
	xj := r.X[j]
	c := make([]float64, len(rows))
	for k, e := range rows {
		c[k] = r.Aux[e] + xj
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(c)))
	// g'(t) = 1 − 2ρ Σ_{c_e > t} (c_e − t): increasing in t. Find the
	// smallest t ≥ 0 with g'(t) ≥ 0 by scanning active sets.
	target := 1 / (2 * lp.Rho)
	best := 0.0
	if 1-2*lp.Rho*(sumAbove(c, 0)) >= 0 {
		best = 0 // derivative already nonnegative at 0
	} else {
		best = c[0] // fallback: derivative positive for t ≥ max c
		var s float64
		for k := 0; k < len(c); k++ {
			s += c[k]
			t := (s - target) / float64(k+1)
			lower := 0.0
			if k+1 < len(c) {
				lower = c[k+1]
			}
			if t <= c[k] && t >= lower {
				best = t
				break
			}
		}
	}
	best = vec.Clamp(best, 0, 1)
	delta := step * (best - xj)
	if delta == 0 {
		return st
	}
	r.X[j] = xj + delta
	for _, e := range rows {
		r.Aux[e] -= delta
	}
	return st
}

// sumAbove returns Σ max(0, c_e − t).
func sumAbove(c []float64, t float64) float64 {
	var s float64
	for _, v := range c {
		if v > t {
			s += v - t
		}
	}
	return s
}

// RefreshAux implements Spec: rebuild the violation cache from the
// model.
func (*LP) RefreshAux(ds *data.Dataset, r *Replica) {
	for i := 0; i < ds.Rows(); i++ {
		idx, _ := ds.A.Row(i)
		r.Aux[i] = 1 - r.X[idx[0]] - r.X[idx[1]]
	}
}

// Loss implements Spec: the penalised objective, normalised per vertex.
func (lp *LP) Loss(ds *data.Dataset, x []float64) float64 {
	var cover float64
	for _, v := range x {
		cover += v
	}
	var penalty float64
	for i := 0; i < ds.Rows(); i++ {
		idx, _ := ds.A.Row(i)
		if viol := 1 - x[idx[0]] - x[idx[1]]; viol > 0 {
			penalty += viol * viol
		}
	}
	return (cover + lp.Rho*penalty) / float64(ds.Cols())
}

// Combine implements Spec: Bismarck-style model averaging.
func (*LP) Combine(replicas [][]float64, dst []float64) {
	vec.Average(dst, replicas...)
}

// Predict implements Spec: the constraint value x_u + x_v for an edge
// example — >= 1 means the edge is covered by the fractional solution.
func (*LP) Predict(score float64) float64 { return score }

// Aggregate implements Spec: iterative estimator, not an aggregate.
func (*LP) Aggregate() bool { return false }
