// Package model implements the paper's model specifications
// (Section 3.1): for each statistical task, a tuple of functions that
// solve the same underlying model through different access methods —
// f_row (row-wise), f_col (column-wise) and f_ctr (column-to-row) —
// plus the loss used to measure convergence.
//
// Five models from the evaluation are provided: support vector
// machines (SVM), logistic regression (LR), least squares (LS), linear
// programming (LP, the vertex-cover relaxation the paper's network-
// analysis application uses), and quadratic programming (QP, graph
// smoothing). A trivial parallel-sum specification backs the
// throughput microbenchmark of Figure 13.
package model

import (
	"fmt"

	"dimmwitted/internal/data"
)

// Access identifies one of the paper's three data access methods
// (Section 2.1, Figure 1c).
type Access int

const (
	// RowWise scans rows; the update may touch the whole model.
	RowWise Access = iota
	// ColWise scans columns; the update touches one model component,
	// reading per-row auxiliary state (residuals) instead of raw rows.
	ColWise
	// ColToRow scans columns but reads every row in which the column
	// is nonzero (the paper's f_ctr; de facto method for Gibbs).
	ColToRow
)

// String implements fmt.Stringer.
func (a Access) String() string {
	switch a {
	case RowWise:
		return "row-wise"
	case ColWise:
		return "column-wise"
	case ColToRow:
		return "column-to-row"
	default:
		return fmt.Sprintf("Access(%d)", int(a))
	}
}

// Stats counts the memory traffic of one step, in 8-byte words, so the
// engine can charge the simulated NUMA machine per Figure 6's cost
// model: data words streamed from the data replica, model words
// read/written on the model replica, and auxiliary-state words (SCD
// residuals) read/written.
type Stats struct {
	// DataWords counts words streamed from the immutable data matrix.
	DataWords int
	// ModelReads and ModelWrites count model-replica accesses.
	ModelReads, ModelWrites int
	// AuxReads and AuxWrites count auxiliary (residual) accesses.
	AuxReads, AuxWrites int
	// Flops estimates arithmetic operations, charged as ALU cycles.
	Flops int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.DataWords += other.DataWords
	s.ModelReads += other.ModelReads
	s.ModelWrites += other.ModelWrites
	s.AuxReads += other.AuxReads
	s.AuxWrites += other.AuxWrites
	s.Flops += other.Flops
}

// Replica is one model replica (Section 3.3): the mutable model vector
// plus any per-row auxiliary state the column-wise method maintains
// (SCD residuals/margins). The engine creates one Replica per locality
// group and averages X across replicas; Aux is recomputed from X after
// averaging via Spec.RefreshAux.
type Replica struct {
	// X is the model vector (dimension = dataset columns).
	X []float64
	// Aux is per-row auxiliary state, or nil if the spec needs none.
	Aux []float64
}

// Clone returns a deep copy of the replica.
func (r *Replica) Clone() *Replica {
	out := &Replica{X: append([]float64(nil), r.X...)}
	if r.Aux != nil {
		out.Aux = append([]float64(nil), r.Aux...)
	}
	return out
}

// Spec is a model specification: everything the engine needs to run
// one statistical task under any access method.
//
// All step methods mutate the replica in place and return the traffic
// stats of the step. Steps must be cheap and deterministic given the
// replica state; randomness in traversal order is the engine's job.
type Spec interface {
	// Name identifies the model ("svm", "lr", ...).
	Name() string
	// Supports lists the access methods this spec implements, most
	// statistically natural first.
	Supports() []Access
	// DenseUpdate reports whether the row-wise gradient writes all d
	// model components (dense update) rather than only the nonzero
	// support of the example (sparse update); see Section 3.2.
	DenseUpdate() bool
	// NewReplica allocates and initialises a replica for the dataset.
	NewReplica(ds *data.Dataset) *Replica
	// RowStep applies f_row for row i with the given step size.
	RowStep(ds *data.Dataset, i int, r *Replica, step float64) Stats
	// ColStep applies f_col/f_ctr for column j with the given step size.
	ColStep(ds *data.Dataset, j int, r *Replica, step float64) Stats
	// RefreshAux recomputes auxiliary state from the model, called
	// after replicas are averaged. Specs without Aux do nothing.
	RefreshAux(ds *data.Dataset, r *Replica)
	// Combine merges replica model vectors into dst at a
	// synchronization point (Bismarck-style model averaging for the
	// convex models; summation for parallel sum). All slices share
	// dst's length; replicas is non-empty.
	Combine(replicas [][]float64, dst []float64)
	// Predict maps the raw linear score ⟨x, a⟩ of one example to the
	// model's prediction: the ±1 class label for classifiers (SVM,
	// LR), the regressed/score value itself for the others. Batched
	// serving goes through PredictBatch, which computes the scores.
	Predict(score float64) float64
	// Aggregate reports whether the model is a one-pass aggregate
	// (parallel sum) rather than an iterative estimator: replicas are
	// zeroed at the start of each epoch, combined once at the end, and
	// never synchronized mid-epoch, because Combine is not idempotent.
	Aggregate() bool
	// Loss evaluates the objective at model x over the full dataset.
	Loss(ds *data.Dataset, x []float64) float64
}

// ByName constructs a model specification from its short name.
func ByName(name string) (Spec, error) {
	switch name {
	case "svm":
		return NewSVM(), nil
	case "lr":
		return NewLR(), nil
	case "ls":
		return NewLS(), nil
	case "lp":
		return NewLP(), nil
	case "qp":
		return NewQP(), nil
	case "sum":
		return NewParallelSum(), nil
	default:
		return nil, fmt.Errorf("model: unknown model %q (want svm, lr, ls, lp, qp, or sum)", name)
	}
}

// supportsAccess reports whether spec lists a among its access methods.
func supportsAccess(spec Spec, a Access) bool {
	for _, s := range spec.Supports() {
		if s == a {
			return true
		}
	}
	return false
}

// Validate checks that a spec/dataset pairing makes sense and that the
// requested access method is implemented.
func Validate(spec Spec, ds *data.Dataset, a Access) error {
	if !supportsAccess(spec, a) {
		return fmt.Errorf("model: %s does not support %s access", spec.Name(), a)
	}
	return ds.Validate()
}
