package model

import (
	"math"

	"dimmwitted/internal/data"
)

// ParallelSum is the trivial "statistical model" behind the paper's
// throughput microbenchmark (Figure 13): every worker folds the rows
// it sees into a single accumulator. Under PerMachine replication all
// workers contend on one accumulator (the Hogwild! layout); under
// PerNode each socket keeps its own (the DimmWitted layout that incurs
// 8x fewer LLC misses in the paper).
//
// The replica's one-component model holds the partial sum. Loss is the
// relative distance of the (scaled) accumulator from the true total,
// so convergence machinery still functions, though the benchmark only
// reports throughput.
type ParallelSum struct{}

// NewParallelSum returns a parallel-sum specification.
func NewParallelSum() *ParallelSum { return &ParallelSum{} }

// Name implements Spec.
func (*ParallelSum) Name() string { return "sum" }

// Supports implements Spec.
func (*ParallelSum) Supports() []Access { return []Access{RowWise, ColWise} }

// DenseUpdate implements Spec: the update writes the single
// accumulator component every row — maximally contended.
func (*ParallelSum) DenseUpdate() bool { return true }

// NewReplica implements Spec: a one-component accumulator.
func (*ParallelSum) NewReplica(*data.Dataset) *Replica {
	return &Replica{X: make([]float64, 1)}
}

// RowStep implements Spec: fold row i into the accumulator.
func (*ParallelSum) RowStep(ds *data.Dataset, i int, r *Replica, _ float64) Stats {
	_, vals := ds.A.Row(i)
	var s float64
	for _, v := range vals {
		s += v
	}
	r.X[0] += s
	return Stats{DataWords: len(vals), ModelReads: 1, ModelWrites: 1, Flops: len(vals) + 1}
}

// ColStep implements Spec: fold column j into the accumulator.
func (*ParallelSum) ColStep(ds *data.Dataset, j int, r *Replica, _ float64) Stats {
	_, vals := ds.CSC().Col(j)
	var s float64
	for _, v := range vals {
		s += v
	}
	r.X[0] += s
	return Stats{DataWords: len(vals), ModelReads: 1, ModelWrites: 1, Flops: len(vals) + 1}
}

// RefreshAux implements Spec: no auxiliary state.
func (*ParallelSum) RefreshAux(*data.Dataset, *Replica) {}

// Loss implements Spec: relative error of the accumulator against the
// true total of the matrix.
func (*ParallelSum) Loss(ds *data.Dataset, x []float64) float64 {
	var truth float64
	for _, v := range ds.A.Vals {
		truth += v
	}
	if truth == 0 {
		return math.Abs(x[0])
	}
	return math.Abs(x[0]-truth) / math.Abs(truth)
}

// Combine implements Spec: partial sums are added, not averaged —
// each replica holds the total of the rows its workers folded.
func (*ParallelSum) Combine(replicas [][]float64, dst []float64) {
	for i := range dst {
		var s float64
		for _, r := range replicas {
			s += r[i]
		}
		dst[i] = s
	}
}

// Predict implements Spec: the weighted total is the score itself.
func (*ParallelSum) Predict(score float64) float64 { return score }

// Aggregate implements Spec: parallel sum is a one-pass aggregate.
func (*ParallelSum) Aggregate() bool { return true }
