package model

import (
	"math"

	"dimmwitted/internal/data"
	"dimmwitted/internal/vec"
)

// LR is binary logistic regression trained on the logistic loss,
// optionally with L2 regularisation (see SVM.Lambda for the
// support-scaled lazy scheme).
type LR struct {
	// Lambda is the L2 regularisation weight; 0 disables it.
	Lambda float64
}

// NewLR returns an unregularised logistic-regression specification.
func NewLR() *LR { return &LR{} }

// NewLRRegularized returns an LR with L2 weight lambda.
func NewLRRegularized(lambda float64) *LR { return &LR{Lambda: lambda} }

// Name implements Spec.
func (*LR) Name() string { return "lr" }

// Supports implements Spec.
func (*LR) Supports() []Access { return []Access{RowWise, ColToRow} }

// DenseUpdate implements Spec.
func (*LR) DenseUpdate() bool { return false }

// NewReplica implements Spec.
func (*LR) NewReplica(ds *data.Dataset) *Replica {
	return &Replica{X: make([]float64, ds.Cols())}
}

// sigmoid returns 1/(1+e^-t) with clamping against overflow.
func sigmoid(t float64) float64 {
	if t > 35 {
		return 1
	}
	if t < -35 {
		return 0
	}
	return 1 / (1 + math.Exp(-t))
}

// RowStep implements Spec: one SGD step on example i.
//
//	p = σ(y_i ⟨x, a_i⟩);  x += step · (1 − p) · y_i · a_i
func (lr *LR) RowStep(ds *data.Dataset, i int, r *Replica, step float64) Stats {
	idx, vals := ds.A.Row(i)
	y := ds.Labels[i]
	st := Stats{
		DataWords:   len(idx),
		ModelReads:  len(idx),
		ModelWrites: len(idx),
		Flops:       4*len(idx) + 8,
	}
	if lr.Lambda > 0 && len(idx) > 0 {
		shrink := 1 - step*lr.Lambda*float64(ds.Cols())/(float64(len(idx))*float64(ds.Rows()))
		if shrink < 0 {
			shrink = 0
		}
		for _, j := range idx {
			r.X[j] *= shrink
		}
		st.ModelWrites += len(idx)
		st.Flops += len(idx)
	}
	p := sigmoid(y * vec.SparseDot(vals, idx, r.X))
	vec.SparseAXPY(step*(1-p)*y, vals, idx, r.X)
	return st
}

// ColStep implements Spec: coordinate gradient step on x_j via
// column-to-row access, recomputing probabilities from the raw rows.
func (*LR) ColStep(ds *data.Dataset, j int, r *Replica, step float64) Stats {
	rows, colVals := ds.CSC().Col(j)
	var grad float64
	st := Stats{ModelWrites: 1}
	for k, i := range rows {
		idx, vals := ds.A.Row(int(i))
		y := ds.Labels[i]
		p := sigmoid(y * vec.SparseDot(vals, idx, r.X))
		grad -= (1 - p) * y * colVals[k]
		st.DataWords += len(idx)
		st.ModelReads += len(idx)
		st.Flops += 2*len(idx) + 10
	}
	n := float64(len(rows))
	if n > 0 {
		r.X[j] -= step * grad / n
	}
	return st
}

// RefreshAux implements Spec: LR keeps no auxiliary state.
func (*LR) RefreshAux(*data.Dataset, *Replica) {}

// Loss implements Spec: mean logistic loss, plus (λ/2N)‖x‖² when
// regularised.
func (lr *LR) Loss(ds *data.Dataset, x []float64) float64 {
	var total float64
	for i := 0; i < ds.Rows(); i++ {
		idx, vals := ds.A.Row(i)
		m := ds.Labels[i] * vec.SparseDot(vals, idx, x)
		// log(1 + e^{-m}) computed stably.
		switch {
		case m > 35:
			// loss ~ e^{-m} ~ 0
		case m < -35:
			total += -m
		default:
			total += math.Log1p(math.Exp(-m))
		}
	}
	loss := total / float64(ds.Rows())
	if lr.Lambda > 0 {
		n := vec.Norm2(x)
		loss += 0.5 * lr.Lambda * n * n / float64(ds.Rows())
	}
	return loss
}

// Combine implements Spec: Bismarck-style model averaging.
func (*LR) Combine(replicas [][]float64, dst []float64) {
	vec.Average(dst, replicas...)
}

// Predict implements Spec: the class whose posterior exceeds 1/2
// (sigmoid(score) >= 1/2 exactly when score >= 0).
func (*LR) Predict(score float64) float64 {
	if score >= 0 {
		return 1
	}
	return -1
}

// Aggregate implements Spec: iterative estimator, not an aggregate.
func (*LR) Aggregate() bool { return false }
