package model

import (
	"dimmwitted/internal/data"
	"dimmwitted/internal/vec"
)

// LS is least-squares regression on the squared loss.
//
// Row-wise it is SGD; column-wise it is exact coordinate descent over
// a maintained residual vector r = Ax − y, the classical SCD layout
// (GraphLab/Shogun/Thetis in Figure 2). The residual is the replica's
// auxiliary state and is rebuilt by RefreshAux after model averaging.
type LS struct{}

// NewLS returns a least-squares specification.
func NewLS() *LS { return &LS{} }

// Name implements Spec.
func (*LS) Name() string { return "ls" }

// Supports implements Spec.
func (*LS) Supports() []Access { return []Access{RowWise, ColWise} }

// DenseUpdate implements Spec.
func (*LS) DenseUpdate() bool { return false }

// NewReplica implements Spec: residuals start at −y since x = 0.
func (*LS) NewReplica(ds *data.Dataset) *Replica {
	r := &Replica{X: make([]float64, ds.Cols()), Aux: make([]float64, ds.Rows())}
	for i := range r.Aux {
		r.Aux[i] = -ds.Labels[i]
	}
	return r
}

// RowStep implements Spec: one SGD step on example i.
//
//	e = ⟨x, a_i⟩ − y_i;  x −= step · e · a_i
func (*LS) RowStep(ds *data.Dataset, i int, r *Replica, step float64) Stats {
	idx, vals := ds.A.Row(i)
	e := vec.SparseDot(vals, idx, r.X) - ds.Labels[i]
	vec.SparseAXPY(-step*e, vals, idx, r.X)
	return Stats{
		DataWords:   len(idx),
		ModelReads:  len(idx),
		ModelWrites: len(idx),
		Flops:       4 * len(idx),
	}
}

// ColStep implements Spec: exact coordinate minimisation of component
// j over the residual cache.
//
//	δ = −⟨A_:j, r⟩ / ⟨A_:j, A_:j⟩;  x_j += δ;  r += δ·A_:j
func (*LS) ColStep(ds *data.Dataset, j int, r *Replica, step float64) Stats {
	rows, vals := ds.CSC().Col(j)
	var dot, norm float64
	for k, i := range rows {
		dot += vals[k] * r.Aux[i]
		norm += vals[k] * vals[k]
	}
	st := Stats{
		DataWords:   len(rows),
		AuxReads:    len(rows),
		ModelReads:  1,
		ModelWrites: 1,
		AuxWrites:   len(rows),
		Flops:       6 * len(rows),
	}
	if norm == 0 {
		return st
	}
	// Exact minimisation scaled by step (step = 1 recovers exact CD;
	// the engine may damp it for stability under stale replicas).
	delta := -step * dot / norm
	r.X[j] += delta
	for k, i := range rows {
		r.Aux[i] += delta * vals[k]
	}
	return st
}

// RefreshAux implements Spec: rebuild r = Ax − y from the model.
func (*LS) RefreshAux(ds *data.Dataset, r *Replica) {
	for i := 0; i < ds.Rows(); i++ {
		idx, vals := ds.A.Row(i)
		r.Aux[i] = vec.SparseDot(vals, idx, r.X) - ds.Labels[i]
	}
}

// Loss implements Spec: mean squared error (half).
func (*LS) Loss(ds *data.Dataset, x []float64) float64 {
	var total float64
	for i := 0; i < ds.Rows(); i++ {
		idx, vals := ds.A.Row(i)
		e := vec.SparseDot(vals, idx, x) - ds.Labels[i]
		total += 0.5 * e * e
	}
	return total / float64(ds.Rows())
}

// Combine implements Spec: Bismarck-style model averaging.
func (*LS) Combine(replicas [][]float64, dst []float64) {
	vec.Average(dst, replicas...)
}

// Predict implements Spec: the regressed value is the score itself.
func (*LS) Predict(score float64) float64 { return score }

// Aggregate implements Spec: iterative estimator, not an aggregate.
func (*LS) Aggregate() bool { return false }
