package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dimmwitted/internal/data"
	"dimmwitted/internal/vec"
)

// trainRows runs sequential row-wise epochs and returns the replica.
func trainRows(spec Spec, ds *data.Dataset, epochs int, step, decay float64) *Replica {
	r := spec.NewReplica(ds)
	rng := rand.New(rand.NewSource(7))
	for e := 0; e < epochs; e++ {
		for _, i := range rng.Perm(ds.Rows()) {
			spec.RowStep(ds, i, r, step)
		}
		step *= decay
	}
	return r
}

// trainCols runs sequential column-wise epochs and returns the replica.
func trainCols(spec Spec, ds *data.Dataset, epochs int, step, decay float64) *Replica {
	r := spec.NewReplica(ds)
	rng := rand.New(rand.NewSource(7))
	for e := 0; e < epochs; e++ {
		for _, j := range rng.Perm(ds.Cols()) {
			spec.ColStep(ds, j, r, step)
		}
		step *= decay
	}
	return r
}

func TestByName(t *testing.T) {
	for _, name := range []string{"svm", "lr", "ls", "lp", "qp", "sum"} {
		spec, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if spec.Name() != name {
			t.Errorf("ByName(%s).Name() = %s", name, spec.Name())
		}
		if len(spec.Supports()) == 0 {
			t.Errorf("%s supports no access methods", name)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName(bogus) succeeded")
	}
}

func TestAccessString(t *testing.T) {
	if RowWise.String() != "row-wise" || ColWise.String() != "column-wise" || ColToRow.String() != "column-to-row" {
		t.Error("Access.String wrong")
	}
	if Access(9).String() == "" {
		t.Error("unknown access should stringify")
	}
}

func TestValidate(t *testing.T) {
	ds := data.Reuters()
	if err := Validate(NewSVM(), ds, RowWise); err != nil {
		t.Errorf("SVM row-wise on reuters: %v", err)
	}
	if err := Validate(NewSVM(), ds, ColWise); err == nil {
		t.Error("SVM claims pure column-wise support")
	}
}

func TestStatsAdd(t *testing.T) {
	var s Stats
	s.Add(Stats{DataWords: 1, ModelReads: 2, ModelWrites: 3, AuxReads: 4, AuxWrites: 5, Flops: 6})
	s.Add(Stats{DataWords: 1})
	if s.DataWords != 2 || s.ModelWrites != 3 || s.Flops != 6 {
		t.Errorf("Stats.Add wrong: %+v", s)
	}
}

func TestReplicaClone(t *testing.T) {
	r := &Replica{X: []float64{1, 2}, Aux: []float64{3}}
	c := r.Clone()
	c.X[0] = 9
	c.Aux[0] = 9
	if r.X[0] != 1 || r.Aux[0] != 3 {
		t.Error("Clone aliases original")
	}
	noAux := (&Replica{X: []float64{1}}).Clone()
	if noAux.Aux != nil {
		t.Error("Clone invented Aux")
	}
}

func TestSVMRowTrainingConverges(t *testing.T) {
	ds := data.Reuters()
	spec := NewSVM()
	init := spec.Loss(ds, spec.NewReplica(ds).X)
	r := trainRows(spec, ds, 10, 0.1, 0.9)
	final := spec.Loss(ds, r.X)
	if final >= init/2 {
		t.Errorf("SVM row training: loss %v -> %v, want at least 2x reduction", init, final)
	}
}

func TestSVMColTrainingConverges(t *testing.T) {
	ds := data.Reuters()
	spec := NewSVM()
	init := spec.Loss(ds, spec.NewReplica(ds).X)
	r := trainCols(spec, ds, 10, 0.5, 0.9)
	final := spec.Loss(ds, r.X)
	if final >= init/2 {
		t.Errorf("SVM col training: loss %v -> %v", init, final)
	}
}

func TestSVMAccuracyOnSeparableData(t *testing.T) {
	ds := data.Reuters()
	r := trainRows(NewSVM(), ds, 15, 0.1, 0.9)
	correct := 0
	for i := 0; i < ds.Rows(); i++ {
		idx, vals := ds.A.Row(i)
		var m float64
		for k, j := range idx {
			m += vals[k] * r.X[j]
		}
		if (m >= 0 && ds.Labels[i] > 0) || (m < 0 && ds.Labels[i] < 0) {
			correct++
		}
	}
	acc := float64(correct) / float64(ds.Rows())
	if acc < 0.85 {
		t.Errorf("SVM accuracy = %v, want >= 0.85", acc)
	}
}

func TestSVMStepStats(t *testing.T) {
	ds := data.Reuters()
	spec := NewSVM()
	r := spec.NewReplica(ds)
	st := spec.RowStep(ds, 0, r, 0.1)
	nnz := ds.A.RowNNZ(0)
	if st.DataWords != nnz || st.ModelReads != nnz {
		t.Errorf("row stats %+v, want %d data/model reads", st, nnz)
	}
	// At a zero model the margin is 0 < 1, so the step writes.
	if st.ModelWrites != nnz {
		t.Errorf("expected sparse write of %d words, got %d", nnz, st.ModelWrites)
	}
	cst := spec.ColStep(ds, 0, r, 0.1)
	if cst.ModelWrites != 1 {
		t.Errorf("col step writes %d model words, want 1", cst.ModelWrites)
	}
}

func TestLRTrainingConverges(t *testing.T) {
	ds := data.Reuters()
	spec := NewLR()
	init := spec.Loss(ds, spec.NewReplica(ds).X)
	if math.Abs(init-math.Log(2)) > 1e-9 {
		t.Errorf("LR loss at zero = %v, want ln 2", init)
	}
	r := trainRows(spec, ds, 10, 0.2, 0.9)
	if final := spec.Loss(ds, r.X); final >= init/2 {
		t.Errorf("LR row training: loss %v -> %v", init, final)
	}
	rc := trainCols(spec, ds, 10, 1.0, 0.9)
	if final := spec.Loss(ds, rc.X); final >= init/2 {
		t.Errorf("LR col training: loss %v -> %v", init, final)
	}
}

func TestSigmoidStable(t *testing.T) {
	if sigmoid(1000) != 1 || sigmoid(-1000) != 0 {
		t.Error("sigmoid not clamped")
	}
	if math.Abs(sigmoid(0)-0.5) > 1e-12 {
		t.Errorf("sigmoid(0) = %v", sigmoid(0))
	}
}

func TestLSRowTrainingConverges(t *testing.T) {
	ds := data.MusicRegression()
	spec := NewLS()
	init := spec.Loss(ds, spec.NewReplica(ds).X)
	r := trainRows(spec, ds, 10, 0.005, 0.95)
	if final := spec.Loss(ds, r.X); final >= init/10 {
		t.Errorf("LS row training: loss %v -> %v, want 10x reduction", init, final)
	}
}

func TestLSColExactCD(t *testing.T) {
	ds := data.MusicRegression()
	spec := NewLS()
	init := spec.Loss(ds, spec.NewReplica(ds).X)
	r := trainCols(spec, ds, 15, 1.0, 1.0)
	final := spec.Loss(ds, r.X)
	if final >= init/20 {
		t.Errorf("LS exact CD: loss %v -> %v, want 20x reduction", init, final)
	}
}

func TestLSAuxInvariant(t *testing.T) {
	// After any sequence of column steps, Aux must equal Ax − y.
	ds := data.MusicRegression()
	spec := NewLS()
	r := spec.NewReplica(ds)
	rng := rand.New(rand.NewSource(3))
	for s := 0; s < 200; s++ {
		spec.ColStep(ds, rng.Intn(ds.Cols()), r, 1.0)
	}
	want := spec.NewReplica(ds)
	copy(want.X, r.X)
	spec.RefreshAux(ds, want)
	for i := range want.Aux {
		if math.Abs(want.Aux[i]-r.Aux[i]) > 1e-6 {
			t.Fatalf("aux[%d] = %v, want %v", i, r.Aux[i], want.Aux[i])
		}
	}
}

func TestLPColTrainingConverges(t *testing.T) {
	ds := data.AmazonLP()
	spec := NewLP()
	rep := spec.NewReplica(ds)
	init := spec.Loss(ds, rep.X)
	r := trainCols(spec, ds, 20, 1.0, 1.0)
	final := spec.Loss(ds, r.X)
	if final >= init*0.8 {
		t.Errorf("LP CD: loss %v -> %v", init, final)
	}
	// Cover must stay in the box and be near-feasible.
	for j, x := range r.X {
		if x < -1e-9 || x > 1+1e-9 {
			t.Fatalf("x[%d] = %v outside [0,1]", j, x)
		}
	}
	var worst float64
	for i := 0; i < ds.Rows(); i++ {
		idx, _ := ds.A.Row(i)
		if v := 1 - r.X[idx[0]] - r.X[idx[1]]; v > worst {
			worst = v
		}
	}
	if worst > 0.2 {
		t.Errorf("worst constraint violation = %v", worst)
	}
}

func TestLPRowTrainingReducesLoss(t *testing.T) {
	ds := data.AmazonLP()
	spec := NewLP()
	init := spec.Loss(ds, spec.NewReplica(ds).X)
	r := trainRows(spec, ds, 20, 0.05, 0.95)
	final := spec.Loss(ds, r.X)
	if final >= init {
		t.Errorf("LP SGD: loss %v -> %v", init, final)
	}
	for j, x := range r.X {
		if x < 0 || x > 1 {
			t.Fatalf("x[%d] = %v outside [0,1]", j, x)
		}
	}
}

func TestLPAuxInvariant(t *testing.T) {
	ds := data.AmazonLP()
	spec := NewLP()
	r := spec.NewReplica(ds)
	rng := rand.New(rand.NewSource(5))
	for s := 0; s < 500; s++ {
		spec.ColStep(ds, rng.Intn(ds.Cols()), r, 1.0)
	}
	check := &Replica{X: append([]float64(nil), r.X...), Aux: make([]float64, ds.Rows())}
	spec.RefreshAux(ds, check)
	for i := range check.Aux {
		if math.Abs(check.Aux[i]-r.Aux[i]) > 1e-6 {
			t.Fatalf("violation cache drifted at edge %d: %v vs %v", i, r.Aux[i], check.Aux[i])
		}
	}
}

func TestLPColBeatsRowInEpochs(t *testing.T) {
	// The paper's headline LP observation: coordinate descent reaches
	// low loss in far fewer epochs than row-wise SGD.
	ds := data.AmazonLP()
	spec := NewLP()
	colLoss := spec.Loss(ds, trainCols(spec, ds, 5, 1.0, 1.0).X)
	rowLoss := spec.Loss(ds, trainRows(spec, ds, 5, 0.05, 0.95).X)
	if colLoss >= rowLoss {
		t.Errorf("after 5 epochs: col loss %v not better than row loss %v", colLoss, rowLoss)
	}
}

func TestQPTrainingConverges(t *testing.T) {
	// The QP optimum is far from zero (the ±1 anchors conflict through
	// the smoothness term), so convergence is measured as closing the
	// gap to a near-optimal reference obtained by running CD long.
	ds := data.AmazonQP()
	spec := NewQP()
	init := spec.Loss(ds, spec.NewReplica(ds).X)
	ref := spec.Loss(ds, trainCols(spec, ds, 80, 1.0, 1.0).X)
	if ref >= init {
		t.Fatalf("reference run did not improve: %v -> %v", init, ref)
	}
	got := spec.Loss(ds, trainCols(spec, ds, 10, 1.0, 1.0).X)
	if gap := (got - ref) / (init - ref); gap > 0.25 {
		t.Errorf("QP CD closed only %v of the gap after 10 epochs (loss %v, ref %v)", 1-gap, got, ref)
	}
	rr := trainRows(spec, ds, 10, 0.1, 0.95)
	if final := spec.Loss(ds, rr.X); final >= init {
		t.Errorf("QP SGD: loss %v -> %v", init, final)
	}
}

func TestQPColStepIsExactFixedPoint(t *testing.T) {
	// Applying the same coordinate update twice in a row must not move
	// the coordinate the second time (exact minimisation).
	ds := data.AmazonQP()
	spec := NewQP()
	r := trainCols(spec, ds, 2, 1.0, 1.0)
	before := r.X[10]
	spec.ColStep(ds, 10, r, 1.0)
	once := r.X[10]
	spec.ColStep(ds, 10, r, 1.0)
	if math.Abs(r.X[10]-once) > 1e-12 {
		t.Errorf("second identical ColStep moved x: %v -> %v -> %v", before, once, r.X[10])
	}
}

func TestParallelSumExact(t *testing.T) {
	ds := data.ParallelSum(100, 8)
	spec := NewParallelSum()
	r := spec.NewReplica(ds)
	var st Stats
	for i := 0; i < ds.Rows(); i++ {
		st.Add(spec.RowStep(ds, i, r, 0))
	}
	if r.X[0] != 800 {
		t.Errorf("sum = %v, want 800", r.X[0])
	}
	if spec.Loss(ds, r.X) != 0 {
		t.Errorf("loss = %v, want 0", spec.Loss(ds, r.X))
	}
	if st.DataWords != 800 {
		t.Errorf("data words = %d, want 800", st.DataWords)
	}
	// Column-wise sum agrees.
	rc := spec.NewReplica(ds)
	for j := 0; j < ds.Cols(); j++ {
		spec.ColStep(ds, j, rc, 0)
	}
	if rc.X[0] != 800 {
		t.Errorf("column sum = %v, want 800", rc.X[0])
	}
}

// Property: SVM row steps never move model components outside the
// example's support.
func TestSVMSparseUpdateProperty(t *testing.T) {
	ds := data.Reuters()
	spec := NewSVM()
	f := func(rowSel uint16) bool {
		r := spec.NewReplica(ds)
		i := int(rowSel) % ds.Rows()
		spec.RowStep(ds, i, r, 0.5)
		idx, _ := ds.A.Row(i)
		support := map[int32]bool{}
		for _, j := range idx {
			support[j] = true
		}
		for j, v := range r.X {
			if v != 0 && !support[int32(j)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: one exact LS coordinate step never increases the loss.
func TestLSColStepMonotoneProperty(t *testing.T) {
	ds := data.MusicRegression()
	spec := NewLS()
	f := func(colSel uint16, steps uint8) bool {
		r := spec.NewReplica(ds)
		rng := rand.New(rand.NewSource(int64(steps)))
		for s := 0; s < int(steps%16); s++ {
			spec.ColStep(ds, rng.Intn(ds.Cols()), r, 1.0)
		}
		before := spec.Loss(ds, r.X)
		spec.ColStep(ds, int(colSel)%ds.Cols(), r, 1.0)
		after := spec.Loss(ds, r.X)
		return after <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestSVMRegularization(t *testing.T) {
	ds := data.Reuters()
	plain := NewSVM()
	reg := NewSVMRegularized(5.0)
	rPlain := trainRows(plain, ds, 10, 0.1, 0.9)
	rReg := trainRows(reg, ds, 10, 0.1, 0.9)
	normPlain := vec.Norm2(rPlain.X)
	normReg := vec.Norm2(rReg.X)
	if normReg >= normPlain {
		t.Errorf("regularised norm %v not below unregularised %v", normReg, normPlain)
	}
	// The regularised loss includes the penalty term.
	x := rReg.X
	if reg.Loss(ds, x) <= plain.Loss(ds, x) {
		t.Error("regularised loss missing the penalty term")
	}
	// Regularised training still separates the data.
	if hinge := plain.Loss(ds, x); hinge > 0.5 {
		t.Errorf("regularised model underfits badly: hinge %v", hinge)
	}
}

func TestSVMRegularizedStepCountsWrites(t *testing.T) {
	ds := data.Reuters()
	reg := NewSVMRegularized(1.0)
	r := reg.NewReplica(ds)
	st := reg.RowStep(ds, 0, r, 0.1)
	nnz := ds.A.RowNNZ(0)
	if st.ModelWrites != 2*nnz {
		t.Errorf("regularised step writes %d, want %d (shrink + gradient)", st.ModelWrites, 2*nnz)
	}
}

func TestLRRegularization(t *testing.T) {
	ds := data.Reuters()
	plain := NewLR()
	reg := NewLRRegularized(5.0)
	rPlain := trainRows(plain, ds, 10, 0.2, 0.9)
	rReg := trainRows(reg, ds, 10, 0.2, 0.9)
	if vec.Norm2(rReg.X) >= vec.Norm2(rPlain.X) {
		t.Errorf("regularised LR norm %v not below %v", vec.Norm2(rReg.X), vec.Norm2(rPlain.X))
	}
	if reg.Loss(ds, rReg.X) <= plain.Loss(ds, rReg.X) {
		t.Error("regularised LR loss missing the penalty")
	}
}
