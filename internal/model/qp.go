package model

import (
	"dimmwitted/internal/data"
	"dimmwitted/internal/vec"
)

// QP solves the graph-smoothing quadratic program behind the paper's
// QP network-analysis workload:
//
//	minimise  ½ Σ_{(u,v)∈E} (x_u − x_v)²  +  (λ/2) Σ_{v anchored} (x_v − a_v)²
//
// where anchors a come from the dataset. Row-wise access is SGD over
// edges; column-wise access is exact coordinate minimisation that
// reads the neighbours of a vertex through column-to-row access.
type QP struct {
	// Lambda weighs the anchor (supervision) term.
	Lambda float64
}

// NewQP returns a QP specification with the default anchor weight.
func NewQP() *QP { return &QP{Lambda: 1} }

// Name implements Spec.
func (*QP) Name() string { return "qp" }

// Supports implements Spec: the coordinate update must read neighbour
// values from the rows of the incident edges, so it is column-to-row.
func (*QP) Supports() []Access { return []Access{ColToRow, RowWise} }

// DenseUpdate implements Spec.
func (*QP) DenseUpdate() bool { return false }

// NewReplica implements Spec: start at zero.
func (*QP) NewReplica(ds *data.Dataset) *Replica {
	return &Replica{X: make([]float64, ds.Cols())}
}

// RowStep implements Spec: SGD on edge i. The anchor term of each
// endpoint is apportioned by its degree so one epoch applies it once.
func (qp *QP) RowStep(ds *data.Dataset, i int, r *Replica, step float64) Stats {
	idx, _ := ds.A.Row(i)
	csc := ds.CSC()
	u, v := int(idx[0]), int(idx[1])
	d := r.X[u] - r.X[v]
	gu, gv := d, -d
	if a := ds.Anchors[u]; a != 0 {
		gu += qp.Lambda / float64(csc.ColNNZ(u)) * (r.X[u] - a)
	}
	if a := ds.Anchors[v]; a != 0 {
		gv += qp.Lambda / float64(csc.ColNNZ(v)) * (r.X[v] - a)
	}
	r.X[u] -= step * gu
	r.X[v] -= step * gv
	return Stats{DataWords: 2, ModelReads: 2, ModelWrites: 2, Flops: 12}
}

// ColStep implements Spec: exact coordinate minimisation of vertex j,
//
//	x_j = (Σ_{nbr} x_nbr + λ·a_j·[anchored]) / (deg_j + λ·[anchored])
//
// reading each incident edge's full row (column-to-row access) to find
// the neighbour endpoint. The step argument damps the move.
func (qp *QP) ColStep(ds *data.Dataset, j int, r *Replica, step float64) Stats {
	rows, _ := ds.CSC().Col(j)
	st := Stats{ModelWrites: 1, Flops: 4*len(rows) + 6}
	var sum float64
	for _, e := range rows {
		idx, _ := ds.A.Row(int(e))
		st.DataWords += len(idx)
		nbr := int(idx[0])
		if nbr == j {
			nbr = int(idx[1])
		}
		sum += r.X[nbr]
		st.ModelReads++
	}
	denom := float64(len(rows))
	if a := ds.Anchors[j]; a != 0 {
		sum += qp.Lambda * a
		denom += qp.Lambda
	}
	if denom == 0 {
		return st
	}
	target := sum / denom
	r.X[j] += step * (target - r.X[j])
	return st
}

// RefreshAux implements Spec: QP keeps no auxiliary state.
func (*QP) RefreshAux(*data.Dataset, *Replica) {}

// Loss implements Spec: the smoothing objective, normalised per vertex.
func (qp *QP) Loss(ds *data.Dataset, x []float64) float64 {
	var total float64
	for i := 0; i < ds.Rows(); i++ {
		idx, _ := ds.A.Row(i)
		d := x[idx[0]] - x[idx[1]]
		total += 0.5 * d * d
	}
	for v, a := range ds.Anchors {
		if a != 0 {
			e := x[v] - a
			total += 0.5 * qp.Lambda * e * e
		}
	}
	return total / float64(ds.Cols())
}

// Combine implements Spec: Bismarck-style model averaging.
func (*QP) Combine(replicas [][]float64, dst []float64) {
	vec.Average(dst, replicas...)
}

// Predict implements Spec: the smoothed value interpolated from the
// example's (weighted) neighbourhood.
func (*QP) Predict(score float64) float64 { return score }

// Aggregate implements Spec: iterative estimator, not an aggregate.
func (*QP) Aggregate() bool { return false }
