package model

import (
	"fmt"

	"dimmwitted/internal/data"
)

// Example is one prediction input: a sparse feature vector in the same
// coordinate space as the model (indices < dimension). Dense inputs are
// expressed with Idx = [0, 1, ..., d-1].
type Example struct {
	// Idx holds the nonzero coordinates, strictly increasing.
	Idx []int32
	// Vals holds the value at each coordinate in Idx.
	Vals []float64
}

// Validate checks the example against a model dimension.
func (ex Example) Validate(dim int) error {
	if len(ex.Idx) != len(ex.Vals) {
		return fmt.Errorf("model: example has %d indices but %d values", len(ex.Idx), len(ex.Vals))
	}
	for _, j := range ex.Idx {
		if j < 0 || int(j) >= dim {
			return fmt.Errorf("model: example index %d outside model dimension %d", j, dim)
		}
	}
	return nil
}

// DenseVector materialises the example as a dense vector of the given
// dimension (workloads whose scoring is not a sparse dot product, like
// a network forward pass, need the full input).
func (ex Example) DenseVector(dim int) ([]float64, error) {
	if err := ex.Validate(dim); err != nil {
		return nil, err
	}
	out := make([]float64, dim)
	for k, j := range ex.Idx {
		out[j] = ex.Vals[k]
	}
	return out, nil
}

// DenseExample builds an Example from a dense feature vector.
func DenseExample(features []float64) Example {
	ex := Example{Idx: make([]int32, 0, len(features)), Vals: make([]float64, 0, len(features))}
	for j, v := range features {
		if v != 0 {
			ex.Idx = append(ex.Idx, int32(j))
			ex.Vals = append(ex.Vals, v)
		}
	}
	return ex
}

// DatasetExamples converts dataset rows into prediction inputs, the
// train-then-predict round trip tests and demos use. The returned
// examples alias the dataset's storage; treat them as read-only.
func DatasetExamples(ds *data.Dataset, rows []int) []Example {
	out := make([]Example, 0, len(rows))
	for _, i := range rows {
		idx, vals := ds.A.Row(i)
		out = append(out, Example{Idx: idx, Vals: vals})
	}
	return out
}

// PredictBatch scores every example against the model vector x and maps
// each raw score through spec.Predict. It is read-only with respect to
// x and the examples, so many goroutines may serve predictions from one
// shared snapshot concurrently. The bounds check is fused into the dot
// product — one pass over each example's nonzeros, not a validation
// pass followed by a scoring pass — because this is the serving hot
// path's inner loop; the accumulation order matches vec.SparseDot, so
// results are bit-identical to the two-pass form.
func PredictBatch(spec Spec, x []float64, examples []Example) ([]float64, error) {
	dim := len(x)
	out := make([]float64, len(examples))
	for i, ex := range examples {
		if len(ex.Idx) != len(ex.Vals) {
			return nil, fmt.Errorf("example %d: model: example has %d indices but %d values",
				i, len(ex.Idx), len(ex.Vals))
		}
		var s float64
		for k, j := range ex.Idx {
			if j < 0 || int(j) >= dim {
				return nil, fmt.Errorf("example %d: model: example index %d outside model dimension %d", i, j, dim)
			}
			s += ex.Vals[k] * x[j]
		}
		out[i] = spec.Predict(s)
	}
	return out, nil
}

// Accuracy returns the fraction of predictions matching the ±1 labels,
// a convenience for classification round-trip checks.
func Accuracy(predictions, labels []float64) float64 {
	if len(predictions) == 0 || len(predictions) != len(labels) {
		return 0
	}
	hits := 0
	for i, p := range predictions {
		if (p >= 0) == (labels[i] >= 0) {
			hits++
		}
	}
	return float64(hits) / float64(len(predictions))
}
