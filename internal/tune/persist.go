package tune

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"dimmwitted/internal/ckpt"
	"dimmwitted/internal/core"
)

// The store persists as one ckpt entry: the observation table is JSON
// in the entry's metadata, the snapshot slot is a zero value (the ckpt
// container requires one; it costs a few dozen bytes). Riding on
// internal/ckpt buys the atomic generational rename-into-place writes
// and CRC framing the job checkpoints already have, so a torn write
// loses one save, never the table.

// persistID is the fixed entry id the table lives under.
const persistID = "optimizer"

// persistVersion guards the JSON layout.
const persistVersion = 1

// persistDoc is the serialized table.
type persistDoc struct {
	Version int     `json:"version"`
	Entries []Entry `json:"entries"`
}

// ckptPersister implements persister over a ckpt store.
type ckptPersister struct{ st *ckpt.Store }

func (p ckptPersister) save(entries []Entry) error {
	meta, err := json.Marshal(persistDoc{Version: persistVersion, Entries: entries})
	if err != nil {
		return err
	}
	_, _, err = p.st.Save(persistID, core.Snapshot{}, meta)
	return err
}

func (p ckptPersister) load() ([]Entry, error) {
	_, meta, _, err := p.st.Load(persistID)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var doc persistDoc
	if err := json.Unmarshal(meta, &doc); err != nil {
		return nil, fmt.Errorf("tune: corrupt feedback table: %w", err)
	}
	if doc.Version != persistVersion {
		return nil, fmt.Errorf("tune: feedback table version %d (want %d)", doc.Version, persistVersion)
	}
	return doc.Entries, nil
}

// Persist attaches a durable backing: the current disk image is merged
// into the table immediately (count-wise, live streams win), and every
// later Flush saves the merged state. Returns the load error, if any;
// the store stays usable in memory either way.
func (s *Store) Persist(st *ckpt.Store) error {
	p := ckptPersister{st: st}
	s.persistMu.Lock()
	s.persist = p
	s.persistMu.Unlock()
	entries, err := p.load()
	if err != nil {
		return err
	}
	s.merge(entries)
	return nil
}

// Flush saves the table to the durable backing; a no-op without one.
func (s *Store) Flush() error {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if s.persist == nil {
		return nil
	}
	return s.persist.save(s.Entries())
}
