package tune

import (
	"math"
	"sync"
	"testing"

	"dimmwitted/internal/ckpt"
)

func testKey(n string) Key {
	return Key{
		Workload: "glm", Model: "svm", Dataset: n,
		Rows: 1000, Cols: 50, NNZ: 9000,
		Machine: "local2", Executor: "simulated",
		ModelRep: "PerNode", DataRep: "FullReplication",
		Access: "row-wise", Workers: 8, StealChunk: 64,
	}
}

// The crossover contract: the measured cost overrides the prior at
// exactly K observations, not one earlier.
func TestCrossoverAtExactlyK(t *testing.T) {
	const k = 4
	s := NewStore(Options{MinObservations: k})
	key := testKey("reuters")
	for i := 0; i < k-1; i++ {
		s.Record(key, Sample{SecondsPerEpoch: 0.5})
		if sec, ok := s.Measured(key); ok {
			t.Fatalf("Measured ok after %d observations (K=%d), sec=%v", i+1, k, sec)
		}
	}
	s.Record(key, Sample{SecondsPerEpoch: 0.5})
	sec, ok := s.Measured(key)
	if !ok {
		t.Fatalf("Measured not ok after exactly K=%d observations", k)
	}
	if sec != 0.5 {
		t.Fatalf("Measured = %v, want 0.5", sec)
	}
}

func TestEWMABlending(t *testing.T) {
	s := NewStore(Options{Alpha: 0.5, MinObservations: 1})
	key := testKey("reuters")
	s.Record(key, Sample{SecondsPerEpoch: 1.0}) // seeds
	s.Record(key, Sample{SecondsPerEpoch: 3.0}) // 0.5*3 + 0.5*1 = 2
	o, ok := s.Lookup(key)
	if !ok {
		t.Fatal("Lookup missed a recorded key")
	}
	if math.Abs(o.SecondsPerEpoch-2.0) > 1e-12 {
		t.Fatalf("EWMA = %v, want 2.0", o.SecondsPerEpoch)
	}
	if o.Count != 2 {
		t.Fatalf("Count = %d, want 2", o.Count)
	}
}

// The phase split folds in only when a sample carries one, on its own
// count, so traced and untraced epochs can interleave.
func TestSplitRecording(t *testing.T) {
	s := NewStore(Options{MinObservations: 1})
	key := testKey("reuters")
	s.Record(key, Sample{SecondsPerEpoch: 1})
	s.Record(key, Sample{SecondsPerEpoch: 1, StepSeconds: 0.7, FlushSeconds: 0.2, BarrierSeconds: 0.1, HasSplit: true})
	o, _ := s.Lookup(key)
	if o.SplitCount != 1 {
		t.Fatalf("SplitCount = %d, want 1", o.SplitCount)
	}
	if o.StepSeconds != 0.7 || o.FlushSeconds != 0.2 || o.BarrierSeconds != 0.1 {
		t.Fatalf("split EWMAs = %v/%v/%v, want 0.7/0.2/0.1", o.StepSeconds, o.FlushSeconds, o.BarrierSeconds)
	}
}

// Concurrent record/query soak; the race detector is the assertion.
func TestConcurrentRecordQuery(t *testing.T) {
	s := NewStore(Options{})
	keys := []Key{testKey("a"), testKey("b"), testKey("c"), testKey("d")}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := keys[(g+i)%len(keys)]
				switch i % 4 {
				case 0:
					s.Record(k, Sample{SecondsPerEpoch: float64(i%7) + 0.1})
				case 1:
					s.Measured(k)
				case 2:
					s.Lookup(k)
					s.Explore()
				default:
					s.Stats()
					s.Entries()
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Stats().Observations == 0 {
		t.Fatal("no observations recorded by the soak")
	}
}

// Persistence round-trip: a store flushed through internal/ckpt is
// recovered by a fresh store opening the same backing, observation
// counts and EWMAs intact.
func TestPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := ckpt.Open(dir, ckpt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(Options{MinObservations: 2})
	key := testKey("reuters")
	if err := s.Persist(st); err != nil {
		t.Fatalf("Persist on an empty backing: %v", err)
	}
	s.Record(key, Sample{SecondsPerEpoch: 0.25})
	s.Record(key, Sample{SecondsPerEpoch: 0.25})
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	st2, err := ckpt.Open(dir, ckpt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewStore(Options{MinObservations: 2})
	if err := s2.Persist(st2); err != nil {
		t.Fatalf("Persist (reload): %v", err)
	}
	o, ok := s2.Lookup(key)
	if !ok {
		t.Fatal("restored store lost the recorded key")
	}
	if o.Count != 2 || o.SecondsPerEpoch != 0.25 {
		t.Fatalf("restored observation = %+v, want Count 2, SecondsPerEpoch 0.25", o)
	}
	if sec, ok := s2.Measured(key); !ok || sec != 0.25 {
		t.Fatalf("restored Measured = %v, %v; want 0.25, true", sec, ok)
	}
}

// A reload must not clobber a live stream that has seen more epochs
// than the disk image.
func TestMergePrefersMoreObserved(t *testing.T) {
	dir := t.TempDir()
	st, err := ckpt.Open(dir, ckpt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stale := NewStore(Options{})
	key := testKey("reuters")
	stale.Record(key, Sample{SecondsPerEpoch: 9})
	if err := stale.Persist(st); err != nil {
		t.Fatal(err)
	}
	if err := stale.Flush(); err != nil {
		t.Fatal(err)
	}

	live := NewStore(Options{})
	for i := 0; i < 5; i++ {
		live.Record(key, Sample{SecondsPerEpoch: 1})
	}
	if err := live.Persist(st); err != nil {
		t.Fatal(err)
	}
	o, _ := live.Lookup(key)
	if o.Count != 5 || o.SecondsPerEpoch != 1 {
		t.Fatalf("merge overwrote the live stream: %+v", o)
	}
}

func TestExploreEpsilon(t *testing.T) {
	never := NewStore(Options{Epsilon: -1})
	for i := 0; i < 100; i++ {
		if never.Explore() {
			t.Fatal("Explore fired with exploration disabled")
		}
	}
	always := NewStore(Options{Epsilon: 1})
	if !always.Explore() {
		t.Fatal("Explore never fired with epsilon 1")
	}
	if always.Stats().Explorations != 1 {
		t.Fatalf("Explorations = %d, want 1", always.Stats().Explorations)
	}
}
