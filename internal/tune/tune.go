// Package tune closes the loop from execution back into planning: a
// concurrent feedback store maps (workload, dataset fingerprint, plan
// axes) keys to exponentially weighted moving averages of observed
// seconds-per-epoch. The static cost model (internal/core's Figure 6
// word costs) remains the optimizer's prior; once a key has at least
// MinObservations recorded epochs, the measured cost overrides the
// prior through the core.CostModel seam, and an epsilon-exploration
// draw occasionally schedules the runner-up plan so the store can
// never lock in a stale winner. The table persists through an
// internal/ckpt store, so learned costs survive restarts.
package tune

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Key identifies one plan-cost observation stream. It carries the
// workload identity, the dataset-stats fingerprint (shape aggregates
// plus the registry name that pins the nonzero distribution — the same
// reasoning as serve.PlanKey), and the full plan axes the optimizer
// chooses between: executor, model replication, data replication,
// access method, worker count and steal-chunk granularity. Two plans
// that differ in any axis measure independently.
type Key struct {
	// Workload is the workload family ("glm", "gibbs", "nn").
	Workload string `json:"workload"`
	// Model is the task's short name (the spec for GLM; "gibbs"/"nn").
	Model string `json:"model"`
	// Dataset is the registry name.
	Dataset string `json:"dataset"`
	// Rows, Cols and NNZ fingerprint the dataset's shape statistics.
	Rows int   `json:"rows"`
	Cols int   `json:"cols"`
	NNZ  int64 `json:"nnz"`
	// DatasetVersion pins the published view of a streamed dataset, so
	// costs measured on a smaller matrix never leak into decisions for
	// a grown one. Registry datasets are frozen at version 1; omitted
	// (zero) in stores written before streaming existed.
	DatasetVersion uint64 `json:"dataset_version,omitempty"`
	// Machine is the simulated topology name.
	Machine string `json:"machine"`
	// Executor, ModelRep, DataRep, Access, Workers and StealChunk are
	// the plan axes.
	Executor   string `json:"executor"`
	ModelRep   string `json:"model_rep"`
	DataRep    string `json:"data_rep"`
	Access     string `json:"access"`
	Workers    int    `json:"workers"`
	StealChunk int    `json:"steal_chunk"`
}

// String renders the key compactly for decision tables and logs.
func (k Key) String() string {
	task := k.Model
	if task == "" {
		task = k.Workload
	}
	return fmt.Sprintf("%s/%s %s/%s/%s %s w%d sc%d",
		task, k.Dataset, k.Access, k.ModelRep, k.DataRep, k.Executor, k.Workers, k.StealChunk)
}

// Sample is one finished epoch's measurement. The phase split is
// present only when the job was traced (HasSplit).
type Sample struct {
	// SecondsPerEpoch is the epoch's wall clock in seconds.
	SecondsPerEpoch float64
	// StepSeconds, FlushSeconds and BarrierSeconds split the epoch into
	// pure update work, master-synchronization traffic and
	// straggler/orchestration wait, when tracing supplied them.
	StepSeconds    float64
	FlushSeconds   float64
	BarrierSeconds float64
	// HasSplit reports whether the phase fields are meaningful.
	HasSplit bool
}

// Observation is the accumulated state for one key: an observation
// count and EWMAs of the epoch cost and its phase split.
type Observation struct {
	// Count is the number of epochs recorded.
	Count int64 `json:"count"`
	// SecondsPerEpoch is the EWMA of observed epoch wall clock.
	SecondsPerEpoch float64 `json:"seconds_per_epoch"`
	// SplitCount counts the samples that carried a phase split; the
	// split EWMAs below cover only those.
	SplitCount     int64   `json:"split_count,omitempty"`
	StepSeconds    float64 `json:"step_seconds,omitempty"`
	FlushSeconds   float64 `json:"flush_seconds,omitempty"`
	BarrierSeconds float64 `json:"barrier_seconds,omitempty"`
}

// Options configures a Store; zero values take defaults.
type Options struct {
	// Alpha is the EWMA weight of the newest sample; 0 means 0.25.
	Alpha float64
	// MinObservations is K: how many epochs a key needs before its
	// measured cost overrides the static prior. 0 means 3.
	MinObservations int
	// Epsilon is the exploration probability: how often the scheduler
	// runs the decision's runner-up instead of the winner. 0 means
	// 0.05; negative disables exploration.
	Epsilon float64
	// Seed drives the exploration draws; 0 means 1. The stream is
	// deterministic so tests (and reruns) are reproducible.
	Seed int64
}

// normalize fills defaults.
func (o Options) normalize() Options {
	if o.Alpha == 0 {
		o.Alpha = 0.25
	}
	if o.MinObservations == 0 {
		o.MinObservations = 3
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.05
	}
	if o.Epsilon < 0 {
		o.Epsilon = 0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Stats is a point-in-time summary of a store for /v1/stats.
type Stats struct {
	// Keys is the number of distinct observation streams.
	Keys int `json:"keys"`
	// Observations counts every recorded epoch since construction
	// (loaded state does not re-count).
	Observations int64 `json:"observations"`
	// Explorations counts the epsilon draws that chose the runner-up.
	Explorations int64 `json:"explorations"`
	// MinObservations and Epsilon echo the policy knobs.
	MinObservations int     `json:"min_observations"`
	Epsilon         float64 `json:"epsilon"`
	// Persistent reports whether the store is backed by a ckpt store.
	Persistent bool `json:"persistent"`
}

// Store is the concurrent feedback table. All methods are safe for
// concurrent use; Record is called from every scheduler worker after
// every epoch, Measured from every planning decision.
type Store struct {
	opts Options

	mu  sync.RWMutex
	obs map[Key]*Observation

	rngMu sync.Mutex
	rng   *rand.Rand

	recorded atomic.Int64
	explored atomic.Int64

	persistMu sync.Mutex
	persist   persister
}

// persister is the durable backing (see persist.go); nil keeps the
// store in memory only.
type persister interface {
	save(entries []Entry) error
	load() ([]Entry, error)
}

// NewStore builds an in-memory feedback store.
func NewStore(opts Options) *Store {
	opts = opts.normalize()
	return &Store{
		opts: opts,
		obs:  map[Key]*Observation{},
		rng:  rand.New(rand.NewSource(opts.Seed)),
	}
}

// MinObservations returns K, the prior-to-measured crossover count.
func (s *Store) MinObservations() int { return s.opts.MinObservations }

// Record folds one epoch's measurement into the key's EWMA. The first
// sample seeds the average; later samples blend with weight Alpha, so
// a drifting machine walks the estimate toward current reality while a
// single outlier epoch cannot flip a well-observed winner.
func (s *Store) Record(k Key, smp Sample) {
	s.mu.Lock()
	o := s.obs[k]
	if o == nil {
		o = &Observation{}
		s.obs[k] = o
	}
	o.Count++
	o.SecondsPerEpoch = ewma(o.SecondsPerEpoch, smp.SecondsPerEpoch, o.Count, s.opts.Alpha)
	if smp.HasSplit {
		o.SplitCount++
		o.StepSeconds = ewma(o.StepSeconds, smp.StepSeconds, o.SplitCount, s.opts.Alpha)
		o.FlushSeconds = ewma(o.FlushSeconds, smp.FlushSeconds, o.SplitCount, s.opts.Alpha)
		o.BarrierSeconds = ewma(o.BarrierSeconds, smp.BarrierSeconds, o.SplitCount, s.opts.Alpha)
	}
	s.mu.Unlock()
	s.recorded.Add(1)
}

// ewma blends a new sample into a running average: the first sample
// seeds it, later ones get weight alpha.
func ewma(old, sample float64, count int64, alpha float64) float64 {
	if count <= 1 {
		return sample
	}
	return alpha*sample + (1-alpha)*old
}

// Lookup returns the key's accumulated observation, regardless of
// whether it has crossed the K threshold.
func (s *Store) Lookup(k Key) (Observation, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o := s.obs[k]
	if o == nil {
		return Observation{}, false
	}
	return *o, true
}

// Measured returns the key's EWMA seconds-per-epoch, with ok true only
// once the key has at least MinObservations epochs — the crossover
// where measurement overrides the static prior.
func (s *Store) Measured(k Key) (float64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o := s.obs[k]
	if o == nil || o.Count < int64(s.opts.MinObservations) {
		return 0, false
	}
	return o.SecondsPerEpoch, true
}

// Explore draws the epsilon-exploration decision: true means the
// caller should schedule the decision's runner-up plan instead of the
// winner (and is counted). The draw stream is seeded and serialized,
// so a single-store run is reproducible.
func (s *Store) Explore() bool {
	if s.opts.Epsilon <= 0 {
		return false
	}
	s.rngMu.Lock()
	hit := s.rng.Float64() < s.opts.Epsilon
	s.rngMu.Unlock()
	if hit {
		s.explored.Add(1)
	}
	return hit
}

// Len returns the number of distinct keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.obs)
}

// Stats summarises the store.
func (s *Store) Stats() Stats {
	s.persistMu.Lock()
	persistent := s.persist != nil
	s.persistMu.Unlock()
	return Stats{
		Keys:            s.Len(),
		Observations:    s.recorded.Load(),
		Explorations:    s.explored.Load(),
		MinObservations: s.opts.MinObservations,
		Epsilon:         s.opts.Epsilon,
		Persistent:      persistent,
	}
}

// Entry is one serialized (key, observation) pair — the persistence
// and decision-table unit.
type Entry struct {
	Key Key         `json:"key"`
	Obs Observation `json:"obs"`
}

// Entries snapshots the table, in unspecified order.
func (s *Store) Entries() []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Entry, 0, len(s.obs))
	for k, o := range s.obs {
		out = append(out, Entry{Key: k, Obs: *o})
	}
	return out
}

// merge installs loaded entries, keeping whichever side of a collision
// has seen more epochs (a live stream outranks a stale disk image).
func (s *Store) merge(entries []Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		if cur := s.obs[e.Key]; cur != nil && cur.Count >= e.Obs.Count {
			continue
		}
		o := e.Obs
		s.obs[e.Key] = &o
	}
}
