// Package vec provides the vector primitives the engine is built on:
// plain float64 slices with BLAS-level-1 helpers, and Atomic, a vector
// whose components are individually atomic.
//
// Atomic implements the Hogwild! memory model the paper builds on
// (Section 2.1): writes of individual model components are atomic, but
// the vector as a whole is never locked, so concurrent readers may see
// a mix of old and new components. This is exactly the incoherent-but-
// component-atomic semantics that Niu et al. prove is sufficient for
// SGD convergence, and it keeps the concurrent executor clean under the
// Go race detector.
package vec

import (
	"math"
	"sync/atomic"
	"unsafe"
)

// Atomic is a fixed-length vector of float64 values with component-wise
// atomic loads, stores, and additions. The zero value is unusable; call
// NewAtomic.
type Atomic struct {
	bits []uint64
}

// cacheLine is the coherence granularity the allocator aligns Atomic
// storage to, so two masters never share a line and a master's first
// component never shares one with unrelated heap neighbours.
const cacheLine = 64

// NewAtomic returns an all-zero atomic vector of length n. The backing
// array is aligned to a cache-line boundary: shared masters are the
// parallel executor's hottest write targets, and an unaligned start
// would let another allocation false-share the first components' line.
func NewAtomic(n int) *Atomic {
	const wordsPerLine = cacheLine / 8
	buf := make([]uint64, n+wordsPerLine-1)
	off := 0
	if rem := uintptr(unsafe.Pointer(&buf[0])) % cacheLine; rem != 0 {
		off = int((cacheLine - rem) / 8)
	}
	return &Atomic{bits: buf[off : off+n : off+n]}
}

// Len returns the vector length.
func (a *Atomic) Len() int { return len(a.bits) }

// Load atomically reads component i.
func (a *Atomic) Load(i int) float64 {
	return math.Float64frombits(atomic.LoadUint64(&a.bits[i]))
}

// Store atomically writes component i.
func (a *Atomic) Store(i int, v float64) {
	atomic.StoreUint64(&a.bits[i], math.Float64bits(v))
}

// Add atomically adds delta to component i using a compare-and-swap
// loop, and returns the new value. Lost updates are impossible at the
// component level (though the paper's methods tolerate them anyway).
func (a *Atomic) Add(i int, delta float64) float64 {
	for {
		old := atomic.LoadUint64(&a.bits[i])
		next := math.Float64frombits(old) + delta
		if atomic.CompareAndSwapUint64(&a.bits[i], old, math.Float64bits(next)) {
			return next
		}
	}
}

// Snapshot copies the current (possibly torn across components, never
// within one) contents into dst, which must have length Len().
func (a *Atomic) Snapshot(dst []float64) {
	for i := range a.bits {
		dst[i] = a.Load(i)
	}
}

// AddDelta atomically adds cur[i]-base[i] to every component whose
// delta is nonzero — one worker's batched flush of locally accumulated
// updates to a shared master (the paper's "batch writes across
// sockets" technique). cur and base must have length Len().
func (a *Atomic) AddDelta(cur, base []float64) {
	for i := range a.bits {
		if d := cur[i] - base[i]; d != 0 {
			a.Add(i, d)
		}
	}
}

// FlushDelta is one worker's batched flush of locally accumulated
// updates, fused into a single pass: for every component it pushes the
// local delta cur[i]-base[i] to the master and refreshes cur and base
// with the master's resulting value, so the worker's next chunk trains
// on a view that includes its peers' flushed updates. It replaces the
// three-pass AddDelta + Snapshot + copy sequence the flush used to be —
// on the measured hot path, one traversal of three cache-resident
// arrays instead of three.
//
// cur and base must have length Len(). With a single writer the
// refreshed values equal cur exactly, so single-worker runs stay
// bit-identical to the unfused sequence.
func (a *Atomic) FlushDelta(cur, base []float64) {
	for i := range a.bits {
		var nv float64
		if d := cur[i] - base[i]; d != 0 {
			nv = a.Add(i, d)
		} else {
			nv = a.Load(i)
		}
		cur[i], base[i] = nv, nv
	}
}

// FlushDeltaSparse is FlushDelta restricted to the given coordinate
// set: only listed components are flushed and refreshed, so a chunk of
// sparse rows pays O(coordinates touched) instead of O(dim) per flush.
// Unlisted components keep the (possibly stale) values of the last full
// refresh — acceptable under the Hogwild! memory model, and exact when
// the worker's steps never read outside the listed coordinates.
// Duplicate indices are harmless: after the first visit the component's
// local delta is zero.
func (a *Atomic) FlushDeltaSparse(cur, base []float64, idx []int32) {
	for _, j := range idx {
		if d := cur[j] - base[j]; d != 0 {
			nv := a.Add(int(j), d)
			cur[j], base[j] = nv, nv
		}
	}
}

// CopyFrom atomically stores each component of src, which must have
// length Len().
func (a *Atomic) CopyFrom(src []float64) {
	for i, v := range src {
		a.Store(i, v)
	}
}

// Dot returns the inner product of two equal-length dense vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// SparseDot returns the inner product of a sparse vector (vals at
// positions idx) with a dense vector x.
func SparseDot(vals []float64, idx []int32, x []float64) float64 {
	var s float64
	for k, j := range idx {
		s += vals[k] * x[j]
	}
	return s
}

// AXPY performs y += alpha * x for equal-length dense vectors.
func AXPY(alpha float64, x, y []float64) {
	for i, v := range x {
		y[i] += alpha * v
	}
}

// SparseAXPY performs y[idx[k]] += alpha * vals[k] for every nonzero.
func SparseAXPY(alpha float64, vals []float64, idx []int32, y []float64) {
	for k, j := range idx {
		y[j] += alpha * vals[k]
	}
}

// Average overwrites dst with the element-wise mean of srcs. All
// vectors must share dst's length; srcs must be non-empty.
func Average(dst []float64, srcs ...[]float64) {
	inv := 1 / float64(len(srcs))
	for i := range dst {
		var s float64
		for _, src := range srcs {
			s += src[i]
		}
		dst[i] = s * inv
	}
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Scale multiplies every component of v by alpha in place.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Fill sets every component of v to c.
func Fill(v []float64, c float64) {
	for i := range v {
		v[i] = c
	}
}

// Clone returns a copy of v.
func Clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Clamp returns x restricted to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
