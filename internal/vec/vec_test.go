package vec

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestAtomicLoadStore(t *testing.T) {
	a := NewAtomic(4)
	if a.Len() != 4 {
		t.Fatalf("Len = %d, want 4", a.Len())
	}
	a.Store(2, 3.5)
	if got := a.Load(2); got != 3.5 {
		t.Errorf("Load(2) = %v, want 3.5", got)
	}
	if got := a.Load(0); got != 0 {
		t.Errorf("Load(0) = %v, want 0", got)
	}
}

func TestAtomicAdd(t *testing.T) {
	a := NewAtomic(1)
	if got := a.Add(0, 1.5); got != 1.5 {
		t.Errorf("Add returned %v, want 1.5", got)
	}
	if got := a.Add(0, -0.5); got != 1.0 {
		t.Errorf("Add returned %v, want 1.0", got)
	}
}

func TestAtomicAddConcurrentNoLostUpdates(t *testing.T) {
	a := NewAtomic(1)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a.Add(0, 1)
			}
		}()
	}
	wg.Wait()
	if got := a.Load(0); got != workers*per {
		t.Errorf("concurrent Add lost updates: %v, want %d", got, workers*per)
	}
}

func TestAtomicSnapshotCopyFrom(t *testing.T) {
	a := NewAtomic(3)
	a.CopyFrom([]float64{1, 2, 3})
	dst := make([]float64, 3)
	a.Snapshot(dst)
	for i, want := range []float64{1, 2, 3} {
		if dst[i] != want {
			t.Errorf("snapshot[%d] = %v, want %v", i, dst[i], want)
		}
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Errorf("empty Dot = %v, want 0", got)
	}
}

func TestSparseDot(t *testing.T) {
	x := []float64{10, 20, 30, 40}
	got := SparseDot([]float64{2, 3}, []int32{1, 3}, x)
	if got != 2*20+3*40 {
		t.Errorf("SparseDot = %v, want 160", got)
	}
}

func TestAXPY(t *testing.T) {
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("AXPY result = %v", y)
	}
}

func TestSparseAXPY(t *testing.T) {
	y := []float64{0, 0, 0}
	SparseAXPY(-1, []float64{5}, []int32{2}, y)
	if y[2] != -5 || y[0] != 0 {
		t.Errorf("SparseAXPY result = %v", y)
	}
}

func TestAverage(t *testing.T) {
	dst := make([]float64, 2)
	Average(dst, []float64{1, 2}, []float64{3, 6})
	if dst[0] != 2 || dst[1] != 4 {
		t.Errorf("Average = %v, want [2 4]", dst)
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
}

func TestScaleFillClone(t *testing.T) {
	v := []float64{1, 2}
	Scale(3, v)
	if v[0] != 3 || v[1] != 6 {
		t.Errorf("Scale = %v", v)
	}
	Fill(v, 7)
	if v[0] != 7 || v[1] != 7 {
		t.Errorf("Fill = %v", v)
	}
	c := Clone(v)
	c[0] = 0
	if v[0] != 7 {
		t.Error("Clone aliases source")
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{-1, 0, 1, 0}, {2, 0, 1, 1}, {0.5, 0, 1, 0.5},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

// Property: Atomic round-trips arbitrary float64 values exactly,
// including negatives, tiny and huge magnitudes.
func TestAtomicRoundTripProperty(t *testing.T) {
	f := func(v float64) bool {
		a := NewAtomic(1)
		a.Store(0, v)
		got := a.Load(0)
		return got == v || (math.IsNaN(v) && math.IsNaN(got))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Dot is symmetric.
func TestDotSymmetryProperty(t *testing.T) {
	f := func(a, b [8]float64) bool {
		x, y := a[:], b[:]
		d1, d2 := Dot(x, y), Dot(y, x)
		return d1 == d2 || math.IsNaN(d1) == math.IsNaN(d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Average of identical vectors is the vector itself.
func TestAverageIdentityProperty(t *testing.T) {
	f := func(a [4]float64) bool {
		if anyNaN(a[:]) {
			return true
		}
		dst := make([]float64, 4)
		Average(dst, a[:], a[:], a[:])
		for i := range dst {
			if math.Abs(dst[i]-a[i]) > 1e-9*math.Max(1, math.Abs(a[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func anyNaN(v []float64) bool {
	for _, x := range v {
		// Skip values whose triple sum would overflow, as well as
		// NaN/Inf inputs: Average is only used on finite model values.
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > math.MaxFloat64/4 {
			return true
		}
	}
	return false
}

func TestAtomicAddDelta(t *testing.T) {
	a := NewAtomic(4)
	a.CopyFrom([]float64{1, 2, 3, 4})
	base := []float64{1, 2, 3, 4}
	cur := []float64{1, 2.5, 3, 3}
	a.AddDelta(cur, base)
	got := make([]float64, 4)
	a.Snapshot(got)
	want := []float64{1, 2.5, 3, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("component %d = %v, want %v", i, got[i], want[i])
		}
	}
}
