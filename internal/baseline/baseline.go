// Package baseline emulates the four competitor systems the paper
// compares against (Section 4.1) — GraphLab, GraphChi, MLlib/Spark and
// Hogwild! — as their documented points in DimmWitted's tradeoff space
// (Figure 5) plus a calibrated overhead model:
//
//	system    access      model rep   data rep   overhead
//	GraphLab  column      PerMachine  Sharding   event scheduling per update
//	GraphChi  column      PerMachine  Sharding   as GraphLab, slightly lighter
//	MLlib     row (batch) PerCore     Sharding   per-epoch job scheduling + ~3x runtime (Scala)
//	Hogwild!  row         PerMachine  Sharding   none
//
// The paper itself argues (Section 4.2) that the gaps it measures come
// from "the point in the tradeoff space — not low-level implementation
// differences"; these emulations encode exactly those points. The
// overhead constants come from the paper's own measurements: MLlib
// spends 0.9s of a 2.7s Forest run on scheduling, its Scala kernels
// run ~3x slower than C++, and GraphLab/GraphChi are ~20x slower than
// DimmWitted on parallel sum "due to the overhead of dynamically
// scheduling tasks and/or maintaining the graph structure".
package baseline

import (
	"fmt"

	"dimmwitted/internal/core"
	"dimmwitted/internal/data"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

// System identifies one of the emulated competitor systems, or
// DimmWitted itself.
type System string

// The five systems of the end-to-end comparison (Figure 11).
const (
	GraphLab   System = "GraphLab"
	GraphChi   System = "GraphChi"
	MLlib      System = "MLlib"
	Hogwild    System = "Hogwild!"
	DimmWitted System = "DimmWitted"
)

// Systems returns all five in the paper's column order.
func Systems() []System {
	return []System{GraphLab, GraphChi, MLlib, Hogwild, DimmWitted}
}

// Overhead constants, in simulated cycles (see the package comment).
const (
	graphLabStepOverhead    = 120 // event-driven scheduler work per update
	graphChiStepOverhead    = 100 // slightly lighter shell (no distribution layer)
	graphLabElementOverhead = 15  // per-element graph-structure maintenance
	graphChiElementOverhead = 12
	mllibEpochOverhead      = 6e6 // per-job task scheduling, serialization
	mllibComputeScale       = 3   // Scala vs C++ kernels (Section 4.2)
)

// PlanFor returns the system's fixed point in the tradeoff space for
// the given task, or the optimizer's choice for DimmWitted.
func PlanFor(sys System, spec model.Spec, ds *data.Dataset, top numa.Topology) (core.Plan, error) {
	switch sys {
	case DimmWitted:
		return core.Choose(spec, ds, top)
	case Hogwild:
		if !supports(spec, model.RowWise) {
			return core.Plan{}, fmt.Errorf("baseline: %s requires a row-wise method for %s", sys, spec.Name())
		}
		p := core.Plan{
			Access:   model.RowWise,
			ModelRep: core.PerMachine,
			DataRep:  core.Sharding,
			Machine:  top,
		}
		return p.Normalize(spec), nil
	case GraphLab, GraphChi:
		access, ok := columnMethod(spec)
		if !ok {
			return core.Plan{}, fmt.Errorf("baseline: %s requires a column method for %s", sys, spec.Name())
		}
		p := core.Plan{
			Access:                access,
			ModelRep:              core.PerMachine,
			DataRep:               core.Sharding,
			Machine:               top,
			StepOverheadCycles:    graphLabStepOverhead,
			ElementOverheadCycles: graphLabElementOverhead,
		}
		if sys == GraphChi {
			p.StepOverheadCycles = graphChiStepOverhead
			p.ElementOverheadCycles = graphChiElementOverhead
		}
		return p.Normalize(spec), nil
	case MLlib:
		if !supports(spec, model.RowWise) {
			return core.Plan{}, fmt.Errorf("baseline: %s requires a row-wise method for %s", sys, spec.Name())
		}
		p := core.Plan{
			Access:              model.RowWise,
			ModelRep:            core.PerCore,
			DataRep:             core.Sharding,
			Machine:             top,
			EpochOverheadCycles: mllibEpochOverhead,
			ComputeScale:        mllibComputeScale,
		}
		return p.Normalize(spec), nil
	default:
		return core.Plan{}, fmt.Errorf("baseline: unknown system %q", sys)
	}
}

// supports reports whether the spec implements the access method.
func supports(spec model.Spec, a model.Access) bool {
	for _, s := range spec.Supports() {
		if s == a {
			return true
		}
	}
	return false
}

// columnMethod returns whichever column access the spec implements.
func columnMethod(spec model.Spec) (model.Access, bool) {
	if supports(spec, model.ColWise) {
		return model.ColWise, true
	}
	if supports(spec, model.ColToRow) {
		return model.ColToRow, true
	}
	return 0, false
}

// Run executes the system's plan until the loss target or the epoch
// limit. MLlib's supervised models run through the mini-batch
// batch-gradient emulator (the execution model the paper attributes to
// it); everything else runs through the engine.
func Run(sys System, spec model.Spec, ds *data.Dataset, top numa.Topology, target float64, maxEpochs int) (core.RunResult, error) {
	plan, err := PlanFor(sys, spec, ds, top)
	if err != nil {
		return core.RunResult{}, err
	}
	if sys == MLlib {
		switch spec.Name() {
		case "svm", "lr", "ls":
			return runBatchGradient(spec, ds, plan, target, maxEpochs)
		}
	}
	eng, err := core.New(spec, ds, plan)
	if err != nil {
		return core.RunResult{}, err
	}
	return eng.RunToLoss(target, maxEpochs), nil
}
