package baseline

import (
	"math/rand"
	"time"

	"dimmwitted/internal/core"
	"dimmwitted/internal/data"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

// runBatchGradient emulates MLlib's execution model for the supervised
// models: per epoch, parallel workers compute the gradient of their
// shard at the *fixed* current model, a single thread aggregates the
// gradients, and the model takes one step. Statistically this is
// batch gradient descent, which the paper measures at ~60x more epochs
// to 1% loss than DimmWitted's SGD on Forest; hardware-wise each epoch
// streams the same data as an SGD epoch but pays MLlib's per-job
// scheduling overhead and Scala compute factor (from the plan).
//
// Per-example gradients are extracted through the model spec itself:
// a RowStep with step 1 moves the scratch model by exactly -gradient
// on the example's support (all our row steps are linear in the step),
// so the mover's displacement is accumulated and the support restored.
func runBatchGradient(spec model.Spec, ds *data.Dataset, plan core.Plan, target float64, maxEpochs int) (core.RunResult, error) {
	plan = plan.Normalize(spec)
	mach := numa.New(plan.Machine)
	nodes := plan.Machine.Nodes
	per := plan.Machine.CoresPerNode

	// One gradient accumulator per worker (private), one model region
	// interleaved (read by everyone, written once per epoch).
	dim := ds.Cols()
	modelReg := mach.NewInterleavedRegion("model", int64(dim)*8, numa.Private)
	dataBytes := ds.A.Bytes()
	type bworker struct {
		core    *numa.Core
		dataReg *numa.Region
		grad    []float64
		rows    int
	}
	var workers []*bworker
	for i := 0; i < plan.Workers; i++ {
		node := i % nodes
		slot := i / nodes
		if slot >= per {
			break
		}
		c := mach.Core(node*per + slot)
		workers = append(workers, &bworker{
			core:    c,
			dataReg: mach.NewRegion("data", dataBytes, c.Node, numa.Private),
			grad:    make([]float64, dim),
		})
	}

	rep := spec.NewReplica(ds)
	x := rep.X
	scratch := spec.NewReplica(ds)
	saved := make([]float64, 0, 256)

	rng := rand.New(rand.NewSource(plan.Seed))
	step := plan.Step
	var res core.RunResult
	var cum time.Duration

	for epoch := 0; epoch < maxEpochs; epoch++ {
		mach.Reset()
		for _, w := range workers {
			for j := range w.grad {
				w.grad[j] = 0
			}
			w.rows = 0
		}
		perm := rng.Perm(ds.Rows())
		for i, row := range perm {
			w := workers[i%len(workers)]
			idx, _ := ds.A.Row(row)
			// Evaluate the example's SGD displacement at the frozen x.
			saved = saved[:0]
			for _, j := range idx {
				scratch.X[j] = x[j]
				saved = append(saved, x[j])
			}
			st := spec.RowStep(ds, row, scratch, 1.0)
			for k, j := range idx {
				w.grad[j] += scratch.X[j] - saved[k]
				scratch.X[j] = saved[k]
			}
			w.rows++
			// Charge: same traffic as an SGD step, but the write goes
			// to the worker-private accumulator.
			w.core.ReadStream(w.dataReg, int64(float64(st.DataWords)*1.5))
			w.core.ReadCached(modelReg, int64(st.ModelReads))
			w.core.Compute(float64(st.Flops) * 0.5)
		}
		// Single-threaded aggregation and model update (the driver).
		driver := workers[0].core
		total := 0
		for _, w := range workers {
			driver.ReadStream(w.dataReg, int64(dim)) // fetch partial gradient
			total += w.rows
		}
		inv := step / float64(total)
		for j := 0; j < dim; j++ {
			var g float64
			for _, w := range workers {
				g += w.grad[j]
			}
			x[j] += inv * g
		}
		driver.Write(modelReg, int64(dim))
		driver.Compute(float64(dim*len(workers)) * 0.5)
		step *= plan.StepDecay

		cycles := mach.MaxCycles()*plan.ComputeScale + plan.EpochOverheadCycles
		simT := time.Duration(cycles / plan.Machine.ClockGHz)
		cum += simT

		loss := spec.Loss(ds, x)
		er := core.EpochResult{
			Epoch:   epoch + 1,
			Loss:    loss,
			SimTime: simT,
			CumTime: cum,
			Steps:   ds.Rows(),
		}
		res.History = append(res.History, er)
		res.Epochs = epoch + 1
		res.Time = cum
		res.FinalLoss = loss
		if loss <= target {
			res.Converged = true
			break
		}
	}
	return res, nil
}
