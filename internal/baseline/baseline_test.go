package baseline

import (
	"testing"

	"dimmwitted/internal/core"
	"dimmwitted/internal/data"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

func TestPlanForFixedPoints(t *testing.T) {
	svm := model.NewSVM()
	ds := data.Reuters()
	hw, err := PlanFor(Hogwild, svm, ds, numa.Local2)
	if err != nil {
		t.Fatal(err)
	}
	if hw.Access != model.RowWise || hw.ModelRep != core.PerMachine || hw.DataRep != core.Sharding {
		t.Errorf("Hogwild plan = %v", hw)
	}
	gl, err := PlanFor(GraphLab, svm, ds, numa.Local2)
	if err != nil {
		t.Fatal(err)
	}
	if gl.Access != model.ColToRow || gl.ModelRep != core.PerMachine {
		t.Errorf("GraphLab plan = %v", gl)
	}
	if gl.StepOverheadCycles <= 0 {
		t.Error("GraphLab has no scheduling overhead")
	}
	gc, err := PlanFor(GraphChi, svm, ds, numa.Local2)
	if err != nil {
		t.Fatal(err)
	}
	if gc.StepOverheadCycles >= gl.StepOverheadCycles {
		t.Error("GraphChi overhead should be lighter than GraphLab's")
	}
	ml, err := PlanFor(MLlib, svm, ds, numa.Local2)
	if err != nil {
		t.Fatal(err)
	}
	if ml.ModelRep != core.PerCore || ml.ComputeScale != 3 || ml.EpochOverheadCycles <= 0 {
		t.Errorf("MLlib plan = %+v", ml)
	}
	if _, err := PlanFor(System("nope"), svm, ds, numa.Local2); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestSystemsList(t *testing.T) {
	ss := Systems()
	if len(ss) != 5 || ss[4] != DimmWitted {
		t.Errorf("Systems() = %v", ss)
	}
}

func TestDimmWittedBeatsAllOnSVM(t *testing.T) {
	// Figure 11's headline: DimmWitted converges to the target loss in
	// less simulated time than every competitor.
	spec := model.NewSVM()
	ds := data.Reuters()
	init := spec.Loss(ds, spec.NewReplica(ds).X)
	target := init * 0.3

	times := map[System]float64{}
	for _, sys := range Systems() {
		res, err := Run(sys, spec, ds, numa.Local2, target, 400)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if !res.Converged {
			// Competitors may time out (the paper's "> 300"); treat
			// the elapsed time as a lower bound.
			t.Logf("%s did not converge in 400 epochs (loss %v)", sys, res.FinalLoss)
		}
		times[sys] = res.Time.Seconds()
	}
	for _, sys := range []System{GraphLab, GraphChi, MLlib, Hogwild} {
		if times[DimmWitted] >= times[sys] {
			t.Errorf("DimmWitted (%.4gs) not faster than %s (%.4gs)", times[DimmWitted], sys, times[sys])
		}
	}
}

func TestDimmWittedBeatsHogwildViaModelReplication(t *testing.T) {
	// On SVM/RCV1 the gap to Hogwild! comes from PerNode vs PerMachine.
	spec := model.NewSVM()
	ds := data.RCV1()
	init := spec.Loss(ds, spec.NewReplica(ds).X)
	target := init * 0.3
	dw, err := Run(DimmWitted, spec, ds, numa.Local2, target, 200)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := Run(Hogwild, spec, ds, numa.Local2, target, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !dw.Converged {
		t.Fatal("DimmWitted did not converge")
	}
	ratio := hw.Time.Seconds() / dw.Time.Seconds()
	if ratio < 2 {
		t.Errorf("Hogwild/DW time ratio = %.1f, want >= 2 (paper: up to 10x)", ratio)
	}
}

func TestMLlibNeedsMoreEpochsThanDW(t *testing.T) {
	// Batch gradient descent vs SGD: the paper measures ~60x more
	// epochs on Forest; shape-wise MLlib must need several times more.
	spec := model.NewSVM()
	ds := data.Forest()
	init := spec.Loss(ds, spec.NewReplica(ds).X)
	target := init * 0.3
	dw, err := Run(DimmWitted, spec, ds, numa.Local2, target, 400)
	if err != nil {
		t.Fatal(err)
	}
	ml, err := Run(MLlib, spec, ds, numa.Local2, target, 400)
	if err != nil {
		t.Fatal(err)
	}
	if !dw.Converged {
		t.Fatal("DimmWitted did not converge on Forest")
	}
	if ml.Converged && ml.Epochs < 3*dw.Epochs {
		t.Errorf("MLlib epochs (%d) not well above DW's (%d)", ml.Epochs, dw.Epochs)
	}
}

func TestGraphLabCompetitiveOnLP(t *testing.T) {
	// Figure 11 LP: GraphLab/GraphChi sit within a small factor of
	// DimmWitted (both use column access), unlike row-wise systems.
	spec := model.NewLP()
	ds := data.AmazonLP()
	optimal := func() float64 {
		plan, _ := core.Choose(spec, ds, numa.Local2)
		e, _ := core.New(spec, ds, plan)
		return e.RunEpochs(60)[59].Loss
	}()
	target := optimal * 1.05
	dw, err := Run(DimmWitted, spec, ds, numa.Local2, target, 200)
	if err != nil {
		t.Fatal(err)
	}
	gl, err := Run(GraphLab, spec, ds, numa.Local2, target, 200)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := Run(Hogwild, spec, ds, numa.Local2, target, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !dw.Converged || !gl.Converged {
		t.Fatalf("column systems did not converge: dw=%v gl=%v", dw.Converged, gl.Converged)
	}
	glRatio := gl.Time.Seconds() / dw.Time.Seconds()
	if glRatio < 1 || glRatio > 20 {
		t.Errorf("GraphLab/DW on LP = %.1f, want a small factor > 1", glRatio)
	}
	// Row-wise Hogwild! should be far behind (paper: >120s vs 0.94s).
	if hw.Converged && hw.Time.Seconds() < gl.Time.Seconds() {
		t.Errorf("Hogwild (%v) beat GraphLab (%v) on LP", hw.Time, gl.Time)
	}
}

func TestBatchGradientReducesLoss(t *testing.T) {
	spec := model.NewLR()
	ds := data.Forest()
	plan, err := PlanFor(MLlib, spec, ds, numa.Local2)
	if err != nil {
		t.Fatal(err)
	}
	init := spec.Loss(ds, spec.NewReplica(ds).X)
	res, err := runBatchGradient(spec, ds, plan, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss >= init {
		t.Errorf("batch gradient loss %v -> %v", init, res.FinalLoss)
	}
	// Monotone-ish: loss after 30 epochs well below after 3.
	if res.History[29].Loss >= res.History[2].Loss {
		t.Errorf("batch gradient not progressing: %v vs %v", res.History[29].Loss, res.History[2].Loss)
	}
}

func TestGraphLabRejectsModelsWithoutColumnMethod(t *testing.T) {
	if _, err := PlanFor(GraphLab, model.NewParallelSum(), data.ParallelSum(10, 2), numa.Local2); err != nil {
		// parallel sum supports ColWise, so this should actually work
		t.Fatalf("unexpected: %v", err)
	}
}
