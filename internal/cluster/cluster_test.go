package cluster

import (
	"net/http/httptest"
	"testing"
	"time"

	"dimmwitted/internal/core"
	"dimmwitted/internal/data"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
	"dimmwitted/internal/serve"
)

// testPeer is one in-process dwserve node: a serve.Server behind an
// httptest listener. Peers share the process-wide data registry, so
// shard stream names keep them apart — exactly the invariant the
// coordinator maintains for real nodes too.
type testPeer struct {
	srv *serve.Server
	ts  *httptest.Server
}

func startPeers(t *testing.T, n int) []*testPeer {
	t.Helper()
	peers := make([]*testPeer, n)
	for i := range peers {
		srv := serve.NewServer(serve.Options{Machine: numa.Local4})
		ts := httptest.NewServer(srv)
		peers[i] = &testPeer{srv: srv, ts: ts}
		t.Cleanup(func() {
			ts.Close()
			srv.Close()
		})
	}
	return peers
}

// unionDataset registers a small deterministic classification stream
// under name and returns its published view. Rows are sparse with a
// drifting support so every shard sees every feature.
func unionDataset(t *testing.T, name string, rows, cols int) *data.Dataset {
	t.Helper()
	h, err := data.EnsureStream(name, cols, data.Classification)
	if err != nil {
		t.Fatalf("EnsureStream(%s): %v", name, err)
	}
	batch := make([]data.Row, 0, rows)
	for i := 0; i < rows; i++ {
		j := int32(i % cols)
		k := int32((i*7 + 3) % cols)
		if k == j {
			k = (k + 1) % int32(cols)
		}
		label := 1.0
		if i%3 == 0 {
			label = -1.0
		}
		idx := []int32{j, k}
		vals := []float64{1 + float64(i%5)/4, label * (0.5 + float64(i%7)/8)}
		if k < j {
			idx = []int32{k, j}
			vals[0], vals[1] = vals[1], vals[0]
		}
		batch = append(batch, data.Row{Indices: idx, Values: vals, Label: label})
	}
	ds, err := h.Append(batch)
	if err != nil {
		t.Fatalf("Append(%s): %v", name, err)
	}
	return ds
}

func newTestCoordinator(t *testing.T, peers []*testPeer, opts Options) *Coordinator {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	c := NewCoordinator(opts)
	for _, p := range peers {
		if _, err := c.Join(p.ts.URL); err != nil {
			t.Fatalf("Join(%s): %v", p.ts.URL, err)
		}
	}
	return c
}

// TestClusterParityWithSingleNode is the PerCluster correctness
// anchor: three peers, each training the round-robin shard of a union
// dataset under a forced FixedOrder plan with one combine per epoch,
// must reproduce a single-node PerNode/Sharding run over the union
// BITWISE — the cluster's pull→average→re-seed round is the engine's
// own end-of-epoch combine, one level up, so identical traversal plus
// identical summation order means identical floats.
func TestClusterParityWithSingleNode(t *testing.T) {
	const (
		rows, cols = 90, 16
		epochs     = 6
		step       = 0.1
		decay      = 0.95
	)
	union := unionDataset(t, "cl-parity-union", rows, cols)

	peers := startPeers(t, 3)
	coord := newTestCoordinator(t, peers, Options{})
	id, err := coord.Train(TrainRequest{
		Model:      "svm",
		Dataset:    "cl-parity-union",
		MaxEpochs:  epochs,
		Executor:   "simulated",
		Step:       step,
		StepDecay:  decay,
		Seed:       7,
		FixedOrder: true,
	})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	st, err := coord.Wait(id, 60*time.Second)
	if err != nil {
		t.Fatalf("Wait: %v (status %+v)", err, st)
	}
	if st.State != JobDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if st.Epoch != epochs || st.Rounds != epochs {
		t.Fatalf("job ran %d epochs in %d rounds, want %d in %d", st.Epoch, st.Round, epochs, epochs)
	}
	clusterX, ok := coord.Model(id)
	if !ok {
		t.Fatal("finished job has no model")
	}

	// Reference: one engine over the union. Workers=3 on a 4-node
	// topology gives three per-worker replicas; Sharding hands worker k
	// rows {i : i mod 3 == k} under the identity traversal — the exact
	// row streams the coordinator shipped to its three peers. A
	// different seed on purpose: FixedOrder must make it irrelevant.
	eng, err := core.New(model.NewSVM(), union, core.Plan{
		Access:     model.RowWise,
		ModelRep:   core.PerNode,
		DataRep:    core.Sharding,
		Machine:    numa.Local4,
		Workers:    3,
		Executor:   core.ExecSimulated,
		Step:       step,
		StepDecay:  decay,
		Seed:       999,
		SyncRounds: -1,
		FixedOrder: true,
	})
	if err != nil {
		t.Fatalf("reference engine: %v", err)
	}
	defer eng.Close()
	eng.RunEpochs(epochs)
	refX := eng.Model()

	if len(clusterX) != len(refX) {
		t.Fatalf("model dims differ: cluster %d vs single-node %d", len(clusterX), len(refX))
	}
	for i := range refX {
		if clusterX[i] != refX[i] {
			t.Fatalf("X[%d]: cluster %v != single-node %v (bitwise parity broken)", i, clusterX[i], refX[i])
		}
	}

	// Serving half: the coordinator proxies predicts to the ring owner
	// and they score against the combined model.
	preds, peer, err := coord.Predict(id, []Example{
		{Indices: []int32{0, 1}, Values: []float64{1, 1}},
		{Indices: []int32{2}, Values: []float64{-1}},
	})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if len(preds) != 2 || peer == "" {
		t.Fatalf("Predict returned %d preds via %q, want 2 via a peer", len(preds), peer)
	}
	for _, p := range preds {
		if p != 1 && p != -1 {
			t.Fatalf("SVM prediction %v is not a class label", p)
		}
	}
}

// TestClusterFailoverMidRun kills one peer between rounds and checks
// that its shard fails over: the survivor re-ingests the rows, resumes
// from the last combined checkpoint, the job completes — and because
// the re-pushed shard replays the identical row stream from the
// identical seed, the final model still matches the single-node run
// bitwise. Serving keeps answering through the ring successors.
func TestClusterFailoverMidRun(t *testing.T) {
	const (
		rows, cols = 60, 12
		epochs     = 5
		step       = 0.1
		decay      = 0.9
	)
	union := unionDataset(t, "cl-failover-union", rows, cols)

	peers := startPeers(t, 3)
	var killed string
	coord := newTestCoordinator(t, peers, Options{
		RoundHook: func(jobID string, round int) {
			if round == 3 && killed == "" {
				killed = peers[1].ts.URL
				peers[1].ts.Close()
			}
		},
	})
	id, err := coord.Train(TrainRequest{
		Model:      "svm",
		Dataset:    "cl-failover-union",
		MaxEpochs:  epochs,
		Executor:   "simulated",
		Step:       step,
		StepDecay:  decay,
		FixedOrder: true,
	})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	st, err := coord.Wait(id, 60*time.Second)
	if err != nil {
		t.Fatalf("Wait: %v (status %+v)", err, st)
	}
	if st.State != JobDone {
		t.Fatalf("job ended %s after peer kill: %s", st.State, st.Error)
	}
	if st.Failovers == 0 {
		t.Fatal("peer was killed mid-run but the job recorded no failover")
	}
	for i, owner := range st.Shards {
		if owner == killed {
			t.Fatalf("shard %d still assigned to dead peer %s", i, killed)
		}
	}
	for _, addr := range st.ServedOn {
		if addr == killed {
			t.Fatalf("final model placed on dead peer %s", killed)
		}
	}

	clusterX, ok := coord.Model(id)
	if !ok {
		t.Fatal("finished job has no model")
	}
	eng, err := core.New(model.NewSVM(), union, core.Plan{
		Access:     model.RowWise,
		ModelRep:   core.PerNode,
		DataRep:    core.Sharding,
		Machine:    numa.Local4,
		Workers:    3,
		Executor:   core.ExecSimulated,
		Step:       step,
		StepDecay:  decay,
		SyncRounds: -1,
		FixedOrder: true,
	})
	if err != nil {
		t.Fatalf("reference engine: %v", err)
	}
	defer eng.Close()
	eng.RunEpochs(epochs)
	refX := eng.Model()
	for i := range refX {
		if clusterX[i] != refX[i] {
			t.Fatalf("X[%d] after failover: cluster %v != single-node %v", i, clusterX[i], refX[i])
		}
	}

	// The dead peer is off the ring; predictions still answer.
	preds, peer, err := coord.Predict(id, []Example{{Indices: []int32{1}, Values: []float64{1}}})
	if err != nil {
		t.Fatalf("Predict after failover: %v", err)
	}
	if len(preds) != 1 || peer == killed {
		t.Fatalf("Predict answered %d preds via %q (dead peer %q)", len(preds), peer, killed)
	}

	// The absorbing peers' counters recorded the failover.
	total := int64(0)
	for _, p := range coord.Peers() {
		total += p.Counters.Failovers
	}
	if total == 0 {
		t.Fatal("no peer counter recorded the absorbed shard")
	}
}

// TestClusterTrainValidation covers the coordinator's fail-fast paths.
func TestClusterTrainValidation(t *testing.T) {
	coord := NewCoordinator(Options{Logf: t.Logf})
	if _, err := coord.Train(TrainRequest{Model: "svm", Dataset: "reuters"}); err == nil {
		t.Fatal("Train with no peers succeeded")
	}
	peers := startPeers(t, 1)
	coord = newTestCoordinator(t, peers, Options{})
	if _, err := coord.Train(TrainRequest{Model: "nope", Dataset: "reuters"}); err == nil {
		t.Fatal("Train with unknown model succeeded")
	}
	if _, err := coord.Train(TrainRequest{Model: "svm", Dataset: "no-such-dataset"}); err == nil {
		t.Fatal("Train with unknown dataset succeeded")
	}
	if _, err := coord.Train(TrainRequest{Model: "svm", Dataset: "reuters", MaxEpochs: -1}); err == nil {
		t.Fatal("Train with negative max_epochs succeeded")
	}
	if _, ok := coord.Status("cl-404"); ok {
		t.Fatal("Status of unknown job reported ok")
	}
}
