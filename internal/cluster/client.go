package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"dimmwitted/internal/core"
	"dimmwitted/internal/serve"
)

// Peer is the coordinator's HTTP client for one dwserve node.
type Peer struct {
	// Addr is the peer's base URL ("http://127.0.0.1:8081").
	Addr string
	hc   *http.Client
}

// NewPeer builds a client for the peer at addr. addr may omit the
// scheme ("127.0.0.1:8081"); timeout 0 means 30s per request.
func NewPeer(addr string, timeout time.Duration) *Peer {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	return &Peer{Addr: strings.TrimRight(addr, "/"), hc: &http.Client{Timeout: timeout}}
}

// do issues one request and decodes the JSON response into out (when
// non-nil). Non-2xx responses surface the peer's error envelope.
func (p *Peer) do(method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, p.Addr+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: peer %s: %w", p.Addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e errorResponse
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		return fmt.Errorf("cluster: peer %s %s %s: %s", p.Addr, method, path, e.Error)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Join runs the coordinator's handshake against the peer.
func (p *Peer) Join(cluster, coordinator string) (joinResponse, error) {
	body, _ := json.Marshal(joinRequest{Cluster: cluster, Coordinator: coordinator})
	var out joinResponse
	err := p.do("POST", "/v1/cluster/join", body, &out)
	return out, err
}

// Append ships a chunk of rows into the named (stream) dataset on the
// peer and returns the encoded payload size.
func (p *Peer) Append(dataset string, rows []appendRow, cols int, task string) (int, error) {
	body, err := json.Marshal(appendRequest{Rows: rows, Cols: cols, Task: task})
	if err != nil {
		return 0, err
	}
	var out appendResponse
	if err := p.do("POST", "/v1/datasets/"+url.PathEscape(dataset)+"/append", body, &out); err != nil {
		return 0, err
	}
	if out.Appended != len(rows) {
		return len(body), fmt.Errorf("cluster: peer %s appended %d of %d rows", p.Addr, out.Appended, len(rows))
	}
	return len(body), nil
}

// Train submits a job and returns the peer's job ID.
func (p *Peer) Train(req serve.TrainRequest) (string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	var out trainResponse
	if err := p.do("POST", "/v1/train", body, &out); err != nil {
		return "", err
	}
	return out.JobID, nil
}

// JobStatus fetches one job's status.
func (p *Peer) JobStatus(id string) (serve.JobStatus, error) {
	var st serve.JobStatus
	err := p.do("GET", "/v1/jobs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// WaitJob polls until the job reaches a terminal state or the timeout
// elapses. A job that ends failed or cancelled is an error — the
// coordinator treats it like a dead peer and fails the shard over.
func (p *Peer) WaitJob(id string, timeout time.Duration) (serve.JobStatus, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := p.JobStatus(id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case "done":
			return st, nil
		case "failed", "cancelled":
			return st, fmt.Errorf("cluster: peer %s job %s %s: %s", p.Addr, id, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("cluster: peer %s job %s still %s after %v", p.Addr, id, st.State, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// PullReplica fetches the encoded snapshot registered under id and
// decodes it (the codec's CRC catches a corrupted transfer).
func (p *Peer) PullReplica(id string) (core.Snapshot, int, error) {
	resp, err := p.hc.Get(p.Addr + "/v1/cluster/replica/" + url.PathEscape(id))
	if err != nil {
		return core.Snapshot{}, 0, fmt.Errorf("cluster: peer %s: %w", p.Addr, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return core.Snapshot{}, 0, fmt.Errorf("cluster: peer %s: %w", p.Addr, err)
	}
	if resp.StatusCode/100 != 2 {
		var e errorResponse
		_ = json.Unmarshal(body, &e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		return core.Snapshot{}, 0, fmt.Errorf("cluster: peer %s replica %s: %s", p.Addr, id, e.Error)
	}
	snap, err := core.DecodeSnapshot(body)
	if err != nil {
		return core.Snapshot{}, 0, fmt.Errorf("cluster: peer %s replica %s: %w", p.Addr, id, err)
	}
	return snap, len(body), nil
}

// PushReplica installs a snapshot under id on the peer and returns
// the encoded payload size.
func (p *Peer) PushReplica(id string, snap core.Snapshot) (int, error) {
	body := core.EncodeSnapshot(snap)
	req, err := http.NewRequest("POST", p.Addr+"/v1/cluster/replica/"+url.PathEscape(id), bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := p.hc.Do(req)
	if err != nil {
		return 0, fmt.Errorf("cluster: peer %s: %w", p.Addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e errorResponse
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		return 0, fmt.Errorf("cluster: peer %s replica %s: %s", p.Addr, id, e.Error)
	}
	return len(body), nil
}

// Predict asks the peer to score examples against a served model.
func (p *Peer) Predict(modelID string, examples []Example) ([]float64, error) {
	body, err := json.Marshal(predictRequest{Model: modelID, Examples: examples})
	if err != nil {
		return nil, err
	}
	var out predictResponse
	if err := p.do("POST", "/v1/predict", body, &out); err != nil {
		return nil, err
	}
	return out.Predictions, nil
}
