package cluster

import (
	"fmt"
	"testing"
)

func TestRingOwnersDistinctAndStable(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"a:1", "b:1", "c:1"} {
		r.Add(n)
	}
	owners := r.Owners("model-x", 2)
	if len(owners) != 2 || owners[0] == owners[1] {
		t.Fatalf("Owners = %v, want 2 distinct peers", owners)
	}
	// Asking for more replicas than peers caps at the peer count.
	if got := r.Owners("model-x", 10); len(got) != 3 {
		t.Fatalf("Owners(10) = %v, want all 3 peers", got)
	}
	// Consistency: removing an unrelated peer keeps the owner.
	owner := r.Owner("model-x")
	other := ""
	for _, n := range r.Nodes() {
		if n != owner && n != owners[1] {
			other = n
		}
	}
	r.Remove(other)
	if got := r.Owner("model-x"); got != owner {
		t.Fatalf("owner moved from %s to %s when removing unrelated peer %s", owner, got, other)
	}
	// Failover: removing the owner hands the key to the old successor.
	r.Remove(owner)
	if got := r.Owner("model-x"); got != owners[1] {
		t.Fatalf("owner after death = %s, want old successor %s", got, owners[1])
	}
	r.Remove(owners[1])
	if got := r.Owners("model-x", 1); got != nil {
		t.Fatalf("empty ring Owners = %v, want nil", got)
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	r := NewRing(0)
	peers := []string{"a:1", "b:1", "c:1"}
	for _, n := range peers {
		r.Add(n)
	}
	counts := map[string]int{}
	const keys = 900
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("model-%d", i))]++
	}
	for _, n := range peers {
		// With 64 vnodes each peer should hold a substantial share; a
		// peer far below a third signals broken placement, not variance.
		if counts[n] < keys/6 {
			t.Fatalf("peer %s owns only %d of %d keys: %v", n, counts[n], keys, counts)
		}
	}
}
