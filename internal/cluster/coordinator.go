package cluster

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dimmwitted/internal/core"
	"dimmwitted/internal/data"
	"dimmwitted/internal/metrics"
	"dimmwitted/internal/model"
	"dimmwitted/internal/serve"
)

// Options configure a Coordinator.
type Options struct {
	// Name identifies the cluster in peer handshakes; "" means "dw".
	Name string
	// Advertise is the coordinator's own URL, reported to peers on
	// join so their /v1/stats can say who owns them.
	Advertise string
	// EpochsPerRound is how many local epochs each peer trains between
	// combines; 0 means 1 — the PerNode cadence (average every epoch),
	// which is also what makes a sharded run comparable to a
	// single-node run on the union.
	EpochsPerRound int
	// RingVNodes is the serving ring's virtual nodes per peer; 0 means
	// the default.
	RingVNodes int
	// PeerTimeout bounds each peer HTTP request; 0 means 30s.
	PeerTimeout time.Duration
	// RoundTimeout bounds one peer's training round; 0 means 2m.
	RoundTimeout time.Duration
	// ReplicateModels is how many ring nodes receive the final model
	// (owner + successors); 0 means 2, so one peer death never loses
	// serving.
	ReplicateModels int
	// ShardChunk is the append batch size when shipping shard rows; 0
	// means 500.
	ShardChunk int
	// RoundHook, when set, runs at the start of every round of every
	// job (after sharding, before the round's peer jobs are
	// submitted). Tests use it to kill a peer mid-run
	// deterministically.
	RoundHook func(jobID string, round int)
	// Logf receives coordinator progress lines; nil discards them.
	Logf func(format string, args ...any)
}

func (o Options) normalize() Options {
	if o.Name == "" {
		o.Name = "dw"
	}
	if o.EpochsPerRound <= 0 {
		o.EpochsPerRound = 1
	}
	if o.PeerTimeout == 0 {
		o.PeerTimeout = 30 * time.Second
	}
	if o.RoundTimeout == 0 {
		o.RoundTimeout = 2 * time.Minute
	}
	if o.ReplicateModels <= 0 {
		o.ReplicateModels = 2
	}
	if o.ShardChunk <= 0 {
		o.ShardChunk = 500
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// peerState is the coordinator's view of one dwserve node.
type peerState struct {
	client   *Peer
	machine  string
	alive    bool
	counters *metrics.ClusterCounters
}

// PeerStatus is the JSON view of one peer.
type PeerStatus struct {
	Addr     string                  `json:"addr"`
	Machine  string                  `json:"machine,omitempty"`
	Alive    bool                    `json:"alive"`
	Counters metrics.ClusterSnapshot `json:"counters"`
}

// TrainRequest is a cluster training job: PerCluster model
// replication over a sharded dataset, combined every round with the
// workload's own sync mode.
type TrainRequest struct {
	// Model is the GLM spec's short name ("svm", "lr", ...).
	Model string `json:"model"`
	// Dataset is a dataset name registered on the coordinator; its
	// rows are sharded round-robin across the live peers.
	Dataset string `json:"dataset"`
	// MaxEpochs is the total per-shard epoch budget; 0 means 10.
	MaxEpochs int `json:"max_epochs,omitempty"`
	// TargetLoss stops the job early once the combined model's loss on
	// the union dataset reaches it; 0 runs MaxEpochs.
	TargetLoss float64 `json:"target_loss,omitempty"`
	// EpochsPerRound overrides the coordinator's combine cadence for
	// this job; 0 inherits Options.EpochsPerRound.
	EpochsPerRound int `json:"epochs_per_round,omitempty"`
	// Executor selects each peer's local backend; "" means simulated.
	Executor string `json:"executor,omitempty"`
	// Step, StepDecay and Seed pin each peer's SGD schedule; zero
	// values take the model defaults on the peers.
	Step      float64 `json:"step,omitempty"`
	StepDecay float64 `json:"step_decay,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
	// FixedOrder makes every peer traverse its shard in identity
	// order, which together with round-robin sharding makes a cluster
	// run bitwise comparable to a single-node PerNode run on the
	// union.
	FixedOrder bool `json:"fixed_order,omitempty"`
}

// Job states.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobStatus is the JSON view of a cluster job.
type JobStatus struct {
	ID      string       `json:"id"`
	State   string       `json:"state"`
	Request TrainRequest `json:"request"`
	// Round/Rounds report combine progress; Epoch is per-shard epochs
	// completed; Loss is the combined model's loss on the union.
	Round     int     `json:"round"`
	Rounds    int     `json:"rounds"`
	Epoch     int     `json:"epoch"`
	Loss      float64 `json:"loss"`
	Converged bool    `json:"converged"`
	// Shards maps shard index to the peer currently owning it.
	Shards []string `json:"shards,omitempty"`
	// ServedOn lists the ring nodes holding the final model.
	ServedOn  []string `json:"served_on,omitempty"`
	Failovers int      `json:"failovers"`
	Error     string   `json:"error,omitempty"`
}

// shard is one row partition and its training state.
type shard struct {
	idx     int
	rows    []appendRow
	owner   string // peer addr
	stream  string // dataset name holding the rows on the owner
	attempt int
	// snap is the shard's latest pulled replica; its Dataset names the
	// stream on the owner, which makes it the seed template for the
	// next round (warm_start fills the dataset from the snapshot).
	snap core.Snapshot
}

// clusterJob is the coordinator-side job record.
type clusterJob struct {
	id  string
	req TrainRequest

	mu        sync.Mutex
	state     string
	round     int
	rounds    int
	epoch     int
	loss      float64
	converged bool
	failovers int
	shards    []*shard
	servedOn  []string
	err       string
	final     core.Snapshot
	done      chan struct{}
}

// Coordinator drives PerCluster training and ring-based serving over
// a set of dwserve peers.
type Coordinator struct {
	opts Options
	ring *Ring

	mu    sync.Mutex
	peers map[string]*peerState
	jobs  map[string]*clusterJob
	order []string
}

// globalSeq numbers jobs and shard streams uniquely across every
// coordinator in the process: peers — and, for in-process peers, the
// shared data registry — see one stream namespace, so two
// coordinators must never mint the same name.
var globalSeq atomic.Int64

// NewCoordinator builds a coordinator with no peers.
func NewCoordinator(opts Options) *Coordinator {
	opts = opts.normalize()
	return &Coordinator{
		opts:  opts,
		ring:  NewRing(opts.RingVNodes),
		peers: map[string]*peerState{},
		jobs:  map[string]*clusterJob{},
	}
}

// Join handshakes with the peer at addr and adds it to the pool and
// the serving ring. Re-joining a known peer revives it.
func (c *Coordinator) Join(addr string) (PeerStatus, error) {
	p := NewPeer(addr, c.opts.PeerTimeout)
	jr, err := p.Join(c.opts.Name, c.opts.Advertise)
	if err != nil {
		return PeerStatus{}, err
	}
	c.mu.Lock()
	ps, ok := c.peers[p.Addr]
	if !ok {
		ps = &peerState{client: p, counters: &metrics.ClusterCounters{}}
		c.peers[p.Addr] = ps
	}
	ps.machine = jr.Machine
	ps.alive = true
	c.mu.Unlock()
	c.ring.Add(p.Addr)
	c.opts.Logf("peer %s joined (machine %s, %d datasets)", p.Addr, jr.Machine, len(jr.Datasets))
	return PeerStatus{Addr: p.Addr, Machine: jr.Machine, Alive: true}, nil
}

// Peers returns every known peer's status, sorted by address.
func (c *Coordinator) Peers() []PeerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PeerStatus, 0, len(c.peers))
	for addr, ps := range c.peers {
		out = append(out, PeerStatus{Addr: addr, Machine: ps.machine, Alive: ps.alive, Counters: ps.counters.Snapshot()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// alivePeers returns the live peer addresses, sorted for deterministic
// shard assignment.
func (c *Coordinator) alivePeers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.peers))
	for addr, ps := range c.peers {
		if ps.alive {
			out = append(out, addr)
		}
	}
	sort.Strings(out)
	return out
}

// markDead removes a peer from the live set and the serving ring.
func (c *Coordinator) markDead(addr string) {
	c.mu.Lock()
	if ps, ok := c.peers[addr]; ok {
		ps.alive = false
	}
	c.mu.Unlock()
	c.ring.Remove(addr)
	c.opts.Logf("peer %s marked dead", addr)
}

func (c *Coordinator) peer(addr string) *peerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peers[addr]
}

func nextSeq() int64 { return globalSeq.Add(1) }

// Train validates a cluster request, enqueues the job and returns its
// ID. The rounds run on a background goroutine; poll Status or block
// on Wait.
func (c *Coordinator) Train(req TrainRequest) (string, error) {
	spec, err := model.ByName(req.Model)
	if err != nil {
		return "", err
	}
	ds, err := data.ByName(req.Dataset)
	if err != nil {
		return "", err
	}
	if ds.Rows() == 0 {
		return "", fmt.Errorf("cluster: dataset %q has no rows", req.Dataset)
	}
	if req.MaxEpochs < 0 {
		return "", fmt.Errorf("cluster: negative max_epochs %d", req.MaxEpochs)
	}
	if req.MaxEpochs == 0 {
		req.MaxEpochs = 10
	}
	if len(c.alivePeers()) == 0 {
		return "", fmt.Errorf("cluster: no live peers (start dwserve with -peer-of, or POST /v1/cluster/join)")
	}
	j := &clusterJob{req: req, state: JobQueued, done: make(chan struct{})}
	j.id = fmt.Sprintf("cl-%d", nextSeq())
	c.mu.Lock()
	c.jobs[j.id] = j
	c.order = append(c.order, j.id)
	c.mu.Unlock()
	go c.runJob(j, spec, ds)
	return j.id, nil
}

// Status returns a job's current status.
func (c *Coordinator) Status(id string) (JobStatus, bool) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return j.status(), true
}

// Jobs lists every job's status, oldest first.
func (c *Coordinator) Jobs() []JobStatus {
	c.mu.Lock()
	ids := append([]string(nil), c.order...)
	c.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if st, ok := c.Status(id); ok {
			out = append(out, st)
		}
	}
	return out
}

// Wait blocks until the job terminates or the timeout elapses.
func (c *Coordinator) Wait(id string, timeout time.Duration) (JobStatus, error) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return JobStatus{}, fmt.Errorf("cluster: unknown job %q", id)
	}
	select {
	case <-j.done:
	case <-time.After(timeout):
		return j.status(), fmt.Errorf("cluster: job %s still %s after %v", id, j.status().State, timeout)
	}
	return j.status(), nil
}

// Model returns a finished job's combined model vector (read-only).
func (c *Coordinator) Model(id string) ([]float64, bool) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobDone {
		return nil, false
	}
	return j.final.X, true
}

func (j *clusterJob) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		State:     j.state,
		Request:   j.req,
		Round:     j.round,
		Rounds:    j.rounds,
		Epoch:     j.epoch,
		Loss:      j.loss,
		Converged: j.converged,
		ServedOn:  append([]string(nil), j.servedOn...),
		Failovers: j.failovers,
		Error:     j.err,
	}
	for _, sh := range j.shards {
		st.Shards = append(st.Shards, sh.owner)
	}
	return st
}

func (j *clusterJob) fail(err error) {
	j.mu.Lock()
	j.state = JobFailed
	j.err = err.Error()
	j.mu.Unlock()
	close(j.done)
}

// runJob drives one cluster job: shard, then round-train-combine
// until the epoch budget or the loss target is met, then place the
// final model on its ring owners.
func (c *Coordinator) runJob(j *clusterJob, spec model.Spec, ds *data.Dataset) {
	j.mu.Lock()
	j.state = JobRunning
	j.mu.Unlock()

	peers := c.alivePeers()
	if len(peers) == 0 {
		j.fail(fmt.Errorf("cluster: no live peers"))
		return
	}

	epochsPerRound := j.req.EpochsPerRound
	if epochsPerRound <= 0 {
		epochsPerRound = c.opts.EpochsPerRound
	}
	rounds := int(math.Ceil(float64(j.req.MaxEpochs) / float64(epochsPerRound)))
	if spec.Aggregate() {
		// One-pass aggregates restart their partials from zero each
		// run; a second warm-started round would fold the first's total
		// in again. One round of the full budget is both correct and
		// exactly the PerNode sharding layout one level up.
		rounds, epochsPerRound = 1, j.req.MaxEpochs
	}

	// Shard round-robin: shard k takes rows {i : i mod N == k} in
	// increasing order — the same assignment the engine's Sharding
	// strategy makes per worker under an identity traversal, so a
	// FixedOrder cluster run walks the exact row sequences of a
	// single-node PerNode run on the union.
	shards := make([]*shard, len(peers))
	for k, addr := range peers {
		shards[k] = &shard{idx: k, owner: addr}
	}
	for i := 0; i < ds.Rows(); i++ {
		idx, vals := ds.A.Row(i)
		row := appendRow{
			Indices: append([]int32(nil), idx...),
			Values:  append([]float64(nil), vals...),
		}
		if ds.Labels != nil {
			row.Label = ds.Labels[i]
		}
		sh := shards[i%len(shards)]
		sh.rows = append(sh.rows, row)
	}
	j.mu.Lock()
	j.shards = shards
	j.rounds = rounds
	j.mu.Unlock()

	task := "classification"
	if ds.Task == data.Regression {
		task = "regression"
	}
	for _, sh := range shards {
		if err := c.pushShard(j, sh, ds.Cols(), task); err != nil {
			if err = c.failover(j, sh, ds.Cols(), task, err); err != nil {
				j.fail(err)
				return
			}
		}
	}

	var combined []float64
	totalEpochs := 0
	for r := 1; r <= rounds; r++ {
		j.mu.Lock()
		j.round = r
		j.mu.Unlock()
		if c.opts.RoundHook != nil {
			c.opts.RoundHook(j.id, r)
		}
		target := epochsPerRound * r
		if target > j.req.MaxEpochs {
			target = j.req.MaxEpochs
		}
		var wg sync.WaitGroup
		errs := make([]error, len(shards))
		for i, sh := range shards {
			wg.Add(1)
			go func(i int, sh *shard) {
				defer wg.Done()
				errs[i] = c.runShardRound(j, sh, r, target, combined, ds.Cols(), task)
			}(i, sh)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				j.fail(err)
				return
			}
		}

		// Cluster combine is the engine's end-of-epoch combine one
		// level up: the workload's own Combine over the shard replicas
		// in shard order, written back as the next round's warm seeds.
		xs := make([][]float64, len(shards))
		for i, sh := range shards {
			xs[i] = sh.snap.X
		}
		combined = make([]float64, ds.Cols())
		spec.Combine(xs, combined)
		totalEpochs = target
		loss := spec.Loss(ds, combined)
		j.mu.Lock()
		j.epoch = totalEpochs
		j.loss = loss
		j.mu.Unlock()
		c.opts.Logf("job %s round %d/%d: epoch %d, union loss %.6g", j.id, r, rounds, totalEpochs, loss)
		if j.req.TargetLoss > 0 && loss <= j.req.TargetLoss {
			j.mu.Lock()
			j.converged = true
			j.mu.Unlock()
			break
		}
	}

	// The final combined model, stamped with the union dataset's name,
	// goes to its ring owner and the next successors — PerCluster's
	// serving half. The coordinator keeps a copy for Status/Model.
	final := shards[0].snap
	final.Dataset = j.req.Dataset
	final.X = combined
	final.Epoch = totalEpochs
	final.DataRows, final.DataVersion = 0, 0
	modelID := j.id
	owners := c.ring.Owners(modelID, c.opts.ReplicateModels)
	var served []string
	for _, addr := range owners {
		ps := c.peer(addr)
		if ps == nil {
			continue
		}
		n, err := ps.client.PushReplica(modelID, final)
		if err != nil {
			c.markDead(addr)
			continue
		}
		ps.counters.ReplicaPush(n)
		served = append(served, addr)
	}
	if len(served) == 0 && len(owners) > 0 {
		j.fail(fmt.Errorf("cluster: no ring node accepted model %s", modelID))
		return
	}
	j.mu.Lock()
	j.state = JobDone
	j.final = final
	j.servedOn = served
	j.mu.Unlock()
	close(j.done)
}

// pushShard ships a shard's rows to its owner under a fresh stream
// name.
func (c *Coordinator) pushShard(j *clusterJob, sh *shard, cols int, task string) error {
	sh.stream = fmt.Sprintf("%s-s%d-v%d", j.id, sh.idx, nextSeq())
	ps := c.peer(sh.owner)
	if ps == nil || !ps.alive {
		return fmt.Errorf("cluster: shard %d owner %s is not alive", sh.idx, sh.owner)
	}
	for lo := 0; lo < len(sh.rows); lo += c.opts.ShardChunk {
		hi := lo + c.opts.ShardChunk
		if hi > len(sh.rows) {
			hi = len(sh.rows)
		}
		n, err := ps.client.Append(sh.stream, sh.rows[lo:hi], cols, task)
		if err != nil {
			return err
		}
		ps.counters.ShardPush(hi-lo, n)
	}
	c.opts.Logf("job %s shard %d: %d rows -> %s as %s", j.id, sh.idx, len(sh.rows), sh.owner, sh.stream)
	return nil
}

// runShardRound trains one shard for one round on its owner, failing
// over to a surviving peer (re-pushing the shard, resuming from the
// last combined seed) when the owner errors or dies mid-round.
func (c *Coordinator) runShardRound(j *clusterJob, sh *shard, round, targetEpochs int, combined []float64, cols int, task string) error {
	for {
		err := c.trainShardOnce(j, sh, round, targetEpochs, combined)
		if err == nil {
			return nil
		}
		if err = c.failover(j, sh, cols, task, err); err != nil {
			return err
		}
	}
}

func (c *Coordinator) trainShardOnce(j *clusterJob, sh *shard, round, targetEpochs int, combined []float64) error {
	ps := c.peer(sh.owner)
	if ps == nil || !ps.alive {
		return fmt.Errorf("cluster: shard %d owner %s is not alive", sh.idx, sh.owner)
	}
	var req serve.TrainRequest
	if round == 1 {
		// Cold round: force the peer plan outright. One worker,
		// PerMachine (the peer holds exactly one replica of the
		// PerCluster model), Sharding over its local stream.
		req = serve.TrainRequest{
			Model:      j.req.Model,
			Dataset:    sh.stream,
			Access:     "row",
			Executor:   j.req.Executor,
			ModelRep:   "permachine",
			DataRep:    "sharding",
			Workers:    1,
			Step:       j.req.Step,
			StepDecay:  j.req.StepDecay,
			Seed:       j.req.Seed,
			FixedOrder: j.req.FixedOrder,
			MaxEpochs:  targetEpochs,
		}
	} else {
		// Warm round: seed the peer with the combined model under the
		// shard's own snapshot as template — its Dataset names the
		// shard stream on this owner, which is what warm_start resumes
		// on. The engine restores step/epoch from the snapshot, so the
		// decay schedule continues exactly where the combine
		// interrupted it.
		seed := sh.snap
		seed.Dataset = sh.stream
		seed.X = combined
		seed.DataRows, seed.DataVersion = 0, 0
		seedID := fmt.Sprintf("%s-seed-r%d-s%d-a%d", j.id, round, sh.idx, sh.attempt)
		n, err := ps.client.PushReplica(seedID, seed)
		if err != nil {
			return err
		}
		ps.counters.ReplicaPush(n)
		req = serve.TrainRequest{WarmStart: seedID, MaxEpochs: targetEpochs}
	}
	jobID, err := ps.client.Train(req)
	if err != nil {
		return err
	}
	st, err := ps.client.WaitJob(jobID, c.opts.RoundTimeout)
	if err != nil {
		return err
	}
	snap, n, err := ps.client.PullReplica(jobID)
	if err != nil {
		return err
	}
	ps.counters.ReplicaPull(n)
	ps.counters.Round(st.Epoch - sh.snap.Epoch)
	sh.snap = snap
	return nil
}

// failover reassigns a shard after cause: its owner leaves the live
// set and the ring, the rows are re-pushed (the coordinator holds the
// dataset) to the next survivor under a fresh stream name, and the
// caller retries the round there — resuming from the job's last
// combined checkpoint, which the coordinator already holds.
func (c *Coordinator) failover(j *clusterJob, sh *shard, cols int, task string, cause error) error {
	c.markDead(sh.owner)
	c.opts.Logf("job %s shard %d: owner %s failed (%v); reassigning", j.id, sh.idx, sh.owner, cause)
	peers := c.alivePeers()
	if len(peers) == 0 {
		return fmt.Errorf("cluster: shard %d lost its owner and no peers remain: %w", sh.idx, cause)
	}
	sh.owner = peers[sh.idx%len(peers)]
	sh.attempt++
	j.mu.Lock()
	j.failovers++
	j.mu.Unlock()
	if ps := c.peer(sh.owner); ps != nil {
		ps.counters.Failover()
	}
	return c.pushShard(j, sh, cols, task)
}

// Predict proxies a prediction to the ring owner of modelID, walking
// the ring successors when a node is unreachable. Returns the
// predictions and the address that answered.
func (c *Coordinator) Predict(modelID string, examples []Example) ([]float64, string, error) {
	owners := c.ring.Owners(modelID, c.ring.Len())
	if len(owners) == 0 {
		return nil, "", fmt.Errorf("cluster: no live peers on the ring")
	}
	var lastErr error
	for i, addr := range owners {
		ps := c.peer(addr)
		if ps == nil || !ps.alive {
			continue
		}
		preds, err := ps.client.Predict(modelID, examples)
		if err != nil {
			lastErr = err
			continue
		}
		ps.counters.ProxiedPredict()
		if i > 0 {
			ps.counters.ProxyFallback()
		}
		return preds, addr, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: no live ring node for model %s", modelID)
	}
	return nil, "", lastErr
}
