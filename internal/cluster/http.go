package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"time"
)

// Handler is the coordinator's HTTP front end.
//
//	POST /v1/cluster/join   {"addr": "host:port"} — register a peer
//	GET  /v1/cluster/peers  — peer pool with per-peer counters
//	POST /v1/train          — submit a cluster TrainRequest
//	GET  /v1/jobs           — list cluster jobs
//	GET  /v1/jobs/{id}      — one job's status
//	POST /v1/predict        — proxy to the model's ring owner
//	GET  /metrics           — Prometheus text exposition
type Handler struct {
	coord   *Coordinator
	mux     *http.ServeMux
	maxBody int64
	started time.Time
}

// NewHandler wraps a coordinator. maxBody caps request bodies in
// bytes (0 means 16 MiB; negative disables the cap — predict proxies
// are small, datasets enter via the coordinator process, not this
// API).
func NewHandler(c *Coordinator, maxBody int64) *Handler {
	if maxBody == 0 {
		maxBody = 16 << 20
	}
	h := &Handler{coord: c, mux: http.NewServeMux(), maxBody: maxBody, started: time.Now()}
	h.mux.HandleFunc("POST /v1/cluster/join", h.handleJoin)
	h.mux.HandleFunc("GET /v1/cluster/peers", h.handlePeers)
	h.mux.HandleFunc("POST /v1/train", h.handleTrain)
	h.mux.HandleFunc("GET /v1/jobs", h.handleJobs)
	h.mux.HandleFunc("GET /v1/jobs/{id}", h.handleJob)
	h.mux.HandleFunc("POST /v1/predict", h.handlePredict)
	h.mux.HandleFunc("GET /metrics", h.handleMetrics)
	return h
}

func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.maxBody > 0 && r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, h.maxBody)
	}
	h.mux.ServeHTTP(w, r)
}

func (h *Handler) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (h *Handler) writeError(w http.ResponseWriter, code int, err error) {
	h.writeJSON(w, code, errorResponse{Error: err.Error()})
}

func (h *Handler) decodeJSON(w http.ResponseWriter, r *http.Request, v any, what string) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			h.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("%s body exceeds the %d-byte limit", what, tooBig.Limit))
			return false
		}
		h.writeError(w, http.StatusBadRequest, fmt.Errorf("bad %s request: %w", what, err))
		return false
	}
	return true
}

func (h *Handler) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Addr string `json:"addr"`
	}
	if !h.decodeJSON(w, r, &req, "join") {
		return
	}
	if strings.TrimSpace(req.Addr) == "" {
		h.writeError(w, http.StatusBadRequest, fmt.Errorf("join requires addr"))
		return
	}
	ps, err := h.coord.Join(req.Addr)
	if err != nil {
		h.writeError(w, http.StatusBadGateway, err)
		return
	}
	h.writeJSON(w, http.StatusOK, ps)
}

func (h *Handler) handlePeers(w http.ResponseWriter, r *http.Request) {
	h.writeJSON(w, http.StatusOK, struct {
		Cluster string       `json:"cluster"`
		Peers   []PeerStatus `json:"peers"`
	}{h.coord.opts.Name, h.coord.Peers()})
}

func (h *Handler) handleTrain(w http.ResponseWriter, r *http.Request) {
	var req TrainRequest
	if !h.decodeJSON(w, r, &req, "train") {
		return
	}
	id, err := h.coord.Train(req)
	if err != nil {
		h.writeError(w, http.StatusBadRequest, err)
		return
	}
	h.writeJSON(w, http.StatusAccepted, trainResponse{JobID: id, Status: JobQueued})
}

func (h *Handler) handleJobs(w http.ResponseWriter, r *http.Request) {
	h.writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{h.coord.Jobs()})
}

func (h *Handler) handleJob(w http.ResponseWriter, r *http.Request) {
	st, ok := h.coord.Status(r.PathValue("id"))
	if !ok {
		h.writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	h.writeJSON(w, http.StatusOK, st)
}

func (h *Handler) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	if !h.decodeJSON(w, r, &req, "predict") {
		return
	}
	if req.Model == "" {
		h.writeError(w, http.StatusBadRequest, fmt.Errorf("predict requires model"))
		return
	}
	preds, addr, err := h.coord.Predict(req.Model, req.Examples)
	if err != nil {
		h.writeError(w, http.StatusBadGateway, err)
		return
	}
	h.writeJSON(w, http.StatusOK, struct {
		Model       string    `json:"model"`
		Peer        string    `json:"peer"`
		Predictions []float64 `json:"predictions"`
		Count       int       `json:"count"`
	}{req.Model, addr, preds, len(preds)})
}

// handleMetrics renders the Prometheus text exposition for the
// coordinator: pool/ring gauges plus every peer's cluster counters.
// (serve's exposition writer is unexported; the format is three line
// shapes, so the coordinator carries its own.)
func (h *Handler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	family := func(name, help, typ string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	esc := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	sample := func(name, peer string, v float64) {
		if peer != "" {
			fmt.Fprintf(&b, "%s{peer=%q} %g\n", name, esc.Replace(peer), v)
		} else {
			fmt.Fprintf(&b, "%s %g\n", name, v)
		}
	}

	peers := h.coord.Peers()
	alive := 0
	for _, p := range peers {
		if p.Alive {
			alive++
		}
	}
	family("dwcoord_peers", "Known peers in the pool.", "gauge")
	sample("dwcoord_peers", "", float64(len(peers)))
	family("dwcoord_peers_alive", "Peers currently on the serving ring.", "gauge")
	sample("dwcoord_peers_alive", "", float64(alive))
	family("dwcoord_uptime_seconds", "Seconds since the coordinator started.", "gauge")
	sample("dwcoord_uptime_seconds", "", math.Round(time.Since(h.started).Seconds()))

	jobs := h.coord.Jobs()
	byState := map[string]int{}
	for _, j := range jobs {
		byState[j.State]++
	}
	family("dwcoord_jobs", "Cluster jobs by state.", "gauge")
	for _, st := range []string{JobQueued, JobRunning, JobDone, JobFailed} {
		fmt.Fprintf(&b, "dwcoord_jobs{state=%q} %d\n", st, byState[st])
	}

	type counterCol struct {
		name, help string
		get        func(p PeerStatus) int64
	}
	cols := []counterCol{
		{"dwcoord_peer_rounds_total", "Training rounds completed per peer.", func(p PeerStatus) int64 { return p.Counters.Rounds }},
		{"dwcoord_peer_epochs_total", "Shard epochs trained per peer.", func(p PeerStatus) int64 { return p.Counters.Epochs }},
		{"dwcoord_peer_shard_rows_total", "Shard rows shipped to each peer.", func(p PeerStatus) int64 { return p.Counters.ShardRows }},
		{"dwcoord_peer_shard_bytes_total", "Shard bytes shipped to each peer.", func(p PeerStatus) int64 { return p.Counters.ShardBytes }},
		{"dwcoord_peer_replica_pulls_total", "Model replicas pulled from each peer.", func(p PeerStatus) int64 { return p.Counters.ReplicaPulls }},
		{"dwcoord_peer_replica_pushes_total", "Model replicas pushed to each peer.", func(p PeerStatus) int64 { return p.Counters.ReplicaPushes }},
		{"dwcoord_peer_replica_bytes_total", "Snapshot bytes moved to/from each peer.", func(p PeerStatus) int64 { return p.Counters.ReplicaBytes }},
		{"dwcoord_peer_failovers_total", "Shards absorbed from dead peers.", func(p PeerStatus) int64 { return p.Counters.Failovers }},
		{"dwcoord_peer_proxied_predicts_total", "Predictions proxied to each peer.", func(p PeerStatus) int64 { return p.Counters.ProxiedPreds }},
		{"dwcoord_peer_proxy_fallbacks_total", "Predictions answered as a ring successor.", func(p PeerStatus) int64 { return p.Counters.ProxyFallback }},
	}
	for _, col := range cols {
		family(col.name, col.help, "counter")
		for _, p := range peers {
			sample(col.name, p.Addr, float64(col.get(p)))
		}
	}
	_, _ = w.Write([]byte(b.String()))
}
