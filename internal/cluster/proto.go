package cluster

// Wire shapes for the peer API. Field names mirror the JSON the
// internal/serve handlers speak; model snapshots travel as the binary
// snapshot codec (CRC-validated on receipt), everything else as JSON.

// appendRow is one ingested example, in the append API's encoding.
type appendRow struct {
	Indices []int32   `json:"indices,omitempty"`
	Values  []float64 `json:"values,omitempty"`
	Dense   []float64 `json:"dense,omitempty"`
	Label   float64   `json:"label"`
}

// appendRequest ingests a chunk of rows into a (stream) dataset.
type appendRequest struct {
	Rows []appendRow `json:"rows"`
	Cols int         `json:"cols,omitempty"`
	Task string      `json:"task,omitempty"`
}

// appendResponse reports the view published by an append.
type appendResponse struct {
	Dataset  string `json:"dataset"`
	Version  uint64 `json:"version"`
	Rows     int    `json:"rows"`
	Appended int    `json:"appended"`
}

// joinRequest is the coordinator's handshake to a peer.
type joinRequest struct {
	Cluster     string `json:"cluster"`
	Coordinator string `json:"coordinator"`
}

// joinResponse is the peer's capability report.
type joinResponse struct {
	Machine  string   `json:"machine"`
	Datasets []string `json:"datasets"`
	Models   int      `json:"models"`
}

// trainResponse acknowledges a submitted peer job.
type trainResponse struct {
	JobID  string `json:"job_id"`
	Status string `json:"status"`
}

// errorResponse is the peer's JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// Example is one prediction input: a sparse (indices, values) pair or
// a dense feature vector. It is the coordinator API's input shape and
// the proxied peer request's.
type Example struct {
	Indices []int32   `json:"indices,omitempty"`
	Values  []float64 `json:"values,omitempty"`
	Dense   []float64 `json:"dense,omitempty"`
}

// predictRequest asks a peer for batched predictions.
type predictRequest struct {
	Model    string    `json:"model"`
	Examples []Example `json:"examples"`
}

// predictResponse carries one prediction per example, in order.
type predictResponse struct {
	Model       string    `json:"model"`
	Predictions []float64 `json:"predictions"`
	Count       int       `json:"count"`
}
