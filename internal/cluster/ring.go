// Package cluster extends the replication hierarchy one level past a
// machine: a coordinator shards a named dataset across dwserve peers,
// drives epoch-synchronous rounds where every peer trains its shard
// under a forced local plan, and combines the returned model replicas
// with the workload's own SyncAverage/SyncAggregate semantics — the
// PerNode averaging code path, one level up (the paper's tradeoffs at
// PerCluster scale). Serving consistent-hashes the model namespace
// across peers; the coordinator proxies predicts to the ring owner and
// walks successors when a node is unreachable.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// defaultVNodes is the virtual-node count per peer; enough that three
// peers split a model namespace within a few percent of evenly.
const defaultVNodes = 64

// Ring is a consistent-hash ring over peer addresses. All methods are
// safe for concurrent use.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	// hashes is the sorted vnode positions; owner maps each position
	// back to its peer.
	hashes []uint64
	owner  map[uint64]string
	nodes  map[string]bool
}

// NewRing builds an empty ring with vnodes virtual nodes per peer
// (0 means the default).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	return &Ring{vnodes: vnodes, owner: map[uint64]string{}, nodes: map[string]bool{}}
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	// FNV barely avalanches on short, similar keys ("peer#0",
	// "peer#1", ...): their hashes land in one tight band, which on a
	// ring means one peer owning almost every key. Finish with a
	// splitmix64-style mixer so vnodes actually spread.
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add inserts a peer's virtual nodes. Adding a present peer is a
// no-op.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		h := ringHash(fmt.Sprintf("%s#%d", node, i))
		if _, taken := r.owner[h]; taken {
			continue // vanishingly unlikely 64-bit collision; skip the vnode
		}
		r.owner[h] = node
		r.hashes = append(r.hashes, h)
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
}

// Remove deletes a peer's virtual nodes; its key range falls to the
// ring successors. Removing an absent peer is a no-op.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.hashes[:0]
	for _, h := range r.hashes {
		if r.owner[h] == node {
			delete(r.owner, h)
			continue
		}
		kept = append(kept, h)
	}
	r.hashes = kept
}

// Nodes returns the current peers, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of peers on the ring.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Owners returns up to n distinct peers responsible for key, in ring
// order: the owner first, then the successors a caller falls back to
// when the owner is unreachable (and where replicated models live).
func (r *Ring) Owners(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.hashes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := ringHash(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; len(out) < n && i < len(r.hashes); i++ {
		node := r.owner[r.hashes[(start+i)%len(r.hashes)]]
		if !seen[node] {
			seen[node] = true
			out = append(out, node)
		}
	}
	return out
}

// Owner returns the single peer responsible for key, or "" on an
// empty ring.
func (r *Ring) Owner(key string) string {
	o := r.Owners(key, 1)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}
