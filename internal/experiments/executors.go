package experiments

import (
	"fmt"
	"time"

	"dimmwitted/internal/core"
	"dimmwitted/internal/data"
	"dimmwitted/internal/factor"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

// ExecWallEntry is one executor-comparison measurement, JSON-shaped
// for the benchmark smoke artifact (BENCH_parallel.json, written by
// the BenchmarkFig6Executors smoke step in CI).
type ExecWallEntry struct {
	Model               string  `json:"model"`
	Dataset             string  `json:"dataset"`
	Executor            string  `json:"executor"`
	Plan                string  `json:"plan"`
	Epochs              int     `json:"epochs"`
	WallSecondsPerEpoch float64 `json:"wall_seconds_per_epoch"`
	FinalLoss           float64 `json:"final_loss"`
	// Error records a task/backend combination that failed to plan or
	// build, so the artifact never silently omits coverage.
	Error string `json:"error,omitempty"`
}

// ExecWallEntries runs the same optimizer-chosen row-wise plans on
// both execution backends and measures real wall-clock epoch times.
// Unlike every other experiment in this package, the object of study
// is not the simulated clock: this is the one place the repository
// measures how long an epoch of the engine actually takes, seeding the
// wall-clock benchmark trajectory.
func ExecWallEntries(quick bool) []ExecWallEntry {
	epochs := 8
	if quick {
		epochs = 2
	}
	// The sparse text tasks run at the replicated-Reuters scale: large
	// enough that an epoch's real step work dominates the parallel
	// backend's orchestration (pool wakeup, steal cursors, barrier), so
	// the comparison measures executors rather than fixed overheads.
	tasks := []struct {
		spec model.Spec
		ds   *data.Dataset
	}{
		{model.NewSVM(), data.ReutersReplicated()},
		{model.NewLR(), data.ReutersReplicated()},
		{model.NewLS(), data.MusicRegressionReplicated()},
	}
	var out []ExecWallEntry
	for _, task := range tasks {
		for _, exec := range []core.ExecutorKind{core.ExecSimulated, core.ExecParallel} {
			entry := ExecWallEntry{
				Model:    task.spec.Name(),
				Dataset:  task.ds.Name,
				Executor: exec.String(),
			}
			plan, err := core.ChooseExecutor(task.spec, task.ds, numa.Local2, exec)
			var eng *core.Engine
			if err == nil {
				eng, err = core.New(task.spec, task.ds, plan)
			}
			if err != nil {
				entry.Error = err.Error()
				out = append(out, entry)
				continue
			}
			start := time.Now()
			res := eng.RunToLoss(0, epochs)
			wall := time.Since(start)
			entry.Plan = plan.String()
			entry.Epochs = res.Epochs
			entry.WallSecondsPerEpoch = wall.Seconds() / float64(res.Epochs)
			entry.FinalLoss = res.FinalLoss
			out = append(out, entry)
		}
	}
	return out
}

// GibbsWallEntry is one Gibbs executor-comparison measurement,
// JSON-shaped for the benchmark smoke artifact (BENCH_gibbs.json,
// written by the BenchmarkGibbsExecutors smoke step in CI).
type GibbsWallEntry struct {
	Graph         string  `json:"graph"`
	ModelRep      string  `json:"model_rep"`
	Executor      string  `json:"executor"`
	Plan          string  `json:"plan"`
	Sweeps        int     `json:"sweeps"`
	Samples       int     `json:"samples"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	// MaxAbsError is the largest deviation of the pooled marginals
	// from the exact ones, reported only when the graph is small
	// enough for exact inference (it is omitted at benchmark scale).
	MaxAbsError float64 `json:"max_abs_error,omitempty"`
	Error       string  `json:"error,omitempty"`
}

// GibbsWallEntries runs the same Gibbs chain placements on both
// execution backends and measures real wall-clock sampling throughput
// on the benchmark-scale paleo-xl graph (20k variables), where a
// sweep's sampling work amortizes the parallel backend's pool and
// barrier costs. Exact inference is 2^vars, so the marginal-quality
// column is only filled in when the graph happens to be tractable;
// statistical validity at this scale is covered by the sim-vs-parallel
// marginal-parity tests on the small validation graphs.
func GibbsWallEntries(quick bool) []GibbsWallEntry {
	sweeps := 30
	if quick {
		sweeps = 8
	}
	g, err := factor.GraphByName("paleo-xl")
	if err != nil {
		return []GibbsWallEntry{{Graph: "paleo-xl", Error: err.Error()}}
	}
	exact, exactErr := factor.ExactMarginals(g)
	placements := []struct {
		name string
		plan core.Plan
	}{
		{"PerMachine", core.Plan{ModelRep: core.PerMachine, DataRep: core.Sharding, Seed: 1}},
		{"PerNode", core.Plan{ModelRep: core.PerNode, DataRep: core.FullReplication, Seed: 1}},
	}
	var out []GibbsWallEntry
	for _, pl := range placements {
		for _, exec := range []core.ExecutorKind{core.ExecSimulated, core.ExecParallel} {
			entry := GibbsWallEntry{Graph: g.Name, ModelRep: pl.name, Executor: exec.String()}
			plan := pl.plan
			plan.Executor = exec
			eng, err := core.NewWorkload(factor.NewWorkload(g), plan)
			if err != nil {
				entry.Error = err.Error()
				out = append(out, entry)
				continue
			}
			start := time.Now()
			samples := 0
			for _, er := range eng.RunEpochs(sweeps) {
				samples += er.Steps
			}
			wall := time.Since(start)
			if exactErr == nil {
				var maxErr float64
				for v, p := range eng.Model() {
					if d := p - exact[v]; d > maxErr {
						maxErr = d
					} else if -d > maxErr {
						maxErr = -d
					}
				}
				entry.MaxAbsError = maxErr
			}
			entry.Plan = eng.Plan().String()
			entry.Sweeps = sweeps
			entry.Samples = samples
			entry.SamplesPerSec = float64(samples) / wall.Seconds()
			out = append(out, entry)
		}
	}
	return out
}

// ExecWall renders the executor comparison as a paper-style table.
// Metrics report each task's final losses per backend so the harness
// can assert simulated/parallel statistical parity.
func ExecWall(quick bool) *Result {
	return ExecWallResult(ExecWallEntries(quick))
}

// ExecWallResult builds the table/metrics view of measurements taken
// by ExecWallEntries, so callers that also persist the raw entries
// (dwbench -executors -out) measure exactly once and report one
// consistent set of numbers.
func ExecWallResult(entries []ExecWallEntry) *Result {
	t := &Table{
		Name:   "execwall",
		Title:  "simulated vs parallel executor: wall-clock epoch time, identical plans",
		Header: []string{"model", "dataset", "executor", "plan", "epochs", "wall s/epoch", "final loss"},
		Notes:  "both backends share the engine's partition/replication/combine path; losses should agree, wall time is what the parallel backend buys",
	}
	metrics := map[string]float64{}
	for _, e := range entries {
		if e.Error != "" {
			t.Rows = append(t.Rows, []string{e.Model, e.Dataset, e.Executor, "ERROR: " + e.Error, "-", "-", "-"})
			continue
		}
		t.Rows = append(t.Rows, []string{
			e.Model, e.Dataset, e.Executor, e.Plan,
			fmt.Sprintf("%d", e.Epochs),
			fmt.Sprintf("%.4f", e.WallSecondsPerEpoch),
			fmt.Sprintf("%.6g", e.FinalLoss),
		})
		metrics[fmt.Sprintf("%s_%s_loss", e.Model, e.Executor)] = e.FinalLoss
		metrics[fmt.Sprintf("%s_%s_wall_s", e.Model, e.Executor)] = e.WallSecondsPerEpoch
	}
	return &Result{Table: t, Metrics: metrics}
}

// GibbsWallResult builds the table/metrics view of measurements taken
// by GibbsWallEntries, mirroring ExecWallResult for the sampling
// benchmark.
func GibbsWallResult(entries []GibbsWallEntry) *Result {
	t := &Table{
		Name:   "gibbswall",
		Title:  "simulated vs parallel executor: Gibbs sampling throughput, identical plans",
		Header: []string{"graph", "model rep", "executor", "plan", "sweeps", "samples/s", "max abs err"},
		Notes:  "PerMachine shares one chain across workers (Hogwild!-Gibbs); PerNode pools independent chains; samples/s is what the parallel backend buys",
	}
	metrics := map[string]float64{}
	for _, e := range entries {
		if e.Error != "" {
			t.Rows = append(t.Rows, []string{e.Graph, e.ModelRep, e.Executor, "ERROR: " + e.Error, "-", "-", "-"})
			continue
		}
		errCol := "-"
		if e.MaxAbsError != 0 {
			errCol = fmt.Sprintf("%.4f", e.MaxAbsError)
		}
		t.Rows = append(t.Rows, []string{
			e.Graph, e.ModelRep, e.Executor, e.Plan,
			fmt.Sprintf("%d", e.Sweeps),
			fmt.Sprintf("%.0f", e.SamplesPerSec),
			errCol,
		})
		metrics[fmt.Sprintf("gibbs_%s_%s_samples_per_sec", e.ModelRep, e.Executor)] = e.SamplesPerSec
	}
	return &Result{Table: t, Metrics: metrics}
}

// SpeedupRow summarises one task's parallel-vs-simulated comparison.
// Speedup > 1 means the real-concurrency backend won; Metric names the
// quantity the Simulated/Parallel columns carry.
type SpeedupRow struct {
	Task      string  `json:"task"`
	Metric    string  `json:"metric"`
	Simulated float64 `json:"simulated"`
	Parallel  float64 `json:"parallel"`
	Speedup   float64 `json:"speedup"`
}

// ExecSpeedups pairs the GLM wall-clock entries by task and reports
// the parallel backend's epoch-throughput speedup (simulated wall time
// over parallel wall time). Errored or incomplete pairs are skipped.
func ExecSpeedups(entries []ExecWallEntry) []SpeedupRow {
	type pair struct{ sim, par float64 }
	var order []string
	pairs := map[string]*pair{}
	for _, e := range entries {
		if e.Error != "" || e.WallSecondsPerEpoch <= 0 {
			continue
		}
		key := e.Model + "/" + e.Dataset
		p, ok := pairs[key]
		if !ok {
			p = &pair{}
			pairs[key] = p
			order = append(order, key)
		}
		switch e.Executor {
		case core.ExecSimulated.String():
			p.sim = e.WallSecondsPerEpoch
		case core.ExecParallel.String():
			p.par = e.WallSecondsPerEpoch
		}
	}
	var out []SpeedupRow
	for _, key := range order {
		p := pairs[key]
		if p.sim <= 0 || p.par <= 0 {
			continue
		}
		out = append(out, SpeedupRow{
			Task: key, Metric: "wall_s_per_epoch",
			Simulated: p.sim, Parallel: p.par, Speedup: p.sim / p.par,
		})
	}
	return out
}

// GibbsSpeedups pairs the Gibbs throughput entries by placement and
// reports the parallel backend's samples-per-second speedup.
func GibbsSpeedups(entries []GibbsWallEntry) []SpeedupRow {
	type pair struct{ sim, par float64 }
	var order []string
	pairs := map[string]*pair{}
	for _, e := range entries {
		if e.Error != "" || e.SamplesPerSec <= 0 {
			continue
		}
		key := e.Graph + "/" + e.ModelRep
		p, ok := pairs[key]
		if !ok {
			p = &pair{}
			pairs[key] = p
			order = append(order, key)
		}
		switch e.Executor {
		case core.ExecSimulated.String():
			p.sim = e.SamplesPerSec
		case core.ExecParallel.String():
			p.par = e.SamplesPerSec
		}
	}
	var out []SpeedupRow
	for _, key := range order {
		p := pairs[key]
		if p.sim <= 0 || p.par <= 0 {
			continue
		}
		out = append(out, SpeedupRow{
			Task: key, Metric: "samples_per_sec",
			Simulated: p.sim, Parallel: p.par, Speedup: p.par / p.sim,
		})
	}
	return out
}
