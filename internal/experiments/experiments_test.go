package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// run executes a driver in quick mode and sanity-checks its table.
func run(t *testing.T, name string) *Result {
	t.Helper()
	drv, ok := Lookup(name)
	if !ok {
		t.Fatalf("no driver %q", name)
	}
	res := drv(true)
	if res.Table == nil || len(res.Table.Rows) == 0 {
		t.Fatalf("%s produced an empty table", name)
	}
	var buf bytes.Buffer
	res.Table.Fprint(&buf)
	if !strings.Contains(buf.String(), name) {
		t.Errorf("%s table print lacks its name", name)
	}
	return res
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig6", "fig7a", "fig7b", "fig8a", "fig8b", "fig9a", "fig9b",
		"fig11", "fig12a", "fig12b", "fig13", "fig14", "fig15", "fig16a", "fig16b",
		"fig17a", "fig17b", "fig20", "fig21", "fig22", "appA", "execwall"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, w := range want {
		if reg[i].Name != w {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].Name, w)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup(nope) succeeded")
	}
}

func TestFig6CostModel(t *testing.T) {
	res := run(t, "fig6")
	// The LP incidence matrix has n_i = 2, so Σnᵢ² = 2·Σnᵢ exactly.
	if got, want := res.Metrics["sumN2/amazon-lp"], 2*res.Metrics["sumN/amazon-lp"]; got != want {
		t.Errorf("amazon Σnᵢ² = %v, want %v", got, want)
	}
	// Text data has skewed rows: Σnᵢ² >> Σnᵢ.
	if res.Metrics["sumN2/rcv1"] < 10*res.Metrics["sumN/rcv1"] {
		t.Error("rcv1 Σnᵢ² not much larger than Σnᵢ")
	}
}

func TestFig7aStatisticalEfficiencyComparable(t *testing.T) {
	res := run(t, "fig7a")
	// Both methods converge on the SVM tasks and their epoch counts
	// are within an order of magnitude (paper: within ~50%).
	for _, label := range []string{"SVM1 (rcv1)", "SVM2 (reuters)"} {
		row := res.Metrics["rowEpochs/"+label]
		col := res.Metrics["colEpochs/"+label]
		if row <= 0 || col <= 0 {
			t.Fatalf("%s: nonpositive epochs %v/%v", label, row, col)
		}
		ratio := row / col
		if ratio < 0.1 || ratio > 10 {
			t.Errorf("%s: row/col epoch ratio %v outside [0.1, 10]", label, ratio)
		}
	}
}

func TestFig7bCrossover(t *testing.T) {
	res := run(t, "fig7b")
	mid := res.Metrics["rowOverCol/0.10"]
	dense := res.Metrics["rowOverCol/1.00"]
	if !(mid > 1) {
		t.Errorf("at 10%% density row/col = %v, want > 1 (column wins)", mid)
	}
	if !(dense < 1) {
		t.Errorf("at full density row/col = %v, want < 1 (row wins)", dense)
	}
	// The cost-model ratio moves the same direction.
	if res.Metrics["costRatio/0.10"] <= res.Metrics["costRatio/1.00"] {
		t.Error("cost ratio not decreasing with density")
	}
}

func TestFig8aEpochOrdering(t *testing.T) {
	res := run(t, "fig8a")
	pm := res.Metrics["epochs/PerMachine/10"]
	pn := res.Metrics["epochs/PerNode/10"]
	pc := res.Metrics["epochs/PerCore/10"]
	if !(pm <= pn && pn <= pc) {
		t.Errorf("epoch ordering violated: PerMachine %v, PerNode %v, PerCore %v", pm, pn, pc)
	}
}

func TestFig8bEpochTimeGap(t *testing.T) {
	res := run(t, "fig8b")
	if r := res.Metrics["perMachineOverPerNode"]; r < 5 {
		t.Errorf("PerMachine/PerNode epoch time = %v, want >= 5 (paper ~23)", r)
	}
	if res.Metrics["epochTime/PerCore"] >= res.Metrics["epochTime/PerNode"] {
		t.Error("PerCore epoch not cheaper than PerNode")
	}
}

func TestFig9aFullReplicationEpochs(t *testing.T) {
	res := run(t, "fig9a")
	if res.Metrics["epochs/FullReplication/10"] > res.Metrics["epochs/Sharding/10"] {
		t.Errorf("FullRepl epochs (%v) above Sharding (%v) at 10%%",
			res.Metrics["epochs/FullReplication/10"], res.Metrics["epochs/Sharding/10"])
	}
}

func TestFig9bEpochCostScalesWithNodes(t *testing.T) {
	res := run(t, "fig9b")
	r2 := res.Metrics["ratio/local2"]
	r8 := res.Metrics["ratio/local8"]
	if r2 < 1.5 || r2 > 3 {
		t.Errorf("local2 FullRepl/Sharding = %v, want ~2", r2)
	}
	if r8 <= r2 {
		t.Errorf("ratio not growing with nodes: local2 %v, local8 %v", r2, r8)
	}
}

func TestFig11DimmWittedWins(t *testing.T) {
	res := run(t, "fig11")
	for _, task := range []string{"SVM/Reuters", "LS/Forest", "LP/Amazon"} {
		dw := res.Metrics["t50/"+task+"/DimmWitted"]
		if dw <= 0 {
			t.Fatalf("%s: no DW time", task)
		}
		for _, sys := range []string{"GraphLab", "GraphChi", "MLlib", "Hogwild!"} {
			other, ok := res.Metrics["t50/"+task+"/"+sys]
			if !ok {
				continue
			}
			if dw > other {
				t.Errorf("%s: DW (%vs) slower than %s (%vs) at 50%%", task, dw, sys, other)
			}
		}
	}
}

func TestFig12aAccessDominance(t *testing.T) {
	res := run(t, "fig12a")
	// SVM: row-wise reaches 10% faster than column.
	if res.Metrics["row/SVM/RCV1/10"] >= res.Metrics["col/SVM/RCV1/10"] {
		t.Errorf("SVM: row (%v) not faster than col (%v) at 10%%",
			res.Metrics["row/SVM/RCV1/10"], res.Metrics["col/SVM/RCV1/10"])
	}
	// LP: row-wise fails to reach 1% (timeout), column reaches it.
	if res.Metrics["rowTimeout/LP/Amazon/1"] != 1 {
		t.Error("LP row-wise unexpectedly reached 1%")
	}
	if res.Metrics["col/LP/Amazon/1"] <= 0 {
		t.Error("LP column-wise never reached 1%")
	}
}

func TestFig12bModelRepDominance(t *testing.T) {
	res := run(t, "fig12b")
	// SVM at 50%: PerNode beats PerMachine.
	if res.Metrics["PerNode/SVM/RCV1/50"] >= res.Metrics["PerMachine/SVM/RCV1/50"] {
		t.Errorf("SVM: PerNode (%v) not faster than PerMachine (%v)",
			res.Metrics["PerNode/SVM/RCV1/50"], res.Metrics["PerMachine/SVM/RCV1/50"])
	}
	// LP at 1%: PerMachine beats PerNode.
	if res.Metrics["PerMachine/LP/Amazon/1"] >= res.Metrics["PerNode/LP/Amazon/1"] {
		t.Errorf("LP: PerMachine (%v) not faster than PerNode (%v)",
			res.Metrics["PerMachine/LP/Amazon/1"], res.Metrics["PerNode/LP/Amazon/1"])
	}
}

func TestFig13Throughput(t *testing.T) {
	res := run(t, "fig13")
	dw := res.Metrics["gbps/DimmWitted/parallel sum"]
	for _, sys := range []string{"GraphLab", "GraphChi", "MLlib", "Hogwild!"} {
		v, ok := res.Metrics["gbps/"+sys+"/parallel sum"]
		if !ok {
			continue
		}
		if dw < v {
			t.Errorf("parallel sum: DW (%v GB/s) below %s (%v)", dw, sys, v)
		}
	}
	hw := res.Metrics["gbps/Hogwild!/parallel sum"]
	if dw/hw < 1.2 {
		t.Errorf("DW/Hogwild sum throughput = %v, want >= 1.2 (paper: 1.6)", dw/hw)
	}
}

func TestFig14PlanChoices(t *testing.T) {
	res := run(t, "fig14")
	for _, label := range []string{"SVM/Reuters", "SVM/RCV1", "SVM/Music", "LR/RCV1", "LS/Music"} {
		if res.Metrics["row/"+label] != 1 {
			t.Errorf("%s not planned row-wise", label)
		}
	}
	for _, label := range []string{"LP/Amazon", "LP/Google", "QP/Amazon", "QP/Google"} {
		if res.Metrics["col/"+label] != 1 {
			t.Errorf("%s not planned column-wise", label)
		}
	}
}

func TestFig15RatioGrowsWithSockets(t *testing.T) {
	res := run(t, "fig15")
	if res.Metrics["svm/local8"] <= res.Metrics["svm/local2"] {
		t.Errorf("SVM row/col ratio flat: local2 %v, local8 %v",
			res.Metrics["svm/local2"], res.Metrics["svm/local8"])
	}
	if res.Metrics["lp/local8"] <= res.Metrics["lp/local2"] {
		t.Errorf("LP row/col ratio flat: local2 %v, local8 %v",
			res.Metrics["lp/local2"], res.Metrics["lp/local8"])
	}
}

func TestFig16aPerNodeAdvantageGrows(t *testing.T) {
	res := run(t, "fig16a")
	r2, r8 := res.Metrics["ratio/local2"], res.Metrics["ratio/local8"]
	if r2 <= 1 {
		t.Errorf("local2 PerMachine/PerNode = %v, want > 1", r2)
	}
	if r8 <= r2 {
		t.Errorf("advantage not growing: local2 %v, local8 %v", r2, r8)
	}
}

func TestFig16bSparsityCrossover(t *testing.T) {
	res := run(t, "fig16b")
	sparse := res.Metrics["ratio/0.01"]
	dense := res.Metrics["ratio/1.00"]
	if sparse >= dense {
		t.Errorf("ratio not increasing with density: 1%% %v vs 100%% %v", sparse, dense)
	}
	if dense <= 1 {
		t.Errorf("dense updates: PerMachine/PerNode = %v, want > 1", dense)
	}
	if sparse > 2 {
		t.Errorf("sparse updates: PerMachine/PerNode = %v, want near/below 1", sparse)
	}
}

func TestFig17aErrorLevelDependence(t *testing.T) {
	res := run(t, "fig17a")
	// At high error both strategies converge and Sharding is
	// competitive (ratio not far below 1); at low error only
	// FullReplication reaches the target — the paper's low-error
	// advantage in its strongest form.
	if ratio, ok := res.Metrics["ratio/400"]; ok && ratio > 3 {
		t.Errorf("FullRepl/Sharding at 400%% = %v, want competitive", ratio)
	}
	lowAdvantage := res.Metrics["fullOnly/50"] == 1 || res.Metrics["fullOnly/10"] == 1
	if ratio, ok := res.Metrics["ratio/50"]; ok && ratio < 1.05 {
		lowAdvantage = true
	}
	if ratio, ok := res.Metrics["ratio/10"]; ok && ratio < 1.05 {
		lowAdvantage = true
	}
	if !lowAdvantage {
		t.Error("no low-error FullReplication advantage observed")
	}
}

func TestFig17bExtensionSpeedups(t *testing.T) {
	res := run(t, "fig17b")
	if res.Metrics["gibbsSpeedup"] < 1.5 {
		t.Errorf("Gibbs speedup = %v, want >= 1.5 (paper ~4)", res.Metrics["gibbsSpeedup"])
	}
	if res.Metrics["nnSpeedup"] < 5 {
		t.Errorf("NN speedup = %v, want >= 5 (paper >10)", res.Metrics["nnSpeedup"])
	}
}

func TestFig20SpeedupShapes(t *testing.T) {
	res := run(t, "fig20")
	if res.Metrics["percore/12"] < res.Metrics["permachine/12"] {
		t.Errorf("PerCore speedup (%v) below PerMachine (%v) at 12 threads",
			res.Metrics["percore/12"], res.Metrics["permachine/12"])
	}
	if res.Metrics["percore/12"] < 6 {
		t.Errorf("PerCore speedup at 12 threads = %v, want near-linear", res.Metrics["percore/12"])
	}
}

func TestFig21LinearScaling(t *testing.T) {
	res := run(t, "fig21")
	t1 := res.Metrics["epochTime/0.10"]
	t10 := res.Metrics["epochTime/1.00"]
	if t10 <= t1 {
		t.Fatal("epoch time not growing with scale")
	}
	ratio := t10 / t1
	if ratio < 5 || ratio > 20 {
		t.Errorf("10x rows -> %vx time, want ~10x (linear)", ratio)
	}
}

func TestFig22ImportanceSampling(t *testing.T) {
	res := run(t, "fig22")
	// The 10% sample processes a tenth of the tuples, so it reaches
	// mid-range losses faster than the saturated variant.
	if res.Metrics["Imp10/50"] >= res.Metrics["Imp100/50"] {
		t.Errorf("Importance(10%%) at 50%% (%v) not faster than Importance(100%%) (%v)",
			res.Metrics["Imp10/50"], res.Metrics["Imp100/50"])
	}
}

func TestAppAMicroStudies(t *testing.T) {
	res := run(t, "appA")
	if res.Metrics["collocation"] < 1.1 {
		t.Errorf("NUMA collocation speedup = %v, want > 1.1 (paper: up to 2x)", res.Metrics["collocation"])
	}
	if res.Metrics["denseOnDense"] <= 1 {
		t.Errorf("dense storage on dense data speedup = %v, want > 1", res.Metrics["denseOnDense"])
	}
	if res.Metrics["sparseOnSparse"] <= 1 {
		t.Errorf("sparse storage on sparse data speedup = %v, want > 1", res.Metrics["sparseOnSparse"])
	}
}

func TestExecWallParity(t *testing.T) {
	res := run(t, "execwall")
	for _, m := range []string{"svm", "lr", "ls"} {
		sim, okSim := res.Metrics[m+"_simulated_loss"]
		par, okPar := res.Metrics[m+"_parallel_loss"]
		if !okSim || !okPar {
			t.Fatalf("%s: missing executor losses in %v", m, res.Metrics)
		}
		rel := math.Abs(sim-par) / math.Abs(sim)
		if rel > 0.25 {
			t.Errorf("%s: executors disagree after identical epochs: sim %v vs parallel %v", m, sim, par)
		}
		if res.Metrics[m+"_parallel_wall_s"] <= 0 {
			t.Errorf("%s: parallel run reported no wall time", m)
		}
	}
}

func TestStreamBench(t *testing.T) {
	entries := StreamEntries(true)
	if len(entries) == 0 {
		t.Fatal("no stream entries")
	}
	res := StreamResult(entries)
	if res.Table == nil || len(res.Table.Rows) != len(entries) {
		t.Fatalf("stream table has %d rows for %d entries", len(res.Table.Rows), len(entries))
	}
	for _, e := range entries {
		if e.Error != "" {
			t.Fatalf("%s: %s", e.Task, e.Error)
		}
		if e.RowsPerSecond <= 0 || e.PublishMillis <= 0 {
			t.Errorf("%s: degenerate measurements %+v", e.Task, e)
		}
		// One epoch per chunk on learnable labels must beat the
		// zero-model loss (1.0 hinge / log 2 logistic).
		if e.FinalLoss >= 0.9 {
			t.Errorf("%s: final loss %v — the online pipeline did not learn", e.Task, e.FinalLoss)
		}
	}
}
