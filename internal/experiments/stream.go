package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"dimmwitted/internal/core"
	"dimmwitted/internal/data"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

// StreamEntry is one streaming-ingestion measurement, JSON-shaped for
// BENCH_stream.json (written by the bench-smoke step in CI). The
// protocol mirrors the serving path: rows are appended chunk by chunk
// into a growable handle (append throughput), a row-wise engine adopts
// each published view between epochs (adopt latency), and after every
// chunk's epochs a candidate snapshot runs the shadow-evaluation gate
// — snapshot plus candidate-and-live held-out tail losses — which is
// the latency an online publication pays before the registry swap.
type StreamEntry struct {
	Task      string `json:"task"`
	Rows      int    `json:"rows"`
	Cols      int    `json:"cols"`
	Chunks    int    `json:"chunks"`
	ChunkRows int    `json:"chunk_rows"`
	NNZ       int64  `json:"nnz"`
	// AppendSeconds is the total wall clock of all appends;
	// RowsPerSecond and NNZPerSecond are the derived ingest rates.
	AppendSeconds float64 `json:"append_seconds"`
	RowsPerSecond float64 `json:"rows_per_second"`
	NNZPerSecond  float64 `json:"nnz_per_second"`
	// AdoptMillis is the mean latency of an engine adopting a grown
	// view (Engine.Grow: validate + swap + next-epoch repartition cost
	// is paid lazily, so this is the blocking part).
	AdoptMillis float64 `json:"adopt_ms"`
	// PublishMillis is the mean online-publication latency: snapshot
	// extraction plus the two shadow-eval losses on the held-out tail.
	PublishMillis float64 `json:"publish_ms"`
	// EpochsPerChunk and FinalLoss summarise the training that ran
	// between appends; the loss must come down or the harness measured
	// a broken pipeline.
	EpochsPerChunk int     `json:"epochs_per_chunk"`
	FinalLoss      float64 `json:"final_loss"`
	Error          string  `json:"error,omitempty"`
}

// streamBenchRows generates one chunk of synthetic sparse rows with
// labels from a fixed hidden model, the same shape the serve tests use.
func streamBenchRows(rng *rand.Rand, truth []float64, n int) []data.Row {
	cols := len(truth)
	rows := make([]data.Row, n)
	for i := range rows {
		nnz := 4 + rng.Intn(8)
		score := 0.0
		for k := 0; k < nnz; k++ {
			c := int32(rng.Intn(cols))
			v := rng.NormFloat64()
			rows[i].Indices = append(rows[i].Indices, c)
			rows[i].Values = append(rows[i].Values, v)
			score += v * truth[c]
		}
		if score >= 0 {
			rows[i].Label = 1
		} else {
			rows[i].Label = -1
		}
	}
	return rows
}

// runStreamEntry drives one configuration end to end.
func runStreamEntry(spec model.Spec, rows, cols, chunks, epochsPerChunk int) StreamEntry {
	entry := StreamEntry{
		Task:           spec.Name(),
		Rows:           rows,
		Cols:           cols,
		Chunks:         chunks,
		ChunkRows:      rows / chunks,
		EpochsPerChunk: epochsPerChunk,
	}
	rng := rand.New(rand.NewSource(7))
	truth := make([]float64, cols)
	for j := range truth {
		truth[j] = rng.NormFloat64()
	}
	h := data.NewStream("stream-bench", cols, data.Classification)

	// First chunk before the engine exists (an online job needs rows).
	chunkRows := rows / chunks
	appendStart := time.Now()
	if _, err := h.Append(streamBenchRows(rng, truth, chunkRows)); err != nil {
		entry.Error = err.Error()
		return entry
	}
	entry.AppendSeconds = time.Since(appendStart).Seconds()

	plan := core.Plan{
		Access:   model.RowWise,
		DataRep:  core.FullReplication,
		Machine:  numa.Local2,
		Executor: core.ExecSimulated,
	}
	eng, err := core.NewWorkload(core.NewGLM(spec, h.View()), plan)
	if err != nil {
		entry.Error = err.Error()
		return entry
	}
	defer eng.Close()

	var adopt, publish time.Duration
	var adopts, publishes int
	for c := 0; c < chunks; c++ {
		if c > 0 {
			start := time.Now()
			if _, err := h.Append(streamBenchRows(rng, truth, chunkRows)); err != nil {
				entry.Error = err.Error()
				return entry
			}
			entry.AppendSeconds += time.Since(start).Seconds()

			start = time.Now()
			if err := eng.Grow(h.View()); err != nil {
				entry.Error = err.Error()
				return entry
			}
			adopt += time.Since(start)
			adopts++
		}
		for e := 0; e < epochsPerChunk; e++ {
			eng.RunEpoch()
		}
		// The shadow-evaluation gate's latency: snapshot the candidate
		// and score candidate and live on the held-out tail.
		start := time.Now()
		snap := eng.Snapshot()
		tail := data.TailView(h.View(), 0.2)
		cand := spec.Loss(tail, snap.X)
		live := spec.Loss(tail, snap.X)
		publish += time.Since(start)
		publishes++
		if cand != live {
			entry.Error = "nondeterministic shadow eval"
			return entry
		}
		entry.FinalLoss = eng.Loss()
	}

	view := h.View()
	entry.Rows = view.Rows()
	entry.NNZ = view.NNZ()
	if entry.AppendSeconds > 0 {
		entry.RowsPerSecond = float64(view.Rows()) / entry.AppendSeconds
		entry.NNZPerSecond = float64(view.NNZ()) / entry.AppendSeconds
	}
	if adopts > 0 {
		entry.AdoptMillis = adopt.Seconds() * 1e3 / float64(adopts)
	}
	if publishes > 0 {
		entry.PublishMillis = publish.Seconds() * 1e3 / float64(publishes)
	}
	return entry
}

// StreamEntries runs the streaming-ingestion benchmark: chunked append
// throughput into the growable CSR store, grown-view adoption latency,
// and the shadow-evaluation cost an online publication pays.
func StreamEntries(quick bool) []StreamEntry {
	type cfg struct {
		spec                         model.Spec
		rows, cols, chunks, epochsPC int
	}
	cfgs := []cfg{
		{model.NewSVM(), 20000, 512, 10, 2},
		{model.NewLR(), 50000, 1024, 10, 1},
	}
	if quick {
		cfgs = []cfg{
			{model.NewSVM(), 4000, 256, 4, 1},
			{model.NewLR(), 8000, 512, 4, 1},
		}
	}
	var out []StreamEntry
	for _, c := range cfgs {
		out = append(out, runStreamEntry(c.spec, c.rows, c.cols, c.chunks, c.epochsPC))
	}
	return out
}

// StreamResult builds the table view of measurements taken by
// StreamEntries.
func StreamResult(entries []StreamEntry) *Result {
	t := &Table{
		Name:   "stream",
		Title:  "streaming ingestion: chunked append throughput and online publication latency",
		Header: []string{"task", "rows", "cols", "chunks", "rows/s", "nnz/s", "adopt ms", "publish ms", "final loss"},
		Notes:  "publish ms is the shadow-eval gate (snapshot + 2 tail losses); the registry swap itself is an atomic pointer store",
	}
	metrics := map[string]float64{}
	for _, e := range entries {
		if e.Error != "" {
			t.Rows = append(t.Rows, []string{e.Task, "ERROR: " + e.Error, "-", "-", "-", "-", "-", "-", "-"})
			continue
		}
		t.Rows = append(t.Rows, []string{
			e.Task,
			fmt.Sprintf("%d", e.Rows),
			fmt.Sprintf("%d", e.Cols),
			fmt.Sprintf("%d", e.Chunks),
			fmt.Sprintf("%.0f", e.RowsPerSecond),
			fmt.Sprintf("%.3g", e.NNZPerSecond),
			fmt.Sprintf("%.3f", e.AdoptMillis),
			fmt.Sprintf("%.3f", e.PublishMillis),
			fmt.Sprintf("%.4f", e.FinalLoss),
		})
		metrics[e.Task+"_rows_per_second"] = e.RowsPerSecond
		metrics[e.Task+"_publish_ms"] = e.PublishMillis
	}
	return &Result{Table: t, Metrics: metrics}
}
