package experiments

import (
	"fmt"

	"dimmwitted/internal/core"
	"dimmwitted/internal/data"
	"dimmwitted/internal/factor"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
	"dimmwitted/internal/trace"
)

// TraceEntry is one traced run's phase breakdown, JSON-shaped for the
// trace smoke artifact (BENCH_trace.json, written by dwbench -trace in
// CI next to the wall-clock artifacts).
type TraceEntry struct {
	Workload string `json:"workload"`
	Task     string `json:"task"`
	Executor string `json:"executor"`
	Plan     string `json:"plan"`
	Epochs   int    `json:"epochs"`
	// Summary is the recorder's aggregate breakdown: raw per-phase
	// seconds plus the derived step/barrier split and the coverage
	// ratio (named spans over epoch wall clock).
	Summary trace.Summary `json:"summary"`
	Error   string        `json:"error,omitempty"`
}

// TraceEntries runs a sim-vs-parallel pair per workload family with
// the span recorder on — the delta-flush path (SVM on replicated
// Reuters) and the shared-state path (Gibbs on paleo-xl) — and returns
// each run's phase breakdown. This is the engine's time-attribution
// smoke: where the executor comparisons measure *how long* an epoch
// takes, this measures *where the time goes*. The inputs are the same
// benchmark-scale ones the wall-clock comparisons use, so the phase
// split describes the regime where the parallel backend wins.
func TraceEntries(quick bool) []TraceEntry {
	glmEpochs, sweeps := 6, 20
	if quick {
		glmEpochs, sweeps = 2, 5
	}

	var out []TraceEntry
	spec, ds := model.NewSVM(), data.ReutersReplicated()
	for _, exec := range []core.ExecutorKind{core.ExecSimulated, core.ExecParallel} {
		entry := TraceEntry{Workload: "glm", Task: spec.Name() + "/" + ds.Name, Executor: exec.String()}
		plan, err := core.ChooseExecutor(spec, ds, numa.Local2, exec)
		var eng *core.Engine
		if err == nil {
			eng, err = core.New(spec, ds, plan)
		}
		if err != nil {
			entry.Error = err.Error()
			out = append(out, entry)
			continue
		}
		out = append(out, traceRun(entry, eng, glmEpochs))
	}

	g, err := factor.GraphByName("paleo-xl")
	if err != nil {
		return append(out, TraceEntry{Workload: "gibbs", Task: "paleo-xl", Error: err.Error()})
	}
	for _, exec := range []core.ExecutorKind{core.ExecSimulated, core.ExecParallel} {
		entry := TraceEntry{Workload: "gibbs", Task: g.Name, Executor: exec.String()}
		plan := core.Plan{ModelRep: core.PerNode, DataRep: core.FullReplication, Seed: 1, Executor: exec}
		eng, err := core.NewWorkload(factor.NewWorkload(g), plan)
		if err != nil {
			entry.Error = err.Error()
			out = append(out, entry)
			continue
		}
		out = append(out, traceRun(entry, eng, sweeps))
	}
	return out
}

// traceRun attaches a fresh recorder, runs the epoch budget and fills
// in the entry's breakdown.
func traceRun(entry TraceEntry, eng *core.Engine, epochs int) TraceEntry {
	eng.SetRecorder(trace.New(trace.Config{}))
	eng.RunEpochs(epochs)
	entry.Plan = eng.Plan().String()
	entry.Epochs = eng.Epoch()
	entry.Summary = eng.Recorder().Summary()
	return entry
}

// TraceResult renders the traced pairs as the step-vs-flush-vs-barrier
// table dwbench -trace prints. Metrics expose each run's coverage so
// the harness can assert the spans account for the epoch wall clock.
func TraceResult(entries []TraceEntry) *Result {
	t := &Table{
		Name:   "tracewall",
		Title:  "traced sim vs parallel pairs: where each epoch-second goes",
		Header: []string{"workload", "task", "executor", "epochs", "epoch s", "step s", "flush s", "steal s", "barrier s", "coverage"},
		Notes:  "step = pure update work; flush = fused delta pushes to shared masters; steal = time spent draining other workers' queues; barrier = pool wakeup lag + straggler wait; coverage = named spans / epoch wall clock",
	}
	metrics := map[string]float64{}
	for _, e := range entries {
		if e.Error != "" {
			t.Rows = append(t.Rows, []string{e.Workload, e.Task, e.Executor, "ERROR: " + e.Error, "-", "-", "-", "-", "-", "-"})
			continue
		}
		s := e.Summary
		t.Rows = append(t.Rows, []string{
			e.Workload, e.Task, e.Executor,
			fmt.Sprintf("%d", e.Epochs),
			fmt.Sprintf("%.4f", s.EpochSeconds),
			fmt.Sprintf("%.4f", s.StepSeconds),
			fmt.Sprintf("%.4f", phaseSeconds(s, "flush")),
			fmt.Sprintf("%.4f", phaseSeconds(s, "steal")),
			fmt.Sprintf("%.4f", s.BarrierSeconds),
			fmt.Sprintf("%.3f", s.Coverage),
		})
		metrics[fmt.Sprintf("%s_%s_coverage", e.Workload, e.Executor)] = s.Coverage
		metrics[fmt.Sprintf("%s_%s_epoch_s", e.Workload, e.Executor)] = s.EpochSeconds
	}
	return &Result{Table: t, Metrics: metrics}
}

// phaseSeconds reads one named phase's summed seconds from a summary
// (zero when the run never recorded the phase).
func phaseSeconds(s trace.Summary, phase string) float64 {
	for _, p := range s.Phases {
		if p.Phase == phase {
			return p.Seconds
		}
	}
	return 0
}
